//! Per-aspect comparison of RNP and DAR on SynBeer — a miniature of the
//! paper's Table II showing who wins on each aspect.
//!
//! ```sh
//! cargo run --release --example beer_aspects
//! ```

use dar::prelude::*;

fn main() {
    let cfg = RationaleConfig::default();
    let tcfg = TrainConfig {
        epochs: 10,
        patience: Some(4),
        ..Default::default()
    };
    println!(
        "{:<12} {:<6} {:>5} {:>6} {:>6} {:>6} {:>6}",
        "aspect", "model", "S", "Acc", "P", "R", "F1"
    );

    for (aspect, alpha) in [
        (Aspect::Appearance, 0.19),
        (Aspect::Aroma, 0.16),
        (Aspect::Palate, 0.13),
    ] {
        let mut rng = dar::rng(7);
        let data = SynBeer::generate(&SynthConfig::beer(aspect).scaled(0.4), &mut rng);
        let cfg = RationaleConfig {
            sparsity: alpha,
            ..cfg
        };
        let emb = SharedEmbedding::pretrained(&data, cfg.emb_dim, &mut rng);
        let ml = pretrain::max_len(&data);

        let mut rnp = Rnp::new(&cfg, &emb, ml, &mut rng);
        let r = Trainer::new(tcfg).fit(&mut rnp, &data, &mut rng);
        print_row(aspect, "RNP", &r.test);

        let disc = pretrain::full_text_predictor(&cfg, &emb, &data, 6, &mut rng);
        let mut dar = Dar::new(&cfg, &emb, disc, ml, &mut rng);
        let r = Trainer::new(tcfg).fit(&mut dar, &data, &mut rng);
        print_row(aspect, "DAR", &r.test);
    }
}

fn print_row(aspect: Aspect, model: &str, m: &RationaleMetrics) {
    println!(
        "{:<12} {:<6} {:>5.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1}",
        aspect.name(),
        model,
        m.sparsity * 100.0,
        m.acc.map(|a| a * 100.0).unwrap_or(f32::NAN),
        m.precision * 100.0,
        m.recall * 100.0,
        m.f1 * 100.0
    );
}
