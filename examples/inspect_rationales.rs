//! Train every model briefly on the same dataset and dump their selected
//! rationales side by side for qualitative comparison.
//!
//! ```sh
//! cargo run --release --example inspect_rationales
//! ```

use dar::prelude::*;

fn main() {
    let mut rng = dar::rng(21);
    let data = SynBeer::generate(&SynthConfig::beer(Aspect::Palate).scaled(0.25), &mut rng);
    let cfg = RationaleConfig {
        sparsity: 0.13,
        ..Default::default()
    };
    let tcfg = TrainConfig {
        epochs: 6,
        patience: None,
        ..Default::default()
    };
    let emb = SharedEmbedding::pretrained(&data, cfg.emb_dim, &mut rng);
    let ml = pretrain::max_len(&data);

    let mut models: Vec<Box<dyn RationaleModel>> = vec![
        Box::new(Rnp::new(&cfg, &emb, ml, &mut rng)),
        Box::new(A2r::new(&cfg, &emb, ml, &mut rng)),
        Box::new(InterRat::new(&cfg, &emb, ml, &mut rng)),
        {
            let disc = pretrain::full_text_predictor(&cfg, &emb, &data, 5, &mut rng);
            Box::new(Dar::new(&cfg, &emb, disc, ml, &mut rng))
        },
    ];

    for model in &mut models {
        let r = Trainer::new(tcfg).fit(model.as_mut(), &data, &mut rng);
        println!("trained {:<10} F1 {:>5.1}", r.model_name, r.test.f1 * 100.0);
    }

    let batch = BatchIter::sequential(&data.test, 2)
        .next()
        .expect("empty test");
    for i in 0..batch.len() {
        let len = batch.lengths[i];
        let tokens = data.vocab.decode(&batch.ids[i][..len]);
        println!("\nreview (label {}): {}", batch.labels[i], tokens.join(" "));
        let human: Vec<&str> = (0..len)
            .filter(|&t| batch.rationales[i][t])
            .map(|t| tokens[t])
            .collect();
        println!("  {:<10} {human:?}", "human");
        for model in &models {
            let inf = model.infer(&batch);
            let picked: Vec<&str> = (0..len)
                .filter(|&t| inf.masks[i][t] > 0.5)
                .map(|t| tokens[t])
                .collect();
            println!("  {:<10} {picked:?}", model.name());
        }
    }
}
