//! Rationale shift on SynHotel-Service: reproduces the Fig. 2/Fig. 3b
//! story. Trains RNP and probes whether its predictor, which scores well on
//! the selected rationales, can also classify the full text — when it
//! cannot, the selected rationales have shifted away from the input
//! semantics. DAR is trained on the same data for contrast.
//!
//! ```sh
//! cargo run --release --example hotel_service
//! ```

use dar::prelude::*;

fn main() {
    let mut rng = dar::rng(11);
    let data = SynHotel::generate(&SynthConfig::hotel(Aspect::Service).scaled(0.3), &mut rng);
    let cfg = RationaleConfig {
        sparsity: 0.12,
        ..Default::default()
    };
    let tcfg = TrainConfig {
        epochs: 10,
        patience: Some(4),
        ..Default::default()
    };
    let emb = SharedEmbedding::pretrained(&data, cfg.emb_dim, &mut rng);
    let ml = pretrain::max_len(&data);

    println!("== RNP on {} ==", data.name);
    let mut rnp = Rnp::new(&cfg, &emb, ml, &mut rng);
    let r = Trainer::new(tcfg).fit(&mut rnp, &data, &mut rng);
    report("RNP", &r.test);

    println!("\n== DAR on {} ==", data.name);
    let disc = pretrain::full_text_predictor(&cfg, &emb, &data, 6, &mut rng);
    let mut dar = Dar::new(&cfg, &emb, disc, ml, &mut rng);
    let r = Trainer::new(tcfg).fit(&mut dar, &data, &mut rng);
    report("DAR", &r.test);

    // Dump one RNP rationale so shift is visible to the naked eye.
    println!("\nRNP-selected tokens on one test review (cf. Fig. 2):");
    let batch = BatchIter::sequential(&data.test, 1)
        .next()
        .expect("empty test");
    let inf = rnp.infer(&batch);
    let picked: Vec<&str> = (0..batch.lengths[0])
        .filter(|&t| inf.masks[0][t] > 0.5)
        .map(|t| data.vocab.token(batch.ids[0][t]))
        .collect();
    println!("  selected rationale: {picked:?}");
    let human: Vec<&str> = (0..batch.lengths[0])
        .filter(|&t| batch.rationales[0][t])
        .map(|t| data.vocab.token(batch.ids[0][t]))
        .collect();
    println!("  human annotation:   {human:?}");
}

fn report(name: &str, m: &RationaleMetrics) {
    println!(
        "{name}: rationale-input acc {:.1}%  |  full-text acc {:.1}%  |  rationale F1 {:.1}%",
        m.acc.unwrap_or(f32::NAN) * 100.0,
        m.full_text_acc.unwrap_or(f32::NAN) * 100.0,
        m.f1 * 100.0
    );
    let (acc, full) = (m.acc.unwrap_or(0.0), m.full_text_acc.unwrap_or(0.0));
    if acc - full > 0.15 {
        println!("  -> rationale shift: the predictor reads the rationale but not the input!");
    } else {
        println!("  -> aligned: the predictor generalizes to the full input.");
    }
}
