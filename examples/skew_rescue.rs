//! Skewed-predictor interlocking (Table VII, miniature): the predictor is
//! pre-trained on the *first sentence only* (about Appearance), then the
//! cooperative game is trained for the Aroma aspect. RNP interlocks with
//! the skewed predictor; DAR's frozen full-text discriminator rescues the
//! generator.
//!
//! ```sh
//! cargo run --release --example skew_rescue
//! ```

use dar::prelude::*;

fn main() {
    let mut rng = dar::rng(5);
    let data = SynBeer::generate(&SynthConfig::beer(Aspect::Aroma).scaled(0.4), &mut rng);
    let cfg = RationaleConfig {
        sparsity: 0.16,
        ..Default::default()
    };
    let tcfg = TrainConfig {
        epochs: 10,
        patience: None,
        ..Default::default()
    };
    let emb = SharedEmbedding::pretrained(&data, cfg.emb_dim, &mut rng);
    let ml = pretrain::max_len(&data);
    let skew_epochs = 15;

    println!("pretraining a predictor on FIRST SENTENCES (appearance) for {skew_epochs} epochs...");

    // RNP initialized with the skewed predictor.
    let skewed = pretrain::skewed_predictor(&cfg, &emb, &data, skew_epochs, &mut rng);
    let mut rnp = Rnp::with_predictor(&cfg, &emb, skewed, ml, &mut rng);
    let r = Trainer::new(tcfg).fit(&mut rnp, &data, &mut rng);
    println!(
        "RNP  skew{skew_epochs}: Acc {:>5.1}  F1 {:>5.1}",
        r.test.acc.unwrap_or(f32::NAN) * 100.0,
        r.test.f1 * 100.0
    );

    // DAR with the same skewed predictor as its trainable player, but a
    // clean frozen full-text discriminator.
    let skewed = pretrain::skewed_predictor(&cfg, &emb, &data, skew_epochs, &mut rng);
    let disc = pretrain::full_text_predictor(&cfg, &emb, &data, 6, &mut rng);
    let mut dar = Dar::new(&cfg, &emb, disc, ml, &mut rng);
    dar.pred = skewed;
    let r = Trainer::new(tcfg).fit(&mut dar, &data, &mut rng);
    println!(
        "DAR  skew{skew_epochs}: Acc {:>5.1}  F1 {:>5.1}",
        r.test.acc.unwrap_or(f32::NAN) * 100.0,
        r.test.f1 * 100.0
    );

    println!("\nExpected shape (paper Table VII): RNP's F1 collapses as the skew");
    println!("grows; DAR stays close to its unskewed performance.");
}
