//! Quickstart: train DAR on a small slice of SynBeer-Aroma and print the
//! learned rationale for a few reviews.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dar::prelude::*;

fn main() {
    let mut rng = dar::rng(42);

    // 1. A scaled-down synthetic BeerAdvocate aroma dataset.
    let data = SynBeer::generate(&SynthConfig::beer(Aspect::Aroma).scaled(0.4), &mut rng);
    println!(
        "dataset: {} (train {} / dev {} / test {})",
        data.name,
        data.train.len(),
        data.dev.len(),
        data.test.len()
    );

    // 2. GloVe-style embeddings pretrained on the corpus itself.
    let cfg = RationaleConfig {
        sparsity: 0.16,
        ..Default::default()
    };
    let emb = SharedEmbedding::pretrained(&data, cfg.emb_dim, &mut rng);

    // 3. Pretrain the full-text discriminator (Eq. (4)) and build DAR.
    let disc = pretrain::full_text_predictor(&cfg, &emb, &data, 6, &mut rng);
    println!(
        "predictor^t dev accuracy: {:.1}%",
        pretrain::full_text_accuracy(&disc, &data.dev, 64) * 100.0
    );
    let max_len = pretrain::max_len(&data);
    let mut model = Dar::new(&cfg, &emb, disc, max_len, &mut rng);

    // 4. Train the cooperative game.
    let trainer = Trainer::new(TrainConfig {
        epochs: 10,
        patience: Some(4),
        verbose: true,
        ..Default::default()
    });
    let report = trainer.fit(&mut model, &data, &mut rng);
    println!("\ntest metrics:   S   Acc    P     R     F1");
    println!("             {}", report.test.row());
    println!(
        "full-text probe accuracy: {:?}\n",
        report
            .test
            .full_text_acc
            .map(|a| format!("{:.1}%", a * 100.0))
    );

    // 5. Show model-selected vs human rationales on a few test reviews.
    let batch = BatchIter::sequential(&data.test, 4)
        .next()
        .expect("empty test split");
    let inf = model.infer(&batch);
    for i in 0..batch.len() {
        let tokens = data.vocab.decode(&batch.ids[i][..batch.lengths[i]]);
        println!("review {} (label {}):", i, batch.labels[i]);
        let rendered: Vec<String> = tokens
            .iter()
            .enumerate()
            .map(|(t, tok)| {
                let selected = inf.masks[i][t] > 0.5;
                let annotated = batch.rationales[i][t];
                match (selected, annotated) {
                    (true, true) => format!("[*{tok}*]"), // both
                    (true, false) => format!("[{tok}]"),  // model only
                    (false, true) => format!("*{tok}*"),  // human only
                    (false, false) => tok.to_string(),
                }
            })
            .collect();
        println!("  {}\n", rendered.join(" "));
    }
    println!("legend: [*w*] model+human   [w] model only   *w* human only");
}
