//! `dar` — a from-scratch Rust reproduction of *Enhancing the
//! Rationale-Input Alignment for Self-explaining Rationalization*
//! (Liu et al., ICDE 2024).
//!
//! This meta-crate re-exports the whole workspace:
//!
//! * [`tensor`] — dense tensors + reverse-mode autograd + optimizers;
//! * [`nn`] — layers (Linear/Embedding/BiGRU/Transformer), Gumbel-softmax,
//!   losses;
//! * [`text`] — vocabulary, tokenizer, GloVe-style embedding pretraining;
//! * [`data`] — synthetic BeerAdvocate/HotelReview stand-ins with planted
//!   token-level rationales;
//! * [`core`] — the rationalization models (RNP, **DAR**, A2R, DMR,
//!   Inter_RAT, CAR, 3PLAYER, VIB), trainer, and evaluation;
//! * [`serve`] — the resilient inference serving runtime (bounded queue,
//!   micro-batching, circuit breaker, hot checkpoint swap);
//! * [`obs`] — the zero-dependency observability layer (metrics registry,
//!   hierarchical span timings, typed event journal, deterministic
//!   snapshots; see DESIGN.md §12);
//! * [`store`] — the crash-consistent durability layer (write-ahead
//!   state journal, generation manifest, fault-injectable storage; see
//!   DESIGN.md §15).
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! # Quickstart
//!
//! ```no_run
//! use dar::prelude::*;
//!
//! let mut rng = dar::rng(42);
//! let data = SynBeer::default_aspect(Aspect::Aroma, &mut rng);
//! let cfg = RationaleConfig { sparsity: 0.16, ..Default::default() };
//! let emb = SharedEmbedding::pretrained(&data, cfg.emb_dim, &mut rng);
//! let disc = pretrain::full_text_predictor(&cfg, &emb, &data, 6, &mut rng);
//! let max_len = pretrain::max_len(&data);
//! let mut model = Dar::new(&cfg, &emb, disc, max_len, &mut rng);
//! let report = Trainer::default().fit(&mut model, &data, &mut rng);
//! println!("rationale F1: {:.1}%", report.test.f1 * 100.0);
//! ```

pub use dar_core as core;
pub use dar_data as data;
pub use dar_nn as nn;
pub use dar_obs as obs;
pub use dar_serve as serve;
pub use dar_store as store;
pub use dar_tensor as tensor;
pub use dar_text as text;

pub use dar_core::prelude;
pub use dar_tensor::{rng, Rng, Tensor};
