//! `benchgate` — CI regression gate over the committed bench trajectory.
//!
//! Compares freshly-measured `BENCH_*.json` points against the baseline
//! committed in git (CI extracts `git show HEAD:results/BENCH_*.json`
//! into a baseline directory; this binary never runs git itself). A
//! throughput metric may not drop more than 10% below baseline and a
//! latency metric may not inflate more than 15% above it — past either
//! line the gate exits non-zero and CI fails.
//!
//! ```sh
//! benchgate --baseline target/benchgate/baseline --fresh results
//! benchgate --self-test        # gate must fail a synthetic regression
//! ```
//!
//! Escape hatch: `DAR_BENCHGATE=off` skips the comparison entirely (exit
//! 0) — for machines whose absolute throughput is incomparable to the
//! one that produced the committed trajectory. Use it to land a change
//! that legitimately moves a bench number, then commit the fresh point
//! as the new baseline.

use std::path::Path;

use dar::obs::json::parse_flat;

/// Higher-is-better metrics per trajectory file: fresh must stay above
/// `(1 - MAX_THROUGHPUT_DROP)` × baseline.
const THROUGHPUT_METRICS: &[(&str, &str)] = &[
    ("BENCH_serve.json", "throughput_rps"),
    ("BENCH_numeric.json", "raw_examples_per_s"),
    ("BENCH_numeric.json", "guarded_examples_per_s"),
    ("BENCH_obs.json", "on_examples_per_s"),
    ("BENCH_online.json", "throughput_rps"),
    ("BENCH_kernels.json", "gemm_blocked_gflops"),
    ("BENCH_kernels.json", "gru_bptt_blocked_seq_per_s"),
    ("BENCH_kernels.json", "softmax_blocked_melem_per_s"),
    ("BENCH_kernels.json", "layer_norm_blocked_melem_per_s"),
    ("BENCH_kernels.json", "e2e_blocked_examples_per_s"),
    ("BENCH_kernels.json", "gemm_speedup"),
    ("BENCH_kernels.json", "gru_bptt_speedup"),
    ("BENCH_kernels.json", "e2e_speedup"),
];

/// Lower-is-better metrics: fresh must stay below
/// `(1 + MAX_LATENCY_INFLATION)` × baseline.
const LATENCY_METRICS: &[(&str, &str)] = &[
    ("BENCH_serve.json", "p99_us"),
    ("BENCH_online.json", "p99_us"),
    ("BENCH_recovery.json", "replay_us"),
    ("BENCH_health.json", "detection_us"),
    ("BENCH_health.json", "hedge_overhead_us"),
];

/// Scale-context keys per file: when both sides carry the key and the
/// values differ, that file's points were measured at different scales
/// (e.g. a 1-worker baseline against an 8-replica saturation sweep) and
/// comparing them is meaningless — every metric in the file is skipped
/// with a note instead of gating. A side *missing* the key still gates:
/// only a known mismatch disarms the comparison.
const CONTEXT_KEYS: &[(&str, &str)] = &[
    ("BENCH_serve.json", "workers"),
    // A scalar-only box produces a wholly different kernel trajectory
    // than an AVX2 one; only same-level points are comparable.
    ("BENCH_kernels.json", "simd_level"),
];

const MAX_THROUGHPUT_DROP: f64 = 0.10;
const MAX_LATENCY_INFLATION: f64 = 0.15;

#[derive(Debug, PartialEq)]
enum Verdict {
    Ok,
    Regressed,
}

fn check_throughput(baseline: f64, fresh: f64) -> Verdict {
    if fresh < baseline * (1.0 - MAX_THROUGHPUT_DROP) {
        Verdict::Regressed
    } else {
        Verdict::Ok
    }
}

fn check_latency(baseline: f64, fresh: f64) -> Verdict {
    if fresh > baseline * (1.0 + MAX_LATENCY_INFLATION) {
        Verdict::Regressed
    } else {
        Verdict::Ok
    }
}

fn metric(dir: &Path, file: &str, key: &str) -> Result<Option<f64>, String> {
    let path = dir.join(file);
    if !path.exists() {
        return Ok(None);
    }
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let map = parse_flat(&text).map_err(|e| format!("parsing {}: {e}", path.display()))?;
    match map.get(key) {
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("{file}:{key} is not a number")),
        None => Ok(None),
    }
}

/// The file's scale contexts on both sides, when they disagree.
fn context_mismatch(
    baseline: &Path,
    fresh: &Path,
    file: &str,
) -> Result<Option<(&'static str, f64, f64)>, String> {
    for &(f, key) in CONTEXT_KEYS {
        if f != file {
            continue;
        }
        let (Some(b), Some(n)) = (metric(baseline, file, key)?, metric(fresh, file, key)?) else {
            continue;
        };
        if b != n {
            return Ok(Some((key, b, n)));
        }
    }
    Ok(None)
}

/// Run every gate over `baseline` vs `fresh`. Returns the failures; an
/// empty vec is a pass. A file or key missing on the *baseline* side is
/// skipped with a note (a brand-new bench has no history to regress
/// from); missing on the *fresh* side it is an error — the bench that
/// should have produced it did not run.
fn run_gate(baseline: &Path, fresh: &Path) -> Result<Vec<String>, String> {
    let mut failures = Vec::new();
    let checks = THROUGHPUT_METRICS
        .iter()
        .map(|&(f, k)| (f, k, true))
        .chain(LATENCY_METRICS.iter().map(|&(f, k)| (f, k, false)));
    for (file, key, higher_is_better) in checks {
        let Some(base) = metric(baseline, file, key)? else {
            println!("benchgate: {file}:{key} has no baseline yet — skipping");
            continue;
        };
        if let Some((ckey, bw, nw)) = context_mismatch(baseline, fresh, file)? {
            println!(
                "benchgate: {file}:{key} baseline measured at {ckey}={bw}, fresh at \
                 {ckey}={nw} — incomparable scales, skipping"
            );
            continue;
        }
        let Some(new) = metric(fresh, file, key)? else {
            return Err(format!(
                "benchgate: {file}:{key} missing from fresh results — did the bench run?"
            ));
        };
        let (verdict, direction, limit_pct) = if higher_is_better {
            (
                check_throughput(base, new),
                "drop",
                MAX_THROUGHPUT_DROP * 100.0,
            )
        } else {
            (
                check_latency(base, new),
                "inflation",
                MAX_LATENCY_INFLATION * 100.0,
            )
        };
        let delta_pct = (new / base - 1.0) * 100.0;
        println!("benchgate: {file}:{key} baseline {base:.2} fresh {new:.2} ({delta_pct:+.1}%)");
        if verdict == Verdict::Regressed {
            failures.push(format!(
                "{file}:{key} {direction} beyond {limit_pct:.0}%: baseline {base:.2}, fresh {new:.2} ({delta_pct:+.1}%)"
            ));
        }
    }
    Ok(failures)
}

/// The gate must catch a synthetic regression and pass an identical
/// point — the negative test CI runs on every build.
fn self_test() {
    let dir = std::env::temp_dir().join(format!("dar_benchgate_{}", std::process::id()));
    let base = dir.join("baseline");
    let fresh = dir.join("fresh");
    std::fs::create_dir_all(&base).expect("creating self-test baseline dir");
    std::fs::create_dir_all(&fresh).expect("creating self-test fresh dir");

    let serve_base = r#"{"throughput_rps": 1000.0, "p99_us": 10000}"#;
    let numeric = r#"{"raw_examples_per_s": 500.0, "guarded_examples_per_s": 490.0}"#;
    let obs = r#"{"on_examples_per_s": 480.0}"#;
    let online = r#"{"throughput_rps": 200.0, "p99_us": 8000}"#;
    let recovery = r#"{"replay_records": 20000, "replay_us": 50000}"#;
    let health = r#"{"detection_us": 300000, "hedge_overhead_us": 4000}"#;
    let kernels = r#"{"simd_level": 2, "gemm_blocked_gflops": 60.0, "gru_bptt_blocked_seq_per_s": 12000.0, "softmax_blocked_melem_per_s": 1000.0, "layer_norm_blocked_melem_per_s": 1200.0, "e2e_blocked_examples_per_s": 2000.0, "gemm_speedup": 4.0, "gru_bptt_speedup": 2.5, "e2e_speedup": 1.6}"#;
    std::fs::write(base.join("BENCH_serve.json"), serve_base).expect("writing baseline");
    std::fs::write(base.join("BENCH_numeric.json"), numeric).expect("writing baseline");
    std::fs::write(base.join("BENCH_obs.json"), obs).expect("writing baseline");
    std::fs::write(base.join("BENCH_online.json"), online).expect("writing baseline");
    std::fs::write(base.join("BENCH_recovery.json"), recovery).expect("writing baseline");
    std::fs::write(base.join("BENCH_health.json"), health).expect("writing baseline");
    std::fs::write(base.join("BENCH_kernels.json"), kernels).expect("writing baseline");

    // Identical fresh point: must pass.
    std::fs::write(fresh.join("BENCH_serve.json"), serve_base).expect("writing fresh");
    std::fs::write(fresh.join("BENCH_numeric.json"), numeric).expect("writing fresh");
    std::fs::write(fresh.join("BENCH_obs.json"), obs).expect("writing fresh");
    std::fs::write(fresh.join("BENCH_online.json"), online).expect("writing fresh");
    std::fs::write(fresh.join("BENCH_recovery.json"), recovery).expect("writing fresh");
    std::fs::write(fresh.join("BENCH_health.json"), health).expect("writing fresh");
    std::fs::write(fresh.join("BENCH_kernels.json"), kernels).expect("writing fresh");
    let failures = run_gate(&base, &fresh).expect("self-test gate errored");
    assert!(
        failures.is_empty(),
        "identical point must pass, got {failures:?}"
    );

    // Regressed fresh points (-20% throughput, +30% p99): must fail all
    // four — both files' throughput and latency gates.
    std::fs::write(
        fresh.join("BENCH_serve.json"),
        r#"{"throughput_rps": 800.0, "p99_us": 13000}"#,
    )
    .expect("writing regressed fresh");
    std::fs::write(
        fresh.join("BENCH_online.json"),
        r#"{"throughput_rps": 160.0, "p99_us": 10400}"#,
    )
    .expect("writing regressed fresh");
    let failures = run_gate(&base, &fresh).expect("self-test gate errored");
    assert_eq!(
        failures.len(),
        4,
        "regressed points must fail both files' throughput and p99, got {failures:?}"
    );

    // Scale-context mismatch: a 1-worker baseline must never gate an
    // 8-replica sweep (or vice versa) — the serve file's metrics skip,
    // so only the online regression remains.
    std::fs::write(
        base.join("BENCH_serve.json"),
        r#"{"workers": 1, "throughput_rps": 1000.0, "p99_us": 10000}"#,
    )
    .expect("writing baseline");
    std::fs::write(
        fresh.join("BENCH_serve.json"),
        r#"{"workers": 8, "throughput_rps": 100.0, "p99_us": 99000}"#,
    )
    .expect("writing regressed fresh");
    let failures = run_gate(&base, &fresh).expect("self-test gate errored");
    assert_eq!(
        failures.len(),
        2,
        "mismatched worker counts must skip the serve file, got {failures:?}"
    );

    // Matching scale context: the same regression at the same worker
    // count must gate as usual.
    std::fs::write(
        fresh.join("BENCH_serve.json"),
        r#"{"workers": 1, "throughput_rps": 100.0, "p99_us": 99000}"#,
    )
    .expect("writing regressed fresh");
    let failures = run_gate(&base, &fresh).expect("self-test gate errored");
    assert_eq!(
        failures.len(),
        4,
        "matching worker counts must still gate the serve file, got {failures:?}"
    );

    // WAL replay latency regression (+30% replay_us) with everything
    // else back at baseline: exactly the recovery gate must fire.
    std::fs::write(base.join("BENCH_serve.json"), serve_base).expect("writing baseline");
    std::fs::write(fresh.join("BENCH_serve.json"), serve_base).expect("writing fresh");
    std::fs::write(fresh.join("BENCH_online.json"), online).expect("writing fresh");
    std::fs::write(
        fresh.join("BENCH_recovery.json"),
        r#"{"replay_records": 20000, "replay_us": 65000}"#,
    )
    .expect("writing regressed fresh");
    let failures = run_gate(&base, &fresh).expect("self-test gate errored");
    assert_eq!(
        failures.len(),
        1,
        "slower WAL replay must fail exactly the recovery gate, got {failures:?}"
    );
    assert!(
        failures[0].contains("BENCH_recovery.json:replay_us"),
        "wrong gate fired: {failures:?}"
    );

    // Watchdog regression (+30% stall-detection latency, +50% hedge
    // overhead) with everything else at baseline: exactly the two
    // health gates must fire.
    std::fs::write(fresh.join("BENCH_recovery.json"), recovery).expect("writing fresh");
    std::fs::write(
        fresh.join("BENCH_health.json"),
        r#"{"detection_us": 390000, "hedge_overhead_us": 6000}"#,
    )
    .expect("writing regressed fresh");
    let failures = run_gate(&base, &fresh).expect("self-test gate errored");
    assert_eq!(
        failures.len(),
        2,
        "slower detection and hedging must fail exactly the health gates, got {failures:?}"
    );
    assert!(
        failures
            .iter()
            .any(|f| f.contains("BENCH_health.json:detection_us"))
            && failures
                .iter()
                .any(|f| f.contains("BENCH_health.json:hedge_overhead_us")),
        "wrong gates fired: {failures:?}"
    );

    // Kernel-trajectory regression (-20% blocked GEMM throughput, -20%
    // GRU-BPTT speedup) with everything else at baseline: exactly the
    // two kernel gates must fire.
    std::fs::write(fresh.join("BENCH_health.json"), health).expect("writing fresh");
    std::fs::write(
        fresh.join("BENCH_kernels.json"),
        r#"{"simd_level": 2, "gemm_blocked_gflops": 48.0, "gru_bptt_blocked_seq_per_s": 12000.0, "softmax_blocked_melem_per_s": 1000.0, "layer_norm_blocked_melem_per_s": 1200.0, "e2e_blocked_examples_per_s": 2000.0, "gemm_speedup": 4.0, "gru_bptt_speedup": 2.0, "e2e_speedup": 1.6}"#,
    )
    .expect("writing regressed fresh");
    let failures = run_gate(&base, &fresh).expect("self-test gate errored");
    assert_eq!(
        failures.len(),
        2,
        "a slower blocked GEMM and a shrunken GRU speedup must fail exactly the two kernel gates, got {failures:?}"
    );
    assert!(
        failures
            .iter()
            .any(|f| f.contains("BENCH_kernels.json:gemm_blocked_gflops"))
            && failures
                .iter()
                .any(|f| f.contains("BENCH_kernels.json:gru_bptt_speedup")),
        "wrong gates fired: {failures:?}"
    );

    // SIMD-level mismatch: a scalar box's kernel point must never gate
    // against an AVX2 baseline — the same regressed numbers now skip.
    std::fs::write(
        fresh.join("BENCH_kernels.json"),
        r#"{"simd_level": 0, "gemm_blocked_gflops": 48.0, "gru_bptt_blocked_seq_per_s": 12000.0, "softmax_blocked_melem_per_s": 1000.0, "layer_norm_blocked_melem_per_s": 1200.0, "e2e_blocked_examples_per_s": 2000.0, "gemm_speedup": 4.0, "gru_bptt_speedup": 2.0, "e2e_speedup": 1.6}"#,
    )
    .expect("writing mismatched fresh");
    let failures = run_gate(&base, &fresh).expect("self-test gate errored");
    assert!(
        failures.is_empty(),
        "mismatched simd_level must skip every kernel gate, got {failures:?}"
    );

    std::fs::remove_dir_all(&dir).ok();
    println!("benchgate: self-test ok");
}

fn str_flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: benchgate --baseline DIR --fresh DIR | --self-test");
        eprintln!("       DAR_BENCHGATE=off benchgate ...   # skip (exit 0)");
        std::process::exit(2);
    }
    if args.iter().any(|a| a == "--self-test") {
        self_test();
        return;
    }
    if std::env::var("DAR_BENCHGATE").as_deref() == Ok("off") {
        println!("benchgate: DAR_BENCHGATE=off — skipping regression gate");
        return;
    }
    let baseline = str_flag(&args, "--baseline").unwrap_or_else(|| {
        eprintln!("missing --baseline DIR");
        std::process::exit(2);
    });
    let fresh = str_flag(&args, "--fresh").unwrap_or_else(|| {
        eprintln!("missing --fresh DIR");
        std::process::exit(2);
    });
    match run_gate(Path::new(&baseline), Path::new(&fresh)) {
        Ok(failures) if failures.is_empty() => println!("benchgate: ok"),
        Ok(failures) => {
            for f in &failures {
                eprintln!("benchgate: FAIL {f}");
            }
            eprintln!(
                "benchgate: {} regression(s). If the change legitimately moves the \
                 trajectory, commit the fresh results/BENCH_*.json as the new baseline \
                 (or set DAR_BENCHGATE=off for incomparable hardware).",
                failures.len()
            );
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("benchgate: ERROR {e}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_threshold_is_ten_percent() {
        assert_eq!(check_throughput(1000.0, 901.0), Verdict::Ok);
        assert_eq!(check_throughput(1000.0, 899.0), Verdict::Regressed);
        // Improvements always pass.
        assert_eq!(check_throughput(1000.0, 1500.0), Verdict::Ok);
    }

    #[test]
    fn latency_threshold_is_fifteen_percent() {
        assert_eq!(check_latency(10000.0, 11400.0), Verdict::Ok);
        assert_eq!(check_latency(10000.0, 11600.0), Verdict::Regressed);
        assert_eq!(check_latency(10000.0, 5000.0), Verdict::Ok);
    }

    #[test]
    fn gate_skips_missing_baseline_but_rejects_missing_fresh() {
        let dir = std::env::temp_dir().join(format!("dar_bg_unit_{}", std::process::id()));
        let base = dir.join("b");
        let fresh = dir.join("f");
        std::fs::create_dir_all(&base).unwrap();
        std::fs::create_dir_all(&fresh).unwrap();

        // No baseline files at all: everything skips, gate passes.
        assert!(run_gate(&base, &fresh).unwrap().is_empty());

        // Baseline exists but fresh missing: hard error.
        std::fs::write(base.join("BENCH_serve.json"), r#"{"throughput_rps": 10.0}"#).unwrap();
        assert!(run_gate(&base, &fresh).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn self_test_scenario_passes() {
        self_test();
    }
}
