//! `numbench` — guard-rail overhead benchmark for the numeric
//! containment layer.
//!
//! Runs the same seeded training workload twice — once with the dar-nn
//! guard rails disabled (raw ops) and once with them enabled (the
//! default) — and records the throughput of each plus the relative
//! overhead into `results/BENCH_numeric.json`. The containment layer's
//! budget is < 5% (ROADMAP / DESIGN.md §11); the run exits non-zero
//! when a healthy machine blows past a generous multiple of it so CI
//! catches a genuinely quadratic regression without flaking on noise.
//!
//! ```sh
//! numbench                       # defaults: 60 steps, batch 32, seed 42
//! numbench --steps 120 --batch 32 --seed 7 --out results
//! ```

use std::path::PathBuf;
use std::time::Instant;

use dar::nn::with_guard_rails;
use dar::prelude::*;

fn flag(args: &[String], name: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn str_flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Examples/second for `steps` optimisation steps on a fresh,
/// identically-seeded model. The model is rebuilt per run so both
/// passes traverse the same loss landscape from the same init.
fn run(
    data: &dar::data::AspectDataset,
    steps: usize,
    batch_size: usize,
    seed: u64,
    rails: bool,
) -> f64 {
    with_guard_rails(rails, || {
        let cfg = RationaleConfig {
            emb_dim: 32,
            hidden: 32,
            sparsity: 0.16,
            ..Default::default()
        };
        let ml = pretrain::max_len(data);
        let mut rng = dar::rng(seed);
        let emb = SharedEmbedding::random(data.vocab.len(), cfg.emb_dim, &mut rng);
        let mut model = Rnp::new(&cfg, &emb, ml, &mut rng);
        let batches: Vec<_> = BatchIter::sequential(&data.train, batch_size).collect();

        // Warm-up: a few untimed steps so allocator and cache state match.
        for b in batches.iter().cycle().take(4) {
            model.train_step(b, &mut rng);
        }
        let started = Instant::now();
        for b in batches.iter().cycle().take(steps) {
            let loss = model.train_step(b, &mut rng);
            assert!(loss.is_finite(), "benchmark workload diverged");
        }
        let secs = started.elapsed().as_secs_f64();
        (steps * batch_size) as f64 / secs
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: numbench [--steps N] [--batch N] [--seed N] [--out DIR]");
        std::process::exit(2);
    }
    let steps = flag(&args, "--steps").unwrap_or(60) as usize;
    let batch_size = flag(&args, "--batch").unwrap_or(32) as usize;
    let seed = flag(&args, "--seed").unwrap_or(42);
    let out_dir = PathBuf::from(str_flag(&args, "--out").unwrap_or_else(|| "results".into()));

    let synth = SynthConfig {
        n_train: 128,
        n_dev: 16,
        n_test: 16,
        ..SynthConfig::beer(Aspect::Aroma)
    };
    let data = SynBeer::generate(&synth, &mut dar::rng(seed));

    eprintln!("[numbench] {steps} steps x batch {batch_size}, seed {seed}");
    // Interleave raw/guarded passes and keep the best of each so a
    // one-off scheduler hiccup cannot masquerade as rail overhead.
    let mut raw_eps: f64 = 0.0;
    let mut guarded_eps: f64 = 0.0;
    for round in 0..3 {
        let r = run(&data, steps, batch_size, seed, false);
        let g = run(&data, steps, batch_size, seed, true);
        eprintln!("[numbench] round {round}: raw {r:.0} ex/s, guarded {g:.0} ex/s");
        raw_eps = raw_eps.max(r);
        guarded_eps = guarded_eps.max(g);
    }
    let overhead_pct = (raw_eps / guarded_eps - 1.0) * 100.0;

    eprintln!(
        "[numbench] raw {raw_eps:.0} ex/s, guarded {guarded_eps:.0} ex/s, \
         overhead {overhead_pct:.2}% (target < 5%)"
    );

    std::fs::create_dir_all(&out_dir).expect("creating output dir");
    let json = format!(
        "{{\"steps\": {steps}, \"batch_size\": {batch_size}, \"seed\": {seed}, \
          \"raw_examples_per_s\": {raw_eps:.2}, \
          \"guarded_examples_per_s\": {guarded_eps:.2}, \
          \"overhead_pct\": {overhead_pct:.2}, \"target_pct\": 5.0}}\n"
    );
    std::fs::write(out_dir.join("BENCH_numeric.json"), json).expect("writing BENCH_numeric.json");

    // Hard-fail only well past the 5% design budget: shared CI boxes are
    // noisy, and a legitimate rail regression lands far above this line.
    if overhead_pct > 15.0 {
        eprintln!("[numbench] FAIL: guard-rail overhead {overhead_pct:.2}% > 15% ceiling");
        std::process::exit(1);
    }
    eprintln!("[numbench] ok");
}
