//! `numbench` — guard-rail overhead benchmark for the numeric
//! containment layer.
//!
//! Runs the same seeded training workload twice — once with the dar-nn
//! guard rails disabled (raw ops) and once with them enabled (the
//! default) — and records the throughput of each plus the relative
//! overhead into `results/BENCH_numeric.json`. The containment layer's
//! budget is < 5% (ROADMAP / DESIGN.md §11); the run exits non-zero
//! when a healthy machine blows past a generous multiple of it so CI
//! catches a genuinely quadratic regression without flaking on noise.
//!
//! With `--kernels` it instead benchmarks the pluggable kernel backends
//! (DESIGN.md §17): per-kernel best-of-3 throughput for gemm / bmm /
//! gru_bptt / softmax / layer_norm under `ReferenceKernel` vs
//! `BlockedKernel`, plus end-to-end training examples/s on both, written
//! to `results/BENCH_kernels.json` (flat, benchgate-compatible, keyed on
//! `simd_level` so scalar machines never gate against AVX2 baselines).
//! On SIMD-capable machines it hard-fails below the design floors:
//! blocked ≥ 2× reference on gemm and gru_bptt, ≥ 1.3× end to end.
//!
//! ```sh
//! numbench                       # defaults: 60 steps, batch 32, seed 42
//! numbench --steps 120 --batch 32 --seed 7 --out results
//! numbench --kernels --out results
//! ```

use std::path::PathBuf;
use std::time::Instant;

use dar::nn::gru::set_composite_gru;
use dar::nn::with_guard_rails;
use dar::prelude::*;
use dar::tensor::ops::kernel::blocked::simd_level;
use dar::tensor::ops::rnn::gru_seq;
use dar::tensor::{kernel_for, with_kernel_backend, Kernel, KernelBackend};
use dar::Tensor;

fn flag(args: &[String], name: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn str_flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Examples/second for `steps` optimisation steps on a fresh,
/// identically-seeded model. The model is rebuilt per run so both
/// passes traverse the same loss landscape from the same init.
fn run(
    data: &dar::data::AspectDataset,
    steps: usize,
    batch_size: usize,
    seed: u64,
    rails: bool,
) -> f64 {
    with_guard_rails(rails, || {
        let cfg = RationaleConfig {
            emb_dim: 32,
            hidden: 32,
            sparsity: 0.16,
            ..Default::default()
        };
        let ml = pretrain::max_len(data);
        let mut rng = dar::rng(seed);
        let emb = SharedEmbedding::random(data.vocab.len(), cfg.emb_dim, &mut rng);
        let mut model = Rnp::new(&cfg, &emb, ml, &mut rng);
        let batches: Vec<_> = BatchIter::sequential(&data.train, batch_size).collect();

        // Warm-up: a few untimed steps so allocator and cache state match.
        for b in batches.iter().cycle().take(4) {
            model.train_step(b, &mut rng);
        }
        let started = Instant::now();
        for b in batches.iter().cycle().take(steps) {
            let loss = model.train_step(b, &mut rng);
            assert!(loss.is_finite(), "benchmark workload diverged");
        }
        let secs = started.elapsed().as_secs_f64();
        (steps * batch_size) as f64 / secs
    })
}

/// Deterministic pseudo-random fill, no RNG dependency.
fn fill(n: usize, salt: usize) -> Vec<f32> {
    (0..n)
        .map(|i| (((i * 2654435761 + salt * 97_003) % 2048) as f32) / 1024.0 - 1.0)
        .collect()
}

/// Best-of-`rounds` of whatever throughput `f` reports: a one-off
/// scheduler hiccup must not masquerade as a kernel regression.
fn best_of(rounds: usize, mut f: impl FnMut() -> f64) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..rounds {
        best = best.max(f());
    }
    best
}

/// GFLOP/s of the raw `Kernel::gemm` entry point (no graph overhead).
fn bench_gemm(kern: &'static dyn Kernel) -> f64 {
    let (m, k, n) = (256usize, 256usize, 256usize);
    let a = fill(m * k, 1);
    let b = fill(k * n, 2);
    let mut c = vec![0.0f32; m * n];
    let iters = 20;
    kern.gemm(&a, &b, &mut c, m, k, n); // warm-up
    best_of(3, || {
        let t = Instant::now();
        for _ in 0..iters {
            kern.gemm(&a, &b, &mut c, m, k, n);
        }
        (2 * m * k * n * iters) as f64 / t.elapsed().as_secs_f64() / 1e9
    })
}

/// GFLOP/s of batched matmul through the full tensor op.
fn bench_bmm(backend: KernelBackend) -> f64 {
    with_kernel_backend(backend, || {
        let (bb, m, k, n) = (16usize, 64usize, 64usize, 64usize);
        let a = Tensor::new(fill(bb * m * k, 3), &[bb, m, k]);
        let b = Tensor::new(fill(bb * k * n, 4), &[bb, k, n]);
        let iters = 20;
        let _ = a.bmm(&b); // warm-up
        best_of(3, || {
            let t = Instant::now();
            for _ in 0..iters {
                let _ = a.bmm(&b);
            }
            (2 * bb * m * k * n * iters) as f64 / t.elapsed().as_secs_f64() / 1e9
        })
    })
}

/// Sequences/s of a fused GRU forward + full BPTT backward.
fn bench_gru_bptt(backend: KernelBackend) -> f64 {
    with_kernel_backend(backend, || {
        let (b, l, e, h) = (32usize, 40usize, 32usize, 32usize);
        let x = Tensor::param(fill(b * l * e, 5), &[b, l, e]);
        let w_zr = Tensor::param(fill((e + h) * 2 * h, 6), &[e + h, 2 * h]);
        let b_zr = Tensor::param(fill(2 * h, 7), &[2 * h]);
        let w_h = Tensor::param(fill((e + h) * h, 8), &[e + h, h]);
        let b_h = Tensor::param(fill(h, 9), &[h]);
        let step = || {
            gru_seq(&x, None, &w_zr, &b_zr, &w_h, &b_h, false)
                .sum()
                .backward()
        };
        let iters = 10;
        step(); // warm-up
        best_of(3, || {
            let t = Instant::now();
            for _ in 0..iters {
                step();
            }
            (b * iters) as f64 / t.elapsed().as_secs_f64()
        })
    })
}

/// Million elements/s of a raw forward row kernel.
fn bench_rows(kern: &'static dyn Kernel, which: &str) -> f64 {
    let (rows, c) = (2048usize, 128usize);
    let x = fill(rows * c, 10);
    let gamma = fill(c, 11);
    let beta = fill(c, 12);
    let mut out = vec![0.0f32; rows * c];
    let mut xhat = vec![0.0f32; rows * c];
    let mut inv_std = vec![0.0f32; rows];
    let mut pass = || match which {
        "softmax" => kern.softmax_rows(&x, &mut out, c),
        "layer_norm" => kern.layer_norm_rows(
            &x,
            &gamma,
            &beta,
            &mut out,
            &mut xhat,
            &mut inv_std,
            c,
            1e-5,
        ),
        other => unreachable!("unknown row kernel '{other}'"),
    };
    let iters = 50;
    pass(); // warm-up
    best_of(3, || {
        let t = Instant::now();
        for _ in 0..iters {
            pass();
        }
        (rows * c * iters) as f64 / t.elapsed().as_secs_f64() / 1e6
    })
}

/// End-to-end seeded training throughput under one backend, fused GRU
/// path (the performance configuration both backends are judged on).
fn bench_e2e(backend: KernelBackend, data: &dar::data::AspectDataset) -> f64 {
    with_kernel_backend(backend, || best_of(3, || run(data, 30, 32, 42, true)))
}

fn kernels_main(out_dir: &std::path::Path) {
    let reference = kernel_for(KernelBackend::Reference);
    let blocked = kernel_for(KernelBackend::Blocked);
    let level = simd_level();
    eprintln!("[numbench] kernel sweep: simd_level {level}");

    let gemm_ref = bench_gemm(reference);
    let gemm_blk = bench_gemm(blocked);
    let bmm_ref = bench_bmm(KernelBackend::Reference);
    let bmm_blk = bench_bmm(KernelBackend::Blocked);
    let gru_ref = bench_gru_bptt(KernelBackend::Reference);
    let gru_blk = bench_gru_bptt(KernelBackend::Blocked);
    let sm_ref = bench_rows(reference, "softmax");
    let sm_blk = bench_rows(blocked, "softmax");
    let ln_ref = bench_rows(reference, "layer_norm");
    let ln_blk = bench_rows(blocked, "layer_norm");

    let synth = SynthConfig {
        n_train: 128,
        n_dev: 16,
        n_test: 16,
        ..SynthConfig::beer(Aspect::Aroma)
    };
    let data = SynBeer::generate(&synth, &mut dar::rng(42));
    set_composite_gru(false);
    let e2e_ref = bench_e2e(KernelBackend::Reference, &data);
    let e2e_blk = bench_e2e(KernelBackend::Blocked, &data);
    set_composite_gru(true);

    let gemm_speedup = gemm_blk / gemm_ref;
    let bmm_speedup = bmm_blk / bmm_ref;
    let gru_speedup = gru_blk / gru_ref;
    let sm_speedup = sm_blk / sm_ref;
    let ln_speedup = ln_blk / ln_ref;
    let e2e_speedup = e2e_blk / e2e_ref;

    eprintln!("[numbench] gemm       ref {gemm_ref:8.2} GF/s  blocked {gemm_blk:8.2} GF/s  x{gemm_speedup:.2}");
    eprintln!("[numbench] bmm        ref {bmm_ref:8.2} GF/s  blocked {bmm_blk:8.2} GF/s  x{bmm_speedup:.2}");
    eprintln!("[numbench] gru_bptt   ref {gru_ref:8.0} seq/s blocked {gru_blk:8.0} seq/s x{gru_speedup:.2}");
    eprintln!(
        "[numbench] softmax    ref {sm_ref:8.1} Me/s  blocked {sm_blk:8.1} Me/s  x{sm_speedup:.2}"
    );
    eprintln!(
        "[numbench] layer_norm ref {ln_ref:8.1} Me/s  blocked {ln_blk:8.1} Me/s  x{ln_speedup:.2}"
    );
    eprintln!("[numbench] e2e        ref {e2e_ref:8.0} ex/s  blocked {e2e_blk:8.0} ex/s  x{e2e_speedup:.2}");

    std::fs::create_dir_all(out_dir).expect("creating output dir");
    let json = format!(
        "{{\"simd_level\": {level}, \
          \"gemm_ref_gflops\": {gemm_ref:.3}, \"gemm_blocked_gflops\": {gemm_blk:.3}, \"gemm_speedup\": {gemm_speedup:.3}, \
          \"bmm_ref_gflops\": {bmm_ref:.3}, \"bmm_blocked_gflops\": {bmm_blk:.3}, \"bmm_speedup\": {bmm_speedup:.3}, \
          \"gru_bptt_ref_seq_per_s\": {gru_ref:.2}, \"gru_bptt_blocked_seq_per_s\": {gru_blk:.2}, \"gru_bptt_speedup\": {gru_speedup:.3}, \
          \"softmax_ref_melem_per_s\": {sm_ref:.2}, \"softmax_blocked_melem_per_s\": {sm_blk:.2}, \"softmax_speedup\": {sm_speedup:.3}, \
          \"layer_norm_ref_melem_per_s\": {ln_ref:.2}, \"layer_norm_blocked_melem_per_s\": {ln_blk:.2}, \"layer_norm_speedup\": {ln_speedup:.3}, \
          \"e2e_ref_examples_per_s\": {e2e_ref:.2}, \"e2e_blocked_examples_per_s\": {e2e_blk:.2}, \"e2e_speedup\": {e2e_speedup:.3}}}\n"
    );
    std::fs::write(out_dir.join("BENCH_kernels.json"), json).expect("writing BENCH_kernels.json");

    // Design floors (ROADMAP item 1) only bind where SIMD is available:
    // a scalar-only box cannot promise 2x, and its baseline is keyed
    // apart by simd_level anyway.
    if level >= 2 {
        let mut fail = false;
        if gemm_speedup < 2.0 {
            eprintln!("[numbench] FAIL: gemm speedup {gemm_speedup:.2} < 2.0 floor");
            fail = true;
        }
        if gru_speedup < 2.0 {
            eprintln!("[numbench] FAIL: gru_bptt speedup {gru_speedup:.2} < 2.0 floor");
            fail = true;
        }
        if e2e_speedup < 1.3 {
            eprintln!("[numbench] FAIL: e2e speedup {e2e_speedup:.2} < 1.3 floor");
            fail = true;
        }
        if fail {
            std::process::exit(1);
        }
    }
    eprintln!("[numbench] kernels ok");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: numbench [--kernels] [--steps N] [--batch N] [--seed N] [--out DIR]");
        std::process::exit(2);
    }
    if args.iter().any(|a| a == "--kernels") {
        let out_dir = PathBuf::from(str_flag(&args, "--out").unwrap_or_else(|| "results".into()));
        kernels_main(&out_dir);
        return;
    }
    let steps = flag(&args, "--steps").unwrap_or(60) as usize;
    let batch_size = flag(&args, "--batch").unwrap_or(32) as usize;
    let seed = flag(&args, "--seed").unwrap_or(42);
    let out_dir = PathBuf::from(str_flag(&args, "--out").unwrap_or_else(|| "results".into()));

    let synth = SynthConfig {
        n_train: 128,
        n_dev: 16,
        n_test: 16,
        ..SynthConfig::beer(Aspect::Aroma)
    };
    let data = SynBeer::generate(&synth, &mut dar::rng(seed));

    eprintln!("[numbench] {steps} steps x batch {batch_size}, seed {seed}");
    // Interleave raw/guarded passes and keep the best of each so a
    // one-off scheduler hiccup cannot masquerade as rail overhead.
    let mut raw_eps: f64 = 0.0;
    let mut guarded_eps: f64 = 0.0;
    for round in 0..3 {
        let r = run(&data, steps, batch_size, seed, false);
        let g = run(&data, steps, batch_size, seed, true);
        eprintln!("[numbench] round {round}: raw {r:.0} ex/s, guarded {g:.0} ex/s");
        raw_eps = raw_eps.max(r);
        guarded_eps = guarded_eps.max(g);
    }
    let overhead_pct = (raw_eps / guarded_eps - 1.0) * 100.0;

    eprintln!(
        "[numbench] raw {raw_eps:.0} ex/s, guarded {guarded_eps:.0} ex/s, \
         overhead {overhead_pct:.2}% (target < 5%)"
    );

    std::fs::create_dir_all(&out_dir).expect("creating output dir");
    let json = format!(
        "{{\"steps\": {steps}, \"batch_size\": {batch_size}, \"seed\": {seed}, \
          \"raw_examples_per_s\": {raw_eps:.2}, \
          \"guarded_examples_per_s\": {guarded_eps:.2}, \
          \"overhead_pct\": {overhead_pct:.2}, \"target_pct\": 5.0}}\n"
    );
    std::fs::write(out_dir.join("BENCH_numeric.json"), json).expect("writing BENCH_numeric.json");

    // Hard-fail only well past the 5% design budget: shared CI boxes are
    // noisy, and a legitimate rail regression lands far above this line.
    if overhead_pct > 15.0 {
        eprintln!("[numbench] FAIL: guard-rail overhead {overhead_pct:.2}% > 15% ceiling");
        std::process::exit(1);
    }
    eprintln!("[numbench] ok");
}
