//! `obsbench` — overhead benchmark for the observability layer.
//!
//! Runs the same seeded training workload twice — once with `dar-obs`
//! disabled (every instrumentation site reduced to one relaxed atomic
//! load) and once with it enabled (spans, counters, journal) — and
//! records the throughput of each plus the relative overhead into
//! `results/BENCH_obs.json`. The layer's budget is < 3% (DESIGN.md §12);
//! the run exits non-zero past it so CI catches an instrumentation
//! regression (a span on a per-element path, a lock on a hot loop)
//! before it lands.
//!
//! ```sh
//! obsbench                       # defaults: 60 steps, batch 32, seed 42
//! obsbench --steps 120 --batch 32 --seed 7 --out results
//! ```

use std::path::PathBuf;
use std::time::Instant;

use dar::prelude::*;

fn flag(args: &[String], name: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn str_flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Examples/second for `steps` optimisation steps on a fresh,
/// identically-seeded model. The model is rebuilt per run so both
/// passes traverse the same loss landscape from the same init.
fn run(data: &dar::data::AspectDataset, steps: usize, batch_size: usize, seed: u64) -> f64 {
    let cfg = RationaleConfig {
        emb_dim: 32,
        hidden: 32,
        sparsity: 0.16,
        ..Default::default()
    };
    let ml = pretrain::max_len(data);
    let mut rng = dar::rng(seed);
    let emb = SharedEmbedding::random(data.vocab.len(), cfg.emb_dim, &mut rng);
    let mut model = Rnp::new(&cfg, &emb, ml, &mut rng);
    let batches: Vec<_> = BatchIter::sequential(&data.train, batch_size).collect();

    // Warm-up: a few untimed steps so allocator and cache state match.
    for b in batches.iter().cycle().take(4) {
        model.train_step(b, &mut rng);
    }
    let started = Instant::now();
    for b in batches.iter().cycle().take(steps) {
        let loss = model.train_step(b, &mut rng);
        assert!(loss.is_finite(), "benchmark workload diverged");
    }
    let secs = started.elapsed().as_secs_f64();
    (steps * batch_size) as f64 / secs
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: obsbench [--steps N] [--batch N] [--seed N] [--out DIR]");
        std::process::exit(2);
    }
    let steps = flag(&args, "--steps").unwrap_or(60) as usize;
    let batch_size = flag(&args, "--batch").unwrap_or(32) as usize;
    let seed = flag(&args, "--seed").unwrap_or(42);
    let out_dir = PathBuf::from(str_flag(&args, "--out").unwrap_or_else(|| "results".into()));

    let synth = SynthConfig {
        n_train: 128,
        n_dev: 16,
        n_test: 16,
        ..SynthConfig::beer(Aspect::Aroma)
    };
    let data = SynBeer::generate(&synth, &mut dar::rng(seed));

    eprintln!("[obsbench] {steps} steps x batch {batch_size}, seed {seed}");
    // Interleave off/on passes and keep the best of each so a one-off
    // scheduler hiccup cannot masquerade as instrumentation overhead.
    // The registry is reset between instrumented passes so span/journal
    // state cannot accumulate across rounds.
    let mut off_eps: f64 = 0.0;
    let mut on_eps: f64 = 0.0;
    for round in 0..3 {
        dar::obs::set_enabled(false);
        let off = run(&data, steps, batch_size, seed);
        dar::obs::reset();
        dar::obs::set_enabled(true);
        let on = run(&data, steps, batch_size, seed);
        eprintln!("[obsbench] round {round}: off {off:.0} ex/s, on {on:.0} ex/s");
        off_eps = off_eps.max(off);
        on_eps = on_eps.max(on);
    }
    let overhead_pct = (off_eps / on_eps - 1.0) * 100.0;

    eprintln!(
        "[obsbench] off {off_eps:.0} ex/s, on {on_eps:.0} ex/s, \
         overhead {overhead_pct:.2}% (budget < 3%)"
    );

    std::fs::create_dir_all(&out_dir).expect("creating output dir");
    let json = format!(
        "{{\"steps\": {steps}, \"batch_size\": {batch_size}, \"seed\": {seed}, \
          \"off_examples_per_s\": {off_eps:.2}, \
          \"on_examples_per_s\": {on_eps:.2}, \
          \"overhead_pct\": {overhead_pct:.2}, \"target_pct\": 3.0}}\n"
    );
    std::fs::write(out_dir.join("BENCH_obs.json"), json).expect("writing BENCH_obs.json");

    // The instrumented snapshot of the final round doubles as a smoke
    // check that the hot paths actually reported in.
    let snap = dar::obs::snapshot("obsbench");
    assert!(
        snap.spans.iter().any(|s| s.path.contains("matmul")),
        "no matmul span recorded — instrumentation is not reaching the kernels"
    );

    if overhead_pct > 3.0 {
        eprintln!("[obsbench] FAIL: observability overhead {overhead_pct:.2}% > 3% budget");
        std::process::exit(1);
    }
    eprintln!("[obsbench] ok");
}
