//! `dar-loop` — demo + benchmark driver for the closed online loop:
//! train-while-serve with canary evaluation and auto-rollback.
//!
//! Topology (DESIGN.md §13): a background trainer consumes a streaming
//! synthetic review feed (with a poison hook exercising feed admission)
//! and writes one candidate checkpoint per round; the controller canaries
//! each candidate on a deterministic traffic slice against the incumbent
//! and promotes or rolls back. Results land in `results/BENCH_online.json`
//! and the obs snapshot in `results/obs_online.json`.
//!
//! ```sh
//! dar-loop                           # defaults: 3 rounds, auto replicas
//! dar-loop --rounds 5 --seed 7 --wave 24 --out results
//! ```

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use dar::core::stream::{spawn_online_trainer, FeedConfig, OnlineTrainerConfig};
use dar::data::Review;
use dar::prelude::*;
use dar::serve::{
    run_online_loop, CanaryPolicy, OnlineLoopConfig, PromotionPhase, ServeConfig, Server,
};
use dar::tensor::serial::{self, Checkpoint};

fn flag(args: &[String], name: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn str_flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: dar-loop [--rounds N] [--wave N] [--seed N] [--out DIR]");
        std::process::exit(2);
    }
    let rounds = flag(&args, "--rounds").unwrap_or(3) as usize;
    let wave = flag(&args, "--wave").unwrap_or(16) as usize;
    let seed = flag(&args, "--seed").unwrap_or(42);
    let out_dir = PathBuf::from(str_flag(&args, "--out").unwrap_or_else(|| "results".into()));
    std::fs::create_dir_all(&out_dir).expect("creating output dir");

    // Base dataset: serving traffic + the incumbent's training set.
    let synth = SynthConfig {
        n_train: 128,
        n_dev: 32,
        n_test: 64,
        ..SynthConfig::beer(Aspect::Aroma)
    };
    let data = SynBeer::generate(&synth, &mut dar::rng(seed));
    let cfg = RationaleConfig {
        emb_dim: 16,
        hidden: 24,
        sparsity: 0.16,
        ..Default::default()
    };
    let ml = pretrain::max_len(&data);
    let vocab = data.vocab.len();

    // Incumbent: one trained epoch, hot-swapped in before the loop runs,
    // so candidates have a real bar to clear.
    eprintln!("[dar-loop] training the incumbent...");
    let incumbent_path = out_dir.join("loop_incumbent.ckpt");
    {
        let mut rng = dar::rng(seed + 1);
        let emb = SharedEmbedding::random(vocab, cfg.emb_dim, &mut rng);
        let mut model = Rnp::new(&cfg, &emb, ml, &mut rng);
        let mut rng = dar::rng(seed + 2);
        let report = Trainer::new(TrainConfig {
            epochs: 1,
            batch_size: 32,
            patience: None,
            ..Default::default()
        })
        .fit(&mut model, &data, &mut rng);
        eprintln!(
            "[dar-loop] incumbent: acc {:.1}%  rationale F1 {:.1}%",
            report.test.acc.unwrap_or(0.0) * 100.0,
            report.test.f1 * 100.0
        );
        serial::save_checkpoint_path(
            &incumbent_path,
            &Checkpoint::new(model.params(), Vec::new()),
        )
        .expect("saving incumbent checkpoint");
    }

    let factory: dar::serve::ModelFactory = Arc::new(move || {
        let mut rng = dar::rng(seed + 1);
        let emb = SharedEmbedding::random(vocab, cfg.emb_dim, &mut rng);
        Box::new(Rnp::new(&cfg, &emb, ml, &mut rng))
    });
    let serve_cfg = ServeConfig {
        vocab_size: vocab,
        max_len: ml,
        ..ServeConfig::default()
    };
    let n_replicas = serve_cfg.effective_replicas();
    let server = Server::start(serve_cfg, Arc::clone(&factory));
    let incumbent_version = server
        .offer_checkpoint(&incumbent_path)
        .expect("incumbent checkpoint accepted");
    eprintln!(
        "[dar-loop] serving with {n_replicas} replicas, incumbent v{incumbent_version} \
         (DAR_THREADS budget {})",
        dar_par::max_threads()
    );

    // Background trainer on a fresh streaming feed, poison every 9th
    // review to exercise feed admission.
    let trainer_cfg = OnlineTrainerConfig {
        rounds,
        epochs_per_round: 2,
        batch_size: 32,
        vocab_size: vocab,
        max_len: ml,
        candidate_dir: out_dir.clone(),
        seed: seed + 3,
        panic_at_round: None,
    };
    let feed = FeedConfig {
        synth: SynthConfig {
            n_train: 96,
            ..synth
        },
        seed: seed + 4,
        poison_every: Some(9),
    };
    let (trainer, candidates) = spawn_online_trainer(trainer_cfg, Arc::clone(&factory), feed);

    let loop_cfg = OnlineLoopConfig {
        policy: CanaryPolicy {
            window: 40,
            ..CanaryPolicy::default()
        },
        wave,
        max_waves: 64,
    };
    let traffic: Vec<Review> = data.test.clone();
    let started = Instant::now();
    let report = run_online_loop(&server, &candidates, &traffic, &loop_cfg);
    let elapsed = started.elapsed();
    trainer.join().expect("joining the trainer thread");

    let served: u64 = report.rounds.iter().map(|r| r.served_ok).sum();
    let failed: u64 = report.rounds.iter().map(|r| r.failed).sum();
    for r in &report.rounds {
        match (&r.outcome, &r.note) {
            (Some(o), _) => eprintln!(
                "[dar-loop] round {}: v{} {:?} (cand acc {:.1}% vs inc {:.1}%)",
                r.round,
                o.version,
                o.phase,
                o.snapshot.candidate.accuracy() * 100.0,
                o.snapshot.incumbent.accuracy() * 100.0,
            ),
            (None, Some(note)) => eprintln!("[dar-loop] round {}: {note}", r.round),
            _ => {}
        }
    }
    let candidates_seen = report.rounds.iter().filter(|r| r.outcome.is_some()).count();
    let stats = server.shutdown();

    let throughput = served as f64 / elapsed.as_secs_f64().max(1e-9);
    let summary = format!(
        "dar-loop bench — {rounds} rounds, {n_replicas} replicas, seed {seed}\n\
         candidates canaried:    {candidates_seen}\n\
         promoted:               {p}\n\
         rolled back:            {rb}\n\
         offers rejected:        {orej}\n\
         served / failed:        {served} / {failed}\n\
         final weights version:  v{fv}\n\
         throughput:             {tp:.1} req/s\n\
         latency p50 / p99:      {p50} / {p99} us\n",
        p = report.promoted,
        rb = report.rolled_back,
        orej = report.offers_rejected,
        fv = report.final_version,
        tp = throughput,
        p50 = stats.p50_us,
        p99 = stats.p99_us,
    );
    print!("{summary}");
    std::fs::write(out_dir.join("loop_bench.txt"), &summary).expect("writing loop_bench.txt");

    let json = format!(
        "{{\"rounds\": {rounds}, \"workers\": {n_replicas}, \"seed\": {seed}, \
          \"candidates\": {candidates_seen}, \"promoted\": {}, \"rolled_back\": {}, \
          \"offers_rejected\": {}, \"served\": {served}, \"failed\": {failed}, \
          \"final_version\": {}, \"trainer_died\": {}, \
          \"throughput_rps\": {throughput:.2}, \"p50_us\": {}, \"p99_us\": {}}}\n",
        report.promoted,
        report.rolled_back,
        report.offers_rejected,
        report.final_version,
        report.trainer_died,
        stats.p50_us,
        stats.p99_us,
    );
    std::fs::write(out_dir.join("BENCH_online.json"), json).expect("writing BENCH_online.json");

    match dar::obs::write_snapshot(&out_dir, "online") {
        Ok(p) => eprintln!("[dar-loop] obs snapshot: {}", p.display()),
        Err(e) => eprintln!("[dar-loop] obs snapshot failed: {e}"),
    }

    // Healthy: every request resolved, the trainer survived, every round
    // reached a verdict, and no verdict displaced the incumbent with a
    // worse model (a promotion must have cleared the accuracy bar).
    let verdicts_sound = report.rounds.iter().all(|r| match &r.outcome {
        Some(o) if o.phase == PromotionPhase::Promoted => {
            o.snapshot.candidate.accuracy() + loop_cfg.policy.max_acc_drop
                >= o.snapshot.incumbent.accuracy()
        }
        _ => true,
    });
    let healthy = failed == 0
        && !report.trainer_died
        && candidates_seen == rounds
        && verdicts_sound
        && stats.panics == 0;
    std::fs::remove_file(&incumbent_path).ok();
    if !healthy {
        eprintln!("[dar-loop] UNHEALTHY run — see counters above");
        std::process::exit(1);
    }
    eprintln!("[dar-loop] ok");
}
