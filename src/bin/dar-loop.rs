//! `dar-loop` — demo + benchmark driver for the closed online loop:
//! train-while-serve with canary evaluation and auto-rollback.
//!
//! Topology (DESIGN.md §13): a background trainer consumes a streaming
//! synthetic review feed (with a poison hook exercising feed admission)
//! and writes one candidate checkpoint per round; the controller canaries
//! each candidate on a deterministic traffic slice against the incumbent
//! and promotes or rolls back. Results land in `results/BENCH_online.json`
//! and the obs snapshot in `results/obs_online.json`.
//!
//! With `--state-dir` the loop becomes *durable* (DESIGN.md §15): every
//! verdict is committed to a write-ahead journal before it takes effect,
//! and `--recover` replays the journal, republishes the incumbent, and
//! resumes the feed at the logged cursor.
//!
//! `--drill` runs the deterministic kill-and-recover fixture the chaos
//! harness (`tests/crash_recovery.rs`) SIGKILLs at seeded points:
//! structurally biased candidates alternate promote/rollback verdicts
//! that are independent of traffic position, so a recovered run's
//! journal must continue the uninterrupted golden exactly. `--wal-pad N`
//! additionally times a synthetic N-record WAL replay into
//! `results/BENCH_recovery.json` for benchgate.
//!
//! ```sh
//! dar-loop                           # defaults: 3 rounds, auto replicas
//! dar-loop --rounds 5 --seed 7 --wave 24 --out results
//! dar-loop --state-dir target/loop-state --recover
//! dar-loop --drill --rounds 4 --state-dir target/drill --wal-pad 20000
//! ```

use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Instant;

use dar::core::stream::{spawn_online_trainer, CandidateMsg, FeedConfig, OnlineTrainerConfig};
use dar::data::Review;
use dar::prelude::*;
use dar::serve::{
    run_online_loop, run_online_loop_durable, CanaryPolicy, OnlineLoopConfig, PromotionPhase,
    ServeConfig, Server,
};
use dar::store::{DurableState, RealStorage, StateRecord, Wal, WAL_FILE};
use dar::tensor::serial::{self, Checkpoint};
use dar::tensor::Tensor;

fn flag(args: &[String], name: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn str_flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn bool_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// A checkpoint that predicts `label` for *every* input: all parameters
/// zeroed except 2-element tensors (the classifier bias), which get +8
/// on the wanted logit. The verdict such a candidate earns on
/// single-label traffic is structural — independent of traffic position,
/// canary slice, or restart — which is what makes the drill's recovered
/// journal byte-comparable to the uninterrupted golden.
fn biased_checkpoint(factory: &dar::serve::ModelFactory, label: usize) -> Checkpoint {
    let model = factory();
    let tensors: Vec<Tensor> = model
        .params()
        .iter()
        .map(|p| {
            let shape = p.shape().to_vec();
            if shape.iter().product::<usize>() == 2 {
                let v = if label == 1 {
                    vec![0.0, 8.0]
                } else {
                    vec![8.0, 0.0]
                };
                Tensor::new(v, &shape)
            } else {
                Tensor::zeros(&shape)
            }
        })
        .collect();
    Checkpoint::new(tensors, Vec::new())
}

/// The deterministic kill-and-recover fixture. Candidates alternate:
/// even rounds predict label 1 (the traffic's label → accuracy 1.0 →
/// promoted), odd rounds predict label 0 (accuracy 0.0 → rolled back).
fn drill_main(args: &[String]) {
    let rounds = flag(args, "--rounds").unwrap_or(4) as usize;
    let state_dir =
        PathBuf::from(str_flag(args, "--state-dir").expect("--drill requires --state-dir DIR"));
    let recover = bool_flag(args, "--recover");
    let delay_ms = flag(args, "--round-delay-ms").unwrap_or(0);
    let wal_pad = flag(args, "--wal-pad");
    let out_dir = str_flag(args, "--out").map(PathBuf::from);

    if !recover {
        std::fs::remove_dir_all(&state_dir).ok();
    }
    std::fs::create_dir_all(&state_dir).expect("creating state dir");

    // Fixed fixture (seed 603): small synthetic beer corpus, tiny model.
    let synth = SynthConfig {
        n_train: 96,
        n_dev: 24,
        n_test: 32,
        ..SynthConfig::beer(Aspect::Aroma)
    };
    let data = SynBeer::generate(&synth, &mut dar::rng(603));
    let cfg = RationaleConfig {
        emb_dim: 12,
        hidden: 12,
        sparsity: 0.16,
        ..Default::default()
    };
    let ml = pretrain::max_len(&data);
    let vocab = data.vocab.len();
    let factory: dar::serve::ModelFactory = Arc::new(move || {
        let mut rng = dar::rng(603);
        let emb = SharedEmbedding::random(vocab, cfg.emb_dim, &mut rng);
        Box::new(Rnp::new(&cfg, &emb, ml, &mut rng))
    });

    // Single-label traffic: every request is label 1, so the label-1
    // candidate scores 1.0 and the label-0 one 0.0 on any slice.
    let traffic: Vec<Review> = data.test.iter().filter(|r| r.label == 1).cloned().collect();
    assert!(!traffic.is_empty(), "drill fixture needs label-1 traffic");

    let storage: Arc<dyn dar::store::Storage> = Arc::new(RealStorage);
    let (mut state, recovery) =
        DurableState::open(Arc::clone(&storage), &state_dir).expect("opening durable state");
    eprintln!(
        "[dar-loop] drill state: {} records, generation {}, resume round {}, \
         torn {} bytes, {} orphans swept",
        recovery.records.len(),
        recovery.generation,
        recovery.resume_round,
        recovery.truncated_bytes,
        recovery.orphans_swept,
    );

    // Candidate checkpoints for every remaining round, written up front
    // so the feeder thread only paces message delivery.
    let start_round = state.resume_round();
    let mut cand_paths = Vec::new();
    for r in start_round..rounds {
        let path = state_dir.join(format!("drill_cand_r{r}.ckpt"));
        let label = if r % 2 == 0 { 1 } else { 0 };
        serial::save_checkpoint_path(&path, &biased_checkpoint(&factory, label))
            .expect("saving drill candidate");
        cand_paths.push((r, path));
    }

    let serve_cfg = ServeConfig {
        vocab_size: vocab,
        max_len: ml,
        ..ServeConfig::default()
    };
    let server = Server::start(serve_cfg, Arc::clone(&factory));

    // Incumbent: the recovered generation when there is one, else the
    // label-0 loser every even-round candidate beats.
    let incumbent_path = match state.incumbent_path() {
        Some(p) if recover => p,
        _ => {
            let p = state_dir.join("drill_incumbent.ckpt");
            serial::save_checkpoint_path(&p, &biased_checkpoint(&factory, 0))
                .expect("saving drill incumbent");
            p
        }
    };
    server
        .offer_checkpoint(&incumbent_path)
        .expect("publishing drill incumbent");

    // Feeder thread: paced candidate delivery so the harness can SIGKILL
    // the process between (and inside) rounds.
    let (tx, rx) = mpsc::channel();
    let feeder = std::thread::spawn(move || {
        for (round, path) in cand_paths {
            if delay_ms > 0 {
                std::thread::sleep(std::time::Duration::from_millis(delay_ms));
            }
            if tx
                .send(CandidateMsg::Candidate {
                    round,
                    path,
                    trained_on: 0,
                    rejected: 0,
                })
                .is_err()
            {
                return;
            }
        }
        let _ = tx.send(CandidateMsg::Finished);
    });

    let loop_cfg = OnlineLoopConfig {
        // Verdicts must ride on accuracy alone: the biased drill
        // checkpoints have all-zero generators (degraded answers trip
        // the faults gate) and no meaningful rationales, so both of
        // those gates are opened wide.
        policy: CanaryPolicy {
            window: 24,
            max_f1_drop: 1.0,
            max_candidate_faults: u64::MAX,
            ..CanaryPolicy::default()
        },
        wave: 16,
        max_waves: 64,
    };
    let report = run_online_loop_durable(&server, &rx, &traffic, &loop_cfg, &mut state);
    feeder.join().expect("joining drill feeder");
    let stats = server.shutdown();

    for r in &report.rounds {
        match (&r.outcome, &r.note) {
            (Some(o), _) => eprintln!(
                "[dar-loop] drill round {}: {:?} cause {:?} (cand acc {:.2} vs inc {:.2})",
                r.round,
                o.phase,
                o.cause,
                o.snapshot.candidate.accuracy(),
                o.snapshot.incumbent.accuracy(),
            ),
            (None, Some(note)) => eprintln!("[dar-loop] drill round {}: {note}", r.round),
            _ => {}
        }
    }

    eprintln!(
        "[dar-loop] drill done: {} promoted, {} rolled back, generation {}, \
         served {} (panics {})",
        report.promoted,
        report.rolled_back,
        state.generation(),
        report.rounds.iter().map(|r| r.served_ok).sum::<u64>(),
        stats.panics,
    );

    // Optional replay-latency bench: pad a scratch WAL with N cursor
    // records and time a cold DurableState::open over it.
    if let (Some(n), Some(out)) = (wal_pad, out_dir) {
        let bench_dir = state_dir.with_file_name(format!(
            "{}_walbench",
            state_dir.file_name().unwrap_or_default().to_string_lossy()
        ));
        std::fs::remove_dir_all(&bench_dir).ok();
        std::fs::create_dir_all(&bench_dir).expect("creating wal bench dir");
        {
            let (wal, _) = Wal::open(Arc::clone(&storage), bench_dir.join(WAL_FILE))
                .expect("opening bench WAL");
            wal.append_many((0..n).map(|i| {
                StateRecord::FeedCursor {
                    next_round: i as usize,
                }
                .encode()
            }))
            .expect("padding bench WAL");
        }
        let started = Instant::now();
        let (_, r) =
            DurableState::open(Arc::clone(&storage), &bench_dir).expect("replaying bench WAL");
        let replay_us = started.elapsed().as_micros() as u64;
        assert_eq!(r.records.len() as u64, n, "bench replay lost records");
        let per_s = n as f64 / (replay_us as f64 / 1e6).max(1e-9);
        std::fs::create_dir_all(&out).expect("creating output dir");
        let json = format!(
            "{{\"replay_records\": {n}, \"replay_us\": {replay_us}, \
              \"replay_records_per_s\": {per_s:.1}}}\n"
        );
        std::fs::write(out.join("BENCH_recovery.json"), json).expect("writing BENCH_recovery.json");
        eprintln!("[dar-loop] WAL replay bench: {n} records in {replay_us} us ({per_s:.0} rec/s)");
        std::fs::remove_dir_all(&bench_dir).ok();
    }
    eprintln!("[dar-loop] ok");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: dar-loop [--rounds N] [--wave N] [--seed N] [--out DIR]\n\
             \x20       [--state-dir DIR [--recover]]\n\
             \x20       --drill --state-dir DIR [--rounds N] [--round-delay-ms D]\n\
             \x20               [--recover] [--wal-pad N --out DIR]"
        );
        std::process::exit(2);
    }
    if bool_flag(&args, "--drill") {
        drill_main(&args);
        return;
    }
    let rounds = flag(&args, "--rounds").unwrap_or(3) as usize;
    let wave = flag(&args, "--wave").unwrap_or(16) as usize;
    let seed = flag(&args, "--seed").unwrap_or(42);
    let out_dir = PathBuf::from(str_flag(&args, "--out").unwrap_or_else(|| "results".into()));
    std::fs::create_dir_all(&out_dir).expect("creating output dir");
    let recover = bool_flag(&args, "--recover");

    // Optional durable journal: verdicts WAL-committed before effect.
    let mut durable = str_flag(&args, "--state-dir").map(|dir| {
        let dir = PathBuf::from(dir);
        if !recover {
            std::fs::remove_dir_all(&dir).ok();
        }
        let (state, recovery) =
            DurableState::open(Arc::new(RealStorage), &dir).expect("opening durable state dir");
        eprintln!(
            "[dar-loop] durable state: {} records, generation {}, resume round {}",
            recovery.records.len(),
            recovery.generation,
            recovery.resume_round,
        );
        state
    });

    // Base dataset: serving traffic + the incumbent's training set.
    let synth = SynthConfig {
        n_train: 128,
        n_dev: 32,
        n_test: 64,
        ..SynthConfig::beer(Aspect::Aroma)
    };
    let data = SynBeer::generate(&synth, &mut dar::rng(seed));
    let cfg = RationaleConfig {
        emb_dim: 16,
        hidden: 24,
        sparsity: 0.16,
        ..Default::default()
    };
    let ml = pretrain::max_len(&data);
    let vocab = data.vocab.len();

    // Incumbent: recovered from the durable journal when possible, else
    // one trained epoch, hot-swapped in before the loop runs, so
    // candidates have a real bar to clear.
    let recovered_incumbent = durable
        .as_ref()
        .filter(|_| recover)
        .and_then(|st| st.incumbent_path());
    let incumbent_path = match &recovered_incumbent {
        Some(p) => {
            eprintln!(
                "[dar-loop] republishing recovered incumbent {}",
                p.display()
            );
            p.clone()
        }
        None => {
            eprintln!("[dar-loop] training the incumbent...");
            let path = out_dir.join("loop_incumbent.ckpt");
            let mut rng = dar::rng(seed + 1);
            let emb = SharedEmbedding::random(vocab, cfg.emb_dim, &mut rng);
            let mut model = Rnp::new(&cfg, &emb, ml, &mut rng);
            let mut rng = dar::rng(seed + 2);
            let report = Trainer::new(TrainConfig {
                epochs: 1,
                batch_size: 32,
                patience: None,
                ..Default::default()
            })
            .fit(&mut model, &data, &mut rng);
            eprintln!(
                "[dar-loop] incumbent: acc {:.1}%  rationale F1 {:.1}%",
                report.test.acc.unwrap_or(0.0) * 100.0,
                report.test.f1 * 100.0
            );
            serial::save_checkpoint_path(&path, &Checkpoint::new(model.params(), Vec::new()))
                .expect("saving incumbent checkpoint");
            path
        }
    };

    let factory: dar::serve::ModelFactory = Arc::new(move || {
        let mut rng = dar::rng(seed + 1);
        let emb = SharedEmbedding::random(vocab, cfg.emb_dim, &mut rng);
        Box::new(Rnp::new(&cfg, &emb, ml, &mut rng))
    });
    let serve_cfg = ServeConfig {
        vocab_size: vocab,
        max_len: ml,
        ..ServeConfig::default()
    };
    let n_replicas = serve_cfg.effective_replicas();
    let server = Server::start(serve_cfg, Arc::clone(&factory));
    let incumbent_version = server
        .offer_checkpoint(&incumbent_path)
        .expect("incumbent checkpoint accepted");
    eprintln!(
        "[dar-loop] serving with {n_replicas} replicas, incumbent v{incumbent_version} \
         (DAR_THREADS budget {})",
        dar_par::max_threads()
    );

    // Background trainer on a streaming feed (poison every 9th review to
    // exercise feed admission), resuming at the journal's cursor when
    // recovering so completed rounds are never re-trained.
    let first_round = durable.as_ref().map_or(0, |st| st.resume_round());
    let trainer_cfg = OnlineTrainerConfig {
        rounds,
        first_round,
        epochs_per_round: 2,
        batch_size: 32,
        vocab_size: vocab,
        max_len: ml,
        candidate_dir: out_dir.clone(),
        seed: seed + 3,
        resume_from: recovered_incumbent.clone(),
        panic_at_round: None,
    };
    let feed = FeedConfig {
        synth: SynthConfig {
            n_train: 96,
            ..synth
        },
        seed: seed + 4,
        poison_every: Some(9),
    };
    let (trainer, candidates) = spawn_online_trainer(trainer_cfg, Arc::clone(&factory), feed);

    let loop_cfg = OnlineLoopConfig {
        policy: CanaryPolicy {
            window: 40,
            ..CanaryPolicy::default()
        },
        wave,
        max_waves: 64,
    };
    let traffic: Vec<Review> = data.test.clone();
    let started = Instant::now();
    let report = match durable.as_mut() {
        Some(state) => run_online_loop_durable(&server, &candidates, &traffic, &loop_cfg, state),
        None => run_online_loop(&server, &candidates, &traffic, &loop_cfg),
    };
    let elapsed = started.elapsed();
    trainer.join().expect("joining the trainer thread");

    let served: u64 = report.rounds.iter().map(|r| r.served_ok).sum();
    let failed: u64 = report.rounds.iter().map(|r| r.failed).sum();
    for r in &report.rounds {
        match (&r.outcome, &r.note) {
            (Some(o), _) => eprintln!(
                "[dar-loop] round {}: v{} {:?} (cand acc {:.1}% vs inc {:.1}%)",
                r.round,
                o.version,
                o.phase,
                o.snapshot.candidate.accuracy() * 100.0,
                o.snapshot.incumbent.accuracy() * 100.0,
            ),
            (None, Some(note)) => eprintln!("[dar-loop] round {}: {note}", r.round),
            _ => {}
        }
    }
    let candidates_seen = report.rounds.iter().filter(|r| r.outcome.is_some()).count();
    let stats = server.shutdown();

    let throughput = served as f64 / elapsed.as_secs_f64().max(1e-9);
    let summary = format!(
        "dar-loop bench — {rounds} rounds, {n_replicas} replicas, seed {seed}\n\
         candidates canaried:    {candidates_seen}\n\
         promoted:               {p}\n\
         rolled back:            {rb}\n\
         offers rejected:        {orej}\n\
         served / failed:        {served} / {failed}\n\
         final weights version:  v{fv}\n\
         throughput:             {tp:.1} req/s\n\
         latency p50 / p99:      {p50} / {p99} us\n",
        p = report.promoted,
        rb = report.rolled_back,
        orej = report.offers_rejected,
        fv = report.final_version,
        tp = throughput,
        p50 = stats.p50_us,
        p99 = stats.p99_us,
    );
    print!("{summary}");
    std::fs::write(out_dir.join("loop_bench.txt"), &summary).expect("writing loop_bench.txt");

    let json = format!(
        "{{\"rounds\": {rounds}, \"workers\": {n_replicas}, \"seed\": {seed}, \
          \"candidates\": {candidates_seen}, \"promoted\": {}, \"rolled_back\": {}, \
          \"offers_rejected\": {}, \"served\": {served}, \"failed\": {failed}, \
          \"final_version\": {}, \"trainer_died\": {}, \
          \"throughput_rps\": {throughput:.2}, \"p50_us\": {}, \"p99_us\": {}}}\n",
        report.promoted,
        report.rolled_back,
        report.offers_rejected,
        report.final_version,
        report.trainer_died,
        stats.p50_us,
        stats.p99_us,
    );
    std::fs::write(out_dir.join("BENCH_online.json"), json).expect("writing BENCH_online.json");

    match dar::obs::write_snapshot(&out_dir, "online") {
        Ok(p) => eprintln!("[dar-loop] obs snapshot: {}", p.display()),
        Err(e) => eprintln!("[dar-loop] obs snapshot failed: {e}"),
    }

    // Healthy: every request resolved, the trainer survived, every round
    // reached a verdict, and no verdict displaced the incumbent with a
    // worse model (a promotion must have cleared the accuracy bar).
    let verdicts_sound = report.rounds.iter().all(|r| match &r.outcome {
        Some(o) if o.phase == PromotionPhase::Promoted => {
            o.snapshot.candidate.accuracy() + loop_cfg.policy.max_acc_drop
                >= o.snapshot.incumbent.accuracy()
        }
        _ => true,
    });
    let healthy = failed == 0
        && !report.trainer_died
        && candidates_seen == rounds
        && verdicts_sound
        && stats.panics == 0;
    if recovered_incumbent.is_none() {
        std::fs::remove_file(&incumbent_path).ok();
    }
    if !healthy {
        eprintln!("[dar-loop] UNHEALTHY run — see counters above");
        std::process::exit(1);
    }
    eprintln!("[dar-loop] ok");
}
