//! `dar-serve` — demo + benchmark driver for the resilient serving
//! runtime.
//!
//! **Demo mode** (default): trains a tiny RNP, checkpoints it, then
//! replays a deterministic traffic trace through a [`Server`]: clean
//! requests, a mid-trace hot weight swap, a corrupted checkpoint offer
//! (must be rejected without a blip), and a tail of malformed requests
//! (must bounce at admission). The human-readable report lands in
//! `results/serve_bench.txt`.
//!
//! **Saturation mode** (`--saturate`): sweeps the replica count over
//! 1/2/4/8 against a light multi-tenant workload (16 tenants, hashed
//! onto shards) and writes the flat `results/BENCH_serve.json` the bench
//! regression gate consumes — headline aggregate throughput at the
//! runtime's default 4-replica width (recorded as `workers`), plus
//! per-width `rps_wN` / `p99_wN` series and steal counts.
//! EXPERIMENTS.md explains how to read the sweep.
//!
//! **Health mode** (`--health-bench`): wedges one replica with a sticky
//! livelock at 1/2/4 replicas and measures the self-healing layer
//! (DESIGN.md §16): stall-detection latency (stall onset → quarantine)
//! and hedge overhead (extra end-to-end latency a hedged victim pays
//! over a clean request), written to the flat
//! `results/BENCH_health.json` the bench regression gate consumes.
//!
//! ```sh
//! dar-serve                          # demo: 400 requests, auto replicas
//! dar-serve --requests 1000 --replicas 2 --seed 7 --out results
//! dar-serve --saturate --requests 1024 --out results
//! dar-serve --health-bench --out results
//! ```

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use dar::core::fault::StallPlan;
use dar::data::Review;
use dar::prelude::*;
use dar::serve::{HealthPolicy, ServeConfig, ServeError, Server, StealPolicy};
use dar::tensor::serial::{self, Checkpoint};

fn flag(args: &[String], name: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn str_flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: dar-serve [--saturate | --health-bench] [--requests N] [--replicas N] \
             [--seed N] [--out DIR]"
        );
        std::process::exit(2);
    }
    let seed = flag(&args, "--seed").unwrap_or(42);
    let out_dir = PathBuf::from(str_flag(&args, "--out").unwrap_or_else(|| "results".into()));
    if args.iter().any(|a| a == "--health-bench") {
        health_bench(seed, &out_dir);
    } else if args.iter().any(|a| a == "--saturate") {
        let n_requests = flag(&args, "--requests").unwrap_or(1024) as usize;
        saturate(n_requests, seed, &out_dir);
    } else {
        let n_requests = flag(&args, "--requests").unwrap_or(400) as usize;
        let replicas = flag(&args, "--replicas").unwrap_or(0) as usize;
        demo(n_requests, replicas, seed, &out_dir);
    }
}

// ---- Saturation sweep ---------------------------------------------------

/// Sweep replica widths against one shared multi-tenant trace and write
/// the flat bench JSON. The workload is deliberately light (tiny model,
/// short reviews, batch 128) so the sweep measures the runtime — queue
/// handoff, routing, batching, stealing — rather than GRU math.
fn saturate(n_requests: usize, seed: u64, out_dir: &std::path::Path) {
    const WIDTHS: [usize; 4] = [1, 2, 4, 8];
    const TENANTS: u64 = 16;

    let synth = SynthConfig {
        n_train: 128,
        n_dev: 32,
        n_test: 64,
        filler_sentences: 0,
        filler_in_sentence: (0, 1),
        sentiment_tokens: 1,
        ..SynthConfig::beer(Aspect::Aroma)
    };
    let data = SynBeer::generate(&synth, &mut dar::rng(seed));
    let cfg = RationaleConfig {
        emb_dim: 8,
        hidden: 8,
        sparsity: 0.16,
        ..Default::default()
    };
    let ml = pretrain::max_len(&data);
    let vocab = data.vocab.len();
    let reviews: Vec<Review> = (0..n_requests)
        .map(|i| data.test[i % data.test.len()].clone())
        .collect();

    let mut rps = Vec::new();
    let mut p99 = Vec::new();
    let mut steals = Vec::new();
    let mut total_panics = 0u64;
    let mut all_ok = true;
    // Best-of-3 per width (the obsbench discipline): each repetition is a
    // fresh server over the same trace, and the best repetition is the
    // capacity figure — the others measure scheduler luck, not the
    // runtime. Correctness (every request ok, zero panics) is demanded
    // of every repetition, not just the best one.
    const REPS: usize = 3;
    for width in WIDTHS {
        let mut best: Option<(f64, u64, u64, u64)> = None;
        for _rep in 0..REPS {
            let factory: dar::serve::ModelFactory = Arc::new(move || {
                let mut rng = dar::rng(seed + 1);
                let emb = SharedEmbedding::random(vocab, cfg.emb_dim, &mut rng);
                Box::new(Rnp::new(&cfg, &emb, ml, &mut rng))
            });
            let server = Server::start(
                ServeConfig {
                    replicas: width,
                    queue_cap: n_requests + 16,
                    max_batch: 128,
                    vocab_size: vocab,
                    max_len: ml,
                    ..ServeConfig::default()
                },
                factory,
            );
            // Submit the whole trace up front, tenants round-robin, so
            // every shard holds a backlog and the steal path is actually
            // exercised.
            let started = Instant::now();
            let tickets: Vec<_> = reviews
                .iter()
                .enumerate()
                .map(|(i, r)| {
                    server.submit_for_tenant(r.clone(), i as u64 % TENANTS, Duration::from_secs(60))
                })
                .collect();
            let ok = tickets
                .into_iter()
                .map(|t| t.wait())
                .filter(|r| r.is_ok())
                .count();
            let elapsed = started.elapsed();
            let stats = server.shutdown();
            let rep_rps = ok as f64 / elapsed.as_secs_f64();
            all_ok &= ok == n_requests;
            total_panics += stats.panics;
            if best.is_none_or(|(b, _, _, _)| rep_rps > b) {
                best = Some((rep_rps, stats.p99_us, stats.steals, stats.stolen_requests));
            }
        }
        let (width_rps, width_p99, width_steals, width_stolen) =
            best.expect("at least one repetition ran");
        eprintln!(
            "[dar-serve] width {width}: {n_requests} requests ×{REPS}, best {width_rps:.1} rps, \
             p99 {width_p99} us, {width_steals} steals ({width_stolen} requests)"
        );
        rps.push(width_rps);
        p99.push(width_p99);
        steals.push(width_steals);
    }

    std::fs::create_dir_all(out_dir).expect("creating output dir");
    // Flat JSON only — benchgate's parser has no nesting. The headline
    // point is the 4-replica row: the runtime's own default replica
    // clamp (`effective_replicas`), so the gate tracks the production
    // configuration run-over-run rather than whichever width happened
    // to peak under scheduler noise. `workers` records that width so
    // the gate never compares this sweep against a baseline taken at
    // a different scale. The other widths ride along as columns.
    const HEADLINE_WIDTH: usize = 4;
    let hl = WIDTHS
        .iter()
        .position(|&w| w == HEADLINE_WIDTH)
        .expect("headline width is part of the sweep");
    let mut json = format!(
        "{{\"schema_version\": 1, \"requests\": {n_requests}, \"workers\": {}, \"seed\": {seed}, \
          \"throughput_rps\": {:.2}, \"p50_us\": 0, \"p99_us\": {}, \"max_us\": 0, \
          \"panics\": {total_panics}, \"steals\": {}",
        WIDTHS[hl], rps[hl], p99[hl], steals[hl],
    );
    for (i, width) in WIDTHS.iter().enumerate() {
        json += &format!(
            ", \"rps_w{width}\": {:.2}, \"p99_w{width}\": {}",
            rps[i], p99[i]
        );
    }
    json += "}\n";
    std::fs::write(out_dir.join("BENCH_serve.json"), json).expect("writing BENCH_serve.json");
    eprintln!(
        "[dar-serve] saturation sweep written: {}",
        out_dir.join("BENCH_serve.json").display()
    );
    if !all_ok || total_panics > 0 {
        eprintln!("[dar-serve] UNHEALTHY sweep — see per-width lines above");
        std::process::exit(1);
    }
    eprintln!("[dar-serve] ok");
}

// ---- Self-healing bench -------------------------------------------------

/// Wedge one replica with a sticky livelock at 1/2/4 replicas and
/// measure the watchdog (DESIGN.md §16): `detection_us` is stall onset →
/// quarantine, `hedge_overhead_us` is the extra end-to-end latency a
/// hedged victim pays over a clean request on the same server. Best
/// (minimum) of 3 repetitions per width — the other repetitions measure
/// scheduler luck; correctness is demanded of every repetition. The
/// headline columns are the 2-replica width (the smallest that can
/// hedge); other widths ride along as `_wN` columns.
fn health_bench(seed: u64, out_dir: &std::path::Path) {
    const WIDTHS: [usize; 3] = [1, 2, 4];
    const HEADLINE_WIDTH: usize = 2;
    const REPS: usize = 3;
    const VICTIMS: usize = 8;

    let synth = SynthConfig {
        n_train: 128,
        n_dev: 32,
        n_test: 64,
        filler_sentences: 0,
        filler_in_sentence: (0, 1),
        sentiment_tokens: 1,
        ..SynthConfig::beer(Aspect::Aroma)
    };
    let data = SynBeer::generate(&synth, &mut dar::rng(seed));
    let cfg = RationaleConfig {
        emb_dim: 8,
        hidden: 8,
        sparsity: 0.16,
        ..Default::default()
    };
    let ml = pretrain::max_len(&data);
    // One trigger row past the organic vocabulary wedges a batch.
    let spin_tok = data.vocab.len();
    let vocab_rows = data.vocab.len() + 1;
    let policy = HealthPolicy {
        enabled: true,
        stall_budget: Duration::from_millis(150),
        deadline_grace: Duration::from_millis(60),
        probation_probes: 1,
        hedge_min_budget: Duration::from_millis(1),
    };

    let mut detection = Vec::new(); // per width, best-of-REPS, us
    let mut hedge = Vec::new(); // per width (>= 2), best-of-REPS, us
    let mut healthy = true;
    for width in WIDTHS {
        let mut best_det = u64::MAX;
        let mut best_hedge = u64::MAX;
        for _rep in 0..REPS {
            let factory: dar::serve::ModelFactory = Arc::new(move || {
                let mut rng = dar::rng(seed + 1);
                let emb = SharedEmbedding::random(vocab_rows, cfg.emb_dim, &mut rng);
                let rnp = Rnp::new(&cfg, &emb, ml, &mut rng);
                Box::new(ChaosModel::new(
                    rnp,
                    ChaosPlan {
                        stall: StallPlan {
                            spin_token: Some((spin_tok, 600)),
                            sticky: true,
                            ..Default::default()
                        },
                        ..Default::default()
                    },
                ))
            });
            let server = Server::start(
                ServeConfig {
                    replicas: width,
                    max_batch: 8,
                    linger: Duration::from_millis(1),
                    queue_cap: 64,
                    vocab_size: vocab_rows,
                    max_len: ml,
                    steal: StealPolicy {
                        enabled: false,
                        min_victim_backlog: None,
                    },
                    health: policy.clone(),
                    ..ServeConfig::default()
                },
                factory,
            );
            let tenant = 1u64;

            // Clean-latency baseline on the soon-to-be-wedged shard.
            let base_started = Instant::now();
            for i in 0..VICTIMS {
                server
                    .submit_for_tenant(
                        data.test[i % data.test.len()].clone(),
                        tenant,
                        Duration::from_secs(10),
                    )
                    .wait()
                    .expect("baseline traffic serves");
            }
            let baseline_us = base_started.elapsed().as_micros() as u64 / VICTIMS as u64;

            // Stall onset: a short-deadline trigger wedges the replica.
            let mut wedged = data.test[0].clone();
            wedged.ids[0] = spin_tok;
            let onset = Instant::now();
            let wedge = server.submit_for_tenant(wedged, tenant, Duration::from_millis(200));
            std::thread::sleep(Duration::from_millis(40)); // let it get claimed
            let victim_started = Instant::now();
            let victims: Vec<_> = (0..VICTIMS)
                .map(|i| {
                    server.submit_for_tenant(
                        data.test[i % data.test.len()].clone(),
                        tenant,
                        Duration::from_secs(10),
                    )
                })
                .collect();
            while server.stats().quarantines < 1 {
                if onset.elapsed() > Duration::from_secs(5) {
                    eprintln!("[dar-serve] width {width}: quarantine never detected");
                    healthy = false;
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            let det_us = onset.elapsed().as_micros() as u64;
            healthy &= matches!(wedge.wait(), Err(ServeError::DeadlineExceeded));
            let mut victim_sum_us = 0u64;
            for t in victims {
                match t.wait() {
                    Ok(_) if width >= 2 => {
                        victim_sum_us += victim_started.elapsed().as_micros() as u64;
                    }
                    Err(ServeError::Abandoned) if width == 1 => {}
                    other => {
                        eprintln!("[dar-serve] width {width}: unexpected victim verdict {other:?}");
                        healthy = false;
                    }
                }
            }
            let stats = server.shutdown();
            healthy &= stats.quarantines == 1;
            best_det = best_det.min(det_us);
            if width >= 2 {
                let mean_us = victim_sum_us / VICTIMS as u64;
                best_hedge = best_hedge.min(mean_us.saturating_sub(baseline_us).max(1));
                healthy &= stats.hedged == VICTIMS as u64;
            }
        }
        eprintln!(
            "[dar-serve] width {width}: detection {best_det} us{}",
            if width >= 2 {
                format!(", hedge overhead {best_hedge} us")
            } else {
                String::new()
            }
        );
        detection.push(best_det);
        if width >= 2 {
            hedge.push(best_hedge);
        }
    }

    std::fs::create_dir_all(out_dir).expect("creating output dir");
    // Flat JSON only — benchgate's parser has no nesting. Headline
    // columns are the 2-replica width; `workers` pins the scale context.
    let hl = WIDTHS
        .iter()
        .position(|&w| w == HEADLINE_WIDTH)
        .expect("headline width is part of the sweep");
    let mut json = format!(
        "{{\"schema_version\": 1, \"workers\": {HEADLINE_WIDTH}, \"seed\": {seed}, \
          \"victims\": {VICTIMS}, \"detection_us\": {}, \"hedge_overhead_us\": {}",
        detection[hl],
        hedge[hl - 1],
    );
    for (i, width) in WIDTHS.iter().enumerate() {
        json += &format!(", \"detection_us_w{width}\": {}", detection[i]);
        if *width >= 2 {
            json += &format!(", \"hedge_overhead_us_w{width}\": {}", hedge[i - 1]);
        }
    }
    json += "}\n";
    std::fs::write(out_dir.join("BENCH_health.json"), json).expect("writing BENCH_health.json");
    eprintln!(
        "[dar-serve] health bench written: {}",
        out_dir.join("BENCH_health.json").display()
    );
    if !healthy {
        eprintln!("[dar-serve] UNHEALTHY health bench — see lines above");
        std::process::exit(1);
    }
    eprintln!("[dar-serve] ok");
}

// ---- Demo trace ---------------------------------------------------------

fn demo(n_requests: usize, replicas: usize, seed: u64, out_dir: &std::path::Path) {
    // A tiny but real model: train one epoch so the swapped-in weights
    // are visibly different from the factory's random init.
    let synth = SynthConfig {
        n_train: 128,
        n_dev: 32,
        n_test: 64,
        ..SynthConfig::beer(Aspect::Aroma)
    };
    let data = SynBeer::generate(&synth, &mut dar::rng(seed));
    let cfg = RationaleConfig {
        emb_dim: 16,
        hidden: 24,
        sparsity: 0.16,
        ..Default::default()
    };
    let ml = pretrain::max_len(&data);
    let vocab = data.vocab.len();

    eprintln!("[dar-serve] training a tiny RNP for the hot-swap checkpoint...");
    let mut model = {
        let mut rng = dar::rng(seed + 1);
        let emb = SharedEmbedding::random(vocab, cfg.emb_dim, &mut rng);
        Rnp::new(&cfg, &emb, ml, &mut rng)
    };
    let mut rng = dar::rng(seed + 2);
    let report = Trainer::new(TrainConfig {
        epochs: 1,
        batch_size: 32,
        patience: None,
        ..Default::default()
    })
    .fit(&mut model, &data, &mut rng);
    eprintln!(
        "[dar-serve] trained: acc {:.1}%  rationale F1 {:.1}%",
        report.test.acc.unwrap_or(0.0) * 100.0,
        report.test.f1 * 100.0
    );

    std::fs::create_dir_all(out_dir).expect("creating output dir");
    let ckpt_path = out_dir.join("serve_demo.ckpt");
    serial::save_checkpoint_path(&ckpt_path, &Checkpoint::new(model.params(), Vec::new()))
        .expect("saving demo checkpoint");
    drop(model);

    // The serving factory rebuilds the same architecture from the same
    // init seed on each worker thread; the trained weights arrive via the
    // checkpoint swap, exactly as they would in production.
    let factory: dar::serve::ModelFactory = Arc::new(move || {
        let mut rng = dar::rng(seed + 1);
        let emb = SharedEmbedding::random(vocab, cfg.emb_dim, &mut rng);
        Box::new(Rnp::new(&cfg, &emb, ml, &mut rng))
    });
    let serve_cfg = ServeConfig {
        replicas,
        queue_cap: n_requests + 16,
        vocab_size: vocab,
        max_len: ml,
        ..ServeConfig::default()
    };
    let n_replicas = serve_cfg.effective_replicas();
    let server = Server::start(serve_cfg, factory);
    eprintln!(
        "[dar-serve] serving with {n_replicas} replicas (DAR_THREADS budget {})",
        dar_par::max_threads()
    );

    // ---- Deterministic traffic trace ---------------------------------
    let reviews: Vec<Review> = (0..n_requests)
        .map(|i| data.test[i % data.test.len()].clone())
        .collect();
    let half = n_requests / 2;
    let started = Instant::now();

    // First half on the factory weights (v1).
    let first: Vec<_> = reviews[..half]
        .iter()
        .map(|r| server.submit(r.clone()))
        .collect();
    let ok_first = first
        .into_iter()
        .map(|t| t.wait())
        .filter(|r| r.is_ok())
        .count();

    // Hot swap mid-trace: the trained checkpoint becomes v2 between
    // batches, with in-flight requests finishing on v1.
    let v2 = server
        .offer_checkpoint(&ckpt_path)
        .expect("valid checkpoint accepted");
    eprintln!("[dar-serve] hot swap accepted: weights v{v2}");

    // A corrupted copy must be rejected while serving continues.
    let bad_path = out_dir.join("serve_demo.bad.ckpt");
    std::fs::copy(&ckpt_path, &bad_path).expect("copying checkpoint");
    dar::core::fault::corrupt_bitflip(&bad_path, seed).expect("corrupting copy");
    let rejected_offer = server.offer_checkpoint(&bad_path).is_err();
    eprintln!(
        "[dar-serve] corrupted offer rejected: {rejected_offer} (still v{})",
        server.weights_version()
    );

    // Second half on the trained weights (v2).
    let second: Vec<_> = reviews[half..]
        .iter()
        .map(|r| server.submit(r.clone()))
        .collect();
    let ok_second = second
        .into_iter()
        .map(|t| t.wait())
        .filter(|r| r.is_ok())
        .count();
    let elapsed = started.elapsed();

    // A burst of malformed requests bounces at admission, not in workers.
    let malformed = (0..16)
        .map(|i| dar::core::fault::malformed_review(vocab, seed + i))
        .map(|r| server.submit(r).wait())
        .filter(|r| matches!(r, Err(ServeError::Rejected(_))))
        .count();

    let stats = server.shutdown();
    std::fs::remove_file(&bad_path).ok();

    let throughput = (ok_first + ok_second) as f64 / elapsed.as_secs_f64();
    let txt = format!(
        "dar-serve bench — {n} requests, {w} replicas, seed {s}\n\
         served (v1 weights):    {a}\n\
         served (v2 weights):    {b}\n\
         hot swap accepted:      v{v2}\n\
         corrupted offer:        {rej}\n\
         malformed bounced:      {malformed}/16\n\
         throughput:             {tp:.1} req/s\n\
         latency p50:            {p50} us\n\
         latency p99:            {p99} us\n\
         latency max:            {max} us\n\
         panics:                 {panics}\n",
        n = n_requests,
        w = n_replicas,
        s = seed,
        a = ok_first,
        b = ok_second,
        rej = if rejected_offer {
            "rejected"
        } else {
            "ACCEPTED (BUG)"
        },
        tp = throughput,
        p50 = stats.p50_us,
        p99 = stats.p99_us,
        max = stats.max_us,
        panics = stats.panics,
    );
    print!("{txt}");
    std::fs::write(out_dir.join("serve_bench.txt"), &txt).expect("writing serve_bench.txt");

    match dar::obs::write_snapshot(out_dir, "serve") {
        Ok(p) => eprintln!("[dar-serve] obs snapshot: {}", p.display()),
        Err(e) => eprintln!("[dar-serve] obs snapshot failed: {e}"),
    }

    let healthy = ok_first + ok_second == n_requests
        && rejected_offer
        && malformed == 16
        && stats.panics == 0;
    if !healthy {
        eprintln!("[dar-serve] UNHEALTHY run — see counters above");
        std::process::exit(1);
    }
    eprintln!("[dar-serve] ok");
}
