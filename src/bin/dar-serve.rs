//! `dar-serve` — demo + benchmark driver for the resilient serving
//! runtime.
//!
//! Trains a tiny RNP, checkpoints it, then replays a deterministic
//! traffic trace through a [`Server`]: clean requests, a mid-trace hot
//! weight swap, a corrupted checkpoint offer (must be rejected without a
//! blip), and a tail of malformed requests (must bounce at admission).
//! Throughput and latency percentiles land in `results/serve_bench.txt`
//! and `results/BENCH_serve.json`.
//!
//! ```sh
//! dar-serve                          # defaults: 400 requests, auto workers
//! dar-serve --requests 1000 --workers 2 --seed 7 --out results
//! ```

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use dar::data::Review;
use dar::prelude::*;
use dar::serve::{ServeConfig, ServeError, Server};
use dar::tensor::serial::{self, Checkpoint};

fn flag(args: &[String], name: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn str_flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: dar-serve [--requests N] [--workers N] [--seed N] [--out DIR]");
        std::process::exit(2);
    }
    let n_requests = flag(&args, "--requests").unwrap_or(400) as usize;
    let workers = flag(&args, "--workers").unwrap_or(0) as usize;
    let seed = flag(&args, "--seed").unwrap_or(42);
    let out_dir = PathBuf::from(str_flag(&args, "--out").unwrap_or_else(|| "results".into()));

    // A tiny but real model: train one epoch so the swapped-in weights
    // are visibly different from the factory's random init.
    let synth = SynthConfig {
        n_train: 128,
        n_dev: 32,
        n_test: 64,
        ..SynthConfig::beer(Aspect::Aroma)
    };
    let data = SynBeer::generate(&synth, &mut dar::rng(seed));
    let cfg = RationaleConfig {
        emb_dim: 16,
        hidden: 24,
        sparsity: 0.16,
        ..Default::default()
    };
    let ml = pretrain::max_len(&data);
    let vocab = data.vocab.len();

    eprintln!("[dar-serve] training a tiny RNP for the hot-swap checkpoint...");
    let mut model = {
        let mut rng = dar::rng(seed + 1);
        let emb = SharedEmbedding::random(vocab, cfg.emb_dim, &mut rng);
        Rnp::new(&cfg, &emb, ml, &mut rng)
    };
    let mut rng = dar::rng(seed + 2);
    let report = Trainer::new(TrainConfig {
        epochs: 1,
        batch_size: 32,
        patience: None,
        ..Default::default()
    })
    .fit(&mut model, &data, &mut rng);
    eprintln!(
        "[dar-serve] trained: acc {:.1}%  rationale F1 {:.1}%",
        report.test.acc.unwrap_or(0.0) * 100.0,
        report.test.f1 * 100.0
    );

    std::fs::create_dir_all(&out_dir).expect("creating output dir");
    let ckpt_path = out_dir.join("serve_demo.ckpt");
    serial::save_checkpoint_path(&ckpt_path, &Checkpoint::new(model.params(), Vec::new()))
        .expect("saving demo checkpoint");
    drop(model);

    // The serving factory rebuilds the same architecture from the same
    // init seed on each worker thread; the trained weights arrive via the
    // checkpoint swap, exactly as they would in production.
    let factory: dar::serve::ModelFactory = Arc::new(move || {
        let mut rng = dar::rng(seed + 1);
        let emb = SharedEmbedding::random(vocab, cfg.emb_dim, &mut rng);
        Box::new(Rnp::new(&cfg, &emb, ml, &mut rng))
    });
    let serve_cfg = ServeConfig {
        workers,
        queue_cap: n_requests + 16,
        vocab_size: vocab,
        max_len: ml,
        ..ServeConfig::default()
    };
    let n_workers = serve_cfg.effective_workers();
    let server = Server::start(serve_cfg, factory);
    eprintln!(
        "[dar-serve] serving with {n_workers} workers (DAR_THREADS budget {})",
        dar_par::max_threads()
    );

    // ---- Deterministic traffic trace ---------------------------------
    let reviews: Vec<Review> = (0..n_requests)
        .map(|i| data.test[i % data.test.len()].clone())
        .collect();
    let half = n_requests / 2;
    let started = Instant::now();

    // First half on the factory weights (v1).
    let first: Vec<_> = reviews[..half]
        .iter()
        .map(|r| server.submit(r.clone()))
        .collect();
    let ok_first = first
        .into_iter()
        .map(|t| t.wait())
        .filter(|r| r.is_ok())
        .count();

    // Hot swap mid-trace: the trained checkpoint becomes v2 between
    // batches, with in-flight requests finishing on v1.
    let v2 = server
        .offer_checkpoint(&ckpt_path)
        .expect("valid checkpoint accepted");
    eprintln!("[dar-serve] hot swap accepted: weights v{v2}");

    // A corrupted copy must be rejected while serving continues.
    let bad_path = out_dir.join("serve_demo.bad.ckpt");
    std::fs::copy(&ckpt_path, &bad_path).expect("copying checkpoint");
    dar::core::fault::corrupt_bitflip(&bad_path, seed).expect("corrupting copy");
    let rejected_offer = server.offer_checkpoint(&bad_path).is_err();
    eprintln!(
        "[dar-serve] corrupted offer rejected: {rejected_offer} (still v{})",
        server.weights_version()
    );

    // Second half on the trained weights (v2).
    let second: Vec<_> = reviews[half..]
        .iter()
        .map(|r| server.submit(r.clone()))
        .collect();
    let ok_second = second
        .into_iter()
        .map(|t| t.wait())
        .filter(|r| r.is_ok())
        .count();
    let elapsed = started.elapsed();

    // A burst of malformed requests bounces at admission, not in workers.
    let malformed = (0..16)
        .map(|i| dar::core::fault::malformed_review(vocab, seed + i))
        .map(|r| server.submit(r).wait())
        .filter(|r| matches!(r, Err(ServeError::Rejected(_))))
        .count();

    let stats = server.shutdown();
    std::fs::remove_file(&bad_path).ok();

    let throughput = (ok_first + ok_second) as f64 / elapsed.as_secs_f64();
    let txt = format!(
        "dar-serve bench — {n} requests, {w} workers, seed {s}\n\
         served (v1 weights):    {a}\n\
         served (v2 weights):    {b}\n\
         hot swap accepted:      v{v2}\n\
         corrupted offer:        {rej}\n\
         malformed bounced:      {malformed}/16\n\
         throughput:             {tp:.1} req/s\n\
         latency p50:            {p50} us\n\
         latency p99:            {p99} us\n\
         latency max:            {max} us\n\
         panics:                 {panics}\n",
        n = n_requests,
        w = n_workers,
        s = seed,
        a = ok_first,
        b = ok_second,
        rej = if rejected_offer {
            "rejected"
        } else {
            "ACCEPTED (BUG)"
        },
        tp = throughput,
        p50 = stats.p50_us,
        p99 = stats.p99_us,
        max = stats.max_us,
        panics = stats.panics,
    );
    print!("{txt}");
    std::fs::write(out_dir.join("serve_bench.txt"), &txt).expect("writing serve_bench.txt");

    let json = format!(
        "{{\"requests\": {n_requests}, \"workers\": {n_workers}, \"seed\": {seed}, \
          \"served_v1\": {ok_first}, \"served_v2\": {ok_second}, \
          \"swap_version\": {v2}, \"corrupted_offer_rejected\": {rejected_offer}, \
          \"malformed_bounced\": {malformed}, \
          \"throughput_rps\": {throughput:.2}, \
          \"p50_us\": {}, \"p99_us\": {}, \"max_us\": {}, \"panics\": {}}}\n",
        stats.p50_us, stats.p99_us, stats.max_us, stats.panics,
    );
    std::fs::write(out_dir.join("BENCH_serve.json"), json).expect("writing BENCH_serve.json");

    match dar::obs::write_snapshot(&out_dir, "serve") {
        Ok(p) => eprintln!("[dar-serve] obs snapshot: {}", p.display()),
        Err(e) => eprintln!("[dar-serve] obs snapshot failed: {e}"),
    }

    let healthy = ok_first + ok_second == n_requests
        && rejected_offer
        && malformed == 16
        && stats.panics == 0;
    if !healthy {
        eprintln!("[dar-serve] UNHEALTHY run — see counters above");
        std::process::exit(1);
    }
    eprintln!("[dar-serve] ok");
}
