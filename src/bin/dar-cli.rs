//! `dar-cli` — train and inspect rationalization models from the command
//! line.
//!
//! ```sh
//! dar-cli stats                      # dataset statistics (Table IX style)
//! dar-cli train DAR aroma            # train a model on an aspect
//! dar-cli train RNP service --epochs 8 --scale 0.3 --seed 7
//! dar-cli train DAR aroma --checkpoint-dir ckpts        # durable epochs
//! dar-cli train DAR aroma --checkpoint-dir ckpts --resume   # continue
//! dar-cli train DAR aroma --checkpoint-dir ckpts --guard    # divergence guards
//! dar-cli show DAR palate            # train briefly, dump rationales
//! ```

use std::path::PathBuf;

use dar::core::guard::{GuardPolicy, GuardedTrainer, TrainEvent};
use dar::data::DatasetStats;
use dar::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("stats") => stats(),
        Some("train") => train(&args[1..], false),
        Some("show") => train(&args[1..], true),
        _ => {
            eprintln!("usage: dar-cli <stats | train MODEL ASPECT | show MODEL ASPECT>");
            eprintln!("  MODEL:  RNP DAR A2R DMR Inter_RAT CAR 3PLAYER VIB");
            eprintln!("  ASPECT: appearance aroma palate location service cleanliness");
            eprintln!("  flags:  --epochs N  --scale F  --seed N  --sparsity F");
            eprintln!("          --checkpoint-dir DIR   save a durable checkpoint every epoch");
            eprintln!("          --resume               continue from the checkpoint in DIR");
            eprintln!("          --guard                train with divergence guards + rollback");
            eprintln!(
                "          --obs-out DIR          write the obs snapshot to DIR/obs_cli.json"
            );
            std::process::exit(2);
        }
    }
}

fn flag(args: &[String], name: &str) -> Option<f32> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn str_flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn bool_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn parse_aspect(s: &str) -> Aspect {
    match s.to_lowercase().as_str() {
        "appearance" => Aspect::Appearance,
        "aroma" => Aspect::Aroma,
        "palate" => Aspect::Palate,
        "location" => Aspect::Location,
        "service" => Aspect::Service,
        "cleanliness" => Aspect::Cleanliness,
        other => {
            eprintln!("unknown aspect '{other}'");
            std::process::exit(2);
        }
    }
}

fn make_dataset(aspect: Aspect, scale: f32, seed: u64) -> AspectDataset {
    let mut rng = dar::rng(seed);
    match aspect.domain() {
        dar::data::Domain::Beer => {
            SynBeer::generate(&SynthConfig::beer(aspect).scaled(scale), &mut rng)
        }
        dar::data::Domain::Hotel => {
            SynHotel::generate(&SynthConfig::hotel(aspect).scaled(scale), &mut rng)
        }
    }
}

fn stats() {
    for aspect in [
        Aspect::Appearance,
        Aspect::Aroma,
        Aspect::Palate,
        Aspect::Location,
        Aspect::Service,
        Aspect::Cleanliness,
    ] {
        let data = make_dataset(aspect, 0.25, 17);
        println!("{}", DatasetStats::compute(&data));
    }
}

fn build(
    name: &str,
    cfg: &RationaleConfig,
    emb: &SharedEmbedding,
    data: &AspectDataset,
    rng: &mut dar::Rng,
) -> Box<dyn RationaleModel> {
    let ml = pretrain::max_len(data);
    match name {
        "RNP" => Box::new(Rnp::new(cfg, emb, ml, rng)),
        "DAR" => {
            let disc = pretrain::full_text_predictor(cfg, emb, data, 6, rng);
            Box::new(Dar::new(cfg, emb, disc, ml, rng))
        }
        "A2R" => Box::new(A2r::new(cfg, emb, ml, rng)),
        "DMR" => Box::new(Dmr::new(cfg, emb, ml, rng)),
        "Inter_RAT" => Box::new(InterRat::new(cfg, emb, ml, rng)),
        "CAR" => Box::new(Car::new(cfg, emb, ml, rng)),
        "3PLAYER" => Box::new(ThreePlayer::new(cfg, emb, ml, rng)),
        "VIB" => Box::new(Vib::new(cfg, emb, ml, rng)),
        other => {
            eprintln!("unknown model '{other}'");
            std::process::exit(2);
        }
    }
}

fn train(args: &[String], show: bool) {
    let model_name = args.first().cloned().unwrap_or_else(|| {
        eprintln!("missing MODEL");
        std::process::exit(2);
    });
    let aspect = parse_aspect(args.get(1).map(String::as_str).unwrap_or_else(|| {
        eprintln!("missing ASPECT");
        std::process::exit(2);
    }));
    let epochs = flag(args, "--epochs").map(|v| v as usize).unwrap_or(10);
    let scale = flag(args, "--scale").unwrap_or(0.4);
    let seed = flag(args, "--seed").map(|v| v as u64).unwrap_or(17);
    let sparsity = flag(args, "--sparsity").unwrap_or(0.15);
    let ckpt_dir = str_flag(args, "--checkpoint-dir").map(PathBuf::from);
    let obs_out = str_flag(args, "--obs-out").map(PathBuf::from);
    let resume = bool_flag(args, "--resume");
    let guard = bool_flag(args, "--guard");
    if (resume || guard) && ckpt_dir.is_none() {
        eprintln!("--resume/--guard need --checkpoint-dir DIR");
        std::process::exit(2);
    }
    if resume && guard {
        eprintln!("--resume continues with the plain trainer; drop --guard to resume");
        std::process::exit(2);
    }

    let data = make_dataset(aspect, scale, seed);
    if let Err(e) = data.validate() {
        eprintln!("dataset failed validation: {e}");
        std::process::exit(1);
    }
    let cfg = RationaleConfig {
        sparsity,
        ..Default::default()
    };
    let mut rng = dar::rng(seed + 1);
    println!(
        "dataset {}: train {} dev {} test {}",
        data.name,
        data.train.len(),
        data.dev.len(),
        data.test.len()
    );
    let emb = SharedEmbedding::pretrained(&data, cfg.emb_dim, &mut rng);
    let mut model = build(&model_name, &cfg, &emb, &data, &mut rng);
    let tcfg = TrainConfig {
        epochs,
        verbose: true,
        ..Default::default()
    };
    let ckpt = ckpt_dir.map(|dir| {
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("cannot create checkpoint dir {}: {e}", dir.display());
            std::process::exit(1);
        }
        dir.join(format!("{model_name}-{}.dart", data.name))
    });
    let report = match (&ckpt, guard, resume) {
        (Some(path), true, false) => {
            // Guarded training implies per-epoch checkpoints (the rollback
            // target); a crashed guarded run is resumable with --resume.
            let guarded = GuardedTrainer::new(tcfg, GuardPolicy::default())
                .fit(model.as_mut(), &data, &mut rng, path)
                .unwrap_or_else(|e| {
                    eprintln!("guarded training failed: {e}");
                    std::process::exit(1);
                });
            for event in &guarded.events {
                if !matches!(event, TrainEvent::EpochDone { .. }) {
                    println!("guard: {event:?}");
                }
            }
            if guarded.rollbacks > 0 {
                println!("guard: {} rollback(s) performed", guarded.rollbacks);
            }
            guarded.report
        }
        (Some(path), false, true) => Trainer::new(tcfg)
            .fit_resume(model.as_mut(), &data, &mut rng, path)
            .unwrap_or_else(|e| {
                eprintln!("resume from {} failed: {e}", path.display());
                std::process::exit(1);
            }),
        (Some(path), false, false) => Trainer::new(tcfg)
            .fit_checkpointed(model.as_mut(), &data, &mut rng, path)
            .unwrap_or_else(|e| {
                eprintln!("checkpointed training failed: {e}");
                std::process::exit(1);
            }),
        (Some(_), true, true) => unreachable!("rejected at argument parsing"),
        (None, _, _) => Trainer::new(tcfg).fit(model.as_mut(), &data, &mut rng),
    };
    if let Some(path) = &ckpt {
        println!("checkpoint: {}", path.display());
    }
    if let Some(dir) = &obs_out {
        match dar::obs::write_snapshot(dir, "cli") {
            Ok(p) => println!("obs snapshot: {}", p.display()),
            Err(e) => eprintln!("obs snapshot failed: {e}"),
        }
    }
    println!("\n{:<10}   S   Acc    P     R     F1", report.model_name);
    println!("{:<10} {}", "test", report.test.row());
    if let Some(full) = report.test.full_text_acc {
        println!("full-text probe accuracy: {:.1}%", full * 100.0);
    }

    if show {
        let batch = BatchIter::sequential(&data.test, 3)
            .next()
            .expect("empty test");
        let inf = model.infer(&batch);
        for i in 0..batch.len() {
            let len = batch.lengths[i];
            let toks = data.vocab.decode(&batch.ids[i][..len]);
            let picked: Vec<&str> = (0..len)
                .filter(|&t| inf.masks[i][t] > 0.5)
                .map(|t| toks[t])
                .collect();
            let human: Vec<&str> = (0..len)
                .filter(|&t| batch.rationales[i][t])
                .map(|t| toks[t])
                .collect();
            println!(
                "\nreview {} (label {}): {}",
                i,
                batch.labels[i],
                toks.join(" ")
            );
            println!("  model: {picked:?}");
            println!("  human: {human:?}");
        }
    }
}
