#!/bin/bash
# Regenerate every table/figure of the paper (see EXPERIMENTS.md).
# DAR_PROFILE controls scale: quick | standard | full.
set -u
PROFILE="${DAR_PROFILE:-quick}"
export DAR_PROFILE="$PROFILE"
OUT="results"
mkdir -p "$OUT"
for exp in table2 fig3b_table1 fig6 table8 table3 table7 fig3a table5 ablations table6; do
  echo "=== running $exp (profile $PROFILE) ==="
  ./target/release/$exp > "$OUT/$exp.txt" 2>&1
  echo "    done: $OUT/$exp.txt"
done
