#!/bin/bash
# Regenerate every table/figure of the paper (see EXPERIMENTS.md).
# DAR_PROFILE controls scale: quick | standard | full.
set -u
if [ "${DAR_SKIP_CI:-0}" != "1" ]; then
  echo "=== preflight: ci.sh (set DAR_SKIP_CI=1 to skip) ==="
  ./ci.sh || { echo "preflight failed; not running experiments" >&2; exit 1; }
fi
PROFILE="${DAR_PROFILE:-quick}"
export DAR_PROFILE="$PROFILE"
OUT="results"
mkdir -p "$OUT"
for exp in table2 fig3b_table1 fig6 table8 table3 table7 fig3a table5 ablations table6; do
  echo "=== running $exp (profile $PROFILE) ==="
  ./target/release/$exp > "$OUT/$exp.txt" 2>&1
  echo "    done: $OUT/$exp.txt"
done
