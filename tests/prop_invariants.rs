//! Property-based invariants spanning crates: data generation, masks, and
//! metric bounds under random configurations.

use dar::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Generated datasets always carry well-formed annotations: parallel
    /// lengths, at least one rationale token per test review, balanced
    /// test labels.
    #[test]
    fn datasets_are_well_formed(seed in 0u64..100, beer in any::<bool>()) {
        let aspect = if beer { Aspect::Palate } else { Aspect::Cleanliness };
        let base = if beer { SynthConfig::beer(aspect) } else { SynthConfig::hotel(aspect) };
        let cfg = SynthConfig { n_train: 24, n_dev: 12, n_test: 12, ..base };
        let mut rng = dar::rng(seed);
        let data = if beer {
            SynBeer::generate(&cfg, &mut rng)
        } else {
            SynHotel::generate(&cfg, &mut rng)
        };
        for r in data.train.iter().chain(&data.dev).chain(&data.test) {
            prop_assert_eq!(r.ids.len(), r.rationale.len());
            prop_assert!(r.first_sentence_end > 0 && r.first_sentence_end <= r.len());
            prop_assert!(r.label < 2);
            prop_assert!(r.ids.iter().all(|&t| t < data.vocab.len()));
        }
        for r in &data.test {
            prop_assert!(r.rationale.iter().any(|&b| b));
        }
        let pos = data.test.iter().filter(|r| r.label == 1).count();
        prop_assert_eq!(pos, data.test.len() / 2);
    }

    /// Generator masks are binary, padding-free, and deterministic at eval
    /// for any seed/config combination.
    #[test]
    fn generator_masks_always_valid(seed in 0u64..50, hidden in 8usize..24) {
        let dcfg = SynthConfig { n_train: 16, n_dev: 8, n_test: 8, ..SynthConfig::beer(Aspect::Aroma) };
        let mut rng = dar::rng(seed);
        let data = SynBeer::generate(&dcfg, &mut rng);
        let cfg = RationaleConfig { emb_dim: 16, hidden, ..Default::default() };
        let emb = SharedEmbedding::random(data.vocab.len(), 16, &mut rng);
        let ml = pretrain::max_len(&data);
        let gen = Generator::new(&cfg, &emb, ml, &mut rng);
        let batch = BatchIter::sequential(&data.test, 8).next().unwrap();
        let m1 = gen.sample_mask(&batch, None).to_vec();
        let m2 = gen.sample_mask(&batch, None).to_vec();
        prop_assert_eq!(&m1, &m2, "eval mask not deterministic");
        let pad = batch.mask.to_vec();
        for (i, &v) in m1.iter().enumerate() {
            prop_assert!(v == 0.0 || v == 1.0);
            if pad[i] == 0.0 {
                prop_assert_eq!(v, 0.0);
            }
        }
        // Stochastic masks are also binary.
        let mut rng2 = dar::rng(seed + 1);
        let ms = gen.sample_mask(&batch, Some(&mut rng2)).to_vec();
        prop_assert!(ms.iter().all(|&v| v == 0.0 || v == 1.0));
    }

    /// Evaluation metrics are always within [0, 1] and F1 is the harmonic
    /// mean of P and R.
    #[test]
    fn metrics_bounded_and_consistent(seed in 0u64..50) {
        let dcfg = SynthConfig { n_train: 16, n_dev: 8, n_test: 16, ..SynthConfig::beer(Aspect::Palate) };
        let mut rng = dar::rng(seed);
        let data = SynBeer::generate(&dcfg, &mut rng);
        let cfg = RationaleConfig { emb_dim: 16, hidden: 12, ..Default::default() };
        let emb = SharedEmbedding::random(data.vocab.len(), 16, &mut rng);
        let ml = pretrain::max_len(&data);
        let model = Rnp::new(&cfg, &emb, ml, &mut rng);
        let m = evaluate_model(&model, &data.test, 8);
        for v in [m.precision, m.recall, m.f1, m.sparsity] {
            prop_assert!((0.0..=1.0).contains(&v), "metric out of range: {m:?}");
        }
        if m.precision + m.recall > 0.0 {
            let h = 2.0 * m.precision * m.recall / (m.precision + m.recall);
            prop_assert!((m.f1 - h).abs() < 1e-5);
        } else {
            prop_assert_eq!(m.f1, 0.0);
        }
        if let Some(acc) = m.acc {
            prop_assert!((0.0..=1.0).contains(&acc));
        }
    }

    /// The Ω regularizer is zero exactly when the mask hits the target
    /// sparsity in one coherent block.
    #[test]
    fn omega_zero_iff_ideal_mask(len in 4usize..12) {
        use dar::core::regularizer::omega;
        use dar::data::Review;
        use dar::tensor::Tensor;
        let k = len / 2;
        let review = Review {
            ids: vec![5; len],
            label: 0,
            rationale: vec![false; len],
            first_sentence_end: 1,
        };
        let batch = Batch::from_reviews(&[&review]).expect("one-review batch");
        // One coherent block of k tokens at the start.
        let mut mask = vec![0.0f32; len];
        for m in mask.iter_mut().take(k) {
            *m = 1.0;
        }
        let z = Tensor::new(mask, &[1, len]);
        let cfg = RationaleConfig {
            sparsity: k as f32 / len as f32,
            lambda2: 0.0, // the block boundary itself costs one transition
            ..Default::default()
        };
        prop_assert!(omega(&z, &batch, &cfg).item().abs() < 1e-6);
        // Any deviation in sparsity increases the penalty.
        let z_over = Tensor::ones(&[1, len]);
        prop_assert!(omega(&z_over, &batch, &cfg).item() > 1e-3);
    }

    /// Taint provenance survives thread-budget changes: a NaN manufactured
    /// through a real `div` op (0/0) at a scheduled train step is
    /// attributed to `div` by the divergence guard under both 1 and 4
    /// worker threads.
    #[test]
    fn taint_attributes_injected_nan_to_its_op(seed in 0u64..8, step in 0usize..3) {
        use dar::core::fault::{FaultPlan, FaultyModel};
        use dar::tensor::{clear_taint, set_taint_mode, DarError};

        for threads in [1usize, 4] {
            let reason = dar_par::with_threads(threads, || {
                set_taint_mode(true);
                clear_taint();
                let dcfg = SynthConfig {
                    n_train: 16, n_dev: 8, n_test: 8,
                    ..SynthConfig::beer(Aspect::Aroma)
                };
                let mut rng = dar::rng(seed);
                let data = SynBeer::generate(&dcfg, &mut rng);
                let cfg = RationaleConfig { emb_dim: 16, hidden: 8, ..Default::default() };
                let emb = SharedEmbedding::random(data.vocab.len(), 16, &mut rng);
                let ml = pretrain::max_len(&data);
                let inner = Rnp::new(&cfg, &emb, ml, &mut rng);
                let mut model = FaultyModel::new(inner, FaultPlan::taint_nan_at(step));
                let tcfg = TrainConfig {
                    epochs: 1, batch_size: 4, patience: None,
                    ..Default::default()
                };
                let policy = GuardPolicy { max_retries: 0, ..GuardPolicy::default() };
                let mut path = std::env::temp_dir();
                path.push(format!(
                    "dar_taint_prop_{}_{threads}_{seed}_{step}",
                    std::process::id()
                ));
                let err = GuardedTrainer::new(tcfg, policy)
                    .fit(&mut model, &data, &mut rng, &path)
                    .expect_err("injected NaN must exhaust the zero retry budget");
                std::fs::remove_file(&path).ok();
                set_taint_mode(false);
                clear_taint();
                match err {
                    DarError::RetriesExhausted { last, .. } => last,
                    other => panic!("unexpected error: {other:?}"),
                }
            });
            prop_assert!(
                reason.contains("first tainted by op `div`"),
                "threads={}: guard reason did not name div: {}", threads, reason
            );
        }
    }

    /// Tenant→shard routing is a pure function of (tenant, replica
    /// count): stable across calls, always in range, independent of the
    /// `DAR_THREADS` budget, and spread evenly enough that no shard
    /// carries more than 2× its fair share of any 256-consecutive-tenant
    /// window. (The 2× bound over the window was verified exhaustively
    /// for every base in this strategy's domain — a 64-tenant window is
    /// statistically too small to cap at 2× on 8 shards; the canonical
    /// first-64-tenants spread is pinned by the router's unit tests.)
    #[test]
    fn tenant_routing_is_stable_uniform_and_thread_independent(base in 0u64..1_000_000) {
        use dar::serve::route_tenant;
        for replicas in [1usize, 2, 4, 8] {
            for t in base..base + 64 {
                let shard = route_tenant(t, replicas);
                prop_assert!(shard < replicas, "shard {shard} out of range");
                prop_assert_eq!(shard, route_tenant(t, replicas), "routing must be stable");
                let (t1, t4) = (
                    dar_par::with_threads(1, || route_tenant(t, replicas)),
                    dar_par::with_threads(4, || route_tenant(t, replicas)),
                );
                prop_assert_eq!(t1, shard, "routing must ignore the thread budget");
                prop_assert_eq!(t4, shard, "routing must ignore the thread budget");
            }
            let mut counts = vec![0usize; replicas];
            for t in base..base + 256 {
                counts[route_tenant(t, replicas)] += 1;
            }
            let cap = 2 * 256 / replicas;
            for (shard, &n) in counts.iter().enumerate() {
                prop_assert!(
                    n <= cap,
                    "replicas={}: shard {} holds {} of 256 tenants (cap {}; {:?})",
                    replicas, shard, n, cap, counts
                );
            }
        }
    }

    /// Healthy-set re-routing (DESIGN.md §16) is a pure function of
    /// (tenant, replica count, quarantine mask): deterministic across
    /// calls, always in range, independent of the `DAR_THREADS` budget,
    /// never a quarantined shard while a healthy one exists, and an
    /// empty mask — a rejoin — restores exactly the home shard.
    #[test]
    fn healthy_rerouting_is_deterministic_in_range_and_restores_home(
        base in 0u64..1_000_000, mask in 0u64..256
    ) {
        use dar::serve::{route_tenant, route_tenant_healthy};
        for replicas in [1usize, 2, 4, 8] {
            let expressible = (1u64 << replicas) - 1;
            let quarantined = mask & expressible;
            for t in base..base + 32 {
                let home = route_tenant(t, replicas);
                let shard = route_tenant_healthy(t, replicas, mask);
                prop_assert!(shard < replicas, "shard {shard} out of range");
                prop_assert_eq!(
                    shard,
                    route_tenant_healthy(t, replicas, mask),
                    "re-routing must be stable"
                );
                let (t1, t4) = (
                    dar_par::with_threads(1, || route_tenant_healthy(t, replicas, mask)),
                    dar_par::with_threads(4, || route_tenant_healthy(t, replicas, mask)),
                );
                prop_assert_eq!(t1, shard, "re-routing must ignore the thread budget");
                prop_assert_eq!(t4, shard, "re-routing must ignore the thread budget");
                if quarantined == expressible {
                    // Nowhere healthy to go: fall back to the home shard
                    // (the caller drains it anyway).
                    prop_assert_eq!(shard, home, "all-quarantined falls back home");
                } else {
                    prop_assert_eq!(
                        quarantined & (1u64 << shard), 0,
                        "routed to quarantined shard {} under mask {:b}", shard, quarantined
                    );
                }
                if quarantined & (1u64 << home) == 0 {
                    prop_assert_eq!(shard, home, "a healthy home shard is sticky");
                }
                prop_assert_eq!(
                    route_tenant_healthy(t, replicas, 0), home,
                    "an empty mask (post-rejoin) restores the home shard"
                );
            }
        }
    }
}
