//! Determinism contract of the observability snapshot (DESIGN.md §12).
//!
//! The snapshot's `deterministic` section — counters, gauges, journal
//! events — must be byte-identical for any `DAR_THREADS` budget and must
//! survive checkpoint resume without double-counting. Wall-clock-derived
//! span statistics live in the separate `timing` section and are never
//! compared.
//!
//! The serve comparison is against a golden expected string rather than
//! an in-process 1-vs-4 rerun: `with_threads` is a thread-local override
//! that server worker threads do not inherit, so a budget sweep over the
//! serving runtime only means anything process-wide — which is exactly
//! how CI runs this whole test binary (once under `DAR_THREADS=1`, once
//! under `DAR_THREADS=4`, asserting the same golden bytes both times).

use std::sync::{Arc, Mutex, MutexGuard};

use dar::core::guard::{GuardPolicy, GuardedTrainer};
use dar::obs::ObsEvent;
use dar::prelude::*;
use dar::serve::{BreakerPolicy, ServeConfig, Server};

/// The registry is process-global and cargo runs `#[test]`s of one
/// binary concurrently; every test takes this lock and resets.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn obs_lock() -> MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn tmpfile(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("dar_obs_det_{name}_{}", std::process::id()));
    p
}

fn tiny_dataset(seed: u64) -> AspectDataset {
    let synth = SynthConfig {
        n_train: 64,
        n_dev: 24,
        n_test: 24,
        ..SynthConfig::beer(Aspect::Aroma)
    };
    SynBeer::generate(&synth, &mut dar::rng(seed))
}

fn tiny_cfg() -> RationaleConfig {
    RationaleConfig {
        emb_dim: 12,
        hidden: 12,
        sparsity: 0.16,
        ..Default::default()
    }
}

/// Guards wide open so the run is clean and the event stream is the
/// plain epoch trace.
fn open_policy() -> GuardPolicy {
    GuardPolicy {
        spike_sigmas: f32::INFINITY,
        collapse_low: -1.0,
        collapse_high: 2.0,
        ..GuardPolicy::default()
    }
}

/// Deterministic section of a 2-epoch guarded run under a thread budget.
fn guarded_run_deterministic(threads: usize, ckpt_name: &str) -> String {
    dar_par::with_threads(threads, || {
        dar::obs::reset();
        dar::obs::set_enabled(true);
        let data = tiny_dataset(900);
        let cfg = tiny_cfg();
        let mut rng = dar::rng(901);
        let emb = SharedEmbedding::pretrained(&data, cfg.emb_dim, &mut rng);
        let ml = pretrain::max_len(&data);
        let mut model = Rnp::new(&cfg, &emb, ml, &mut rng);
        let tcfg = TrainConfig {
            epochs: 2,
            batch_size: 32,
            patience: None,
            ..Default::default()
        };
        let path = tmpfile(ckpt_name);
        GuardedTrainer::new(tcfg, open_policy())
            .fit(&mut model, &data, &mut rng, &path)
            .expect("guarded run failed");
        std::fs::remove_file(path).ok();
        dar::obs::snapshot("train").deterministic_json()
    })
}

/// The tentpole invariant: identical logical run → identical
/// deterministic bytes, whatever the thread budget. (CI additionally
/// runs this binary under `DAR_THREADS=1` and `=4`, covering the
/// process-global path the thread-local override cannot reach.)
#[test]
fn guarded_train_deterministic_section_is_thread_invariant() {
    let _g = obs_lock();
    let one = guarded_run_deterministic(1, "t1");
    let four = guarded_run_deterministic(4, "t4");
    assert_eq!(one, four, "deterministic section diverged across budgets");

    // And it actually carries the signals: 2 epochs, their events, the
    // seed + 2 epoch-boundary checkpoints.
    assert!(one.contains("\"train.epochs\":2"), "missing epochs: {one}");
    assert!(
        one.contains("\"kind\":\"epoch_done\""),
        "missing events: {one}"
    );
    assert!(
        one.contains("\"train.checkpoints_saved\":3"),
        "guarded runs checkpoint at seed + every epoch: {one}"
    );
}

/// A 100-request serve run on one worker with guards held open produces
/// an exactly known deterministic section — golden bytes, not a rerun.
#[test]
fn serve_run_matches_golden_deterministic_section() {
    let _g = obs_lock();
    dar::obs::reset();
    dar::obs::set_enabled(true);

    let data = tiny_dataset(910);
    let cfg = tiny_cfg();
    let vocab = data.vocab.len();
    let ml = pretrain::max_len(&data);
    let factory: dar::serve::ModelFactory = Arc::new(move || {
        let mut rng = dar::rng(911);
        let emb = SharedEmbedding::random(vocab, cfg.emb_dim, &mut rng);
        Box::new(Rnp::new(&cfg, &emb, ml, &mut rng))
    });
    let serve_cfg = ServeConfig {
        replicas: 1,
        vocab_size: vocab,
        max_len: ml,
        breaker: BreakerPolicy {
            collapse: open_policy(),
            ..BreakerPolicy::default()
        },
        ..ServeConfig::default()
    };
    let server = Server::start(serve_cfg, factory);
    for i in 0..100 {
        let out = server
            .submit(data.test[i % data.test.len()].clone())
            .wait()
            .expect("request failed");
        assert!(!out.degraded, "collapse band is open; no degraded answers");
    }
    server.shutdown();

    let det = dar::obs::snapshot("serve").deterministic_json();
    assert_eq!(
        det,
        "{\"counters\":{\"serve.served_full\":100,\"serve.submitted\":100},\
         \"gauges\":{},\"events\":[],\"events_dropped\":0}"
    );
}

/// Crash recovery followed by serving produces an exactly known
/// deterministic section: the typed durability events (DESIGN.md §15)
/// land in the journal in protocol order — recovery start, torn-tail
/// truncation, the truncation's own WAL commit, recovery complete —
/// followed by the serve counters, byte-identical under any thread
/// budget (CI re-runs this binary under `DAR_THREADS=1` and `=4`).
#[test]
fn recover_then_serve_matches_golden_deterministic_section() {
    use dar::store::{DurableState, RealStorage, Storage, WAL_FILE};

    let _g = obs_lock();
    let dir = std::env::temp_dir().join(format!("dar_obs_det_recover_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // A journal with one settled promotion… (obs off: setup is not the
    // run under test)
    dar::obs::set_enabled(false);
    {
        let cand = {
            std::fs::create_dir_all(&dir).unwrap();
            let p = dir.join("cand.ckpt");
            std::fs::write(&p, b"weights").unwrap();
            p
        };
        let (mut st, _) = DurableState::open(Arc::new(RealStorage), &dir).unwrap();
        st.log_canary_started(0).unwrap();
        st.log_promoted(0, &cand).unwrap();
        st.log_feed_cursor(1).unwrap();
    }
    // …plus a 7-byte torn half-frame a crashed writer left at the tail.
    RealStorage
        .append_sync(&dir.join(WAL_FILE), &[44, 0, 0, 0, 7, 7, 7])
        .unwrap();

    dar::obs::reset();
    dar::obs::set_enabled(true);

    // Recovery: replays 3 records, truncates the tail, journals the
    // truncation (the 4th record), keeps generation 1.
    let (st, rec) = DurableState::open(Arc::new(RealStorage), &dir).unwrap();
    assert_eq!(rec.truncated_bytes, 7);
    assert_eq!(st.generation(), 1);
    assert_eq!(st.resume_round(), 1);
    drop(st);

    // Then serve: the same 100-request flow as the serve golden.
    let data = tiny_dataset(910);
    let cfg = tiny_cfg();
    let vocab = data.vocab.len();
    let ml = pretrain::max_len(&data);
    let factory: dar::serve::ModelFactory = Arc::new(move || {
        let mut rng = dar::rng(911);
        let emb = SharedEmbedding::random(vocab, cfg.emb_dim, &mut rng);
        Box::new(Rnp::new(&cfg, &emb, ml, &mut rng))
    });
    let serve_cfg = ServeConfig {
        replicas: 1,
        vocab_size: vocab,
        max_len: ml,
        breaker: BreakerPolicy {
            collapse: open_policy(),
            ..BreakerPolicy::default()
        },
        ..ServeConfig::default()
    };
    let server = Server::start(serve_cfg, factory);
    for i in 0..100 {
        server
            .submit(data.test[i % data.test.len()].clone())
            .wait()
            .expect("request failed");
    }
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();

    let det = dar::obs::snapshot("recover_serve").deterministic_json();
    assert_eq!(
        det,
        "{\"counters\":{\"serve.served_full\":100,\"serve.submitted\":100},\
         \"gauges\":{},\"events\":[\
         {\"seq\":0,\"kind\":\"recovery_started\"},\
         {\"seq\":1,\"kind\":\"wal_truncated_tail\",\"lost_bytes\":7},\
         {\"seq\":2,\"kind\":\"wal_append\",\"record\":\"tail_truncated\"},\
         {\"seq\":3,\"kind\":\"recovery_complete\",\"records\":4,\"generation\":1}],\
         \"events_dropped\":0}"
    );
}

/// Checkpoint resume must not double-count: epochs already recorded by
/// the interrupted run are not re-emitted, and the resume is marked.
#[test]
fn resume_does_not_double_count() {
    let _g = obs_lock();
    let data = tiny_dataset(920);
    let cfg = tiny_cfg();
    let emb_seed = 921;
    let path = tmpfile("resume");
    let full = TrainConfig {
        epochs: 4,
        batch_size: 32,
        patience: None,
        ..Default::default()
    };

    // Interrupted run: first 2 of 4 epochs.
    dar::obs::reset();
    dar::obs::set_enabled(true);
    let mut rng = dar::rng(emb_seed);
    let emb = SharedEmbedding::pretrained(&data, cfg.emb_dim, &mut rng);
    let ml = pretrain::max_len(&data);
    let mut model = Rnp::new(&cfg, &emb, ml, &mut rng);
    Trainer::new(TrainConfig { epochs: 2, ..full })
        .fit_checkpointed(&mut model, &data, &mut rng, &path)
        .expect("interrupted run failed");
    let first = dar::obs::snapshot("train");

    // Fresh "process": reset the registry, resume to completion.
    dar::obs::reset();
    let mut rng = dar::rng(emb_seed);
    let emb = SharedEmbedding::pretrained(&data, cfg.emb_dim, &mut rng);
    let mut model = Rnp::new(&cfg, &emb, ml, &mut rng);
    let mut rng = dar::rng(999); // wrong on purpose; overwritten by resume
    Trainer::new(full)
        .fit_resume(&mut model, &data, &mut rng, &path)
        .expect("resume failed");
    let second = dar::obs::snapshot("train");
    std::fs::remove_file(path).ok();

    let epochs = |snap: &dar::obs::Snapshot| -> Vec<u64> {
        snap.events
            .iter()
            .filter_map(|e| match e {
                ObsEvent::EpochDone { epoch, .. } => Some(*epoch),
                _ => None,
            })
            .collect()
    };
    assert_eq!(epochs(&first), vec![0, 1]);
    assert_eq!(
        epochs(&second),
        vec![2, 3],
        "resume re-emitted already-recorded epochs"
    );
    assert!(
        second
            .events
            .iter()
            .any(|e| matches!(e, ObsEvent::CheckpointResumed { next_epoch: 2 })),
        "resume not marked in the journal: {:?}",
        second.events
    );
    let counter = |snap: &dar::obs::Snapshot, name: &str| -> u64 {
        snap.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };
    assert_eq!(counter(&first, "train.epochs"), 2);
    assert_eq!(counter(&second, "train.epochs"), 2);
    assert_eq!(counter(&second, "train.resumes"), 1);
}
