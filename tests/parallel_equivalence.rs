//! Serial-equivalence harness for the data-parallel training runtime
//! (DESIGN.md §9).
//!
//! The `dar-par` pool promises that the thread budget is an execution
//! detail, never a numeric one: shard boundaries depend only on problem
//! size, every shard runs serially, and partials are reduced in ascending
//! shard order. These tests hold the whole training stack to that promise
//! — for every model of the paper, a full training run under a 4-thread
//! budget must be **bit-identical** to the 1-thread run: same weights,
//! same Adam moments, same loss history, same metrics. Checkpoint/resume
//! must compose with parallelism the same way.
//!
//! Bit-exactness is not a nicety here: the checkpoint format stores raw
//! f32 weights and optimizer moments, and `Trainer::fit_resume` promises
//! a resumed run finishes exactly like an uninterrupted one. That promise
//! only survives a thread-budget change between save and resume if the
//! arithmetic itself is budget-invariant.

use dar::nn::gru::set_composite_gru;
use dar::prelude::*;
use dar::tensor::optim::AdamState;
use std::sync::Mutex;

/// The GRU path switch is process-global; tests that flip it must not
/// overlap. Each test body holds this lock and restores the default
/// (composite) before releasing it.
static GRU_PATH: Mutex<()> = Mutex::new(());

fn lock_gru_path() -> std::sync::MutexGuard<'static, ()> {
    GRU_PATH.lock().unwrap_or_else(|e| e.into_inner())
}

/// Small but not degenerate: batch 32 at hidden 24 keeps the fused GRU
/// kernel above its parallel-dispatch FLOP threshold, so the pool really
/// runs multi-threaded shards rather than falling back to serial.
fn tiny_data(seed: u64) -> AspectDataset {
    let cfg = SynthConfig {
        n_train: 96,
        n_dev: 32,
        n_test: 32,
        ..SynthConfig::beer(Aspect::Aroma)
    };
    SynBeer::generate(&cfg, &mut dar::rng(seed))
}

fn small_cfg() -> RationaleConfig {
    RationaleConfig {
        emb_dim: 16,
        hidden: 24,
        sparsity: 0.16,
        ..Default::default()
    }
}

/// `grad_accum_shards: 2` exercises the sharded gradient-accumulation
/// path on top of the parallel kernels — shard count is part of the
/// config (a pure function of problem structure), so it is identical
/// under every thread budget.
fn two_epochs() -> TrainConfig {
    TrainConfig {
        epochs: 2,
        batch_size: 32,
        patience: None,
        grad_accum_shards: 2,
        ..Default::default()
    }
}

/// Everything observable about a finished run, in raw bits/bytes.
#[derive(PartialEq, Debug)]
struct RunFingerprint {
    weights: Vec<Vec<u32>>,
    adam: Vec<u8>,
    history: Vec<(u32, u32)>,
    test: Vec<u32>,
}

fn metric_bits(m: &RationaleMetrics) -> Vec<u32> {
    [
        m.precision,
        m.recall,
        m.f1,
        m.sparsity,
        m.acc.unwrap_or(-1.0),
        m.full_text_acc.unwrap_or(-1.0),
    ]
    .iter()
    .map(|v| v.to_bits())
    .collect()
}

fn fingerprint(model: &dyn RationaleModel, report: &TrainReport) -> RunFingerprint {
    let mut adam = Vec::new();
    for s in model.optim_states() {
        s.encode(&mut adam);
    }
    RunFingerprint {
        weights: model
            .params()
            .iter()
            .map(|p| p.to_vec().iter().map(|v| v.to_bits()).collect())
            .collect(),
        adam,
        history: report
            .history
            .iter()
            .map(|e| (e.train_loss.to_bits(), e.dev_score.to_bits()))
            .collect(),
        test: metric_bits(&report.test),
    }
}

fn build(name: &str, cfg: &RationaleConfig, data: &AspectDataset) -> Box<dyn RationaleModel> {
    let mut rng = dar::rng(41);
    let emb = SharedEmbedding::random(data.vocab.len(), cfg.emb_dim, &mut rng);
    let ml = pretrain::max_len(data);
    match name {
        "RNP" => Box::new(Rnp::new(cfg, &emb, ml, &mut rng)),
        "DAR" => {
            let disc = pretrain::full_text_predictor(cfg, &emb, data, 2, &mut rng);
            Box::new(Dar::new(cfg, &emb, disc, ml, &mut rng))
        }
        "A2R" => Box::new(A2r::new(cfg, &emb, ml, &mut rng)),
        "DMR" => Box::new(Dmr::new(cfg, &emb, ml, &mut rng)),
        "Inter_RAT" => Box::new(InterRat::new(cfg, &emb, ml, &mut rng)),
        "CAR" => Box::new(Car::new(cfg, &emb, ml, &mut rng)),
        "3PLAYER" => Box::new(ThreePlayer::new(cfg, &emb, ml, &mut rng)),
        "VIB" => Box::new(Vib::new(cfg, &emb, ml, &mut rng)),
        "SentenceRNP" => {
            let splitter = SentenceSplitter::from_vocab(&data.vocab);
            Box::new(SentenceRnp::new(cfg, &emb, splitter, ml, &mut rng))
        }
        other => panic!("unknown model '{other}'"),
    }
}

/// Build the named model fresh and train it for two epochs under the
/// given thread budget. Construction happens inside `with_threads` too:
/// the predictor pretraining DAR does at build time must also be
/// budget-invariant. Caller holds [`GRU_PATH`] and has set the GRU path.
fn train_under(name: &str, threads: usize) -> RunFingerprint {
    dar_par::with_threads(threads, || {
        let data = tiny_data(40);
        let cfg = small_cfg();
        let mut model = build(name, &cfg, &data);
        let mut rng = dar::rng(42);
        let report = Trainer::new(two_epochs()).fit(model.as_mut(), &data, &mut rng);
        fingerprint(model.as_ref(), &report)
    })
}

/// The tentpole claim: for every model of the paper, and for both GRU
/// execution paths (the default composite graph over sharded matmuls and
/// the opt-in fused kernel), training under a 4-thread budget is
/// bit-identical to the serial run — weights, Adam moments, loss history,
/// and test metrics.
#[test]
fn all_models_train_bit_identically_across_thread_budgets() {
    let _g = lock_gru_path();
    for (path, composite) in [("fused", false), ("composite", true)] {
        set_composite_gru(composite);
        for name in [
            "RNP",
            "DAR",
            "A2R",
            "DMR",
            "Inter_RAT",
            "CAR",
            "3PLAYER",
            "VIB",
            "SentenceRNP",
        ] {
            let serial = train_under(name, 1);
            let parallel = train_under(name, 4);
            assert!(
                !serial.weights.is_empty() && !serial.adam.is_empty(),
                "{name} [{path}]: fingerprint is trivial"
            );
            assert_eq!(
                serial, parallel,
                "{name} [{path}]: 1-thread and 4-thread runs diverged"
            );
        }
    }
    set_composite_gru(true);
}

/// A checkpoint written under one thread budget must resume under another
/// and still finish bit-identical to an uninterrupted serial run: save at
/// epoch 1 under 4 threads, resume to epoch 2 under 1 thread, compare
/// against a straight 2-epoch serial `fit`.
#[test]
fn checkpoint_resume_composes_with_thread_budgets() {
    let _g = lock_gru_path();
    set_composite_gru(false); // the fused kernel is the interesting path
    let path = {
        let mut p = std::env::temp_dir();
        p.push(format!("dar_pareq_resume_{}", std::process::id()));
        p
    };
    let data = tiny_data(40);

    // Interrupted run: one epoch under 4 threads, leaving a checkpoint…
    dar_par::with_threads(4, || {
        let mut model = build("RNP", &small_cfg(), &data);
        let mut rng = dar::rng(42);
        let partial = TrainConfig {
            epochs: 1,
            ..two_epochs()
        };
        Trainer::new(partial)
            .fit_checkpointed(model.as_mut(), &data, &mut rng, &path)
            .expect("checkpointed run");
    });

    // …finished under a *different* budget by a fresh process.
    let resumed = dar_par::with_threads(1, || {
        let mut model = build("RNP", &small_cfg(), &data);
        // fit_resume overwrites the RNG stream from the checkpoint; the
        // seed here is deliberately different to prove it.
        let mut rng = dar::rng(9999);
        let report = Trainer::new(two_epochs())
            .fit_resume(model.as_mut(), &data, &mut rng, &path)
            .expect("resumed run");
        fingerprint(model.as_ref(), &report)
    });
    std::fs::remove_file(&path).ok();

    let uninterrupted = train_under("RNP", 1);
    set_composite_gru(true);
    assert_eq!(
        resumed, uninterrupted,
        "interrupted 4-thread run + 1-thread resume diverged from the serial run"
    );
}

/// The encoded Adam state round-trips losslessly, so byte comparison in
/// the fingerprint is exactly moment comparison.
#[test]
fn adam_state_bytes_are_lossless() {
    let _g = lock_gru_path();
    set_composite_gru(false);
    dar_par::with_threads(4, || {
        let data = tiny_data(40);
        let mut model = build("RNP", &small_cfg(), &data);
        let mut rng = dar::rng(42);
        Trainer::new(two_epochs()).fit(model.as_mut(), &data, &mut rng);
        for s in model.optim_states() {
            let mut buf = Vec::new();
            s.encode(&mut buf);
            let decoded =
                AdamState::decode(&mut dar::tensor::serial::codec::Cursor::new(&buf)).unwrap();
            assert_eq!(decoded, s);
        }
    });
    set_composite_gru(true);
}

/// The *guarded* trainer — rollback path included — is thread-budget
/// invariant too: a scheduled NaN loss trips the guard at the same step
/// under every budget, rollback restores the same checkpoint bytes, and
/// the retried run finishes bit-identical, down to the event log.
#[test]
fn guarded_rollback_is_bit_identical_across_thread_budgets() {
    use dar::core::fault::{FaultPlan, FaultyModel};

    let _g = lock_gru_path();
    set_composite_gru(false);

    let run = |threads: usize| {
        dar_par::with_threads(threads, || {
            let data = tiny_data(40);
            let cfg = small_cfg();
            let mut rng = dar::rng(41);
            let emb = SharedEmbedding::random(data.vocab.len(), cfg.emb_dim, &mut rng);
            let ml = pretrain::max_len(&data);
            // 96 train reviews at batch 32 = 3 steps/epoch: step 4 NaNs
            // mid-epoch-1, forcing a rollback to the epoch-0 checkpoint;
            // the retry (steps 6+) runs clean.
            let mut model = FaultyModel::new(
                Rnp::new(&cfg, &emb, ml, &mut rng),
                FaultPlan::nan_loss_at(4),
            );
            let ckpt = std::env::temp_dir()
                .join(format!("dar_pareq_guard_{}_{threads}", std::process::id()));
            let mut train_rng = dar::rng(42);
            let guarded = GuardedTrainer::new(two_epochs(), GuardPolicy::default())
                .fit(&mut model, &data, &mut train_rng, &ckpt)
                .expect("guarded run recovers from the one-shot fault");
            std::fs::remove_file(&ckpt).ok();
            (
                fingerprint(&model, &guarded.report),
                guarded.events,
                guarded.rollbacks,
            )
        })
    };

    let (serial_fp, serial_events, serial_rb) = run(1);
    let (parallel_fp, parallel_events, parallel_rb) = run(4);
    set_composite_gru(true);

    assert!(serial_rb >= 1, "the scheduled fault must force a rollback");
    assert!(
        serial_events
            .iter()
            .any(|e| matches!(e, TrainEvent::RolledBack { .. })),
        "event log records the rollback"
    );
    assert_eq!(serial_rb, parallel_rb);
    assert_eq!(
        serial_events, parallel_events,
        "guard trips and rollbacks diverged across thread budgets"
    );
    assert_eq!(
        serial_fp, parallel_fp,
        "guarded 1-thread and 4-thread runs diverged"
    );
}
