//! Regression tests for ci.sh's machine-readable report.
//!
//! The CI driver (`ci.sh`) promises a *valid JSON* report at
//! `$DAR_CI_REPORT` on every exit path — including the two that
//! historically produced truncated output: a failing stage (the EXIT
//! trap fires after `exit 1` mid-run) and an unknown `--stage` name
//! (zero stages ran, so the stages map must still close). These tests
//! drive the real script end to end under `DAR_CI_SELFTEST=1`, which
//! exposes a deliberately failing fake stage that runs no cargo
//! commands — so the tests cannot recurse into the build.
//!
//! The in-repo `dar_obs::json::parse_flat` only accepts flat
//! string→number maps; the report is nested, so validation here is a
//! tiny hand-rolled JSON walker instead.

use std::path::PathBuf;
use std::process::Command;

/// Minimal JSON validity checker: objects, strings, numbers, and the
/// literals the report can contain. Returns the rest of the input on
/// success so the caller can require full consumption.
fn skip_ws(s: &str) -> &str {
    s.trim_start_matches([' ', '\t', '\n', '\r'])
}

fn parse_value(s: &str) -> Result<&str, String> {
    let s = skip_ws(s);
    match s.chars().next() {
        Some('{') => parse_object(s),
        Some('"') => parse_string(s).map(|(_, rest)| rest),
        Some(c) if c == '-' || c.is_ascii_digit() => {
            let end = s
                .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
                .unwrap_or(s.len());
            s[..end]
                .parse::<f64>()
                .map_err(|e| format!("bad number {:?}: {e}", &s[..end]))?;
            Ok(&s[end..])
        }
        Some('t') if s.starts_with("true") => Ok(&s[4..]),
        Some('f') if s.starts_with("false") => Ok(&s[5..]),
        Some('n') if s.starts_with("null") => Ok(&s[4..]),
        other => Err(format!("unexpected value start: {other:?}")),
    }
}

fn parse_string(s: &str) -> Result<(String, &str), String> {
    let body = s
        .strip_prefix('"')
        .ok_or_else(|| format!("expected string at {:?}", &s[..s.len().min(20)]))?;
    // The report never emits escapes, so a bare quote terminates.
    let end = body
        .find('"')
        .ok_or_else(|| "unterminated string".to_string())?;
    Ok((body[..end].to_string(), &body[end + 1..]))
}

fn parse_object(s: &str) -> Result<&str, String> {
    let mut s = skip_ws(s)
        .strip_prefix('{')
        .ok_or_else(|| "expected '{'".to_string())?;
    s = skip_ws(s);
    if let Some(rest) = s.strip_prefix('}') {
        return Ok(rest);
    }
    loop {
        let (_key, rest) = parse_string(skip_ws(s))?;
        let rest = skip_ws(rest)
            .strip_prefix(':')
            .ok_or_else(|| "expected ':'".to_string())?;
        s = skip_ws(parse_value(rest)?);
        if let Some(rest) = s.strip_prefix(',') {
            s = rest;
            continue;
        }
        return skip_ws(s)
            .strip_prefix('}')
            .ok_or_else(|| format!("expected '}}' at {:?}", &s[..s.len().min(20)]));
    }
}

fn assert_valid_json(text: &str, ctx: &str) {
    let rest = parse_value(text).unwrap_or_else(|e| panic!("{ctx}: invalid JSON ({e}): {text}"));
    assert!(
        skip_ws(rest).is_empty(),
        "{ctx}: trailing garbage after JSON: {rest:?}"
    );
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Run `bash ci.sh <args>` with the selftest stage exposed and the
/// report redirected to a scratch path; returns (exit_code, report).
fn run_ci(args: &[&str], tag: &str) -> (i32, String) {
    let report =
        std::env::temp_dir().join(format!("dar_ci_report_{}_{tag}.json", std::process::id()));
    let _ = std::fs::remove_file(&report);
    let out = Command::new("bash")
        .arg(repo_root().join("ci.sh"))
        .args(args)
        .current_dir(repo_root())
        .env("DAR_CI_SELFTEST", "1")
        .env("DAR_CI_REPORT", &report)
        .output()
        .expect("spawn bash ci.sh");
    let code = out.status.code().expect("ci.sh killed by signal");
    let text = std::fs::read_to_string(&report).unwrap_or_else(|e| {
        panic!(
            "{tag}: ci.sh exited {code} without writing {}: {e}\nstdout:\n{}\nstderr:\n{}",
            report.display(),
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr),
        )
    });
    let _ = std::fs::remove_file(&report);
    (code, text)
}

#[test]
fn failing_stage_still_writes_valid_report() {
    let (code, report) = run_ci(&["--stage", "selftest-fail"], "fail");
    assert_eq!(code, 1, "selftest-fail must fail the run; report: {report}");
    assert_valid_json(&report, "failing-stage report");
    assert!(
        report.contains(r#""selftest-fail": {"status": "FAIL""#),
        "report must record the FAIL entry: {report}"
    );
    assert!(
        report.contains(r#""schema_version": 1"#),
        "report must carry the schema version: {report}"
    );
}

#[test]
fn unknown_stage_writes_valid_empty_report() {
    let (code, report) = run_ci(&["--stage", "no-such-stage"], "unknown");
    assert_eq!(code, 2, "unknown stage must exit 2; report: {report}");
    assert_valid_json(&report, "unknown-stage report");
    let squashed: String = report.chars().filter(|c| !c.is_whitespace()).collect();
    assert!(
        squashed.contains(r#""stages":{}"#),
        "zero stages ran, so the stages map must be empty: {report}"
    );
}

#[test]
fn selftest_stage_is_hidden_without_optin() {
    // Without DAR_CI_SELFTEST the fake stage must not exist at all.
    let out = Command::new("bash")
        .arg(repo_root().join("ci.sh"))
        .arg("--list")
        .current_dir(repo_root())
        .env_remove("DAR_CI_SELFTEST")
        .output()
        .expect("spawn bash ci.sh --list");
    assert!(out.status.success());
    let stages = String::from_utf8_lossy(&out.stdout);
    assert!(
        !stages.contains("selftest-fail"),
        "selftest-fail leaked into the default stage list:\n{stages}"
    );
    assert!(
        stages.contains("kernel-equiv-t1") && stages.contains("kernel-bench"),
        "kernel lanes missing from the stage list:\n{stages}"
    );
}
