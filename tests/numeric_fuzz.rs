//! Seeded adversarial-input fuzz harness for the numeric containment
//! layer (DESIGN.md §11).
//!
//! Feeds every checked (`try_*`) tensor entry point — and the dar-nn
//! guard-rail wrappers — values drawn from an adversarial pool (±Inf,
//! NaN, denormals, ±1e38, zeros) and degenerate shapes (zero-width dims,
//! rank-0, mismatched ranks), asserting the containment contract:
//!
//! * a checked op returns `Ok` or a typed [`DarError`] — it NEVER panics;
//! * with guard rails on, the dar-nn safe wrappers never emit a silent
//!   NaN/Inf;
//! * Gumbel sampling stays finite and binary as temperature → 0;
//! * corrupted checkpoints are typed errors, not crashes;
//! * with taint tracking on (`DAR_TAINT=1` / `set_taint_mode`), an
//!   injected NaN is attributed to its originating op in both the
//!   training guard's `TrainEvent` log and the serving breaker's
//!   `TransitionCause`.

use std::panic::{catch_unwind, AssertUnwindSafe};

use dar::nn::gumbel::{gumbel_softmax_soft, gumbel_softmax_st};
use dar::nn::numeric::{
    safe_div, safe_exp, safe_ln, safe_log_softmax, safe_softmax, with_guard_rails,
};
use dar::tensor::ops::structural::{try_concat, try_stack};
use dar::tensor::shape::numel;
use dar::Tensor;
use proptest::prelude::*;

/// The adversarial value pool: every IEEE-754 hazard class.
const POOL: [f32; 16] = [
    f32::NAN,
    f32::INFINITY,
    f32::NEG_INFINITY,
    f32::MAX,
    f32::MIN,
    f32::MIN_POSITIVE,
    1.0e38,
    -1.0e38,
    1.0e-38,
    -1.0e-38,
    1.0e-40,  // subnormal
    -1.0e-44, // subnormal
    0.0,
    -0.0,
    1.0,
    -2.5,
];

/// Strategy: `n` values drawn from the pool (the vendored proptest shim
/// bounds `any::<f32>()`, so adversarial values go through index-mapping).
fn adversarial(n: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(0usize..POOL.len(), n)
        .prop_map(|ix| ix.into_iter().map(|i| POOL[i]).collect())
}

/// Shape pool: healthy, degenerate (zero-width), and rank-0 shapes.
const SHAPES: [&[usize]; 7] = [&[4], &[2, 2], &[1, 4], &[4, 1], &[2, 0], &[0], &[]];

fn tensor_for(shape: &[usize], vals: &[f32]) -> Tensor {
    Tensor::new(vals[..numel(shape)].to_vec(), shape)
}

/// Assert `f` does not panic; its value (Ok or typed Err) is the contract.
fn no_panic<T>(label: &str, f: impl FnOnce() -> T) -> T {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => v,
        Err(_) => panic!("{label} panicked on adversarial input"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Checked binary/unary/reduction/structural ops accept any pool
    /// values in any (possibly degenerate or mismatched) shape without
    /// panicking.
    #[test]
    fn checked_ops_never_panic(
        vals_a in adversarial(4),
        vals_b in adversarial(4),
        sa in 0usize..SHAPES.len(),
        sb in 0usize..SHAPES.len(),
        axis in 0usize..3,
    ) {
        let a = tensor_for(SHAPES[sa], &vals_a);
        let b = tensor_for(SHAPES[sb], &vals_b);

        let _ = no_panic("try_add", || a.try_add(&b).map(|t| t.to_vec()));
        let _ = no_panic("try_sub", || a.try_sub(&b).map(|t| t.to_vec()));
        let _ = no_panic("try_mul", || a.try_mul(&b).map(|t| t.to_vec()));
        let _ = no_panic("try_div", || a.try_div(&b).map(|t| t.to_vec()));
        let _ = no_panic("try_matmul", || a.try_matmul(&b).map(|t| t.to_vec()));
        let _ = no_panic("try_bmm", || a.try_bmm(&b).map(|t| t.to_vec()));
        let _ = no_panic("try_softmax", || a.try_softmax().map(|t| t.to_vec()));
        let _ = no_panic("try_log_softmax", || a.try_log_softmax().map(|t| t.to_vec()));
        let _ = no_panic("try_sum_axis", || a.try_sum_axis(axis, false).map(|t| t.to_vec()));
        let _ = no_panic("try_mean_axis", || a.try_mean_axis(axis, true).map(|t| t.to_vec()));
        let _ = no_panic("try_max_axis", || a.try_max_axis(axis, false).map(|t| t.to_vec()));
        let _ = no_panic("try_reshape", || a.try_reshape(&[2, 2]).map(|t| t.to_vec()));
        let _ = no_panic("try_narrow", || a.try_narrow(axis, 1, 2).map(|t| t.to_vec()));
        let _ = no_panic("try_concat", || try_concat(&[a.clone(), b.clone()], axis).map(|t| t.to_vec()));
        let _ = no_panic("try_stack", || try_stack(&[a.clone(), b.clone()]).map(|t| t.to_vec()));
        let _ = no_panic("try_argmax_rows", || a.try_argmax_rows());
        let _ = no_panic("try_item", || a.try_item());
        let _ = no_panic("try_gather_rows", || a.try_gather_rows(&[0, 7]).map(|t| t.to_vec()));
        let _ = no_panic("try_one_hot", || Tensor::try_one_hot(&[0, 3], 2).map(|t| t.to_vec()));

        // Unary elementwise ops are total: never a panic for any input.
        let y = no_panic("unary chain", || {
            a.sigmoid().tanh().relu().abs().square().sqrt().to_vec()
        });
        prop_assert_eq!(y.len(), a.len());
    }

    /// With guard rails on, the dar-nn safe wrappers emit only finite
    /// values no matter what goes in; with rails off they are bit-equal
    /// to the raw ops on finite inputs.
    #[test]
    fn guard_rails_contain_all_pool_values(vals in adversarial(4), den in adversarial(4)) {
        let x = Tensor::new(vals.clone(), &[2, 2]);
        let d = Tensor::new(den, &[2, 2]);
        with_guard_rails(true, || {
            for (label, out) in [
                ("safe_softmax", safe_softmax(&x).to_vec()),
                ("safe_log_softmax", safe_log_softmax(&x).to_vec()),
                ("safe_div", safe_div(&x, &d).to_vec()),
                ("safe_exp", safe_exp(&x).to_vec()),
                ("safe_ln", safe_ln(&x).to_vec()),
            ] {
                prop_assert!(
                    out.iter().all(|v| v.is_finite()),
                    "{} leaked a non-finite value: {:?} from {:?}", label, out, vals
                );
            }
            Ok(())
        })?;
        // Identity on healthy inputs: rails change nothing when every
        // value is finite and normal.
        let clean = Tensor::new(vec![0.25, -1.5, 3.0, 0.5], &[2, 2]);
        let on = with_guard_rails(true, || safe_softmax(&clean).to_vec());
        let off = with_guard_rails(false, || safe_softmax(&clean).to_vec());
        prop_assert_eq!(on, off);
    }

    /// Gumbel straight-through sampling survives temperature → 0 and
    /// extreme logits: output is exactly binary, soft surrogate finite.
    #[test]
    fn gumbel_stays_binary_at_extreme_temperature(
        seed in 0u64..1000,
        tau_idx in 0usize..4,
        logit_idx in proptest::collection::vec(0usize..6, 4),
    ) {
        const TAUS: [f32; 4] = [1e-6, 1e-12, 1e-30, 1e-45];
        const LOGITS: [f32; 6] = [40.0, -40.0, 1.0e30, -1.0e30, 0.0, 5.0];
        let vals: Vec<f32> = logit_idx.into_iter().map(|i| LOGITS[i]).collect();
        let logits = Tensor::new(vals, &[2, 2]);
        with_guard_rails(true, || {
            let mut rng = dar::rng(seed);
            let y = gumbel_softmax_st(&logits, TAUS[tau_idx], &mut rng).to_vec();
            prop_assert!(y.iter().all(|&v| v == 0.0 || v == 1.0), "non-binary: {:?}", y);
            for row in y.chunks(2) {
                prop_assert_eq!(row.iter().sum::<f32>(), 1.0);
            }
            let mut rng = dar::rng(seed);
            let soft = gumbel_softmax_soft(&logits, TAUS[tau_idx], &mut rng).to_vec();
            prop_assert!(soft.iter().all(|v| v.is_finite()), "soft leaked: {:?}", soft);
            Ok(())
        })?;
    }

    /// Corrupted checkpoints (truncation, bit flips, random garbage) load
    /// as typed errors — never a panic, never a silently wrong tensor.
    #[test]
    fn corrupted_checkpoints_are_typed_errors(seed in 0u64..500, garbage_len in 0usize..64) {
        use dar::core::fault::{corrupt_bitflip, corrupt_truncate};
        use dar::tensor::serial;

        let mut path = std::env::temp_dir();
        path.push(format!("dar_numfuzz_{}_{}", std::process::id(), seed));

        serial::save_path(&path, &[Tensor::param(vec![0.5; 8], &[2, 4])]).unwrap();
        corrupt_truncate(&path, seed).unwrap();
        prop_assert!(no_panic("load truncated", || serial::load_checkpoint_path(&path)).is_err());

        serial::save_path(&path, &[Tensor::param(vec![0.5; 8], &[2, 4])]).unwrap();
        corrupt_bitflip(&path, seed).unwrap();
        prop_assert!(no_panic("load bitflipped", || serial::load_checkpoint_path(&path)).is_err());

        // Pure garbage bytes.
        let bytes: Vec<u8> = (0..garbage_len).map(|i| (seed as usize * 31 + i * 7) as u8).collect();
        std::fs::write(&path, bytes).unwrap();
        prop_assert!(no_panic("load garbage", || serial::load_checkpoint_path(&path)).is_err());
        std::fs::remove_file(&path).ok();
    }
}

/// With taint tracking on, a NaN injected through a real `div` op shows
/// up attributed to `div` in the training guard's `TrainEvent` log, and
/// the run still recovers via rollback.
#[test]
fn train_event_names_the_tainting_op() {
    use dar::prelude::*;
    use dar::tensor::{clear_taint, set_taint_mode};

    set_taint_mode(true); // the in-process equivalent of DAR_TAINT=1
    clear_taint();
    let synth = SynthConfig {
        n_train: 16,
        n_dev: 8,
        n_test: 8,
        ..SynthConfig::beer(Aspect::Aroma)
    };
    let mut rng = dar::rng(900);
    let data = SynBeer::generate(&synth, &mut rng);
    let cfg = RationaleConfig {
        emb_dim: 16,
        hidden: 8,
        ..Default::default()
    };
    let emb = SharedEmbedding::random(data.vocab.len(), 16, &mut rng);
    let ml = pretrain::max_len(&data);
    let inner = Rnp::new(&cfg, &emb, ml, &mut rng);
    // One-shot fault at step 1: NaN manufactured by a real 0/0 div.
    let mut model = FaultyModel::new(inner, FaultPlan::taint_nan_at(1));
    let tcfg = TrainConfig {
        epochs: 1,
        batch_size: 4,
        patience: None,
        ..Default::default()
    };
    let mut path = std::env::temp_dir();
    path.push(format!("dar_numfuzz_taint_{}", std::process::id()));
    let report = GuardedTrainer::new(tcfg, GuardPolicy::default())
        .fit(&mut model, &data, &mut rng, &path)
        .expect("one-shot fault must be recoverable");
    std::fs::remove_file(&path).ok();
    set_taint_mode(false);
    clear_taint();

    let tripped: Vec<&GuardReason> = report
        .events
        .iter()
        .filter_map(|e| match e {
            TrainEvent::GuardTripped { reason, .. } => Some(reason),
            _ => None,
        })
        .collect();
    assert!(
        tripped.iter().any(|r| matches!(
            r,
            GuardReason::NonFiniteLoss {
                origin: Some("div"),
                ..
            }
        )),
        "no NonFiniteLoss event named `div`: {tripped:?}"
    );
    assert!(report.rollbacks >= 1);
}

/// End-to-end serving: with `DAR_TAINT=1` in the environment, NaN logits
/// produced by a real op inside a worker trip the breaker with a
/// `GeneratorFailures` cause that names the op — and the poisoned batch
/// is still answered (degraded) instead of crashing the worker.
#[test]
fn breaker_cause_names_the_tainting_op() {
    use std::sync::Arc;
    use std::time::Duration;

    use dar::prelude::*;
    use dar::serve::{BreakerPolicy, BreakerState, ServeConfig, Server, TransitionCause};

    // Workers read DAR_TAINT when their thread-local initializes, so the
    // env var must be set before Server::start spawns them.
    std::env::set_var("DAR_TAINT", "1");

    let synth = SynthConfig {
        n_train: 32,
        n_dev: 8,
        n_test: 8,
        ..SynthConfig::beer(Aspect::Aroma)
    };
    let data = SynBeer::generate(&synth, &mut dar::rng(910));
    let cfg = RationaleConfig {
        emb_dim: 12,
        hidden: 12,
        ..Default::default()
    };
    let vocab_rows = data.vocab.len() + 1;
    let nan_tok = data.vocab.len(); // absent from every organic review
    let ml = pretrain::max_len(&data);
    let factory: dar::serve::ModelFactory = {
        Arc::new(move || {
            let mut rng = dar::rng(911);
            let emb = SharedEmbedding::random(vocab_rows, cfg.emb_dim, &mut rng);
            let rnp = Rnp::new(&cfg, &emb, ml, &mut rng);
            Box::new(ChaosModel::new(
                rnp,
                ChaosPlan {
                    nan_logit_token: Some(nan_tok),
                    ..Default::default()
                },
            ))
        })
    };
    let server = Server::start(
        ServeConfig {
            replicas: 1,
            max_batch: 1,
            linger: Duration::ZERO,
            vocab_size: vocab_rows,
            max_len: ml,
            breaker: BreakerPolicy {
                failure_threshold: 1,
                ..BreakerPolicy::default()
            },
            ..ServeConfig::default()
        },
        factory,
    );

    let mut review = data.test[0].clone();
    review.ids[0] = nan_tok;
    let out = server
        .submit(review)
        .wait()
        .expect("poisoned batch must still be answered");
    assert!(out.degraded, "NaN logits must fall back to the predictor");
    assert_eq!(server.breaker_state(), BreakerState::Degraded);
    let events = server.breaker_events();
    assert_eq!(
        events[0].cause,
        TransitionCause::GeneratorFailures {
            origin: Some("div")
        },
        "breaker cause did not name the tainting op: {events:?}"
    );
    server.shutdown();
    std::env::remove_var("DAR_TAINT");
}
