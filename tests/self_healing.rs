//! Self-healing chaos suite (DESIGN.md §16): heartbeat watchdog,
//! stuck-replica quarantine, and hedged re-dispatch, exercised with
//! stall faults the panic-based supervision layer cannot see.
//!
//! The invariants under test:
//!
//! * **Every stranded request resolves typed** — when a replica wedges
//!   (sticky livelock), the watchdog quarantines it within the heartbeat
//!   budget and every request on its shard gets exactly one typed
//!   outcome: hedged to a healthy sibling when deadline budget remains,
//!   `DeadlineExceeded`/`Abandoned` otherwise. Never `Lost`, at any
//!   replica count.
//! * **Quarantine is not exile** — after a one-shot stall the respawned
//!   replica passes probation probes and rejoins, and routing for its
//!   tenants returns to the home shard.
//! * **A canary window spanning a quarantine is void** — the round
//!   rolls back with the typed cause `replica_quarantined`; arm stats
//!   that mixed healthy and wedged traffic never produce a verdict.
//! * **Expired requests never wait for a wedged owner** — the
//!   supervisor's deadline sweep answers them even when the backlog sits
//!   below the steal threshold and the health watchdog is disabled.
//! * **The watchdog is silent on healthy traffic** — with supervision
//!   enabled, a clean run produces the exact golden deterministic obs
//!   bytes of the pre-watchdog runtime.
//!
//! Every test takes one global lock: the obs registry is process-global,
//! and serializing the suites keeps stall timings honest.

mod common;

use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use common::ServeFixture;
use dar::core::guard::GuardPolicy;
use dar::prelude::*;
use dar::serve::{
    route_tenant, route_tenant_healthy, BreakerPolicy, CanaryPolicy, HealthPolicy, HealthState,
    PromotionPhase, RollbackCause, ServeConfig, ServeError, Server, StealPolicy,
};
use dar::tensor::serial::{self, Checkpoint};

static SUITE_LOCK: Mutex<()> = Mutex::new(());

fn suite_lock() -> MutexGuard<'static, ()> {
    SUITE_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// Guards wide open so clean traffic never degrades.
fn open_policy() -> GuardPolicy {
    GuardPolicy {
        spike_sigmas: f32::INFINITY,
        collapse_low: -1.0,
        collapse_high: 2.0,
        ..GuardPolicy::default()
    }
}

/// Test-speed watchdog: tight budgets so detection lands in hundreds of
/// milliseconds, still wide enough that a healthy batch on a loaded CI
/// box never trips it.
fn fast_health() -> HealthPolicy {
    HealthPolicy {
        enabled: true,
        stall_budget: Duration::from_millis(120),
        deadline_grace: Duration::from_millis(80),
        probation_probes: 1,
        hedge_min_budget: Duration::from_millis(1),
    }
}

/// Poll until `pred` holds, failing the test after `timeout`.
fn wait_until(timeout: Duration, what: &str, mut pred: impl FnMut() -> bool) -> Duration {
    let start = Instant::now();
    while !pred() {
        assert!(
            start.elapsed() < timeout,
            "timed out after {timeout:?} waiting for: {what}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    start.elapsed()
}

/// A sticky livelock wedges one replica; the watchdog walks it
/// Healthy→Suspect→Quarantined within the heartbeat budget, and every
/// request on the wedged shard resolves to exactly one typed outcome:
/// the wedged request itself to `DeadlineExceeded`, the queued victims
/// hedged to a healthy sibling (2+ replicas) or `Abandoned` (1 replica).
#[test]
fn sticky_stall_quarantines_and_resolves_every_request_typed() {
    let _g = suite_lock();
    let fx = ServeFixture::new(810);
    let spin_tok = fx.trigger(1);
    for width in [1usize, 2, 4] {
        let server = Server::start(
            ServeConfig {
                max_batch: 4,
                linger: Duration::from_millis(1),
                steal: StealPolicy {
                    enabled: false,
                    min_victim_backlog: None,
                },
                health: fast_health(),
                ..fx.serve_cfg(width)
            },
            fx.factory(ChaosPlan {
                stall: StallPlan {
                    spin_token: Some((spin_tok, 1500)),
                    sticky: true,
                    ..Default::default()
                },
                ..Default::default()
            }),
        );
        let tenant = 1u64;
        let home = route_tenant(tenant, width);

        let submitted = Instant::now();
        let wedge = server.submit_for_tenant(
            fx.triggered(0, spin_tok),
            tenant,
            Duration::from_millis(250),
        );
        std::thread::sleep(Duration::from_millis(60)); // let the batch get claimed
        let victims: Vec<_> = (0..6)
            .map(|i| server.submit_for_tenant(fx.clean(i), tenant, Duration::from_secs(5)))
            .collect();

        // Detection: budget (120ms) + wedge deadline (250ms) + grace
        // (80ms) + watchdog tick — well under a second even loaded.
        wait_until(Duration::from_secs(3), "quarantine detection", || {
            server.stats().quarantines >= 1
        });
        let detection = submitted.elapsed();
        assert!(
            detection < Duration::from_millis(1500),
            "width {width}: detection took {detection:?}, over the heartbeat budget"
        );

        // The wedged request's deadline (250ms) is necessarily behind
        // the quarantine instant (deadline + grace), so its verdict is
        // the deadline, not abandonment.
        assert!(
            matches!(wedge.wait(), Err(ServeError::DeadlineExceeded)),
            "width {width}: the wedged request resolves to its deadline"
        );
        for (i, t) in victims.into_iter().enumerate() {
            match t.wait() {
                Ok(out) if width >= 2 => assert!(out.label < 2),
                Err(ServeError::Abandoned) if width == 1 => {}
                other => panic!(
                    "width {width}: victim {i} got {:?}, want {} (never Lost)",
                    other.map(|o| o.label),
                    if width >= 2 {
                        "Ok (hedged)"
                    } else {
                        "Abandoned"
                    }
                ),
            }
        }

        let stats = server.shutdown();
        assert!(stats.stalls >= 1, "width {width}: a stall episode opened");
        assert_eq!(stats.quarantines, 1, "width {width}: one quarantine");
        assert!(
            stats.deadline_exceeded >= 1,
            "width {width}: the wedge expired"
        );
        if width >= 2 {
            assert_eq!(stats.hedged, 6, "width {width}: all victims hedged");
            assert_eq!(stats.abandoned, 0, "width {width}: nobody abandoned");
            assert_eq!(
                stats.replicas[home].hedged_away, 6,
                "width {width}: hedges attributed to the wedged replica"
            );
        } else {
            assert_eq!(stats.hedged, 0, "width 1: nowhere to hedge");
            assert_eq!(stats.abandoned, 6, "width 1: victims abandoned, typed");
        }
    }
}

/// After a one-shot stall the quarantined replica respawns, answers its
/// probation probes, and rejoins: state returns to Healthy, the routing
/// mask clears, and the stalled tenant's traffic lands back on its home
/// shard.
#[test]
fn one_shot_stall_rejoins_after_probation_and_restores_routing() {
    let _g = suite_lock();
    let fx = ServeFixture::new(820);
    let spin_tok = fx.trigger(2);
    let width = 2usize;
    let server = Server::start(
        ServeConfig {
            max_batch: 4,
            linger: Duration::from_millis(1),
            steal: StealPolicy {
                enabled: false,
                min_victim_backlog: None,
            },
            health: fast_health(),
            ..fx.serve_cfg(width)
        },
        fx.factory(ChaosPlan {
            stall: StallPlan {
                spin_token: Some((spin_tok, 800)),
                sticky: false, // one-shot: the respawned replica is clean
                ..Default::default()
            },
            ..Default::default()
        }),
    );
    let tenant = 1u64;
    let home = route_tenant(tenant, width);

    let wedge = server.submit_for_tenant(
        fx.triggered(0, spin_tok),
        tenant,
        Duration::from_millis(250),
    );
    wait_until(Duration::from_secs(3), "quarantine detection", || {
        server.stats().quarantines >= 1
    });
    assert!(wedge.wait().is_err(), "the wedged request fails typed");

    // Feed the tenant until the replacement clears probation. Every
    // submission must serve: detoured while masked, home afterwards.
    let mut i = 0usize;
    wait_until(Duration::from_secs(5), "probation rejoin", || {
        let t = server.submit_for_tenant(fx.clean(i), tenant, Duration::from_secs(5));
        i += 1;
        t.wait().expect("traffic serves across the rejoin");
        server.health_states()[home] == HealthState::Healthy
    });

    assert_eq!(server.quarantined_mask(), 0, "the routing mask cleared");
    assert_eq!(
        route_tenant_healthy(tenant, width, server.quarantined_mask()),
        home,
        "the tenant routes home again"
    );
    let before = server.stats().replicas[home].served;
    server
        .submit_for_tenant(fx.clean(0), tenant, Duration::from_secs(5))
        .wait()
        .expect("post-rejoin traffic serves");
    let stats = server.shutdown();
    assert!(
        stats.replicas[home].served > before,
        "post-rejoin traffic landed on the home replica"
    );
    assert!(stats.rejoins >= 1, "the rejoin was counted");
    assert_eq!(stats.replicas[home].health, "healthy");
}

/// A quarantine inside a canary window voids the round: the controller
/// thread concludes it as a typed rollback (`replica_quarantined`)
/// without waiting for the window to fill, and the incumbent weights
/// stay live.
#[test]
fn quarantine_mid_canary_rolls_back_with_typed_cause() {
    let _g = suite_lock();
    let fx = ServeFixture::new(830);
    let spin_tok = fx.trigger(3);
    let factory = fx.factory(ChaosPlan {
        stall: StallPlan {
            spin_token: Some((spin_tok, 800)),
            sticky: false,
            ..Default::default()
        },
        ..Default::default()
    });
    let server = Server::start(
        ServeConfig {
            max_batch: 4,
            linger: Duration::from_millis(1),
            breaker: BreakerPolicy {
                collapse: open_policy(),
                ..BreakerPolicy::default()
            },
            health: fast_health(),
            ..fx.serve_cfg(2)
        },
        factory.clone(),
    );

    // A same-shaped candidate checkpoint.
    let tmp = std::env::temp_dir().join(format!("dar_heal_canary_{}", std::process::id()));
    {
        let model = factory();
        for p in model.params() {
            let n = p.len();
            p.set_values(vec![0.05; n]);
        }
        serial::save_checkpoint_path(&tmp, &Checkpoint::new(model.params(), Vec::new())).unwrap();
    }
    let policy = CanaryPolicy {
        window: 10_000, // far more than this test ever serves
        slice_modulus: 2,
        ..CanaryPolicy::default()
    };
    assert_eq!(server.begin_canary(&tmp, policy).expect("canary begins"), 2);

    // Some canary-era traffic, then the stall.
    for i in 0..8 {
        server
            .submit_for_tenant(fx.clean(i), i as u64, Duration::from_secs(10))
            .wait()
            .expect("canary-era traffic serves");
    }
    assert!(
        server.try_conclude_canary().is_none(),
        "the window is nowhere near filled"
    );
    let wedge = server.submit_for_tenant(fx.triggered(0, spin_tok), 1, Duration::from_millis(250));
    wait_until(Duration::from_secs(3), "quarantine detection", || {
        server.stats().quarantines >= 1
    });
    assert!(wedge.wait().is_err(), "the wedged request fails typed");

    let outcome = server
        .try_conclude_canary()
        .expect("a quarantined window concludes immediately");
    assert_eq!(outcome.phase, PromotionPhase::RolledBack);
    assert_eq!(outcome.cause, Some(RollbackCause::ReplicaQuarantined));
    assert_eq!(outcome.version, 2);

    // The incumbent survived the voided round.
    let out = server
        .submit_for_tenant(fx.clean(0), 0, Duration::from_secs(10))
        .wait()
        .expect("post-rollback traffic serves");
    assert_eq!(out.weights_version, 1, "the incumbent weights stay live");
    server.shutdown();
    std::fs::remove_file(&tmp).ok();
}

/// Regression (stranded-deadline bug): a backlog at or below the steal
/// threshold is invisible to thieves, so when its home replica is
/// wedged its expired requests used to wait for an owner that never
/// came. The supervisor's deadline sweep answers them on time — with
/// the health watchdog switched off, so the sweep alone is on the hook.
#[test]
fn deadline_sweep_rescues_sub_threshold_backlog_from_a_wedged_owner() {
    let _g = suite_lock();
    let fx = ServeFixture::new(840);
    let sleep_tok = fx.trigger(4);
    let server = Server::start(
        ServeConfig {
            max_batch: 4,
            linger: Duration::from_millis(1),
            steal: StealPolicy {
                enabled: true,
                // Far above the backlog this test builds: no thief bites.
                min_victim_backlog: Some(64),
            },
            health: HealthPolicy {
                enabled: false,
                ..HealthPolicy::default()
            },
            ..fx.serve_cfg(2)
        },
        fx.factory(ChaosPlan {
            stall: StallPlan {
                sleep_token: Some((sleep_tok, 1200)),
                sticky: false,
                ..Default::default()
            },
            ..Default::default()
        }),
    );
    let tenant = 1u64;

    // Wedge the home replica, then strand three short-deadline requests
    // behind it — a backlog of 3 against a steal threshold of 64.
    let wedge =
        server.submit_for_tenant(fx.triggered(0, sleep_tok), tenant, Duration::from_secs(10));
    std::thread::sleep(Duration::from_millis(60)); // let the batch get claimed
    let started = Instant::now();
    let stranded: Vec<_> = (0..3)
        .map(|i| server.submit_for_tenant(fx.clean(i), tenant, Duration::from_millis(150)))
        .collect();
    for (i, t) in stranded.into_iter().enumerate() {
        assert!(
            matches!(t.wait(), Err(ServeError::DeadlineExceeded)),
            "stranded request {i} must expire typed"
        );
    }
    let waited = started.elapsed();
    assert!(
        waited < Duration::from_millis(900),
        "expired requests waited {waited:?} — the sweep must not depend on \
         the wedged owner (1.2s) or on work stealing"
    );
    assert!(wedge.wait().is_ok(), "slow but within its own deadline");

    let stats = server.shutdown();
    assert_eq!(stats.deadline_exceeded, 3);
    assert_eq!(stats.quarantines, 0, "the watchdog was off");
    assert_eq!(stats.abandoned, 0);
}

/// With the watchdog enabled (default policy), a clean sequential run
/// produces the exact golden deterministic obs bytes of the
/// pre-watchdog runtime: no stall events, no health counters, nothing.
/// CI re-runs this binary under `DAR_THREADS=1` and `=4` asserting the
/// same bytes.
#[test]
fn clean_run_with_watchdog_enabled_keeps_golden_obs_bytes() {
    let _g = suite_lock();
    dar::obs::reset();
    dar::obs::set_enabled(true);

    let fx = ServeFixture::new(850);
    let cfg = ServeConfig {
        breaker: BreakerPolicy {
            collapse: open_policy(),
            ..BreakerPolicy::default()
        },
        ..fx.serve_cfg(4)
    };
    assert!(cfg.health.enabled, "supervision is on by default");
    let server = Server::start(cfg, fx.factory(ChaosPlan::default()));
    for i in 0..100 {
        server.submit(fx.clean(i)).wait().expect("request failed");
    }
    for (slot, s) in server.health_states().into_iter().enumerate() {
        assert_eq!(s, HealthState::Healthy, "replica {slot} never left Healthy");
    }
    let stats = server.shutdown();
    assert_eq!(
        (
            stats.stalls,
            stats.quarantines,
            stats.hedged,
            stats.abandoned
        ),
        (0, 0, 0, 0),
        "clean traffic trips nothing"
    );
    for r in &stats.replicas {
        assert!(
            r.served == 0 || r.heartbeats > 0,
            "a serving replica heartbeats"
        );
        assert_eq!(r.health, "healthy");
    }

    let det = dar::obs::snapshot("serve").deterministic_json();
    assert_eq!(
        det,
        "{\"counters\":{\"serve.served_full\":100,\"serve.submitted\":100},\
         \"gauges\":{},\"events\":[],\"events_dropped\":0}",
        "the watchdog must not perturb the golden deterministic section"
    );
}
