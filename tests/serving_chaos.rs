//! Seeded chaos harness for the serving runtime (DESIGN.md §10).
//!
//! Faults are injected through [`ChaosModel`] trigger tokens (panics,
//! rationale collapse, slow inference — in `infer` only, so the
//! predictor-only degraded path stays clean) and through corrupted
//! checkpoint files offered mid-swap. The invariants under test:
//!
//! * **Exactly one outcome** — every submitted request resolves to one
//!   terminal verdict; `ServeError::Lost` is never observed.
//! * **Scripted breaker ladder** — Closed → Degraded → Open → HalfOpen →
//!   Closed, with the exact transition causes recorded.
//! * **Hot swap safety** — a corrupted or shape-mismatched checkpoint is
//!   rejected while serving continues on the old weights.
//! * **Batching invariance** — a review's label and rationale do not
//!   depend on which micro-batch it landed in.
//! * **Supervisor respawn** — a worker thread dying for real is replaced
//!   and service continues.
//!
//! Replica-invariant scenarios run both single-replica and at 4 replicas
//! (sharded queues + work stealing in play); the scripted breaker walks
//! stay at 1 replica, where the fault schedule is exact.
//! `tests/scale_out.rs` holds the scale-out layer to its own invariants.

mod common;

use std::time::Duration;

use common::ServeFixture;
use dar::data::Review;
use dar::prelude::*;
use dar::serve::{BreakerPolicy, BreakerState, ServeConfig, ServeError, Server, TransitionCause};
use dar::tensor::serial::{self, Checkpoint};
use dar::Tensor;

/// Every request gets exactly one terminal outcome — under worker
/// panics, malformed inputs, oversized inputs, and tight deadlines, with
/// multiple replicas racing.
fn exactly_one_outcome_at(replicas: usize) {
    let fx = ServeFixture::new(500);
    let panic_tok = fx.trigger(0);
    let factory = fx.factory(ChaosPlan {
        panic_token: Some(panic_tok),
        ..Default::default()
    });
    let cfg = ServeConfig {
        max_batch: 4,
        linger: Duration::from_millis(1),
        ..fx.serve_cfg(replicas)
    };
    let server = Server::start(cfg, factory);

    let mut tickets = Vec::new();
    for i in 0..48 {
        let review = match i % 6 {
            // Worker-killing request.
            5 => fx.triggered(i, panic_tok),
            // Out-of-vocabulary ids → rejected at admission.
            4 => dar::core::fault::malformed_review(fx.vocab_rows, 500 + i as u64),
            // Empty input → rejected at admission.
            3 => Review {
                ids: Vec::new(),
                label: 0,
                rationale: Vec::new(),
                first_sentence_end: 0,
            },
            // Over-length input → rejected at admission.
            2 => Review {
                ids: vec![1; fx.ml + 7],
                label: 0,
                rationale: vec![false; fx.ml + 7],
                first_sentence_end: 1,
            },
            // Ordinary traffic.
            _ => fx.clean(i),
        };
        tickets.push(server.submit(review));
    }

    let (mut ok, mut rejected, mut panicked, mut other) = (0, 0, 0, 0);
    for t in tickets {
        match t.wait() {
            Ok(out) => {
                assert!(out.label < 2);
                ok += 1;
            }
            Err(ServeError::Lost) => panic!("a response was lost"),
            Err(ServeError::Rejected(_)) => rejected += 1,
            Err(ServeError::WorkerPanicked) => panicked += 1,
            Err(_) => other += 1,
        }
    }
    assert_eq!(ok + rejected + panicked + other, 48);
    assert_eq!(rejected, 24, "8 malformed + 8 empty + 8 over-length");
    // The rest resolve as served or as typed worker-panic verdicts —
    // which is which depends on micro-batch composition and on whether
    // the breaker degraded (the predictor path ignores the panic token),
    // but nothing may land anywhere else, and nothing may be Lost.
    assert_eq!(other, 0, "only Ok/Rejected/WorkerPanicked are reachable");
    assert_eq!(ok + panicked, 24);
    assert!(panicked >= 1, "at least the first panic batch fails typed");
    let stats = server.shutdown();
    assert!(stats.panics >= 1);
}

#[test]
fn every_request_gets_exactly_one_outcome() {
    exactly_one_outcome_at(2);
}

/// The same chaos mix with 4 replica shards: the burst all routes to
/// tenant 0's home shard and idle siblings steal it down, so outcomes
/// flow through the steal path too.
#[test]
fn every_request_gets_exactly_one_outcome_scaled_out() {
    exactly_one_outcome_at(4);
}

/// The breaker walks the scripted ladder with the exact transition
/// causes, and outputs reflect the mode that produced them.
#[test]
fn breaker_walks_closed_degraded_open_halfopen_closed() {
    let fx = ServeFixture::new(510);
    let panic_tok = fx.trigger(0);
    let full_panic_tok = fx.trigger(1);
    let factory = fx.factory(ChaosPlan {
        panic_token: Some(panic_tok),
        full_panic_token: Some(full_panic_tok),
        ..Default::default()
    });
    let cfg = ServeConfig {
        max_batch: 1,
        linger: Duration::ZERO,
        breaker: BreakerPolicy {
            failure_threshold: 2,
            degraded_threshold: 2,
            probe_after_degraded: 100, // keep Degraded stable in step (c)
            probe_after_sheds: 3,
            ..BreakerPolicy::default()
        },
        ..fx.serve_cfg(1)
    };
    let server = Server::start(cfg, factory);

    // (a) Closed: full service with a rationale.
    let out = server.submit(fx.clean(0)).wait().expect("closed serves");
    assert!(!out.degraded);
    assert!(!out.rationale.is_empty());

    // (b) Two generator panics → Degraded.
    for i in 0..2 {
        let err = server
            .submit(fx.triggered(i, panic_tok))
            .wait()
            .expect_err("panic batch fails");
        assert!(matches!(err, ServeError::WorkerPanicked));
    }
    assert_eq!(server.breaker_state(), BreakerState::Degraded);

    // (c) Degraded still answers — predictor-only, no rationale.
    let out = server.submit(fx.clean(1)).wait().expect("degraded serves");
    assert!(out.degraded);
    assert!(out.rationale.is_empty());

    // (d) Two predictor-path panics → Open.
    for i in 0..2 {
        let err = server
            .submit(fx.triggered(i, full_panic_tok))
            .wait()
            .expect_err("full-panic batch fails");
        assert!(matches!(err, ServeError::WorkerPanicked));
    }
    assert_eq!(server.breaker_state(), BreakerState::Open);

    // (e) Open sheds at the door; the shed budget earns a probe slot.
    for _ in 0..3 {
        let err = server.submit(fx.clean(2)).wait().expect_err("open sheds");
        assert!(matches!(err, ServeError::Shed));
    }
    assert_eq!(server.breaker_state(), BreakerState::HalfOpen);

    // (f) The HalfOpen probe succeeds → Closed, full service again.
    let out = server.submit(fx.clean(3)).wait().expect("probe serves");
    assert!(!out.degraded);
    assert_eq!(server.breaker_state(), BreakerState::Closed);

    let causes: Vec<TransitionCause> = server.breaker_events().iter().map(|e| e.cause).collect();
    assert_eq!(
        causes,
        vec![
            TransitionCause::GeneratorFailures { origin: None },
            TransitionCause::DegradedFailures,
            TransitionCause::ShedBudget,
            TransitionCause::ProbeRecovered,
        ]
    );
    server.shutdown();
}

/// Rationale collapse — the guard.rs signal, not a panic — trips the
/// breaker too, and the collapsed batch is answered from the full-text
/// path instead of shipping an empty rationale.
#[test]
fn rationale_collapse_degrades_with_predictor_fallback() {
    let fx = ServeFixture::new(520);
    let collapse_tok = fx.trigger(2);
    let factory = fx.factory(ChaosPlan {
        collapse_token: Some(collapse_tok),
        ..Default::default()
    });
    let cfg = ServeConfig {
        max_batch: 1,
        linger: Duration::ZERO,
        breaker: BreakerPolicy {
            failure_threshold: 1,
            ..BreakerPolicy::default()
        },
        ..fx.serve_cfg(1)
    };
    let server = Server::start(cfg, factory);

    // The collapsed batch still gets an answer — degraded, no rationale.
    let out = server
        .submit(fx.triggered(0, collapse_tok))
        .wait()
        .expect("collapse falls back, not fails");
    assert!(out.degraded);
    assert!(out.rationale.is_empty());
    assert_eq!(server.breaker_state(), BreakerState::Degraded);
    let events = server.breaker_events();
    assert!(matches!(
        events[0].cause,
        TransitionCause::GeneratorFailures { .. }
    ));
    server.shutdown();
}

/// Hot swap: a validated checkpoint flips the served generation between
/// batches; corrupted and shape-mismatched offers are rejected while
/// serving continues on the old weights.
#[test]
fn hot_swap_is_atomic_and_rejects_corruption() {
    let fx = ServeFixture::new(530);
    let factory = fx.factory(ChaosPlan::default());
    let cfg = ServeConfig {
        max_batch: 2,
        ..fx.serve_cfg(1)
    };
    let server = Server::start(cfg, factory.clone());
    assert_eq!(server.weights_version(), 1);

    let out = server.submit(fx.clean(0)).wait().expect("v1 serves");
    assert_eq!(out.weights_version, 1);

    // Build a same-shaped checkpoint with visibly different weights.
    let tmp = std::env::temp_dir().join(format!("dar_chaos_swap_{}", std::process::id()));
    {
        let model = factory();
        for p in model.params() {
            let n = p.len();
            p.set_values(vec![0.05; n]);
        }
        serial::save_checkpoint_path(&tmp, &Checkpoint::new(model.params(), Vec::new())).unwrap();
    }
    assert_eq!(server.offer_checkpoint(&tmp).unwrap(), 2);
    let out = server.submit(fx.clean(1)).wait().expect("v2 serves");
    assert_eq!(out.weights_version, 2, "swap picked up between batches");

    // A bit-flipped file fails CRC validation and changes nothing.
    dar::core::fault::corrupt_bitflip(&tmp, 9).unwrap();
    assert!(server.offer_checkpoint(&tmp).is_err());
    assert_eq!(server.weights_version(), 2);

    // A shape-mismatched (but well-formed) file is rejected too.
    serial::save_checkpoint_path(
        &tmp,
        &Checkpoint::new(vec![Tensor::param(vec![1.0; 4], &[4])], Vec::new()),
    )
    .unwrap();
    assert!(server.offer_checkpoint(&tmp).is_err());
    assert_eq!(server.weights_version(), 2);

    // Serving never blinked.
    let out = server.submit(fx.clean(2)).wait().expect("still serving");
    assert_eq!(out.weights_version, 2);
    std::fs::remove_file(&tmp).ok();
    server.shutdown();
}

/// A review's verdict must not depend on micro-batch composition: a
/// one-request-per-batch server and a batching multi-replica server give
/// identical labels and rationales for identical inputs.
fn batching_invariance_at(replicas: usize) {
    let fx = ServeFixture::new(540);
    let reviews: Vec<Review> = (0..10).map(|i| fx.clean(i)).collect();

    let solo = Server::start(
        ServeConfig {
            max_batch: 1,
            linger: Duration::ZERO,
            ..fx.serve_cfg(1)
        },
        fx.factory(ChaosPlan::default()),
    );
    let solo_outs: Vec<_> = reviews
        .iter()
        .map(|r| solo.submit(r.clone()).wait().expect("solo serves"))
        .collect();
    solo.shutdown();

    let batched = Server::start(
        ServeConfig {
            max_batch: 8,
            linger: Duration::from_millis(10),
            ..fx.serve_cfg(replicas)
        },
        fx.factory(ChaosPlan::default()),
    );
    // Submit everything before waiting so the linger window really
    // groups requests into mixed batches.
    let tickets: Vec<_> = reviews.iter().map(|r| batched.submit(r.clone())).collect();
    let batched_outs: Vec<_> = tickets
        .into_iter()
        .map(|t| t.wait().expect("batched serves"))
        .collect();
    batched.shutdown();

    for (i, (a, b)) in solo_outs.iter().zip(&batched_outs).enumerate() {
        assert_eq!(a.label, b.label, "label of review {i} depends on batching");
        assert_eq!(
            a.rationale, b.rationale,
            "rationale of review {i} depends on batching"
        );
    }
}

#[test]
fn outputs_are_invariant_to_batching() {
    batching_invariance_at(2);
}

/// Batching invariance must survive stealing too: whichever replica ends
/// up running a stolen batch, the verdicts are the solo verdicts.
#[test]
fn outputs_are_invariant_to_batching_scaled_out() {
    batching_invariance_at(4);
}

/// A worker thread dying for real (panic re-raised past the recovery
/// layer) is respawned by the supervisor; its in-flight requests get
/// typed errors and service continues.
fn supervisor_respawn_at(replicas: usize) {
    let fx = ServeFixture::new(550);
    let panic_tok = fx.trigger(3);
    let factory = fx.factory(ChaosPlan {
        panic_token: Some(panic_tok),
        ..Default::default()
    });
    let cfg = ServeConfig {
        max_batch: 1,
        linger: Duration::ZERO,
        lethal_panic_marker: Some("chaos: panic token".to_owned()),
        ..fx.serve_cfg(replicas)
    };
    let server = Server::start(cfg, factory);

    // Kill the lethal requests' home replica, twice — each death must be
    // survivable (and with siblings present, must not take them along).
    for i in 0..2 {
        let err = server
            .submit(fx.triggered(i, panic_tok))
            .wait()
            .expect_err("lethal batch fails");
        assert!(matches!(err, ServeError::WorkerPanicked));
        let out = server
            .submit(fx.clean(i))
            .wait()
            .expect("respawned worker serves");
        // Interleaved successes keep the failure streak below the default
        // threshold, so service stays full-path throughout.
        assert!(!out.degraded);
    }
    let stats = server.shutdown();
    assert_eq!(stats.panics, 2);
    assert!(stats.served_full + stats.served_degraded >= 2);
}

#[test]
fn supervisor_respawns_dead_workers() {
    supervisor_respawn_at(1);
}

#[test]
fn supervisor_respawns_dead_workers_scaled_out() {
    supervisor_respawn_at(4);
}

/// A weight swap racing breaker recovery: the checkpoint lands while the
/// breaker is Open (worker idle), so the HalfOpen probe batch is the
/// first to run on the new generation. The probe must both recover the
/// breaker *and* pick up the swapped weights — neither state machine may
/// clobber the other.
#[test]
fn half_open_probe_recovers_across_a_concurrent_swap() {
    let fx = ServeFixture::new(570);
    let panic_tok = fx.trigger(0);
    let full_panic_tok = fx.trigger(1);
    let factory = fx.factory(ChaosPlan {
        panic_token: Some(panic_tok),
        full_panic_token: Some(full_panic_tok),
        ..Default::default()
    });
    let cfg = ServeConfig {
        max_batch: 1,
        linger: Duration::ZERO,
        breaker: BreakerPolicy {
            failure_threshold: 2,
            degraded_threshold: 2,
            probe_after_degraded: 100,
            probe_after_sheds: 3,
            ..BreakerPolicy::default()
        },
        ..fx.serve_cfg(1)
    };
    let server = Server::start(cfg, factory.clone());
    assert_eq!(server.weights_version(), 1);

    // Walk the breaker down: Closed → Degraded → Open.
    for i in 0..2 {
        let err = server
            .submit(fx.triggered(i, panic_tok))
            .wait()
            .expect_err("panic batch fails");
        assert!(matches!(err, ServeError::WorkerPanicked));
    }
    for i in 0..2 {
        let err = server
            .submit(fx.triggered(i, full_panic_tok))
            .wait()
            .expect_err("full-panic batch fails");
        assert!(matches!(err, ServeError::WorkerPanicked));
    }
    assert_eq!(server.breaker_state(), BreakerState::Open);

    // Swap while Open: same weights as the factory replica (identical
    // behavior, new generation), accepted with the worker idle.
    let tmp = std::env::temp_dir().join(format!("dar_chaos_probe_swap_{}", std::process::id()));
    serial::save_checkpoint_path(&tmp, &Checkpoint::new(factory().params(), Vec::new())).unwrap();
    assert_eq!(server.offer_checkpoint(&tmp).unwrap(), 2);

    // Spend the shed budget to earn the probe slot…
    for _ in 0..3 {
        let err = server.submit(fx.clean(0)).wait().expect_err("open sheds");
        assert!(matches!(err, ServeError::Shed));
    }
    assert_eq!(server.breaker_state(), BreakerState::HalfOpen);

    // …and the probe serves full-path on the *new* generation.
    let out = server.submit(fx.clean(1)).wait().expect("probe serves");
    assert!(!out.degraded);
    assert_eq!(out.weights_version, 2, "probe ran on the swapped weights");
    assert_eq!(server.breaker_state(), BreakerState::Closed);

    let causes: Vec<TransitionCause> = server.breaker_events().iter().map(|e| e.cause).collect();
    assert_eq!(
        causes,
        vec![
            TransitionCause::GeneratorFailures { origin: None },
            TransitionCause::DegradedFailures,
            TransitionCause::ShedBudget,
            TransitionCause::ProbeRecovered,
        ]
    );
    std::fs::remove_file(&tmp).ok();
    server.shutdown();
}

/// Deadlines and the bounded queue produce typed verdicts, not hangs:
/// a slow worker lets queued requests expire, and submissions beyond the
/// queue cap bounce immediately.
#[test]
fn deadlines_and_backpressure_resolve_typed() {
    let fx = ServeFixture::new(560);
    let slow_tok = fx.trigger(4);
    let factory = fx.factory(ChaosPlan {
        slow_token: Some((slow_tok, 400)),
        ..Default::default()
    });
    let cfg = ServeConfig {
        max_batch: 1,
        linger: Duration::ZERO,
        queue_cap: 2,
        ..fx.serve_cfg(1)
    };
    let server = Server::start(cfg, factory);

    // Occupy the worker with a slow request…
    let slow = server.submit_with_deadline(fx.triggered(0, slow_tok), Duration::from_secs(5));
    std::thread::sleep(Duration::from_millis(100)); // let it get claimed

    // …then a request that will expire while the worker sleeps…
    let doomed = server.submit_with_deadline(fx.clean(0), Duration::from_millis(50));
    // …fill the queue…
    let queued = server.submit(fx.clean(1));
    // …and overflow it.
    let bounced = server.submit(fx.clean(2));
    assert!(matches!(bounced.wait(), Err(ServeError::QueueFull)));

    assert!(matches!(doomed.wait(), Err(ServeError::DeadlineExceeded)));
    assert!(slow.wait().is_ok(), "slow but within deadline");
    assert!(
        queued.wait().is_ok(),
        "queued request served after the slow one"
    );

    let stats = server.shutdown();
    assert_eq!(stats.queue_full, 1);
    assert_eq!(stats.deadline_exceeded, 1);
}
