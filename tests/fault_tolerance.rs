//! Integration tests for the fault-tolerant training runtime: checkpoint
//! corruption can never yield garbage weights, and the divergence guards
//! carry a run across injected faults.

use dar::core::fault::{self, FaultPlan, FaultyModel};
use dar::core::guard::{GuardPolicy, GuardReason, GuardedTrainer, TrainEvent};
use dar::prelude::*;
use dar::store::{save_checkpoint_atomic, FaultyStorage, RealStorage, Storage, StorageFaultPlan};
use dar::tensor::serial::{self, Checkpoint};
use dar::tensor::{DarError, Tensor};
use proptest::prelude::*;

fn tmpfile(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("dar_ft_{name}_{}", std::process::id()));
    p
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Save → corrupt → load must always fail with a structured error —
    /// never panic, never return wrong weights — for any seeded
    /// truncation point or bit flip and any tensor geometry.
    #[test]
    fn corrupted_checkpoint_always_fails_to_load(
        seed in 0u64..10_000,
        n in 1usize..40,
        flip in any::<bool>(),
    ) {
        let path = tmpfile(&format!("prop_{seed}_{n}_{flip}"));
        let tensors = vec![
            Tensor::param((0..n).map(|i| i as f32 * 0.5 - 1.0).collect(), &[n]),
            Tensor::param(vec![-2.5; 6], &[2, 3]),
        ];
        serial::save_path(&path, &tensors).expect("save");
        if flip {
            fault::corrupt_bitflip(&path, seed).expect("flip");
        } else {
            fault::corrupt_truncate(&path, seed).expect("truncate");
        }
        let result = serial::load_checkpoint_path(&path);
        std::fs::remove_file(&path).ok();
        match result {
            Err(DarError::Corrupt(_) | DarError::InvalidData(_) | DarError::Io(_)) => {}
            Err(other) => {
                return Err(TestCaseError::Fail(format!("unstructured error: {other:?}")))
            }
            Ok(_) => {
                return Err(TestCaseError::Fail("corrupted checkpoint loaded".to_owned()))
            }
        }
    }
}

fn tiny() -> (AspectDataset, RationaleConfig, SharedEmbedding) {
    let dcfg = SynthConfig {
        n_train: 96,
        n_dev: 32,
        n_test: 32,
        ..SynthConfig::beer(Aspect::Aroma)
    };
    let data = SynBeer::generate(&dcfg, &mut dar::rng(700));
    let cfg = RationaleConfig {
        emb_dim: 16,
        hidden: 16,
        sparsity: 0.16,
        ..Default::default()
    };
    let emb = SharedEmbedding::random(data.vocab.len(), cfg.emb_dim, &mut dar::rng(701));
    (data, cfg, emb)
}

/// A one-shot NaN loss trips the guard; rollback + retry completes the run
/// with finite metrics and a structured event trail.
#[test]
fn guarded_run_survives_injected_nan_loss() {
    let (data, cfg, emb) = tiny();
    let ml = pretrain::max_len(&data);
    let tcfg = TrainConfig {
        epochs: 3,
        batch_size: 32,
        patience: None,
        ..Default::default()
    };
    let path = tmpfile("nan_loss");
    let mut rng = dar::rng(702);
    let inner = Rnp::new(&cfg, &emb, ml, &mut rng);
    // 96 rows / batch 32 = 3 steps per epoch; fault in epoch 1.
    let mut model = FaultyModel::new(inner, FaultPlan::nan_loss_at(4));
    let policy = GuardPolicy {
        collapse_low: -1.0,
        collapse_high: 2.0,
        ..Default::default()
    };
    let guarded = GuardedTrainer::new(tcfg, policy)
        .fit(&mut model, &data, &mut rng, &path)
        .unwrap();
    assert!(
        guarded.events.iter().any(|e| matches!(
            e,
            TrainEvent::GuardTripped {
                reason: GuardReason::NonFiniteLoss { .. },
                ..
            }
        )),
        "no NaN trip recorded: {:?}",
        guarded.events
    );
    assert_eq!(
        guarded.report.epochs_run, 3,
        "run must complete after recovery"
    );
    assert!(guarded.report.test.f1.is_finite());
    assert!(guarded.rollbacks >= 1);
    std::fs::remove_file(path).ok();
}

/// NaN weights are caught by the epoch-boundary parameter scan and rolled
/// back; the final model is finite.
#[test]
fn guarded_run_survives_injected_nan_weights() {
    let (data, cfg, emb) = tiny();
    let ml = pretrain::max_len(&data);
    let tcfg = TrainConfig {
        epochs: 2,
        batch_size: 32,
        patience: None,
        ..Default::default()
    };
    let path = tmpfile("nan_weights");
    let mut rng = dar::rng(703);
    let inner = Rnp::new(&cfg, &emb, ml, &mut rng);
    let mut model = FaultyModel::new(inner, FaultPlan::nan_weights_at(1));
    let policy = GuardPolicy {
        collapse_low: -1.0,
        collapse_high: 2.0,
        ..Default::default()
    };
    let guarded = GuardedTrainer::new(tcfg, policy)
        .fit(&mut model, &data, &mut rng, &path)
        .unwrap();
    assert!(
        guarded.events.iter().any(|e| matches!(
            e,
            TrainEvent::GuardTripped {
                reason: GuardReason::NonFiniteLoss { .. } | GuardReason::NonFiniteParams { .. },
                ..
            }
        )),
        "no trip recorded: {:?}",
        guarded.events
    );
    for p in model.params() {
        assert!(
            p.to_vec().iter().all(|v| v.is_finite()),
            "non-finite weights survived"
        );
    }
    std::fs::remove_file(path).ok();
}

/// A persistent fault exhausts the bounded retry budget and surfaces as a
/// structured error, not a panic or an infinite loop.
#[test]
fn persistent_fault_exhausts_retries() {
    let (data, cfg, emb) = tiny();
    let ml = pretrain::max_len(&data);
    let tcfg = TrainConfig {
        epochs: 2,
        batch_size: 32,
        patience: None,
        ..Default::default()
    };
    let path = tmpfile("exhaust");
    let mut rng = dar::rng(704);
    let inner = Rnp::new(&cfg, &emb, ml, &mut rng);
    let mut model = FaultyModel::new(inner, FaultPlan::nan_loss_from(0));
    let err = GuardedTrainer::new(
        tcfg,
        GuardPolicy {
            max_retries: 2,
            ..Default::default()
        },
    )
    .fit(&mut model, &data, &mut rng, &path)
    .unwrap_err();
    assert!(
        matches!(err, DarError::RetriesExhausted { retries: 2, .. }),
        "wrong error: {err:?}"
    );
    std::fs::remove_file(path).ok();
}

fn tmpdir(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("dar_ft_dir_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn small_checkpoint(value: f32) -> Checkpoint {
    Checkpoint::new(
        vec![Tensor::param(vec![value; 6], &[2, 3])],
        vec![value as u8],
    )
}

/// A checkpoint save through a disk that fails — `ENOSPC`, a short
/// write, a failed rename — must surface a typed error and leave the
/// destination byte-identical to what was there before: no partial
/// file, no temp dropping masquerading as the real thing.
#[test]
fn injected_storage_faults_never_leave_a_partial_checkpoint() {
    let d = tmpdir("inject");
    let dest = d.join("model.ckpt");
    save_checkpoint_atomic(&RealStorage, &dest, &small_checkpoint(1.0)).unwrap();
    let before = std::fs::read(&dest).unwrap();

    let plans: [(&str, StorageFaultPlan); 3] = [
        (
            "enospc",
            StorageFaultPlan {
                enospc_at: Some(0),
                ..Default::default()
            },
        ),
        (
            "short write",
            StorageFaultPlan {
                seed: 11,
                short_write_at: Some(0),
                ..Default::default()
            },
        ),
        (
            "failed rename",
            StorageFaultPlan {
                fail_rename_at: Some(0),
                ..Default::default()
            },
        ),
    ];
    for (what, plan) in plans {
        let s = FaultyStorage::new(plan);
        let err = save_checkpoint_atomic(&s, &dest, &small_checkpoint(2.0))
            .expect_err(&format!("{what} must fail the save"));
        assert!(
            matches!(err, DarError::Io(_)),
            "{what}: untyped error {err:?}"
        );
        assert_eq!(
            std::fs::read(&dest).unwrap(),
            before,
            "{what}: destination was disturbed"
        );
        assert!(
            !RealStorage
                .list(&d)
                .unwrap()
                .iter()
                .any(|n| n.contains(".tmp.")),
            "{what}: temp file left behind"
        );
        // The survivor still loads — the old weights are intact, not
        // merely present.
        let loaded = serial::load_checkpoint_path(&dest).expect("incumbent still loads");
        assert_eq!(loaded.tensors[0].to_vec(), vec![1.0; 6]);
    }
    std::fs::remove_dir_all(&d).ok();
}

/// The atomic save's fsync discipline, asserted on the op log rather
/// than inferred: data is synced before the rename publishes the name,
/// and the parent directory is synced after — the order that makes the
/// rename itself durable.
#[test]
fn checkpoint_save_orders_data_sync_rename_dir_sync() {
    let d = tmpdir("order");
    let s = FaultyStorage::new(StorageFaultPlan::none());
    save_checkpoint_atomic(&s, &d.join("model.ckpt"), &small_checkpoint(3.0)).unwrap();
    let log = s.op_log();
    let wr = log
        .iter()
        .position(|e| e.starts_with("write_file:"))
        .expect("data write logged");
    let rn = log
        .iter()
        .position(|e| e.starts_with("rename:"))
        .expect("rename logged");
    let sd = log
        .iter()
        .position(|e| e.starts_with("sync_dir:"))
        .expect("dir sync logged");
    assert!(wr < rn && rn < sd, "fsync discipline out of order: {log:?}");
    std::fs::remove_dir_all(&d).ok();
}

/// A guarded run's checkpoint is a plain trainer checkpoint: an
/// interrupted guarded run resumes with `Trainer::fit_resume`.
#[test]
fn guarded_checkpoint_is_resumable_by_plain_trainer() {
    let (data, cfg, emb) = tiny();
    let ml = pretrain::max_len(&data);
    let path = tmpfile("guarded_resume");
    let policy = GuardPolicy {
        collapse_low: -1.0,
        collapse_high: 2.0,
        ..Default::default()
    };

    // Guarded run over the partial budget leaves a checkpoint…
    let partial = TrainConfig {
        epochs: 2,
        batch_size: 32,
        patience: None,
        ..Default::default()
    };
    let mut rng = dar::rng(705);
    let mut model = Rnp::new(&cfg, &emb, ml, &mut rng);
    GuardedTrainer::new(partial, policy)
        .fit(&mut model, &data, &mut rng, &path)
        .unwrap();

    // …that a fresh process finishes with the plain trainer.
    let full = TrainConfig {
        epochs: 4,
        batch_size: 32,
        patience: None,
        ..Default::default()
    };
    let mut model = Rnp::new(&cfg, &emb, ml, &mut dar::rng(705));
    let mut rng = dar::rng(9999);
    let resumed = Trainer::new(full)
        .fit_resume(&mut model, &data, &mut rng, &path)
        .unwrap();
    assert_eq!(resumed.epochs_run, 4);
    assert!(resumed.test.f1.is_finite());
    std::fs::remove_file(path).ok();
}
