//! Shared serving-test fixture: a tiny deterministic dataset + model
//! factory with chaos-trigger hooks, parameterized by replica count so
//! the same scenarios run single-replica (`tests/serving_chaos.rs`) and
//! scaled out (`tests/scale_out.rs`).
//!
//! Cargo compiles this module into each test binary that declares
//! `mod common;`, and not every binary uses every helper.
#![allow(dead_code)]

use std::sync::Arc;

use dar::data::Review;
use dar::prelude::*;
use dar::serve::ServeConfig;

/// Trigger token ids live in embedding rows past the dataset vocabulary,
/// so no organic review ever contains one.
pub const N_TRIGGERS: usize = 8;

pub struct ServeFixture {
    pub data: AspectDataset,
    pub cfg: RationaleConfig,
    /// Embedding rows = vocab + trigger space; also the admission cap.
    pub vocab_rows: usize,
    pub ml: usize,
}

impl ServeFixture {
    /// The standard chaos workload: enough model (emb 12 / hidden 12)
    /// that batches take real time, so backlogs form and stealing,
    /// deadlines, and breaker windows are all reachable.
    pub fn new(seed: u64) -> Self {
        let synth = SynthConfig {
            n_train: 64,
            n_dev: 24,
            n_test: 24,
            ..SynthConfig::beer(Aspect::Aroma)
        };
        Self::build(seed, synth, 12, 12)
    }

    /// The saturation workload: short filler-free reviews and a minimal
    /// model (emb 8 / hidden 8), so a sweep measures runtime overhead —
    /// queue handoff, routing, batching, stealing — rather than GRU math.
    pub fn light(seed: u64) -> Self {
        let synth = SynthConfig {
            n_train: 128,
            n_dev: 32,
            n_test: 64,
            filler_sentences: 0,
            filler_in_sentence: (0, 1),
            sentiment_tokens: 1,
            ..SynthConfig::beer(Aspect::Aroma)
        };
        Self::build(seed, synth, 8, 8)
    }

    fn build(seed: u64, synth: SynthConfig, emb_dim: usize, hidden: usize) -> Self {
        let data = SynBeer::generate(&synth, &mut dar::rng(seed));
        let cfg = RationaleConfig {
            emb_dim,
            hidden,
            sparsity: 0.16,
            ..Default::default()
        };
        let vocab_rows = data.vocab.len() + N_TRIGGERS;
        let ml = pretrain::max_len(&data);
        ServeFixture {
            data,
            cfg,
            vocab_rows,
            ml,
        }
    }

    /// Trigger token `i` (guaranteed absent from every organic review).
    pub fn trigger(&self, i: usize) -> usize {
        assert!(i < N_TRIGGERS);
        self.data.vocab.len() + i
    }

    /// A deterministic model factory: every call (on any thread) builds
    /// the same replica, wrapped in the given chaos plan.
    pub fn factory(&self, plan: ChaosPlan) -> dar::serve::ModelFactory {
        let cfg = self.cfg;
        let vocab_rows = self.vocab_rows;
        let ml = self.ml;
        Arc::new(move || {
            let mut rng = dar::rng(77);
            let emb = SharedEmbedding::random(vocab_rows, cfg.emb_dim, &mut rng);
            let rnp = Rnp::new(&cfg, &emb, ml, &mut rng);
            Box::new(ChaosModel::new(rnp, plan))
        })
    }

    /// Base serving config at the given replica count; tests override
    /// batching/breaker knobs per scenario with struct update syntax.
    pub fn serve_cfg(&self, replicas: usize) -> ServeConfig {
        ServeConfig {
            replicas,
            vocab_size: self.vocab_rows,
            max_len: self.ml,
            ..ServeConfig::default()
        }
    }

    pub fn clean(&self, i: usize) -> Review {
        self.data.test[i % self.data.test.len()].clone()
    }

    /// A review carrying a trigger token in its first position.
    pub fn triggered(&self, i: usize, trigger: usize) -> Review {
        let mut r = self.clean(i);
        r.ids[0] = trigger;
        r
    }
}
