//! Chaos suite for the closed online loop (DESIGN.md §13): canary
//! evaluation, atomic promotion, auto-rollback, and the train-while-serve
//! controller.
//!
//! The invariants under test:
//!
//! * **The incumbent is never displaced by a worse model** — a candidate
//!   that regresses accuracy, answers degraded/non-finite, or fails CRC
//!   validation is rolled back (or rejected at the door) while the
//!   incumbent keeps serving on its own weights.
//! * **Rollback drops nothing** — every request in flight across a
//!   rollback resolves to exactly one outcome; `ServeError::Lost` is
//!   never observed.
//! * **The promotion journal is deterministic** — the event sequence in
//!   the obs deterministic section is a pure function of the inputs.
//!   The golden byte-compares below hold under any `DAR_THREADS`; CI
//!   runs this binary under `=1` and `=4`.
//! * **Trainer failure is a message, not a fault** — a trainer panic
//!   mid-epoch surfaces as `TrainerDied` and leaves serving untouched.

use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use dar::core::guard::GuardPolicy;
use dar::core::stream::{spawn_online_trainer, FeedConfig, OnlineTrainerConfig};
use dar::data::Review;
use dar::prelude::*;
use dar::serve::{
    run_online_loop, BreakerPolicy, BreakerState, CanaryOutcome, CanaryPolicy, OnlineLoopConfig,
    PromotionPhase, RollbackCause, ServeConfig, Server,
};
use dar::tensor::serial::{self, Checkpoint};

/// The obs registry is process-global and cargo runs `#[test]`s of one
/// binary concurrently; every test takes this lock and resets.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn obs_lock() -> MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn tmpfile(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("dar_online_{name}_{}", std::process::id()));
    p
}

/// Guards wide open so clean traffic never degrades and the journal
/// carries only promotion events.
fn open_policy() -> GuardPolicy {
    GuardPolicy {
        spike_sigmas: f32::INFINITY,
        collapse_low: -1.0,
        collapse_high: 2.0,
        ..GuardPolicy::default()
    }
}

struct Fixture {
    data: AspectDataset,
    cfg: RationaleConfig,
    vocab: usize,
    ml: usize,
}

impl Fixture {
    fn new(seed: u64) -> Self {
        let synth = SynthConfig {
            n_train: 96,
            n_dev: 24,
            n_test: 32,
            ..SynthConfig::beer(Aspect::Aroma)
        };
        let data = SynBeer::generate(&synth, &mut dar::rng(seed));
        let cfg = RationaleConfig {
            emb_dim: 12,
            hidden: 12,
            sparsity: 0.16,
            ..Default::default()
        };
        let vocab = data.vocab.len();
        let ml = pretrain::max_len(&data);
        Fixture {
            data,
            cfg,
            vocab,
            ml,
        }
    }

    /// Deterministic factory: every replica is the same random-init model.
    fn factory(&self) -> dar::serve::ModelFactory {
        let cfg = self.cfg;
        let vocab = self.vocab;
        let ml = self.ml;
        Arc::new(move || {
            let mut rng = dar::rng(603);
            let emb = SharedEmbedding::random(vocab, cfg.emb_dim, &mut rng);
            Box::new(Rnp::new(&cfg, &emb, ml, &mut rng))
        })
    }

    /// Open collapse band, generous queue: clean traffic is never
    /// degraded, shed, or bounced, so canary verdicts only reflect the
    /// models under comparison.
    fn serve_cfg(&self, replicas: usize) -> ServeConfig {
        ServeConfig {
            replicas,
            queue_cap: 256,
            vocab_size: self.vocab,
            max_len: self.ml,
            breaker: BreakerPolicy {
                collapse: open_policy(),
                ..BreakerPolicy::default()
            },
            ..ServeConfig::default()
        }
    }

    /// A model that answers `label` for *every* input: all weights
    /// zeroed except the 2-way head biases, steered hard toward that
    /// class. On label-1-only traffic the two variants score exactly 1.0
    /// and 0.0 — margins in these tests are structural, not a bet on
    /// what a few epochs of training happen to learn at test scale.
    fn biased_checkpoint(&self, name: &str, label: usize) -> std::path::PathBuf {
        let model = (self.factory())();
        let bias = if label == 1 { [0.0, 8.0] } else { [8.0, 0.0] };
        let mut biased = 0;
        for p in model.params() {
            let n = p.len();
            if n == 2 {
                p.set_values(bias.to_vec());
                biased += 1;
            } else {
                p.set_values(vec![0.0; n]);
            }
        }
        assert!(biased > 0, "expected a 2-way head bias to steer");
        let path = tmpfile(name);
        serial::save_checkpoint_path(&path, &Checkpoint::new(model.params(), Vec::new()))
            .expect("saving biased checkpoint");
        path
    }

    /// A same-shaped checkpoint with every parameter set to `value` —
    /// useful as valid checkpoint bytes (CRC test) or, with a non-finite
    /// `value`, as a numerically poisoned candidate.
    fn constant_checkpoint(&self, name: &str, value: f32) -> std::path::PathBuf {
        let model = (self.factory())();
        for p in model.params() {
            let n = p.len();
            p.set_values(vec![value; n]);
        }
        let path = tmpfile(name);
        serial::save_checkpoint_path(&path, &Checkpoint::new(model.params(), Vec::new()))
            .expect("saving constant checkpoint");
        path
    }

    fn clean(&self, i: usize) -> Review {
        self.data.test[i % self.data.test.len()].clone()
    }

    /// The label-1 half of the test split — the traffic that makes the
    /// label-one/constant model pair a structural 1.0-vs-0.0 contrast.
    fn ones(&self) -> Vec<Review> {
        let ones: Vec<Review> = self
            .data
            .test
            .iter()
            .filter(|r| r.label == 1)
            .cloned()
            .collect();
        assert!(!ones.is_empty());
        ones
    }
}

/// Submit traffic strictly sequentially (submit, wait, next — so batch
/// composition and routing are reproducible) until the canary reaches a
/// verdict.
fn drive_until_verdict(server: &Server, traffic: &[Review], cursor: &mut usize) -> CanaryOutcome {
    for _ in 0..4000 {
        let out = server
            .submit(traffic[*cursor % traffic.len()].clone())
            .wait()
            .expect("clean traffic serves");
        assert!(out.label < 2);
        *cursor += 1;
        if let Some(outcome) = server.try_conclude_canary() {
            return outcome;
        }
    }
    panic!("canary never filled its window");
}

fn events_section(det: &str) -> &str {
    let start = det.find("\"events\":").expect("snapshot has events");
    &det[start..]
}

/// A candidate that genuinely beats the incumbent is promoted, the swap
/// is atomic, and the promotion journal is byte-for-byte the golden
/// sequence — the determinism CI re-asserts under `DAR_THREADS=1` and
/// `=4`.
#[test]
fn better_candidate_is_promoted_with_golden_journal() {
    let _g = obs_lock();
    let fx = Fixture::new(600);
    // Build the candidate *before* the obs reset so the journal holds
    // promotion events only.
    let ckpt = fx.biased_checkpoint("promote", 1);
    let traffic = fx.ones();
    dar::obs::reset();
    dar::obs::set_enabled(true);

    let server = Server::start(fx.serve_cfg(1), fx.factory());
    assert_eq!(server.weights_version(), 1);
    let policy = CanaryPolicy {
        window: 20,
        max_f1_drop: 1.0, // accuracy is the gate under test
        ..CanaryPolicy::default()
    };
    let version = server.begin_canary(&ckpt, policy).expect("canary begins");
    assert_eq!(version, 2);

    let mut cursor = 0;
    let outcome = drive_until_verdict(&server, &traffic, &mut cursor);
    assert_eq!(outcome.phase, PromotionPhase::Promoted);
    assert_eq!(outcome.version, 2);
    assert_eq!(
        outcome.snapshot.candidate.accuracy(),
        1.0,
        "the label-one candidate is exact on label-1 traffic"
    );
    assert_eq!(outcome.snapshot.candidate.degraded, 0);
    assert_eq!(outcome.snapshot.candidate.errors, 0);

    // The promotion is visible: the next answer carries the new version.
    let out = server
        .submit(traffic[cursor % traffic.len()].clone())
        .wait()
        .expect("serves");
    assert_eq!(out.weights_version, 2);
    assert_eq!(server.weights_version(), 2);
    server.shutdown();

    let det = dar::obs::snapshot("loop").deterministic_json();
    assert_eq!(
        events_section(&det),
        "\"events\":[\
         {\"seq\":0,\"kind\":\"canary_started\",\"version\":2},\
         {\"seq\":1,\"kind\":\"weights_swapped\",\"version\":2},\
         {\"seq\":2,\"kind\":\"candidate_promoted\",\"version\":2}],\
         \"events_dropped\":0}",
        "full deterministic section: {det}"
    );
    std::fs::remove_file(ckpt).ok();
}

/// A regressing candidate (answers label 0 on label-1 traffic) is rolled
/// back with cause `accuracy_regressed`; the incumbent is never
/// displaced and the journal is golden.
#[test]
fn regressing_candidate_is_rolled_back_with_golden_journal() {
    let _g = obs_lock();
    let fx = Fixture::new(610);
    let good = fx.biased_checkpoint("rb_good", 1);
    let bad = fx.biased_checkpoint("rb_bad", 0);
    let traffic = fx.ones();
    dar::obs::reset();
    dar::obs::set_enabled(true);

    let server = Server::start(fx.serve_cfg(1), fx.factory());
    // Install the exact model the plain way first, so the incumbent has
    // a structural margin over the constant candidate.
    assert_eq!(server.offer_checkpoint(&good).expect("good offer"), 2);
    let policy = CanaryPolicy {
        window: 20,
        max_f1_drop: 1.0,
        ..CanaryPolicy::default()
    };
    assert_eq!(server.begin_canary(&bad, policy).expect("begins"), 3);

    let mut cursor = 0;
    let outcome = drive_until_verdict(&server, &traffic, &mut cursor);
    assert_eq!(outcome.phase, PromotionPhase::RolledBack);
    assert_eq!(outcome.cause, Some(RollbackCause::AccuracyRegressed));
    assert_eq!(outcome.snapshot.candidate.accuracy(), 0.0);
    assert_eq!(outcome.snapshot.incumbent.accuracy(), 1.0);

    // Rollback is the absence of a swap: the incumbent serves on.
    let out = server
        .submit(traffic[cursor % traffic.len()].clone())
        .wait()
        .expect("serves");
    assert_eq!(out.weights_version, 2);
    assert_eq!(server.weights_version(), 2);
    server.shutdown();

    let det = dar::obs::snapshot("loop").deterministic_json();
    assert_eq!(
        events_section(&det),
        "\"events\":[\
         {\"seq\":0,\"kind\":\"weights_swapped\",\"version\":2},\
         {\"seq\":1,\"kind\":\"canary_started\",\"version\":3},\
         {\"seq\":2,\"kind\":\"candidate_rolled_back\",\"version\":3,\
           \"cause\":\"accuracy_regressed\"}],\
         \"events_dropped\":0}",
        "full deterministic section: {det}"
    );
    std::fs::remove_file(good).ok();
    std::fs::remove_file(bad).ok();
}

/// A numerically poisoned candidate (NaN weights) answers its slice
/// degraded; the fault gate rolls it back before accuracy is even
/// consulted, and the incumbent arm never degrades.
#[test]
fn nan_candidate_is_rolled_back_for_faults() {
    let _g = obs_lock();
    let fx = Fixture::new(620);
    let bad = fx.constant_checkpoint("nan", f32::NAN);
    dar::obs::reset();
    dar::obs::set_enabled(true);

    // Degraded canary batches count as full-path failures in the
    // breaker; hold its thresholds far out of reach so the incumbent's
    // service mode is untouched by the candidate's sickness.
    let cfg = ServeConfig {
        breaker: BreakerPolicy {
            failure_threshold: 10_000,
            collapse: open_policy(),
            ..BreakerPolicy::default()
        },
        ..fx.serve_cfg(1)
    };
    let server = Server::start(cfg, fx.factory());
    let policy = CanaryPolicy {
        window: 16,
        ..CanaryPolicy::default()
    };
    assert_eq!(server.begin_canary(&bad, policy).expect("begins"), 2);

    let mut cursor = 0;
    let traffic = fx.data.test.clone();
    let outcome = drive_until_verdict(&server, &traffic, &mut cursor);
    assert_eq!(outcome.phase, PromotionPhase::RolledBack);
    assert_eq!(outcome.cause, Some(RollbackCause::CandidateFaults));
    assert!(
        outcome.snapshot.candidate.degraded > 0,
        "the NaN slice must have been answered degraded"
    );
    assert_eq!(
        outcome.snapshot.incumbent.degraded, 0,
        "the incumbent arm stayed on the full path"
    );
    assert_eq!(server.breaker_state(), BreakerState::Closed);

    // Post-rollback service is full-path on the incumbent weights.
    let out = server.submit(fx.clean(cursor)).wait().expect("serves");
    assert!(!out.degraded);
    assert_eq!(out.weights_version, 1);
    let stats = server.shutdown();
    assert_eq!(stats.panics, 0);

    let det = dar::obs::snapshot("loop").deterministic_json();
    assert!(
        det.contains(
            "\"kind\":\"candidate_rolled_back\",\"version\":2,\"cause\":\"candidate_faults\""
        ),
        "journal: {det}"
    );
    std::fs::remove_file(bad).ok();
}

/// A bit-flipped candidate never reaches the canary slot: `begin_canary`
/// fails CRC validation, journals a typed `offer_rejected`, and the slot
/// stays free for the next (valid) candidate.
#[test]
fn corrupt_candidate_is_rejected_at_the_door() {
    let _g = obs_lock();
    let fx = Fixture::new(630);
    let good = fx.biased_checkpoint("crc_good", 1);
    let bad = fx.constant_checkpoint("crc_bad", 0.05);
    dar::core::fault::corrupt_bitflip(&bad, 9).expect("flipping a byte");
    dar::obs::reset();
    dar::obs::set_enabled(true);

    let server = Server::start(fx.serve_cfg(1), fx.factory());
    let policy = CanaryPolicy {
        window: 8,
        max_acc_drop: 1.0,
        max_f1_drop: 1.0,
        ..CanaryPolicy::default()
    };
    assert!(server.begin_canary(&bad, policy.clone()).is_err());
    assert_eq!(server.weights_version(), 1, "rejection changes nothing");

    // Serving never blinked, and the slot is free for a valid candidate.
    let out = server.submit(fx.clean(0)).wait().expect("serves");
    assert_eq!(out.weights_version, 1);
    assert_eq!(server.begin_canary(&good, policy).expect("valid begins"), 2);
    server.abort_canary();
    server.shutdown();

    let det = dar::obs::snapshot("loop").deterministic_json();
    assert!(
        det.contains("\"kind\":\"offer_rejected\",\"cause\":\"crc_mismatch\""),
        "journal: {det}"
    );
    assert!(
        det.contains("\"cause\":\"aborted\""),
        "the aborted canary is journaled as a rollback: {det}"
    );
    std::fs::remove_file(good).ok();
    std::fs::remove_file(bad).ok();
}

/// A concurrent burst spanning a rollback: every ticket in flight across
/// the verdict resolves (zero `Lost`), and requests claimed after the
/// rollback serve on the incumbent weights.
#[test]
fn burst_spanning_rollback_drops_nothing() {
    let _g = obs_lock();
    let fx = Fixture::new(640);
    let bad = fx.biased_checkpoint("burst_bad", 0);
    let good = fx.biased_checkpoint("burst_good", 1);
    let traffic = fx.ones();
    dar::obs::reset();
    dar::obs::set_enabled(true);

    let cfg = ServeConfig {
        max_batch: 4,
        linger: Duration::from_millis(1),
        ..fx.serve_cfg(2)
    };
    let server = Server::start(cfg, fx.factory());
    assert_eq!(server.offer_checkpoint(&good).expect("good offer"), 2);
    let policy = CanaryPolicy {
        window: 16,
        max_f1_drop: 1.0,
        ..CanaryPolicy::default()
    };
    assert_eq!(server.begin_canary(&bad, policy).expect("begins"), 3);

    // Fire the whole burst without waiting, then poll for the verdict
    // while requests are still in flight.
    let tickets: Vec<_> = (0..96)
        .map(|i| server.submit(traffic[i % traffic.len()].clone()))
        .collect();
    let mut outcome = None;
    for _ in 0..20_000 {
        if let Some(o) = server.try_conclude_canary() {
            outcome = Some(o);
            break;
        }
        std::thread::sleep(Duration::from_micros(100));
    }
    let mut cursor = 96;
    let outcome = match outcome {
        Some(o) => o,
        // The burst drained before the window filled — finish the canary
        // with sequential traffic; the burst tickets are already settled.
        None => drive_until_verdict(&server, &traffic, &mut cursor),
    };
    assert_eq!(outcome.phase, PromotionPhase::RolledBack);

    let mut ok = 0;
    for t in tickets {
        let out = t.wait().expect("no burst request may fail");
        assert!(out.weights_version == 2 || out.weights_version == 3);
        ok += 1;
    }
    assert_eq!(ok, 96, "every in-flight request resolved across rollback");

    // After the rollback, new traffic is all-incumbent.
    let out = server
        .submit(traffic[cursor % traffic.len()].clone())
        .wait()
        .expect("serves");
    assert_eq!(out.weights_version, 2);
    let stats = server.shutdown();
    assert_eq!(stats.panics, 0);
    std::fs::remove_file(good).ok();
    std::fs::remove_file(bad).ok();
}

/// The promotion verdict journal is a pure function of the traffic and
/// the candidate — not of the replica count. A full promotion round at 4
/// replicas must produce byte-identical journal events to the 1-replica
/// golden run: sequential traffic all routes to tenant 0's home shard,
/// never crosses the steal threshold, and verdict events are emitted
/// from the driving thread.
#[test]
fn promotion_journal_is_replica_count_invariant() {
    let _g = obs_lock();
    let fx = Fixture::new(670);
    let ckpt = fx.biased_checkpoint("inv", 1);
    let traffic = fx.ones();

    let run = |replicas: usize| -> String {
        dar::obs::reset();
        dar::obs::set_enabled(true);
        let server = Server::start(fx.serve_cfg(replicas), fx.factory());
        let policy = CanaryPolicy {
            window: 20,
            max_f1_drop: 1.0,
            ..CanaryPolicy::default()
        };
        assert_eq!(server.begin_canary(&ckpt, policy).expect("begins"), 2);
        let mut cursor = 0;
        let outcome = drive_until_verdict(&server, &traffic, &mut cursor);
        assert_eq!(outcome.phase, PromotionPhase::Promoted);
        let stats = server.shutdown();
        assert_eq!(stats.steals, 0, "sequential traffic must never steal");
        let det = dar::obs::snapshot("loop").deterministic_json();
        events_section(&det).to_owned()
    };

    let golden = run(1);
    let scaled = run(4);
    assert_eq!(
        golden, scaled,
        "the promotion journal diverged across replica counts"
    );
    assert!(
        golden.contains("\"kind\":\"candidate_promoted\",\"version\":2"),
        "journal: {golden}"
    );
    std::fs::remove_file(ckpt).ok();
}

/// A trainer panic mid-epoch surfaces as a `TrainerDied` message through
/// the candidate channel; the serving side records it and keeps serving.
#[test]
fn trainer_panic_leaves_serving_untouched() {
    let _g = obs_lock();
    let fx = Fixture::new(650);
    dar::obs::reset();
    dar::obs::set_enabled(true);

    let dir = tmpfile("panic_dir");
    std::fs::create_dir_all(&dir).expect("candidate dir");
    let trainer_cfg = OnlineTrainerConfig {
        rounds: 3,
        first_round: 0,
        epochs_per_round: 1,
        batch_size: 16,
        vocab_size: fx.vocab,
        max_len: fx.ml,
        candidate_dir: dir.clone(),
        seed: 651,
        resume_from: None,
        panic_at_round: Some(1),
    };
    let feed = FeedConfig {
        synth: SynthConfig {
            n_train: 48,
            ..SynthConfig::beer(Aspect::Aroma)
        },
        seed: 652,
        poison_every: None,
    };
    let (trainer, candidates) = spawn_online_trainer(trainer_cfg, fx.factory(), feed);

    let server = Server::start(fx.serve_cfg(1), fx.factory());
    let loop_cfg = OnlineLoopConfig {
        policy: CanaryPolicy {
            window: 8,
            max_acc_drop: 1.0,
            max_f1_drop: 1.0,
            max_candidate_faults: 10_000,
            ..CanaryPolicy::default()
        },
        wave: 8,
        max_waves: 64,
    };
    let report = run_online_loop(&server, &candidates, &fx.data.test, &loop_cfg);
    trainer.join().expect("the panic was caught inside");

    assert!(report.trainer_died, "the death must surface as a message");
    let verdicts = report.rounds.iter().filter(|r| r.outcome.is_some()).count();
    assert_eq!(verdicts, 1, "round 0 completed before the panic");
    let failed: u64 = report.rounds.iter().map(|r| r.failed).sum();
    assert_eq!(failed, 0, "serving is untouched by the trainer's death");

    // Liveness after the death, directly.
    let out = server.submit(fx.clean(0)).wait().expect("still serving");
    assert!(out.label < 2);
    let stats = server.shutdown();
    assert_eq!(stats.panics, 0, "the panic stayed in the trainer thread");

    let det = dar::obs::snapshot("loop").deterministic_json();
    assert!(det.contains("\"loop.trainer_deaths\":1"), "journal: {det}");
    std::fs::remove_dir_all(dir).ok();
}

/// End-to-end closed loop: a background trainer on a poisoned streaming
/// feed produces candidates; every round reaches a verdict, feed
/// admission filters the poison, and nothing is dropped.
#[test]
fn closed_loop_survives_a_poisoned_feed() {
    let _g = obs_lock();
    let fx = Fixture::new(660);
    dar::obs::reset();
    dar::obs::set_enabled(true);

    let dir = tmpfile("loop_dir");
    std::fs::create_dir_all(&dir).expect("candidate dir");
    let trainer_cfg = OnlineTrainerConfig {
        rounds: 2,
        first_round: 0,
        epochs_per_round: 1,
        batch_size: 16,
        vocab_size: fx.vocab,
        max_len: fx.ml,
        candidate_dir: dir.clone(),
        seed: 661,
        resume_from: None,
        panic_at_round: None,
    };
    let feed = FeedConfig {
        synth: SynthConfig {
            n_train: 48,
            ..SynthConfig::beer(Aspect::Aroma)
        },
        seed: 662,
        poison_every: Some(4),
    };
    let (trainer, candidates) = spawn_online_trainer(trainer_cfg, fx.factory(), feed);

    let server = Server::start(fx.serve_cfg(1), fx.factory());
    let loop_cfg = OnlineLoopConfig {
        policy: CanaryPolicy {
            window: 12,
            max_acc_drop: 1.0,
            max_f1_drop: 1.0,
            max_candidate_faults: 10_000,
            ..CanaryPolicy::default()
        },
        wave: 12,
        max_waves: 64,
    };
    let report = run_online_loop(&server, &candidates, &fx.data.test, &loop_cfg);
    trainer.join().expect("trainer exits cleanly");

    assert!(!report.trainer_died);
    assert_eq!(report.rounds.len(), 2);
    assert!(
        report.rounds.iter().all(|r| r.outcome.is_some()),
        "every round reaches a verdict: {report:?}"
    );
    assert_eq!(report.promoted + report.rolled_back, 2);
    let failed: u64 = report.rounds.iter().map(|r| r.failed).sum();
    assert_eq!(failed, 0);
    // With an all-tolerant policy every candidate promotes, and the
    // final generation is the last candidate's.
    assert_eq!(report.promoted, 2);
    assert_eq!(report.final_version, 3);
    let stats = server.shutdown();
    assert_eq!(stats.panics, 0);

    let det = dar::obs::snapshot("loop").deterministic_json();
    assert!(det.contains("\"loop.candidates\":2"), "journal: {det}");
    assert!(
        det.contains("\"loop.feed_rejected\""),
        "poison was injected and filtered: {det}"
    );
    std::fs::remove_dir_all(dir).ok();
}
