//! Cross-crate integration tests: the full pipeline from synthetic data
//! through embedding pretraining to trained rationalization models, and
//! the paper's headline claims as testable invariants.

use dar::prelude::*;

fn tiny_data(aspect: Aspect, seed: u64) -> AspectDataset {
    let base = match aspect.domain() {
        dar::data::Domain::Beer => SynthConfig::beer(aspect),
        dar::data::Domain::Hotel => SynthConfig::hotel(aspect),
    };
    let cfg = SynthConfig {
        n_train: 320,
        n_dev: 64,
        n_test: 64,
        ..base
    };
    let mut rng = dar::rng(seed);
    match aspect.domain() {
        dar::data::Domain::Beer => SynBeer::generate(&cfg, &mut rng),
        dar::data::Domain::Hotel => SynHotel::generate(&cfg, &mut rng),
    }
}

fn small_cfg(alpha: f32) -> RationaleConfig {
    RationaleConfig {
        emb_dim: 32,
        hidden: 32,
        sparsity: alpha,
        lr: 2e-3,
        ..Default::default()
    }
}

fn short_train() -> TrainConfig {
    TrainConfig {
        epochs: 10,
        batch_size: 16,
        patience: None,
        ..Default::default()
    }
}

/// The full-text predictor (Eq. (4)) must master separable synthetic data —
/// the premise the whole DAR construction rests on.
#[test]
fn full_text_predictor_masters_synthetic_beer() {
    let data = tiny_data(Aspect::Aroma, 1);
    let cfg = small_cfg(0.16);
    let mut rng = dar::rng(2);
    let emb = SharedEmbedding::pretrained(&data, cfg.emb_dim, &mut rng);
    let pred = pretrain::full_text_predictor(&cfg, &emb, &data, 10, &mut rng);
    let acc = pretrain::full_text_accuracy(&pred, &data.dev, 64);
    assert!(acc > 0.85, "full-text predictor reached only {acc}");
}

/// Training DAR end to end must produce above-chance rationales and a
/// predictor whose full-text probe is above chance (Theorem 1's
/// observable; the probe approaches the rationale accuracy as the
/// training budget grows — see the full-scale calibration in
/// EXPERIMENTS.md, where it reaches 98.5%).
#[test]
fn dar_end_to_end_aligns_rationales() {
    let data = tiny_data(Aspect::Aroma, 3);
    let cfg = small_cfg(0.16);
    let mut rng = dar::rng(4);
    let emb = SharedEmbedding::pretrained(&data, cfg.emb_dim, &mut rng);
    let ml = pretrain::max_len(&data);
    let disc = pretrain::full_text_predictor(&cfg, &emb, &data, 8, &mut rng);
    let mut dar = Dar::new(&cfg, &emb, disc, ml, &mut rng);
    let report = Trainer::new(short_train()).fit(&mut dar, &data, &mut rng);
    assert!(
        report.test.f1 > 0.3,
        "DAR rationale F1 too low: {:?}",
        report.test
    );
    let dar_full = report
        .test
        .full_text_acc
        .expect("DAR reports a full-text probe");
    assert!(dar_full > 0.55, "DAR full-text probe at chance: {dar_full}");
}

/// The certification-of-exclusion guarantee must hold end to end on a
/// trained model: perturbing unselected tokens never changes predictions.
#[test]
fn certification_of_exclusion_end_to_end() {
    let data = tiny_data(Aspect::Palate, 5);
    let cfg = small_cfg(0.13);
    let mut rng = dar::rng(6);
    let emb = SharedEmbedding::pretrained(&data, cfg.emb_dim, &mut rng);
    let ml = pretrain::max_len(&data);
    let mut rnp = Rnp::new(&cfg, &emb, ml, &mut rng);
    // Brief training so masks are non-trivial.
    for batch in BatchIter::shuffled(&data.train, 32, &mut rng).take(5) {
        rnp.train_step(&batch, &mut rng);
    }
    let batch = BatchIter::sequential(&data.test, 4).next().unwrap();
    let inf = rnp.infer(&batch);
    let logits_before = inf.logits.as_ref().unwrap().to_vec();

    // Replace every unselected real token with an arbitrary different id.
    let mut reviews: Vec<dar::data::Review> = Vec::new();
    for i in 0..batch.len() {
        let mut ids = batch.ids[i][..batch.lengths[i]].to_vec();
        for (t, id) in ids.iter_mut().enumerate() {
            if inf.masks[i][t] < 0.5 {
                *id = 3 + (*id + 1) % (data.vocab.len() - 3);
            }
        }
        reviews.push(dar::data::Review {
            ids,
            label: batch.labels[i],
            rationale: batch.rationales[i][..batch.lengths[i]].to_vec(),
            first_sentence_end: 1,
        });
    }
    let refs: Vec<&dar::data::Review> = reviews.iter().collect();
    let perturbed =
        Batch::from_reviews_checked(&refs, data.vocab.len()).expect("perturbed batch is valid");
    let inf2 = rnp.infer(&perturbed);
    // Identical masks assumed only for prediction comparison — recompute
    // prediction with the ORIGINAL mask to isolate the predictor:
    let z = dar::tensor::Tensor::new(
        inf.masks.iter().flatten().copied().collect(),
        &[batch.len(), batch.seq_len()],
    );
    let logits_after = dar::tensor::no_grad(|| rnp.pred.forward_masked(&perturbed, &z)).to_vec();
    for (a, b) in logits_before.iter().zip(&logits_after) {
        assert!(
            (a - b).abs() < 1e-4,
            "unselected token changed prediction: {a} vs {b}"
        );
    }
    drop(inf2);
}

/// Under a skewed generator initialization (the Table VIII setting), DAR's
/// rationale F1 must beat RNP's — the paper's core claim in its most
/// controlled form.
#[test]
fn dar_beats_rnp_under_skewed_generator() {
    let data = tiny_data(Aspect::Palate, 7);
    let cfg = small_cfg(0.13);
    let mut rng = dar::rng(8);
    let emb = SharedEmbedding::pretrained(&data, cfg.emb_dim, &mut rng);
    let ml = pretrain::max_len(&data);

    let (gen, pre_acc) = pretrain::skewed_generator(&cfg, &emb, &data, 0.65, &mut rng);
    assert!(pre_acc >= 0.65, "skew pretraining failed: {pre_acc}");
    let mut rnp = Rnp::new(&cfg, &emb, ml, &mut rng);
    rnp.set_generator(gen);
    let rnp_rep = Trainer::new(short_train()).fit(&mut rnp, &data, &mut rng);

    let (gen, _) = pretrain::skewed_generator(&cfg, &emb, &data, 0.65, &mut rng);
    let disc = pretrain::full_text_predictor(&cfg, &emb, &data, 8, &mut rng);
    let mut dar = Dar::new(&cfg, &emb, disc, ml, &mut rng);
    dar.set_generator(gen);
    let dar_rep = Trainer::new(short_train()).fit(&mut dar, &data, &mut rng);

    assert!(
        dar_rep.test.f1 >= rnp_rep.test.f1 - 0.02,
        "DAR ({:.3}) did not hold up against RNP ({:.3}) under skew",
        dar_rep.test.f1,
        rnp_rep.test.f1
    );
}

/// Every model in the registry trains for a few steps with finite loss
/// and produces valid inference on every dataset domain.
#[test]
fn all_models_run_on_both_domains() {
    for aspect in [Aspect::Aroma, Aspect::Service] {
        let data = tiny_data(aspect, 9);
        let cfg = small_cfg(0.15);
        let mut rng = dar::rng(10);
        let emb = SharedEmbedding::random(data.vocab.len(), cfg.emb_dim, &mut rng);
        let ml = pretrain::max_len(&data);
        let mut models: Vec<Box<dyn RationaleModel>> = vec![
            Box::new(Rnp::new(&cfg, &emb, ml, &mut rng)),
            Box::new(A2r::new(&cfg, &emb, ml, &mut rng)),
            Box::new(Dmr::new(&cfg, &emb, ml, &mut rng)),
            Box::new(InterRat::new(&cfg, &emb, ml, &mut rng)),
            Box::new(Car::new(&cfg, &emb, ml, &mut rng)),
            Box::new(ThreePlayer::new(&cfg, &emb, ml, &mut rng)),
            Box::new(Vib::new(&cfg, &emb, ml, &mut rng)),
            {
                let disc = pretrain::full_text_predictor(&cfg, &emb, &data, 1, &mut rng);
                Box::new(Dar::new(&cfg, &emb, disc, ml, &mut rng))
            },
        ];
        for model in &mut models {
            for batch in BatchIter::shuffled(&data.train, 32, &mut rng).take(2) {
                let loss = model.train_step(&batch, &mut rng);
                assert!(
                    loss.is_finite(),
                    "{} produced non-finite loss",
                    model.name()
                );
            }
            let batch = BatchIter::sequential(&data.test, 8).next().unwrap();
            let inf = model.infer(&batch);
            assert_eq!(inf.masks.len(), 8, "{} bad inference", model.name());
            for row in &inf.masks {
                assert!(
                    row.iter().all(|&v| v == 0.0 || v == 1.0),
                    "{} non-binary mask",
                    model.name()
                );
            }
        }
    }
}

/// Training must be reproducible: same seeds, same data, same metrics.
#[test]
fn training_is_deterministic() {
    let run = || {
        let data = tiny_data(Aspect::Aroma, 11);
        let cfg = small_cfg(0.16);
        let mut rng = dar::rng(12);
        let emb = SharedEmbedding::pretrained(&data, cfg.emb_dim, &mut rng);
        let ml = pretrain::max_len(&data);
        let mut model = Rnp::new(&cfg, &emb, ml, &mut rng);
        let tcfg = TrainConfig {
            epochs: 2,
            batch_size: 32,
            patience: None,
            ..Default::default()
        };
        Trainer::new(tcfg).fit(&mut model, &data, &mut rng).test
    };
    let a = run();
    let b = run();
    assert_eq!(a.f1, b.f1);
    assert_eq!(a.sparsity, b.sparsity);
    assert_eq!(a.acc, b.acc);
}
