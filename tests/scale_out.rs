//! Chaos + saturation suite for horizontal serving scale-out
//! (DESIGN.md §14): replica pools with sharded tenant routing,
//! work-stealing micro-batchers, fair-share admission, and one shared
//! read-only weight publication.
//!
//! The invariants under test:
//!
//! * **Saturation scales sanely** — sweeping 1/2/4/8 replicas over the
//!   same multi-tenant trace serves everything, and throughput never
//!   collapses from scale-out overhead (this box may have a single core,
//!   so the assertion is no-collapse, not linear speedup).
//! * **Exactly one outcome survives stealing** — the chaos mix from the
//!   single-replica harness holds at every replica count, with batches
//!   provably flowing through the steal path.
//! * **Weight publication is atomic across replicas** — a hot swap and a
//!   canary promotion each flip every replica between batches with zero
//!   blips: no request ever observes a version outside the two live
//!   generations, and post-quiesce traffic is uniformly on the new one.
//! * **One hot tenant cannot starve its shard-mates** — fair-share
//!   admission throttles the flood with typed errors while a cold tenant
//!   on the same shard sails through.
//! * **The deterministic obs section is replica-count-invariant** — a
//!   clean sequential run at 4 replicas produces the same golden bytes
//!   as 1 replica under any `DAR_THREADS` (CI runs this binary under
//!   `=1` and `=4`).
//!
//! Every test takes one global lock: the obs registry is process-global,
//! and serializing the suites keeps saturation timings honest.

mod common;

use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use common::ServeFixture;
use dar::core::guard::GuardPolicy;
use dar::prelude::*;
use dar::serve::{
    route_tenant, BreakerPolicy, CanaryPolicy, PromotionPhase, ServeConfig, ServeError, Server,
    StealPolicy,
};
use dar::tensor::serial::{self, Checkpoint};

static SUITE_LOCK: Mutex<()> = Mutex::new(());

fn suite_lock() -> MutexGuard<'static, ()> {
    SUITE_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// Guards wide open so clean traffic never degrades.
fn open_policy() -> GuardPolicy {
    GuardPolicy {
        spike_sigmas: f32::INFINITY,
        collapse_low: -1.0,
        collapse_high: 2.0,
        ..GuardPolicy::default()
    }
}

/// Saturation sweep: the same 16-tenant, submit-everything-up-front
/// trace at 1, 2, 4, and 8 replicas. Every width serves every request,
/// and no width loses more than ~2/3 of single-replica throughput to
/// scale-out overhead — the floor is deliberately loose because this
/// suite runs on anything from 1 core up, under any `DAR_THREADS`.
#[test]
fn saturation_sweep_serves_everything_at_every_width() {
    let _g = suite_lock();
    const N: usize = 512;
    const TENANTS: u64 = 16;
    let fx = ServeFixture::light(700);
    let mut rps = Vec::new();
    for width in [1usize, 2, 4, 8] {
        let server = Server::start(
            ServeConfig {
                max_batch: 128,
                queue_cap: N + 16,
                ..fx.serve_cfg(width)
            },
            fx.factory(ChaosPlan::default()),
        );
        let started = Instant::now();
        let tickets: Vec<_> = (0..N)
            .map(|i| {
                server.submit_for_tenant(fx.clean(i), i as u64 % TENANTS, Duration::from_secs(60))
            })
            .collect();
        let ok = tickets
            .into_iter()
            .map(|t| t.wait())
            .filter(|r| r.is_ok())
            .count();
        let elapsed = started.elapsed();
        let stats = server.shutdown();
        assert_eq!(ok, N, "width {width}: every request must serve");
        assert_eq!(stats.panics, 0, "width {width}: clean trace");
        assert_eq!(
            stats.replicas.len(),
            width,
            "snapshot reports one entry per replica"
        );
        let served: u64 = stats.replicas.iter().map(|r| r.served).sum();
        assert_eq!(served, N as u64, "per-replica served sums to the trace");
        rps.push(ok as f64 / elapsed.as_secs_f64());
    }
    for (i, width) in [1usize, 2, 4, 8].iter().enumerate() {
        assert!(
            rps[i] >= rps[0] * 0.35,
            "width {width} collapsed: {:.1} rps vs {:.1} at 1 replica ({rps:?})",
            rps[i],
            rps[0]
        );
    }
}

/// The single-replica chaos mix — panics, malformed, empty, over-length,
/// clean — holds at every replica count, with the whole burst aimed at
/// one tenant so idle siblings must steal it down. `Lost` is never
/// observed, and at 2+ replicas the steal path provably carried batches.
#[test]
fn exactly_one_outcome_under_chaos_at_every_width() {
    let _g = suite_lock();
    let fx = ServeFixture::new(710);
    let panic_tok = fx.trigger(0);
    for width in [1usize, 2, 4, 8] {
        let server = Server::start(
            ServeConfig {
                max_batch: 8,
                linger: Duration::from_millis(1),
                ..fx.serve_cfg(width)
            },
            fx.factory(ChaosPlan {
                panic_token: Some(panic_tok),
                ..Default::default()
            }),
        );
        let tickets: Vec<_> = (0..96)
            .map(|i| {
                let review = match i % 12 {
                    11 => fx.triggered(i, panic_tok),
                    10 => dar::core::fault::malformed_review(fx.vocab_rows, 710 + i as u64),
                    _ => fx.clean(i),
                };
                server.submit(review)
            })
            .collect();
        let (mut ok, mut rejected, mut panicked) = (0, 0, 0);
        for t in tickets {
            match t.wait() {
                Ok(out) => {
                    assert!(out.label < 2);
                    ok += 1;
                }
                Err(ServeError::Lost) => panic!("width {width}: a response was lost"),
                Err(ServeError::Rejected(_)) => rejected += 1,
                Err(ServeError::WorkerPanicked) => panicked += 1,
                Err(e) => panic!("width {width}: unexpected verdict {e}"),
            }
        }
        assert_eq!(rejected, 8, "width {width}: the malformed eighth bounces");
        assert_eq!(
            ok + panicked,
            88,
            "width {width}: the rest serve or fail typed"
        );
        assert!(
            panicked >= 1,
            "width {width}: first panic batch fails typed"
        );
        let stats = server.shutdown();
        if width >= 2 {
            assert!(
                stats.steals >= 1,
                "width {width}: a 96-deep hot shard with idle siblings must steal \
                 (stats: {} steals, {} stolen requests)",
                stats.steals,
                stats.stolen_requests
            );
            let thief_steals: u64 = stats.replicas.iter().map(|r| r.steals).sum();
            assert_eq!(thief_steals, stats.steals, "per-replica steals sum up");
        } else {
            assert_eq!(stats.steals, 0, "one replica has nobody to steal from");
        }
    }
}

/// Quarantine racing the steal path: the home replica wedges on a
/// sticky livelock while thieves are actively stealing its backlog down,
/// with panic chaos mixed in so thieves die and respawn mid-storm. When
/// the watchdog condemns the victim and force-drains what's left, no
/// request may be double-dispatched: every ticket resolves exactly once,
/// never `Lost`, and the per-replica served counts sum to exactly the
/// `Ok` outcomes — a request served twice would break that ledger.
#[test]
fn mid_steal_quarantine_never_double_dispatches() {
    let _g = suite_lock();
    let fx = ServeFixture::new(750);
    let spin_tok = fx.trigger(1);
    let panic_tok = fx.trigger(0);
    let server = Server::start(
        ServeConfig {
            max_batch: 8,
            linger: Duration::from_millis(1),
            queue_cap: 128,
            health: dar::serve::HealthPolicy {
                enabled: true,
                stall_budget: Duration::from_millis(120),
                deadline_grace: Duration::from_millis(80),
                probation_probes: 1,
                hedge_min_budget: Duration::from_millis(1),
            },
            ..fx.serve_cfg(4)
        },
        fx.factory(ChaosPlan {
            panic_token: Some(panic_tok),
            stall: dar::core::fault::StallPlan {
                spin_token: Some((spin_tok, 1500)),
                sticky: true,
                ..Default::default()
            },
            ..Default::default()
        }),
    );
    let tenant = 1u64;
    // Wedge the home replica first so the flood piles up behind it.
    let wedge = server.submit_for_tenant(
        fx.triggered(0, spin_tok),
        tenant,
        Duration::from_millis(300),
    );
    std::thread::sleep(Duration::from_millis(50)); // let the stall batch get claimed
    let tickets: Vec<_> = (0..95)
        .map(|i| {
            let review = if i % 12 == 11 {
                fx.triggered(i, panic_tok)
            } else {
                fx.clean(i)
            };
            server.submit_for_tenant(review, tenant, Duration::from_secs(30))
        })
        .collect();

    assert!(
        matches!(wedge.wait(), Err(ServeError::DeadlineExceeded)),
        "the wedged request resolves to its deadline"
    );
    let (mut ok, mut panicked, mut other_typed) = (0usize, 0usize, 0usize);
    for (i, t) in tickets.into_iter().enumerate() {
        match t.wait() {
            Ok(out) => {
                assert!(out.label < 2);
                ok += 1;
            }
            Err(ServeError::Lost) => panic!("request {i}: a response was lost"),
            Err(ServeError::WorkerPanicked) => panicked += 1,
            Err(ServeError::DeadlineExceeded) | Err(ServeError::Abandoned) => other_typed += 1,
            Err(e) => panic!("request {i}: unexpected verdict {e}"),
        }
    }
    assert_eq!(
        ok + panicked + other_typed,
        95,
        "every ticket resolves once"
    );
    assert!(panicked >= 1, "panic chaos fired typed");

    let stats = server.shutdown();
    assert_eq!(stats.quarantines, 1, "the wedged home was condemned");
    assert!(
        stats.steals >= 1,
        "a 95-deep hot shard with idle siblings must steal"
    );
    let served: u64 = stats.replicas.iter().map(|r| r.served).sum();
    assert_eq!(
        served, ok as u64,
        "served ledger must equal Ok outcomes — a double dispatch would \
         serve one request on two replicas"
    );
}

/// Weight publication is atomic across 4 replicas, twice over: a hot
/// swap mid-burst (no request sees anything but {old, new}; post-quiesce
/// traffic is uniformly new) and then a canary promotion of an
/// identical-weights candidate (same two-generation invariant during the
/// evaluation, uniform cut-over after the verdict, zero blips
/// throughout).
#[test]
fn hot_swap_and_canary_promotion_are_atomic_across_replicas() {
    let _g = suite_lock();
    let fx = ServeFixture::new(720);
    let cfg = ServeConfig {
        max_batch: 4,
        linger: Duration::from_millis(1),
        breaker: BreakerPolicy {
            collapse: open_policy(),
            ..BreakerPolicy::default()
        },
        ..fx.serve_cfg(4)
    };
    let factory = fx.factory(ChaosPlan::default());
    let server = Server::start(cfg, factory.clone());

    // A same-shaped checkpoint with visibly different weights (v2).
    let tmp = std::env::temp_dir().join(format!("dar_scale_swap_{}", std::process::id()));
    {
        let model = factory();
        for p in model.params() {
            let n = p.len();
            p.set_values(vec![0.05; n]);
        }
        serial::save_checkpoint_path(&tmp, &Checkpoint::new(model.params(), Vec::new())).unwrap();
    }

    // Burst across all shards, swap mid-flight.
    let tickets: Vec<_> = (0..48)
        .map(|i| server.submit_for_tenant(fx.clean(i), i as u64 % 8, Duration::from_secs(30)))
        .collect();
    assert_eq!(server.offer_checkpoint(&tmp).unwrap(), 2);
    for t in tickets {
        let out = t.wait().expect("burst serves across the swap");
        assert!(
            out.weights_version == 1 || out.weights_version == 2,
            "a request observed a torn generation: v{}",
            out.weights_version
        );
    }
    // Post-quiesce: every replica (tenants cover all shards) is on v2.
    for i in 0..8 {
        let out = server
            .submit_for_tenant(fx.clean(i), i as u64, Duration::from_secs(30))
            .wait()
            .expect("post-swap serves");
        assert_eq!(out.weights_version, 2, "replica lagged after the swap");
    }

    // Canary the *same* weights as v3: identical behavior, so the verdict
    // is a pure promote, and the only observable change is the version.
    let policy = CanaryPolicy {
        window: 8,
        slice_modulus: 2,
        max_acc_drop: 1.0,
        max_f1_drop: 1.0,
        ..CanaryPolicy::default()
    };
    assert_eq!(server.begin_canary(&tmp, policy).expect("canary begins"), 3);
    let mut outcome = None;
    for i in 0..4000 {
        let out = server
            .submit_for_tenant(fx.clean(i), i as u64 % 8, Duration::from_secs(30))
            .wait()
            .expect("canary-era traffic serves");
        assert!(
            out.weights_version == 2 || out.weights_version == 3,
            "canary-era request on a torn generation: v{}",
            out.weights_version
        );
        if let Some(o) = server.try_conclude_canary() {
            outcome = Some(o);
            break;
        }
    }
    let outcome = outcome.expect("canary reached a verdict");
    assert_eq!(outcome.phase, PromotionPhase::Promoted);
    assert_eq!(outcome.version, 3);
    for i in 0..8 {
        let out = server
            .submit_for_tenant(fx.clean(i), i as u64, Duration::from_secs(30))
            .wait()
            .expect("post-promotion serves");
        assert_eq!(out.weights_version, 3, "replica lagged after promotion");
    }
    let stats = server.shutdown();
    assert_eq!(stats.panics, 0, "zero blips across both swaps");
    assert_eq!(stats.rejected + stats.shed + stats.deadline_exceeded, 0);
    std::fs::remove_file(&tmp).ok();
}

/// Fair-share admission: with stealing pinned off and the home replica
/// occupied by a slow request, a hot tenant flooding its shard is
/// throttled at its fair share with typed errors, while a cold tenant
/// hashed to the *same* shard submits unimpeded — and everything
/// admitted still serves.
#[test]
fn one_hot_tenant_cannot_starve_its_shard_mates() {
    let _g = suite_lock();
    let fx = ServeFixture::new(730);
    let slow_tok = fx.trigger(4);
    let hot: u64 = 1;
    // A different tenant that hashes onto the hot tenant's home shard.
    let cold: u64 = (2..64)
        .find(|&t| route_tenant(t, 2) == route_tenant(hot, 2))
        .expect("64 tenants cover 2 shards");
    let cfg = ServeConfig {
        max_batch: 4,
        linger: Duration::from_millis(1),
        queue_cap: 16,
        tenant_fair_share: Some(0.25), // 4 of 16 slots
        steal: StealPolicy {
            enabled: false,
            min_victim_backlog: None,
        },
        ..fx.serve_cfg(2)
    };
    let server = Server::start(
        cfg,
        fx.factory(ChaosPlan {
            slow_token: Some((slow_tok, 300)),
            ..Default::default()
        }),
    );

    // Occupy the home replica so the flood actually queues.
    let slow = server.submit_for_tenant(fx.triggered(0, slow_tok), hot, Duration::from_secs(10));
    std::thread::sleep(Duration::from_millis(100)); // let it get claimed

    // Flood: 12 hot submissions against a fair share of 4.
    let flood: Vec<_> = (0..12)
        .map(|i| server.submit_for_tenant(fx.clean(i), hot, Duration::from_secs(10)))
        .collect();
    // The cold shard-mate is untouched by the hot tenant's backlog.
    let cold_tickets: Vec<_> = (0..4)
        .map(|i| server.submit_for_tenant(fx.clean(i), cold, Duration::from_secs(10)))
        .collect();

    let (mut ok, mut throttled) = (0, 0);
    for t in flood {
        match t.wait() {
            Ok(_) => ok += 1,
            Err(ServeError::TenantThrottled) => throttled += 1,
            Err(e) => panic!("unexpected flood verdict: {e}"),
        }
    }
    assert_eq!(ok, 4, "exactly the fair share is admitted");
    assert_eq!(throttled, 8, "the rest is throttled, typed");
    for t in cold_tickets {
        t.wait().expect("the cold shard-mate is never throttled");
    }
    assert!(slow.wait().is_ok(), "slow but within deadline");

    let stats = server.shutdown();
    assert_eq!(stats.throttled, 8);
    assert_eq!(stats.queue_full, 0, "throttling fired before the queue cap");
    assert_eq!(stats.steals, 0, "stealing was pinned off");
}

/// A clean sequential 100-request run at 4 replicas produces the exact
/// golden deterministic obs section of the single-replica runtime: the
/// sequential trace never crosses the steal threshold, so no steal
/// counters or events exist, and per-replica spans stay in the timing
/// section. CI re-runs this binary under `DAR_THREADS=1` and `=4`
/// asserting the same bytes.
#[test]
fn clean_scaled_out_run_matches_single_replica_golden_obs() {
    let _g = suite_lock();
    dar::obs::reset();
    dar::obs::set_enabled(true);

    let fx = ServeFixture::new(740);
    let cfg = ServeConfig {
        breaker: BreakerPolicy {
            collapse: open_policy(),
            ..BreakerPolicy::default()
        },
        ..fx.serve_cfg(4)
    };
    let server = Server::start(cfg, fx.factory(ChaosPlan::default()));
    for i in 0..100 {
        let out = server.submit(fx.clean(i)).wait().expect("request failed");
        assert!(!out.degraded, "collapse band is open; no degraded answers");
    }
    let stats = server.shutdown();
    assert_eq!(stats.steals, 0, "sequential traffic must never steal");

    let det = dar::obs::snapshot("serve").deterministic_json();
    assert_eq!(
        det,
        "{\"counters\":{\"serve.served_full\":100,\"serve.submitted\":100},\
         \"gauges\":{},\"events\":[],\"events_dropped\":0}",
        "the scaled-out deterministic section must be the single-replica golden bytes"
    );
}
