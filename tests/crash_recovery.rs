//! Chaos harness for the crash-safe durability layer (DESIGN.md §15).
//!
//! Three escalating drills, all asserting the same contract:
//!
//! * **No promotion is lost** once its WAL record is durable.
//! * **No round is promoted twice** — every round reaches exactly one
//!   terminal verdict no matter where the process dies.
//! * **The feed cursor never replays a completed round.**
//!
//! The drills:
//!
//! 1. a byte-offset sweep — every truncation point and every single-bit
//!    flip of a real WAL must recover to a *prefix* of the committed
//!    record sequence, with generation and incumbent consistent with
//!    that prefix;
//! 2. an in-process abort sweep — the promotion script is run under
//!    [`FaultyStorage`] with the crash valve at every possible op index,
//!    then recovered on real storage and driven to completion; the final
//!    journal's terminal verdicts must equal the uninterrupted golden's;
//! 3. a real SIGKILL drill — the `dar-loop --drill` fixture is killed
//!    mid-run with the process-level hammer, recovered with `--recover`,
//!    and the recovered journal byte-compared against an uninterrupted
//!    golden run.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dar::store::{
    DurableState, FaultyStorage, RealStorage, StateRecord, Storage, StorageFaultPlan, Wal,
    MANIFEST_FILE, WAL_FILE,
};
use dar::tensor::DarResult;

fn tmpdir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("dar_crash_{name}_{}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn real() -> Arc<dyn Storage> {
    Arc::new(RealStorage)
}

/// Decode every committed record of a WAL file *without* disturbing the
/// original: the bytes are copied into a scratch dir first, because
/// `Wal::open` truncates torn tails in place.
fn read_journal(wal_path: &Path, scratch: &str) -> Vec<StateRecord> {
    let d = tmpdir(scratch);
    let copy = d.join(WAL_FILE);
    std::fs::copy(wal_path, &copy).expect("copying WAL for inspection");
    let (_, replay) = Wal::open(real(), &copy).expect("replaying WAL copy");
    let records = replay
        .records
        .iter()
        .map(|p| StateRecord::decode(p).expect("committed frame decodes"))
        .collect();
    std::fs::remove_dir_all(&d).ok();
    records
}

fn terminal_of(records: &[StateRecord]) -> Vec<StateRecord> {
    records
        .iter()
        .filter(|r| r.is_terminal())
        .cloned()
        .collect()
}

/// The invariants every recovered journal must satisfy, in one place:
/// each round has at most one terminal verdict, terminal rounds appear
/// in increasing order, promoted generations are strictly monotonic,
/// and no canary starts for a round at or below an already-logged feed
/// cursor (the cursor never replays a completed round).
fn assert_journal_invariants(records: &[StateRecord]) {
    let mut terminal_rounds: Vec<usize> = Vec::new();
    let mut last_gen = 0u64;
    let mut cursor = 0usize;
    for rec in records {
        match rec {
            StateRecord::Promoted {
                round, generation, ..
            } => {
                assert!(
                    !terminal_rounds.contains(round),
                    "round {round} reached two terminal verdicts: {records:?}"
                );
                assert!(
                    *generation > last_gen,
                    "generation went backwards at {rec:?}"
                );
                last_gen = *generation;
                terminal_rounds.push(*round);
            }
            StateRecord::RolledBack { round, .. } | StateRecord::RoundSkipped { round, .. } => {
                assert!(
                    !terminal_rounds.contains(round),
                    "round {round} reached two terminal verdicts: {records:?}"
                );
                terminal_rounds.push(*round);
            }
            StateRecord::CanaryStarted { round } => {
                assert!(
                    *round >= cursor,
                    "round {round} re-canaried below cursor {cursor}: {records:?}"
                );
            }
            StateRecord::FeedCursor { next_round } => {
                cursor = cursor.max(*next_round);
            }
            StateRecord::TailTruncated { .. } => {}
        }
    }
    for w in terminal_rounds.windows(2) {
        assert!(
            w[0] < w[1],
            "terminal verdicts out of order: {terminal_rounds:?}"
        );
    }
}

/// The scripted controller the in-process drills share: canary every
/// unfinished round, promote the even ones, roll back the odd ones,
/// advance the cursor — the same decision shape `run_online_loop_durable`
/// journals, minus the serving stack.
fn drive_script(state: &mut DurableState, rounds: usize, cand: &Path) -> DarResult<()> {
    for r in state.resume_round()..rounds {
        if state.is_terminal(r) {
            continue;
        }
        state.log_canary_started(r)?;
        if r % 2 == 0 {
            state.log_promoted(r, cand)?;
        } else {
            state.log_rolled_back(r, "accuracy_regressed")?;
        }
        state.log_feed_cursor(r + 1)?;
    }
    Ok(())
}

const ROUNDS: usize = 4;

/// Build the uninterrupted golden journal and return
/// `(dir, wal_bytes, records)`. The candidate file is tiny but real —
/// `DurableState` copies its bytes into the incumbent generation.
fn golden_run(name: &str) -> (PathBuf, Vec<u8>, Vec<StateRecord>) {
    let d = tmpdir(name);
    let cand = d.join("cand.ckpt");
    std::fs::write(&cand, b"candidate-weights").unwrap();
    let (mut st, _) = DurableState::open(real(), &d).unwrap();
    drive_script(&mut st, ROUNDS, &cand).unwrap();
    let wal = std::fs::read(d.join(WAL_FILE)).unwrap();
    let records = read_journal(&d.join(WAL_FILE), &format!("{name}_read"));
    (d, wal, records)
}

/// Rebuild a state dir holding `wal_bytes` as the journal plus every
/// non-WAL, non-manifest file from `src` (checkpoints the prefix may
/// roll forward to). The manifest is dropped — the sweep simulates a
/// crash before the swap, the case recovery must repair.
fn stage_dir(dst: &Path, src: &Path, wal_bytes: &[u8]) {
    std::fs::remove_dir_all(dst).ok();
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name().to_string_lossy().into_owned();
        if name == WAL_FILE || name == MANIFEST_FILE {
            continue;
        }
        std::fs::copy(entry.path(), dst.join(&name)).unwrap();
    }
    std::fs::write(dst.join(WAL_FILE), wal_bytes).unwrap();
}

/// After recovering a damaged journal, the surviving records must be a
/// prefix of the golden sequence and the manifest state must match that
/// prefix exactly.
fn assert_prefix_recovery(dir: &Path, golden: &[StateRecord], what: &str) {
    let (st, rec) =
        DurableState::open(real(), dir).unwrap_or_else(|e| panic!("{what}: recovery failed: {e}"));
    let committed: Vec<StateRecord> = rec
        .records
        .iter()
        .filter(|r| !matches!(r, StateRecord::TailTruncated { .. }))
        .cloned()
        .collect();
    assert!(
        golden.starts_with(&committed),
        "{what}: recovered records are not a golden prefix:\n  got {committed:?}"
    );
    let promotes: Vec<&StateRecord> = committed
        .iter()
        .filter(|r| matches!(r, StateRecord::Promoted { .. }))
        .collect();
    assert_eq!(
        st.generation(),
        promotes.len() as u64,
        "{what}: generation disagrees with surviving promotions"
    );
    match promotes.last() {
        Some(StateRecord::Promoted { ckpt, .. }) => {
            assert_eq!(
                st.incumbent(),
                Some(ckpt.as_str()),
                "{what}: wrong incumbent"
            );
            assert_eq!(
                std::fs::read(st.incumbent_path().unwrap()).unwrap(),
                b"candidate-weights",
                "{what}: incumbent bytes damaged"
            );
        }
        _ => assert_eq!(st.incumbent(), None, "{what}: phantom incumbent"),
    }
    assert_journal_invariants(&committed);
}

/// Drill 1a: cut the WAL at *every* byte offset. Whatever survives must
/// be a committed prefix — never a reordered, duplicated, or phantom
/// record — and the manifest must be rolled forward to agree with it.
#[test]
fn every_wal_truncation_recovers_to_a_committed_prefix() {
    let (src, wal, golden) = golden_run("cut_src");
    let work = tmpdir("cut_work");
    for cut in 0..=wal.len() {
        stage_dir(&work, &src, &wal[..cut]);
        assert_prefix_recovery(&work, &golden, &format!("cut at {cut}"));
    }
    std::fs::remove_dir_all(&src).ok();
    std::fs::remove_dir_all(&work).ok();
}

/// Drill 1b: flip one seeded bit in every body byte of the WAL. CRC
/// framing must refuse the damaged frame and everything after it; the
/// prefix before the flip survives untouched.
#[test]
fn every_wal_bit_flip_recovers_to_a_committed_prefix() {
    let (src, wal, golden) = golden_run("flip_src");
    let work = tmpdir("flip_work");
    // Bytes 0..8 are the magic: damage there is a *hard* corrupt error
    // (covered by the wal unit tests), not a torn tail — sweep the body.
    for byte in 8..wal.len() {
        let mut damaged = wal.clone();
        damaged[byte] ^= 1 << (byte % 8);
        stage_dir(&work, &src, &damaged);
        assert_prefix_recovery(&work, &golden, &format!("bit flip at byte {byte}"));
    }
    std::fs::remove_dir_all(&src).ok();
    std::fs::remove_dir_all(&work).ok();
}

/// Drill 2: the abort-at-Nth-write sweep. Run the promotion script with
/// the crash valve at every op index; after each injected crash, recover
/// on real storage and drive the script to completion. The final
/// journal's terminal verdicts must equal the uninterrupted golden's —
/// exactly-once promotion, no lost verdicts, no duplicates.
#[test]
fn every_abort_point_recovers_to_the_golden_verdicts() {
    let (_g, _, golden) = golden_run("abort_golden");
    let golden_terminal = terminal_of(&golden);
    std::fs::remove_dir_all(&_g).ok();
    assert_eq!(golden_terminal.len(), ROUNDS);

    let mut completed_clean = false;
    for n in 0..200u64 {
        let d = tmpdir("abort_work");
        let cand = d.join("cand.ckpt");
        std::fs::write(&cand, b"candidate-weights").unwrap();

        let faulty = Arc::new(FaultyStorage::new(StorageFaultPlan::crash_after(
            n,
            0xC4A5 ^ n,
        )));
        let crashed = match DurableState::open(Arc::clone(&faulty) as Arc<dyn Storage>, &d) {
            Ok((mut st, _)) => drive_script(&mut st, ROUNDS, &cand).is_err(),
            Err(_) => true, // died opening the journal — also a valid crash point
        };

        // Recover on honest storage and finish the job.
        let (mut st, _) = DurableState::open(real(), &d)
            .unwrap_or_else(|e| panic!("crash_after({n}): recovery failed: {e}"));
        drive_script(&mut st, ROUNDS, &cand)
            .unwrap_or_else(|e| panic!("crash_after({n}): post-recovery script failed: {e}"));

        let records = read_journal(&d.join(WAL_FILE), "abort_read");
        assert_journal_invariants(&records);
        assert_eq!(
            terminal_of(&records),
            golden_terminal,
            "crash_after({n}): final verdicts diverge from golden"
        );
        assert_eq!(st.generation(), ROUNDS as u64 / 2);
        assert_eq!(
            std::fs::read(st.incumbent_path().unwrap()).unwrap(),
            b"candidate-weights"
        );
        std::fs::remove_dir_all(&d).ok();

        if !crashed {
            completed_clean = true;
            break; // the valve never fired: every later n is a no-op run
        }
    }
    assert!(
        completed_clean,
        "sweep never reached an uninterrupted run — script op count grew past the sweep bound"
    );
}

/// Drill 3: the real thing. Run `dar-loop --drill`, SIGKILL it after at
/// least one verdict is durable but before the run finishes, recover
/// with `--recover`, and byte-compare the recovered journal against an
/// uninterrupted golden run of the same fixture.
#[test]
fn sigkill_mid_drill_recovers_to_the_golden_journal() {
    let bin = env!("CARGO_BIN_EXE_dar-loop");

    // Golden: the same fixture, uninterrupted.
    let golden_dir = tmpdir("kill_golden");
    let status = Command::new(bin)
        .args(["--drill", "--rounds", "4", "--state-dir"])
        .arg(&golden_dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("running golden drill");
    assert!(status.success(), "golden drill run failed");
    let golden = read_journal(&golden_dir.join(WAL_FILE), "kill_golden_read");
    let golden_terminal = terminal_of(&golden);
    assert_eq!(
        golden_terminal.len(),
        4,
        "golden drill must settle 4 rounds"
    );

    // Victim: paced rounds so the kill lands mid-run.
    let kill_dir = tmpdir("kill_victim");
    let mut child = Command::new(bin)
        .args([
            "--drill",
            "--rounds",
            "4",
            "--round-delay-ms",
            "400",
            "--state-dir",
        ])
        .arg(&kill_dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawning victim drill");

    // Poll the journal until at least one verdict is durable, then kill
    // without ceremony (`Child::kill` is SIGKILL on unix).
    let wal_path = kill_dir.join(WAL_FILE);
    let deadline = Instant::now() + Duration::from_secs(120);
    let killed = loop {
        if Instant::now() > deadline {
            panic!("victim never journaled a verdict");
        }
        if let Some(status) = child.try_wait().expect("polling victim") {
            // Finished before we could kill it — the drill got faster
            // than the pacing; the run is then just the golden again.
            assert!(status.success());
            break false;
        }
        if wal_path.exists() && !terminal_of(&read_journal(&wal_path, "kill_poll")).is_empty() {
            child.kill().expect("SIGKILLing victim");
            child.wait().expect("reaping victim");
            break true;
        }
        std::thread::sleep(Duration::from_millis(15));
    };
    assert!(killed, "pacing failed: the victim finished before the kill");

    let pre_kill = read_journal(&wal_path, "kill_pre_read");
    assert!(!terminal_of(&pre_kill).is_empty());

    // Recover and finish.
    let status = Command::new(bin)
        .args(["--drill", "--rounds", "4", "--recover", "--state-dir"])
        .arg(&kill_dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("running recovery drill");
    assert!(status.success(), "recovery drill run failed");

    let final_records = read_journal(&wal_path, "kill_final_read");

    // Durability: everything committed before the kill is still there,
    // in order, as a prefix of the final journal.
    let committed_pre_kill: Vec<StateRecord> = pre_kill;
    assert!(
        final_records.len() >= committed_pre_kill.len()
            && final_records[..committed_pre_kill.len()] == committed_pre_kill[..],
        "pre-kill journal is not a prefix of the recovered journal\n  pre:   {committed_pre_kill:?}\n  final: {final_records:?}"
    );

    // Exactly-once: the recovered run's verdicts are byte-identical to
    // the uninterrupted golden's — same rounds, same order, same
    // generations, same checkpoint names, same causes.
    assert_eq!(
        terminal_of(&final_records),
        golden_terminal,
        "recovered verdicts diverge from the uninterrupted golden"
    );
    assert_journal_invariants(&final_records);

    std::fs::remove_dir_all(&golden_dir).ok();
    std::fs::remove_dir_all(&kill_dir).ok();
}
