//! Kernel-equivalence harness: `BlockedKernel` vs `ReferenceKernel`
//! (DESIGN.md §17).
//!
//! The blocked backend reorders float arithmetic (packed GEMM tiles, FMA,
//! polynomial `exp`), so it cannot promise bit-equality with the reference
//! graph — what it must promise is *numerical* equality under the same
//! abs-or-rel criterion the finite-difference gradient checker uses
//! (`rel = |a−b| / max(|a|, |b|, 1e-2)`), and *bit*-equality with itself
//! across thread budgets (DESIGN.md §9 holds per backend).
//!
//! Three layers of evidence, cheapest first:
//!  1. op-level sweeps (matmul/bmm/softmax/log_softmax/layer_norm/gru_seq)
//!     at odd, prime, and degenerate shapes chosen to straddle the block
//!     boundaries (MR=6, NR=16, KC=256, MC=72, NC=512) — outputs *and*
//!     input/weight gradients;
//!  2. every model of the paper: one seeded `train_step` per backend on
//!     the same batch, comparing loss and post-step parameter gradients;
//!  3. thread-budget bit-identity of the blocked backend itself.
//!
//! The CI lanes `kernel-equiv-t1` / `kernel-equiv-t4` run this whole file
//! under `DAR_THREADS=1` and `DAR_THREADS=4`, so every comparison here is
//! also exercised under both ambient pool budgets.

use dar::data::BatchIter;
use dar::nn::gru::set_composite_gru;
use dar::prelude::*;
use dar::tensor::ops::rnn::gru_seq;
use dar::tensor::{kernel_backend, with_kernel_backend, KernelBackend};
use dar::Tensor;
use std::sync::Mutex;

/// The GRU path switch is process-global; tests that flip it must not
/// overlap. Each test body holds this lock and restores the default
/// (composite) before releasing it.
static GRU_PATH: Mutex<()> = Mutex::new(());

fn lock_gru_path() -> std::sync::MutexGuard<'static, ()> {
    GRU_PATH.lock().unwrap_or_else(|e| e.into_inner())
}

/// Same abs-or-rel criterion as `GradCheckReport`: a pair passes if the
/// absolute error is below `tol` or the relative error (floored at 1e-2
/// denominator) is.
const REL_FLOOR: f32 = 1e-2;

fn worst_err(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let mut worst = 0.0f32;
    for (&x, &y) in a.iter().zip(b) {
        assert!(
            x.is_finite() && y.is_finite(),
            "non-finite in comparison: {x} vs {y}"
        );
        let abs = (x - y).abs();
        let rel = abs / x.abs().max(y.abs()).max(REL_FLOOR);
        worst = worst.max(abs.min(rel));
    }
    worst
}

fn assert_close(a: &[f32], b: &[f32], tol: f32, ctx: &str) {
    let w = worst_err(a, b);
    assert!(
        w <= tol,
        "{ctx}: worst abs-or-rel err {w:.3e} > tol {tol:.3e}"
    );
}

/// Deterministic pseudo-random fill (no RNG dependency, stable forever).
fn fill(n: usize, salt: usize) -> Vec<f32> {
    (0..n)
        .map(|i| (((i * 2654435761 + salt * 97_003) % 2048) as f32) / 1024.0 - 1.0)
        .collect()
}

/// Run `f` under one backend, returning outputs and gradients.
fn under(
    backend: KernelBackend,
    f: impl FnOnce() -> (Vec<f32>, Vec<Vec<f32>>),
) -> (Vec<f32>, Vec<Vec<f32>>) {
    with_kernel_backend(backend, f)
}

/// Forward + backward of `y = op(params...)`, reduced by a fixed weight
/// tensor so gradients are non-trivial.
fn run_case(build: impl Fn() -> (Tensor, Vec<Tensor>)) -> (Vec<f32>, Vec<Vec<f32>>) {
    let (y, params) = build();
    let w = Tensor::new(fill(y.len(), 7), y.shape());
    y.mul(&w).sum().backward();
    let grads = params
        .iter()
        .map(|p| p.grad_vec().unwrap_or_default())
        .collect();
    (y.to_vec(), grads)
}

fn compare_case(tol: f32, ctx: &str, build: impl Fn() -> (Tensor, Vec<Tensor>)) {
    let (y_ref, g_ref) = under(KernelBackend::Reference, || run_case(&build));
    let (y_blk, g_blk) = under(KernelBackend::Blocked, || run_case(&build));
    assert_close(&y_ref, &y_blk, tol, &format!("{ctx}: output"));
    assert_eq!(g_ref.len(), g_blk.len());
    for (i, (gr, gb)) in g_ref.iter().zip(&g_blk).enumerate() {
        assert_close(gr, gb, tol, &format!("{ctx}: grad[{i}]"));
    }
}

/// Shapes straddling the blocked-GEMM boundaries: MR=6 rows, NR=16 cols,
/// KC=256 depth, MC=72 row blocks, NC=512 col blocks — each axis one
/// below / at / one above, plus primes and degenerate 1s.
#[test]
fn matmul_matches_reference_across_block_boundaries() {
    for &(m, k, n) in &[
        (1usize, 1usize, 1usize),
        (1, 7, 17),
        (5, 3, 16),
        (6, 16, 16),
        (7, 13, 15),
        (13, 257, 17),
        (31, 97, 33),
        (66, 255, 16),
        (72, 256, 512),
        (73, 257, 513),
        (97, 300, 130),
    ] {
        compare_case(2e-3, &format!("matmul {m}x{k}x{n}"), || {
            let a = Tensor::param(fill(m * k, 1), &[m, k]);
            let b = Tensor::param(fill(k * n, 2), &[k, n]);
            (a.matmul(&b), vec![a.clone(), b.clone()])
        });
    }
}

#[test]
fn bmm_matches_reference_at_odd_shapes() {
    for &(bb, m, k, n) in &[
        (1usize, 1usize, 2usize, 3usize),
        (3, 5, 7, 11),
        (4, 13, 17, 6),
        (2, 31, 64, 33),
    ] {
        compare_case(2e-3, &format!("bmm {bb}x{m}x{k}x{n}"), || {
            let a = Tensor::param(fill(bb * m * k, 3), &[bb, m, k]);
            let b = Tensor::param(fill(bb * k * n, 4), &[bb, k, n]);
            (a.bmm(&b), vec![a.clone(), b.clone()])
        });
    }
}

#[test]
fn softmax_family_matches_reference_at_odd_widths() {
    for &c in &[1usize, 2, 3, 7, 8, 13, 16, 17, 31, 33, 64, 65, 97] {
        let rows = 5;
        compare_case(1e-4, &format!("softmax c={c}"), || {
            let x = Tensor::param(fill(rows * c, 5), &[rows, c]);
            (x.softmax(), vec![x.clone()])
        });
        compare_case(1e-4, &format!("log_softmax c={c}"), || {
            let x = Tensor::param(fill(rows * c, 6), &[rows, c]);
            (x.log_softmax(), vec![x.clone()])
        });
        compare_case(1e-4, &format!("layer_norm c={c}"), || {
            let x = Tensor::param(fill(rows * c, 8), &[rows, c]);
            let gamma = Tensor::param(fill(c, 9), &[c]);
            let beta = Tensor::param(fill(c, 10), &[c]);
            (
                x.layer_norm(&gamma, &beta, 1e-5),
                vec![x.clone(), gamma.clone(), beta.clone()],
            )
        });
    }
}

/// GRU BPTT: odd batch/length/width combos so per-shard row counts fall
/// below MR and the axpy fallback, the packed path, and the scalar tails
/// all get hit. BPTT over `l` steps compounds drift, hence the wider tol.
#[test]
fn gru_seq_matches_reference_at_odd_shapes() {
    for &(b, l, e, h) in &[
        (1usize, 1usize, 1usize, 1usize),
        (2, 3, 5, 7),
        (5, 7, 3, 5),
        (13, 11, 17, 19),
    ] {
        for reverse in [false, true] {
            compare_case(
                5e-3,
                &format!("gru_seq b={b} l={l} e={e} h={h} rev={reverse}"),
                || {
                    let x = Tensor::param(fill(b * l * e, 11), &[b, l, e]);
                    let w_zr = Tensor::param(fill((e + h) * 2 * h, 12), &[e + h, 2 * h]);
                    let b_zr = Tensor::param(fill(2 * h, 13), &[2 * h]);
                    let w_h = Tensor::param(fill((e + h) * h, 14), &[e + h, h]);
                    let b_h = Tensor::param(fill(h, 15), &[h]);
                    // Mask the tail of each row to exercise the carry-through.
                    let mask = Tensor::new(
                        (0..b * l)
                            .map(|i| if i % l < l.max(1) - l / 4 { 1.0 } else { 0.0 })
                            .collect(),
                        &[b, l],
                    );
                    let y = gru_seq(&x, Some(&mask), &w_zr, &b_zr, &w_h, &b_h, reverse);
                    (
                        y,
                        vec![
                            x.clone(),
                            w_zr.clone(),
                            b_zr.clone(),
                            w_h.clone(),
                            b_h.clone(),
                        ],
                    )
                },
            );
        }
    }
}

/// Each backend must still be bit-identical to *itself* across thread
/// budgets: the backend changes the arithmetic, never the §9 determinism
/// contract.
#[test]
fn each_backend_is_bit_identical_across_thread_budgets() {
    for backend in [KernelBackend::Reference, KernelBackend::Blocked] {
        let run = |threads: usize| {
            dar_par::with_threads(threads, || {
                with_kernel_backend(backend, || {
                    // Big enough to cross every parallel-dispatch threshold.
                    let a = Tensor::param(fill(64 * 200, 21), &[64, 200]);
                    let b = Tensor::param(fill(200 * 170, 22), &[200, 170]);
                    let y = a.matmul(&b).softmax();
                    y.sum().backward();
                    let sm = Tensor::param(fill(4096 * 8, 23), &[4096, 8]);
                    let s = sm.log_softmax();
                    s.sum().backward();
                    (
                        y.to_vec(),
                        a.grad_vec().unwrap(),
                        b.grad_vec().unwrap(),
                        s.to_vec(),
                        sm.grad_vec().unwrap(),
                    )
                })
            })
        };
        let (y1, ga1, gb1, s1, gs1) = run(1);
        let (y4, ga4, gb4, s4, gs4) = run(4);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&y1), bits(&y4), "{backend:?}: matmul+softmax fwd");
        assert_eq!(bits(&ga1), bits(&ga4), "{backend:?}: dA");
        assert_eq!(bits(&gb1), bits(&gb4), "{backend:?}: dB");
        assert_eq!(bits(&s1), bits(&s4), "{backend:?}: log_softmax fwd");
        assert_eq!(bits(&gs1), bits(&gs4), "{backend:?}: log_softmax grad");
    }
}

/// Taint provenance survives the blocked backend: a NaN flowing through a
/// blocked matmul still latches a taint record naming "matmul", and the
/// derived error is `NonFinite` with that op.
#[test]
fn blocked_backend_preserves_nonfinite_provenance() {
    use dar::tensor::taint::{clear_taint, first_taint, non_finite_error, set_taint_mode};
    with_kernel_backend(KernelBackend::Blocked, || {
        set_taint_mode(true);
        clear_taint();
        // Finite leaves whose product overflows: the first non-finite
        // value in the graph is *produced by* the blocked matmul, so the
        // first-wins latch must attribute it there, not to a leaf.
        let a = Tensor::new(vec![1.0e20; 7 * 18], &[7, 18]);
        let b = Tensor::new(vec![1.0e20; 18 * 17], &[18, 17]);
        let _y = a.matmul(&b);
        let rec = first_taint().expect("blocked matmul must latch the taint");
        set_taint_mode(false);
        assert_eq!(rec.op, "matmul", "provenance names the op");
        match non_finite_error("fallback") {
            dar::tensor::DarError::NonFinite { op, .. } => {
                assert_eq!(op, "matmul", "derived error keeps the origin")
            }
            other => panic!("expected NonFinite, got {other:?}"),
        }
        clear_taint();
    });
}

// ---------------------------------------------------------------------------
// Model-level sweep: one seeded train_step per backend, all nine models.
// ---------------------------------------------------------------------------

fn tiny_data(seed: u64) -> AspectDataset {
    let cfg = SynthConfig {
        n_train: 96,
        n_dev: 32,
        n_test: 32,
        ..SynthConfig::beer(Aspect::Aroma)
    };
    SynBeer::generate(&cfg, &mut dar::rng(seed))
}

fn small_cfg() -> RationaleConfig {
    RationaleConfig {
        emb_dim: 16,
        hidden: 24,
        sparsity: 0.16,
        ..Default::default()
    }
}

fn build(name: &str, cfg: &RationaleConfig, data: &AspectDataset) -> Box<dyn RationaleModel> {
    let mut rng = dar::rng(41);
    let emb = SharedEmbedding::random(data.vocab.len(), cfg.emb_dim, &mut rng);
    let ml = pretrain::max_len(data);
    match name {
        "RNP" => Box::new(Rnp::new(cfg, &emb, ml, &mut rng)),
        "DAR" => {
            let disc = pretrain::full_text_predictor(cfg, &emb, data, 2, &mut rng);
            Box::new(Dar::new(cfg, &emb, disc, ml, &mut rng))
        }
        "A2R" => Box::new(A2r::new(cfg, &emb, ml, &mut rng)),
        "DMR" => Box::new(Dmr::new(cfg, &emb, ml, &mut rng)),
        "Inter_RAT" => Box::new(InterRat::new(cfg, &emb, ml, &mut rng)),
        "CAR" => Box::new(Car::new(cfg, &emb, ml, &mut rng)),
        "3PLAYER" => Box::new(ThreePlayer::new(cfg, &emb, ml, &mut rng)),
        "VIB" => Box::new(Vib::new(cfg, &emb, ml, &mut rng)),
        "SentenceRNP" => {
            let splitter = SentenceSplitter::from_vocab(&data.vocab);
            Box::new(SentenceRnp::new(cfg, &emb, splitter, ml, &mut rng))
        }
        other => panic!("unknown model '{other}'"),
    }
}

/// Loss and post-step parameter gradients (grads stay attached to the
/// params after `train_step`: the step order is zero → backward → clip →
/// apply, so what is left is the clipped gradient of this step).
fn step_under(backend: KernelBackend, name: &str, data: &AspectDataset) -> (f32, Vec<Vec<f32>>) {
    with_kernel_backend(backend, || {
        let cfg = small_cfg();
        let mut model = build(name, &cfg, data);
        let mut it = BatchIter::sequential(&data.train, 32);
        let batch = it.next().expect("non-empty train split");
        let mut rng = dar::rng(42);
        let loss = model.train_step(&batch, &mut rng);
        let grads = model
            .params()
            .iter()
            .map(|p| p.grad_vec().unwrap_or_default())
            .collect();
        (loss, grads)
    })
}

/// The model-level claim: for every model of the paper, a full seeded
/// training step (forward, backward, clip) on the blocked backend agrees
/// with the reference backend to gradient-checker tolerance — loss and
/// every parameter gradient. Construction happens under the backend too:
/// DAR's predictor pretraining must also agree.
#[test]
fn all_models_step_equivalently_on_both_backends() {
    let _g = lock_gru_path();
    set_composite_gru(false); // fused GRU: the kernel-heavy path
    let data = tiny_data(40);
    for name in [
        "RNP",
        "DAR",
        "A2R",
        "DMR",
        "Inter_RAT",
        "CAR",
        "3PLAYER",
        "VIB",
        "SentenceRNP",
    ] {
        let (loss_ref, grads_ref) = step_under(KernelBackend::Reference, name, &data);
        let (loss_blk, grads_blk) = step_under(KernelBackend::Blocked, name, &data);
        assert_close(&[loss_ref], &[loss_blk], 2e-2, &format!("{name}: loss"));
        assert_eq!(grads_ref.len(), grads_blk.len(), "{name}: param count");
        assert!(!grads_ref.is_empty(), "{name}: no params");
        assert!(
            grads_ref.iter().any(|g| !g.is_empty()),
            "{name}: no gradients recorded"
        );
        for (i, (gr, gb)) in grads_ref.iter().zip(&grads_blk).enumerate() {
            assert_eq!(gr.len(), gb.len(), "{name}: grad[{i}] length");
            assert_close(gr, gb, 2e-2, &format!("{name}: grad[{i}]"));
        }
    }
    set_composite_gru(true);
}

/// The blocked backend keeps the §9 promise end-to-end: the same seeded
/// train step is bit-identical under 1-thread and 4-thread budgets.
#[test]
fn blocked_model_step_is_bit_identical_across_thread_budgets() {
    let _g = lock_gru_path();
    set_composite_gru(false);
    let data = tiny_data(40);
    let run = |threads: usize| {
        dar_par::with_threads(threads, || {
            let (loss, grads) = step_under(KernelBackend::Blocked, "RNP", &data);
            (
                loss.to_bits(),
                grads
                    .iter()
                    .map(|g| g.iter().map(|v| v.to_bits()).collect::<Vec<_>>())
                    .collect::<Vec<_>>(),
            )
        })
    };
    let serial = run(1);
    let parallel = run(4);
    set_composite_gru(true);
    assert_eq!(serial, parallel, "blocked RNP step diverged across budgets");
}

/// `DAR_KERNEL` opt-in is honored and default stays Reference (the byte-
/// pinned goldens depend on it). This does not mutate the environment —
/// it only checks the ambient default is one of the two known backends
/// and that the thread-local override wins.
#[test]
fn backend_selection_is_thread_local_and_restores() {
    let ambient = kernel_backend();
    let inner = with_kernel_backend(KernelBackend::Blocked, kernel_backend);
    assert_eq!(inner, KernelBackend::Blocked);
    assert_eq!(kernel_backend(), ambient, "override must restore");
}
