//! Masked pooling over the time axis of `[b, l, h]` encodings.

use dar_tensor::Tensor;

/// Max over time, with padded positions (`mask` 0) pushed to -1e9 so they
/// never win. `mask: [b, l]`.
pub fn masked_max_pool(x: &Tensor, mask: &Tensor) -> Tensor {
    let s = x.shape();
    assert_eq!(s.len(), 3, "masked_max_pool expects [b, l, h], got {s:?}");
    let (b, l) = (s[0], s[1]);
    assert_eq!(mask.shape(), &[b, l], "mask shape mismatch");
    // additive mask: (mask - 1) * 1e9 => 0 for real, -1e9 for pad.
    let neg = mask.add_scalar(-1.0).scale(1e9).reshape(&[b, l, 1]);
    x.add(&neg).max_axis(1, false)
}

/// Mean over real tokens: `sum(x * mask) / sum(mask)` per row. `mask: [b, l]`.
pub fn masked_mean_pool(x: &Tensor, mask: &Tensor) -> Tensor {
    let s = x.shape();
    assert_eq!(s.len(), 3, "masked_mean_pool expects [b, l, h], got {s:?}");
    let (b, l) = (s[0], s[1]);
    assert_eq!(mask.shape(), &[b, l], "mask shape mismatch");
    let m3 = mask.reshape(&[b, l, 1]);
    let summed = x.mul(&m3).sum_axis(1, false); // [b, h]
    let counts = mask.sum_axis(1, true).clamp(1.0, f32::INFINITY); // [b, 1]
    summed.div(&counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dar_tensor::Tensor;

    #[test]
    fn max_pool_ignores_padding() {
        // Token 1 has the max but is padded out.
        let x = Tensor::new(vec![1.0, 9.0, 2.0], &[1, 3, 1]);
        let mask = Tensor::new(vec![1.0, 0.0, 1.0], &[1, 3]);
        let y = masked_max_pool(&x, &mask);
        assert_eq!(y.to_vec(), vec![2.0]);
    }

    #[test]
    fn mean_pool_divides_by_real_count() {
        let x = Tensor::new(vec![2.0, 100.0, 4.0], &[1, 3, 1]);
        let mask = Tensor::new(vec![1.0, 0.0, 1.0], &[1, 3]);
        let y = masked_mean_pool(&x, &mask);
        assert_eq!(y.to_vec(), vec![3.0]);
    }

    #[test]
    fn mean_pool_all_masked_is_finite() {
        let x = Tensor::new(vec![5.0, 5.0], &[1, 2, 1]);
        let mask = Tensor::zeros(&[1, 2]);
        let y = masked_mean_pool(&x, &mask);
        assert!(y.to_vec()[0].is_finite());
        assert_eq!(y.to_vec(), vec![0.0]);
    }

    #[test]
    fn pools_backprop_only_through_selected() {
        let x = Tensor::param(vec![1.0, 9.0, 2.0], &[1, 3, 1]);
        let mask = Tensor::new(vec![1.0, 0.0, 1.0], &[1, 3]);
        masked_max_pool(&x, &mask).sum().backward();
        assert_eq!(x.grad_vec().unwrap(), vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn max_pool_gradcheck() {
        use dar_tensor::grad_check::check_gradients;
        // Margins between candidates are far larger than the finite-diff
        // step, so the argmax never flips between perturbed evaluations.
        let x = Tensor::param(
            vec![
                0.5, 2.0, -1.0, 1.0, -0.6, 0.4, 3.0, -2.0, 0.9, 1.7, -1.4, 0.2,
            ],
            &[2, 3, 2],
        );
        let mask = Tensor::new(vec![1.0, 1.0, 0.0, 1.0, 1.0, 1.0], &[2, 3]);
        let w = Tensor::new(vec![1.0, -0.5, 0.8, 1.2], &[2, 2]);
        let rep = check_gradients(
            &[x],
            |ins| masked_max_pool(&ins[0], &mask).mul(&w).sum(),
            1e-3,
        );
        assert!(rep.ok(5e-2), "{rep:?}");
    }

    #[test]
    fn mean_pool_gradcheck() {
        use dar_tensor::grad_check::check_gradients;
        let x = Tensor::param(
            vec![
                0.5, 2.0, -1.0, 1.0, -0.6, 0.4, 3.0, -2.0, 0.9, 1.7, -1.4, 0.2,
            ],
            &[2, 3, 2],
        );
        let mask = Tensor::new(vec![1.0, 0.0, 1.0, 1.0, 1.0, 0.0], &[2, 3]);
        let w = Tensor::new(vec![1.0, -0.5, 0.8, 1.2], &[2, 2]);
        let rep = check_gradients(
            &[x],
            |ins| masked_mean_pool(&ins[0], &mask).mul(&w).sum(),
            1e-3,
        );
        assert!(rep.ok(5e-2), "{rep:?}");
    }

    #[test]
    fn pool_shapes() {
        let x = Tensor::zeros(&[4, 7, 6]);
        let mask = Tensor::ones(&[4, 7]);
        assert_eq!(masked_max_pool(&x, &mask).shape(), &[4, 6]);
        assert_eq!(masked_mean_pool(&x, &mask).shape(), &[4, 6]);
    }
}
