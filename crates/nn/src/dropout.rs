//! Inverted dropout.

use rand::Rng as _;

use dar_tensor::{Rng, Tensor};

/// Inverted dropout: at train time, zero each element with probability `p`
/// and scale survivors by `1/(1-p)`; identity at eval time.
pub struct Dropout {
    p: f32,
}

impl Dropout {
    pub fn new(p: f32) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0, 1)");
        Dropout { p }
    }

    pub fn forward(&self, x: &Tensor, rng: &mut Rng, train: bool) -> Tensor {
        if !train || self.p == 0.0 {
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let mask: Vec<f32> = (0..x.len())
            .map(|_| {
                if rng.gen::<f32>() < keep {
                    1.0 / keep
                } else {
                    0.0
                }
            })
            .collect();
        x.mul(&Tensor::new(mask, x.shape()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut rng = dar_tensor::rng(0);
        let d = Dropout::new(0.5);
        let x = Tensor::new(vec![1.0, 2.0, 3.0], &[3]);
        assert_eq!(d.forward(&x, &mut rng, false).to_vec(), x.to_vec());
    }

    #[test]
    fn train_mode_preserves_expectation() {
        let mut rng = dar_tensor::rng(1);
        let d = Dropout::new(0.3);
        let x = Tensor::ones(&[10_000]);
        let y = d.forward(&x, &mut rng, true).to_vec();
        let mean: f32 = y.iter().sum::<f32>() / y.len() as f32;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn zero_p_is_identity_even_in_train() {
        let mut rng = dar_tensor::rng(2);
        let d = Dropout::new(0.0);
        let x = Tensor::new(vec![4.0, 5.0], &[2]);
        assert_eq!(d.forward(&x, &mut rng, true).to_vec(), vec![4.0, 5.0]);
    }
}
