//! Token embedding table, optionally initialized from pretrained vectors
//! (the GloVe substitute of `dar-text`).

use dar_tensor::{init, Rng, Tensor};

use crate::module::Module;

/// A `[vocab, dim]` embedding table.
pub struct Embedding {
    pub table: Tensor,
    trainable: bool,
}

impl Embedding {
    /// Randomly initialized trainable table.
    pub fn new(rng: &mut Rng, vocab: usize, dim: usize) -> Self {
        Embedding {
            table: Tensor::param(init::normal(rng, vocab * dim, 0.0, 0.1), &[vocab, dim]),
            trainable: true,
        }
    }

    /// Table initialized from pretrained vectors.
    ///
    /// The paper follows DMR/A2R in using frozen GloVe vectors; pass
    /// `trainable = false` to reproduce that.
    pub fn from_pretrained(vectors: Vec<f32>, vocab: usize, dim: usize, trainable: bool) -> Self {
        assert_eq!(
            vectors.len(),
            vocab * dim,
            "pretrained vector size mismatch"
        );
        let table = if trainable {
            Tensor::param(vectors, &[vocab, dim])
        } else {
            Tensor::new(vectors, &[vocab, dim])
        };
        Embedding { table, trainable }
    }

    /// Look up a batch of padded id sequences into `[b, l, dim]`.
    pub fn forward_batch(&self, ids: &[Vec<usize>]) -> Tensor {
        let b = ids.len();
        assert!(b > 0, "empty batch");
        let l = ids[0].len();
        assert!(ids.iter().all(|s| s.len() == l), "ragged batch; pad first");
        let flat: Vec<usize> = ids.iter().flatten().copied().collect();
        let dim = self.dim();
        self.table.gather_rows(&flat).reshape(&[b, l, dim])
    }

    /// Look up a flat id list into `[n, dim]`.
    pub fn forward_flat(&self, ids: &[usize]) -> Tensor {
        self.table.gather_rows(ids)
    }

    pub fn vocab(&self) -> usize {
        self.table.shape()[0]
    }

    pub fn dim(&self) -> usize {
        self.table.shape()[1]
    }
}

impl Module for Embedding {
    fn params(&self) -> Vec<Tensor> {
        if self.trainable {
            vec![self.table.clone()]
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_lookup_shape() {
        let mut rng = dar_tensor::rng(0);
        let emb = Embedding::new(&mut rng, 10, 4);
        let out = emb.forward_batch(&[vec![1, 2, 3], vec![4, 5, 6]]);
        assert_eq!(out.shape(), &[2, 3, 4]);
    }

    #[test]
    fn frozen_table_has_no_params() {
        let emb = Embedding::from_pretrained(vec![0.0; 20], 5, 4, false);
        assert!(emb.params().is_empty());
        assert_eq!(emb.num_params(), 0);
    }

    #[test]
    fn trainable_pretrained_receives_grads() {
        let emb = Embedding::from_pretrained(vec![0.5; 8], 2, 4, true);
        let y = emb.forward_flat(&[0, 1, 1]);
        y.sum().backward();
        let g = emb.table.grad_vec().unwrap();
        assert_eq!(g, vec![1., 1., 1., 1., 2., 2., 2., 2.]);
    }

    #[test]
    #[should_panic(expected = "ragged batch")]
    fn ragged_batch_panics() {
        let mut rng = dar_tensor::rng(0);
        let emb = Embedding::new(&mut rng, 10, 4);
        let _ = emb.forward_batch(&[vec![1], vec![1, 2]]);
    }
}
