//! Numeric guard rails: default-on containment wrappers for the layers
//! whose math can go non-finite (DESIGN.md §11).
//!
//! Every guard is **exact identity on healthy inputs**: it repairs only
//! NaN/Inf (and, for layer norm, denormals), so enabling the rails does not
//! perturb a healthy trajectory by a single bit. Bit-compatibility with
//! recorded results therefore holds in both modes on clean data; the modes
//! differ only once a value has already gone pathological — rails on
//! repairs it in place, rails off lets it propagate for the divergence
//! guards to catch.
//!
//! The flag is per-thread and defaults to **on**; set `DAR_GUARDRAILS=0`
//! (or call [`set_guard_rails`]`(false)`) to get the raw paths.

use std::cell::Cell;

use dar_tensor::Tensor;

/// Magnitude ±Inf is clamped to by the rails. Far above anything a healthy
/// f32 model produces, far below f32::MAX so downstream sums don't
/// immediately re-overflow.
pub const GUARD_BOUND: f32 = 1e30;

thread_local! {
    static GUARD_RAILS: Cell<bool> = Cell::new(env_default());
}

/// Process-wide default, read once per thread: on unless `DAR_GUARDRAILS`
/// is set to `0`.
fn env_default() -> bool {
    match std::env::var("DAR_GUARDRAILS") {
        Ok(v) => v != "0",
        Err(_) => true,
    }
}

/// Whether the guard rails are active on this thread.
pub fn guard_rails_enabled() -> bool {
    GUARD_RAILS.with(|c| c.get())
}

/// Turn the rails on or off for this thread (overrides `DAR_GUARDRAILS`).
pub fn set_guard_rails(on: bool) {
    GUARD_RAILS.with(|c| c.set(on));
}

/// Repair non-finite values (NaN→0, ±Inf→±[`GUARD_BOUND`]) when the rails
/// are on; the tensor itself (same node) when off.
pub fn guard_finite(t: &Tensor) -> Tensor {
    if guard_rails_enabled() {
        t.finite_clamp(-GUARD_BOUND, GUARD_BOUND, 0.0)
    } else {
        t.clone()
    }
}

/// Softmax with repaired inputs. Raw softmax max-subtracts, so any finite
/// row is safe — but a single ±Inf/NaN poisons the whole row (`Inf - Inf`);
/// the rails repair the logits first.
pub fn safe_softmax(t: &Tensor) -> Tensor {
    guard_finite(t).softmax()
}

/// Log-softmax with repaired inputs (see [`safe_softmax`]).
pub fn safe_log_softmax(t: &Tensor) -> Tensor {
    guard_finite(t).log_softmax()
}

/// Division with a repaired quotient: `x/0 → ±GUARD_BOUND`, `0/0 → 0`.
/// The denominator is untouched, so finite results are bit-identical to
/// `a.div(b)`.
pub fn safe_div(a: &Tensor, b: &Tensor) -> Tensor {
    guard_finite(&a.div(b))
}

/// Exponential with repaired input and output: NaN input exps to 1 (its
/// repaired value's exp), overflow lands on [`GUARD_BOUND`] instead of Inf.
pub fn safe_exp(t: &Tensor) -> Tensor {
    guard_finite(&guard_finite(t).exp())
}

/// Natural log with a repaired input (the raw `ln` already clamps its
/// argument at 1e-12, so only NaN/Inf need repair).
pub fn safe_ln(t: &Tensor) -> Tensor {
    guard_finite(t).ln()
}

/// Denormal-flushed input for layer norm: subnormal magnitudes become 0
/// when the rails are on. Normal, zero, and non-finite values pass through.
pub fn guard_denormals(t: &Tensor) -> Tensor {
    if guard_rails_enabled() {
        t.flush_denormals()
    } else {
        t.clone()
    }
}

/// Run `f` with the rails forced on or off, restoring the previous state
/// afterwards (test and bench helper).
pub fn with_guard_rails<T>(on: bool, f: impl FnOnce() -> T) -> T {
    let prev = guard_rails_enabled();
    set_guard_rails(on);
    let out = f();
    set_guard_rails(prev);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rails_are_identity_on_healthy_values() {
        let x = Tensor::new(vec![0.5, -3.0, 1e20, -1e20], &[1, 4]);
        let (on, off) = (
            with_guard_rails(true, || safe_softmax(&x).to_vec()),
            with_guard_rails(false, || safe_softmax(&x).to_vec()),
        );
        assert_eq!(on, off, "rails changed a healthy softmax");
        let raw = x.softmax().to_vec();
        assert_eq!(on, raw);
    }

    #[test]
    fn rails_repair_poisoned_softmax_rows() {
        let x = Tensor::new(vec![f32::INFINITY, 0.0, f32::NAN, 1.0], &[2, 2]);
        let y = with_guard_rails(true, || safe_softmax(&x).to_vec());
        assert!(y.iter().all(|v| v.is_finite()), "{y:?}");
        // Inf wins its row outright after repair to GUARD_BOUND.
        assert!((y[0] - 1.0).abs() < 1e-6);
        let raw = with_guard_rails(false, || safe_softmax(&x).to_vec());
        assert!(raw.iter().any(|v| v.is_nan()), "raw path should propagate");
    }

    #[test]
    fn safe_div_contains_zero_denominators() {
        let a = Tensor::new(vec![1.0, 0.0, -2.0, 6.0], &[4]);
        let b = Tensor::new(vec![0.0, 0.0, 0.0, 3.0], &[4]);
        let y = with_guard_rails(true, || safe_div(&a, &b).to_vec());
        assert_eq!(y, vec![GUARD_BOUND, 0.0, -GUARD_BOUND, 2.0]);
    }

    #[test]
    fn safe_exp_never_overflows() {
        let x = Tensor::new(vec![1000.0, f32::NAN, 0.0], &[3]);
        let y = with_guard_rails(true, || safe_exp(&x).to_vec());
        assert!(y.iter().all(|v| v.is_finite()));
        assert_eq!(y[2], 1.0);
    }

    #[test]
    fn env_flag_is_overridable_per_thread() {
        let prev = guard_rails_enabled();
        set_guard_rails(false);
        assert!(!guard_rails_enabled());
        let x = Tensor::new(vec![f32::NAN], &[1]);
        assert!(guard_finite(&x).to_vec()[0].is_nan());
        set_guard_rails(prev);
    }
}
