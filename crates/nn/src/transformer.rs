//! A small pre-trainable transformer encoder — the repo's stand-in for
//! BERT-base in the Table VI experiment (see DESIGN.md §4 for the
//! substitution argument).
//!
//! Architecture: learned token + position embeddings, pre-LayerNorm blocks
//! of multi-head self-attention and a GELU MLP, and a masked-token
//! pretraining objective ([`TransformerEncoder::mlm_loss`]).

use rand::Rng as _;

use dar_tensor::ops::structural::concat;
use dar_tensor::{Rng, Tensor};

use crate::embedding::Embedding;
use crate::layer_norm::LayerNorm;
use crate::linear::Linear;
use crate::loss::weighted_cross_entropy;
use crate::module::Module;

/// Hyper-parameters of the encoder.
#[derive(Debug, Clone, Copy)]
pub struct TransformerConfig {
    pub vocab: usize,
    pub dim: usize,
    pub heads: usize,
    pub layers: usize,
    pub ff_dim: usize,
    pub max_len: usize,
    /// Token id used for `[MASK]` during pretraining.
    pub mask_token: usize,
}

impl Default for TransformerConfig {
    fn default() -> Self {
        TransformerConfig {
            vocab: 1000,
            dim: 64,
            heads: 4,
            layers: 2,
            ff_dim: 128,
            max_len: 128,
            mask_token: 1,
        }
    }
}

struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
}

impl MultiHeadAttention {
    fn new(rng: &mut Rng, dim: usize, heads: usize) -> Self {
        assert_eq!(dim % heads, 0, "dim {dim} not divisible by heads {heads}");
        MultiHeadAttention {
            wq: Linear::new(rng, dim, dim),
            wk: Linear::new(rng, dim, dim),
            wv: Linear::new(rng, dim, dim),
            wo: Linear::new(rng, dim, dim),
            heads,
        }
    }

    /// `x: [b, l, d]`, `additive_mask: [b, 1, l]` (0 real / -1e9 pad).
    fn forward(&self, x: &Tensor, additive_mask: &Tensor) -> Tensor {
        let s = x.shape();
        let (b, l, d) = (s[0], s[1], s[2]);
        let dh = d / self.heads;
        let q = self.wq.forward_seq(x);
        let k = self.wk.forward_seq(x);
        let v = self.wv.forward_seq(x);
        let scale = 1.0 / (dh as f32).sqrt();
        let mut head_outs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let qh = q.narrow(2, h * dh, dh); // [b, l, dh]
            let kh = k.narrow(2, h * dh, dh);
            let vh = v.narrow(2, h * dh, dh);
            let scores = qh.bmm(&kh.permute3([0, 2, 1])).scale(scale); // [b, l, l]
            let attn = scores.add(additive_mask).softmax();
            head_outs.push(attn.bmm(&vh)); // [b, l, dh]
        }
        let merged = concat(&head_outs, 2); // [b, l, d]
        debug_assert_eq!(merged.shape(), &[b, l, d]);
        self.wo.forward_seq(&merged)
    }
}

impl Module for MultiHeadAttention {
    fn params(&self) -> Vec<Tensor> {
        let mut p = self.wq.params();
        p.extend(self.wk.params());
        p.extend(self.wv.params());
        p.extend(self.wo.params());
        p
    }
}

struct Block {
    ln1: LayerNorm,
    attn: MultiHeadAttention,
    ln2: LayerNorm,
    ff1: Linear,
    ff2: Linear,
}

impl Block {
    fn new(rng: &mut Rng, cfg: &TransformerConfig) -> Self {
        Block {
            ln1: LayerNorm::new(cfg.dim),
            attn: MultiHeadAttention::new(rng, cfg.dim, cfg.heads),
            ln2: LayerNorm::new(cfg.dim),
            ff1: Linear::new(rng, cfg.dim, cfg.ff_dim),
            ff2: Linear::new(rng, cfg.ff_dim, cfg.dim),
        }
    }

    fn forward(&self, x: &Tensor, additive_mask: &Tensor) -> Tensor {
        // Pre-norm residual blocks.
        let a = self.attn.forward(&self.ln1.forward(x), additive_mask);
        let x = x.add(&a);
        let f = self
            .ff2
            .forward_seq(&self.ff1.forward_seq(&self.ln2.forward(&x)).gelu());
        x.add(&f)
    }
}

impl Module for Block {
    fn params(&self) -> Vec<Tensor> {
        let mut p = self.ln1.params();
        p.extend(self.attn.params());
        p.extend(self.ln2.params());
        p.extend(self.ff1.params());
        p.extend(self.ff2.params());
        p
    }
}

/// The encoder: embeddings + transformer blocks + final LayerNorm, with an
/// MLM head for pretraining.
pub struct TransformerEncoder {
    pub cfg: TransformerConfig,
    tok: Embedding,
    pos: Tensor,
    blocks: Vec<Block>,
    ln_out: LayerNorm,
    mlm_head: Linear,
}

impl TransformerEncoder {
    pub fn new(rng: &mut Rng, cfg: TransformerConfig) -> Self {
        let tok = Embedding::new(rng, cfg.vocab, cfg.dim);
        let pos = Tensor::param(
            dar_tensor::init::normal(rng, cfg.max_len * cfg.dim, 0.0, 0.02),
            &[cfg.max_len, cfg.dim],
        );
        let blocks = (0..cfg.layers).map(|_| Block::new(rng, &cfg)).collect();
        let ln_out = LayerNorm::new(cfg.dim);
        let mlm_head = Linear::new(rng, cfg.dim, cfg.vocab);
        TransformerEncoder {
            cfg,
            tok,
            pos,
            blocks,
            ln_out,
            mlm_head,
        }
    }

    /// Encode embedded inputs `[b, l, d]` with padding `mask: [b, l]` into
    /// contextual states `[b, l, d]`.
    ///
    /// Taking embeddings (not ids) keeps the rationale-masking interface
    /// identical to the GRU encoders: the caller multiplies embeddings by
    /// the rationale mask before encoding.
    pub fn forward_embedded(&self, x: &Tensor, mask: &Tensor) -> Tensor {
        let s = x.shape();
        let (b, l, d) = (s[0], s[1], s[2]);
        assert!(l <= self.cfg.max_len, "sequence length {l} exceeds max_len");
        assert_eq!(d, self.cfg.dim);
        let pos = self.pos.narrow(0, 0, l).reshape(&[1, l, d]);
        let mut h = x.add(&pos);
        let additive = mask.add_scalar(-1.0).scale(1e9).reshape(&[b, 1, l]);
        for blk in &self.blocks {
            h = blk.forward(&h, &additive);
        }
        self.ln_out.forward(&h)
    }

    /// Embed token ids and encode them.
    pub fn forward_ids(&self, ids: &[Vec<usize>], mask: &Tensor) -> Tensor {
        let x = self.tok.forward_batch(ids);
        self.forward_embedded(&x, mask)
    }

    /// The token embedding table (shared with downstream players that mask
    /// embeddings before encoding).
    pub fn embedding(&self) -> &Embedding {
        &self.tok
    }

    /// Masked-language-model loss for one batch: each real token is
    /// replaced by `[MASK]` with probability `mask_prob` and must be
    /// predicted from context.
    pub fn mlm_loss(
        &self,
        ids: &[Vec<usize>],
        pad_mask: &Tensor,
        mask_prob: f32,
        rng: &mut Rng,
    ) -> Tensor {
        let b = ids.len();
        let l = ids[0].len();
        let pad = pad_mask.to_vec();
        let mut corrupted: Vec<Vec<usize>> = ids.to_vec();
        let mut weights = vec![0.0f32; b * l];
        let mut targets = vec![0usize; b * l];
        let mut any = false;
        for (i, seq) in ids.iter().enumerate() {
            for (t, &tok) in seq.iter().enumerate() {
                targets[i * l + t] = tok;
                if pad[i * l + t] > 0.5 && rng.gen::<f32>() < mask_prob {
                    corrupted[i][t] = self.cfg.mask_token;
                    weights[i * l + t] = 1.0;
                    any = true;
                }
            }
        }
        if !any {
            // Degenerate draw: mask the first real token to keep the loss
            // well-defined.
            corrupted[0][0] = self.cfg.mask_token;
            weights[0] = 1.0;
        }
        let h = self.forward_ids(&corrupted, pad_mask); // [b, l, d]
        let logits = self.mlm_head.forward(&h.reshape(&[b * l, self.cfg.dim]));
        weighted_cross_entropy(&logits, &targets, &Tensor::new(weights, &[b * l]))
    }
}

impl Module for TransformerEncoder {
    fn params(&self) -> Vec<Tensor> {
        let mut p = self.tok.params();
        p.push(self.pos.clone());
        for b in &self.blocks {
            p.extend(b.params());
        }
        p.extend(self.ln_out.params());
        p.extend(self.mlm_head.params());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dar_tensor::optim::{zero_grads, Adam, Optimizer};

    fn tiny_cfg() -> TransformerConfig {
        TransformerConfig {
            vocab: 20,
            dim: 16,
            heads: 2,
            layers: 2,
            ff_dim: 32,
            max_len: 12,
            mask_token: 1,
        }
    }

    #[test]
    fn encode_shapes() {
        let mut rng = dar_tensor::rng(0);
        let enc = TransformerEncoder::new(&mut rng, tiny_cfg());
        let ids = vec![vec![2, 3, 4, 5], vec![6, 7, 0, 0]];
        let mask = Tensor::new(vec![1., 1., 1., 1., 1., 1., 0., 0.], &[2, 4]);
        let h = enc.forward_ids(&ids, &mask);
        assert_eq!(h.shape(), &[2, 4, 16]);
    }

    #[test]
    fn padding_does_not_change_real_token_states() {
        // Encoding [a b] must match encoding [a b pad pad] on the first two
        // positions (attention masks the pads out).
        let mut rng = dar_tensor::rng(1);
        let enc = TransformerEncoder::new(&mut rng, tiny_cfg());
        let short = enc.forward_ids(&[vec![2, 3]], &Tensor::ones(&[1, 2]));
        let long = enc.forward_ids(
            &[vec![2, 3, 9, 9]],
            &Tensor::new(vec![1., 1., 0., 0.], &[1, 4]),
        );
        let a = short.to_vec();
        let b = long.narrow(1, 0, 2).to_vec();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-4, "pad leaked into encoding: {x} vs {y}");
        }
    }

    #[test]
    fn position_matters() {
        let mut rng = dar_tensor::rng(2);
        let enc = TransformerEncoder::new(&mut rng, tiny_cfg());
        let mask = Tensor::ones(&[1, 2]);
        let ab = enc.forward_ids(&[vec![2, 3]], &mask).to_vec();
        let ba = enc.forward_ids(&[vec![3, 2]], &mask).to_vec();
        assert_ne!(ab, ba);
    }

    #[test]
    fn attention_gradcheck_small() {
        use dar_tensor::grad_check::check_gradients;
        let mut rng = dar_tensor::rng(11);
        let attn = MultiHeadAttention::new(&mut rng, 4, 2);
        let x = Tensor::param(
            dar_tensor::init::uniform(&mut rng, 6 * 4, -0.8, 0.8),
            &[2, 3, 4],
        );
        // Last position of each sequence padded out.
        let amask = Tensor::new(vec![0.0, 0.0, -1e9, 0.0, 0.0, -1e9], &[2, 1, 3]);
        let w = Tensor::new(
            dar_tensor::init::uniform(&mut rng, 6 * 4, -1.0, 1.0),
            &[2, 3, 4],
        );
        let mut inputs = vec![x];
        inputs.extend(attn.params());
        let rep = check_gradients(
            &inputs,
            |ins| attn.forward(&ins[0], &amask).mul(&w).sum(),
            1e-2,
        );
        assert!(rep.ok(5e-2), "{rep:?}");
    }

    #[test]
    fn block_gradcheck_small() {
        use dar_tensor::grad_check::check_gradients;
        let mut rng = dar_tensor::rng(12);
        let cfg = TransformerConfig {
            vocab: 10,
            dim: 4,
            heads: 2,
            layers: 1,
            ff_dim: 8,
            max_len: 4,
            mask_token: 1,
        };
        let blk = Block::new(&mut rng, &cfg);
        let x = Tensor::param(
            dar_tensor::init::uniform(&mut rng, 6 * 4, -0.8, 0.8),
            &[2, 3, 4],
        );
        let amask = Tensor::zeros(&[2, 1, 3]);
        let w = Tensor::new(
            dar_tensor::init::uniform(&mut rng, 6 * 4, -1.0, 1.0),
            &[2, 3, 4],
        );
        let mut inputs = vec![x];
        inputs.extend(blk.params());
        let rep = check_gradients(
            &inputs,
            |ins| blk.forward(&ins[0], &amask).mul(&w).sum(),
            1e-2,
        );
        assert!(rep.ok(5e-2), "{rep:?}");
    }

    #[test]
    fn mlm_loss_is_finite_and_trainable() {
        let mut rng = dar_tensor::rng(3);
        let enc = TransformerEncoder::new(&mut rng, tiny_cfg());
        let ids = vec![vec![2, 3, 4, 5, 6, 7]];
        let mask = Tensor::ones(&[1, 6]);
        let loss = enc.mlm_loss(&ids, &mask, 0.5, &mut rng);
        assert!(loss.item().is_finite());
        loss.backward();
        let touched = enc
            .params()
            .iter()
            .filter(|p| p.grad_vec().is_some())
            .count();
        assert!(touched > 0);
    }

    #[test]
    fn mlm_pretraining_reduces_loss() {
        // A deterministic bigram corpus: token 2k is always followed by
        // 2k+1. A few steps of MLM must cut the loss markedly.
        let mut rng = dar_tensor::rng(4);
        let enc = TransformerEncoder::new(&mut rng, tiny_cfg());
        let mut opt = Adam::with_lr(3e-3);
        let ids: Vec<Vec<usize>> = (0..8)
            .map(|i| vec![2 + 2 * (i % 4), 3 + 2 * (i % 4), 2, 3])
            .collect();
        let mask = Tensor::ones(&[8, 4]);
        let first = enc.mlm_loss(&ids, &mask, 0.3, &mut rng).item();
        let mut last = first;
        for _ in 0..30 {
            let loss = enc.mlm_loss(&ids, &mask, 0.3, &mut rng);
            zero_grads(&enc.params());
            loss.backward();
            opt.step(&enc.params());
            last = loss.item();
        }
        assert!(last < first * 0.8, "MLM did not learn: {first} -> {last}");
    }
}
