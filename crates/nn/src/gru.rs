//! GRU (Cho et al., 2014) cell and sequence encoders.
//!
//! The paper uses "200-dimension bi-directional gated recurrent units
//! followed by one linear layer for each of the players"; [`BiGru`] is that
//! encoder. Padded positions (mask 0) carry the previous hidden state
//! through unchanged, so batch padding never leaks into the encoding.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

use dar_tensor::ops::rnn::gru_seq;
use dar_tensor::ops::structural::{concat, stack};
use dar_tensor::{init, Rng, Tensor};

use crate::module::Module;

/// Whether [`Gru::forward`] uses the step-by-step composite graph instead
/// of the fused `gru_seq` kernel. The composite graph is the default: it
/// is bit-compatible with every trajectory and checkpoint the repo has
/// recorded. `DAR_GRU_COMPOSITE=0` (or [`set_composite_gru`]`(false)`)
/// opts into the fused fast path — same math, ~1.7× faster end to end,
/// but a different float association, so switching changes bits (each
/// path is still individually deterministic and thread-budget-invariant;
/// see `tests/parallel_equivalence.rs`).
static COMPOSITE_GRU: OnceLock<AtomicBool> = OnceLock::new();

fn composite_flag() -> &'static AtomicBool {
    COMPOSITE_GRU
        .get_or_init(|| AtomicBool::new(std::env::var("DAR_GRU_COMPOSITE").as_deref() != Ok("0")))
}

/// Force (or unforce) the composite reference implementation.
pub fn set_composite_gru(on: bool) {
    composite_flag().store(on, Ordering::Relaxed);
}

/// True when the composite reference path is active.
pub fn composite_gru_enabled() -> bool {
    composite_flag().load(Ordering::Relaxed)
}

/// A single GRU cell with fused gate weights.
///
/// Gates (`x_t: [b, in]`, `h: [b, hidden]`):
/// ```text
/// [z; r] = sigmoid([x, h] @ W_zr + b_zr)
/// h~     = tanh([x, r ⊙ h] @ W_h + b_h)
/// h'     = (1 − z) ⊙ h + z ⊙ h~
/// ```
pub struct GruCell {
    w_zr: Tensor,
    b_zr: Tensor,
    w_h: Tensor,
    b_h: Tensor,
    hidden: usize,
}

impl GruCell {
    pub fn new(rng: &mut Rng, in_dim: usize, hidden: usize) -> Self {
        GruCell {
            w_zr: init::xavier_param(rng, in_dim + hidden, 2 * hidden),
            b_zr: init::zeros_param(&[2 * hidden]),
            w_h: init::xavier_param(rng, in_dim + hidden, hidden),
            b_h: init::zeros_param(&[hidden]),
            hidden,
        }
    }

    /// One recurrence step. `mask_t` is `[b, 1]` (1 = real token, 0 = pad);
    /// padded rows keep their previous state.
    pub fn step(&self, x_t: &Tensor, h: &Tensor, mask_t: Option<&Tensor>) -> Tensor {
        let xh = x_t.cat(h, 1);
        let zr = self.w_zr_forward(&xh).sigmoid();
        let z = zr.narrow(1, 0, self.hidden);
        let r = zr.narrow(1, self.hidden, self.hidden);
        let xrh = x_t.cat(&r.mul(h), 1);
        let h_cand = xrh.matmul(&self.w_h).add(&self.b_h).tanh();
        let one_minus_z = z.neg().add_scalar(1.0);
        let h_new = one_minus_z.mul(h).add(&z.mul(&h_cand));
        match mask_t {
            Some(m) => {
                let keep = m.neg().add_scalar(1.0);
                m.mul(&h_new).add(&keep.mul(h))
            }
            None => h_new,
        }
    }

    fn w_zr_forward(&self, xh: &Tensor) -> Tensor {
        xh.matmul(&self.w_zr).add(&self.b_zr)
    }

    pub fn hidden(&self) -> usize {
        self.hidden
    }
}

impl Module for GruCell {
    fn params(&self) -> Vec<Tensor> {
        vec![
            self.w_zr.clone(),
            self.b_zr.clone(),
            self.w_h.clone(),
            self.b_h.clone(),
        ]
    }
}

/// Unidirectional GRU over `[b, l, in]`, producing per-step outputs
/// `[b, l, hidden]`.
pub struct Gru {
    cell: GruCell,
    reverse: bool,
}

impl Gru {
    pub fn new(rng: &mut Rng, in_dim: usize, hidden: usize) -> Self {
        Gru {
            cell: GruCell::new(rng, in_dim, hidden),
            reverse: false,
        }
    }

    /// A GRU that reads the sequence right-to-left.
    pub fn new_reverse(rng: &mut Rng, in_dim: usize, hidden: usize) -> Self {
        Gru {
            cell: GruCell::new(rng, in_dim, hidden),
            reverse: true,
        }
    }

    /// Encode a batch. `mask` is `[b, l]` with 1 for real tokens.
    /// Returns `[b, l, hidden]` aligned with the input order (the reverse
    /// direction's outputs are re-reversed).
    ///
    /// Dispatches to the composite step-by-step graph by default, or the
    /// fused shard-parallel [`gru_seq`] kernel when opted in
    /// ([`set_composite_gru`]`(false)` / `DAR_GRU_COMPOSITE=0`).
    pub fn forward(&self, x: &Tensor, mask: Option<&Tensor>) -> Tensor {
        if composite_gru_enabled() {
            self.forward_composite(x, mask)
        } else {
            self.forward_fused(x, mask)
        }
    }

    /// The fused shard-parallel [`gru_seq`] kernel, unconditionally.
    pub fn forward_fused(&self, x: &Tensor, mask: Option<&Tensor>) -> Tensor {
        let s = x.shape();
        assert_eq!(s.len(), 3, "Gru expects [b, l, in], got {s:?}");
        gru_seq(
            x,
            mask,
            &self.cell.w_zr,
            &self.cell.b_zr,
            &self.cell.w_h,
            &self.cell.b_h,
            self.reverse,
        )
    }

    /// Reference implementation: one composite autograd sub-graph per
    /// timestep via [`GruCell::step`]. Kept for equivalence testing and as
    /// the baseline the fused kernel is benchmarked against.
    pub fn forward_composite(&self, x: &Tensor, mask: Option<&Tensor>) -> Tensor {
        let s = x.shape();
        assert_eq!(s.len(), 3, "Gru expects [b, l, in], got {s:?}");
        let (b, l, e) = (s[0], s[1], s[2]);
        let mut h = Tensor::zeros(&[b, self.cell.hidden]);
        let mut outs: Vec<Tensor> = Vec::with_capacity(l);
        let steps: Vec<usize> = if self.reverse {
            (0..l).rev().collect()
        } else {
            (0..l).collect()
        };
        for &t in &steps {
            let x_t = x.narrow(1, t, 1).reshape(&[b, e]);
            let m_t = mask.map(|m| m.narrow(1, t, 1));
            h = self.cell.step(&x_t, &h, m_t.as_ref());
            outs.push(h.clone());
        }
        if self.reverse {
            outs.reverse();
        }
        // [l, b, hidden] -> [b, l, hidden]
        stack(&outs).permute3([1, 0, 2])
    }
}

impl Module for Gru {
    fn params(&self) -> Vec<Tensor> {
        self.cell.params()
    }
}

/// Bidirectional GRU: forward and reverse passes concatenated to
/// `[b, l, 2*hidden]` — the paper's standard encoder.
pub struct BiGru {
    fwd: Gru,
    bwd: Gru,
}

impl BiGru {
    pub fn new(rng: &mut Rng, in_dim: usize, hidden: usize) -> Self {
        BiGru {
            fwd: Gru::new(rng, in_dim, hidden),
            bwd: Gru::new_reverse(rng, in_dim, hidden),
        }
    }

    /// Encode `[b, l, in]` into `[b, l, 2*hidden]`.
    pub fn forward(&self, x: &Tensor, mask: Option<&Tensor>) -> Tensor {
        let f = self.fwd.forward(x, mask);
        let r = self.bwd.forward(x, mask);
        concat(&[f, r], 2)
    }

    /// Output feature dimension (`2 * hidden`).
    pub fn out_dim(&self) -> usize {
        2 * self.fwd.cell.hidden()
    }
}

impl Module for BiGru {
    fn params(&self) -> Vec<Tensor> {
        let mut p = self.fwd.params();
        p.extend(self.bwd.params());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dar_tensor::grad_check::check_gradients;
    use dar_tensor::Tensor;

    #[test]
    fn cell_step_shapes() {
        let mut rng = dar_tensor::rng(0);
        let cell = GruCell::new(&mut rng, 3, 5);
        let x = Tensor::zeros(&[2, 3]);
        let h = Tensor::zeros(&[2, 5]);
        let h2 = cell.step(&x, &h, None);
        assert_eq!(h2.shape(), &[2, 5]);
    }

    #[test]
    fn zero_input_zero_state_stays_bounded() {
        let mut rng = dar_tensor::rng(1);
        let cell = GruCell::new(&mut rng, 2, 4);
        let mut h = Tensor::zeros(&[1, 4]);
        for _ in 0..50 {
            h = cell.step(&Tensor::zeros(&[1, 2]), &h, None);
        }
        assert!(h.to_vec().iter().all(|x| x.abs() <= 1.0));
    }

    #[test]
    fn mask_freezes_padded_rows() {
        let mut rng = dar_tensor::rng(2);
        let cell = GruCell::new(&mut rng, 2, 3);
        let h = Tensor::new(vec![0.5, -0.5, 0.25, 0.1, 0.2, 0.3], &[2, 3]);
        let x = Tensor::ones(&[2, 2]);
        let mask = Tensor::new(vec![1.0, 0.0], &[2, 1]);
        let h2 = cell.step(&x, &h, Some(&mask));
        let v = h2.to_vec();
        // Row 1 (mask 0) must be identical to its previous state.
        assert_eq!(&v[3..], &[0.1, 0.2, 0.3]);
        // Row 0 (mask 1) must have changed.
        assert_ne!(&v[..3], &[0.5, -0.5, 0.25]);
    }

    #[test]
    fn forward_output_shape() {
        let mut rng = dar_tensor::rng(3);
        let gru = Gru::new(&mut rng, 4, 6);
        let x = Tensor::zeros(&[2, 5, 4]);
        let y = gru.forward(&x, None);
        assert_eq!(y.shape(), &[2, 5, 6]);
    }

    #[test]
    fn reverse_gru_sees_future() {
        // For a reverse GRU, output at t=0 must depend on the token at t=2.
        let mut rng = dar_tensor::rng(4);
        let gru = Gru::new_reverse(&mut rng, 1, 2);
        let a = Tensor::new(vec![0.0, 0.0, 1.0], &[1, 3, 1]);
        let b = Tensor::new(vec![0.0, 0.0, -1.0], &[1, 3, 1]);
        let ya = gru.forward(&a, None).narrow(1, 0, 1).to_vec();
        let yb = gru.forward(&b, None).narrow(1, 0, 1).to_vec();
        assert_ne!(ya, yb);
    }

    #[test]
    fn forward_gru_ignores_future() {
        let mut rng = dar_tensor::rng(4);
        let gru = Gru::new(&mut rng, 1, 2);
        let a = Tensor::new(vec![0.5, 0.0, 1.0], &[1, 3, 1]);
        let b = Tensor::new(vec![0.5, 0.0, -1.0], &[1, 3, 1]);
        let ya = gru.forward(&a, None).narrow(1, 0, 2).to_vec();
        let yb = gru.forward(&b, None).narrow(1, 0, 2).to_vec();
        assert_eq!(ya, yb);
    }

    #[test]
    fn bigru_concat_dim() {
        let mut rng = dar_tensor::rng(5);
        let enc = BiGru::new(&mut rng, 3, 4);
        let y = enc.forward(&Tensor::zeros(&[2, 6, 3]), None);
        assert_eq!(y.shape(), &[2, 6, 8]);
        assert_eq!(enc.out_dim(), 8);
    }

    #[test]
    fn bigru_param_count() {
        let mut rng = dar_tensor::rng(6);
        let enc = BiGru::new(&mut rng, 3, 4);
        // Per direction: (3+4)*8 + 8 + (3+4)*4 + 4 = 56+8+28+4 = 96.
        assert_eq!(enc.num_params(), 192);
    }

    #[test]
    fn gru_gradients_flow_to_all_params() {
        let mut rng = dar_tensor::rng(7);
        let gru = Gru::new(&mut rng, 2, 3);
        let x = Tensor::new(vec![0.1; 2 * 4 * 2], &[2, 4, 2]);
        let loss = gru.forward(&x, None).sum();
        loss.backward();
        for p in gru.params() {
            let g = p.grad_vec().expect("param missing grad");
            assert!(g.iter().any(|&v| v != 0.0), "all-zero grad");
        }
    }

    #[test]
    fn gru_gradcheck_small() {
        let mut rng = dar_tensor::rng(8);
        let gru = Gru::new(&mut rng, 2, 2);
        let params = gru.params();
        let x = Tensor::new(vec![0.3, -0.2, 0.5, 0.1, -0.4, 0.2], &[1, 3, 2]);
        let rep = check_gradients(
            &params,
            |_| gru.forward_fused(&x, None).square().sum(),
            1e-2,
        );
        assert!(rep.ok(5e-2), "{rep:?}");
    }

    #[test]
    fn composite_gradcheck_small() {
        // The reference path must stay gradient-correct too.
        let mut rng = dar_tensor::rng(8);
        let gru = Gru::new(&mut rng, 2, 2);
        let params = gru.params();
        let x = Tensor::new(vec![0.3, -0.2, 0.5, 0.1, -0.4, 0.2], &[1, 3, 2]);
        let rep = check_gradients(
            &params,
            |_| gru.forward_composite(&x, None).square().sum(),
            1e-2,
        );
        assert!(rep.ok(5e-2), "{rep:?}");
    }

    /// Forward + backward of the fused kernel against the composite
    /// reference graph, with padding, in both directions.
    #[test]
    fn fused_matches_composite_reference() {
        use dar_tensor::optim::zero_grads;
        for (seed, reverse) in [(9u64, false), (10, true)] {
            let mut rng = dar_tensor::rng(seed);
            let gru = if reverse {
                Gru::new_reverse(&mut rng, 3, 4)
            } else {
                Gru::new(&mut rng, 3, 4)
            };
            let xv = dar_tensor::init::uniform(&mut rng, 2 * 5 * 3, -0.8, 0.8);
            let mask = Tensor::new(vec![1., 1., 1., 1., 0., 1., 1., 0., 0., 0.], &[2, 5]);
            let params = gru.params();
            let grads_of = |fused: bool| {
                let x = Tensor::param(xv.clone(), &[2, 5, 3]);
                zero_grads(&params);
                let y = if fused {
                    gru.forward_fused(&x, Some(&mask))
                } else {
                    gru.forward_composite(&x, Some(&mask))
                };
                y.square().sum().backward();
                let mut all = vec![y.to_vec(), x.grad_vec().unwrap()];
                all.extend(params.iter().map(|p| p.grad_vec().unwrap()));
                all
            };
            for (f, c) in grads_of(true).iter().zip(&grads_of(false)) {
                assert_eq!(f.len(), c.len());
                for (a, b) in f.iter().zip(c) {
                    assert!(
                        (a - b).abs() < 2e-4,
                        "fused/composite diverge (reverse={reverse}): {a} vs {b}"
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod timing {
    use super::*;
    use dar_tensor::Tensor;

    #[test]
    #[ignore]
    fn time_fused_vs_composite() {
        let (b, l, e, h) = (32, 40, 50, 64);
        let mut rng = dar_tensor::rng(0);
        let gru = Gru::new(&mut rng, e, h);
        let xv = dar_tensor::init::uniform(&mut rng, b * l * e, -0.5, 0.5);
        for (label, composite) in [("fused", false), ("composite", true)] {
            set_composite_gru(composite);
            let t = std::time::Instant::now();
            for _ in 0..20 {
                let x = Tensor::param(xv.clone(), &[b, l, e]);
                let y = gru.forward(&x, None);
                std::hint::black_box(y.to_vec());
            }
            let fwd = t.elapsed() / 20;
            let t = std::time::Instant::now();
            for _ in 0..20 {
                let x = Tensor::param(xv.clone(), &[b, l, e]);
                gru.forward(&x, None).sum().backward();
            }
            println!("{label}: fwd {fwd:?}, fwd+bwd {:?}", t.elapsed() / 20);
        }
        set_composite_gru(true);
    }
}
