//! Classification losses and divergences.
//!
//! These are the `H_c` cross-entropy terms of the paper's objectives
//! (Eqs. (2), (4), (5), (6)) plus the JS divergence used by the A2R
//! baseline and KL used by DMR-style output matching.

use dar_tensor::Tensor;

use crate::numeric::{safe_log_softmax, safe_softmax};

/// Mean cross-entropy of `logits [n, c]` against integer `targets`.
///
/// Logits run through the numeric guard rails (identity on finite values),
/// so a NaN/Inf logit yields a large-but-finite loss the divergence guards
/// can act on instead of a poisoned batch.
pub fn cross_entropy(logits: &Tensor, targets: &[usize]) -> Tensor {
    let s = logits.shape();
    assert_eq!(s.len(), 2, "cross_entropy expects [n, c] logits, got {s:?}");
    assert_eq!(s[0], targets.len(), "targets length mismatch");
    let one_hot = Tensor::one_hot(targets, s[1]);
    safe_log_softmax(logits)
        .mul(&one_hot)
        .sum()
        .scale(-1.0 / s[0] as f32)
}

/// Per-example (unreduced) cross-entropy, `[n]`.
pub fn cross_entropy_per_example(logits: &Tensor, targets: &[usize]) -> Tensor {
    let s = logits.shape();
    assert_eq!(s.len(), 2, "expects [n, c] logits");
    let one_hot = Tensor::one_hot(targets, s[1]);
    safe_log_softmax(logits)
        .mul(&one_hot)
        .sum_axis(1, false)
        .scale(-1.0)
}

/// Weighted mean cross-entropy: per-example CE multiplied by `weights [n]`
/// and normalized by their sum. Used for masked-token pretraining.
pub fn weighted_cross_entropy(logits: &Tensor, targets: &[usize], weights: &Tensor) -> Tensor {
    let per = cross_entropy_per_example(logits, targets);
    let total = weights.sum().item().max(1e-6);
    per.mul(weights).sum().scale(1.0 / total)
}

/// KL(p || q) from two logits tensors `[n, c]`, averaged over rows.
/// `p` is treated as the (detached) target distribution.
pub fn kl_div_logits(p_logits: &Tensor, q_logits: &Tensor) -> Tensor {
    let n = p_logits.shape()[0] as f32;
    let p = safe_softmax(&p_logits.detach());
    let logp = safe_log_softmax(&p_logits.detach());
    let logq = safe_log_softmax(q_logits);
    p.mul(&logp.sub(&logq)).sum().scale(1.0 / n)
}

/// Jensen–Shannon divergence between two logits tensors `[n, c]`, averaged
/// over rows. Symmetric; gradients flow into both.
pub fn js_div_logits(a_logits: &Tensor, b_logits: &Tensor) -> Tensor {
    let n = a_logits.shape()[0] as f32;
    let pa = safe_softmax(a_logits);
    let pb = safe_softmax(b_logits);
    let m = pa.add(&pb).scale(0.5);
    let log_m = m.ln();
    let kl_am = pa.mul(&safe_log_softmax(a_logits).sub(&log_m)).sum();
    let kl_bm = pb.mul(&safe_log_softmax(b_logits).sub(&log_m)).sum();
    kl_am.add(&kl_bm).scale(0.5 / n)
}

/// Fraction of rows whose argmax equals the target.
pub fn accuracy(logits: &Tensor, targets: &[usize]) -> f32 {
    let preds = logits.argmax_rows();
    assert_eq!(preds.len(), targets.len());
    if targets.is_empty() {
        return 0.0;
    }
    let correct = preds.iter().zip(targets).filter(|(p, t)| p == t).count();
    correct as f32 / targets.len() as f32
}

/// Binary entropy of an empirical label distribution — handy as the
/// H(Y) lower-bound check of Lemma 3 in tests.
pub fn empirical_entropy(targets: &[usize], classes: usize) -> f32 {
    let mut counts = vec![0usize; classes];
    for &t in targets {
        counts[t] += 1;
    }
    let n = targets.len() as f32;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f32 / n;
            -p * p.ln()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_logits_give_near_zero_ce() {
        let logits = Tensor::new(vec![20.0, -20.0, -20.0, 20.0], &[2, 2]);
        let ce = cross_entropy(&logits, &[0, 1]);
        assert!(ce.item() < 1e-5);
    }

    #[test]
    fn uniform_logits_give_ln_c() {
        let logits = Tensor::zeros(&[3, 4]);
        let ce = cross_entropy(&logits, &[0, 1, 2]);
        assert!((ce.item() - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn ce_gradient_points_toward_target() {
        let logits = Tensor::param(vec![0.0, 0.0], &[1, 2]);
        cross_entropy(&logits, &[1]).backward();
        let g = logits.grad_vec().unwrap();
        assert!(g[0] > 0.0 && g[1] < 0.0);
    }

    #[test]
    fn ce_exceeds_label_entropy_lemma3() {
        // Lemma 3 sanity: H_c(Y, Ŷ) >= H(Y) for an input-blind predictor
        // (one shared output distribution across all examples).
        let targets = [0usize, 1, 0, 1, 1, 0];
        let row = [0.7f32, -0.4];
        let logits = Tensor::new(row.iter().cycle().take(12).copied().collect(), &[6, 2]);
        let ce = cross_entropy(&logits, &targets).item();
        let h = empirical_entropy(&targets, 2);
        assert!(ce >= h - 1e-4, "CE {ce} < H(Y) {h}");
    }

    #[test]
    fn weighted_ce_uses_only_weighted_rows() {
        let logits = Tensor::new(vec![10.0, -10.0, -10.0, 10.0], &[2, 2]);
        // First row correct (weight 1), second row wrong target but weight 0.
        let w = Tensor::new(vec![1.0, 0.0], &[2]);
        let ce = weighted_cross_entropy(&logits, &[0, 0], &w);
        assert!(ce.item() < 1e-5);
    }

    #[test]
    fn kl_zero_for_identical_distributions() {
        let a = Tensor::new(vec![0.5, -0.3, 0.1, 0.9], &[2, 2]);
        let kl = kl_div_logits(&a, &a);
        assert!(kl.item().abs() < 1e-6);
    }

    #[test]
    fn kl_positive_and_target_detached() {
        let p = Tensor::param(vec![2.0, -2.0], &[1, 2]);
        let q = Tensor::param(vec![-1.0, 1.0], &[1, 2]);
        let kl = kl_div_logits(&p, &q);
        assert!(kl.item() > 0.1);
        kl.backward();
        assert!(p.grad_vec().is_none(), "target side must be detached");
        assert!(q.grad_vec().is_some());
    }

    #[test]
    fn js_symmetric_bounded_and_zero_at_equality() {
        let a = Tensor::new(vec![1.0, 0.0], &[1, 2]);
        let b = Tensor::new(vec![-0.5, 0.5], &[1, 2]);
        let ab = js_div_logits(&a, &b).item();
        let ba = js_div_logits(&b, &a).item();
        assert!((ab - ba).abs() < 1e-6);
        assert!(ab > 0.0 && ab <= std::f32::consts::LN_2 + 1e-6);
        assert!(js_div_logits(&a, &a).item().abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_gradcheck() {
        use dar_tensor::grad_check::check_gradients;
        let logits = Tensor::param(vec![0.5, -0.3, 1.2, -0.8, 0.1, 0.9], &[2, 3]);
        let rep = check_gradients(&[logits], |ins| cross_entropy(&ins[0], &[2, 0]), 1e-2);
        assert!(rep.ok(5e-2), "{rep:?}");
    }

    #[test]
    fn weighted_cross_entropy_gradcheck() {
        use dar_tensor::grad_check::check_gradients;
        let logits = Tensor::param(vec![0.5, -0.3, 1.2, -0.8, 0.1, 0.9], &[3, 2]);
        let w = Tensor::new(vec![1.0, 0.0, 0.5], &[3]);
        let rep = check_gradients(
            &[logits],
            |ins| weighted_cross_entropy(&ins[0], &[0, 1, 1], &w),
            1e-2,
        );
        assert!(rep.ok(5e-2), "{rep:?}");
    }

    #[test]
    fn kl_gradcheck_on_q_side() {
        use dar_tensor::grad_check::check_gradients;
        // The p side is detached by construction, so only q is an input:
        // its analytic grads must match finite differences of the full loss.
        let p = Tensor::new(vec![1.0, -0.5, 0.2, 0.8, -1.1, 0.4], &[2, 3]);
        let q = Tensor::param(vec![-0.3, 0.6, 0.1, -0.9, 0.5, 1.2], &[2, 3]);
        let rep = check_gradients(&[q], |ins| kl_div_logits(&p, &ins[0]), 1e-2);
        assert!(rep.ok(5e-2), "{rep:?}");
    }

    #[test]
    fn js_gradcheck_on_both_sides() {
        use dar_tensor::grad_check::check_gradients;
        let a = Tensor::param(vec![1.4, -0.8, 0.3, 0.9, -1.2, 0.5], &[2, 3]);
        let b = Tensor::param(vec![-0.6, 0.7, -0.2, 1.1, 0.4, -1.0], &[2, 3]);
        let rep = check_gradients(&[a, b], |ins| js_div_logits(&ins[0], &ins[1]), 1e-2);
        assert!(rep.ok(5e-2), "{rep:?}");
    }

    #[test]
    fn poisoned_logits_yield_finite_loss_under_guard_rails() {
        let logits = Tensor::new(vec![f32::NAN, 0.5, f32::INFINITY, -1.0], &[2, 2]);
        let (ce, kl, js) = crate::numeric::with_guard_rails(true, || {
            (
                cross_entropy(&logits, &[0, 1]).item(),
                kl_div_logits(&logits, &logits).item(),
                js_div_logits(&logits, &logits).item(),
            )
        });
        assert!(ce.is_finite(), "ce {ce}");
        assert!(kl.is_finite(), "kl {kl}");
        assert!(js.is_finite(), "js {js}");
    }

    #[test]
    fn accuracy_counts_matches() {
        let logits = Tensor::new(vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4], &[3, 2]);
        assert_eq!(accuracy(&logits, &[0, 1, 1]), 2.0 / 3.0);
    }

    #[test]
    fn empirical_entropy_balanced_binary() {
        let h = empirical_entropy(&[0, 1, 0, 1], 2);
        assert!((h - std::f32::consts::LN_2).abs() < 1e-6);
    }
}
