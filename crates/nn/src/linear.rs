//! Fully connected layer.

use dar_tensor::{init, Rng, Tensor};

use crate::module::Module;

/// `y = x W + b` with `W: [in, out]`, `b: [out]`.
pub struct Linear {
    pub weight: Tensor,
    pub bias: Tensor,
}

impl Linear {
    /// Xavier-initialized weights, zero bias.
    pub fn new(rng: &mut Rng, in_dim: usize, out_dim: usize) -> Self {
        Linear {
            weight: init::xavier_param(rng, in_dim, out_dim),
            bias: init::zeros_param(&[out_dim]),
        }
    }

    /// Apply to a `[n, in]` batch; returns `[n, out]`.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        x.matmul(&self.weight).add(&self.bias)
    }

    /// Apply to a `[b, l, in]` sequence batch by flattening time.
    pub fn forward_seq(&self, x: &Tensor) -> Tensor {
        let s = x.shape();
        assert_eq!(s.len(), 3, "forward_seq expects [b, l, in], got {s:?}");
        let (b, l, e) = (s[0], s[1], s[2]);
        let out_dim = self.weight.shape()[1];
        self.forward(&x.reshape(&[b * l, e]))
            .reshape(&[b, l, out_dim])
    }

    pub fn in_dim(&self) -> usize {
        self.weight.shape()[0]
    }

    pub fn out_dim(&self) -> usize {
        self.weight.shape()[1]
    }
}

impl Module for Linear {
    fn params(&self) -> Vec<Tensor> {
        vec![self.weight.clone(), self.bias.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dar_tensor::optim::{zero_grads, Optimizer, Sgd};

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = dar_tensor::rng(0);
        let lin = Linear::new(&mut rng, 3, 2);
        lin.bias.set_values(vec![1.0, -1.0]);
        let x = Tensor::zeros(&[4, 3]);
        let y = lin.forward(&x);
        assert_eq!(y.shape(), &[4, 2]);
        assert_eq!(y.to_vec()[..2], [1.0, -1.0]);
    }

    #[test]
    fn forward_seq_matches_flat() {
        let mut rng = dar_tensor::rng(1);
        let lin = Linear::new(&mut rng, 3, 2);
        let x = Tensor::new((0..12).map(|i| i as f32 / 10.0).collect(), &[2, 2, 3]);
        let seq = lin.forward_seq(&x);
        let flat = lin.forward(&x.reshape(&[4, 3]));
        assert_eq!(seq.to_vec(), flat.to_vec());
        assert_eq!(seq.shape(), &[2, 2, 2]);
    }

    #[test]
    fn learns_linear_map() {
        // Fit y = 2x with SGD; sanity check that layer + optimizer wire up.
        let mut rng = dar_tensor::rng(2);
        let lin = Linear::new(&mut rng, 1, 1);
        let mut opt = Sgd::new(0.1, 0.0);
        for _ in 0..200 {
            let x = Tensor::new(vec![1.0, 2.0, -1.0], &[3, 1]);
            let target = Tensor::new(vec![2.0, 4.0, -2.0], &[3, 1]);
            let loss = lin.forward(&x).sub(&target).square().mean();
            zero_grads(&lin.params());
            loss.backward();
            opt.step(&lin.params());
        }
        assert!((lin.weight.item() - 2.0).abs() < 0.05);
        assert!(lin.bias.to_vec()[0].abs() < 0.05);
    }

    #[test]
    fn num_params() {
        let mut rng = dar_tensor::rng(0);
        let lin = Linear::new(&mut rng, 10, 5);
        assert_eq!(lin.num_params(), 55);
    }
}
