//! The [`Module`] trait: parameter enumeration shared by all layers and by
//! the rationalization players built on top of them.

use dar_tensor::Tensor;

/// Anything holding trainable parameters.
pub trait Module {
    /// The trainable parameter tensors, in a stable order.
    fn params(&self) -> Vec<Tensor>;

    /// Total scalar parameter count (used by the Table IV complexity
    /// comparison).
    fn num_params(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Clear all accumulated gradients.
    fn zero_grads(&self) {
        for p in self.params() {
            p.zero_grad();
        }
    }
}

/// Copy parameter values from `src` into `dst` (shapes must match
/// pairwise). Used to initialize a player from a pretrained one, e.g. the
/// skewed-predictor setting of Table VII.
pub fn copy_params(src: &dyn Module, dst: &dyn Module) {
    let s = src.params();
    let d = dst.params();
    assert_eq!(s.len(), d.len(), "parameter lists differ in length");
    for (a, b) in s.iter().zip(&d) {
        assert_eq!(a.shape(), b.shape(), "parameter shape mismatch");
        b.set_values(a.to_vec());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Pair(Tensor, Tensor);
    impl Module for Pair {
        fn params(&self) -> Vec<Tensor> {
            vec![self.0.clone(), self.1.clone()]
        }
    }

    #[test]
    fn num_params_counts_scalars() {
        let m = Pair(
            Tensor::param(vec![0.0; 6], &[2, 3]),
            Tensor::param(vec![0.0; 3], &[3]),
        );
        assert_eq!(m.num_params(), 9);
    }

    #[test]
    fn copy_params_transfers_values() {
        let a = Pair(
            Tensor::param(vec![1.0; 4], &[2, 2]),
            Tensor::param(vec![2.0; 2], &[2]),
        );
        let b = Pair(
            Tensor::param(vec![0.0; 4], &[2, 2]),
            Tensor::param(vec![0.0; 2], &[2]),
        );
        copy_params(&a, &b);
        assert_eq!(b.0.to_vec(), vec![1.0; 4]);
        assert_eq!(b.1.to_vec(), vec![2.0; 2]);
    }

    #[test]
    fn zero_grads_clears_all() {
        let m = Pair(
            Tensor::param(vec![0.0], &[1]),
            Tensor::param(vec![0.0], &[1]),
        );
        for p in m.params() {
            p.accumulate_grad(&[1.0]);
        }
        m.zero_grads();
        assert!(m.params().iter().all(|p| p.grad_vec().is_none()));
    }
}
