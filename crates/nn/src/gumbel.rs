//! Gumbel-softmax straight-through sampling (Jang et al., 2017) — the
//! reparameterization the paper uses to binarize the generator's token
//! selection (Eq. (1)).

use dar_tensor::{init, Rng, Tensor};

use crate::numeric::guard_finite;

/// Differentiable sample from `softmax((logits + Gumbel noise) / tau)`,
/// binarized with the straight-through trick: forward values are an exact
/// one-hot of the per-row argmax, while gradients flow through the soft
/// sample.
///
/// The scaled logits pass through [`guard_finite`] before the softmax:
/// at extreme temperatures `1/tau` overflows and `±Inf` scaled logits
/// would poison the max-subtraction into a NaN row. The guard is identity
/// on finite values, so ordinary temperatures are bit-unchanged.
pub fn gumbel_softmax_st(logits: &Tensor, tau: f32, rng: &mut Rng) -> Tensor {
    assert!(tau > 0.0, "temperature must be positive");
    let classes = *logits.shape().last().expect("logits need a class dim");
    let noise = Tensor::new(init::gumbel_noise(rng, logits.len()), logits.shape());
    let y = guard_finite(&logits.add(&noise).scale(1.0 / tau)).softmax();
    let hard = Tensor::one_hot(&y.argmax_rows(), classes).reshape(logits.shape());
    // values: y - y + hard == hard exactly; grads: d/dlogits of y.
    y.sub(&y.detach()).add(&hard)
}

/// Deterministic (no noise) straight-through binarization — used at eval
/// time so rationales are reproducible.
pub fn hard_softmax_st(logits: &Tensor) -> Tensor {
    let classes = *logits.shape().last().expect("logits need a class dim");
    let y = logits.softmax();
    let hard = Tensor::one_hot(&y.argmax_rows(), classes).reshape(logits.shape());
    y.sub(&y.detach()).add(&hard)
}

/// Plain Gumbel-softmax (soft, not binarized) — used by A2R's soft head.
pub fn gumbel_softmax_soft(logits: &Tensor, tau: f32, rng: &mut Rng) -> Tensor {
    assert!(tau > 0.0, "temperature must be positive");
    let noise = Tensor::new(init::gumbel_noise(rng, logits.len()), logits.shape());
    guard_finite(&logits.add(&noise).scale(1.0 / tau)).softmax()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dar_tensor::Tensor;

    #[test]
    fn st_outputs_are_exactly_binary() {
        let mut rng = dar_tensor::rng(0);
        let logits = Tensor::param(vec![0.3, -0.2, 1.5, 0.8, -1.0, 0.0], &[3, 2]);
        let y = gumbel_softmax_st(&logits, 1.0, &mut rng);
        for &v in y.to_vec().iter() {
            assert!(v == 0.0 || v == 1.0, "non-binary ST output {v}");
        }
        for row in y.to_vec().chunks(2) {
            assert_eq!(row.iter().sum::<f32>(), 1.0);
        }
    }

    #[test]
    fn st_gradient_flows_to_logits() {
        let mut rng = dar_tensor::rng(1);
        let logits = Tensor::param(vec![0.5, -0.5], &[1, 2]);
        let y = gumbel_softmax_st(&logits, 0.7, &mut rng);
        y.narrow(1, 0, 1).sum().backward();
        let g = logits.grad_vec().expect("no grad reached logits");
        assert!(g.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn low_temperature_tracks_argmax() {
        // With a large logit gap and tiny tau, the hard sample should almost
        // always pick the larger logit.
        let mut rng = dar_tensor::rng(2);
        let logits = Tensor::new(vec![5.0, -5.0], &[1, 2]);
        let mut picks0 = 0;
        for _ in 0..100 {
            let y = gumbel_softmax_st(&logits, 0.1, &mut rng);
            if y.to_vec()[0] == 1.0 {
                picks0 += 1;
            }
        }
        assert!(picks0 > 95, "picked argmax only {picks0}/100 times");
    }

    #[test]
    fn hard_softmax_is_deterministic() {
        let logits = Tensor::new(vec![0.2, 0.9, 1.4, -0.3], &[2, 2]);
        let a = hard_softmax_st(&logits).to_vec();
        let b = hard_softmax_st(&logits).to_vec();
        assert_eq!(a, b);
        assert_eq!(a, vec![0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn st_gradients_equal_soft_surrogate_gradients() {
        // The straight-through estimator cannot be finite-differenced
        // directly: its forward value is piecewise constant (an argmax
        // one-hot), so the numeric gradient is zero by design. The defining
        // property is instead that its *analytic* gradients are exactly the
        // soft sample's — verify that with an identical seeded noise draw.
        let vals = vec![0.4, -0.9, 1.3, 0.2, -0.5, 0.8];
        let w = Tensor::new(vec![1.0, -0.4, 0.6, -1.1, 0.3, 0.9], &[3, 2]);
        let tau = 0.7;

        let st_logits = Tensor::param(vals.clone(), &[3, 2]);
        let mut rng = dar_tensor::rng(42);
        let y = gumbel_softmax_st(&st_logits, tau, &mut rng);
        assert!(y.to_vec().iter().all(|&v| v == 0.0 || v == 1.0));
        y.mul(&w).sum().backward();
        let g_st = st_logits.grad_vec().unwrap();

        let soft_logits = Tensor::param(vals, &[3, 2]);
        let mut rng = dar_tensor::rng(42);
        let y_soft = gumbel_softmax_soft(&soft_logits, tau, &mut rng);
        y_soft.mul(&w).sum().backward();
        let g_soft = soft_logits.grad_vec().unwrap();

        assert_eq!(g_st, g_soft, "ST grads must equal the soft surrogate's");
        assert!(g_st.iter().any(|&g| g != 0.0));
    }

    #[test]
    fn soft_surrogate_gradcheck() {
        use dar_tensor::grad_check::check_gradients;
        // Finite-difference the soft path that the ST estimator's gradients
        // come from. A fresh seeded rng inside the closure makes the noise a
        // pure function of nothing, so `f` is deterministic in the logits.
        let logits = Tensor::param(vec![0.4, -0.9, 1.3, 0.2], &[2, 2]);
        let w = Tensor::new(vec![1.0, -0.4, 0.6, -1.1], &[2, 2]);
        let rep = check_gradients(
            &[logits],
            |ins| {
                let mut rng = dar_tensor::rng(7);
                gumbel_softmax_soft(&ins[0], 0.7, &mut rng).mul(&w).sum()
            },
            1e-2,
        );
        assert!(rep.ok(5e-2), "{rep:?}");
    }

    #[test]
    fn extreme_temperature_and_logits_stay_finite_and_binary() {
        // Regression: tau = 1e-6 scales ±40 logits to ±4e7 — well past the
        // range where a naive exp overflows. The sample must still be an
        // exact one-hot with finite soft-path gradients, under both rails.
        for rails in [true, false] {
            crate::numeric::with_guard_rails(rails, || {
                let mut rng = dar_tensor::rng(11);
                let logits = Tensor::param(vec![40.0, -40.0, -40.0, 40.0], &[2, 2]);
                let y = gumbel_softmax_st(&logits, 1e-6, &mut rng);
                let v = y.to_vec();
                assert!(
                    v.iter().all(|&x| x == 0.0 || x == 1.0),
                    "rails={rails}: non-binary output {v:?}"
                );
                assert_eq!(v, vec![1.0, 0.0, 0.0, 1.0], "rails={rails}");
                y.sum().backward();
                let g = logits.grad_vec().unwrap();
                assert!(g.iter().all(|x| x.is_finite()), "rails={rails}: {g:?}");
            });
        }
    }

    #[test]
    fn denormal_temperature_is_repaired_by_guard_rails() {
        // tau = 1e-45 makes 1/tau overflow to +Inf, so every scaled logit is
        // ±Inf (or NaN where a logit is ~0). With the rails on the guard
        // repairs them before softmax and the output is still a one-hot.
        crate::numeric::with_guard_rails(true, || {
            let mut rng = dar_tensor::rng(13);
            let logits = Tensor::new(vec![3.0, -2.0, -1.0, 4.0], &[2, 2]);
            let y = gumbel_softmax_st(&logits, 1e-45, &mut rng).to_vec();
            assert!(y.iter().all(|&x| x == 0.0 || x == 1.0), "{y:?}");
            for row in y.chunks(2) {
                assert_eq!(row.iter().sum::<f32>(), 1.0);
            }
        });
    }

    #[test]
    fn soft_sample_is_a_distribution() {
        let mut rng = dar_tensor::rng(3);
        let logits = Tensor::new(vec![0.0, 0.0, 0.0], &[1, 3]);
        let y = gumbel_softmax_soft(&logits, 1.0, &mut rng).to_vec();
        assert!((y.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(y.iter().all(|&p| p > 0.0));
    }
}
