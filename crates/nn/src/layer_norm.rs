//! Layer normalization over the last dimension (transformer substrate).

use dar_tensor::Tensor;

use crate::module::Module;
use crate::numeric::guard_denormals;

/// `y = gamma * (x - mean) / sqrt(var + eps) + beta`, per last-dim row.
pub struct LayerNorm {
    pub gamma: Tensor,
    pub beta: Tensor,
    eps: f32,
}

impl LayerNorm {
    pub fn new(dim: usize) -> Self {
        LayerNorm {
            gamma: Tensor::param(vec![1.0; dim], &[dim]),
            beta: Tensor::param(vec![0.0; dim], &[dim]),
            eps: 1e-5,
        }
    }

    pub fn forward(&self, x: &Tensor) -> Tensor {
        // Subnormal inputs make `centered.square()` underflow into garbage
        // statistics; flushing them to zero first costs nothing on normal
        // inputs (exact identity) and is disabled with the guard rails.
        let x = guard_denormals(x);
        let x = &x;
        // The blocked kernel backend ships a fused single-node layer norm
        // (vectorized forward + hand-written backward); the reference
        // backend keeps the composite graph so its float ordering — and
        // every golden pinned to it — is untouched.
        if dar_tensor::kernel_backend() == dar_tensor::KernelBackend::Blocked {
            return x.layer_norm(&self.gamma, &self.beta, self.eps);
        }
        let rank = x.shape().len();
        let axis = rank - 1;
        let mean = x.mean_axis(axis, true);
        let centered = x.sub(&mean);
        let var = centered.square().mean_axis(axis, true);
        let normed = centered.div(&var.add_scalar(self.eps).sqrt());
        normed.mul(&self.gamma).add(&self.beta)
    }
}

impl Module for LayerNorm {
    fn params(&self) -> Vec<Tensor> {
        vec![self.gamma.clone(), self.beta.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_rows_are_standardized() {
        let ln = LayerNorm::new(4);
        let x = Tensor::new(vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0], &[2, 4]);
        let y = ln.forward(&x).to_vec();
        for row in y.chunks(4) {
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn gamma_beta_affect_output() {
        let ln = LayerNorm::new(2);
        ln.gamma.set_values(vec![2.0, 2.0]);
        ln.beta.set_values(vec![1.0, 1.0]);
        let x = Tensor::new(vec![-1.0, 1.0], &[1, 2]);
        let y = ln.forward(&x).to_vec();
        assert!((y[0] - (-2.0 + 1.0) * (1.0 / (1.0f32 + 1e-5).sqrt())).abs() < 1e-2);
    }

    #[test]
    fn gradients_reach_gamma_and_beta() {
        let ln = LayerNorm::new(3);
        let x = Tensor::new(vec![0.5, -1.0, 2.0], &[1, 3]);
        ln.forward(&x).square().sum().backward();
        assert!(ln.gamma.grad_vec().is_some());
        assert!(ln.beta.grad_vec().is_some());
    }

    #[test]
    fn layer_norm_gradcheck_input_gamma_beta() {
        use dar_tensor::grad_check::check_gradients;
        let ln = LayerNorm::new(3);
        ln.gamma.set_values(vec![1.2, 0.8, -0.5]);
        ln.beta.set_values(vec![0.1, -0.2, 0.3]);
        let x = Tensor::param(vec![0.5, -1.0, 2.0, 1.5, 0.3, -0.7], &[2, 3]);
        // Varying weights keep the per-row grads from collapsing to the
        // trivial "normalized rows sum to zero" case.
        let w = Tensor::new(vec![1.0, -2.0, 0.5, 0.7, 1.3, -0.4], &[2, 3]);
        let inputs = vec![x, ln.gamma.clone(), ln.beta.clone()];
        let rep = check_gradients(&inputs, |ins| ln.forward(&ins[0]).mul(&w).sum(), 1e-2);
        assert!(rep.ok(5e-2), "{rep:?}");
    }

    #[test]
    fn denormal_rows_are_flushed_not_amplified() {
        // A row of subnormals has variance ~0; without the flush the eps
        // floor turns it into a near-zero row anyway, but mixed rows of
        // denormals and normals must normalize off the normal values only.
        let ln = LayerNorm::new(2);
        let x = Tensor::new(vec![1.0e-40, 3.0, -2.0e-39, -3.0], &[2, 2]);
        let y = crate::numeric::with_guard_rails(true, || ln.forward(&x).to_vec());
        let z = ln.forward(&Tensor::new(vec![0.0, 3.0, 0.0, -3.0], &[2, 2]));
        assert_eq!(y, z.to_vec(), "flush must match explicit zeros");
        assert!(y.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn works_on_3d_input() {
        let ln = LayerNorm::new(4);
        let x = Tensor::ones(&[2, 3, 4]);
        assert_eq!(ln.forward(&x).shape(), &[2, 3, 4]);
    }
}
