//! `dar-nn`: neural-network layers built on [`dar_tensor`], providing every
//! component the DAR paper's players are assembled from.
//!
//! * [`Linear`], [`Embedding`], [`Dropout`], [`LayerNorm`] — basic layers.
//! * [`Gru`] / [`BiGru`] — the bidirectional GRU encoders used by both the
//!   generator and the predictors (paper §V-A "Models").
//! * [`gumbel`] — Gumbel-softmax straight-through binarization for the
//!   rationale mask `M` of Eq. (1).
//! * [`pooling`] — masked max/mean pooling over time.
//! * [`TransformerEncoder`] — a small pre-trainable transformer standing in
//!   for BERT in the Table VI experiment.
//! * [`loss`] — cross-entropy, KL and JS divergences, accuracy.
//! * [`numeric`] — default-on guard rails that repair NaN/Inf in the
//!   hazard-prone layers (disable with `DAR_GUARDRAILS=0` for bit-exact
//!   raw paths; identical on healthy inputs either way).

pub mod dropout;
pub mod embedding;
pub mod gru;
pub mod gumbel;
pub mod layer_norm;
pub mod linear;
pub mod loss;
pub mod module;
pub mod numeric;
pub mod pooling;
pub mod transformer;

pub use dropout::Dropout;
pub use embedding::Embedding;
pub use gru::{BiGru, Gru};
pub use layer_norm::LayerNorm;
pub use linear::Linear;
pub use module::Module;
pub use numeric::{guard_rails_enabled, set_guard_rails, with_guard_rails};
pub use transformer::{TransformerConfig, TransformerEncoder};

pub use dar_tensor::{rng, Rng, Tensor};
