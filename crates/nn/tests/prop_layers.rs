//! Property tests for layer invariants.

use dar_nn::gumbel::{gumbel_softmax_st, hard_softmax_st};
use dar_nn::loss::{accuracy, cross_entropy, empirical_entropy, js_div_logits};
use dar_nn::pooling::{masked_max_pool, masked_mean_pool};
use dar_nn::{BiGru, LayerNorm, Module};
use dar_tensor::Tensor;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Straight-through samples are always exact one-hots regardless of
    /// logits, temperature, or seed.
    #[test]
    fn st_samples_are_one_hot(
        logits in prop::collection::vec(-3.0f32..3.0, 8),
        tau in 0.2f32..2.0,
        seed in 0u64..500,
    ) {
        let mut rng = dar_tensor::rng(seed);
        let t = Tensor::param(logits, &[4, 2]);
        let y = gumbel_softmax_st(&t, tau, &mut rng).to_vec();
        for row in y.chunks(2) {
            prop_assert!(row.iter().all(|&v| v == 0.0 || v == 1.0));
            prop_assert_eq!(row.iter().sum::<f32>(), 1.0);
        }
    }

    /// Deterministic hard softmax picks the larger logit.
    #[test]
    fn hard_softmax_is_argmax(a in -3.0f32..3.0, b in -3.0f32..3.0) {
        prop_assume!((a - b).abs() > 1e-3);
        let t = Tensor::new(vec![a, b], &[1, 2]);
        let y = hard_softmax_st(&t).to_vec();
        if a > b {
            prop_assert_eq!(y, vec![1.0, 0.0]);
        } else {
            prop_assert_eq!(y, vec![0.0, 1.0]);
        }
    }

    /// Max pool over a fully-real mask equals plain max; mean pool is
    /// bounded by min/max of inputs.
    #[test]
    fn pooling_bounds(v in prop::collection::vec(-5.0f32..5.0, 6)) {
        let x = Tensor::new(v.clone(), &[1, 6, 1]);
        let mask = Tensor::ones(&[1, 6]);
        let mx = masked_max_pool(&x, &mask).to_vec()[0];
        let mn = masked_mean_pool(&x, &mask).to_vec()[0];
        let vmax = v.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let vmin = v.iter().copied().fold(f32::INFINITY, f32::min);
        prop_assert!((mx - vmax).abs() < 1e-4);
        prop_assert!(mn >= vmin - 1e-4 && mn <= vmax + 1e-4);
    }

    /// Pooling never looks at padded positions.
    #[test]
    fn pooling_pad_invariance(
        real in prop::collection::vec(-2.0f32..2.0, 3),
        junk in prop::collection::vec(-100.0f32..100.0, 3),
    ) {
        let mut v = real.clone();
        v.extend(junk);
        let x = Tensor::new(v, &[1, 6, 1]);
        let mask = Tensor::new(vec![1., 1., 1., 0., 0., 0.], &[1, 6]);
        let short = Tensor::new(real, &[1, 3, 1]);
        let smask = Tensor::ones(&[1, 3]);
        let a = masked_max_pool(&x, &mask).to_vec();
        let b = masked_max_pool(&short, &smask).to_vec();
        prop_assert!((a[0] - b[0]).abs() < 1e-5);
        let a = masked_mean_pool(&x, &mask).to_vec();
        let b = masked_mean_pool(&short, &smask).to_vec();
        prop_assert!((a[0] - b[0]).abs() < 1e-5);
    }

    /// Lemma 3's bound: a predictor that cannot see the input (one shared
    /// output distribution) has CE at least the empirical label entropy,
    /// with equality only when it matches the label marginal.
    #[test]
    fn ce_lower_bound_for_constant_predictor(
        row in prop::collection::vec(-4.0f32..4.0, 2),
        labels in prop::collection::vec(0usize..2, 6),
    ) {
        let logits: Vec<f32> = row.iter().cycle().take(12).copied().collect();
        let l = Tensor::new(logits, &[6, 2]);
        let ce = cross_entropy(&l, &labels).item();
        let h = empirical_entropy(&labels, 2);
        prop_assert!(ce >= h - 1e-4, "CE {} < H {}", ce, h);
    }

    /// JS divergence is symmetric and bounded by ln 2.
    #[test]
    fn js_properties(
        a in prop::collection::vec(-4.0f32..4.0, 6),
        b in prop::collection::vec(-4.0f32..4.0, 6),
    ) {
        let ta = Tensor::new(a, &[3, 2]);
        let tb = Tensor::new(b, &[3, 2]);
        let ab = js_div_logits(&ta, &tb).item();
        let ba = js_div_logits(&tb, &ta).item();
        prop_assert!((ab - ba).abs() < 1e-5);
        prop_assert!(ab >= -1e-6 && ab <= std::f32::consts::LN_2 + 1e-5);
    }

    /// Accuracy is invariant to positive rescaling of logits.
    #[test]
    fn accuracy_scale_invariant(
        logits in prop::collection::vec(-3.0f32..3.0, 8),
        scale in 0.1f32..10.0,
        labels in prop::collection::vec(0usize..2, 4),
    ) {
        let l1 = Tensor::new(logits.clone(), &[4, 2]);
        let l2 = Tensor::new(logits.iter().map(|x| x * scale).collect(), &[4, 2]);
        prop_assert_eq!(accuracy(&l1, &labels), accuracy(&l2, &labels));
    }

    /// LayerNorm output is invariant to input shift and positive scale.
    #[test]
    fn layernorm_invariances(v in prop::collection::vec(-2.0f32..2.0, 8), shift in -5.0f32..5.0) {
        // Require some spread so normalization is well-conditioned.
        let spread = v.iter().cloned().fold(f32::NEG_INFINITY, f32::max)
            - v.iter().cloned().fold(f32::INFINITY, f32::min);
        prop_assume!(spread > 0.5);
        let ln = LayerNorm::new(8);
        let a = ln.forward(&Tensor::new(v.clone(), &[1, 8])).to_vec();
        let b = ln
            .forward(&Tensor::new(v.iter().map(|x| x + shift).collect(), &[1, 8]))
            .to_vec();
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-2, "shift variance {x} vs {y}");
        }
    }

    /// BiGru encodings of a batch equal the encodings of each sequence run
    /// alone (no cross-batch leakage).
    #[test]
    fn bigru_batch_independence(seed in 0u64..200) {
        let mut rng = dar_tensor::rng(seed);
        let enc = BiGru::new(&mut rng, 2, 3);
        let a = Tensor::new(vec![0.1, 0.2, 0.3, 0.4], &[1, 2, 2]);
        let b = Tensor::new(vec![-0.5, 0.5, 0.7, -0.7], &[1, 2, 2]);
        let batch = Tensor::new(
            vec![0.1, 0.2, 0.3, 0.4, -0.5, 0.5, 0.7, -0.7],
            &[2, 2, 2],
        );
        let ya = enc.forward(&a, None).to_vec();
        let yb = enc.forward(&b, None).to_vec();
        let yab = enc.forward(&batch, None).to_vec();
        for (i, x) in ya.iter().enumerate() {
            prop_assert!((x - yab[i]).abs() < 1e-5);
        }
        for (i, x) in yb.iter().enumerate() {
            prop_assert!((x - yab[ya.len() + i]).abs() < 1e-5);
        }
        prop_assert_eq!(enc.params().len(), 8);
    }
}
