//! Property-based finite-difference gradient checks for every
//! differentiable op, over random shapes and values.

use dar_tensor::grad_check::check_gradients;
use dar_tensor::ops::structural::concat;
use dar_tensor::Tensor;
use proptest::prelude::*;

const EPS: f32 = 1e-2;
const TOL: f32 = 5e-2;

/// Random values bounded away from regions where f32 finite differences are
/// unreliable (huge magnitudes, kinks).
fn values(n: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec((-2.0f32..2.0).prop_map(|x| x), n)
}

/// Smooth positive values for div/ln/sqrt denominators.
fn pos_values(n: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(0.3f32..2.0, n)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn add_mul_grads(rows in 1usize..4, cols in 1usize..5, seed in 0u64..1000) {
        let n = rows * cols;
        let mut rng = dar_tensor::rng(seed);
        let a = Tensor::param(dar_tensor::init::uniform(&mut rng, n, -1.0, 1.0), &[rows, cols]);
        let b = Tensor::param(dar_tensor::init::uniform(&mut rng, n, -1.0, 1.0), &[rows, cols]);
        let rep = check_gradients(&[a, b], |ins| ins[0].mul(&ins[1]).add(&ins[0]).sum(), EPS);
        prop_assert!(rep.ok(TOL), "{rep:?}");
    }

    #[test]
    fn broadcast_mul_grads(rows in 1usize..4, cols in 1usize..4, v in values(12)) {
        let a = Tensor::param(v[..rows * cols].to_vec(), &[rows, cols]);
        let b = Tensor::param(v[..cols].to_vec(), &[1, cols]);
        let rep = check_gradients(&[a, b], |ins| ins[0].mul(&ins[1]).sum(), EPS);
        prop_assert!(rep.ok(TOL), "{rep:?}");
    }

    #[test]
    fn div_grads(v in pos_values(6), w in pos_values(6)) {
        let a = Tensor::param(v, &[2, 3]);
        let b = Tensor::param(w, &[2, 3]);
        let rep = check_gradients(&[a, b], |ins| ins[0].div(&ins[1]).sum(), EPS);
        prop_assert!(rep.ok(TOL), "{rep:?}");
    }

    #[test]
    fn matmul_grads(m in 1usize..4, k in 1usize..4, n in 1usize..4, seed in 0u64..1000) {
        let mut rng = dar_tensor::rng(seed);
        let a = Tensor::param(dar_tensor::init::uniform(&mut rng, m * k, -1.0, 1.0), &[m, k]);
        let b = Tensor::param(dar_tensor::init::uniform(&mut rng, k * n, -1.0, 1.0), &[k, n]);
        let rep = check_gradients(&[a, b], |ins| ins[0].matmul(&ins[1]).sum(), EPS);
        prop_assert!(rep.ok(TOL), "{rep:?}");
    }

    #[test]
    fn bmm_grads(seed in 0u64..1000) {
        let mut rng = dar_tensor::rng(seed);
        let a = Tensor::param(dar_tensor::init::uniform(&mut rng, 2 * 2 * 3, -1.0, 1.0), &[2, 2, 3]);
        let b = Tensor::param(dar_tensor::init::uniform(&mut rng, 2 * 3 * 2, -1.0, 1.0), &[2, 3, 2]);
        let rep = check_gradients(&[a, b], |ins| ins[0].bmm(&ins[1]).sum(), EPS);
        prop_assert!(rep.ok(TOL), "{rep:?}");
    }

    #[test]
    fn activation_grads(v in values(8)) {
        // Compose several activations so one check covers their chain rule.
        let x = Tensor::param(v, &[2, 4]);
        let rep = check_gradients(
            &[x],
            |ins| ins[0].sigmoid().add(&ins[0].tanh()).add(&ins[0].gelu()).sum(),
            EPS,
        );
        prop_assert!(rep.ok(TOL), "{rep:?}");
    }

    #[test]
    fn exp_ln_grads(v in pos_values(6)) {
        let x = Tensor::param(v, &[6]);
        let rep = check_gradients(&[x], |ins| ins[0].ln().exp().sum(), EPS);
        prop_assert!(rep.ok(TOL), "{rep:?}");
    }

    #[test]
    fn softmax_grads(v in values(9)) {
        let x = Tensor::param(v.clone(), &[3, 3]);
        let w = Tensor::new(v.iter().map(|x| x + 0.5).collect(), &[3, 3]);
        let rep = check_gradients(&[x], move |ins| ins[0].softmax().mul(&w).sum(), EPS);
        prop_assert!(rep.ok(TOL), "{rep:?}");
    }

    #[test]
    fn log_softmax_grads(v in values(8)) {
        let x = Tensor::param(v.clone(), &[2, 4]);
        let w = Tensor::new(v.iter().map(|x| x - 0.25).collect(), &[2, 4]);
        let rep = check_gradients(&[x], move |ins| ins[0].log_softmax().mul(&w).sum(), EPS);
        prop_assert!(rep.ok(TOL), "{rep:?}");
    }

    #[test]
    fn reduce_grads(v in values(12)) {
        let x = Tensor::param(v, &[2, 3, 2]);
        let rep = check_gradients(
            &[x],
            |ins| {
                ins[0]
                    .sum_axis(1, false)
                    .mean_axis(0, false)
                    .sum()
                    .add(&ins[0].mean())
            },
            EPS,
        );
        prop_assert!(rep.ok(TOL), "{rep:?}");
    }

    #[test]
    fn structural_grads(v in values(12)) {
        let x = Tensor::param(v[..6].to_vec(), &[2, 3]);
        let y = Tensor::param(v[6..].to_vec(), &[2, 3]);
        let rep = check_gradients(
            &[x, y],
            |ins| {
                let c = concat(&[ins[0].clone(), ins[1].clone()], 1); // [2,6]
                c.narrow(1, 1, 3).transpose().reshape(&[6]).square().sum()
            },
            EPS,
        );
        prop_assert!(rep.ok(TOL), "{rep:?}");
    }

    #[test]
    fn gather_grads(v in values(8), ids in prop::collection::vec(0usize..4, 1..6)) {
        let table = Tensor::param(v, &[4, 2]);
        let rep = check_gradients(&[table], move |ins| ins[0].gather_rows(&ids).square().sum(), EPS);
        prop_assert!(rep.ok(TOL), "{rep:?}");
    }

    #[test]
    fn max_axis_grads(seed in 0u64..1000) {
        // Separate the competing elements of each reduced group (axis 1 of
        // [2,3,2]: linear index/2 % 3 is the axis coordinate) by more than
        // the jitter range, so the argmax is stable under ±eps probing.
        let mut rng = dar_tensor::rng(seed);
        let mut v = dar_tensor::init::uniform(&mut rng, 12, -1.0, 1.0);
        for (i, x) in v.iter_mut().enumerate() {
            *x += ((i / 2) % 3) as f32 * 3.0;
        }
        let x = Tensor::param(v, &[2, 3, 2]);
        let rep = check_gradients(&[x], |ins| ins[0].max_axis(1, false).sum(), EPS);
        prop_assert!(rep.ok(TOL), "{rep:?}");
    }

    #[test]
    fn softmax_rows_always_sum_to_one(v in values(20)) {
        let x = Tensor::new(v, &[4, 5]);
        let y = x.softmax();
        for row in y.to_vec().chunks(5) {
            let s: f32 = row.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-5);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn broadcast_matches_reference(rows in 1usize..5, cols in 1usize..5, seed in 0u64..1000) {
        // Broadcast [rows, cols] + [cols] must equal manual row-wise add.
        let mut rng = dar_tensor::rng(seed);
        let av = dar_tensor::init::uniform(&mut rng, rows * cols, -1.0, 1.0);
        let bv = dar_tensor::init::uniform(&mut rng, cols, -1.0, 1.0);
        let a = Tensor::new(av.clone(), &[rows, cols]);
        let b = Tensor::new(bv.clone(), &[cols]);
        let y = a.add(&b).to_vec();
        for r in 0..rows {
            for c in 0..cols {
                prop_assert!((y[r * cols + c] - (av[r * cols + c] + bv[c])).abs() < 1e-6);
            }
        }
    }
}
