//! Shape and stride arithmetic, including NumPy-style broadcasting rules.

/// Number of elements implied by a shape.
pub fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Row-major (C-order) strides for a shape.
pub fn strides(shape: &[usize]) -> Vec<usize> {
    let mut s = vec![1usize; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        s[i] = s[i + 1] * shape[i + 1];
    }
    s
}

/// The broadcast result shape of two shapes, or `None` if incompatible.
///
/// Follows the NumPy rule: align shapes on the right; each dimension pair
/// must be equal or one of them must be 1.
pub fn broadcast_shape(a: &[usize], b: &[usize]) -> Option<Vec<usize>> {
    let rank = a.len().max(b.len());
    let mut out = vec![0usize; rank];
    for i in 0..rank {
        let da = if i < rank - a.len() {
            1
        } else {
            a[i - (rank - a.len())]
        };
        let db = if i < rank - b.len() {
            1
        } else {
            b[i - (rank - b.len())]
        };
        if da == db {
            out[i] = da;
        } else if da == 1 {
            out[i] = db;
        } else if db == 1 {
            out[i] = da;
        } else {
            return None;
        }
    }
    Some(out)
}

/// Strides for indexing `shape` as if it had been broadcast to `out_shape`:
/// broadcast dimensions get stride 0.
pub fn broadcast_strides(shape: &[usize], out_shape: &[usize]) -> Vec<usize> {
    let rank = out_shape.len();
    let base = strides(shape);
    let mut out = vec![0usize; rank];
    let offset = rank - shape.len();
    for i in 0..shape.len() {
        out[offset + i] = if shape[i] == 1 { 0 } else { base[i] };
    }
    out
}

/// Map a linear index in `out_shape` to a linear index in a tensor with the
/// given broadcast strides.
#[inline]
pub fn broadcast_index(lin: usize, out_strides: &[usize], bcast_strides: &[usize]) -> usize {
    let mut rem = lin;
    let mut idx = 0usize;
    for (os, bs) in out_strides.iter().zip(bcast_strides) {
        let coord = rem / os;
        rem %= os;
        idx += coord * bs;
    }
    idx
}

/// Sum-reduce `grad` (shaped `from`) back down to `to` by summing over the
/// dimensions that were broadcast. This is the adjoint of broadcasting.
pub fn reduce_grad_to_shape(grad: &[f32], from: &[usize], to: &[usize]) -> Vec<f32> {
    if from == to {
        return grad.to_vec();
    }
    let mut out = vec![0.0f32; numel(to)];
    let out_strides_full = {
        // `to` aligned to the right of `from`'s rank, with stride 0 where
        // `to` has size 1 (or the dimension is missing).
        broadcast_strides(to, from)
    };
    let from_strides = strides(from);
    for (lin, g) in grad.iter().enumerate() {
        let idx = broadcast_index(lin, &from_strides, &out_strides_full);
        out[idx] += *g;
    }
    out
}

/// Validate that `values.len()` matches the shape; panics with a clear
/// message otherwise (programmer error).
pub fn check_numel(values_len: usize, shape: &[usize]) {
    assert_eq!(
        values_len,
        numel(shape),
        "value buffer of length {values_len} does not match shape {shape:?}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(strides(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides(&[5]), vec![1]);
        assert_eq!(strides(&[]), Vec::<usize>::new());
    }

    #[test]
    fn numel_matches_product() {
        assert_eq!(numel(&[2, 3, 4]), 24);
        assert_eq!(numel(&[]), 1);
    }

    #[test]
    fn broadcast_same_shape() {
        assert_eq!(broadcast_shape(&[2, 3], &[2, 3]), Some(vec![2, 3]));
    }

    #[test]
    fn broadcast_scalar() {
        assert_eq!(broadcast_shape(&[2, 3], &[1]), Some(vec![2, 3]));
        assert_eq!(broadcast_shape(&[1], &[4, 5]), Some(vec![4, 5]));
    }

    #[test]
    fn broadcast_trailing_one() {
        assert_eq!(broadcast_shape(&[4, 6, 1], &[4, 6, 8]), Some(vec![4, 6, 8]));
        assert_eq!(broadcast_shape(&[6, 8], &[4, 6, 8]), Some(vec![4, 6, 8]));
    }

    #[test]
    fn broadcast_incompatible() {
        assert_eq!(broadcast_shape(&[2, 3], &[3, 2]), None);
        assert_eq!(broadcast_shape(&[2], &[3]), None);
    }

    #[test]
    fn reduce_grad_row_broadcast() {
        // grad of shape [2,3] reduced to a row vector [1,3]
        let g = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let r = reduce_grad_to_shape(&g, &[2, 3], &[1, 3]);
        assert_eq!(r, vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn reduce_grad_col_broadcast() {
        let g = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let r = reduce_grad_to_shape(&g, &[2, 3], &[2, 1]);
        assert_eq!(r, vec![6.0, 15.0]);
    }

    #[test]
    fn reduce_grad_to_scalar_shape() {
        let g = vec![1.0, 2.0, 3.0, 4.0];
        let r = reduce_grad_to_shape(&g, &[2, 2], &[1]);
        assert_eq!(r, vec![10.0]);
    }

    #[test]
    fn reduce_grad_missing_leading_dim() {
        let g = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let r = reduce_grad_to_shape(&g, &[2, 3], &[3]);
        assert_eq!(r, vec![5.0, 7.0, 9.0]);
    }
}
