//! Deterministic NaN/Inf taint provenance.
//!
//! Every graph node records the name of the op that produced it (see
//! [`Tensor::op`](crate::Tensor::op)). With taint mode enabled — `DAR_TAINT=1`
//! in the environment, or [`set_taint_mode`] per thread — each op result is
//! scanned for non-finite values as it is constructed, and the *first*
//! non-finite value observed on the thread is recorded as a [`TaintRecord`]
//! naming the originating op, the node id, its shape, and the flat index of
//! the first bad element. Downstream fault handlers (the training guards,
//! the serving breaker) read that record to attribute a NaN loss or a
//! non-finite inference output to the op where it was born, instead of
//! reporting only "NaN loss".
//!
//! The record is first-wins: once a taint is latched, later non-finite
//! results do not overwrite it (they are downstream propagation, not the
//! origin). Call [`clear_taint`] at the start of each unit of work (train
//! step, inference batch) so attribution is fresh.
//!
//! Determinism: op results are constructed on the thread that called the op
//! — `dar-par` shards only fill buffers, the `Tensor` node is always built
//! on the caller thread — so the scan order is the serial element order and
//! the recorded origin is identical for any `DAR_THREADS` budget.
//!
//! Cost: one `Cell` read per op when the mode is off; one linear scan of
//! the output buffer per op when on (and no taint is latched yet). The scan
//! is opt-in precisely so the hot path stays free of it by default.

use std::cell::{Cell, RefCell};

/// Where a non-finite value first appeared.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaintRecord {
    /// Name of the op that produced the value (e.g. `"div"`, `"exp"`).
    pub op: &'static str,
    /// Stable id of the graph node (see [`Tensor::id`](crate::Tensor::id)).
    pub node_id: u64,
    /// Shape of the tainted output.
    pub shape: Vec<usize>,
    /// Flat index of the first non-finite element.
    pub first_bad_index: usize,
}

thread_local! {
    static TAINT_MODE: Cell<bool> = Cell::new(env_taint_default());
    static FIRST_TAINT: RefCell<Option<TaintRecord>> = const { RefCell::new(None) };
}

/// The process-wide default, read once per thread: `DAR_TAINT=1` (or any
/// value other than `0`/empty) turns the scan on for every thread,
/// including `dar-par` pool workers and `dar-serve` replicas.
fn env_taint_default() -> bool {
    match std::env::var("DAR_TAINT") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => false,
    }
}

/// Whether taint scanning is on for this thread.
pub fn taint_enabled() -> bool {
    TAINT_MODE.with(|c| c.get())
}

/// Turn taint scanning on or off for this thread (overrides `DAR_TAINT`).
pub fn set_taint_mode(on: bool) {
    TAINT_MODE.with(|c| c.set(on));
}

/// The first taint latched on this thread since the last [`clear_taint`].
pub fn first_taint() -> Option<TaintRecord> {
    FIRST_TAINT.with(|slot| slot.borrow().clone())
}

/// Drop any latched taint so the next scan attributes afresh.
pub fn clear_taint() {
    FIRST_TAINT.with(|slot| *slot.borrow_mut() = None);
}

/// Scan an op result and latch a [`TaintRecord`] if it holds the first
/// non-finite value seen on this thread. No-op when the mode is off or a
/// taint is already latched (first-wins).
pub(crate) fn scan(op: &'static str, node_id: u64, shape: &[usize], values: &[f32]) {
    if !taint_enabled() {
        return;
    }
    FIRST_TAINT.with(|slot| {
        let mut slot = slot.borrow_mut();
        if slot.is_some() {
            return;
        }
        if let Some(idx) = values.iter().position(|v| !v.is_finite()) {
            *slot = Some(TaintRecord {
                op,
                node_id,
                shape: shape.to_vec(),
                first_bad_index: idx,
            });
            dar_obs::event(dar_obs::ObsEvent::TaintLatched {
                op: op.to_string(),
                node_id,
                first_bad_index: idx as u64,
            });
            dar_obs::inc("tensor.taints_latched");
        }
    });
}

/// Build the [`DarError::NonFinite`](crate::DarError::NonFinite) for the
/// latched taint, falling back to attributing `fallback_op` when nothing
/// was latched (mode off, or the bad value arrived from outside the graph).
pub fn non_finite_error(fallback_op: &'static str) -> crate::DarError {
    match first_taint() {
        Some(t) => crate::DarError::NonFinite {
            op: t.op,
            node_id: t.node_id,
            shape: t.shape,
            first_bad_index: t.first_bad_index,
        },
        None => crate::DarError::NonFinite {
            op: fallback_op,
            node_id: 0,
            shape: Vec::new(),
            first_bad_index: 0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    /// Serialize taint tests: they mutate the same thread-local slot and
    /// cargo runs #[test]s of one binary on separate threads, but each
    /// test's state is its own thread's — so no lock is actually needed;
    /// this exists to document the invariant.
    fn with_taint<T>(f: impl FnOnce() -> T) -> T {
        set_taint_mode(true);
        clear_taint();
        let out = f();
        clear_taint();
        set_taint_mode(false);
        out
    }

    #[test]
    fn off_by_default_and_costs_nothing() {
        clear_taint();
        let a = Tensor::new(vec![f32::NAN], &[1]);
        let _ = a.add_scalar(1.0);
        assert!(first_taint().is_none(), "taint latched with mode off");
    }

    #[test]
    fn first_taint_wins_and_names_the_origin_op() {
        with_taint(|| {
            let zero = Tensor::new(vec![0.0], &[1]);
            let bad = zero.div(&zero); // 0/0 = NaN born in `div`
            let worse = bad.exp(); // propagation, not origin
            assert!(worse.to_vec()[0].is_nan());
            let t = first_taint().expect("no taint latched");
            assert_eq!(t.op, "div");
            assert_eq!(t.node_id, bad.id());
            assert_eq!(t.shape, vec![1]);
            assert_eq!(t.first_bad_index, 0);
        });
    }

    #[test]
    fn clear_resets_attribution() {
        with_taint(|| {
            let zero = Tensor::new(vec![0.0], &[1]);
            let _ = zero.div(&zero);
            assert_eq!(first_taint().unwrap().op, "div");
            clear_taint();
            let inf = Tensor::new(vec![f32::MAX], &[1]).exp();
            assert!(inf.to_vec()[0].is_infinite());
            assert_eq!(first_taint().unwrap().op, "exp");
        });
    }

    #[test]
    fn leaf_taint_is_attributed_to_the_leaf() {
        with_taint(|| {
            let _ = Tensor::new(vec![1.0, f32::INFINITY], &[2]);
            let t = first_taint().expect("leaf scan missing");
            assert_eq!(t.op, "leaf");
            assert_eq!(t.first_bad_index, 1);
        });
    }

    #[test]
    fn error_helper_carries_the_record() {
        with_taint(|| {
            let zero = Tensor::new(vec![0.0, 0.0], &[2]);
            let _ = zero.div(&zero);
            match non_finite_error("loss") {
                crate::DarError::NonFinite { op, shape, .. } => {
                    assert_eq!(op, "div");
                    assert_eq!(shape, vec![2]);
                }
                other => panic!("wrong error {other:?}"),
            }
            clear_taint();
            match non_finite_error("loss") {
                crate::DarError::NonFinite { op, .. } => assert_eq!(op, "loss"),
                other => panic!("wrong error {other:?}"),
            }
        });
    }
}
