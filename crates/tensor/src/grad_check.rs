//! Finite-difference gradient checking, shared by the test suites of every
//! downstream crate.

use crate::Tensor;

/// Result of a gradient check: largest absolute and relative error seen.
#[derive(Debug, Clone, Copy)]
pub struct GradCheckReport {
    pub max_abs_err: f32,
    pub max_rel_err: f32,
}

impl GradCheckReport {
    /// True when every element is within `tol`.
    ///
    /// `max_rel_err` is already a per-element abs-or-rel criterion: each
    /// element's error is divided by `max(|analytic|, |numeric|, REL_FLOOR)`,
    /// so small-magnitude gradients are judged absolutely (error / REL_FLOOR)
    /// and large ones relatively. The old semantics
    /// (`max_rel_err < tol || max_abs_err < tol`) compared two *global*
    /// maxima: one badly wrong element passed whenever some other element
    /// kept the unrelated criterion's maximum small.
    pub fn ok(&self, tol: f32) -> bool {
        self.max_rel_err < tol
    }
}

/// Gradient magnitudes below this are compared absolutely (scaled by the
/// floor) rather than relatively, so noise around zero does not dominate.
pub const REL_FLOOR: f32 = 1e-2;

/// Compare the autograd gradient of `f` w.r.t. `inputs` against central
/// finite differences.
///
/// `f` must be a pure function of the input values: it is re-evaluated many
/// times with perturbed inputs. The closure receives the same tensors each
/// call (values mutated in place between calls).
pub fn check_gradients(
    inputs: &[Tensor],
    f: impl Fn(&[Tensor]) -> Tensor,
    eps: f32,
) -> GradCheckReport {
    // Analytic pass.
    for t in inputs {
        t.zero_grad();
    }
    let loss = f(inputs);
    assert_eq!(loss.len(), 1, "grad check requires a scalar loss");
    loss.backward();
    let analytic: Vec<Vec<f32>> = inputs
        .iter()
        .map(|t| t.grad_vec().unwrap_or_else(|| vec![0.0; t.len()]))
        .collect();

    let mut max_abs = 0.0f32;
    let mut max_rel = 0.0f32;
    for (ti, t) in inputs.iter().enumerate() {
        for i in 0..t.len() {
            let orig = t.values()[i];
            t.update_values(|v| v[i] = orig + eps);
            let up = crate::no_grad(|| f(inputs)).item();
            t.update_values(|v| v[i] = orig - eps);
            let down = crate::no_grad(|| f(inputs)).item();
            t.update_values(|v| v[i] = orig);
            let numeric = (up - down) / (2.0 * eps);
            let a = analytic[ti][i];
            let abs = (a - numeric).abs();
            let rel = abs / a.abs().max(numeric.abs()).max(REL_FLOOR);
            max_abs = max_abs.max(abs);
            max_rel = max_rel.max(rel);
        }
    }
    GradCheckReport {
        max_abs_err: max_abs,
        max_rel_err: max_rel,
    }
}

#[cfg(test)]
mod tests {
    use super::check_gradients;
    use crate::Tensor;

    #[test]
    fn quadratic_gradient_matches() {
        let x = Tensor::param(vec![1.5, -0.5, 2.0], &[3]);
        let rep = check_gradients(&[x], |ins| ins[0].square().sum(), 1e-3);
        assert!(rep.ok(1e-2), "{rep:?}");
    }

    #[test]
    fn detects_wrong_gradient() {
        // A function whose autograd gradient is deliberately broken via
        // detach: check must report a large error.
        let x = Tensor::param(vec![2.0], &[1]);
        let rep = check_gradients(
            &[x],
            |ins| ins[0].detach().square().sum().add(&ins[0].sum()),
            1e-3,
        );
        // Analytic grad = 1 (only the linear term), numeric ≈ 2x + 1 = 5.
        assert!(rep.max_abs_err > 1.0, "{rep:?}");
    }

    #[test]
    fn per_element_tolerance_rejects_what_global_disjunction_passed() {
        // Element 0's gradient is 100% wrong in relative terms (analytic 0
        // vs numeric 0.04) but its absolute error stays under tol, and
        // element 1 is exact. The old `max_rel_err < tol || max_abs_err <
        // tol` therefore accepted this report through the max_abs branch;
        // the per-element abs-or-rel criterion must reject it.
        let x = Tensor::param(vec![1.0, 1.0], &[2]);
        let c1 = Tensor::new(vec![0.04, 0.0], &[2]);
        let c2 = Tensor::new(vec![0.0, 1.0], &[2]);
        let rep = check_gradients(
            &[x],
            |ins| ins[0].detach().mul(&c1).sum().add(&ins[0].mul(&c2).sum()),
            1e-3,
        );
        let tol = 5e-2;
        assert!(rep.max_abs_err < tol, "premise broken: {rep:?}");
        assert!(!rep.ok(tol), "badly wrong element slipped through: {rep:?}");
    }
}
