//! Optimizers over explicit parameter lists.
//!
//! Parameters are identified by [`crate::Tensor::id`], so per-parameter
//! optimizer state survives across steps as long as the same tensors are
//! passed in.

mod adam;
mod sgd;

pub use adam::{Adam, AdamConfig, AdamState};
pub use sgd::Sgd;

use crate::Tensor;

/// A first-order optimizer over a set of parameters.
pub trait Optimizer {
    /// Apply one update step using the gradients currently accumulated on
    /// `params`, then leave the gradients untouched (call
    /// [`zero_grads`] afterwards).
    fn step(&mut self, params: &[Tensor]);

    /// Learning rate currently in effect.
    fn lr(&self) -> f32;

    /// Override the learning rate (schedules).
    fn set_lr(&mut self, lr: f32);
}

/// Clear gradients on every parameter.
pub fn zero_grads(params: &[Tensor]) {
    for p in params {
        p.zero_grad();
    }
}

/// Global L2 norm of all gradients.
pub fn grad_norm(params: &[Tensor]) -> f32 {
    let mut acc = 0.0f64;
    for p in params {
        if let Some(g) = p.grad_vec() {
            acc += g.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>();
        }
    }
    acc.sqrt() as f32
}

/// Scale all gradients so their global norm is at most `max_norm`.
/// Returns the pre-clip norm.
pub fn clip_grad_norm(params: &[Tensor], max_norm: f32) -> f32 {
    let norm = grad_norm(params);
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params {
            let scaled = p.grad_vec().map(|mut g| {
                for x in &mut g {
                    *x *= scale;
                }
                g
            });
            if let Some(g) = scaled {
                p.zero_grad();
                p.accumulate_grad(&g);
            }
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    #[test]
    fn grad_norm_and_clip() {
        let p = Tensor::param(vec![0.0, 0.0], &[2]);
        p.accumulate_grad(&[3.0, 4.0]);
        assert!((grad_norm(&[p.clone()]) - 5.0).abs() < 1e-6);
        let pre = clip_grad_norm(&[p.clone()], 1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((grad_norm(&[p.clone()]) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_noop_under_threshold() {
        let p = Tensor::param(vec![0.0], &[1]);
        p.accumulate_grad(&[0.5]);
        clip_grad_norm(&[p.clone()], 1.0);
        assert_eq!(p.grad_vec().unwrap(), vec![0.5]);
    }

    #[test]
    fn zero_grads_clears() {
        let p = Tensor::param(vec![0.0], &[1]);
        p.accumulate_grad(&[1.0]);
        zero_grads(&[p.clone()]);
        assert!(p.grad_vec().is_none());
    }
}
