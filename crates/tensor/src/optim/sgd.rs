//! Plain SGD with optional momentum — used by ablations and as a reference
//! optimizer in tests.

use std::collections::HashMap;

use super::Optimizer;
use crate::Tensor;

/// Stochastic gradient descent with classical momentum.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: HashMap<u64, Vec<f32>>,
}

impl Sgd {
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: HashMap::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &[Tensor]) {
        for p in params {
            let Some(g) = p.grad_vec() else { continue };
            let lr = self.lr;
            if self.momentum > 0.0 {
                let vel = self
                    .velocity
                    .entry(p.id())
                    .or_insert_with(|| vec![0.0; g.len()]);
                let mu = self.momentum;
                p.update_values(|w| {
                    for i in 0..g.len() {
                        vel[i] = mu * vel[i] + g[i];
                        w[i] -= lr * vel[i];
                    }
                });
            } else {
                p.update_values(|w| {
                    for i in 0..g.len() {
                        w[i] -= lr * g[i];
                    }
                });
            }
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::zero_grads;
    use crate::Tensor;

    #[test]
    fn plain_sgd_step_matches_formula() {
        let p = Tensor::param(vec![1.0], &[1]);
        let mut opt = Sgd::new(0.1, 0.0);
        p.accumulate_grad(&[2.0]);
        opt.step(&[p.clone()]);
        assert!((p.item() - 0.8).abs() < 1e-6);
    }

    #[test]
    fn momentum_accelerates() {
        let p = Tensor::param(vec![1.0], &[1]);
        let mut opt = Sgd::new(0.1, 0.9);
        p.accumulate_grad(&[1.0]);
        opt.step(&[p.clone()]);
        let after_one = p.item();
        p.zero_grad();
        p.accumulate_grad(&[1.0]);
        opt.step(&[p.clone()]);
        // Second step moves further than the first (velocity build-up).
        assert!((1.0 - after_one) < (after_one - p.item()));
    }

    #[test]
    fn minimizes_quadratic() {
        let p = Tensor::param(vec![4.0], &[1]);
        let mut opt = Sgd::new(0.05, 0.5);
        for _ in 0..200 {
            let loss = p.square().sum();
            zero_grads(&[p.clone()]);
            loss.backward();
            opt.step(&[p.clone()]);
        }
        assert!(p.item().abs() < 1e-3);
    }
}
