//! Adam (Kingma & Ba, 2015) — the optimizer used for every player in the
//! paper.

use std::collections::HashMap;

use super::Optimizer;
use crate::Tensor;

/// Hyper-parameters for [`Adam`].
#[derive(Debug, Clone, Copy)]
pub struct AdamConfig {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    /// Decoupled L2 weight decay (0 disables).
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig { lr: 1e-3, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 0.0 }
    }
}

struct Slot {
    m: Vec<f32>,
    v: Vec<f32>,
}

/// Adam optimizer with per-parameter first/second-moment state.
pub struct Adam {
    cfg: AdamConfig,
    t: u64,
    state: HashMap<u64, Slot>,
}

impl Adam {
    pub fn new(cfg: AdamConfig) -> Self {
        Adam { cfg, t: 0, state: HashMap::new() }
    }

    /// Adam with default moments and the given learning rate.
    pub fn with_lr(lr: f32) -> Self {
        Adam::new(AdamConfig { lr, ..Default::default() })
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &[Tensor]) {
        self.t += 1;
        let t = self.t as f32;
        let bc1 = 1.0 - self.cfg.beta1.powf(t);
        let bc2 = 1.0 - self.cfg.beta2.powf(t);
        for p in params {
            let Some(g) = p.grad_vec() else { continue };
            let slot = self
                .state
                .entry(p.id())
                .or_insert_with(|| Slot { m: vec![0.0; g.len()], v: vec![0.0; g.len()] });
            let cfg = self.cfg;
            p.update_values(|w| {
                for i in 0..g.len() {
                    let mut gi = g[i];
                    if cfg.weight_decay > 0.0 {
                        // Decoupled decay (AdamW-style).
                        w[i] -= cfg.lr * cfg.weight_decay * w[i];
                    }
                    if !gi.is_finite() {
                        gi = 0.0;
                    }
                    slot.m[i] = cfg.beta1 * slot.m[i] + (1.0 - cfg.beta1) * gi;
                    slot.v[i] = cfg.beta2 * slot.v[i] + (1.0 - cfg.beta2) * gi * gi;
                    let mhat = slot.m[i] / bc1;
                    let vhat = slot.v[i] / bc2;
                    w[i] -= cfg.lr * mhat / (vhat.sqrt() + cfg.eps);
                }
            });
        }
    }

    fn lr(&self) -> f32 {
        self.cfg.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.cfg.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::zero_grads;
    use crate::Tensor;

    /// Adam must minimize a simple convex quadratic.
    #[test]
    fn minimizes_quadratic() {
        let p = Tensor::param(vec![5.0, -3.0], &[2]);
        let mut opt = Adam::with_lr(0.1);
        for _ in 0..300 {
            let loss = p.square().sum();
            zero_grads(&[p.clone()]);
            loss.backward();
            opt.step(&[p.clone()]);
        }
        let v = p.to_vec();
        assert!(v.iter().all(|x| x.abs() < 1e-2), "did not converge: {v:?}");
    }

    #[test]
    fn first_step_size_is_lr() {
        // With bias correction, |Δw| of step 1 is exactly lr (for g != 0).
        let p = Tensor::param(vec![1.0], &[1]);
        let mut opt = Adam::with_lr(0.5);
        p.accumulate_grad(&[0.123]);
        opt.step(&[p.clone()]);
        assert!((p.item() - (1.0 - 0.5)).abs() < 1e-3, "got {}", p.item());
    }

    #[test]
    fn skips_params_without_grad() {
        let p = Tensor::param(vec![1.0], &[1]);
        let mut opt = Adam::with_lr(0.5);
        opt.step(&[p.clone()]);
        assert_eq!(p.item(), 1.0);
    }

    #[test]
    fn nonfinite_grads_are_ignored() {
        let p = Tensor::param(vec![1.0], &[1]);
        let mut opt = Adam::with_lr(0.5);
        p.accumulate_grad(&[f32::NAN]);
        opt.step(&[p.clone()]);
        assert!(p.item().is_finite());
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let p = Tensor::param(vec![10.0], &[1]);
        let mut opt =
            Adam::new(AdamConfig { lr: 0.1, weight_decay: 0.1, ..Default::default() });
        p.accumulate_grad(&[0.0]);
        opt.step(&[p.clone()]);
        assert!(p.item() < 10.0);
    }
}
