//! Adam (Kingma & Ba, 2015) — the optimizer used for every player in the
//! paper.

use std::collections::HashMap;

use super::Optimizer;
use crate::error::{DarError, DarResult};
use crate::serial::codec;
use crate::Tensor;

/// Hyper-parameters for [`Adam`].
#[derive(Debug, Clone, Copy)]
pub struct AdamConfig {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    /// Decoupled L2 weight decay (0 disables).
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
        }
    }
}

struct Slot {
    m: Vec<f32>,
    v: Vec<f32>,
}

/// Adam optimizer with per-parameter first/second-moment state.
pub struct Adam {
    cfg: AdamConfig,
    t: u64,
    state: HashMap<u64, Slot>,
}

impl Adam {
    pub fn new(cfg: AdamConfig) -> Self {
        Adam {
            cfg,
            t: 0,
            state: HashMap::new(),
        }
    }

    /// Adam with default moments and the given learning rate.
    pub fn with_lr(lr: f32) -> Self {
        Adam::new(AdamConfig {
            lr,
            ..Default::default()
        })
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Capture optimizer state for checkpointing, ordered by `params`.
    ///
    /// Tensor ids are process-local, so durable state is keyed by the
    /// *position* of each parameter in the caller's canonical list; a
    /// parameter that has never been stepped exports an empty slot.
    pub fn export_state(&self, params: &[Tensor]) -> AdamState {
        AdamState {
            t: self.t,
            lr: self.cfg.lr,
            slots: params
                .iter()
                .map(|p| {
                    self.state
                        .get(&p.id())
                        .map(|s| (s.m.clone(), s.v.clone()))
                        .unwrap_or_default()
                })
                .collect(),
        }
    }

    /// Restore state captured by [`Self::export_state`] against the same
    /// canonical parameter list (same order, same shapes).
    pub fn import_state(&mut self, params: &[Tensor], state: &AdamState) -> DarResult<()> {
        if state.slots.len() != params.len() {
            return Err(DarError::InvalidData(format!(
                "optimizer state has {} slots, model has {} parameters",
                state.slots.len(),
                params.len()
            )));
        }
        for (p, (m, v)) in params.iter().zip(&state.slots) {
            if !m.is_empty() && (m.len() != p.len() || v.len() != p.len()) {
                return Err(DarError::InvalidData(format!(
                    "optimizer slot of {} elements for a parameter of {}",
                    m.len(),
                    p.len()
                )));
            }
        }
        self.t = state.t;
        self.cfg.lr = state.lr;
        self.state.clear();
        for (p, (m, v)) in params.iter().zip(&state.slots) {
            if !m.is_empty() {
                self.state.insert(
                    p.id(),
                    Slot {
                        m: m.clone(),
                        v: v.clone(),
                    },
                );
            }
        }
        Ok(())
    }
}

/// Durable snapshot of an [`Adam`] instance (see [`Adam::export_state`]).
#[derive(Debug, Clone, PartialEq)]
pub struct AdamState {
    /// Steps taken (drives bias correction).
    pub t: u64,
    /// Learning rate in effect (guards may have decayed it mid-run).
    pub lr: f32,
    /// Per-parameter first/second moments; empty = never stepped.
    pub slots: Vec<(Vec<f32>, Vec<f32>)>,
}

impl AdamState {
    /// Append the little-endian encoding to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        codec::put_u64(out, self.t);
        codec::put_f32(out, self.lr);
        codec::put_u32(out, self.slots.len() as u32);
        for (m, v) in &self.slots {
            codec::put_f32s(out, m);
            codec::put_f32s(out, v);
        }
    }

    /// Decode an encoding produced by [`Self::encode`].
    pub fn decode(c: &mut codec::Cursor<'_>) -> DarResult<Self> {
        let t = c.u64()?;
        let lr = c.f32()?;
        let n = c.u32()? as usize;
        if n > crate::serial::MAX_TENSORS {
            return Err(DarError::InvalidData(format!(
                "optimizer state claims {n} slots"
            )));
        }
        let mut slots = Vec::with_capacity(n);
        for _ in 0..n {
            let m = c.f32s()?;
            let v = c.f32s()?;
            if m.len() != v.len() {
                return Err(DarError::InvalidData(
                    "optimizer moment vectors disagree in length".to_owned(),
                ));
            }
            slots.push((m, v));
        }
        Ok(AdamState { t, lr, slots })
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &[Tensor]) {
        self.t += 1;
        let t = self.t as f32;
        let bc1 = 1.0 - self.cfg.beta1.powf(t);
        let bc2 = 1.0 - self.cfg.beta2.powf(t);
        for p in params {
            let Some(g) = p.grad_vec() else { continue };
            let slot = self.state.entry(p.id()).or_insert_with(|| Slot {
                m: vec![0.0; g.len()],
                v: vec![0.0; g.len()],
            });
            let cfg = self.cfg;
            p.update_values(|w| {
                for i in 0..g.len() {
                    let mut gi = g[i];
                    if cfg.weight_decay > 0.0 {
                        // Decoupled decay (AdamW-style).
                        w[i] -= cfg.lr * cfg.weight_decay * w[i];
                    }
                    if !gi.is_finite() {
                        gi = 0.0;
                    }
                    slot.m[i] = cfg.beta1 * slot.m[i] + (1.0 - cfg.beta1) * gi;
                    slot.v[i] = cfg.beta2 * slot.v[i] + (1.0 - cfg.beta2) * gi * gi;
                    let mhat = slot.m[i] / bc1;
                    let vhat = slot.v[i] / bc2;
                    w[i] -= cfg.lr * mhat / (vhat.sqrt() + cfg.eps);
                }
            });
        }
    }

    fn lr(&self) -> f32 {
        self.cfg.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.cfg.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::zero_grads;
    use crate::Tensor;

    /// Adam must minimize a simple convex quadratic.
    #[test]
    fn minimizes_quadratic() {
        let p = Tensor::param(vec![5.0, -3.0], &[2]);
        let mut opt = Adam::with_lr(0.1);
        for _ in 0..300 {
            let loss = p.square().sum();
            zero_grads(&[p.clone()]);
            loss.backward();
            opt.step(&[p.clone()]);
        }
        let v = p.to_vec();
        assert!(v.iter().all(|x| x.abs() < 1e-2), "did not converge: {v:?}");
    }

    #[test]
    fn first_step_size_is_lr() {
        // With bias correction, |Δw| of step 1 is exactly lr (for g != 0).
        let p = Tensor::param(vec![1.0], &[1]);
        let mut opt = Adam::with_lr(0.5);
        p.accumulate_grad(&[0.123]);
        opt.step(&[p.clone()]);
        assert!((p.item() - (1.0 - 0.5)).abs() < 1e-3, "got {}", p.item());
    }

    #[test]
    fn skips_params_without_grad() {
        let p = Tensor::param(vec![1.0], &[1]);
        let mut opt = Adam::with_lr(0.5);
        opt.step(&[p.clone()]);
        assert_eq!(p.item(), 1.0);
    }

    #[test]
    fn nonfinite_grads_are_ignored() {
        let p = Tensor::param(vec![1.0], &[1]);
        let mut opt = Adam::with_lr(0.5);
        p.accumulate_grad(&[f32::NAN]);
        opt.step(&[p.clone()]);
        assert!(p.item().is_finite());
    }

    #[test]
    fn state_roundtrip_resumes_identically() {
        // Two optimizers, same trajectory; export/import mid-run must make
        // their subsequent updates bit-identical.
        let run = |resume_at: Option<usize>| {
            let p = Tensor::param(vec![5.0, -3.0], &[2]);
            let mut opt = Adam::with_lr(0.1);
            for step in 0..20 {
                if resume_at == Some(step) {
                    let state = opt.export_state(&[p.clone()]);
                    let mut buf = Vec::new();
                    state.encode(&mut buf);
                    let decoded =
                        AdamState::decode(&mut crate::serial::codec::Cursor::new(&buf)).unwrap();
                    assert_eq!(decoded, state);
                    let mut fresh = Adam::with_lr(999.0); // lr comes from the state
                    fresh.import_state(&[p.clone()], &decoded).unwrap();
                    opt = fresh;
                }
                let loss = p.square().sum();
                zero_grads(&[p.clone()]);
                loss.backward();
                opt.step(&[p.clone()]);
            }
            p.to_vec()
        };
        assert_eq!(run(None), run(Some(10)));
    }

    #[test]
    fn import_rejects_mismatched_state() {
        let p = Tensor::param(vec![1.0, 2.0], &[2]);
        let mut opt = Adam::with_lr(0.1);
        let bad = AdamState {
            t: 1,
            lr: 0.1,
            slots: vec![],
        };
        assert!(opt.import_state(&[p.clone()], &bad).is_err());
        let bad = AdamState {
            t: 1,
            lr: 0.1,
            slots: vec![(vec![0.0; 3], vec![0.0; 3])],
        };
        assert!(opt.import_state(&[p], &bad).is_err());
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let p = Tensor::param(vec![10.0], &[1]);
        let mut opt = Adam::new(AdamConfig {
            lr: 0.1,
            weight_decay: 0.1,
            ..Default::default()
        });
        p.accumulate_grad(&[0.0]);
        opt.step(&[p.clone()]);
        assert!(p.item() < 10.0);
    }
}
