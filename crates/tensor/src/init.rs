//! Weight initializers. All initializers are deterministic given the RNG.

use rand::Rng as _;

use crate::{Rng, Tensor};

/// Uniform values in `[lo, hi)`.
pub fn uniform(rng: &mut Rng, n: usize, lo: f32, hi: f32) -> Vec<f32> {
    assert!(hi > lo, "uniform requires hi > lo");
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// Standard-normal values scaled to `mean`, `std` (Box–Muller).
pub fn normal(rng: &mut Rng, n: usize, mean: f32, std: f32) -> Vec<f32> {
    (0..n)
        .map(|_| {
            let u1: f32 = rng.gen_range(1e-7f32..1.0);
            let u2: f32 = rng.gen_range(0.0f32..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
            mean + std * z
        })
        .collect()
}

/// Xavier/Glorot uniform initialization for a `[fan_in, fan_out]` matrix.
pub fn xavier_uniform(rng: &mut Rng, fan_in: usize, fan_out: usize) -> Vec<f32> {
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(rng, fan_in * fan_out, -bound, bound)
}

/// A `[rows, cols]` parameter tensor with Xavier-uniform values.
pub fn xavier_param(rng: &mut Rng, rows: usize, cols: usize) -> Tensor {
    Tensor::param(xavier_uniform(rng, rows, cols), &[rows, cols])
}

/// A zero-initialized parameter tensor (biases).
pub fn zeros_param(shape: &[usize]) -> Tensor {
    Tensor::param(vec![0.0; shape.iter().product()], shape)
}

/// Sample standard Gumbel noise `-ln(-ln(u))`, used by Gumbel-softmax.
pub fn gumbel_noise(rng: &mut Rng, n: usize) -> Vec<f32> {
    (0..n)
        .map(|_| {
            let u: f32 = rng.gen_range(1e-7f32..1.0);
            -(-(u.ln())).ln()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_within_bounds() {
        let mut rng = crate::rng(7);
        let v = uniform(&mut rng, 1000, -0.5, 0.5);
        assert!(v.iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn normal_moments_roughly_match() {
        let mut rng = crate::rng(11);
        let v = normal(&mut rng, 20_000, 1.0, 2.0);
        let mean: f32 = v.iter().sum::<f32>() / v.len() as f32;
        let var: f32 = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / v.len() as f32;
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn xavier_bound_shrinks_with_fan() {
        let mut rng = crate::rng(3);
        let big = xavier_uniform(&mut rng, 1000, 1000);
        let bound = (6.0f32 / 2000.0).sqrt();
        assert!(big.iter().all(|&x| x.abs() <= bound));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = uniform(&mut crate::rng(42), 10, 0.0, 1.0);
        let b = uniform(&mut crate::rng(42), 10, 0.0, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn gumbel_noise_is_finite() {
        let mut rng = crate::rng(5);
        let g = gumbel_noise(&mut rng, 1000);
        assert!(g.iter().all(|x| x.is_finite()));
    }
}
