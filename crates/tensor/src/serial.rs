//! Minimal binary (de)serialization for parameter sets — model
//! checkpointing without external dependencies.
//!
//! Format (little-endian): magic `DART`, version u32, tensor count u32,
//! then per tensor: rank u32, dims u32×rank, values f32×numel.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::shape::numel;
use crate::Tensor;

const MAGIC: &[u8; 4] = b"DART";
const VERSION: u32 = 1;

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

/// Serialize tensors (values + shapes) to a writer.
pub fn save_tensors(w: &mut impl Write, tensors: &[Tensor]) -> io::Result<()> {
    w.write_all(MAGIC)?;
    write_u32(w, VERSION)?;
    write_u32(w, tensors.len() as u32)?;
    for t in tensors {
        write_u32(w, t.shape().len() as u32)?;
        for &d in t.shape() {
            write_u32(w, d as u32)?;
        }
        for &v in t.values().iter() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Deserialize tensors saved by [`save_tensors`]. Returned tensors are
/// plain leaves; use [`load_into`] to restore a live parameter set.
pub fn load_tensors(r: &mut impl Read) -> io::Result<Vec<Tensor>> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not a DART checkpoint"));
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported checkpoint version {version}"),
        ));
    }
    let count = read_u32(r)? as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let rank = read_u32(r)? as usize;
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(read_u32(r)? as usize);
        }
        let n = numel(&shape);
        let mut values = Vec::with_capacity(n);
        let mut buf = [0u8; 4];
        for _ in 0..n {
            r.read_exact(&mut buf)?;
            values.push(f32::from_le_bytes(buf));
        }
        out.push(Tensor::new(values, &shape));
    }
    Ok(out)
}

/// Save a parameter list to a file path.
pub fn save_path(path: impl AsRef<Path>, tensors: &[Tensor]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    save_tensors(&mut w, tensors)?;
    w.flush()
}

/// Load a checkpoint file into an existing parameter list (shapes must
/// match pairwise).
pub fn load_into(path: impl AsRef<Path>, params: &[Tensor]) -> io::Result<()> {
    let mut r = BufReader::new(File::open(path)?);
    let loaded = load_tensors(&mut r)?;
    if loaded.len() != params.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("checkpoint has {} tensors, model has {}", loaded.len(), params.len()),
        ));
    }
    for (src, dst) in loaded.iter().zip(params) {
        if src.shape() != dst.shape() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("shape mismatch: {:?} vs {:?}", src.shape(), dst.shape()),
            ));
        }
        dst.set_values(src.to_vec());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dar_serial_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_preserves_values_and_shapes() {
        let a = Tensor::param(vec![1.5, -2.25, 3.125, 0.0], &[2, 2]);
        let b = Tensor::param(vec![7.0; 3], &[3]);
        let path = tmpfile("roundtrip");
        save_path(&path, &[a.clone(), b.clone()]).unwrap();
        let dst_a = Tensor::param(vec![0.0; 4], &[2, 2]);
        let dst_b = Tensor::param(vec![0.0; 3], &[3]);
        load_into(&path, &[dst_a.clone(), dst_b.clone()]).unwrap();
        assert_eq!(dst_a.to_vec(), a.to_vec());
        assert_eq!(dst_b.to_vec(), b.to_vec());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_wrong_magic() {
        let mut data: &[u8] = b"NOPE\x01\x00\x00\x00";
        assert!(load_tensors(&mut data).is_err());
    }

    #[test]
    fn rejects_shape_mismatch() {
        let path = tmpfile("mismatch");
        save_path(&path, &[Tensor::zeros(&[2, 2])]).unwrap();
        let dst = Tensor::zeros(&[4]);
        assert!(load_into(&path, &[dst]).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_count_mismatch() {
        let path = tmpfile("count");
        save_path(&path, &[Tensor::zeros(&[1])]).unwrap();
        assert!(load_into(&path, &[]).is_err());
        std::fs::remove_file(path).ok();
    }
}
