//! Durable binary (de)serialization for parameter sets — model
//! checkpointing without external dependencies.
//!
//! # Format v2 (little-endian)
//!
//! ```text
//! magic `DART` · version u32=2 · meta_len u32 · meta bytes
//! tensor count u32 · per tensor: rank u32, dims u32×rank, values f32×numel
//! crc32 u32   — IEEE CRC-32 of every preceding byte
//! ```
//!
//! The `meta` section is an opaque blob for the caller (the trainer stores
//! optimizer/RNG/epoch state there); the CRC footer makes any truncation or
//! bit flip a loud [`DarError::Corrupt`] instead of silently garbage
//! weights. [`save_checkpoint_path`] writes to a temp file in the target
//! directory and atomically renames it over the destination, so a crash
//! mid-save can never leave a half-written checkpoint under the real name.
//!
//! Version-1 files (no meta, no CRC) are still readable; any other version
//! is rejected. Header fields are capped ([`MAX_RANK`], [`MAX_NUMEL`],
//! [`MAX_TENSORS`], [`MAX_META_LEN`]) so a hostile or corrupted header
//! cannot OOM the loader.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::error::{DarError, DarResult};
use crate::Tensor;

const MAGIC: &[u8; 4] = b"DART";
const VERSION_V1: u32 = 1;
const VERSION_V2: u32 = 2;

/// Largest admissible tensor rank.
pub const MAX_RANK: usize = 8;
/// Largest admissible element count per tensor (256M floats = 1 GiB).
pub const MAX_NUMEL: usize = 1 << 28;
/// Largest admissible tensor count per checkpoint.
pub const MAX_TENSORS: usize = 1 << 16;
/// Largest admissible metadata blob (64 MiB).
pub const MAX_META_LEN: usize = 1 << 26;

/// Little-endian scalar encode/decode helpers, shared by the checkpoint
/// format and by downstream metadata encoders (the trainer's resume state).
pub mod codec {
    use super::*;

    pub fn put_u32(out: &mut Vec<u8>, v: u32) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(out: &mut Vec<u8>, v: u64) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_f32(out: &mut Vec<u8>, v: f32) {
        out.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_f32s(out: &mut Vec<u8>, vs: &[f32]) {
        put_u32(out, vs.len() as u32);
        for &v in vs {
            put_f32(out, v);
        }
    }

    /// Length-prefixed byte string.
    pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
        put_u32(out, bytes.len() as u32);
        out.extend_from_slice(bytes);
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(out: &mut Vec<u8>, s: &str) {
        put_bytes(out, s.as_bytes());
    }

    /// A bounds-checked cursor over an encoded byte slice.
    pub struct Cursor<'a> {
        buf: &'a [u8],
        pos: usize,
    }

    impl<'a> Cursor<'a> {
        pub fn new(buf: &'a [u8]) -> Self {
            Cursor { buf, pos: 0 }
        }

        pub fn is_empty(&self) -> bool {
            self.pos >= self.buf.len()
        }

        fn take(&mut self, n: usize) -> DarResult<&'a [u8]> {
            let end = self
                .pos
                .checked_add(n)
                .filter(|&e| e <= self.buf.len())
                .ok_or_else(|| {
                    DarError::InvalidData(format!("metadata truncated at byte {}", self.pos))
                })?;
            let s = &self.buf[self.pos..end];
            self.pos = end;
            Ok(s)
        }

        pub fn u32(&mut self) -> DarResult<u32> {
            let b = self.take(4)?;
            Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        }

        pub fn u64(&mut self) -> DarResult<u64> {
            let b = self.take(8)?;
            Ok(u64::from_le_bytes([
                b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
            ]))
        }

        pub fn f32(&mut self) -> DarResult<f32> {
            let b = self.take(4)?;
            Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        }

        pub fn f32s(&mut self) -> DarResult<Vec<f32>> {
            let n = self.u32()? as usize;
            if n > MAX_NUMEL {
                return Err(DarError::InvalidData(format!(
                    "metadata vector of {n} floats"
                )));
            }
            let bytes = self.take(n * 4)?;
            Ok(bytes
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect())
        }

        /// Length-prefixed byte string ([`put_bytes`]).
        pub fn bytes(&mut self) -> DarResult<Vec<u8>> {
            let n = self.u32()? as usize;
            if n > MAX_META_LEN {
                return Err(DarError::InvalidData(format!(
                    "metadata byte string of {n} bytes"
                )));
            }
            Ok(self.take(n)?.to_vec())
        }

        /// Length-prefixed UTF-8 string ([`put_str`]).
        pub fn str_(&mut self) -> DarResult<String> {
            String::from_utf8(self.bytes()?)
                .map_err(|_| DarError::InvalidData("metadata string is not UTF-8".to_owned()))
        }
    }
}

/// IEEE CRC-32 (reflected, poly 0xEDB88320), bytewise.
fn crc32_update(mut crc: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    crc
}

/// Running CRC over everything written.
struct CrcWriter<W: Write> {
    inner: W,
    crc: u32,
}

impl<W: Write> CrcWriter<W> {
    fn new(inner: W) -> Self {
        CrcWriter {
            inner,
            crc: 0xFFFF_FFFF,
        }
    }

    fn digest(&self) -> u32 {
        self.crc ^ 0xFFFF_FFFF
    }
}

impl<W: Write> Write for CrcWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.crc = crc32_update(self.crc, &buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Running CRC over everything read.
struct CrcReader<R: Read> {
    inner: R,
    crc: u32,
}

impl<R: Read> CrcReader<R> {
    fn new(inner: R) -> Self {
        CrcReader {
            inner,
            crc: 0xFFFF_FFFF,
        }
    }

    fn digest(&self) -> u32 {
        self.crc ^ 0xFFFF_FFFF
    }
}

impl<R: Read> Read for CrcReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.crc = crc32_update(self.crc, &buf[..n]);
        Ok(n)
    }
}

fn write_u32(w: &mut impl Write, v: u32) -> DarResult<()> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

fn read_u32(r: &mut impl Read) -> DarResult<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf).map_err(truncation)?;
    Ok(u32::from_le_bytes(buf))
}

/// An unexpected EOF while parsing is corruption, not a plain I/O error.
fn truncation(e: std::io::Error) -> DarError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        DarError::Corrupt("file ends mid-record (truncated)".to_owned())
    } else {
        DarError::Io(e)
    }
}

/// Tensors plus an opaque caller-owned metadata blob.
#[derive(Debug, Clone, Default)]
pub struct Checkpoint {
    pub tensors: Vec<Tensor>,
    pub meta: Vec<u8>,
}

impl Checkpoint {
    pub fn new(tensors: Vec<Tensor>, meta: Vec<u8>) -> Self {
        Checkpoint { tensors, meta }
    }
}

fn write_tensor_block(w: &mut impl Write, tensors: &[Tensor]) -> DarResult<()> {
    write_u32(w, tensors.len() as u32)?;
    for t in tensors {
        write_u32(w, t.shape().len() as u32)?;
        for &d in t.shape() {
            write_u32(w, d as u32)?;
        }
        for &v in t.values().iter() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

fn read_tensor_block(r: &mut impl Read) -> DarResult<Vec<Tensor>> {
    let count = read_u32(r)? as usize;
    if count > MAX_TENSORS {
        return Err(DarError::InvalidData(format!(
            "checkpoint claims {count} tensors (cap {MAX_TENSORS})"
        )));
    }
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let rank = read_u32(r)? as usize;
        if rank > MAX_RANK {
            return Err(DarError::InvalidData(format!(
                "tensor {i} claims rank {rank} (cap {MAX_RANK})"
            )));
        }
        let mut shape = Vec::with_capacity(rank);
        let mut n: usize = 1;
        for _ in 0..rank {
            let d = read_u32(r)? as usize;
            n = n
                .checked_mul(d)
                .filter(|&n| n <= MAX_NUMEL)
                .ok_or_else(|| {
                    DarError::InvalidData(format!(
                        "tensor {i} dims {shape:?}×{d} exceed the {MAX_NUMEL}-element cap"
                    ))
                })?;
            shape.push(d);
        }
        let mut bytes = vec![0u8; n * 4];
        r.read_exact(&mut bytes).map_err(truncation)?;
        let values = bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        out.push(Tensor::new(values, &shape));
    }
    Ok(out)
}

/// Serialize a checkpoint (format v2, CRC-32 footer) to a writer.
pub fn save_checkpoint(w: &mut impl Write, ckpt: &Checkpoint) -> DarResult<()> {
    if ckpt.meta.len() > MAX_META_LEN {
        return Err(DarError::InvalidData(format!(
            "metadata blob of {} bytes (cap {MAX_META_LEN})",
            ckpt.meta.len()
        )));
    }
    let mut cw = CrcWriter::new(w);
    cw.write_all(MAGIC)?;
    write_u32(&mut cw, VERSION_V2)?;
    write_u32(&mut cw, ckpt.meta.len() as u32)?;
    cw.write_all(&ckpt.meta)?;
    write_tensor_block(&mut cw, &ckpt.tensors)?;
    let crc = cw.digest();
    write_u32(&mut cw.inner, crc)?;
    Ok(())
}

/// Deserialize a checkpoint saved by [`save_checkpoint`] (v2) or the legacy
/// v1 tensor format. Unknown versions and integrity failures are errors —
/// this function never returns garbage weights.
pub fn load_checkpoint(r: &mut impl Read) -> DarResult<Checkpoint> {
    let mut cr = CrcReader::new(r);
    let mut magic = [0u8; 4];
    cr.read_exact(&mut magic).map_err(truncation)?;
    if &magic != MAGIC {
        return Err(DarError::Corrupt(
            "not a DART checkpoint (bad magic)".to_owned(),
        ));
    }
    let version = read_u32(&mut cr)?;
    match version {
        VERSION_V1 => {
            // Legacy: bare tensor block, no meta, no CRC footer.
            let tensors = read_tensor_block(&mut cr)?;
            Ok(Checkpoint {
                tensors,
                meta: Vec::new(),
            })
        }
        VERSION_V2 => {
            let meta_len = read_u32(&mut cr)? as usize;
            if meta_len > MAX_META_LEN {
                return Err(DarError::InvalidData(format!(
                    "metadata blob of {meta_len} bytes (cap {MAX_META_LEN})"
                )));
            }
            let mut meta = vec![0u8; meta_len];
            cr.read_exact(&mut meta).map_err(truncation)?;
            let tensors = read_tensor_block(&mut cr)?;
            let computed = cr.digest();
            let stored = read_u32(&mut cr.inner)?;
            if computed != stored {
                return Err(DarError::Corrupt(format!(
                    "CRC-32 mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )));
            }
            Ok(Checkpoint { tensors, meta })
        }
        other => Err(DarError::InvalidData(format!(
            "unsupported checkpoint version {other}"
        ))),
    }
}

/// Serialize tensors (values + shapes, empty metadata) to a writer.
pub fn save_tensors(w: &mut impl Write, tensors: &[Tensor]) -> DarResult<()> {
    save_checkpoint(
        w,
        &Checkpoint {
            tensors: tensors.to_vec(),
            meta: Vec::new(),
        },
    )
}

/// Deserialize the tensors of a checkpoint. Returned tensors are plain
/// leaves; use [`load_into`] to restore a live parameter set.
pub fn load_tensors(r: &mut impl Read) -> DarResult<Vec<Tensor>> {
    Ok(load_checkpoint(r)?.tensors)
}

/// Per-process temp-file counter: concurrent saves targeting the same
/// destination must never share a temp name (the pid alone is not enough).
static TMP_SUFFIX: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// fsync the parent directory of `path`, making a rename into it durable.
/// A rename is only crash-safe once the directory entry itself is synced;
/// without this, "successfully saved" files can vanish on power loss.
pub fn sync_parent_dir(path: impl AsRef<Path>) -> DarResult<()> {
    let parent = match path.as_ref().parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    File::open(parent)?.sync_all()?;
    Ok(())
}

/// Atomically save a checkpoint to a file path: the bytes are written to a
/// sibling temp file (per-call unique name), fsynced, renamed over the
/// destination, and the parent directory is fsynced, so readers never
/// observe a partially written checkpoint at `path` and a crash after
/// return cannot lose the rename.
pub fn save_checkpoint_path(path: impl AsRef<Path>, ckpt: &Checkpoint) -> DarResult<()> {
    let path = path.as_ref();
    let n = TMP_SUFFIX.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let tmp = path.with_extension(format!("tmp.{}.{n}", std::process::id()));
    let result = (|| {
        let file = File::create(&tmp)?;
        let mut w = BufWriter::new(file);
        save_checkpoint(&mut w, ckpt)?;
        w.flush()?;
        w.get_ref().sync_all()?;
        std::fs::rename(&tmp, path)?;
        sync_parent_dir(path)?;
        Ok(())
    })();
    if result.is_err() {
        std::fs::remove_file(&tmp).ok();
    }
    result
}

/// Load a checkpoint from a file path.
pub fn load_checkpoint_path(path: impl AsRef<Path>) -> DarResult<Checkpoint> {
    let mut r = BufReader::new(File::open(path)?);
    load_checkpoint(&mut r)
}

/// Save a parameter list to a file path (atomic, empty metadata).
pub fn save_path(path: impl AsRef<Path>, tensors: &[Tensor]) -> DarResult<()> {
    save_checkpoint_path(
        path,
        &Checkpoint {
            tensors: tensors.to_vec(),
            meta: Vec::new(),
        },
    )
}

/// Copy loaded tensor values into an existing parameter list (shapes must
/// match pairwise).
pub fn restore_into(loaded: &[Tensor], params: &[Tensor]) -> DarResult<()> {
    if loaded.len() != params.len() {
        return Err(DarError::InvalidData(format!(
            "checkpoint has {} tensors, model has {}",
            loaded.len(),
            params.len()
        )));
    }
    for (src, dst) in loaded.iter().zip(params) {
        if src.shape() != dst.shape() {
            return Err(DarError::ShapeMismatch {
                expected: dst.shape().to_vec(),
                got: src.shape().to_vec(),
            });
        }
    }
    // Validate everything before mutating anything, so a bad checkpoint
    // cannot leave the model half-restored.
    for (src, dst) in loaded.iter().zip(params) {
        dst.set_values(src.to_vec());
    }
    Ok(())
}

/// Load a checkpoint file into an existing parameter list (shapes must
/// match pairwise).
pub fn load_into(path: impl AsRef<Path>, params: &[Tensor]) -> DarResult<()> {
    restore_into(&load_checkpoint_path(path)?.tensors, params)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dar_serial_{name}_{}", std::process::id()));
        p
    }

    fn save_to_vec(ckpt: &Checkpoint) -> Vec<u8> {
        let mut buf = Vec::new();
        save_checkpoint(&mut buf, ckpt).unwrap();
        buf
    }

    #[test]
    fn roundtrip_preserves_values_and_shapes() {
        let a = Tensor::param(vec![1.5, -2.25, 3.125, 0.0], &[2, 2]);
        let b = Tensor::param(vec![7.0; 3], &[3]);
        let path = tmpfile("roundtrip");
        save_path(&path, &[a.clone(), b.clone()]).unwrap();
        let dst_a = Tensor::param(vec![0.0; 4], &[2, 2]);
        let dst_b = Tensor::param(vec![0.0; 3], &[3]);
        load_into(&path, &[dst_a.clone(), dst_b.clone()]).unwrap();
        assert_eq!(dst_a.to_vec(), a.to_vec());
        assert_eq!(dst_b.to_vec(), b.to_vec());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn meta_roundtrips() {
        let ckpt = Checkpoint::new(vec![Tensor::zeros(&[2])], b"trainer state".to_vec());
        let buf = save_to_vec(&ckpt);
        let back = load_checkpoint(&mut buf.as_slice()).unwrap();
        assert_eq!(back.meta, b"trainer state");
        assert_eq!(back.tensors.len(), 1);
    }

    #[test]
    fn rejects_wrong_magic() {
        let mut data: &[u8] = b"NOPE\x01\x00\x00\x00";
        assert!(matches!(load_tensors(&mut data), Err(DarError::Corrupt(_))));
    }

    #[test]
    fn rejects_unknown_version() {
        let mut data = Vec::new();
        data.extend_from_slice(MAGIC);
        data.extend_from_slice(&7u32.to_le_bytes());
        data.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            load_tensors(&mut data.as_slice()),
            Err(DarError::InvalidData(msg)) if msg.contains("version 7")
        ));
    }

    #[test]
    fn rejects_hostile_rank_and_dims() {
        // rank beyond the cap
        let mut data = Vec::new();
        data.extend_from_slice(MAGIC);
        data.extend_from_slice(&VERSION_V1.to_le_bytes());
        data.extend_from_slice(&1u32.to_le_bytes()); // count
        data.extend_from_slice(&u32::MAX.to_le_bytes()); // rank
        assert!(matches!(
            load_tensors(&mut data.as_slice()),
            Err(DarError::InvalidData(_))
        ));

        // dims whose product would OOM
        let mut data = Vec::new();
        data.extend_from_slice(MAGIC);
        data.extend_from_slice(&VERSION_V1.to_le_bytes());
        data.extend_from_slice(&1u32.to_le_bytes()); // count
        data.extend_from_slice(&3u32.to_le_bytes()); // rank
        for _ in 0..3 {
            data.extend_from_slice(&100_000u32.to_le_bytes());
        }
        assert!(matches!(
            load_tensors(&mut data.as_slice()),
            Err(DarError::InvalidData(_))
        ));

        // hostile tensor count
        let mut data = Vec::new();
        data.extend_from_slice(MAGIC);
        data.extend_from_slice(&VERSION_V1.to_le_bytes());
        data.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            load_tensors(&mut data.as_slice()),
            Err(DarError::InvalidData(_))
        ));
    }

    #[test]
    fn truncation_is_corrupt_not_garbage() {
        let ckpt = Checkpoint::new(vec![Tensor::param(vec![1.0; 10], &[10])], vec![1, 2, 3]);
        let buf = save_to_vec(&ckpt);
        for keep in [1, 4, 9, buf.len() / 2, buf.len() - 1] {
            let err = load_checkpoint(&mut &buf[..keep]).unwrap_err();
            assert!(
                matches!(err, DarError::Corrupt(_) | DarError::InvalidData(_)),
                "prefix of {keep} bytes gave {err:?}"
            );
        }
    }

    #[test]
    fn bitflip_fails_crc() {
        let ckpt = Checkpoint::new(vec![Tensor::param(vec![0.5; 8], &[2, 4])], vec![9; 16]);
        let buf = save_to_vec(&ckpt);
        // Flip one bit in every byte position; all must fail to load.
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x10;
            assert!(
                load_checkpoint(&mut bad.as_slice()).is_err(),
                "bit flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn legacy_v1_still_loads() {
        let t = Tensor::param(vec![1.0, 2.0], &[2]);
        let mut data = Vec::new();
        data.extend_from_slice(MAGIC);
        data.extend_from_slice(&VERSION_V1.to_le_bytes());
        data.extend_from_slice(&1u32.to_le_bytes()); // count
        data.extend_from_slice(&1u32.to_le_bytes()); // rank
        data.extend_from_slice(&2u32.to_le_bytes()); // dim
        for v in t.to_vec() {
            data.extend_from_slice(&v.to_le_bytes());
        }
        let loaded = load_tensors(&mut data.as_slice()).unwrap();
        assert_eq!(loaded[0].to_vec(), vec![1.0, 2.0]);
    }

    #[test]
    fn rejects_shape_mismatch() {
        let path = tmpfile("mismatch");
        save_path(&path, &[Tensor::zeros(&[2, 2])]).unwrap();
        let dst = Tensor::zeros(&[4]);
        assert!(matches!(
            load_into(&path, &[dst]),
            Err(DarError::ShapeMismatch { .. })
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_count_mismatch() {
        let path = tmpfile("count");
        save_path(&path, &[Tensor::zeros(&[1])]).unwrap();
        assert!(load_into(&path, &[]).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn atomic_save_leaves_no_temp_droppings() {
        let path = tmpfile("atomic");
        save_path(&path, &[Tensor::zeros(&[3])]).unwrap();
        let dir = path.parent().unwrap();
        let stem = path.file_name().unwrap().to_string_lossy().to_string();
        let leftovers: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().to_string())
            .filter(|n| n.starts_with(&stem) && n.contains("tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn concurrent_saves_to_one_path_never_collide_on_temp_names() {
        // Regression: the temp suffix used to be pid-only, so two threads
        // saving to the same destination raced on one temp file and could
        // rename each other's half-written bytes into place.
        let path = tmpfile("concurrent");
        let threads: Vec<_> = (0..8u32)
            .map(|i| {
                let path = path.clone();
                std::thread::spawn(move || {
                    let t = Tensor::new(vec![i as f32; 64], &[64]);
                    save_path(&path, &[t]).unwrap();
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // Whatever save won, the file must be whole and CRC-clean…
        let loaded = load_checkpoint_path(&path).unwrap();
        assert_eq!(loaded.tensors[0].shape(), &[64]);
        // …and no temp droppings may remain.
        let dir = path.parent().unwrap();
        let stem = path.file_name().unwrap().to_string_lossy().to_string();
        let leftovers: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().to_string())
            .filter(|n| n.starts_with(&stem) && n.contains("tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn codec_cursor_roundtrips_and_bounds_checks() {
        let mut buf = Vec::new();
        codec::put_u32(&mut buf, 7);
        codec::put_u64(&mut buf, u64::MAX - 3);
        codec::put_f32(&mut buf, -1.25);
        codec::put_f32s(&mut buf, &[1.0, 2.0, 3.0]);
        codec::put_str(&mut buf, "Dar");
        let mut c = codec::Cursor::new(&buf);
        assert_eq!(c.u32().unwrap(), 7);
        assert_eq!(c.u64().unwrap(), u64::MAX - 3);
        assert_eq!(c.f32().unwrap(), -1.25);
        assert_eq!(c.f32s().unwrap(), vec![1.0, 2.0, 3.0]);
        assert_eq!(c.str_().unwrap(), "Dar");
        assert!(c.is_empty());
        assert!(c.u32().is_err(), "read past end must error");
    }

    #[test]
    fn codec_rejects_non_utf8_strings() {
        let mut buf = Vec::new();
        codec::put_bytes(&mut buf, &[0xFF, 0xFE]);
        assert!(codec::Cursor::new(&buf).str_().is_err());
    }
}
