//! `dar-tensor`: a small dense-tensor library with reverse-mode automatic
//! differentiation, written as the numerical substrate for the DAR
//! rationalization reproduction.
//!
//! The design mirrors the dynamic-graph style of PyTorch at a much smaller
//! scale: every [`Tensor`] is a reference-counted node holding `f32` values,
//! an optional gradient buffer, and (for op results) a backward closure that
//! scatters the output gradient into its parents. Graphs are built per
//! training step and freed when the loss tensor is dropped.
//!
//! # Quick tour
//!
//! ```
//! use dar_tensor::Tensor;
//!
//! let w = Tensor::param(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let x = Tensor::new(vec![1.0, -1.0], &[1, 2]);
//! let y = x.matmul(&w).relu().sum();
//! y.backward();
//! assert_eq!(w.grad_vec().unwrap().len(), 4);
//! ```
//!
//! # Modules
//!
//! * [`shape`] — shape/stride helpers and broadcasting rules.
//! * [`ops`] — the differentiable operator set (arithmetic, matmul,
//!   activations, reductions, softmax, gather, structural ops).
//! * [`init`] — weight initializers.
//! * [`optim`] — Adam / SGD optimizers with gradient clipping.
//! * [`grad_check`] — finite-difference gradient checking used throughout
//!   the test suites of downstream crates.
//! * [`taint`] — opt-in NaN/Inf provenance: with `DAR_TAINT=1` the first
//!   non-finite op result on a thread is attributed to its originating op.
//! * [`ops::kernel`] — pluggable compute backends: `DAR_KERNEL=blocked`
//!   (or [`set_kernel_backend`]) swaps the hot inner loops for the
//!   cache-blocked SIMD kernel; the default stays the bit-exact reference.

pub mod error;
pub mod grad_check;
pub mod init;
pub mod ops;
pub mod optim;
pub mod serial;
pub mod shape;
pub mod taint;
mod tensor;

pub use error::{DarError, DarResult};
pub use ops::kernel::{
    current_kernel, kernel_backend, kernel_for, set_kernel_backend, with_kernel_backend, Kernel,
    KernelBackend,
};
pub use taint::{clear_taint, first_taint, set_taint_mode, taint_enabled, TaintRecord};
pub use tensor::{no_grad, with_no_grad_disabled, Tensor};

/// Convenience alias for the RNG used across the workspace.
pub type Rng = rand::rngs::StdRng;

/// Build the workspace-standard seeded RNG.
pub fn rng(seed: u64) -> Rng {
    use rand::SeedableRng;
    Rng::seed_from_u64(seed)
}
