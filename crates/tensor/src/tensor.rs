//! The core [`Tensor`] type: a reference-counted autograd graph node.

use std::cell::{Cell, Ref, RefCell};
use std::collections::HashSet;
use std::fmt;
use std::rc::Rc;

use crate::error::{DarError, DarResult};
use crate::shape::{check_numel, numel};
use crate::taint;

thread_local! {
    static NEXT_ID: Cell<u64> = const { Cell::new(1) };
    static NO_GRAD: Cell<bool> = const { Cell::new(false) };
}

fn next_id() -> u64 {
    NEXT_ID.with(|c| {
        let id = c.get();
        c.set(id + 1);
        id
    })
}

/// Run `f` with gradient recording disabled: any op performed inside
/// produces leaf tensors with no graph history. Mirrors `torch.no_grad()`.
pub fn no_grad<T>(f: impl FnOnce() -> T) -> T {
    let prev = NO_GRAD.with(|c| c.replace(true));
    let out = f();
    NO_GRAD.with(|c| c.set(prev));
    out
}

/// Run `f` with gradient recording re-enabled (escape hatch inside
/// [`no_grad`] scopes; rarely needed).
pub fn with_no_grad_disabled<T>(f: impl FnOnce() -> T) -> T {
    let prev = NO_GRAD.with(|c| c.replace(false));
    let out = f();
    NO_GRAD.with(|c| c.set(prev));
    out
}

pub(crate) fn grad_enabled() -> bool {
    NO_GRAD.with(|c| !c.get())
}

/// Backward closure: receives the gradient of the output and the parent
/// tensors, and accumulates gradients into the parents.
pub(crate) type BackwardFn = Box<dyn Fn(&[f32], &[Tensor])>;

pub(crate) struct Inner {
    pub(crate) id: u64,
    /// Name of the op that produced this node (`"leaf"`/`"param"` for
    /// leaves) — the taint layer's provenance label.
    pub(crate) op: &'static str,
    pub(crate) shape: Vec<usize>,
    pub(crate) values: RefCell<Vec<f32>>,
    pub(crate) grad: RefCell<Option<Vec<f32>>>,
    pub(crate) requires_grad: Cell<bool>,
    pub(crate) parents: Vec<Tensor>,
    pub(crate) backward: Option<BackwardFn>,
}

/// A dense `f32` tensor participating in a dynamic autograd graph.
///
/// Cloning a `Tensor` is cheap (reference count bump) and clones share both
/// values and gradient storage. Ops build new nodes; calling
/// [`Tensor::backward`] on a scalar walks the graph in reverse topological
/// order and fills the `grad` buffers of every tensor created with
/// [`Tensor::param`] (and intermediates on the path).
pub struct Tensor {
    pub(crate) inner: Rc<Inner>,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        Tensor {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let v = self.inner.values.borrow();
        let preview: Vec<f32> = v.iter().take(8).copied().collect();
        write!(
            f,
            "Tensor(shape={:?}, requires_grad={}, values[..8]={:?})",
            self.inner.shape,
            self.inner.requires_grad.get(),
            preview
        )
    }
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// A leaf tensor that does not require gradients (inputs, constants).
    pub fn new(values: Vec<f32>, shape: &[usize]) -> Self {
        check_numel(values.len(), shape);
        let id = next_id();
        taint::scan("leaf", id, shape, &values);
        Tensor {
            inner: Rc::new(Inner {
                id,
                op: "leaf",
                shape: shape.to_vec(),
                values: RefCell::new(values),
                grad: RefCell::new(None),
                requires_grad: Cell::new(false),
                parents: Vec::new(),
                backward: None,
            }),
        }
    }

    /// A trainable leaf tensor: gradients accumulate here during backward.
    pub fn param(values: Vec<f32>, shape: &[usize]) -> Self {
        check_numel(values.len(), shape);
        let id = next_id();
        taint::scan("param", id, shape, &values);
        Tensor {
            inner: Rc::new(Inner {
                id,
                op: "param",
                shape: shape.to_vec(),
                values: RefCell::new(values),
                grad: RefCell::new(None),
                requires_grad: Cell::new(true),
                parents: Vec::new(),
                backward: None,
            }),
        }
    }

    /// Internal constructor for op results. If gradient recording is off or
    /// no parent requires gradients, the history is pruned. `op` is the
    /// node's provenance label; when taint mode is on the output is scanned
    /// and the first non-finite value on the thread is attributed to it.
    pub(crate) fn from_op(
        op: &'static str,
        values: Vec<f32>,
        shape: Vec<usize>,
        parents: Vec<Tensor>,
        backward: BackwardFn,
    ) -> Self {
        check_numel(values.len(), &shape);
        let id = next_id();
        taint::scan(op, id, &shape, &values);
        let track = grad_enabled() && parents.iter().any(|p| p.inner.requires_grad.get());
        Tensor {
            inner: Rc::new(Inner {
                id,
                op,
                shape,
                values: RefCell::new(values),
                grad: RefCell::new(None),
                requires_grad: Cell::new(track),
                parents: if track { parents } else { Vec::new() },
                backward: if track { Some(backward) } else { None },
            }),
        }
    }

    /// All-zero leaf tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor::new(vec![0.0; numel(shape)], shape)
    }

    /// All-one leaf tensor.
    pub fn ones(shape: &[usize]) -> Self {
        Tensor::new(vec![1.0; numel(shape)], shape)
    }

    /// Leaf tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Tensor::new(vec![value; numel(shape)], shape)
    }

    /// A scalar (shape `[1]`) leaf tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor::new(vec![value], &[1])
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Unique node id (useful for parameter registries).
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// Name of the op that produced this node (`"leaf"`/`"param"` for
    /// leaves) — the taint layer's provenance label.
    pub fn op(&self) -> &'static str {
        self.inner.op
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.inner.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        numel(&self.inner.shape)
    }

    /// True when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether gradients flow into (or through) this tensor.
    pub fn requires_grad(&self) -> bool {
        self.inner.requires_grad.get()
    }

    /// Borrow the value buffer.
    pub fn values(&self) -> Ref<'_, Vec<f32>> {
        self.inner.values.borrow()
    }

    /// Copy the values out.
    pub fn to_vec(&self) -> Vec<f32> {
        self.inner.values.borrow().clone()
    }

    /// The single value of a scalar tensor.
    ///
    /// # Panics
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        let v = self.inner.values.borrow();
        assert_eq!(
            v.len(),
            1,
            "item() called on non-scalar tensor {:?}",
            self.inner.shape
        );
        v[0]
    }

    /// Checked [`item`](Self::item): a non-scalar tensor is a typed error,
    /// and a non-finite scalar reports its taint provenance (when latched)
    /// instead of silently returning NaN.
    pub fn try_item(&self) -> DarResult<f32> {
        let v = self.inner.values.borrow();
        if v.len() != 1 {
            return Err(DarError::InvalidData(format!(
                "item() called on non-scalar tensor {:?}",
                self.inner.shape
            )));
        }
        let x = v[0];
        if !x.is_finite() {
            return Err(taint::non_finite_error(self.inner.op));
        }
        Ok(x)
    }

    /// Copy of the accumulated gradient, if any.
    pub fn grad_vec(&self) -> Option<Vec<f32>> {
        self.inner.grad.borrow().clone()
    }

    /// Overwrite the value buffer in place (used by optimizers).
    ///
    /// # Panics
    /// Panics if the length changes.
    pub fn set_values(&self, values: Vec<f32>) {
        let mut v = self.inner.values.borrow_mut();
        assert_eq!(v.len(), values.len(), "set_values must preserve length");
        *v = values;
    }

    /// Mutate values in place through a closure (used by optimizers).
    pub fn update_values(&self, f: impl FnOnce(&mut [f32])) {
        f(&mut self.inner.values.borrow_mut());
    }

    /// Stop gradients from accumulating here: the tensor becomes a frozen
    /// leaf. Ops consuming it skip its weight-gradient computation entirely
    /// while gradients still flow *through* ops toward other inputs —
    /// exactly what DAR's fixed `predictor^t` needs.
    pub fn freeze(&self) {
        self.inner.requires_grad.set(false);
        *self.inner.grad.borrow_mut() = None;
    }

    /// Re-enable gradient accumulation on a leaf (inverse of [`freeze`]).
    ///
    /// # Panics
    /// Panics when called on a non-leaf (op result), whose history was
    /// already pruned.
    ///
    /// [`freeze`]: Tensor::freeze
    pub fn unfreeze(&self) {
        assert!(
            self.inner.backward.is_none(),
            "unfreeze only applies to leaf tensors"
        );
        self.inner.requires_grad.set(true);
    }

    /// Drop any accumulated gradient.
    pub fn zero_grad(&self) {
        *self.inner.grad.borrow_mut() = None;
    }

    /// Accumulate `g` into this tensor's gradient buffer.
    ///
    /// Mostly internal (backward closures call it), but public so tests and
    /// custom training code can seed gradients directly.
    pub fn accumulate_grad(&self, g: &[f32]) {
        debug_assert_eq!(g.len(), self.len(), "gradient length mismatch");
        let mut slot = self.inner.grad.borrow_mut();
        match slot.as_mut() {
            Some(buf) => {
                for (b, x) in buf.iter_mut().zip(g) {
                    *b += *x;
                }
            }
            None => *slot = Some(g.to_vec()),
        }
    }

    // ------------------------------------------------------------------
    // Autograd driver
    // ------------------------------------------------------------------

    /// Reverse-mode differentiation from this tensor.
    ///
    /// The receiver is typically a scalar loss; the seed gradient is 1 for
    /// every element (so for non-scalars this computes the gradient of the
    /// elementwise sum).
    pub fn backward(&self) {
        let order = self.topo_order();
        self.accumulate_grad(&vec![1.0; self.len()]);
        for node in order.iter().rev() {
            let Some(bw) = &node.inner.backward else {
                continue;
            };
            let grad = {
                let slot = node.inner.grad.borrow();
                match slot.as_ref() {
                    Some(g) => g.clone(),
                    // Node was reachable but received no gradient (e.g. a
                    // detached branch); nothing to propagate.
                    None => continue,
                }
            };
            bw(&grad, &node.inner.parents);
            // Intermediate gradients are not needed once propagated; free
            // them to keep step memory proportional to parameters.
            if !node.inner.parents.is_empty() {
                *node.inner.grad.borrow_mut() = None;
            }
        }
    }

    /// Iterative DFS topological order (parents before children).
    fn topo_order(&self) -> Vec<Tensor> {
        let mut order: Vec<Tensor> = Vec::new();
        let mut visited: HashSet<u64> = HashSet::new();
        // Stack of (node, next-parent-index) frames to avoid recursion on
        // deep graphs (e.g. long GRU unrolls).
        let mut stack: Vec<(Tensor, usize)> = vec![(self.clone(), 0)];
        visited.insert(self.inner.id);
        while let Some((node, pi)) = stack.pop() {
            if pi < node.inner.parents.len() {
                let parent = node.inner.parents[pi].clone();
                stack.push((node, pi + 1));
                if parent.inner.requires_grad.get() && visited.insert(parent.inner.id) {
                    stack.push((parent, 0));
                }
            } else {
                order.push(node);
            }
        }
        order
    }

    /// A gradient-isolated copy: same values, fresh leaf, no history.
    pub fn detach(&self) -> Tensor {
        Tensor::new(self.to_vec(), &self.inner.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_construction_and_access() {
        let t = Tensor::new(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(t.shape(), &[2, 2]);
        assert_eq!(t.len(), 4);
        assert!(!t.requires_grad());
        assert_eq!(t.to_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn shape_mismatch_panics() {
        let _ = Tensor::new(vec![1.0, 2.0], &[3]);
    }

    #[test]
    fn param_requires_grad() {
        let p = Tensor::param(vec![0.5], &[1]);
        assert!(p.requires_grad());
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(7.5).item(), 7.5);
    }

    #[test]
    fn grad_accumulates_across_calls() {
        let p = Tensor::param(vec![1.0, 2.0], &[2]);
        p.accumulate_grad(&[1.0, 1.0]);
        p.accumulate_grad(&[0.5, 0.25]);
        assert_eq!(p.grad_vec().unwrap(), vec![1.5, 1.25]);
        p.zero_grad();
        assert!(p.grad_vec().is_none());
    }

    #[test]
    fn backward_on_leaf_sets_ones() {
        let p = Tensor::param(vec![3.0, 4.0], &[2]);
        p.backward();
        assert_eq!(p.grad_vec().unwrap(), vec![1.0, 1.0]);
    }

    #[test]
    fn no_grad_prunes_history() {
        let p = Tensor::param(vec![1.0], &[1]);
        let y = no_grad(|| p.mul(&p));
        assert!(!y.requires_grad());
        y.backward();
        assert!(p.grad_vec().is_none());
    }

    #[test]
    fn detach_blocks_gradient() {
        let p = Tensor::param(vec![2.0], &[1]);
        let d = p.detach();
        let y = d.mul(&d);
        y.backward();
        assert!(p.grad_vec().is_none());
        assert_eq!(y.item(), 4.0);
    }

    #[test]
    fn clone_shares_storage() {
        let p = Tensor::param(vec![1.0], &[1]);
        let q = p.clone();
        p.update_values(|v| v[0] = 9.0);
        assert_eq!(q.item(), 9.0);
        assert_eq!(p.id(), q.id());
    }
}
