//! Matrix multiplication: a blocked, multi-threaded 2-D GEMM kernel plus a
//! batched 3-D variant used by attention.

use crate::Tensor;

/// Rows below this size are not worth spreading across threads.
const PARALLEL_FLOP_THRESHOLD: usize = 4_000_000;

/// `out[m,n] += a[m,k] * b[k,n]` — ikj loop order so the inner loop is a
/// vectorizable axpy over contiguous rows of `b` and `out`.
fn gemm_serial(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Threaded GEMM: splits output rows across scoped threads when the work is
/// large enough to amortize spawning.
pub(crate) fn gemm(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    let flops = 2 * m * k * n;
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    if flops < PARALLEL_FLOP_THRESHOLD || threads < 2 || m < 2 * threads {
        gemm_serial(a, b, &mut out, m, k, n);
        return out;
    }
    let rows_per = m.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut rest = out.as_mut_slice();
        let mut row0 = 0usize;
        while row0 < m {
            let rows = rows_per.min(m - row0);
            let (chunk, tail) = rest.split_at_mut(rows * n);
            rest = tail;
            let a_chunk = &a[row0 * k..(row0 + rows) * k];
            scope.spawn(move || {
                gemm_serial(a_chunk, b, chunk, rows, k, n);
            });
            row0 += rows;
        }
    });
    out
}

/// Materialize the transpose of a row-major `[r, c]` matrix.
pub(crate) fn transpose_raw(x: &[f32], r: usize, c: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; r * c];
    for i in 0..r {
        for j in 0..c {
            out[j * r + i] = x[i * c + j];
        }
    }
    out
}

impl Tensor {
    /// 2-D matrix product `self[m,k] @ other[k,n] -> [m,n]`.
    ///
    /// # Panics
    /// Panics on non-2-D operands or mismatched inner dimensions.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let (sa, sb) = (self.shape(), other.shape());
        assert_eq!(sa.len(), 2, "matmul lhs must be 2-D, got {sa:?}");
        assert_eq!(sb.len(), 2, "matmul rhs must be 2-D, got {sb:?}");
        assert_eq!(sa[1], sb[0], "matmul inner dims differ: {sa:?} @ {sb:?}");
        let (m, k, n) = (sa[0], sa[1], sb[1]);
        let values = gemm(&self.values(), &other.values(), m, k, n);
        Tensor::from_op(
            values,
            vec![m, n],
            vec![self.clone(), other.clone()],
            Box::new(move |g, parents| {
                let (a, b) = (&parents[0], &parents[1]);
                if a.requires_grad() {
                    // dA = G @ B^T : [m,n] @ [n,k]
                    let bt = transpose_raw(&b.values(), k, n);
                    let ga = gemm(g, &bt, m, n, k);
                    a.accumulate_grad(&ga);
                }
                if b.requires_grad() {
                    // dB = A^T @ G : [k,m] @ [m,n]
                    let at = transpose_raw(&a.values(), m, k);
                    let gb = gemm(&at, g, k, m, n);
                    b.accumulate_grad(&gb);
                }
            }),
        )
    }

    /// Batched matrix product `self[b,m,k] @ other[b,k,n] -> [b,m,n]`.
    pub fn bmm(&self, other: &Tensor) -> Tensor {
        let (sa, sb) = (self.shape(), other.shape());
        assert_eq!(sa.len(), 3, "bmm lhs must be 3-D, got {sa:?}");
        assert_eq!(sb.len(), 3, "bmm rhs must be 3-D, got {sb:?}");
        assert_eq!(sa[0], sb[0], "bmm batch dims differ: {sa:?} vs {sb:?}");
        assert_eq!(sa[2], sb[1], "bmm inner dims differ: {sa:?} @ {sb:?}");
        let (bs, m, k, n) = (sa[0], sa[1], sa[2], sb[2]);
        let av = self.values();
        let bv = other.values();
        let mut values = vec![0.0f32; bs * m * n];
        for i in 0..bs {
            let a_i = &av[i * m * k..(i + 1) * m * k];
            let b_i = &bv[i * k * n..(i + 1) * k * n];
            gemm_serial(a_i, b_i, &mut values[i * m * n..(i + 1) * m * n], m, k, n);
        }
        drop(av);
        drop(bv);
        Tensor::from_op(
            values,
            vec![bs, m, n],
            vec![self.clone(), other.clone()],
            Box::new(move |g, parents| {
                let (a, b) = (&parents[0], &parents[1]);
                let av = a.values();
                let bv = b.values();
                if a.requires_grad() {
                    let mut ga = vec![0.0f32; bs * m * k];
                    for i in 0..bs {
                        let bt = transpose_raw(&bv[i * k * n..(i + 1) * k * n], k, n);
                        gemm_serial(
                            &g[i * m * n..(i + 1) * m * n],
                            &bt,
                            &mut ga[i * m * k..(i + 1) * m * k],
                            m,
                            n,
                            k,
                        );
                    }
                    drop(av);
                    a.accumulate_grad(&ga);
                } else {
                    drop(av);
                }
                if b.requires_grad() {
                    let av = a.values();
                    let mut gb = vec![0.0f32; bs * k * n];
                    for i in 0..bs {
                        let at = transpose_raw(&av[i * m * k..(i + 1) * m * k], m, k);
                        gemm_serial(
                            &at,
                            &g[i * m * n..(i + 1) * m * n],
                            &mut gb[i * k * n..(i + 1) * k * n],
                            k,
                            m,
                            n,
                        );
                    }
                    drop(av);
                    drop(bv);
                    b.accumulate_grad(&gb);
                }
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::Tensor;

    #[test]
    fn matmul_2x2_identity() {
        let a = Tensor::new(vec![1., 2., 3., 4.], &[2, 2]);
        let i = Tensor::new(vec![1., 0., 0., 1.], &[2, 2]);
        assert_eq!(a.matmul(&i).to_vec(), vec![1., 2., 3., 4.]);
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::new(vec![1., 2., 3., 4., 5., 6.], &[2, 3]);
        let b = Tensor::new(vec![7., 8., 9., 10., 11., 12.], &[3, 2]);
        // [[58, 64], [139, 154]]
        assert_eq!(a.matmul(&b).to_vec(), vec![58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_gradients() {
        let a = Tensor::param(vec![1., 2., 3., 4.], &[2, 2]);
        let b = Tensor::param(vec![5., 6., 7., 8.], &[2, 2]);
        let y = a.matmul(&b).sum();
        y.backward();
        // dA = G @ B^T with G = ones: rows sum of B columns.
        assert_eq!(a.grad_vec().unwrap(), vec![11., 15., 11., 15.]);
        assert_eq!(b.grad_vec().unwrap(), vec![4., 4., 6., 6.]);
    }

    #[test]
    fn large_matmul_threaded_matches_serial() {
        // Exercise the threaded path against a naive reference.
        let m = 64;
        let k = 200;
        let n = 170;
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 37) % 19) as f32 - 9.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 53) % 23) as f32 - 11.0).collect();
        let got = super::gemm(&a, &b, m, k, n);
        let mut want = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a[i * k + p] * b[p * n + j];
                }
                want[i * n + j] = acc;
            }
        }
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-3, "threaded gemm mismatch: {g} vs {w}");
        }
    }

    #[test]
    fn bmm_forward_and_grad() {
        let a = Tensor::param(vec![1., 0., 0., 1., 2., 0., 0., 2.], &[2, 2, 2]);
        let b = Tensor::param(vec![1., 2., 3., 4., 5., 6., 7., 8.], &[2, 2, 2]);
        let y = a.bmm(&b);
        assert_eq!(y.to_vec(), vec![1., 2., 3., 4., 10., 12., 14., 16.]);
        y.sum().backward();
        assert!(a.grad_vec().is_some());
        assert_eq!(b.grad_vec().unwrap(), vec![1., 1., 1., 1., 2., 2., 2., 2.]);
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn matmul_dim_mismatch_panics() {
        let a = Tensor::new(vec![0.0; 6], &[2, 3]);
        let b = Tensor::new(vec![0.0; 8], &[2, 4]);
        let _ = a.matmul(&b);
    }
}
