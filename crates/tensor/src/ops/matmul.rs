//! Matrix multiplication: a shard-parallel 2-D GEMM kernel plus a batched
//! 3-D variant used by attention.
//!
//! Parallelism goes through `dar-par` with a **fixed shard decomposition**:
//! the shard count is a pure function of the problem size (never of the
//! thread budget), every shard writes a disjoint row range of the output,
//! and each output element is produced by the same serial inner loop as the
//! single-threaded path. Results are therefore bit-identical for any
//! `DAR_THREADS` (DESIGN.md §9).

use crate::error::{DarError, DarResult};
use crate::ops::kernel::{current_kernel, Kernel};
use crate::Tensor;

/// Problems below this many flops are not worth dispatching to the pool.
const PARALLEL_FLOP_THRESHOLD: usize = 200_000;

/// Don't split finer than this many output rows per shard.
const MIN_ROWS_PER_SHARD: usize = 4;

/// Deterministic shard count for an `[m,k] @ [k,n]` product: 1 below the
/// flop threshold, otherwise a pure function of `m`.
fn gemm_shards(m: usize, k: usize, n: usize) -> usize {
    if 2 * m * k * n < PARALLEL_FLOP_THRESHOLD {
        1
    } else {
        dar_par::shard_count(m, MIN_ROWS_PER_SHARD)
    }
}

/// Shard-parallel GEMM: splits output rows into fixed shards; each shard
/// runs the backend's serial kernel over its rows, so per-element
/// summation order is independent of both sharding and thread count. The
/// kernel is captured by the *dispatching* thread and threaded into the
/// shards (pool workers never consult their own backend selection).
pub(crate) fn gemm(
    kern: &'static dyn Kernel,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    let shards = gemm_shards(m, k, n);
    if shards <= 1 || out.is_empty() {
        kern.gemm(a, b, &mut out, m, k, n);
        return out;
    }
    dar_par::run_shards_mut(&mut out, shards, n, |i, chunk| {
        let r = dar_par::shard_range(m, shards, i);
        kern.gemm(&a[r.start * k..r.end * k], b, chunk, r.len(), k, n);
    });
    out
}

/// Materialize the transpose of a row-major `[r, c]` matrix.
pub(crate) fn transpose_raw(x: &[f32], r: usize, c: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; r * c];
    for i in 0..r {
        for j in 0..c {
            out[j * r + i] = x[i * c + j];
        }
    }
    out
}

/// Deterministic shard count for a batch of `bs` independent `[m,k] @
/// [k,n]` products (each batch item stays whole within one shard).
fn bmm_shards(bs: usize, m: usize, k: usize, n: usize) -> usize {
    if 2 * bs * m * k * n < PARALLEL_FLOP_THRESHOLD {
        1
    } else {
        dar_par::shard_count(bs, 1)
    }
}

impl Tensor {
    /// 2-D matrix product `self[m,k] @ other[k,n] -> [m,n]`.
    ///
    /// # Panics
    /// Panics on non-2-D operands or mismatched inner dimensions.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        self.try_matmul(other).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked [`matmul`](Self::matmul): rank or inner-dim mismatch is a
    /// typed error instead of a panic.
    pub fn try_matmul(&self, other: &Tensor) -> DarResult<Tensor> {
        let _span = dar_obs::span("matmul");
        let (sa, sb) = (self.shape(), other.shape());
        if sa.len() != 2 {
            return Err(DarError::InvalidData(format!(
                "matmul lhs must be 2-D, got {sa:?}"
            )));
        }
        if sb.len() != 2 {
            return Err(DarError::InvalidData(format!(
                "matmul rhs must be 2-D, got {sb:?}"
            )));
        }
        if sa[1] != sb[0] {
            return Err(DarError::InvalidData(format!(
                "matmul inner dims differ: {sa:?} @ {sb:?}"
            )));
        }
        let (m, k, n) = (sa[0], sa[1], sb[1]);
        let kern = current_kernel();
        let values = gemm(kern, &self.values(), &other.values(), m, k, n);
        Ok(Tensor::from_op(
            "matmul",
            values,
            vec![m, n],
            vec![self.clone(), other.clone()],
            Box::new(move |g, parents| {
                let (a, b) = (&parents[0], &parents[1]);
                if a.requires_grad() {
                    // dA = G @ B^T : [m,n] @ [n,k]
                    let bt = transpose_raw(&b.values(), k, n);
                    let ga = gemm(kern, g, &bt, m, n, k);
                    a.accumulate_grad(&ga);
                }
                if b.requires_grad() {
                    // dB = A^T @ G : [k,m] @ [m,n]
                    let at = transpose_raw(&a.values(), m, k);
                    let gb = gemm(kern, &at, g, k, m, n);
                    b.accumulate_grad(&gb);
                }
            }),
        ))
    }

    /// Batched matrix product `self[b,m,k] @ other[b,k,n] -> [b,m,n]`,
    /// shard-parallel over the batch dimension.
    pub fn bmm(&self, other: &Tensor) -> Tensor {
        self.try_bmm(other).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked [`bmm`](Self::bmm): rank, batch, or inner-dim mismatch is a
    /// typed error instead of a panic.
    pub fn try_bmm(&self, other: &Tensor) -> DarResult<Tensor> {
        let _span = dar_obs::span("bmm");
        let (sa, sb) = (self.shape(), other.shape());
        if sa.len() != 3 {
            return Err(DarError::InvalidData(format!(
                "bmm lhs must be 3-D, got {sa:?}"
            )));
        }
        if sb.len() != 3 {
            return Err(DarError::InvalidData(format!(
                "bmm rhs must be 3-D, got {sb:?}"
            )));
        }
        if sa[0] != sb[0] {
            return Err(DarError::InvalidData(format!(
                "bmm batch dims differ: {sa:?} vs {sb:?}"
            )));
        }
        if sa[2] != sb[1] {
            return Err(DarError::InvalidData(format!(
                "bmm inner dims differ: {sa:?} @ {sb:?}"
            )));
        }
        let (bs, m, k, n) = (sa[0], sa[1], sa[2], sb[2]);
        let kern = current_kernel();
        let av_guard = self.values();
        let bv_guard = other.values();
        // Reborrow as plain slices: the cell guards are not Sync, slices are.
        let (av, bv): (&[f32], &[f32]) = (&av_guard, &bv_guard);
        let mut values = vec![0.0f32; bs * m * n];
        let shards = bmm_shards(bs, m, k, n);
        if shards <= 1 || values.is_empty() {
            for i in 0..bs {
                let a_i = &av[i * m * k..(i + 1) * m * k];
                let b_i = &bv[i * k * n..(i + 1) * k * n];
                kern.gemm(a_i, b_i, &mut values[i * m * n..(i + 1) * m * n], m, k, n);
            }
        } else {
            dar_par::run_shards_mut(&mut values, shards, m * n, |s, chunk| {
                for (local, i) in dar_par::shard_range(bs, shards, s).enumerate() {
                    kern.gemm(
                        &av[i * m * k..(i + 1) * m * k],
                        &bv[i * k * n..(i + 1) * k * n],
                        &mut chunk[local * m * n..(local + 1) * m * n],
                        m,
                        k,
                        n,
                    );
                }
            });
        }
        drop(av_guard);
        drop(bv_guard);
        Ok(Tensor::from_op(
            "bmm",
            values,
            vec![bs, m, n],
            vec![self.clone(), other.clone()],
            Box::new(move |g, parents| {
                let (a, b) = (&parents[0], &parents[1]);
                let shards = bmm_shards(bs, m, k, n);
                if a.requires_grad() {
                    let bv_guard = b.values();
                    let bv: &[f32] = &bv_guard;
                    let mut ga = vec![0.0f32; bs * m * k];
                    let per_item = |i: usize, out: &mut [f32]| {
                        // dA_i = G_i @ B_i^T
                        let bt = transpose_raw(&bv[i * k * n..(i + 1) * k * n], k, n);
                        kern.gemm(&g[i * m * n..(i + 1) * m * n], &bt, out, m, n, k);
                    };
                    if shards <= 1 || ga.is_empty() {
                        for i in 0..bs {
                            per_item(i, &mut ga[i * m * k..(i + 1) * m * k]);
                        }
                    } else {
                        dar_par::run_shards_mut(&mut ga, shards, m * k, |s, chunk| {
                            for (local, i) in dar_par::shard_range(bs, shards, s).enumerate() {
                                per_item(i, &mut chunk[local * m * k..(local + 1) * m * k]);
                            }
                        });
                    }
                    drop(bv_guard);
                    a.accumulate_grad(&ga);
                }
                if b.requires_grad() {
                    let av_guard = a.values();
                    let av: &[f32] = &av_guard;
                    let mut gb = vec![0.0f32; bs * k * n];
                    let per_item = |i: usize, out: &mut [f32]| {
                        // dB_i = A_i^T @ G_i
                        let at = transpose_raw(&av[i * m * k..(i + 1) * m * k], m, k);
                        kern.gemm(&at, &g[i * m * n..(i + 1) * m * n], out, k, m, n);
                    };
                    if shards <= 1 || gb.is_empty() {
                        for i in 0..bs {
                            per_item(i, &mut gb[i * k * n..(i + 1) * k * n]);
                        }
                    } else {
                        dar_par::run_shards_mut(&mut gb, shards, k * n, |s, chunk| {
                            for (local, i) in dar_par::shard_range(bs, shards, s).enumerate() {
                                per_item(i, &mut chunk[local * k * n..(local + 1) * k * n]);
                            }
                        });
                    }
                    drop(av_guard);
                    b.accumulate_grad(&gb);
                }
            }),
        ))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use crate::Tensor;

    #[test]
    fn matmul_2x2_identity() {
        let a = Tensor::new(vec![1., 2., 3., 4.], &[2, 2]);
        let i = Tensor::new(vec![1., 0., 0., 1.], &[2, 2]);
        assert_eq!(a.matmul(&i).to_vec(), vec![1., 2., 3., 4.]);
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::new(vec![1., 2., 3., 4., 5., 6.], &[2, 3]);
        let b = Tensor::new(vec![7., 8., 9., 10., 11., 12.], &[3, 2]);
        // [[58, 64], [139, 154]]
        assert_eq!(a.matmul(&b).to_vec(), vec![58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_gradients() {
        let a = Tensor::param(vec![1., 2., 3., 4.], &[2, 2]);
        let b = Tensor::param(vec![5., 6., 7., 8.], &[2, 2]);
        let y = a.matmul(&b).sum();
        y.backward();
        // dA = G @ B^T with G = ones: rows sum of B columns.
        assert_eq!(a.grad_vec().unwrap(), vec![11., 15., 11., 15.]);
        assert_eq!(b.grad_vec().unwrap(), vec![4., 4., 6., 6.]);
    }

    #[test]
    fn large_matmul_threaded_matches_serial() {
        // Exercise the sharded path against a naive reference.
        let m = 64;
        let k = 200;
        let n = 170;
        let a: Vec<f32> = (0..m * k).map(|i| ((i * 37) % 19) as f32 - 9.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i * 53) % 23) as f32 - 11.0).collect();
        let got = super::gemm(crate::current_kernel(), &a, &b, m, k, n);
        let mut want = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a[i * k + p] * b[p * n + j];
                }
                want[i * n + j] = acc;
            }
        }
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-3, "threaded gemm mismatch: {g} vs {w}");
        }
    }

    #[test]
    fn gemm_is_bit_identical_across_thread_budgets() {
        // The determinism contract: any thread budget, same bits.
        let m = 48;
        let k = 96;
        let n = 64;
        let a: Vec<f32> = (0..m * k)
            .map(|i| ((i * 31) % 17) as f32 * 0.37 - 2.0)
            .collect();
        let b: Vec<f32> = (0..k * n)
            .map(|i| ((i * 29) % 13) as f32 * 0.11 - 0.7)
            .collect();
        for kern in [
            crate::kernel_for(crate::KernelBackend::Reference),
            crate::kernel_for(crate::KernelBackend::Blocked),
        ] {
            let serial = dar_par::with_threads(1, || super::gemm(kern, &a, &b, m, k, n));
            let par = dar_par::with_threads(4, || super::gemm(kern, &a, &b, m, k, n));
            assert_eq!(
                serial,
                par,
                "{} gemm output depends on thread budget",
                kern.name()
            );
        }
    }

    #[test]
    fn bmm_is_bit_identical_across_thread_budgets() {
        let (bs, m, k, n) = (8, 16, 24, 20);
        let a = Tensor::new(
            (0..bs * m * k)
                .map(|i| ((i * 7) % 11) as f32 - 5.0)
                .collect(),
            &[bs, m, k],
        );
        let b = Tensor::new(
            (0..bs * k * n)
                .map(|i| ((i * 5) % 9) as f32 - 4.0)
                .collect(),
            &[bs, k, n],
        );
        let run = |threads: usize| {
            dar_par::with_threads(threads, || {
                let ap = Tensor::param(a.to_vec(), &[bs, m, k]);
                let bp = Tensor::param(b.to_vec(), &[bs, k, n]);
                let y = ap.bmm(&bp);
                y.sum().backward();
                (y.to_vec(), ap.grad_vec().unwrap(), bp.grad_vec().unwrap())
            })
        };
        assert_eq!(run(1), run(4), "bmm fwd/bwd depends on thread budget");
    }

    #[test]
    fn bmm_forward_and_grad() {
        let a = Tensor::param(vec![1., 0., 0., 1., 2., 0., 0., 2.], &[2, 2, 2]);
        let b = Tensor::param(vec![1., 2., 3., 4., 5., 6., 7., 8.], &[2, 2, 2]);
        let y = a.bmm(&b);
        assert_eq!(y.to_vec(), vec![1., 2., 3., 4., 10., 12., 14., 16.]);
        y.sum().backward();
        assert!(a.grad_vec().is_some());
        assert_eq!(b.grad_vec().unwrap(), vec![1., 1., 1., 1., 2., 2., 2., 2.]);
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn matmul_dim_mismatch_panics() {
        let a = Tensor::new(vec![0.0; 6], &[2, 3]);
        let b = Tensor::new(vec![0.0; 8], &[2, 4]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn try_matmul_and_bmm_return_typed_errors() {
        let a = Tensor::new(vec![0.0; 6], &[2, 3]);
        let b = Tensor::new(vec![0.0; 8], &[2, 4]);
        assert!(a.try_matmul(&b).is_err());
        assert!(a.try_matmul(&a).is_err()); // inner dims 3 vs 2
        assert!(a.try_bmm(&b).is_err()); // not 3-D
        let i = Tensor::new(vec![1., 0., 0., 1., 0., 0.], &[3, 2]);
        assert_eq!(a.try_matmul(&i).unwrap().shape(), &[2, 2]);
    }
}
