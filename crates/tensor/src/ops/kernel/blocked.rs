//! Cache-blocked + SIMD kernel backend.
//!
//! GEMM follows the classic GotoBLAS decomposition: loop over `NC`-wide
//! column blocks of C, `KC`-deep slices of K (packing B once per slice),
//! and `MC`-tall row blocks (packing A once per block), then sweep an
//! MR×NR register microkernel over the packed panels. Packing zero-pads
//! partial panels, so the microkernel never branches on edges; partial
//! output tiles go through a small on-stack staging tile instead.
//!
//! All scratch comes from the per-thread arena ([`super::with_scratch`]);
//! block sizes are compile-time constants, so the compute decomposition —
//! and therefore every float — is a pure function of `(m, k, n)`: the
//! bit-determinism contract across `DAR_THREADS` holds exactly as it does
//! for the reference backend (sharding happens *above* the kernel and
//! shard boundaries only pick which rows each call sees).
//!
//! On x86-64 with runtime-detected AVX2+FMA the microkernel and the row
//! kernels (softmax / log-softmax / layer norm / sigmoid / tanh) use
//! `std::arch` intrinsics from [`super::simd`]; otherwise everything falls
//! back to the scalar reference loops, which still benefit from the
//! blocked memory traffic.

use super::reference::ReferenceKernel;
use super::{with_scratch, Kernel};

/// Microtile rows: each microkernel call produces MR output rows.
const MR: usize = 6;
/// Microtile columns: two 8-lane vectors per row.
const NR: usize = 16;
/// K-slice depth — one packed A panel column set fits L1 alongside B rows.
const KC: usize = 256;
/// Row-block height (a multiple of MR) — packed A block sized for L2.
const MC: usize = 72;
/// Column-block width (a multiple of NR) — packed B block sized for L2/L3.
const NC: usize = 512;

/// Below this many multiply-adds the packed path's setup cannot amortize;
/// use the unpacked vector axpy instead.
const PACK_FLOP_THRESHOLD: usize = 32 * 1024;

/// The cache-blocked SIMD backend.
#[derive(Debug, Default, Clone, Copy)]
pub struct BlockedKernel;

/// Whether the `std::arch` AVX2+FMA paths are usable on this machine
/// (always false off x86-64).
fn have_avx2() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        super::simd::avx2_available()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Numeric SIMD level for bench context keys (0 = scalar, 2 = AVX2+FMA).
pub fn simd_level() -> u32 {
    #[cfg(target_arch = "x86_64")]
    {
        super::simd::simd_level()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        0
    }
}

/// Pack the `mc × kc` block of `a` (full row stride `lda`) starting at
/// `(ic, pc)` into MR-row panels: `dst[panel][p][i]`, zero-padding rows
/// past `mc` so the microkernel can always consume full MR strips.
fn pack_a(a: &[f32], lda: usize, ic: usize, mc: usize, pc: usize, kc: usize, dst: &mut [f32]) {
    let panels = mc.div_ceil(MR);
    for ip in 0..panels {
        let base = ip * kc * MR;
        let rows = MR.min(mc - ip * MR);
        for p in 0..kc {
            let out = &mut dst[base + p * MR..base + p * MR + MR];
            for (i, o) in out.iter_mut().enumerate() {
                *o = if i < rows {
                    a[(ic + ip * MR + i) * lda + pc + p]
                } else {
                    0.0
                };
            }
        }
    }
}

/// Pack the `kc × nc` block of `b` (full row stride `ldb`) starting at
/// `(pc, jc)` into NR-column panels: `dst[panel][p][j]`, zero-padding
/// columns past `nc`.
fn pack_b(b: &[f32], ldb: usize, pc: usize, kc: usize, jc: usize, nc: usize, dst: &mut [f32]) {
    let panels = nc.div_ceil(NR);
    for jp in 0..panels {
        let base = jp * kc * NR;
        let col0 = jc + jp * NR;
        let cols = NR.min(nc - jp * NR);
        for p in 0..kc {
            let src_row = (pc + p) * ldb;
            let out = &mut dst[base + p * NR..base + p * NR + NR];
            if cols == NR {
                out.copy_from_slice(&b[src_row + col0..src_row + col0 + NR]);
            } else {
                for (j, o) in out.iter_mut().enumerate() {
                    *o = if j < cols { b[src_row + col0 + j] } else { 0.0 };
                }
            }
        }
    }
}

/// Portable MR×NR microkernel over packed panels (same contract as
/// [`super::simd::microkernel_6x16`]); the fixed-size accumulator tile
/// autovectorizes on any target.
fn microkernel_scalar(ap: &[f32], bp: &[f32], kc: usize, c: &mut [f32], ldc: usize) {
    let mut acc = [[0.0f32; NR]; MR];
    for p in 0..kc {
        let arow = &ap[p * MR..p * MR + MR];
        let brow = &bp[p * NR..p * NR + NR];
        for (i, accrow) in acc.iter_mut().enumerate() {
            let av = arow[i];
            for (o, &bv) in accrow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    for (i, accrow) in acc.iter().enumerate() {
        for (o, &v) in c[i * ldc..i * ldc + NR].iter_mut().zip(accrow) {
            *o += v;
        }
    }
}

/// Run the microkernel for one (possibly partial) output tile at
/// `(row0, col0)`. Full tiles hit `c` directly; partial tiles stage
/// through a zeroed MR×NR scratch tile and add the valid region.
#[allow(clippy::too_many_arguments)]
fn tile(
    ap: &[f32],
    bp: &[f32],
    kc: usize,
    c: &mut [f32],
    n: usize,
    row0: usize,
    col0: usize,
    mr: usize,
    nr: usize,
    tmp: &mut [f32],
    avx2: bool,
) {
    if mr == MR && nr == NR {
        let start = row0 * n + col0;
        #[cfg(target_arch = "x86_64")]
        if avx2 {
            // SAFETY: AVX2+FMA checked via `avx2`; ap/bp hold at least
            // kc*MR / kc*NR packed floats, and the full-tile case
            // guarantees rows row0..row0+6 and cols col0..col0+16 are in
            // bounds, so every touched index is < m*n.
            unsafe {
                super::simd::microkernel_6x16(
                    ap.as_ptr(),
                    bp.as_ptr(),
                    kc,
                    c.as_mut_ptr().add(start),
                    n,
                );
            }
            return;
        }
        let end = start + (MR - 1) * n + NR;
        microkernel_scalar(ap, bp, kc, &mut c[start..end], n);
        return;
    }
    tmp[..MR * NR].fill(0.0);
    #[cfg(target_arch = "x86_64")]
    if avx2 {
        // SAFETY: AVX2+FMA checked via `avx2`; tmp is a dedicated MR×NR
        // staging tile, ap/bp hold at least kc*MR / kc*NR packed floats.
        unsafe {
            super::simd::microkernel_6x16(ap.as_ptr(), bp.as_ptr(), kc, tmp.as_mut_ptr(), NR);
        }
    }
    if !avx2 {
        microkernel_scalar(ap, bp, kc, tmp, NR);
    }
    for i in 0..mr {
        let crow = &mut c[(row0 + i) * n + col0..(row0 + i) * n + col0 + nr];
        for (o, &v) in crow.iter_mut().zip(&tmp[i * NR..i * NR + nr]) {
            *o += v;
        }
    }
}

/// The packed cache-blocked GEMM: `c += a @ b`.
fn gemm_blocked(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let avx2 = have_avx2();
    let a_cap = MC.div_ceil(MR) * MR * KC;
    let b_cap = NC * KC;
    with_scratch(a_cap + b_cap + MR * NR, |scratch| {
        let (abuf, rest) = scratch.split_at_mut(a_cap);
        let (bbuf, tmp) = rest.split_at_mut(b_cap);
        let mut jc = 0;
        while jc < n {
            let nc = NC.min(n - jc);
            let mut pc = 0;
            while pc < k {
                let kc = KC.min(k - pc);
                pack_b(b, n, pc, kc, jc, nc, bbuf);
                let mut ic = 0;
                while ic < m {
                    let mc = MC.min(m - ic);
                    pack_a(a, k, ic, mc, pc, kc, abuf);
                    let npan = nc.div_ceil(NR);
                    let mpan = mc.div_ceil(MR);
                    for jp in 0..npan {
                        let nr = NR.min(nc - jp * NR);
                        let bp = &bbuf[jp * kc * NR..(jp + 1) * kc * NR];
                        for ip in 0..mpan {
                            let mr = MR.min(mc - ip * MR);
                            let ap = &abuf[ip * kc * MR..(ip + 1) * kc * MR];
                            tile(
                                ap,
                                bp,
                                kc,
                                c,
                                n,
                                ic + ip * MR,
                                jc + jp * NR,
                                mr,
                                nr,
                                tmp,
                                avx2,
                            );
                        }
                    }
                    ic += MC;
                }
                pc += KC;
            }
            jc += NC;
        }
    });
}

impl Kernel for BlockedKernel {
    fn name(&self) -> &'static str {
        "blocked"
    }

    fn gru_rows_hint(&self) -> usize {
        // Fat shards: per-step GEMMs below the MR row tile never engage
        // the packed path, and at the historical granularity (1 row/shard
        // minimum ⇒ up to 16 shards) the blocked backend spends more time
        // on shard bookkeeping than on math. 16 rows per shard keeps a
        // batch-32 step at m=16 GEMMs (2 shards) while still splitting
        // work for the pool on larger batches.
        16
    }

    fn gemm(&self, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), k * n);
        debug_assert_eq!(c.len(), m * n);
        if m == 0 || n == 0 || k == 0 {
            return;
        }
        if !have_avx2() {
            // No intrinsics: blocking alone doesn't beat the streaming
            // axpy at these sizes, so keep the portable loop.
            ReferenceKernel.gemm(a, b, c, m, k, n);
            return;
        }
        #[cfg(target_arch = "x86_64")]
        if m < MR || m * k * n < PACK_FLOP_THRESHOLD {
            // SAFETY: AVX2+FMA availability checked above; slice lengths
            // asserted to m*k / k*n / m*n.
            unsafe { super::simd::gemm_axpy(a, b, c, m, k, n) };
            return;
        }
        gemm_blocked(a, b, c, m, k, n);
    }

    fn softmax_rows(&self, x: &[f32], out: &mut [f32], c: usize) {
        #[cfg(target_arch = "x86_64")]
        if have_avx2() {
            // SAFETY: AVX2+FMA availability checked; `x` and `out` are the
            // same length by the op-layer contract.
            unsafe { super::simd::softmax_rows(x, out, c) };
            return;
        }
        ReferenceKernel.softmax_rows(x, out, c);
    }

    fn softmax_bwd_rows(&self, y: &[f32], g: &[f32], gin: &mut [f32], c: usize) {
        #[cfg(target_arch = "x86_64")]
        if have_avx2() {
            // SAFETY: AVX2+FMA availability checked; equal-length slices
            // per the op-layer contract.
            unsafe { super::simd::softmax_bwd_rows(y, g, gin, c) };
            return;
        }
        ReferenceKernel.softmax_bwd_rows(y, g, gin, c);
    }

    fn log_softmax_rows(&self, x: &[f32], out: &mut [f32], c: usize) {
        #[cfg(target_arch = "x86_64")]
        if have_avx2() {
            // SAFETY: AVX2+FMA availability checked; equal-length slices
            // per the op-layer contract.
            unsafe { super::simd::log_softmax_rows(x, out, c) };
            return;
        }
        ReferenceKernel.log_softmax_rows(x, out, c);
    }

    fn log_softmax_bwd_rows(&self, ls: &[f32], g: &[f32], gin: &mut [f32], c: usize) {
        #[cfg(target_arch = "x86_64")]
        if have_avx2() {
            // SAFETY: AVX2+FMA availability checked; equal-length slices
            // per the op-layer contract.
            unsafe { super::simd::log_softmax_bwd_rows(ls, g, gin, c) };
            return;
        }
        ReferenceKernel.log_softmax_bwd_rows(ls, g, gin, c);
    }

    fn layer_norm_rows(
        &self,
        x: &[f32],
        gamma: &[f32],
        beta: &[f32],
        out: &mut [f32],
        xhat: &mut [f32],
        inv_std: &mut [f32],
        c: usize,
        eps: f32,
    ) {
        #[cfg(target_arch = "x86_64")]
        if have_avx2() {
            // SAFETY: AVX2+FMA availability checked; buffer lengths per
            // the op-layer contract (x/out/xhat rows*c, gamma/beta c,
            // inv_std rows).
            unsafe { super::simd::layer_norm_rows(x, gamma, beta, out, xhat, inv_std, c, eps) };
            return;
        }
        ReferenceKernel.layer_norm_rows(x, gamma, beta, out, xhat, inv_std, c, eps);
    }

    fn layer_norm_bwd_rows(
        &self,
        g: &[f32],
        xhat: &[f32],
        inv_std: &[f32],
        gamma: &[f32],
        dx: &mut [f32],
        dgamma: &mut [f32],
        dbeta: &mut [f32],
        c: usize,
    ) {
        #[cfg(target_arch = "x86_64")]
        if have_avx2() {
            // SAFETY: AVX2+FMA availability checked; buffer lengths per
            // the op-layer contract.
            unsafe {
                super::simd::layer_norm_bwd_rows(g, xhat, inv_std, gamma, dx, dgamma, dbeta, c)
            };
            return;
        }
        ReferenceKernel.layer_norm_bwd_rows(g, xhat, inv_std, gamma, dx, dgamma, dbeta, c);
    }

    fn sigmoid(&self, x: &mut [f32]) {
        #[cfg(target_arch = "x86_64")]
        if have_avx2() {
            // SAFETY: AVX2+FMA availability checked.
            unsafe { super::simd::sigmoid(x) };
            return;
        }
        ReferenceKernel.sigmoid(x);
    }

    fn tanh(&self, x: &mut [f32]) {
        #[cfg(target_arch = "x86_64")]
        if have_avx2() {
            // SAFETY: AVX2+FMA availability checked.
            unsafe { super::simd::tanh(x) };
            return;
        }
        ReferenceKernel.tanh(x);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::super::Kernel;
    use super::*;

    fn fill(n: usize, mul: usize, md: usize) -> Vec<f32> {
        (0..n)
            .map(|i| ((i * mul) % md) as f32 * 0.13 - 0.7)
            .collect()
    }

    /// Blocked and reference GEMM agree within float re-association slack
    /// on shapes chosen to straddle every block boundary.
    #[test]
    fn blocked_gemm_matches_reference_across_boundaries() {
        let shapes = [
            (1, 1, 1),
            (1, 7, 17),
            (5, 3, 16),
            (6, 256, 16),
            (7, 257, 17),
            (13, 31, 33),
            (66, 97, 511),
            (73, 256, 513),
            (96, 300, 130),
        ];
        for &(m, k, n) in &shapes {
            let a = fill(m * k, 37, 19);
            let b = fill(k * n, 53, 23);
            let mut want = fill(m * n, 11, 7); // nonzero init: += semantics
            let mut got = want.clone();
            ReferenceKernel.gemm(&a, &b, &mut want, m, k, n);
            BlockedKernel.gemm(&a, &b, &mut got, m, k, n);
            for (i, (g, w)) in got.iter().zip(&want).enumerate() {
                let tol = 1e-4 * (1.0 + w.abs());
                assert!(
                    (g - w).abs() < tol,
                    "({m},{k},{n})[{i}]: blocked {g} vs reference {w}"
                );
            }
        }
    }

    /// Same inputs, same bytes — run-to-run determinism of the blocked
    /// path (pure function of the problem size, stale scratch invisible).
    #[test]
    fn blocked_gemm_is_deterministic_across_runs() {
        let (m, k, n) = (37, 113, 61);
        let a = fill(m * k, 29, 17);
        let b = fill(k * n, 31, 13);
        let mut c1 = vec![0.0f32; m * n];
        BlockedKernel.gemm(&a, &b, &mut c1, m, k, n);
        // Dirty the scratch arena with a different-shaped problem.
        let mut junk = vec![0.0f32; 64 * 64];
        BlockedKernel.gemm(
            &fill(64 * 64, 7, 5),
            &fill(64 * 64, 3, 11),
            &mut junk,
            64,
            64,
            64,
        );
        let mut c2 = vec![0.0f32; m * n];
        BlockedKernel.gemm(&a, &b, &mut c2, m, k, n);
        assert_eq!(c1, c2, "blocked gemm not run-to-run deterministic");
    }

    #[test]
    fn blocked_row_kernels_match_reference() {
        for c in [1usize, 2, 3, 7, 8, 13, 16, 31, 64, 65] {
            let rows = 5;
            let x = fill(rows * c, 41, 29);
            let mut r_out = vec![0.0f32; rows * c];
            let mut b_out = vec![0.0f32; rows * c];
            ReferenceKernel.softmax_rows(&x, &mut r_out, c);
            BlockedKernel.softmax_rows(&x, &mut b_out, c);
            for (g, w) in b_out.iter().zip(&r_out) {
                assert!((g - w).abs() < 1e-5, "softmax c={c}: {g} vs {w}");
            }
            ReferenceKernel.log_softmax_rows(&x, &mut r_out, c);
            BlockedKernel.log_softmax_rows(&x, &mut b_out, c);
            for (g, w) in b_out.iter().zip(&r_out) {
                assert!((g - w).abs() < 1e-5, "log_softmax c={c}: {g} vs {w}");
            }
        }
    }

    #[test]
    fn blocked_layer_norm_matches_reference() {
        let (rows, c) = (4, 33);
        let x = fill(rows * c, 17, 23);
        let gamma = fill(c, 5, 7);
        let beta = fill(c, 3, 5);
        let mut r = (
            vec![0.0f32; rows * c],
            vec![0.0f32; rows * c],
            vec![0.0f32; rows],
        );
        let mut b = r.clone();
        ReferenceKernel.layer_norm_rows(&x, &gamma, &beta, &mut r.0, &mut r.1, &mut r.2, c, 1e-5);
        BlockedKernel.layer_norm_rows(&x, &gamma, &beta, &mut b.0, &mut b.1, &mut b.2, c, 1e-5);
        for (g, w) in b.0.iter().zip(&r.0) {
            assert!((g - w).abs() < 1e-5, "layer_norm out: {g} vs {w}");
        }
        let gr = fill(rows * c, 13, 11);
        let mut rd = (vec![0.0f32; rows * c], vec![0.0f32; c], vec![0.0f32; c]);
        let mut bd = rd.clone();
        ReferenceKernel
            .layer_norm_bwd_rows(&gr, &r.1, &r.2, &gamma, &mut rd.0, &mut rd.1, &mut rd.2, c);
        BlockedKernel
            .layer_norm_bwd_rows(&gr, &b.1, &b.2, &gamma, &mut bd.0, &mut bd.1, &mut bd.2, c);
        for (g, w) in bd.0.iter().zip(&rd.0).chain(bd.1.iter().zip(&rd.1)) {
            assert!((g - w).abs() < 1e-4, "layer_norm bwd: {g} vs {w}");
        }
    }

    #[test]
    fn blocked_transcendentals_track_reference() {
        let x = fill(37, 19, 31);
        let mut r = x.clone();
        let mut b = x.clone();
        ReferenceKernel.sigmoid(&mut r);
        BlockedKernel.sigmoid(&mut b);
        for (g, w) in b.iter().zip(&r) {
            assert!((g - w).abs() < 1e-6, "sigmoid: {g} vs {w}");
        }
        let mut r = x.clone();
        let mut b = x.clone();
        ReferenceKernel.tanh(&mut r);
        BlockedKernel.tanh(&mut b);
        for (g, w) in b.iter().zip(&r) {
            assert!((g - w).abs() < 2e-6, "tanh: {g} vs {w}");
        }
    }
}
