//! Pluggable compute-kernel backends for the hot dense loops.
//!
//! Every op that spends real time in a tight numeric loop — GEMM (and the
//! batched/bmm/GRU call sites built on it), softmax/log-softmax, the fused
//! layer norm — routes its inner loops through the [`Kernel`] trait instead
//! of hard-coding one implementation. Two backends ship:
//!
//! * [`ReferenceKernel`] — the original loops, bit-for-bit. This is the
//!   default: every committed golden, checkpoint, and bench trajectory was
//!   produced by these exact float orderings.
//! * [`BlockedKernel`] — cache-blocked GEMM (MC/KC/NC tiling over a packed
//!   MR×NR microkernel) and vectorized row kernels, with `std::arch`
//!   AVX2+FMA paths behind runtime feature detection and an
//!   autovectorization-friendly scalar fallback. Its results differ from
//!   the reference only by float re-association (tolerance-tested by
//!   `tests/kernel_equivalence.rs`), never across thread budgets.
//!
//! # Backend selection
//!
//! The backend is a **per-thread** choice, exactly like taint mode: the
//! process default comes from `DAR_KERNEL` (`blocked` opts in, anything
//! else — including unset — means reference), overridable per thread with
//! [`set_kernel_backend`]. Ops capture the *calling* thread's kernel once
//! at entry and pass it into their `dar-par` shards, so pool workers always
//! compute with the dispatching op's backend, never their own default.
//!
//! # Contracts every backend must honor (DESIGN.md §17)
//!
//! * **Layout**: all buffers are dense row-major `f32` slices; `gemm` is
//!   `C += A·B` with `A: [m,k]`, `B: [k,n]`, `C: [m,n]`, no implicit
//!   zeroing (callers pre-load bias or zeros). Row kernels treat their
//!   slices as `len/c` contiguous rows of width `c`.
//! * **Determinism**: a kernel's output is a pure function of its inputs
//!   and the problem size. No thread-count, time, or address dependence —
//!   `DAR_THREADS=1` and `=4` must produce identical bytes.
//! * **Scratch**: transient buffers come from the per-thread
//!   [`with_scratch`] arena, never from per-call allocation on the hot
//!   path; a kernel must fully overwrite every scratch slot it reads.
//! * **Taint/provenance**: kernels compute values only. Node construction
//!   (and the taint scan naming the originating op) stays in the op layer,
//!   so `NonFinite { op, .. }` origins are backend-independent.

pub mod blocked;
pub mod reference;
#[cfg(target_arch = "x86_64")]
pub(crate) mod simd;

use std::cell::Cell;

pub use blocked::BlockedKernel;
pub use reference::ReferenceKernel;

/// One compute backend: the dense inner loops behind the tensor ops.
///
/// All methods operate on dense row-major `f32` slices; see the module
/// docs for the layout/determinism/scratch contract.
pub trait Kernel: Sync {
    /// Backend name, as reported in benches and error contexts.
    fn name(&self) -> &'static str;

    /// `c[m,n] += a[m,k] @ b[k,n]` (row-major, no implicit zeroing).
    fn gemm(&self, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize);

    /// Row softmax: `out` rows are `softmax(x)` rows of width `c`.
    fn softmax_rows(&self, x: &[f32], out: &mut [f32], c: usize);

    /// Softmax backward: `gin = y ⊙ (g − ⟨y, g⟩)` per row of width `c`.
    fn softmax_bwd_rows(&self, y: &[f32], g: &[f32], gin: &mut [f32], c: usize);

    /// Row log-softmax (stable log-sum-exp).
    fn log_softmax_rows(&self, x: &[f32], out: &mut [f32], c: usize);

    /// Log-softmax backward: `gin = g − exp(ls) ⊙ Σg` per row.
    fn log_softmax_bwd_rows(&self, ls: &[f32], g: &[f32], gin: &mut [f32], c: usize);

    /// Fused layer norm forward over rows of width `c`:
    /// `out = x̂ ⊙ gamma + beta` with `x̂ = (x − μ) / sqrt(σ² + eps)`.
    /// Also stashes `x̂` (`xhat`, same shape) and the per-row reciprocal
    /// standard deviation (`inv_std`, one per row) for backward.
    #[allow(clippy::too_many_arguments)]
    fn layer_norm_rows(
        &self,
        x: &[f32],
        gamma: &[f32],
        beta: &[f32],
        out: &mut [f32],
        xhat: &mut [f32],
        inv_std: &mut [f32],
        c: usize,
        eps: f32,
    );

    /// Fused layer norm backward. `dx` receives the input gradient for
    /// this row chunk; `dgamma`/`dbeta` (length `c`) accumulate this
    /// chunk's parameter-gradient partials (the op layer reduces chunks
    /// in shard order).
    #[allow(clippy::too_many_arguments)]
    fn layer_norm_bwd_rows(
        &self,
        g: &[f32],
        xhat: &[f32],
        inv_std: &[f32],
        gamma: &[f32],
        dx: &mut [f32],
        dgamma: &mut [f32],
        dbeta: &mut [f32],
        c: usize,
    );

    /// In-place logistic sigmoid `x ← 1 / (1 + exp(−x))`.
    fn sigmoid(&self, x: &mut [f32]);

    /// In-place `x ← tanh(x)`.
    fn tanh(&self, x: &mut [f32]);

    /// Minimum rows per shard this backend wants from row-sharded
    /// recurrences (the GRU). Shard counts stay a pure function of
    /// problem size *and backend*, so each backend remains bit-identical
    /// to itself under every thread budget; Reference must keep the
    /// historical `1` so its shard decomposition — and every golden
    /// pinned to its weight-gradient reduction order — is unchanged.
    /// Blocked asks for fatter shards: per-step GEMMs with `m` below the
    /// microkernel tile are pure overhead.
    fn gru_rows_hint(&self) -> usize {
        1
    }
}

/// Which [`Kernel`] implementation a thread dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelBackend {
    /// The original graph-kernel loops, bit-compatible with every
    /// committed golden.
    Reference,
    /// Cache-blocked + SIMD backend (tolerance-equivalent, faster).
    Blocked,
}

impl KernelBackend {
    /// Stable lowercase name (`"reference"` / `"blocked"`).
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Reference => "reference",
            KernelBackend::Blocked => "blocked",
        }
    }
}

static REFERENCE: ReferenceKernel = ReferenceKernel;
static BLOCKED: BlockedKernel = BlockedKernel;

thread_local! {
    static BACKEND: Cell<KernelBackend> = Cell::new(env_backend_default());
}

/// The process-wide default, read once per thread: `DAR_KERNEL=blocked`
/// opts every thread into the blocked backend; any other value (or unset)
/// keeps the bit-compatible reference loops.
fn env_backend_default() -> KernelBackend {
    match std::env::var("DAR_KERNEL") {
        Ok(v) if v.eq_ignore_ascii_case("blocked") => KernelBackend::Blocked,
        _ => KernelBackend::Reference,
    }
}

/// The backend this thread's ops dispatch to.
pub fn kernel_backend() -> KernelBackend {
    BACKEND.with(|c| c.get())
}

/// Select the kernel backend for this thread (overrides `DAR_KERNEL`).
/// Pool workers never read this themselves: ops capture the dispatching
/// thread's kernel and pass it into their shards.
pub fn set_kernel_backend(backend: KernelBackend) {
    BACKEND.with(|c| c.set(backend));
}

/// Run `f` under the given backend, restoring the previous selection
/// afterwards (test and bench helper).
pub fn with_kernel_backend<T>(backend: KernelBackend, f: impl FnOnce() -> T) -> T {
    let prev = kernel_backend();
    set_kernel_backend(backend);
    let out = f();
    set_kernel_backend(prev);
    out
}

/// The `'static` kernel instance the current thread dispatches to. Ops
/// call this once at entry and thread the reference through their shards
/// and backward closures.
pub fn current_kernel() -> &'static dyn Kernel {
    kernel_for(kernel_backend())
}

/// The `'static` instance implementing `backend`.
pub fn kernel_for(backend: KernelBackend) -> &'static dyn Kernel {
    match backend {
        KernelBackend::Reference => &REFERENCE,
        KernelBackend::Blocked => &BLOCKED,
    }
}

thread_local! {
    /// Per-thread scratch slab reused across kernel invocations. Taken out
    /// of the slot for the duration of a `with_scratch` call so re-entrant
    /// use falls back to a fresh allocation instead of aliasing.
    static SCRATCH: Cell<Vec<f32>> = const { Cell::new(Vec::new()) };
}

/// Borrow `len` floats of per-thread scratch. The slice contents are
/// unspecified on entry — callers must fully overwrite every slot they
/// read (packing routines write their zero padding explicitly).
pub(crate) fn with_scratch<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    SCRATCH.with(|cell| {
        let mut buf = cell.take();
        if buf.len() < len {
            buf.resize(len, 0.0);
        }
        let out = f(&mut buf[..len]);
        cell.set(buf);
        out
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn default_backend_is_reference() {
        // The suite does not set DAR_KERNEL; the default must stay the
        // bit-compatible path.
        if std::env::var("DAR_KERNEL").is_err() {
            assert_eq!(kernel_backend(), KernelBackend::Reference);
        }
    }

    #[test]
    fn backend_switch_is_thread_local_and_restored() {
        let prev = kernel_backend();
        let inside = with_kernel_backend(KernelBackend::Blocked, || {
            assert_eq!(current_kernel().name(), "blocked");
            kernel_backend()
        });
        assert_eq!(inside, KernelBackend::Blocked);
        assert_eq!(kernel_backend(), prev);
        // Another thread keeps its own default.
        set_kernel_backend(KernelBackend::Blocked);
        let other = std::thread::spawn(|| kernel_backend()).join().unwrap();
        if std::env::var("DAR_KERNEL").is_err() {
            assert_eq!(other, KernelBackend::Reference);
        }
        set_kernel_backend(prev);
    }

    #[test]
    fn scratch_grows_and_is_reusable_reentrantly() {
        with_scratch(16, |a| {
            a.fill(1.0);
            with_scratch(8, |b| {
                b.fill(2.0);
                assert_eq!(b.len(), 8);
            });
            // The outer borrow is untouched by the nested call.
            assert!(a.iter().all(|&v| v == 1.0));
        });
        with_scratch(1024, |a| assert_eq!(a.len(), 1024));
    }

    #[test]
    fn both_backends_expose_the_same_contract() {
        for b in [KernelBackend::Reference, KernelBackend::Blocked] {
            let k = kernel_for(b);
            assert_eq!(k.name(), b.name());
            let a = [1.0, 2.0, 3.0, 4.0];
            let bm = [5.0, 6.0, 7.0, 8.0];
            let mut c = [0.0f32; 4];
            k.gemm(&a, &bm, &mut c, 2, 2, 2);
            // [[19,22],[43,50]] — exact in f32 for both backends.
            assert_eq!(c, [19.0, 22.0, 43.0, 50.0], "{}", k.name());
        }
    }
}
