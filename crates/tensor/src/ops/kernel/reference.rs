//! The original inner loops, unchanged: this backend is the bit-exact
//! baseline every committed golden and fingerprint was produced with.
//!
//! Nothing here may be "optimized" — any change to summation order,
//! transcendental evaluation, or zero-skip behavior silently invalidates
//! byte-pinned artifacts (serve goldens, promotion journals, equivalence
//! fingerprints). Speed work belongs in [`super::BlockedKernel`].

use super::Kernel;

/// The existing graph-path loops packaged as a [`Kernel`].
#[derive(Debug, Default, Clone, Copy)]
pub struct ReferenceKernel;

impl Kernel for ReferenceKernel {
    fn name(&self) -> &'static str {
        "reference"
    }

    /// ikj axpy with the historical zero-skip: the inner loop is a
    /// vectorizable `out_row += av * b_row` over contiguous rows.
    fn gemm(&self, a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), k * n);
        debug_assert_eq!(c.len(), m * n);
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let out_row = &mut c[i * n..(i + 1) * n];
            for (p, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let b_row = &b[p * n..(p + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
    }

    fn softmax_rows(&self, x: &[f32], out: &mut [f32], c: usize) {
        let rows = out.len() / c.max(1);
        for r in 0..rows {
            let row = &x[r * c..(r + 1) * c];
            let out_row = &mut out[r * c..(r + 1) * c];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0f32;
            for (o, &x) in out_row.iter_mut().zip(row) {
                let e = (x - m).exp();
                *o = e;
                denom += e;
            }
            for o in out_row {
                *o /= denom;
            }
        }
    }

    fn softmax_bwd_rows(&self, y: &[f32], g: &[f32], gin: &mut [f32], c: usize) {
        let rows = gin.len() / c.max(1);
        for r in 0..rows {
            let yr = &y[r * c..(r + 1) * c];
            let gr = &g[r * c..(r + 1) * c];
            let gin_row = &mut gin[r * c..(r + 1) * c];
            let dot: f32 = yr.iter().zip(gr).map(|(&yi, &gi)| yi * gi).sum();
            for (i, o) in gin_row.iter_mut().enumerate() {
                *o = yr[i] * (gr[i] - dot);
            }
        }
    }

    fn log_softmax_rows(&self, x: &[f32], out: &mut [f32], c: usize) {
        let rows = out.len() / c.max(1);
        for r in 0..rows {
            let row = &x[r * c..(r + 1) * c];
            let out_row = &mut out[r * c..(r + 1) * c];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let lse = m + row.iter().map(|&x| (x - m).exp()).sum::<f32>().ln();
            for (o, &x) in out_row.iter_mut().zip(row) {
                *o = x - lse;
            }
        }
    }

    fn log_softmax_bwd_rows(&self, ls: &[f32], g: &[f32], gin: &mut [f32], c: usize) {
        let rows = gin.len() / c.max(1);
        for r in 0..rows {
            let lsr = &ls[r * c..(r + 1) * c];
            let gr = &g[r * c..(r + 1) * c];
            let gin_row = &mut gin[r * c..(r + 1) * c];
            let gsum: f32 = gr.iter().sum();
            for (i, o) in gin_row.iter_mut().enumerate() {
                *o = gr[i] - lsr[i].exp() * gsum;
            }
        }
    }

    fn layer_norm_rows(
        &self,
        x: &[f32],
        gamma: &[f32],
        beta: &[f32],
        out: &mut [f32],
        xhat: &mut [f32],
        inv_std: &mut [f32],
        c: usize,
        eps: f32,
    ) {
        let rows = out.len() / c.max(1);
        for r in 0..rows {
            let row = &x[r * c..(r + 1) * c];
            let mut mean = 0.0f32;
            for &v in row {
                mean += v;
            }
            mean /= c as f32;
            let mut var = 0.0f32;
            for &v in row {
                let d = v - mean;
                var += d * d;
            }
            var /= c as f32;
            let istd = 1.0 / (var + eps).sqrt();
            inv_std[r] = istd;
            for j in 0..c {
                let xh = (row[j] - mean) * istd;
                xhat[r * c + j] = xh;
                out[r * c + j] = xh * gamma[j] + beta[j];
            }
        }
    }

    fn layer_norm_bwd_rows(
        &self,
        g: &[f32],
        xhat: &[f32],
        inv_std: &[f32],
        gamma: &[f32],
        dx: &mut [f32],
        dgamma: &mut [f32],
        dbeta: &mut [f32],
        c: usize,
    ) {
        let rows = dx.len() / c.max(1);
        let cf = c as f32;
        for r in 0..rows {
            let gr = &g[r * c..(r + 1) * c];
            let xr = &xhat[r * c..(r + 1) * c];
            let istd = inv_std[r];
            // s1 = Σ gᵧ, s2 = Σ gᵧ ⊙ x̂ with gᵧ = g ⊙ gamma.
            let mut s1 = 0.0f32;
            let mut s2 = 0.0f32;
            for j in 0..c {
                let gg = gr[j] * gamma[j];
                s1 += gg;
                s2 += gg * xr[j];
            }
            for j in 0..c {
                let gg = gr[j] * gamma[j];
                dx[r * c + j] = istd * (gg - s1 / cf - xr[j] * (s2 / cf));
                dgamma[j] += gr[j] * xr[j];
                dbeta[j] += gr[j];
            }
        }
    }

    fn sigmoid(&self, x: &mut [f32]) {
        for v in x.iter_mut() {
            *v = 1.0 / (1.0 + (-*v).exp());
        }
    }

    fn tanh(&self, x: &mut [f32]) {
        for v in x.iter_mut() {
            *v = v.tanh();
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::super::Kernel;
    use super::ReferenceKernel;

    #[test]
    fn gemm_accumulates_into_c() {
        let k = ReferenceKernel;
        let a = [1.0f32, 2.0];
        let b = [3.0f32, 4.0];
        let mut c = [10.0f32]; // pre-loaded (bias) value must survive
        k.gemm(&a, &b, &mut c, 1, 2, 1);
        assert_eq!(c, [10.0 + 3.0 + 8.0]);
    }

    #[test]
    fn softmax_rows_match_manual() {
        let k = ReferenceKernel;
        let x = [0.0f32, f32::ln(3.0)];
        let mut out = [0.0f32; 2];
        k.softmax_rows(&x, &mut out, 2);
        assert!((out[0] - 0.25).abs() < 1e-6 && (out[1] - 0.75).abs() < 1e-6);
    }

    #[test]
    fn layer_norm_rows_normalize() {
        let k = ReferenceKernel;
        let x = [1.0f32, 2.0, 3.0, 4.0];
        let gamma = [1.0f32; 4];
        let beta = [0.0f32; 4];
        let (mut out, mut xhat, mut istd) = ([0.0f32; 4], [0.0f32; 4], [0.0f32; 1]);
        k.layer_norm_rows(&x, &gamma, &beta, &mut out, &mut xhat, &mut istd, 4, 1e-5);
        let mean: f32 = out.iter().sum::<f32>() / 4.0;
        let var: f32 = out.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-6, "mean {mean}");
        assert!((var - 1.0).abs() < 1e-3, "var {var}");
        assert_eq!(out, xhat);
    }
}
