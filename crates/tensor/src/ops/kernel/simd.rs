//! `std::arch` AVX2+FMA paths for the blocked kernel.
//!
//! Everything here is reached only through [`avx2_available`] gating (the
//! blocked kernel falls back to autovectorized scalar loops otherwise), and
//! every function is deterministic: lane order, reduction order, and the
//! polynomial used for `exp` are fixed, so outputs are bit-stable across
//! runs and thread budgets on the same machine. `DAR_SIMD=0` forces the
//! scalar fallback for A/B debugging.
//!
//! The transcendental kernels use the classic Cephes order-5 polynomial
//! `exp` (the same coefficients as libm-family SIMD math libraries), good
//! to ~1 ulp over the clamped range — well inside the blocked-vs-reference
//! equivalence tolerance.

use std::arch::x86_64::*;
use std::sync::OnceLock;

/// Runtime gate for the AVX2+FMA paths, detected once per process.
/// `DAR_SIMD=0` forces the scalar fallback regardless of hardware.
pub(crate) fn avx2_available() -> bool {
    static AVAIL: OnceLock<bool> = OnceLock::new();
    *AVAIL.get_or_init(|| {
        if std::env::var("DAR_SIMD").is_ok_and(|v| v == "0") {
            return false;
        }
        is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
    })
}

/// Numeric SIMD level for bench context keys: 0 = scalar, 2 = AVX2+FMA.
pub(crate) fn simd_level() -> u32 {
    if avx2_available() {
        2
    } else {
        0
    }
}

/// Horizontal sum of all 8 lanes (fixed fold order).
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn hsum(v: __m256) -> f32 {
    // Pure register ops: safe under the enabled target features.
    let lo = _mm256_castps256_ps128(v);
    let hi = _mm256_extractf128_ps(v, 1);
    let s = _mm_add_ps(lo, hi);
    let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    let s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0b01));
    _mm_cvtss_f32(s)
}

/// Horizontal max of all 8 lanes.
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn hmax(v: __m256) -> f32 {
    // Pure register ops: safe under the enabled target features.
    let lo = _mm256_castps256_ps128(v);
    let hi = _mm256_extractf128_ps(v, 1);
    let s = _mm_max_ps(lo, hi);
    let s = _mm_max_ps(s, _mm_movehl_ps(s, s));
    let s = _mm_max_ss(s, _mm_shuffle_ps(s, s, 0b01));
    _mm_cvtss_f32(s)
}

const EXP_HI: f32 = 88.376_26;
const EXP_LO: f32 = -88.376_26;
const LOG2EF: f32 = std::f32::consts::LOG2_E;
const EXP_C1: f32 = 0.693_359_4;
const EXP_C2: f32 = -2.121_944_4e-4;
const EXP_P0: f32 = 1.987_569_1e-4;
const EXP_P1: f32 = 1.398_199_9e-3;
const EXP_P2: f32 = 8.333_452e-3;
const EXP_P3: f32 = 4.166_579_6e-2;
const EXP_P4: f32 = 1.666_666_5e-1;
const EXP_P5: f32 = 5.000_000_3e-1;

/// Vector `exp(x)` for 8 lanes: range-clamped Cephes polynomial plus
/// exponent reconstruction via integer bit tricks.
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn exp_ps(x: __m256) -> __m256 {
    // Pure register ops (including AVX2 integer shifts): safe under the
    // enabled target features.
    {
        let x = _mm256_min_ps(
            _mm256_set1_ps(EXP_HI),
            _mm256_max_ps(_mm256_set1_ps(EXP_LO), x),
        );
        // n = floor(x * log2(e) + 0.5)
        let fx = _mm256_fmadd_ps(x, _mm256_set1_ps(LOG2EF), _mm256_set1_ps(0.5));
        let fx = _mm256_floor_ps(fx);
        // Reduce: x -= n * ln(2), split into hi/lo parts for precision.
        let x = _mm256_fnmadd_ps(fx, _mm256_set1_ps(EXP_C1), x);
        let x = _mm256_fnmadd_ps(fx, _mm256_set1_ps(EXP_C2), x);
        let z = _mm256_mul_ps(x, x);
        let mut y = _mm256_set1_ps(EXP_P0);
        y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(EXP_P1));
        y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(EXP_P2));
        y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(EXP_P3));
        y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(EXP_P4));
        y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(EXP_P5));
        y = _mm256_fmadd_ps(y, z, x);
        y = _mm256_add_ps(y, _mm256_set1_ps(1.0));
        // 2^n via exponent bits.
        let n = _mm256_cvttps_epi32(fx);
        let pow2n = _mm256_castsi256_ps(_mm256_slli_epi32(
            _mm256_add_epi32(n, _mm256_set1_epi32(0x7f)),
            23,
        ));
        _mm256_mul_ps(y, pow2n)
    }
}

/// Scalar twin of [`exp_ps`] so vector lanes and tail elements agree
/// bit-for-bit within one blocked-backend call.
pub(crate) fn exp_scalar(x: f32) -> f32 {
    let x = x.clamp(EXP_LO, EXP_HI);
    let fx = (x * LOG2EF + 0.5).floor();
    let x = x - fx * EXP_C1;
    let x = x - fx * EXP_C2;
    let z = x * x;
    let mut y = EXP_P0;
    y = y * x + EXP_P1;
    y = y * x + EXP_P2;
    y = y * x + EXP_P3;
    y = y * x + EXP_P4;
    y = y * x + EXP_P5;
    y = y * z + x + 1.0;
    y * f32::from_bits(((fx as i32 + 0x7f) << 23) as u32)
}

/// MR×NR = 6×16 register microkernel: `c[0..6, 0..16] += ap · bp` over a
/// packed A panel (`kc` steps of 6 row values) and packed B panel (`kc`
/// steps of 16 column values). Twelve ymm accumulators live in registers
/// for the whole k loop; `c` rows are `ldc` apart and are loaded/stored
/// once.
///
/// # Safety
/// Caller must guarantee AVX2+FMA are available, `ap` points to at least
/// `kc * 6` floats, `bp` to at least `kc * 16` floats, and each of the 6
/// rows `c + i*ldc` has 16 writable floats.
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn microkernel_6x16(
    ap: *const f32,
    bp: *const f32,
    kc: usize,
    c: *mut f32,
    ldc: usize,
) {
    // SAFETY: all loads/stores stay inside the ranges the caller
    // guarantees: ap is read at [0, kc*6), bp at [0, kc*16), and c rows
    // i*ldc..i*ldc+16 for i in 0..6.
    unsafe {
        let mut acc = [_mm256_setzero_ps(); 12];
        for p in 0..kc {
            let b0 = _mm256_loadu_ps(bp.add(p * 16));
            let b1 = _mm256_loadu_ps(bp.add(p * 16 + 8));
            let arow = ap.add(p * 6);
            for i in 0..6 {
                let av = _mm256_set1_ps(*arow.add(i));
                acc[2 * i] = _mm256_fmadd_ps(av, b0, acc[2 * i]);
                acc[2 * i + 1] = _mm256_fmadd_ps(av, b1, acc[2 * i + 1]);
            }
        }
        for i in 0..6 {
            let cp = c.add(i * ldc);
            _mm256_storeu_ps(cp, _mm256_add_ps(_mm256_loadu_ps(cp), acc[2 * i]));
            let cp8 = cp.add(8);
            _mm256_storeu_ps(cp8, _mm256_add_ps(_mm256_loadu_ps(cp8), acc[2 * i + 1]));
        }
    }
}

/// Unpacked vectorized GEMM for shapes where packing cannot pay (few
/// output rows): the reference ikj axpy with an 8-lane FMA inner loop.
///
/// # Safety
/// Caller must guarantee AVX2+FMA are available and the slices to be
/// `m*k` / `k*n` / `m*n` long.
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn gemm_axpy(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let chunks = n / 8 * 8;
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut c[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            // SAFETY: j stays below `chunks <= n`; both rows are exactly n
            // floats; AVX2 availability per caller.
            unsafe {
                let avv = _mm256_set1_ps(av);
                for j in (0..chunks).step_by(8) {
                    let o = out_row.as_mut_ptr().add(j);
                    _mm256_storeu_ps(
                        o,
                        _mm256_fmadd_ps(
                            avv,
                            _mm256_loadu_ps(b_row.as_ptr().add(j)),
                            _mm256_loadu_ps(o),
                        ),
                    );
                }
            }
            for j in chunks..n {
                out_row[j] += av * b_row[j];
            }
        }
    }
}

/// Vectorized row softmax (max-subtracted, denom via fixed-order lane sum).
///
/// # Safety
/// Caller must guarantee AVX2+FMA are available; `x` and `out` must both
/// be `rows * c` long.
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn softmax_rows(x: &[f32], out: &mut [f32], c: usize) {
    let rows = out.len() / c.max(1);
    for r in 0..rows {
        let row = &x[r * c..(r + 1) * c];
        let out_row = &mut out[r * c..(r + 1) * c];
        let chunks = c / 8 * 8;
        // SAFETY: slice-bounded loads/stores only: every index below is
        // < c within `row`/`out_row`; AVX2 availability per caller.
        unsafe {
            let mut vmax = _mm256_set1_ps(f32::NEG_INFINITY);
            for j in (0..chunks).step_by(8) {
                vmax = _mm256_max_ps(vmax, _mm256_loadu_ps(row.as_ptr().add(j)));
            }
            let mut m = hmax(vmax);
            for &v in &row[chunks..] {
                m = m.max(v);
            }
            let mv = _mm256_set1_ps(m);
            let mut vsum = _mm256_setzero_ps();
            for j in (0..chunks).step_by(8) {
                let e = exp_ps(_mm256_sub_ps(_mm256_loadu_ps(row.as_ptr().add(j)), mv));
                _mm256_storeu_ps(out_row.as_mut_ptr().add(j), e);
                vsum = _mm256_add_ps(vsum, e);
            }
            let mut denom = hsum(vsum);
            for j in chunks..c {
                let e = exp_scalar(row[j] - m);
                out_row[j] = e;
                denom += e;
            }
            let inv = _mm256_set1_ps(1.0 / denom);
            for j in (0..chunks).step_by(8) {
                let p = out_row.as_mut_ptr().add(j);
                _mm256_storeu_ps(p, _mm256_mul_ps(_mm256_loadu_ps(p), inv));
            }
            for o in &mut out_row[chunks..] {
                *o *= 1.0 / denom;
            }
        }
    }
}

/// Vectorized softmax backward: `gin = y ⊙ (g − ⟨y, g⟩)` per row.
///
/// # Safety
/// Caller must guarantee AVX2+FMA; all three slices must be `rows * c`.
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn softmax_bwd_rows(y: &[f32], g: &[f32], gin: &mut [f32], c: usize) {
    let rows = gin.len() / c.max(1);
    for r in 0..rows {
        let yr = &y[r * c..(r + 1) * c];
        let gr = &g[r * c..(r + 1) * c];
        let gin_row = &mut gin[r * c..(r + 1) * c];
        let chunks = c / 8 * 8;
        // SAFETY: slice-bounded loads/stores only (indices < c); AVX2
        // availability per caller.
        unsafe {
            let mut vdot = _mm256_setzero_ps();
            for j in (0..chunks).step_by(8) {
                vdot = _mm256_fmadd_ps(
                    _mm256_loadu_ps(yr.as_ptr().add(j)),
                    _mm256_loadu_ps(gr.as_ptr().add(j)),
                    vdot,
                );
            }
            let mut dot = hsum(vdot);
            for j in chunks..c {
                dot += yr[j] * gr[j];
            }
            let dv = _mm256_set1_ps(dot);
            for j in (0..chunks).step_by(8) {
                let out = _mm256_mul_ps(
                    _mm256_loadu_ps(yr.as_ptr().add(j)),
                    _mm256_sub_ps(_mm256_loadu_ps(gr.as_ptr().add(j)), dv),
                );
                _mm256_storeu_ps(gin_row.as_mut_ptr().add(j), out);
            }
            for j in chunks..c {
                gin_row[j] = yr[j] * (gr[j] - dot);
            }
        }
    }
}

/// Vectorized row log-softmax (stable log-sum-exp).
///
/// # Safety
/// Caller must guarantee AVX2+FMA; `x` and `out` must be `rows * c`.
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn log_softmax_rows(x: &[f32], out: &mut [f32], c: usize) {
    let rows = out.len() / c.max(1);
    for r in 0..rows {
        let row = &x[r * c..(r + 1) * c];
        let out_row = &mut out[r * c..(r + 1) * c];
        let chunks = c / 8 * 8;
        // SAFETY: slice-bounded loads/stores only (indices < c); AVX2
        // availability per caller.
        unsafe {
            let mut vmax = _mm256_set1_ps(f32::NEG_INFINITY);
            for j in (0..chunks).step_by(8) {
                vmax = _mm256_max_ps(vmax, _mm256_loadu_ps(row.as_ptr().add(j)));
            }
            let mut m = hmax(vmax);
            for &v in &row[chunks..] {
                m = m.max(v);
            }
            let mv = _mm256_set1_ps(m);
            let mut vsum = _mm256_setzero_ps();
            for j in (0..chunks).step_by(8) {
                vsum = _mm256_add_ps(
                    vsum,
                    exp_ps(_mm256_sub_ps(_mm256_loadu_ps(row.as_ptr().add(j)), mv)),
                );
            }
            let mut sum = hsum(vsum);
            for &v in &row[chunks..] {
                sum += exp_scalar(v - m);
            }
            let lse = m + sum.ln();
            let lv = _mm256_set1_ps(lse);
            for j in (0..chunks).step_by(8) {
                _mm256_storeu_ps(
                    out_row.as_mut_ptr().add(j),
                    _mm256_sub_ps(_mm256_loadu_ps(row.as_ptr().add(j)), lv),
                );
            }
            for j in chunks..c {
                out_row[j] = row[j] - lse;
            }
        }
    }
}

/// Vectorized log-softmax backward: `gin = g − exp(ls) ⊙ Σg` per row.
///
/// # Safety
/// Caller must guarantee AVX2+FMA; all three slices must be `rows * c`.
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn log_softmax_bwd_rows(ls: &[f32], g: &[f32], gin: &mut [f32], c: usize) {
    let rows = gin.len() / c.max(1);
    for r in 0..rows {
        let lsr = &ls[r * c..(r + 1) * c];
        let gr = &g[r * c..(r + 1) * c];
        let gin_row = &mut gin[r * c..(r + 1) * c];
        let chunks = c / 8 * 8;
        // SAFETY: slice-bounded loads/stores only (indices < c); AVX2
        // availability per caller.
        unsafe {
            let mut vsum = _mm256_setzero_ps();
            for j in (0..chunks).step_by(8) {
                vsum = _mm256_add_ps(vsum, _mm256_loadu_ps(gr.as_ptr().add(j)));
            }
            let mut gsum = hsum(vsum);
            for &v in &gr[chunks..] {
                gsum += v;
            }
            let gv = _mm256_set1_ps(gsum);
            for j in (0..chunks).step_by(8) {
                let e = exp_ps(_mm256_loadu_ps(lsr.as_ptr().add(j)));
                let out = _mm256_fnmadd_ps(e, gv, _mm256_loadu_ps(gr.as_ptr().add(j)));
                _mm256_storeu_ps(gin_row.as_mut_ptr().add(j), out);
            }
            for j in chunks..c {
                gin_row[j] = gr[j] - exp_scalar(lsr[j]) * gsum;
            }
        }
    }
}

/// Vectorized fused layer-norm forward rows (see the trait docs for the
/// `out`/`xhat`/`inv_std` contract).
///
/// # Safety
/// Caller must guarantee AVX2+FMA; `x`/`out`/`xhat` must be `rows * c`,
/// `gamma`/`beta` length `c`, `inv_std` length `rows`.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn layer_norm_rows(
    x: &[f32],
    gamma: &[f32],
    beta: &[f32],
    out: &mut [f32],
    xhat: &mut [f32],
    inv_std: &mut [f32],
    c: usize,
    eps: f32,
) {
    let rows = out.len() / c.max(1);
    let cf = c as f32;
    for r in 0..rows {
        let row = &x[r * c..(r + 1) * c];
        let chunks = c / 8 * 8;
        // SAFETY: slice-bounded loads/stores only (indices < c); AVX2
        // availability per caller.
        unsafe {
            let mut vsum = _mm256_setzero_ps();
            for j in (0..chunks).step_by(8) {
                vsum = _mm256_add_ps(vsum, _mm256_loadu_ps(row.as_ptr().add(j)));
            }
            let mut mean = hsum(vsum);
            for &v in &row[chunks..] {
                mean += v;
            }
            mean /= cf;
            let meanv = _mm256_set1_ps(mean);
            let mut vvar = _mm256_setzero_ps();
            for j in (0..chunks).step_by(8) {
                let d = _mm256_sub_ps(_mm256_loadu_ps(row.as_ptr().add(j)), meanv);
                vvar = _mm256_fmadd_ps(d, d, vvar);
            }
            let mut var = hsum(vvar);
            for &v in &row[chunks..] {
                let d = v - mean;
                var += d * d;
            }
            var /= cf;
            let istd = 1.0 / (var + eps).sqrt();
            inv_std[r] = istd;
            let istdv = _mm256_set1_ps(istd);
            for j in (0..chunks).step_by(8) {
                let xh = _mm256_mul_ps(
                    _mm256_sub_ps(_mm256_loadu_ps(row.as_ptr().add(j)), meanv),
                    istdv,
                );
                _mm256_storeu_ps(xhat.as_mut_ptr().add(r * c + j), xh);
                let o = _mm256_fmadd_ps(
                    xh,
                    _mm256_loadu_ps(gamma.as_ptr().add(j)),
                    _mm256_loadu_ps(beta.as_ptr().add(j)),
                );
                _mm256_storeu_ps(out.as_mut_ptr().add(r * c + j), o);
            }
            for j in chunks..c {
                let xh = (row[j] - mean) * istd;
                xhat[r * c + j] = xh;
                out[r * c + j] = xh * gamma[j] + beta[j];
            }
        }
    }
}

/// Vectorized fused layer-norm backward rows.
///
/// # Safety
/// Caller must guarantee AVX2+FMA; `g`/`xhat`/`dx` must be `rows * c`,
/// `gamma`/`dgamma`/`dbeta` length `c`, `inv_std` length `rows`.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn layer_norm_bwd_rows(
    g: &[f32],
    xhat: &[f32],
    inv_std: &[f32],
    gamma: &[f32],
    dx: &mut [f32],
    dgamma: &mut [f32],
    dbeta: &mut [f32],
    c: usize,
) {
    let rows = dx.len() / c.max(1);
    let cf = c as f32;
    for r in 0..rows {
        let gr = &g[r * c..(r + 1) * c];
        let xr = &xhat[r * c..(r + 1) * c];
        let istd = inv_std[r];
        let chunks = c / 8 * 8;
        // SAFETY: slice-bounded loads/stores only (indices < c); AVX2
        // availability per caller.
        unsafe {
            let mut v1 = _mm256_setzero_ps();
            let mut v2 = _mm256_setzero_ps();
            for j in (0..chunks).step_by(8) {
                let gg = _mm256_mul_ps(
                    _mm256_loadu_ps(gr.as_ptr().add(j)),
                    _mm256_loadu_ps(gamma.as_ptr().add(j)),
                );
                v1 = _mm256_add_ps(v1, gg);
                v2 = _mm256_fmadd_ps(gg, _mm256_loadu_ps(xr.as_ptr().add(j)), v2);
            }
            let mut s1 = hsum(v1);
            let mut s2 = hsum(v2);
            for j in chunks..c {
                let gg = gr[j] * gamma[j];
                s1 += gg;
                s2 += gg * xr[j];
            }
            let m1 = _mm256_set1_ps(s1 / cf);
            let m2 = _mm256_set1_ps(s2 / cf);
            let istdv = _mm256_set1_ps(istd);
            for j in (0..chunks).step_by(8) {
                let gv = _mm256_loadu_ps(gr.as_ptr().add(j));
                let xv = _mm256_loadu_ps(xr.as_ptr().add(j));
                let gg = _mm256_mul_ps(gv, _mm256_loadu_ps(gamma.as_ptr().add(j)));
                let inner = _mm256_sub_ps(_mm256_sub_ps(gg, m1), _mm256_mul_ps(xv, m2));
                _mm256_storeu_ps(dx.as_mut_ptr().add(r * c + j), _mm256_mul_ps(istdv, inner));
                let dgp = dgamma.as_mut_ptr().add(j);
                _mm256_storeu_ps(dgp, _mm256_fmadd_ps(gv, xv, _mm256_loadu_ps(dgp)));
                let dbp = dbeta.as_mut_ptr().add(j);
                _mm256_storeu_ps(dbp, _mm256_add_ps(_mm256_loadu_ps(dbp), gv));
            }
            for j in chunks..c {
                let gg = gr[j] * gamma[j];
                dx[r * c + j] = istd * (gg - s1 / cf - xr[j] * (s2 / cf));
                dgamma[j] += gr[j] * xr[j];
                dbeta[j] += gr[j];
            }
        }
    }
}

/// Vectorized in-place logistic sigmoid.
///
/// # Safety
/// Caller must guarantee AVX2+FMA are available.
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn sigmoid(x: &mut [f32]) {
    let n = x.len();
    let chunks = n / 8 * 8;
    // SAFETY: slice-bounded loads/stores only (indices < n); AVX2
    // availability per caller.
    unsafe {
        let one = _mm256_set1_ps(1.0);
        let zero = _mm256_setzero_ps();
        for j in (0..chunks).step_by(8) {
            let p = x.as_mut_ptr().add(j);
            let e = exp_ps(_mm256_sub_ps(zero, _mm256_loadu_ps(p)));
            _mm256_storeu_ps(p, _mm256_div_ps(one, _mm256_add_ps(one, e)));
        }
    }
    for v in &mut x[chunks..] {
        *v = 1.0 / (1.0 + exp_scalar(-*v));
    }
}

/// Vectorized in-place tanh via `(e^{2x} − 1) / (e^{2x} + 1)`.
///
/// # Safety
/// Caller must guarantee AVX2+FMA are available.
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn tanh(x: &mut [f32]) {
    let n = x.len();
    let chunks = n / 8 * 8;
    // SAFETY: slice-bounded loads/stores only (indices < n); AVX2
    // availability per caller.
    unsafe {
        let one = _mm256_set1_ps(1.0);
        let two = _mm256_set1_ps(2.0);
        for j in (0..chunks).step_by(8) {
            let p = x.as_mut_ptr().add(j);
            let t = exp_ps(_mm256_mul_ps(two, _mm256_loadu_ps(p)));
            _mm256_storeu_ps(
                p,
                _mm256_div_ps(_mm256_sub_ps(t, one), _mm256_add_ps(t, one)),
            );
        }
    }
    for v in &mut x[chunks..] {
        let t = exp_scalar(2.0 * *v);
        *v = (t - 1.0) / (t + 1.0);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn exp_scalar_tracks_libm() {
        for i in -870..=880 {
            let x = i as f32 * 0.1;
            let got = exp_scalar(x);
            let want = x.exp();
            let rel = (got - want).abs() / want.max(f32::MIN_POSITIVE);
            assert!(rel < 3e-7, "exp({x}): {got} vs {want} rel {rel}");
        }
    }

    #[test]
    fn vector_paths_match_scalar_tails() {
        if !avx2_available() {
            return;
        }
        // 13 elements: 8 vector lanes + 5 scalar tail; both must agree
        // with the scalar twin closely.
        let x: Vec<f32> = (0..13).map(|i| (i as f32) * 0.37 - 2.0).collect();
        let mut out = vec![0.0f32; 13];
        // SAFETY: avx2_available() checked above; slices are same length.
        unsafe { softmax_rows(&x, &mut out, 13) };
        let s: f32 = out.iter().sum();
        assert!((s - 1.0).abs() < 1e-5, "softmax sum {s}");

        let mut sg = x.clone();
        // SAFETY: avx2_available() checked above.
        unsafe { sigmoid(&mut sg) };
        for (j, (&xv, &got)) in x.iter().zip(&sg).enumerate() {
            let want = 1.0 / (1.0 + (-xv).exp());
            assert!((got - want).abs() < 1e-6, "sigmoid[{j}] {got} vs {want}");
        }

        let mut th = x.clone();
        // SAFETY: avx2_available() checked above.
        unsafe { tanh(&mut th) };
        for (j, (&xv, &got)) in x.iter().zip(&th).enumerate() {
            let want = xv.tanh();
            assert!((got - want).abs() < 2e-6, "tanh[{j}] {got} vs {want}");
        }
    }

    #[test]
    fn microkernel_matches_naive_6x16() {
        if !avx2_available() {
            return;
        }
        let kc = 37;
        let ap: Vec<f32> = (0..kc * 6).map(|i| ((i * 13) % 7) as f32 - 3.0).collect();
        let bp: Vec<f32> = (0..kc * 16).map(|i| ((i * 11) % 5) as f32 - 2.0).collect();
        let mut c = vec![1.0f32; 6 * 16];
        // SAFETY: avx2_available() checked; ap/bp/c sized exactly as the
        // microkernel contract requires (kc*6, kc*16, 6 rows of ldc=16).
        unsafe { microkernel_6x16(ap.as_ptr(), bp.as_ptr(), kc, c.as_mut_ptr(), 16) };
        for i in 0..6 {
            for j in 0..16 {
                let mut want = 1.0f32;
                for p in 0..kc {
                    want += ap[p * 6 + i] * bp[p * 16 + j];
                }
                let got = c[i * 16 + j];
                assert!((got - want).abs() < 1e-3, "c[{i},{j}] = {got}, want {want}");
            }
        }
    }
}
