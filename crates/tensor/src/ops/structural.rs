//! Structural ops: concat, narrow (slice), and row stacking.

use crate::error::{DarError, DarResult};
use crate::shape::numel;
use crate::Tensor;

/// Split a shape at `axis` into (outer, axis_len, inner) extents.
fn axis_split(op: &'static str, shape: &[usize], axis: usize) -> DarResult<(usize, usize, usize)> {
    if axis >= shape.len() {
        return Err(DarError::InvalidData(format!(
            "{op}: axis {axis} out of range for shape {shape:?}"
        )));
    }
    let outer: usize = shape[..axis].iter().product();
    let len = shape[axis];
    let inner: usize = shape[axis + 1..].iter().product();
    Ok((outer, len, inner))
}

/// Concatenate tensors along `axis`. All other dimensions must match.
pub fn concat(tensors: &[Tensor], axis: usize) -> Tensor {
    try_concat(tensors, axis).unwrap_or_else(|e| panic!("{e}"))
}

/// Checked [`concat`]: empty input, rank mismatch, bad axis, or non-axis
/// dim mismatch is a typed error instead of a panic.
pub fn try_concat(tensors: &[Tensor], axis: usize) -> DarResult<Tensor> {
    if tensors.is_empty() {
        return Err(DarError::InvalidData("concat of zero tensors".into()));
    }
    let rank = tensors[0].shape().len();
    if axis >= rank {
        return Err(DarError::InvalidData(format!(
            "concat: axis {axis} out of range for shape {:?}",
            tensors[0].shape()
        )));
    }
    for t in tensors {
        if t.shape().len() != rank {
            return Err(DarError::InvalidData(format!(
                "concat rank mismatch: {:?} vs {:?}",
                t.shape(),
                tensors[0].shape()
            )));
        }
        for (d, (a, b)) in t.shape().iter().zip(tensors[0].shape()).enumerate() {
            if d != axis && a != b {
                return Err(DarError::InvalidData(format!(
                    "concat non-axis dims differ: {:?}",
                    t.shape()
                )));
            }
        }
    }
    let mut out_shape = tensors[0].shape().to_vec();
    out_shape[axis] = tensors.iter().map(|t| t.shape()[axis]).sum();
    let (outer, _, inner) = axis_split("concat", &out_shape, axis)?;
    let mut out = vec![0.0f32; numel(&out_shape)];
    let total_axis = out_shape[axis];
    let mut offset = 0usize;
    let mut spans: Vec<(usize, usize)> = Vec::with_capacity(tensors.len());
    for t in tensors {
        let alen = t.shape()[axis];
        let v = t.values();
        for o in 0..outer {
            let src = &v[o * alen * inner..(o + 1) * alen * inner];
            let dst_base = o * total_axis * inner + offset * inner;
            out[dst_base..dst_base + alen * inner].copy_from_slice(src);
        }
        spans.push((offset, alen));
        offset += alen;
    }
    let parents: Vec<Tensor> = tensors.to_vec();
    Ok(Tensor::from_op(
        "concat",
        out,
        out_shape,
        parents,
        Box::new(move |g, parents| {
            for (t, &(off, alen)) in parents.iter().zip(&spans) {
                if !t.requires_grad() {
                    continue;
                }
                let mut gin = vec![0.0f32; outer * alen * inner];
                for o in 0..outer {
                    let src_base = o * total_axis * inner + off * inner;
                    gin[o * alen * inner..(o + 1) * alen * inner]
                        .copy_from_slice(&g[src_base..src_base + alen * inner]);
                }
                t.accumulate_grad(&gin);
            }
        }),
    ))
}

/// Stack `[r, c]`-shaped tensors along a new leading axis into `[n, r, c]`
/// (general: any equal shapes).
pub fn stack(tensors: &[Tensor]) -> Tensor {
    try_stack(tensors).unwrap_or_else(|e| panic!("{e}"))
}

/// Checked [`stack`]: empty input or a shape mismatch is a typed error
/// instead of a panic.
pub fn try_stack(tensors: &[Tensor]) -> DarResult<Tensor> {
    if tensors.is_empty() {
        return Err(DarError::InvalidData("stack of zero tensors".into()));
    }
    let inner_shape = tensors[0].shape().to_vec();
    let inner_len = numel(&inner_shape);
    let mut out = Vec::with_capacity(tensors.len() * inner_len);
    for t in tensors {
        if t.shape() != inner_shape.as_slice() {
            return Err(DarError::ShapeMismatch {
                expected: inner_shape.clone(),
                got: t.shape().to_vec(),
            });
        }
        out.extend_from_slice(&t.values());
    }
    let mut out_shape = vec![tensors.len()];
    out_shape.extend_from_slice(&inner_shape);
    Ok(Tensor::from_op(
        "stack",
        out,
        out_shape,
        tensors.to_vec(),
        Box::new(move |g, parents| {
            for (i, t) in parents.iter().enumerate() {
                if t.requires_grad() {
                    t.accumulate_grad(&g[i * inner_len..(i + 1) * inner_len]);
                }
            }
        }),
    ))
}

impl Tensor {
    /// Slice `len` entries starting at `start` along `axis`, keeping rank.
    pub fn narrow(&self, axis: usize, start: usize, len: usize) -> Tensor {
        self.try_narrow(axis, start, len)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked [`narrow`](Self::narrow): a bad axis or out-of-range slice
    /// is a typed error instead of a panic.
    pub fn try_narrow(&self, axis: usize, start: usize, len: usize) -> DarResult<Tensor> {
        let shape = self.shape().to_vec();
        let (outer, alen, inner) = axis_split("narrow", &shape, axis)?;
        if start + len > alen {
            return Err(DarError::InvalidData(format!(
                "narrow [{start}..{}] out of range for axis {axis} of {shape:?}",
                start + len
            )));
        }
        let v = self.values();
        let mut out = vec![0.0f32; outer * len * inner];
        for o in 0..outer {
            let src_base = (o * alen + start) * inner;
            out[o * len * inner..(o + 1) * len * inner]
                .copy_from_slice(&v[src_base..src_base + len * inner]);
        }
        drop(v);
        let mut out_shape = shape.clone();
        out_shape[axis] = len;
        Ok(Tensor::from_op(
            "narrow",
            out,
            out_shape,
            vec![self.clone()],
            Box::new(move |g, parents| {
                let p = &parents[0];
                if !p.requires_grad() {
                    return;
                }
                let mut gin = vec![0.0f32; outer * alen * inner];
                for o in 0..outer {
                    let dst_base = (o * alen + start) * inner;
                    gin[dst_base..dst_base + len * inner]
                        .copy_from_slice(&g[o * len * inner..(o + 1) * len * inner]);
                }
                p.accumulate_grad(&gin);
            }),
        ))
    }

    /// Concatenate `self` with `other` along `axis`.
    pub fn cat(&self, other: &Tensor, axis: usize) -> Tensor {
        concat(&[self.clone(), other.clone()], axis)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::{concat, stack};
    use crate::Tensor;

    #[test]
    fn cat_columns() {
        let a = Tensor::param(vec![1., 2., 3., 4.], &[2, 2]);
        let b = Tensor::param(vec![5., 6.], &[2, 1]);
        let y = a.cat(&b, 1);
        assert_eq!(y.shape(), &[2, 3]);
        assert_eq!(y.to_vec(), vec![1., 2., 5., 3., 4., 6.]);
        y.sum().backward();
        assert_eq!(a.grad_vec().unwrap(), vec![1.0; 4]);
        assert_eq!(b.grad_vec().unwrap(), vec![1.0; 2]);
    }

    #[test]
    fn cat_rows() {
        let a = Tensor::new(vec![1., 2.], &[1, 2]);
        let b = Tensor::new(vec![3., 4.], &[1, 2]);
        let y = a.cat(&b, 0);
        assert_eq!(y.shape(), &[2, 2]);
        assert_eq!(y.to_vec(), vec![1., 2., 3., 4.]);
    }

    #[test]
    fn concat_three_way_grad_splits() {
        let parts: Vec<Tensor> = (0..3)
            .map(|i| Tensor::param(vec![i as f32; 2], &[1, 2]))
            .collect();
        let y = concat(&parts, 1);
        assert_eq!(y.shape(), &[1, 6]);
        let w = Tensor::new(vec![1., 2., 3., 4., 5., 6.], &[1, 6]);
        y.mul(&w).sum().backward();
        assert_eq!(parts[0].grad_vec().unwrap(), vec![1., 2.]);
        assert_eq!(parts[1].grad_vec().unwrap(), vec![3., 4.]);
        assert_eq!(parts[2].grad_vec().unwrap(), vec![5., 6.]);
    }

    #[test]
    fn narrow_middle_axis() {
        let x = Tensor::param((0..24).map(|i| i as f32).collect(), &[2, 3, 4]);
        let y = x.narrow(1, 1, 1);
        assert_eq!(y.shape(), &[2, 1, 4]);
        assert_eq!(y.to_vec(), vec![4., 5., 6., 7., 16., 17., 18., 19.]);
        y.sum().backward();
        let g = x.grad_vec().unwrap();
        assert_eq!(g[4..8], [1.0; 4]);
        assert_eq!(g[0..4], [0.0; 4]);
    }

    #[test]
    fn narrow_then_reshape_is_time_step_extraction() {
        // The GRU pattern: [B,L,E] -> step t -> [B,E].
        let x = Tensor::new((0..12).map(|i| i as f32).collect(), &[2, 3, 2]);
        let t1 = x.narrow(1, 1, 1).reshape(&[2, 2]);
        assert_eq!(t1.to_vec(), vec![2., 3., 8., 9.]);
    }

    #[test]
    fn stack_makes_new_axis() {
        let a = Tensor::param(vec![1., 2.], &[2]);
        let b = Tensor::param(vec![3., 4.], &[2]);
        let y = stack(&[a.clone(), b.clone()]);
        assert_eq!(y.shape(), &[2, 2]);
        y.sum().backward();
        assert_eq!(a.grad_vec().unwrap(), vec![1., 1.]);
        assert_eq!(b.grad_vec().unwrap(), vec![1., 1.]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn narrow_out_of_range_panics() {
        let x = Tensor::new(vec![0.0; 4], &[2, 2]);
        let _ = x.narrow(1, 1, 2);
    }

    #[test]
    fn try_structural_ops_return_typed_errors() {
        let x = Tensor::new(vec![0.0; 4], &[2, 2]);
        assert!(x.try_narrow(1, 1, 2).is_err());
        assert!(x.try_narrow(5, 0, 1).is_err());
        assert!(super::try_concat(&[], 0).is_err());
        assert!(super::try_concat(&[x.clone()], 3).is_err());
        let y = Tensor::new(vec![0.0; 2], &[1, 2]);
        assert!(super::try_concat(&[x.clone(), y.clone()], 0).is_ok());
        assert!(super::try_concat(&[x.clone(), y.clone()], 1).is_err());
        assert!(super::try_stack(&[]).is_err());
        assert!(super::try_stack(&[x.clone(), y]).is_err());
        assert!(super::try_stack(&[x.clone(), x]).is_ok());
    }
}
