//! Structural ops: concat, narrow (slice), and row stacking.

use crate::shape::numel;
use crate::Tensor;

/// Split a shape at `axis` into (outer, axis_len, inner) extents.
fn axis_split(shape: &[usize], axis: usize) -> (usize, usize, usize) {
    assert!(
        axis < shape.len(),
        "axis {axis} out of range for shape {shape:?}"
    );
    let outer: usize = shape[..axis].iter().product();
    let len = shape[axis];
    let inner: usize = shape[axis + 1..].iter().product();
    (outer, len, inner)
}

/// Concatenate tensors along `axis`. All other dimensions must match.
pub fn concat(tensors: &[Tensor], axis: usize) -> Tensor {
    assert!(!tensors.is_empty(), "concat of zero tensors");
    let rank = tensors[0].shape().len();
    for t in tensors {
        assert_eq!(t.shape().len(), rank, "concat rank mismatch");
        for (d, (a, b)) in t.shape().iter().zip(tensors[0].shape()).enumerate() {
            if d != axis {
                assert_eq!(a, b, "concat non-axis dims differ: {:?}", t.shape());
            }
        }
    }
    let mut out_shape = tensors[0].shape().to_vec();
    out_shape[axis] = tensors.iter().map(|t| t.shape()[axis]).sum();
    let (outer, _, inner) = axis_split(&out_shape, axis);
    let mut out = vec![0.0f32; numel(&out_shape)];
    let total_axis = out_shape[axis];
    let mut offset = 0usize;
    let mut spans: Vec<(usize, usize)> = Vec::with_capacity(tensors.len());
    for t in tensors {
        let alen = t.shape()[axis];
        let v = t.values();
        for o in 0..outer {
            let src = &v[o * alen * inner..(o + 1) * alen * inner];
            let dst_base = o * total_axis * inner + offset * inner;
            out[dst_base..dst_base + alen * inner].copy_from_slice(src);
        }
        spans.push((offset, alen));
        offset += alen;
    }
    let parents: Vec<Tensor> = tensors.to_vec();
    Tensor::from_op(
        out,
        out_shape,
        parents,
        Box::new(move |g, parents| {
            for (t, &(off, alen)) in parents.iter().zip(&spans) {
                if !t.requires_grad() {
                    continue;
                }
                let mut gin = vec![0.0f32; outer * alen * inner];
                for o in 0..outer {
                    let src_base = o * total_axis * inner + off * inner;
                    gin[o * alen * inner..(o + 1) * alen * inner]
                        .copy_from_slice(&g[src_base..src_base + alen * inner]);
                }
                t.accumulate_grad(&gin);
            }
        }),
    )
}

/// Stack `[r, c]`-shaped tensors along a new leading axis into `[n, r, c]`
/// (general: any equal shapes).
pub fn stack(tensors: &[Tensor]) -> Tensor {
    assert!(!tensors.is_empty(), "stack of zero tensors");
    let inner_shape = tensors[0].shape().to_vec();
    let inner_len = numel(&inner_shape);
    let mut out = Vec::with_capacity(tensors.len() * inner_len);
    for t in tensors {
        assert_eq!(t.shape(), inner_shape.as_slice(), "stack shape mismatch");
        out.extend_from_slice(&t.values());
    }
    let mut out_shape = vec![tensors.len()];
    out_shape.extend_from_slice(&inner_shape);
    Tensor::from_op(
        out,
        out_shape,
        tensors.to_vec(),
        Box::new(move |g, parents| {
            for (i, t) in parents.iter().enumerate() {
                if t.requires_grad() {
                    t.accumulate_grad(&g[i * inner_len..(i + 1) * inner_len]);
                }
            }
        }),
    )
}

impl Tensor {
    /// Slice `len` entries starting at `start` along `axis`, keeping rank.
    pub fn narrow(&self, axis: usize, start: usize, len: usize) -> Tensor {
        let shape = self.shape().to_vec();
        let (outer, alen, inner) = axis_split(&shape, axis);
        assert!(
            start + len <= alen,
            "narrow [{start}..{}] out of range for axis {axis} of {shape:?}",
            start + len
        );
        let v = self.values();
        let mut out = vec![0.0f32; outer * len * inner];
        for o in 0..outer {
            let src_base = (o * alen + start) * inner;
            out[o * len * inner..(o + 1) * len * inner]
                .copy_from_slice(&v[src_base..src_base + len * inner]);
        }
        drop(v);
        let mut out_shape = shape.clone();
        out_shape[axis] = len;
        Tensor::from_op(
            out,
            out_shape,
            vec![self.clone()],
            Box::new(move |g, parents| {
                let p = &parents[0];
                if !p.requires_grad() {
                    return;
                }
                let mut gin = vec![0.0f32; outer * alen * inner];
                for o in 0..outer {
                    let dst_base = (o * alen + start) * inner;
                    gin[dst_base..dst_base + len * inner]
                        .copy_from_slice(&g[o * len * inner..(o + 1) * len * inner]);
                }
                p.accumulate_grad(&gin);
            }),
        )
    }

    /// Concatenate `self` with `other` along `axis`.
    pub fn cat(&self, other: &Tensor, axis: usize) -> Tensor {
        concat(&[self.clone(), other.clone()], axis)
    }
}

#[cfg(test)]
mod tests {
    use super::{concat, stack};
    use crate::Tensor;

    #[test]
    fn cat_columns() {
        let a = Tensor::param(vec![1., 2., 3., 4.], &[2, 2]);
        let b = Tensor::param(vec![5., 6.], &[2, 1]);
        let y = a.cat(&b, 1);
        assert_eq!(y.shape(), &[2, 3]);
        assert_eq!(y.to_vec(), vec![1., 2., 5., 3., 4., 6.]);
        y.sum().backward();
        assert_eq!(a.grad_vec().unwrap(), vec![1.0; 4]);
        assert_eq!(b.grad_vec().unwrap(), vec![1.0; 2]);
    }

    #[test]
    fn cat_rows() {
        let a = Tensor::new(vec![1., 2.], &[1, 2]);
        let b = Tensor::new(vec![3., 4.], &[1, 2]);
        let y = a.cat(&b, 0);
        assert_eq!(y.shape(), &[2, 2]);
        assert_eq!(y.to_vec(), vec![1., 2., 3., 4.]);
    }

    #[test]
    fn concat_three_way_grad_splits() {
        let parts: Vec<Tensor> = (0..3)
            .map(|i| Tensor::param(vec![i as f32; 2], &[1, 2]))
            .collect();
        let y = concat(&parts, 1);
        assert_eq!(y.shape(), &[1, 6]);
        let w = Tensor::new(vec![1., 2., 3., 4., 5., 6.], &[1, 6]);
        y.mul(&w).sum().backward();
        assert_eq!(parts[0].grad_vec().unwrap(), vec![1., 2.]);
        assert_eq!(parts[1].grad_vec().unwrap(), vec![3., 4.]);
        assert_eq!(parts[2].grad_vec().unwrap(), vec![5., 6.]);
    }

    #[test]
    fn narrow_middle_axis() {
        let x = Tensor::param((0..24).map(|i| i as f32).collect(), &[2, 3, 4]);
        let y = x.narrow(1, 1, 1);
        assert_eq!(y.shape(), &[2, 1, 4]);
        assert_eq!(y.to_vec(), vec![4., 5., 6., 7., 16., 17., 18., 19.]);
        y.sum().backward();
        let g = x.grad_vec().unwrap();
        assert_eq!(g[4..8], [1.0; 4]);
        assert_eq!(g[0..4], [0.0; 4]);
    }

    #[test]
    fn narrow_then_reshape_is_time_step_extraction() {
        // The GRU pattern: [B,L,E] -> step t -> [B,E].
        let x = Tensor::new((0..12).map(|i| i as f32).collect(), &[2, 3, 2]);
        let t1 = x.narrow(1, 1, 1).reshape(&[2, 2]);
        assert_eq!(t1.to_vec(), vec![2., 3., 8., 9.]);
    }

    #[test]
    fn stack_makes_new_axis() {
        let a = Tensor::param(vec![1., 2.], &[2]);
        let b = Tensor::param(vec![3., 4.], &[2]);
        let y = stack(&[a.clone(), b.clone()]);
        assert_eq!(y.shape(), &[2, 2]);
        y.sum().backward();
        assert_eq!(a.grad_vec().unwrap(), vec![1., 1.]);
        assert_eq!(b.grad_vec().unwrap(), vec![1., 1.]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn narrow_out_of_range_panics() {
        let x = Tensor::new(vec![0.0; 4], &[2, 2]);
        let _ = x.narrow(1, 1, 2);
    }
}
