//! The differentiable operator set.
//!
//! Every op is exposed as a method on [`crate::Tensor`]; the submodules group
//! the implementations:
//!
//! * [`arith`] — broadcast add/sub/mul/div, scalar arithmetic, negation.
//! * [`matmul`] — 2-D GEMM (with a blocked kernel) and batched 3-D matmul.
//! * [`activation`] — sigmoid, tanh, relu, exp, ln, sqrt, powi, abs, clamp.
//! * [`reduce`] — sum/mean (global and per-axis), max-pool over an axis.
//! * [`softmax`] — row softmax / log-softmax over the last dimension.
//! * [`embed`] — embedding row gather with scatter-add backward.
//! * [`structural`] — reshape, transpose, concat, narrow, stack, pad.
//! * [`compare`] — non-differentiable helpers (argmax, one-hot, equality).
//! * [`rnn`] — fused GRU sequence kernel with hand-written BPTT.
//! * [`norm`] — fused layer-norm over the last dimension.
//! * [`kernel`] — pluggable compute backends (reference vs cache-blocked
//!   SIMD) the hot loops above dispatch through.

// Containment rule: op code never calls `.unwrap()`/`.expect()`. Fallible
// paths return `DarResult` (the `try_*` entry points); the panicking
// wrappers funnel through those errors. Tests opt out locally.
#![deny(clippy::unwrap_used, clippy::expect_used)]
// Kernel containment rule: every `unsafe` block under ops/ (they live only
// in the SIMD kernel backend) must carry a `// SAFETY:` comment.
#![deny(clippy::undocumented_unsafe_blocks)]

pub mod activation;
pub mod arith;
pub mod compare;
pub mod embed;
pub mod kernel;
pub mod matmul;
pub mod norm;
pub mod reduce;
pub mod rnn;
pub mod softmax;
pub mod structural;
