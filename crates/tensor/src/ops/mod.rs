//! The differentiable operator set.
//!
//! Every op is exposed as a method on [`crate::Tensor`]; the submodules group
//! the implementations:
//!
//! * [`arith`] — broadcast add/sub/mul/div, scalar arithmetic, negation.
//! * [`matmul`] — 2-D GEMM (with a blocked kernel) and batched 3-D matmul.
//! * [`activation`] — sigmoid, tanh, relu, exp, ln, sqrt, powi, abs, clamp.
//! * [`reduce`] — sum/mean (global and per-axis), max-pool over an axis.
//! * [`softmax`] — row softmax / log-softmax over the last dimension.
//! * [`embed`] — embedding row gather with scatter-add backward.
//! * [`structural`] — reshape, transpose, concat, narrow, stack, pad.
//! * [`compare`] — non-differentiable helpers (argmax, one-hot, equality).
//! * [`rnn`] — fused GRU sequence kernel with hand-written BPTT.

// Containment rule: op code never calls `.unwrap()`/`.expect()`. Fallible
// paths return `DarResult` (the `try_*` entry points); the panicking
// wrappers funnel through those errors. Tests opt out locally.
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod activation;
pub mod arith;
pub mod compare;
pub mod embed;
pub mod matmul;
pub mod reduce;
pub mod rnn;
pub mod softmax;
pub mod structural;
