//! Embedding-table row gather with scatter-add backward.

use crate::error::{DarError, DarResult};
use crate::Tensor;

impl Tensor {
    /// Gather rows `ids` from a `[V, E]` table into `[N, E]`.
    ///
    /// Backward scatter-adds the output gradient into the gathered rows —
    /// this is the embedding-lookup op.
    ///
    /// # Panics
    /// Panics if the table is not 2-D or an id is out of range.
    pub fn gather_rows(&self, ids: &[usize]) -> Tensor {
        self.try_gather_rows(ids).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked [`gather_rows`](Self::gather_rows): a non-2-D table or an
    /// out-of-range id is a typed error instead of a panic.
    pub fn try_gather_rows(&self, ids: &[usize]) -> DarResult<Tensor> {
        let s = self.shape();
        if s.len() != 2 {
            return Err(DarError::InvalidData(format!(
                "gather_rows expects a 2-D table, got {s:?}"
            )));
        }
        let (v_rows, e) = (s[0], s[1]);
        let v = self.values();
        let mut out = Vec::with_capacity(ids.len() * e);
        for &id in ids {
            if id >= v_rows {
                return Err(DarError::InvalidData(format!(
                    "row id {id} out of range for table with {v_rows} rows"
                )));
            }
            out.extend_from_slice(&v[id * e..(id + 1) * e]);
        }
        drop(v);
        let ids_saved: Vec<usize> = ids.to_vec();
        Ok(Tensor::from_op(
            "gather_rows",
            out,
            vec![ids_saved.len(), e],
            vec![self.clone()],
            Box::new(move |g, parents| {
                let p = &parents[0];
                if !p.requires_grad() {
                    return;
                }
                let mut gin = vec![0.0f32; v_rows * e];
                for (n, &id) in ids_saved.iter().enumerate() {
                    let dst = &mut gin[id * e..(id + 1) * e];
                    let src = &g[n * e..(n + 1) * e];
                    for (d, s) in dst.iter_mut().zip(src) {
                        *d += *s;
                    }
                }
                p.accumulate_grad(&gin);
            }),
        ))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use crate::Tensor;

    #[test]
    fn gather_selects_rows() {
        let table = Tensor::new(vec![1., 2., 3., 4., 5., 6.], &[3, 2]);
        let out = table.gather_rows(&[2, 0, 2]);
        assert_eq!(out.shape(), &[3, 2]);
        assert_eq!(out.to_vec(), vec![5., 6., 1., 2., 5., 6.]);
    }

    #[test]
    fn repeated_ids_accumulate_grad() {
        let table = Tensor::param(vec![0.0; 6], &[3, 2]);
        let out = table.gather_rows(&[1, 1, 0]);
        out.sum().backward();
        // Row 1 gathered twice, row 0 once, row 2 never.
        assert_eq!(table.grad_vec().unwrap(), vec![1., 1., 2., 2., 0., 0.]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_id_panics() {
        let table = Tensor::new(vec![0.0; 4], &[2, 2]);
        let _ = table.gather_rows(&[5]);
    }

    #[test]
    fn try_gather_rows_returns_typed_errors() {
        let table = Tensor::new(vec![0.0; 4], &[2, 2]);
        assert!(table.try_gather_rows(&[5]).is_err());
        assert!(table.try_gather_rows(&[0, 1]).is_ok());
        let flat = Tensor::new(vec![0.0; 4], &[4]);
        assert!(flat.try_gather_rows(&[0]).is_err());
    }
}
