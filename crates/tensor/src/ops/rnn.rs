//! Fused GRU sequence kernel.
//!
//! Runs a whole `[b, l, e] -> [b, l, h]` GRU recurrence as ONE autograd
//! node with a hand-written backward pass (BPTT), replacing the ~15
//! composite ops per timestep the step-by-step formulation costs. Batch
//! rows are independent, so both passes shard over rows through `dar-par`
//! with a **fixed** decomposition: the shard count depends only on the
//! problem size, each shard runs serially over its rows, and the per-shard
//! weight-gradient partials are reduced by the caller in shard-index order
//! — making results bit-identical for any `DAR_THREADS` (DESIGN.md §9).
//!
//! Recurrence (`x_t: [b, e]`, `h: [b, hidden]`, mask `m_t`):
//! ```text
//! [z; r] = sigmoid([x, h] @ W_zr + b_zr)
//! c      = tanh([x, r ⊙ h] @ W_h + b_h)
//! h'     = (1 − z) ⊙ h + z ⊙ c
//! out_t  = m_t ⊙ h' + (1 − m_t) ⊙ h
//! ```

use std::sync::Arc;

use crate::ops::kernel::{current_kernel, Kernel};
use crate::Tensor;

/// Problems below this many flops are not worth dispatching to the pool.
const PARALLEL_FLOP_THRESHOLD: usize = 500_000;

#[derive(Clone, Copy)]
struct Dims {
    b: usize,
    l: usize,
    e: usize,
    h: usize,
}

impl Dims {
    /// Deterministic shard count: pure function of the problem size and
    /// of the backend's row-granularity hint (`min_rows`) — never of the
    /// thread budget. Reference hints `1`, preserving the historical
    /// decomposition its goldens are pinned to.
    fn shards(&self, min_rows: usize) -> usize {
        let flops = 2 * self.b * self.l * 3 * self.h * (self.e + self.h);
        if flops < PARALLEL_FLOP_THRESHOLD {
            1
        } else {
            dar_par::shard_count(self.b, min_rows)
        }
    }

    /// Timestep visit order (forward or right-to-left).
    fn steps(&self, reverse: bool) -> Vec<usize> {
        if reverse {
            (0..self.l).rev().collect()
        } else {
            (0..self.l).collect()
        }
    }
}

/// Per-shard forward over rows `r0..r1`: returns `(out, z, r, c)` chunks,
/// each `(r1-r0) * l * h` long. `out` holds the post-mask hidden states;
/// the gate stashes are what backward needs to avoid recomputation.
///
/// Timesteps are the outer loop; each step's two linear maps run as one
/// `[rows, e+h] @ [e+h, n]` bias-initialized GEMM over the whole shard, so
/// weight rows are loaded once per step instead of once per batch row.
/// Each output element accumulates over input dims in ascending order —
/// exactly the per-row axpy order — so results are bitwise independent of
/// this batching.
#[allow(clippy::too_many_arguments)]
fn forward_rows(
    kern: &dyn Kernel,
    r0: usize,
    r1: usize,
    xv: &[f32],
    mv: Option<&[f32]>,
    wzr: &[f32],
    bzr: &[f32],
    wh: &[f32],
    bh: &[f32],
    d: Dims,
    steps: &[usize],
) -> (Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>) {
    let (l, e, h) = (d.l, d.e, d.h);
    let rows = r1 - r0;
    let eh = e + h;
    let mut out = vec![0.0f32; rows * l * h];
    let mut zs = vec![0.0f32; rows * l * h];
    let mut rs = vec![0.0f32; rows * l * h];
    let mut cs = vec![0.0f32; rows * l * h];
    let mut xh = vec![0.0f32; rows * eh];
    let mut zr = vec![0.0f32; rows * 2 * h];
    let mut clin = vec![0.0f32; rows * h];
    let mut hprev = vec![0.0f32; rows * h];
    for &t in steps {
        // [x, h] @ W_zr + b_zr, as bias-init + GEMM over the shard.
        for ri in 0..rows {
            let i = r0 + ri;
            xh[ri * eh..ri * eh + e].copy_from_slice(&xv[(i * l + t) * e..(i * l + t) * e + e]);
            xh[ri * eh + e..(ri + 1) * eh].copy_from_slice(&hprev[ri * h..(ri + 1) * h]);
            zr[ri * 2 * h..(ri + 1) * 2 * h].copy_from_slice(bzr);
        }
        kern.gemm(&xh, wzr, &mut zr, rows, eh, 2 * h);
        kern.sigmoid(&mut zr);
        // [x, r ⊙ h] @ W_h + b_h — reuse xh's tail for r ⊙ h.
        for ri in 0..rows {
            let r = &zr[ri * 2 * h + h..(ri + 1) * 2 * h];
            for j in 0..h {
                xh[ri * eh + e + j] = r[j] * hprev[ri * h + j];
            }
            clin[ri * h..(ri + 1) * h].copy_from_slice(bh);
        }
        kern.gemm(&xh, wh, &mut clin, rows, eh, h);
        kern.tanh(&mut clin);
        for ri in 0..rows {
            let i = r0 + ri;
            let base = (ri * l + t) * h;
            let m = mv.map_or(1.0, |mv| mv[i * l + t]);
            let (z, r) = zr[ri * 2 * h..(ri + 1) * 2 * h].split_at(h);
            for j in 0..h {
                let c = clin[ri * h + j];
                let hn = (1.0 - z[j]) * hprev[ri * h + j] + z[j] * c;
                let hm = m * hn + (1.0 - m) * hprev[ri * h + j];
                zs[base + j] = z[j];
                rs[base + j] = r[j];
                cs[base + j] = c;
                out[base + j] = hm;
                hprev[ri * h + j] = hm;
            }
        }
    }
    (out, zs, rs, cs)
}

/// Which gradients a backward shard must produce.
#[derive(Clone, Copy)]
struct Needs {
    dx: bool,
    dwzr: bool,
    dbzr: bool,
    dwh: bool,
    dbh: bool,
}

/// `(dx_chunk, dW_zr, db_zr, dW_h, db_h)` partials of one backward shard.
type GradChunk = (Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>);

/// Per-shard BPTT over rows `r0..r1`: returns [`GradChunk`] partials
/// (weight partials are summed by the caller in shard-index order).
/// Stash/out buffers are indexed globally.
#[allow(clippy::too_many_arguments)]
fn backward_rows(
    kern: &dyn Kernel,
    r0: usize,
    r1: usize,
    g: &[f32],
    xv: &[f32],
    mv: Option<&[f32]>,
    out: &[f32],
    zs: &[f32],
    rs: &[f32],
    cs: &[f32],
    wzr: &[f32],
    wh: &[f32],
    d: Dims,
    steps: &[usize],
    needs: Needs,
) -> GradChunk {
    let (l, e, h) = (d.l, d.e, d.h);
    let rows = r1 - r0;
    let eh = e + h;
    let mut dx = vec![0.0f32; if needs.dx { rows * l * e } else { 0 }];
    let mut dwzr = vec![0.0f32; if needs.dwzr { eh * 2 * h } else { 0 }];
    let mut dbzr = vec![0.0f32; if needs.dbzr { 2 * h } else { 0 }];
    let mut dwh = vec![0.0f32; if needs.dwh { eh * h } else { 0 }];
    let mut dbh = vec![0.0f32; if needs.dbh { h } else { 0 }];

    // Timesteps outer (reverse visit order), rows inner; every matrix
    // product runs as one GEMM over the whole shard so weights and weight
    // gradients are streamed once per step, not once per batch row. `hp`
    // holds each row's `hprev` at the current step, `dh` its carried
    // recurrent gradient. The input-gradient products use pre-transposed
    // weights (`dxh = dgate @ W^T`); the weight-gradient products use
    // per-step transposed activations (`dW += xh^T @ dgate`).
    let mut xh = vec![0.0f32; rows * eh];
    let mut xrh = vec![0.0f32; rows * eh];
    let mut xt_buf = vec![0.0f32; rows * eh];
    let mut dxh = vec![0.0f32; rows * eh];
    let mut dh = vec![0.0f32; rows * h];
    let mut dhp = vec![0.0f32; rows * h];
    let mut dzr = vec![0.0f32; rows * 2 * h];
    let mut dclin = vec![0.0f32; rows * h];
    let mut hp = vec![0.0f32; rows * h];
    let mut wh_t = vec![0.0f32; eh * h];
    for j in 0..h {
        for p in 0..eh {
            wh_t[j * eh + p] = wh[p * h + j];
        }
    }
    let mut wzr_t = vec![0.0f32; eh * 2 * h];
    for j in 0..2 * h {
        for p in 0..eh {
            wzr_t[j * eh + p] = wzr[p * 2 * h + j];
        }
    }
    let transpose = |src: &[f32], dst: &mut [f32]| {
        for ri in 0..rows {
            for p in 0..eh {
                dst[p * rows + ri] = src[ri * eh + p];
            }
        }
    };
    for si in (0..steps.len()).rev() {
        let t = steps[si];
        // `hprev` at step `steps[si]` is the output of `steps[si-1]`
        // (zeros at the start of the recurrence).
        for ri in 0..rows {
            let i = r0 + ri;
            if si == 0 {
                hp[ri * h..(ri + 1) * h].iter_mut().for_each(|v| *v = 0.0);
            } else {
                let pt = steps[si - 1];
                hp[ri * h..(ri + 1) * h]
                    .copy_from_slice(&out[(i * l + pt) * h..(i * l + pt) * h + h]);
            }
        }
        // dht = upstream + carried recurrent gradient, split across the
        // mask gate: out = m ⊙ h' + (1-m) ⊙ hprev.
        // dclin/dzr hold the pre-activation gate gradients.
        for ri in 0..rows {
            let i = r0 + ri;
            let base = (i * l + t) * h;
            let m = mv.map_or(1.0, |mv| mv[i * l + t]);
            let xt = &xv[(i * l + t) * e..(i * l + t) * e + e];
            for j in 0..h {
                let dht = g[base + j] + dh[ri * h + j];
                let dhprime = m * dht;
                let dz = dhprime * (cs[base + j] - hp[ri * h + j]);
                let dc = dhprime * zs[base + j];
                dhp[ri * h + j] = (1.0 - m) * dht + dhprime * (1.0 - zs[base + j]);
                dclin[ri * h + j] = dc * (1.0 - cs[base + j] * cs[base + j]);
                dzr[ri * 2 * h + j] = dz * zs[base + j] * (1.0 - zs[base + j]);
            }
            // Candidate path inputs: [x, r ⊙ hprev]; gate path inputs: [x, hprev].
            xrh[ri * eh..ri * eh + e].copy_from_slice(xt);
            xh[ri * eh..ri * eh + e].copy_from_slice(xt);
            for j in 0..h {
                xrh[ri * eh + e + j] = rs[base + j] * hp[ri * h + j];
                xh[ri * eh + e + j] = hp[ri * h + j];
            }
        }
        if needs.dbh {
            for ri in 0..rows {
                for (o, &v) in dbh.iter_mut().zip(&dclin[ri * h..(ri + 1) * h]) {
                    *o += v;
                }
            }
        }
        if needs.dwh {
            // dW_h += xrh^T [eh, rows] @ dclin [rows, h].
            transpose(&xrh, &mut xt_buf);
            kern.gemm(&xt_buf, &dclin, &mut dwh, eh, rows, h);
        }
        // dxrh = dclin @ W_h^T, then split into dx and the r/h products.
        dxh.iter_mut().for_each(|v| *v = 0.0);
        kern.gemm(&dclin, &wh_t, &mut dxh, rows, h, eh);
        for ri in 0..rows {
            if needs.dx {
                for p in 0..e {
                    dx[(ri * l + t) * e + p] += dxh[ri * eh + p];
                }
            }
            let base = ((r0 + ri) * l + t) * h;
            for j in 0..h {
                let dot = dxh[ri * eh + e + j];
                // d(r ⊙ hprev): route to both r and hprev.
                let dr = dot * hp[ri * h + j];
                dhp[ri * h + j] += dot * rs[base + j];
                dzr[ri * 2 * h + h + j] = dr * rs[base + j] * (1.0 - rs[base + j]);
            }
        }
        // Gate path: [z; r] = sigmoid([x, h] @ W_zr + b_zr).
        if needs.dbzr {
            for ri in 0..rows {
                for (o, &v) in dbzr.iter_mut().zip(&dzr[ri * 2 * h..(ri + 1) * 2 * h]) {
                    *o += v;
                }
            }
        }
        if needs.dwzr {
            // dW_zr += xh^T [eh, rows] @ dzr [rows, 2h].
            transpose(&xh, &mut xt_buf);
            kern.gemm(&xt_buf, &dzr, &mut dwzr, eh, rows, 2 * h);
        }
        dxh.iter_mut().for_each(|v| *v = 0.0);
        kern.gemm(&dzr, &wzr_t, &mut dxh, rows, 2 * h, eh);
        for ri in 0..rows {
            if needs.dx {
                for p in 0..e {
                    dx[(ri * l + t) * e + p] += dxh[ri * eh + p];
                }
            }
            for j in 0..h {
                dhp[ri * h + j] += dxh[ri * eh + e + j];
            }
        }
        dh.copy_from_slice(&dhp);
    }
    (dx, dwzr, dbzr, dwh, dbh)
}

/// Sum `src` into `dst` element-wise (fixed-order shard reduction).
fn add_into(dst: &mut [f32], src: &[f32]) {
    for (o, &v) in dst.iter_mut().zip(src) {
        *o += v;
    }
}

/// Fused GRU over a batch of sequences.
///
/// * `x`: `[b, l, e]` inputs; `mask`: optional `[b, l]` (1 = real token;
///   padded positions carry the previous hidden state through unchanged).
/// * `w_zr: [e+h, 2h]`, `b_zr: [2h]`, `w_h: [e+h, h]`, `b_h: [h]`.
/// * `reverse` reads each sequence right-to-left; outputs stay aligned
///   with the input order.
///
/// Returns `[b, l, h]` per-step hidden states. Forward and backward are
/// shard-parallel over batch rows and bit-identical for any thread budget.
#[allow(clippy::too_many_arguments)]
pub fn gru_seq(
    x: &Tensor,
    mask: Option<&Tensor>,
    w_zr: &Tensor,
    b_zr: &Tensor,
    w_h: &Tensor,
    b_h: &Tensor,
    reverse: bool,
) -> Tensor {
    let _span = dar_obs::span("gru_seq");
    let s = x.shape();
    assert_eq!(s.len(), 3, "gru_seq expects [b, l, e], got {s:?}");
    let (b, l, e) = (s[0], s[1], s[2]);
    let h = b_h.len();
    assert_eq!(w_zr.shape(), &[e + h, 2 * h], "w_zr shape");
    assert_eq!(b_zr.shape(), &[2 * h], "b_zr shape");
    assert_eq!(w_h.shape(), &[e + h, h], "w_h shape");
    if let Some(m) = mask {
        assert_eq!(m.shape(), &[b, l], "gru_seq mask must be [b, l]");
    }
    let d = Dims { b, l, e, h };
    let steps = d.steps(reverse);
    // Captured on the dispatching thread; shards and the backward closure
    // reuse it so pool workers never consult their own backend selection.
    let kern = current_kernel();
    let shards = d.shards(kern.gru_rows_hint());

    let mask_vals: Option<Arc<Vec<f32>>> = mask.map(|m| Arc::new(m.to_vec()));
    let (out, zs, rs, cs) = {
        let xg = x.values();
        let wzr_g = w_zr.values();
        let bzr_g = b_zr.values();
        let wh_g = w_h.values();
        let bh_g = b_h.values();
        let (xv, wzr, bzr): (&[f32], &[f32], &[f32]) = (&xg, &wzr_g, &bzr_g);
        let (wh, bh): (&[f32], &[f32]) = (&wh_g, &bh_g);
        let mv = mask_vals.as_ref().map(|m| m.as_slice());
        let steps = &steps;
        let chunks = dar_par::run_shards(shards, |si| {
            let r = dar_par::shard_range(b, shards, si);
            forward_rows(kern, r.start, r.end, xv, mv, wzr, bzr, wh, bh, d, steps)
        });
        // Stitch per-shard chunks back together in shard order.
        let mut out = Vec::with_capacity(b * l * h);
        let mut zs = Vec::with_capacity(b * l * h);
        let mut rs = Vec::with_capacity(b * l * h);
        let mut cs = Vec::with_capacity(b * l * h);
        for (o, z, r, c) in chunks {
            out.extend_from_slice(&o);
            zs.extend_from_slice(&z);
            rs.extend_from_slice(&r);
            cs.extend_from_slice(&c);
        }
        (out, zs, rs, cs)
    };

    let out_saved = Arc::new(out.clone());
    let zs = Arc::new(zs);
    let rs = Arc::new(rs);
    let cs = Arc::new(cs);
    let steps_saved = Arc::new(steps);
    Tensor::from_op(
        "gru_seq",
        out,
        vec![b, l, h],
        vec![
            x.clone(),
            w_zr.clone(),
            b_zr.clone(),
            w_h.clone(),
            b_h.clone(),
        ],
        Box::new(move |g, parents| {
            let _span = dar_obs::span("gru_bptt");
            let (x, w_zr, b_zr, w_h, b_h) = (
                &parents[0],
                &parents[1],
                &parents[2],
                &parents[3],
                &parents[4],
            );
            let needs = Needs {
                dx: x.requires_grad(),
                dwzr: w_zr.requires_grad(),
                dbzr: b_zr.requires_grad(),
                dwh: w_h.requires_grad(),
                dbh: b_h.requires_grad(),
            };
            if !(needs.dx || needs.dwzr || needs.dbzr || needs.dwh || needs.dbh) {
                return;
            }
            let xg = x.values();
            let wzr_g = w_zr.values();
            let wh_g = w_h.values();
            let (xv, wzr, wh): (&[f32], &[f32], &[f32]) = (&xg, &wzr_g, &wh_g);
            let mv = mask_vals.as_ref().map(|m| m.as_slice());
            let (out, zs, rs, cs) = (&*out_saved, &*zs, &*rs, &*cs);
            let steps: &[usize] = &steps_saved;
            let chunks = dar_par::run_shards(shards, |si| {
                let r = dar_par::shard_range(b, shards, si);
                backward_rows(
                    kern, r.start, r.end, g, xv, mv, out, zs, rs, cs, wzr, wh, d, steps, needs,
                )
            });
            // Fixed-order reduction: accumulate shard partials by ascending
            // shard index so float association never depends on threads.
            let mut dx = Vec::new();
            let mut dwzr = vec![0.0f32; if needs.dwzr { (e + h) * 2 * h } else { 0 }];
            let mut dbzr = vec![0.0f32; if needs.dbzr { 2 * h } else { 0 }];
            let mut dwh = vec![0.0f32; if needs.dwh { (e + h) * h } else { 0 }];
            let mut dbh = vec![0.0f32; if needs.dbh { h } else { 0 }];
            for (dx_c, dwzr_c, dbzr_c, dwh_c, dbh_c) in &chunks {
                dx.extend_from_slice(dx_c);
                add_into(&mut dwzr, dwzr_c);
                add_into(&mut dbzr, dbzr_c);
                add_into(&mut dwh, dwh_c);
                add_into(&mut dbh, dbh_c);
            }
            drop(xg);
            drop(wzr_g);
            drop(wh_g);
            if needs.dx {
                x.accumulate_grad(&dx);
            }
            if needs.dwzr {
                w_zr.accumulate_grad(&dwzr);
            }
            if needs.dbzr {
                b_zr.accumulate_grad(&dbzr);
            }
            if needs.dwh {
                w_h.accumulate_grad(&dwh);
            }
            if needs.dbh {
                b_h.accumulate_grad(&dbh);
            }
        }),
    )
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::gru_seq;
    use crate::grad_check::check_gradients;
    use crate::{init, Tensor};

    fn weights(rng: &mut crate::Rng, e: usize, h: usize) -> (Tensor, Tensor, Tensor, Tensor) {
        (
            init::xavier_param(rng, e + h, 2 * h),
            init::zeros_param(&[2 * h]),
            init::xavier_param(rng, e + h, h),
            init::zeros_param(&[h]),
        )
    }

    #[test]
    fn output_shape_and_grad_flow() {
        let mut rng = crate::rng(0);
        let (wzr, bzr, wh, bh) = weights(&mut rng, 3, 4);
        let x = Tensor::param(init::uniform(&mut rng, 2 * 5 * 3, -0.5, 0.5), &[2, 5, 3]);
        let y = gru_seq(&x, None, &wzr, &bzr, &wh, &bh, false);
        assert_eq!(y.shape(), &[2, 5, 4]);
        y.sum().backward();
        for p in [&x, &wzr, &bzr, &wh, &bh] {
            let g = p.grad_vec().expect("missing grad");
            assert!(g.iter().any(|&v| v != 0.0), "all-zero grad");
        }
    }

    #[test]
    fn gradcheck_forward_direction() {
        let mut rng = crate::rng(1);
        let (wzr, bzr, wh, bh) = weights(&mut rng, 2, 2);
        let x = Tensor::param(vec![0.3, -0.2, 0.5, 0.1, -0.4, 0.2], &[1, 3, 2]);
        let inputs = [x, wzr, bzr, wh, bh];
        let rep = check_gradients(
            &inputs,
            |ins| {
                gru_seq(&ins[0], None, &ins[1], &ins[2], &ins[3], &ins[4], false)
                    .square()
                    .sum()
            },
            1e-2,
        );
        assert!(rep.ok(5e-2), "{rep:?}");
    }

    #[test]
    fn gradcheck_reverse_direction() {
        let mut rng = crate::rng(2);
        let (wzr, bzr, wh, bh) = weights(&mut rng, 2, 3);
        let x = Tensor::param(vec![0.2, -0.3, 0.4, 0.6, -0.1, 0.3, -0.5, 0.2], &[1, 4, 2]);
        let inputs = [x, wzr, bzr, wh, bh];
        let rep = check_gradients(
            &inputs,
            |ins| {
                gru_seq(&ins[0], None, &ins[1], &ins[2], &ins[3], &ins[4], true)
                    .square()
                    .sum()
            },
            1e-2,
        );
        assert!(rep.ok(5e-2), "{rep:?}");
    }

    #[test]
    fn gradcheck_with_padding_mask() {
        let mut rng = crate::rng(3);
        let (wzr, bzr, wh, bh) = weights(&mut rng, 2, 2);
        // Row 0 is full length, row 1 padded after the first step.
        let x = Tensor::param(
            vec![
                0.3, -0.2, 0.5, 0.1, -0.4, 0.2, 0.6, -0.3, 0.0, 0.0, 0.0, 0.0,
            ],
            &[2, 3, 2],
        );
        let mask = Tensor::new(vec![1., 1., 1., 1., 0., 0.], &[2, 3]);
        let inputs = [x, wzr, bzr, wh, bh];
        let rep = check_gradients(
            &inputs,
            |ins| {
                gru_seq(
                    &ins[0],
                    Some(&mask),
                    &ins[1],
                    &ins[2],
                    &ins[3],
                    &ins[4],
                    false,
                )
                .square()
                .sum()
            },
            1e-2,
        );
        assert!(rep.ok(5e-2), "{rep:?}");
    }

    #[test]
    fn mask_freezes_padded_rows() {
        let mut rng = crate::rng(4);
        let (wzr, bzr, wh, bh) = weights(&mut rng, 2, 3);
        let x = Tensor::new(init::uniform(&mut rng, 2 * 3 * 2, -1.0, 1.0), &[2, 3, 2]);
        let mask = Tensor::new(vec![1., 1., 1., 1., 0., 0.], &[2, 3]);
        let y = gru_seq(&x, Some(&mask), &wzr, &bzr, &wh, &bh, false).to_vec();
        // Row 1, steps 1 and 2 are padded: the state must stay at step 0's.
        let h = 3;
        let row1 = &y[3 * h..];
        assert_eq!(&row1[..h], &row1[h..2 * h]);
        assert_eq!(&row1[..h], &row1[2 * h..]);
    }

    #[test]
    fn frozen_weights_still_pass_input_gradient() {
        // The discriminator case: every weight frozen, gradient must still
        // flow through the recurrence into x.
        let mut rng = crate::rng(5);
        let (wzr, bzr, wh, bh) = weights(&mut rng, 2, 3);
        for w in [&wzr, &bzr, &wh, &bh] {
            w.freeze();
        }
        let x = Tensor::param(init::uniform(&mut rng, 6, -0.5, 0.5), &[1, 3, 2]);
        gru_seq(&x, None, &wzr, &bzr, &wh, &bh, false)
            .square()
            .sum()
            .backward();
        assert!(wzr.grad_vec().is_none(), "frozen weight got a grad buffer");
        let gx = x.grad_vec().expect("x missing grad");
        assert!(gx.iter().any(|&v| v != 0.0));
    }

    #[test]
    fn bit_identical_across_thread_budgets() {
        // Large enough that shards() > 1, so the pool really dispatches.
        let mut rng = crate::rng(6);
        let (b, l, e, h) = (24, 12, 8, 16);
        let (wzr, bzr, wh, bh) = weights(&mut rng, e, h);
        let xv = init::uniform(&mut rng, b * l * e, -0.8, 0.8);
        let run = |threads: usize| {
            dar_par::with_threads(threads, || {
                let x = Tensor::param(xv.clone(), &[b, l, e]);
                for w in [&wzr, &bzr, &wh, &bh] {
                    w.zero_grad();
                }
                let y = gru_seq(&x, None, &wzr, &bzr, &wh, &bh, false);
                y.square().sum().backward();
                (
                    y.to_vec(),
                    x.grad_vec().unwrap(),
                    wzr.grad_vec().unwrap(),
                    wh.grad_vec().unwrap(),
                    bzr.grad_vec().unwrap(),
                    bh.grad_vec().unwrap(),
                )
            })
        };
        assert_eq!(run(1), run(4), "gru_seq depends on thread budget");
    }
}
