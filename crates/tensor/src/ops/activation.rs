//! Unary differentiable ops: activations and pointwise math.

use crate::Tensor;

/// Build a unary op from a forward map and a backward map.
///
/// `backward(x, y, g)` returns the input gradient given input value `x`,
/// output value `y` and output gradient `g`.
fn unary(
    op: &'static str,
    t: &Tensor,
    fwd: impl Fn(f32) -> f32,
    bwd: impl Fn(f32, f32, f32) -> f32 + 'static,
) -> Tensor {
    let values: Vec<f32> = t.values().iter().map(|&x| fwd(x)).collect();
    let saved_out = values.clone();
    Tensor::from_op(
        op,
        values,
        t.shape().to_vec(),
        vec![t.clone()],
        Box::new(move |g, parents| {
            let p = &parents[0];
            if !p.requires_grad() {
                return;
            }
            let xv = p.values();
            let grads: Vec<f32> = (0..g.len())
                .map(|i| bwd(xv[i], saved_out[i], g[i]))
                .collect();
            drop(xv);
            p.accumulate_grad(&grads);
        }),
    )
}

impl Tensor {
    /// Logistic sigmoid `1 / (1 + e^{-x})`, numerically stable on both tails.
    pub fn sigmoid(&self) -> Tensor {
        unary(
            "sigmoid",
            self,
            |x| {
                if x >= 0.0 {
                    1.0 / (1.0 + (-x).exp())
                } else {
                    let e = x.exp();
                    e / (1.0 + e)
                }
            },
            |_, y, g| g * y * (1.0 - y),
        )
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        unary("tanh", self, f32::tanh, |_, y, g| g * (1.0 - y * y))
    }

    /// Rectified linear unit.
    pub fn relu(&self) -> Tensor {
        unary(
            "relu",
            self,
            |x| x.max(0.0),
            |x, _, g| if x > 0.0 { g } else { 0.0 },
        )
    }

    /// Gaussian error linear unit (tanh approximation, as in BERT).
    pub fn gelu(&self) -> Tensor {
        const C: f32 = 0.797_884_6; // sqrt(2/pi)
        unary(
            "gelu",
            self,
            |x| 0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh()),
            |x, _, g| {
                let inner = C * (x + 0.044715 * x * x * x);
                let t = inner.tanh();
                let dinner = C * (1.0 + 3.0 * 0.044715 * x * x);
                g * (0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * dinner)
            },
        )
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Tensor {
        unary("exp", self, f32::exp, |_, y, g| g * y)
    }

    /// Natural logarithm. Inputs are clamped to `1e-12` to keep the loss
    /// finite when probabilities underflow.
    pub fn ln(&self) -> Tensor {
        unary(
            "ln",
            self,
            |x| x.max(1e-12).ln(),
            |x, _, g| g / x.max(1e-12),
        )
    }

    /// Elementwise square root (clamped at zero).
    pub fn sqrt(&self) -> Tensor {
        unary(
            "sqrt",
            self,
            |x| x.max(0.0).sqrt(),
            |_, y, g| if y > 0.0 { g / (2.0 * y) } else { 0.0 },
        )
    }

    /// Elementwise square.
    pub fn square(&self) -> Tensor {
        unary("square", self, |x| x * x, |x, _, g| 2.0 * x * g)
    }

    /// Absolute value, with subgradient `sign(x)` (0 at the kink). Used by
    /// the sparsity/coherence regularizer of Eq. (3).
    pub fn abs(&self) -> Tensor {
        unary("abs", self, f32::abs, |x, _, g| {
            if x > 0.0 {
                g
            } else if x < 0.0 {
                -g
            } else {
                0.0
            }
        })
    }

    /// Clamp values into `[lo, hi]`; gradient is passed through inside the
    /// interval and zero outside (hard clamp).
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        unary(
            "clamp",
            self,
            move |x| x.clamp(lo, hi),
            move |x, _, g| if x >= lo && x <= hi { g } else { 0.0 },
        )
    }

    /// Repair non-finite values: NaN becomes `nan_to`, everything else is
    /// clamped into `[lo, hi]` (so ±Inf lands on the bound). With wide
    /// bounds (e.g. ±1e30) this is the identity on every finite value a
    /// healthy model produces — the `dar-nn` guard rails rely on that to
    /// stay bit-compatible with recorded trajectories. Gradient passes
    /// through exactly where the forward was the identity.
    pub fn finite_clamp(&self, lo: f32, hi: f32, nan_to: f32) -> Tensor {
        unary(
            "finite_clamp",
            self,
            move |x| if x.is_nan() { nan_to } else { x.clamp(lo, hi) },
            move |x, _, g| {
                if x.is_finite() && x >= lo && x <= hi {
                    g
                } else {
                    0.0
                }
            },
        )
    }

    /// Flush denormal magnitudes (`0 < |x| < f32::MIN_POSITIVE`) to zero.
    /// Normal values, zeros, and non-finite values pass through unchanged,
    /// so this too is the identity on healthy inputs. Denormal arithmetic
    /// is both slow and a precision trap in variance denominators; the
    /// layer-norm guard rail flushes its input through this op.
    pub fn flush_denormals(&self) -> Tensor {
        unary(
            "flush_denormals",
            self,
            |x| {
                if x != 0.0 && x.abs() < f32::MIN_POSITIVE {
                    0.0
                } else {
                    x
                }
            },
            |x, _, g| {
                if x == 0.0 || x.is_nan() || x.abs() >= f32::MIN_POSITIVE {
                    g
                } else {
                    0.0
                }
            },
        )
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use crate::Tensor;

    fn close(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn sigmoid_values_and_grad() {
        let x = Tensor::param(vec![0.0], &[1]);
        let y = x.sigmoid();
        assert!(close(y.item(), 0.5));
        y.backward();
        assert!(close(x.grad_vec().unwrap()[0], 0.25));
    }

    #[test]
    fn sigmoid_extreme_inputs_stay_finite() {
        let x = Tensor::new(vec![-100.0, 100.0], &[2]);
        let y = x.sigmoid().to_vec();
        assert!(y[0] >= 0.0 && y[0] < 1e-6);
        assert!(y[1] > 1.0 - 1e-6 && y[1] <= 1.0);
    }

    #[test]
    fn tanh_grad() {
        let x = Tensor::param(vec![0.5], &[1]);
        let y = x.tanh();
        y.backward();
        let t = 0.5f32.tanh();
        assert!(close(x.grad_vec().unwrap()[0], 1.0 - t * t));
    }

    #[test]
    fn relu_kills_negative_grad() {
        let x = Tensor::param(vec![-1.0, 2.0], &[2]);
        let y = x.relu();
        assert_eq!(y.to_vec(), vec![0.0, 2.0]);
        y.sum().backward();
        assert_eq!(x.grad_vec().unwrap(), vec![0.0, 1.0]);
    }

    #[test]
    fn ln_clamps_small_inputs() {
        let x = Tensor::new(vec![0.0], &[1]);
        assert!(x.ln().item().is_finite());
    }

    #[test]
    fn abs_subgradient() {
        let x = Tensor::param(vec![-2.0, 0.0, 3.0], &[3]);
        let y = x.abs();
        assert_eq!(y.to_vec(), vec![2.0, 0.0, 3.0]);
        y.sum().backward();
        assert_eq!(x.grad_vec().unwrap(), vec![-1.0, 0.0, 1.0]);
    }

    #[test]
    fn clamp_grad_mask() {
        let x = Tensor::param(vec![-2.0, 0.5, 2.0], &[3]);
        let y = x.clamp(0.0, 1.0);
        assert_eq!(y.to_vec(), vec![0.0, 0.5, 1.0]);
        y.sum().backward();
        assert_eq!(x.grad_vec().unwrap(), vec![0.0, 1.0, 0.0]);
    }

    #[test]
    fn gelu_is_monotone_near_zero() {
        let x = Tensor::new(vec![-1.0, 0.0, 1.0], &[3]);
        let y = x.gelu().to_vec();
        assert!(y[0] < y[1] && y[1] < y[2]);
        assert!((y[1]).abs() < 1e-6);
    }

    #[test]
    fn exp_square_sqrt_roundtrip() {
        let x = Tensor::param(vec![2.0], &[1]);
        let y = x.square().sqrt();
        assert!(close(y.item(), 2.0));
        y.backward();
        assert!(close(x.grad_vec().unwrap()[0], 1.0));
    }

    #[test]
    fn finite_clamp_repairs_only_pathological_values() {
        let x = Tensor::param(
            vec![f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 1.5, -3.0e31],
            &[5],
        );
        let y = x.finite_clamp(-1e30, 1e30, 0.0);
        let v = y.to_vec();
        assert_eq!(v[0], 0.0);
        assert_eq!(v[1], 1e30);
        assert_eq!(v[2], -1e30);
        assert_eq!(v[3], 1.5); // identity on healthy finite values
        assert_eq!(v[4], -1e30); // out-of-range finite clamps too
        y.sum().backward();
        // Gradient flows only where the forward was the identity.
        assert_eq!(x.grad_vec().unwrap(), vec![0.0, 0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn flush_denormals_zeroes_subnormals_only() {
        let sub = f32::MIN_POSITIVE / 2.0;
        let x = Tensor::param(vec![sub, -sub, 0.0, 1.0, f32::MIN_POSITIVE], &[5]);
        let y = x.flush_denormals();
        assert_eq!(y.to_vec(), vec![0.0, 0.0, 0.0, 1.0, f32::MIN_POSITIVE]);
        y.sum().backward();
        assert_eq!(x.grad_vec().unwrap(), vec![0.0, 0.0, 1.0, 1.0, 1.0]);
    }
}
