//! Fused layer normalization over the last dimension.
//!
//! One autograd node instead of the ~7 composite ops (`mean_axis`, `sub`,
//! `square`, `div`, `mul`, `add`, …) the `dar-nn` formulation costs: the
//! forward stashes `x̂` and the per-row `1/σ`, and the hand-written
//! backward is the standard
//! `dx = (1/σ) · (gᵧ − mean(gᵧ) − x̂ ⊙ mean(gᵧ ⊙ x̂))` with
//! `dγ = Σ g ⊙ x̂`, `dβ = Σ g`. Rows shard through `dar-par` exactly like
//! softmax: shard boundaries are a pure function of the problem size and
//! the per-shard `dγ`/`dβ` partials reduce in shard-index order, so the
//! results are bit-identical for any `DAR_THREADS` (DESIGN.md §9).
//!
//! Inner loops dispatch through the [`crate::ops::kernel`] backend.

use std::sync::Arc;

use crate::error::{DarError, DarResult};
use crate::ops::kernel::{current_kernel, Kernel};
use crate::Tensor;

/// Buffers below this many elements are not worth dispatching to the pool.
const PARALLEL_ELEM_THRESHOLD: usize = 16_384;

/// Don't split finer than this many rows per shard.
const MIN_ROWS_PER_SHARD: usize = 32;

/// Deterministic shard count: pure function of the problem size.
fn row_shards(rows: usize, c: usize) -> usize {
    if rows * c < PARALLEL_ELEM_THRESHOLD {
        1
    } else {
        dar_par::shard_count(rows, MIN_ROWS_PER_SHARD)
    }
}

/// Per-shard forward: `(out, xhat, inv_std)` chunks for rows `r0..r1`.
#[allow(clippy::too_many_arguments)]
fn forward_rows(
    kern: &dyn Kernel,
    x: &[f32],
    gamma: &[f32],
    beta: &[f32],
    r0: usize,
    r1: usize,
    c: usize,
    eps: f32,
) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let rows = r1 - r0;
    let mut out = vec![0.0f32; rows * c];
    let mut xhat = vec![0.0f32; rows * c];
    let mut inv_std = vec![0.0f32; rows];
    kern.layer_norm_rows(
        &x[r0 * c..r1 * c],
        gamma,
        beta,
        &mut out,
        &mut xhat,
        &mut inv_std,
        c,
        eps,
    );
    (out, xhat, inv_std)
}

impl Tensor {
    /// Fused layer norm over the last dimension:
    /// `gamma ⊙ (x − μ) / sqrt(σ² + eps) + beta` per row, as a single
    /// autograd node. `gamma` and `beta` must be 1-D of the last-dim width.
    ///
    /// # Panics
    /// Panics on rank-0 input, zero-width last dimension, or mismatched
    /// `gamma`/`beta` shapes.
    pub fn layer_norm(&self, gamma: &Tensor, beta: &Tensor, eps: f32) -> Tensor {
        self.try_layer_norm(gamma, beta, eps)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked [`layer_norm`](Self::layer_norm): shape problems are typed
    /// errors instead of panics.
    pub fn try_layer_norm(&self, gamma: &Tensor, beta: &Tensor, eps: f32) -> DarResult<Tensor> {
        let _span = dar_obs::span("layer_norm");
        let shape = self.shape();
        let c = match shape.last() {
            Some(&c) if c > 0 => c,
            Some(_) => {
                return Err(DarError::InvalidData(format!(
                    "layer_norm over empty dimension (shape {shape:?})"
                )))
            }
            None => {
                return Err(DarError::InvalidData(
                    "layer_norm needs at least one dimension".into(),
                ))
            }
        };
        if gamma.shape() != [c] || beta.shape() != [c] {
            return Err(DarError::InvalidData(format!(
                "layer_norm gamma/beta must be [{c}], got {:?} / {:?}",
                gamma.shape(),
                beta.shape()
            )));
        }
        let kern = current_kernel();
        let rows = self.len() / c;
        let shards = row_shards(rows, c);
        let (out, xhat, inv_std) = {
            let xg = self.values();
            let gg = gamma.values();
            let bg = beta.values();
            let (xv, gv, bv): (&[f32], &[f32], &[f32]) = (&xg, &gg, &bg);
            if shards <= 1 {
                forward_rows(kern, xv, gv, bv, 0, rows, c, eps)
            } else {
                let chunks = dar_par::run_shards(shards, |si| {
                    let r = dar_par::shard_range(rows, shards, si);
                    forward_rows(kern, xv, gv, bv, r.start, r.end, c, eps)
                });
                let mut out = Vec::with_capacity(rows * c);
                let mut xhat = Vec::with_capacity(rows * c);
                let mut inv_std = Vec::with_capacity(rows);
                for (o, xh, is) in chunks {
                    out.extend_from_slice(&o);
                    xhat.extend_from_slice(&xh);
                    inv_std.extend_from_slice(&is);
                }
                (out, xhat, inv_std)
            }
        };
        let xhat = Arc::new(xhat);
        let inv_std = Arc::new(inv_std);
        Ok(Tensor::from_op(
            "layer_norm",
            out,
            shape.to_vec(),
            vec![self.clone(), gamma.clone(), beta.clone()],
            Box::new(move |g, parents| {
                let (x, gamma, beta) = (&parents[0], &parents[1], &parents[2]);
                let needs_dx = x.requires_grad();
                let needs_dg = gamma.requires_grad();
                let needs_db = beta.requires_grad();
                if !(needs_dx || needs_dg || needs_db) {
                    return;
                }
                let gamma_g = gamma.values();
                let gv: &[f32] = &gamma_g;
                let (xhat, inv_std) = (&**xhat, &**inv_std);
                let per_shard = |r0: usize, r1: usize| {
                    let rows = r1 - r0;
                    let mut dx = vec![0.0f32; rows * c];
                    let mut dgamma = vec![0.0f32; c];
                    let mut dbeta = vec![0.0f32; c];
                    kern.layer_norm_bwd_rows(
                        &g[r0 * c..r1 * c],
                        &xhat[r0 * c..r1 * c],
                        &inv_std[r0..r1],
                        gv,
                        &mut dx,
                        &mut dgamma,
                        &mut dbeta,
                        c,
                    );
                    (dx, dgamma, dbeta)
                };
                let chunks = if shards <= 1 {
                    vec![per_shard(0, rows)]
                } else {
                    dar_par::run_shards(shards, |si| {
                        let r = dar_par::shard_range(rows, shards, si);
                        per_shard(r.start, r.end)
                    })
                };
                // Fixed-order reduction of the parameter-grad partials.
                let mut dx = Vec::with_capacity(if needs_dx { rows * c } else { 0 });
                let mut dgamma = vec![0.0f32; c];
                let mut dbeta = vec![0.0f32; c];
                for (dx_c, dg_c, db_c) in &chunks {
                    if needs_dx {
                        dx.extend_from_slice(dx_c);
                    }
                    for (o, &v) in dgamma.iter_mut().zip(dg_c) {
                        *o += v;
                    }
                    for (o, &v) in dbeta.iter_mut().zip(db_c) {
                        *o += v;
                    }
                }
                drop(gamma_g);
                if needs_dx {
                    x.accumulate_grad(&dx);
                }
                if needs_dg {
                    gamma.accumulate_grad(&dgamma);
                }
                if needs_db {
                    beta.accumulate_grad(&dbeta);
                }
            }),
        ))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use crate::grad_check::check_gradients;
    use crate::Tensor;

    #[test]
    fn rows_are_standardized() {
        let x = Tensor::new(vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0], &[2, 4]);
        let gamma = Tensor::new(vec![1.0; 4], &[4]);
        let beta = Tensor::new(vec![0.0; 4], &[4]);
        let y = x.layer_norm(&gamma, &beta, 1e-5).to_vec();
        for row in y.chunks(4) {
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn fused_gradcheck_input_gamma_beta() {
        let x = Tensor::param(vec![0.5, -1.0, 2.0, 1.5, 0.3, -0.7], &[2, 3]);
        let gamma = Tensor::param(vec![1.2, 0.8, -0.5], &[3]);
        let beta = Tensor::param(vec![0.1, -0.2, 0.3], &[3]);
        let w = Tensor::new(vec![1.0, -2.0, 0.5, 0.7, 1.3, -0.4], &[2, 3]);
        let inputs = vec![x, gamma, beta];
        let rep = check_gradients(
            &inputs,
            |ins| ins[0].layer_norm(&ins[1], &ins[2], 1e-5).mul(&w).sum(),
            1e-2,
        );
        assert!(rep.ok(5e-2), "{rep:?}");
    }

    #[test]
    fn degenerate_shapes_are_typed_errors() {
        let empty = Tensor::new(vec![], &[2, 0]);
        let g1 = Tensor::new(vec![1.0], &[1]);
        assert!(empty.try_layer_norm(&g1, &g1, 1e-5).is_err());
        let x = Tensor::new(vec![1.0, 2.0], &[1, 2]);
        assert!(x.try_layer_norm(&g1, &g1, 1e-5).is_err(), "gamma width");
    }

    #[test]
    fn bit_identical_across_thread_budgets() {
        // Large enough to cross the parallel threshold.
        let rows = 3000;
        let c = 8;
        let vals: Vec<f32> = (0..rows * c)
            .map(|i| ((i * 19) % 37) as f32 * 0.13 - 2.0)
            .collect();
        let w = Tensor::new(
            (0..rows * c).map(|i| (i % 5) as f32 - 2.0).collect(),
            &[rows, c],
        );
        let run = |threads: usize| {
            dar_par::with_threads(threads, || {
                let x = Tensor::param(vals.clone(), &[rows, c]);
                let gamma = Tensor::param(vec![1.0; c], &[c]);
                let beta = Tensor::param(vec![0.0; c], &[c]);
                let y = x.layer_norm(&gamma, &beta, 1e-5);
                y.mul(&w).sum().backward();
                (
                    y.to_vec(),
                    x.grad_vec().unwrap(),
                    gamma.grad_vec().unwrap(),
                    beta.grad_vec().unwrap(),
                )
            })
        };
        assert_eq!(run(1), run(4), "layer_norm depends on thread budget");
    }

    #[test]
    fn matches_composite_formulation() {
        // The fused op must agree with mean/sub/square/div/mul/add chain.
        let x = Tensor::param(vec![0.5, -1.0, 2.0, 1.5, 0.3, -0.7], &[2, 3]);
        let gamma = Tensor::new(vec![1.2, 0.8, -0.5], &[3]);
        let beta = Tensor::new(vec![0.1, -0.2, 0.3], &[3]);
        let fused = x.layer_norm(&gamma, &beta, 1e-5).to_vec();
        let mean = x.mean_axis(1, true);
        let centered = x.sub(&mean);
        let var = centered.square().mean_axis(1, true);
        let composite = centered
            .div(&var.add_scalar(1e-5).sqrt())
            .mul(&gamma)
            .add(&beta)
            .to_vec();
        for (f, cv) in fused.iter().zip(&composite) {
            assert!((f - cv).abs() < 1e-5, "fused {f} vs composite {cv}");
        }
    }
}
