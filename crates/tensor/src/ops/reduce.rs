//! Reductions: global and per-axis sum/mean, and max over an axis (pooling).

use crate::error::{DarError, DarResult};
use crate::shape::{numel, strides};
use crate::Tensor;

/// Split a shape at `axis` into (outer, axis_len, inner) extents so a
/// reduction can be written as three nested loops over contiguous memory.
fn axis_split(op: &'static str, shape: &[usize], axis: usize) -> DarResult<(usize, usize, usize)> {
    if axis >= shape.len() {
        return Err(DarError::InvalidData(format!(
            "{op}: axis {axis} out of range for shape {shape:?}"
        )));
    }
    let outer: usize = shape[..axis].iter().product();
    let len = shape[axis];
    let inner: usize = shape[axis + 1..].iter().product();
    Ok((outer, len, inner))
}

fn reduced_shape(shape: &[usize], axis: usize, keepdim: bool) -> Vec<usize> {
    let mut s = shape.to_vec();
    if keepdim {
        s[axis] = 1;
    } else {
        s.remove(axis);
        if s.is_empty() {
            s.push(1);
        }
    }
    s
}

impl Tensor {
    /// Sum of all elements, returned as a `[1]` scalar tensor.
    pub fn sum(&self) -> Tensor {
        let total: f32 = self.values().iter().sum();
        let n = self.len();
        Tensor::from_op(
            "sum",
            vec![total],
            vec![1],
            vec![self.clone()],
            Box::new(move |g, parents| {
                let p = &parents[0];
                if p.requires_grad() {
                    p.accumulate_grad(&vec![g[0]; n]);
                }
            }),
        )
    }

    /// Mean of all elements as a `[1]` scalar tensor.
    pub fn mean(&self) -> Tensor {
        let n = self.len() as f32;
        self.sum().scale(1.0 / n)
    }

    /// Sum over one axis. With `keepdim` the axis is kept at size 1.
    pub fn sum_axis(&self, axis: usize, keepdim: bool) -> Tensor {
        self.try_sum_axis(axis, keepdim)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked [`sum_axis`](Self::sum_axis): an out-of-range axis is a
    /// typed error instead of a panic.
    pub fn try_sum_axis(&self, axis: usize, keepdim: bool) -> DarResult<Tensor> {
        let (outer, len, inner) = axis_split("sum_axis", self.shape(), axis)?;
        let v = self.values();
        let mut out = vec![0.0f32; outer * inner];
        for o in 0..outer {
            for l in 0..len {
                let base = (o * len + l) * inner;
                let obase = o * inner;
                for i in 0..inner {
                    out[obase + i] += v[base + i];
                }
            }
        }
        drop(v);
        let out_shape = reduced_shape(self.shape(), axis, keepdim);
        Ok(Tensor::from_op(
            "sum_axis",
            out,
            out_shape,
            vec![self.clone()],
            Box::new(move |g, parents| {
                let p = &parents[0];
                if !p.requires_grad() {
                    return;
                }
                let mut gin = vec![0.0f32; outer * len * inner];
                for o in 0..outer {
                    for l in 0..len {
                        let base = (o * len + l) * inner;
                        let obase = o * inner;
                        gin[base..base + inner].copy_from_slice(&g[obase..obase + inner]);
                    }
                }
                p.accumulate_grad(&gin);
            }),
        ))
    }

    /// Mean over one axis.
    pub fn mean_axis(&self, axis: usize, keepdim: bool) -> Tensor {
        self.try_mean_axis(axis, keepdim)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked [`mean_axis`](Self::mean_axis).
    pub fn try_mean_axis(&self, axis: usize, keepdim: bool) -> DarResult<Tensor> {
        let (_, len, _) = axis_split("mean_axis", self.shape(), axis)?;
        Ok(self.try_sum_axis(axis, keepdim)?.scale(1.0 / len as f32))
    }

    /// Max over one axis; the gradient flows only to the arg-max element of
    /// each reduced group (ties go to the first).
    pub fn max_axis(&self, axis: usize, keepdim: bool) -> Tensor {
        self.try_max_axis(axis, keepdim)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked [`max_axis`](Self::max_axis): an out-of-range axis or an
    /// empty reduction axis is a typed error instead of a panic.
    pub fn try_max_axis(&self, axis: usize, keepdim: bool) -> DarResult<Tensor> {
        let (outer, len, inner) = axis_split("max_axis", self.shape(), axis)?;
        if len == 0 {
            return Err(DarError::InvalidData(format!(
                "max over empty axis {axis} of shape {:?}",
                self.shape()
            )));
        }
        let v = self.values();
        let mut out = vec![f32::NEG_INFINITY; outer * inner];
        let mut arg = vec![0usize; outer * inner];
        for o in 0..outer {
            for l in 0..len {
                let base = (o * len + l) * inner;
                let obase = o * inner;
                for i in 0..inner {
                    let x = v[base + i];
                    if x > out[obase + i] {
                        out[obase + i] = x;
                        arg[obase + i] = l;
                    }
                }
            }
        }
        drop(v);
        let out_shape = reduced_shape(self.shape(), axis, keepdim);
        Ok(Tensor::from_op(
            "max_axis",
            out,
            out_shape,
            vec![self.clone()],
            Box::new(move |g, parents| {
                let p = &parents[0];
                if !p.requires_grad() {
                    return;
                }
                let mut gin = vec![0.0f32; outer * len * inner];
                for o in 0..outer {
                    let obase = o * inner;
                    for i in 0..inner {
                        let l = arg[obase + i];
                        gin[(o * len + l) * inner + i] += g[obase + i];
                    }
                }
                p.accumulate_grad(&gin);
            }),
        ))
    }

    /// Reshape without changing data order.
    ///
    /// # Panics
    /// Panics if the element count changes.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        self.try_reshape(shape).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked [`reshape`](Self::reshape): an element-count change is a
    /// typed error instead of a panic.
    pub fn try_reshape(&self, shape: &[usize]) -> DarResult<Tensor> {
        if self.len() != numel(shape) {
            return Err(DarError::InvalidData(format!(
                "reshape from {:?} to {:?} changes element count",
                self.shape(),
                shape
            )));
        }
        Ok(Tensor::from_op(
            "reshape",
            self.to_vec(),
            shape.to_vec(),
            vec![self.clone()],
            Box::new(|g, parents| {
                let p = &parents[0];
                if p.requires_grad() {
                    p.accumulate_grad(g);
                }
            }),
        ))
    }

    /// 2-D transpose.
    pub fn transpose(&self) -> Tensor {
        let s = self.shape();
        assert_eq!(s.len(), 2, "transpose expects a 2-D tensor, got {s:?}");
        let (r, c) = (s[0], s[1]);
        let values = super::matmul::transpose_raw(&self.values(), r, c);
        Tensor::from_op(
            "transpose",
            values,
            vec![c, r],
            vec![self.clone()],
            Box::new(move |g, parents| {
                let p = &parents[0];
                if p.requires_grad() {
                    let gt = super::matmul::transpose_raw(g, c, r);
                    p.accumulate_grad(&gt);
                }
            }),
        )
    }

    /// Permute the axes of a 3-D tensor (e.g. `[B,L,H] -> [L,B,H]`).
    pub fn permute3(&self, perm: [usize; 3]) -> Tensor {
        let s = self.shape();
        assert_eq!(s.len(), 3, "permute3 expects a 3-D tensor, got {s:?}");
        let out_shape = vec![s[perm[0]], s[perm[1]], s[perm[2]]];
        let in_strides = strides(s);
        let out_strides = strides(&out_shape);
        let v = self.values();
        let n = v.len();
        let mut out = vec![0.0f32; n];
        for a in 0..out_shape[0] {
            for b in 0..out_shape[1] {
                for c in 0..out_shape[2] {
                    let mut coords = [0usize; 3];
                    coords[perm[0]] = a;
                    coords[perm[1]] = b;
                    coords[perm[2]] = c;
                    let src = coords[0] * in_strides[0] + coords[1] * in_strides[1] + coords[2];
                    let dst = a * out_strides[0] + b * out_strides[1] + c;
                    out[dst] = v[src];
                }
            }
        }
        drop(v);
        let os = out_shape.clone();
        let in_shape = s.to_vec();
        Tensor::from_op(
            "permute3",
            out,
            out_shape,
            vec![self.clone()],
            Box::new(move |g, parents| {
                let p = &parents[0];
                if !p.requires_grad() {
                    return;
                }
                let in_strides = strides(&in_shape);
                let out_strides = strides(&os);
                let mut gin = vec![0.0f32; g.len()];
                for a in 0..os[0] {
                    for b in 0..os[1] {
                        for c in 0..os[2] {
                            let mut coords = [0usize; 3];
                            coords[perm[0]] = a;
                            coords[perm[1]] = b;
                            coords[perm[2]] = c;
                            let src =
                                coords[0] * in_strides[0] + coords[1] * in_strides[1] + coords[2];
                            let dst = a * out_strides[0] + b * out_strides[1] + c;
                            gin[src] += g[dst];
                        }
                    }
                }
                p.accumulate_grad(&gin);
            }),
        )
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use crate::Tensor;

    #[test]
    fn sum_and_mean() {
        let x = Tensor::param(vec![1., 2., 3., 4.], &[2, 2]);
        assert_eq!(x.sum().item(), 10.0);
        assert_eq!(x.mean().item(), 2.5);
        x.mean().backward();
        assert_eq!(x.grad_vec().unwrap(), vec![0.25; 4]);
    }

    #[test]
    fn sum_axis0_and_axis1() {
        let x = Tensor::new(vec![1., 2., 3., 4., 5., 6.], &[2, 3]);
        assert_eq!(x.sum_axis(0, false).to_vec(), vec![5., 7., 9.]);
        assert_eq!(x.sum_axis(0, false).shape(), &[3]);
        assert_eq!(x.sum_axis(1, false).to_vec(), vec![6., 15.]);
        assert_eq!(x.sum_axis(1, true).shape(), &[2, 1]);
    }

    #[test]
    fn sum_axis_grad_broadcasts_back() {
        let x = Tensor::param(vec![1., 2., 3., 4., 5., 6.], &[2, 3]);
        let y = x.sum_axis(1, false); // [2]
        let w = Tensor::new(vec![1.0, 10.0], &[2]);
        y.mul(&w).sum().backward();
        assert_eq!(x.grad_vec().unwrap(), vec![1., 1., 1., 10., 10., 10.]);
    }

    #[test]
    fn max_axis_routes_grad_to_argmax() {
        let x = Tensor::param(vec![1., 5., 3., 7., 2., 7.], &[2, 3]);
        let y = x.max_axis(1, false);
        assert_eq!(y.to_vec(), vec![5., 7.]);
        y.sum().backward();
        // Second row ties at 7: first occurrence wins.
        assert_eq!(x.grad_vec().unwrap(), vec![0., 1., 0., 1., 0., 0.]);
    }

    #[test]
    fn max_axis_middle_of_3d() {
        // Max over time for [B=1, L=3, H=2].
        let x = Tensor::new(vec![1., 9., 5., 2., 3., 4.], &[1, 3, 2]);
        let y = x.max_axis(1, false);
        assert_eq!(y.shape(), &[1, 2]);
        assert_eq!(y.to_vec(), vec![5., 9.]);
    }

    #[test]
    fn reshape_roundtrip_grad() {
        let x = Tensor::param(vec![1., 2., 3., 4., 5., 6.], &[2, 3]);
        let y = x.reshape(&[3, 2]).reshape(&[6]);
        y.sum().backward();
        assert_eq!(x.grad_vec().unwrap(), vec![1.0; 6]);
    }

    #[test]
    fn transpose_forward_and_grad() {
        let x = Tensor::param(vec![1., 2., 3., 4., 5., 6.], &[2, 3]);
        let y = x.transpose();
        assert_eq!(y.shape(), &[3, 2]);
        assert_eq!(y.to_vec(), vec![1., 4., 2., 5., 3., 6.]);
        let w = Tensor::new(vec![1., 0., 0., 0., 0., 0.], &[3, 2]);
        y.mul(&w).sum().backward();
        assert_eq!(x.grad_vec().unwrap(), vec![1., 0., 0., 0., 0., 0.]);
    }

    #[test]
    fn try_reductions_return_typed_errors() {
        let x = Tensor::new(vec![1., 2., 3., 4.], &[2, 2]);
        assert!(x.try_sum_axis(2, false).is_err());
        assert!(x.try_mean_axis(5, true).is_err());
        assert!(x.try_max_axis(3, false).is_err());
        assert!(x.try_reshape(&[3]).is_err());
        let empty = Tensor::new(vec![], &[2, 0]);
        assert!(empty.try_max_axis(1, false).is_err());
        assert_eq!(x.try_sum_axis(0, false).unwrap().to_vec(), vec![4., 6.]);
    }

    #[test]
    fn permute3_roundtrip() {
        let x = Tensor::param((0..24).map(|i| i as f32).collect(), &[2, 3, 4]);
        let y = x.permute3([1, 0, 2]);
        assert_eq!(y.shape(), &[3, 2, 4]);
        let z = y.permute3([1, 0, 2]);
        assert_eq!(z.to_vec(), x.to_vec());
        z.sum().backward();
        assert_eq!(x.grad_vec().unwrap(), vec![1.0; 24]);
    }
}
