//! Non-differentiable helpers: argmax, one-hot encoding, and comparisons.
//! These produce leaf tensors (no gradient history).

use crate::error::{DarError, DarResult};
use crate::Tensor;

impl Tensor {
    /// Row-wise argmax over the last dimension. Returns plain indices.
    ///
    /// NaN entries rank below every finite value (an all-NaN row resolves
    /// like a tie, to its last index), so a numerically diverged model
    /// still produces a deterministic — if meaningless — selection for
    /// the divergence guards to catch, instead of aborting the process
    /// mid-epoch.
    pub fn argmax_rows(&self) -> Vec<usize> {
        self.try_argmax_rows().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked [`argmax_rows`](Self::argmax_rows): a rank-0 tensor or a
    /// zero-width last dimension is a typed error instead of a panic.
    pub fn try_argmax_rows(&self) -> DarResult<Vec<usize>> {
        let c = match self.shape().last() {
            Some(&c) if c > 0 => c,
            Some(_) => {
                return Err(DarError::InvalidData(format!(
                    "argmax over empty dimension (shape {:?})",
                    self.shape()
                )))
            }
            None => {
                return Err(DarError::InvalidData(
                    "argmax needs at least one dim".into(),
                ))
            }
        };
        let key = |x: f32| if x.is_nan() { f32::NEG_INFINITY } else { x };
        let v = self.values();
        Ok(v.chunks_exact(c)
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| key(*a.1).total_cmp(&key(*b.1)))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect())
    }

    /// One-hot encode indices into a `[n, classes]` leaf tensor.
    pub fn one_hot(ids: &[usize], classes: usize) -> Tensor {
        Self::try_one_hot(ids, classes).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked [`one_hot`](Self::one_hot): an out-of-range id is a typed
    /// error instead of a panic.
    pub fn try_one_hot(ids: &[usize], classes: usize) -> DarResult<Tensor> {
        let mut out = vec![0.0f32; ids.len() * classes];
        for (r, &id) in ids.iter().enumerate() {
            if id >= classes {
                return Err(DarError::InvalidData(format!(
                    "one_hot id {id} >= classes {classes}"
                )));
            }
            out[r * classes + id] = 1.0;
        }
        Ok(Tensor::new(out, &[ids.len(), classes]))
    }

    /// Elementwise `self > threshold` as a 0/1 leaf tensor (no grad).
    pub fn gt_scalar(&self, threshold: f32) -> Tensor {
        let out: Vec<f32> = self
            .values()
            .iter()
            .map(|&x| if x > threshold { 1.0 } else { 0.0 })
            .collect();
        Tensor::new(out, self.shape())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use crate::Tensor;

    #[test]
    fn argmax_rows_basic() {
        let x = Tensor::new(vec![0.1, 0.9, 0.7, 0.3], &[2, 2]);
        assert_eq!(x.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn argmax_tolerates_nan() {
        let x = Tensor::new(vec![f32::NAN, 0.9, 0.7, f32::NAN], &[2, 2]);
        assert_eq!(x.argmax_rows(), vec![1, 0]);
        let all_nan = Tensor::new(vec![f32::NAN; 3], &[1, 3]);
        assert_eq!(
            all_nan.argmax_rows(),
            vec![2],
            "ties resolve to the last index"
        );
    }

    #[test]
    fn one_hot_layout() {
        let oh = Tensor::one_hot(&[2, 0], 3);
        assert_eq!(oh.shape(), &[2, 3]);
        assert_eq!(oh.to_vec(), vec![0., 0., 1., 1., 0., 0.]);
    }

    #[test]
    fn gt_scalar_has_no_grad() {
        let x = Tensor::param(vec![-1.0, 0.5, 2.0], &[3]);
        let y = x.gt_scalar(0.0);
        assert_eq!(y.to_vec(), vec![0.0, 1.0, 1.0]);
        assert!(!y.requires_grad());
    }

    #[test]
    #[should_panic(expected = "one_hot id")]
    fn one_hot_rejects_out_of_range() {
        let _ = Tensor::one_hot(&[3], 3);
    }

    #[test]
    fn try_compare_helpers_return_typed_errors() {
        assert!(Tensor::try_one_hot(&[3], 3).is_err());
        assert!(Tensor::try_one_hot(&[2], 3).is_ok());
        let empty = Tensor::new(vec![], &[2, 0]);
        assert!(empty.try_argmax_rows().is_err());
        let ok = Tensor::new(vec![0.0, 1.0], &[1, 2]);
        assert_eq!(ok.try_argmax_rows().unwrap(), vec![1]);
    }
}
