//! Softmax and log-softmax over the last dimension, shard-parallel across
//! rows. Every output row is produced by the same serial per-row kernel as
//! the single-threaded path and rows are disjoint, so results are
//! bit-identical for any thread budget (DESIGN.md §9).

use crate::error::{DarError, DarResult};
use crate::ops::kernel::current_kernel;
use crate::Tensor;

/// The row width softmax normalizes over; degenerate shapes are typed
/// errors so the checked entry points never panic.
fn last_dim(op: &'static str, shape: &[usize]) -> DarResult<usize> {
    match shape.last() {
        Some(&c) if c > 0 => Ok(c),
        Some(_) => Err(DarError::InvalidData(format!(
            "{op} over empty dimension (shape {shape:?})"
        ))),
        None => Err(DarError::InvalidData(format!(
            "{op} needs at least one dimension"
        ))),
    }
}

/// Buffers below this many elements are not worth dispatching to the pool.
const PARALLEL_ELEM_THRESHOLD: usize = 16_384;

/// Don't split finer than this many rows per shard.
const MIN_ROWS_PER_SHARD: usize = 32;

/// Deterministic shard count: 1 below the element threshold, otherwise a
/// pure function of the row count.
fn row_shards(rows: usize, c: usize) -> usize {
    if rows * c < PARALLEL_ELEM_THRESHOLD {
        1
    } else {
        dar_par::shard_count(rows, MIN_ROWS_PER_SHARD)
    }
}

/// Apply `per_chunk(first_global_row, input_rows, output_rows)` over a
/// row-major buffer pair, sharded across rows. Each chunk is a contiguous
/// run of whole rows, so the backend kernels can sweep it in one call;
/// shard boundaries are a pure function of the problem size, keeping
/// results bit-identical for any thread budget.
fn for_rows_sharded(
    input: &[f32],
    out: &mut [f32],
    c: usize,
    per_chunk: impl Fn(usize, &[f32], &mut [f32]) + Sync,
) {
    let rows = out.len() / c.max(1);
    let shards = row_shards(rows, c);
    if shards <= 1 {
        per_chunk(0, input, out);
        return;
    }
    dar_par::run_shards_mut(out, shards, c, |s, chunk| {
        let r = dar_par::shard_range(rows, shards, s);
        per_chunk(r.start, &input[r.start * c..r.end * c], chunk);
    });
}

impl Tensor {
    /// Softmax over the last dimension, numerically stabilized by max
    /// subtraction.
    pub fn softmax(&self) -> Tensor {
        self.try_softmax().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked [`softmax`](Self::softmax): a rank-0 or zero-width last
    /// dimension is a typed error instead of a panic.
    pub fn try_softmax(&self) -> DarResult<Tensor> {
        let _span = dar_obs::span("softmax");
        let c = last_dim("softmax", self.shape())?;
        let kern = current_kernel();
        let v = self.values();
        let mut out = vec![0.0f32; v.len()];
        for_rows_sharded(&v, &mut out, c, |_, rows, out_rows| {
            kern.softmax_rows(rows, out_rows, c);
        });
        drop(v);
        let y_saved = out.clone();
        Ok(Tensor::from_op(
            "softmax",
            out,
            self.shape().to_vec(),
            vec![self.clone()],
            Box::new(move |g, parents| {
                let p = &parents[0];
                if !p.requires_grad() {
                    return;
                }
                let mut gin = vec![0.0f32; g.len()];
                for_rows_sharded(g, &mut gin, c, |r0, gr, gin_rows| {
                    let y = &y_saved[r0 * c..r0 * c + gr.len()];
                    kern.softmax_bwd_rows(y, gr, gin_rows, c);
                });
                p.accumulate_grad(&gin);
            }),
        ))
    }

    /// Log-softmax over the last dimension (stable log-sum-exp).
    pub fn log_softmax(&self) -> Tensor {
        self.try_log_softmax().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked [`log_softmax`](Self::log_softmax).
    pub fn try_log_softmax(&self) -> DarResult<Tensor> {
        let _span = dar_obs::span("log_softmax");
        let c = last_dim("log_softmax", self.shape())?;
        let kern = current_kernel();
        let v = self.values();
        let mut out = vec![0.0f32; v.len()];
        for_rows_sharded(&v, &mut out, c, |_, rows, out_rows| {
            kern.log_softmax_rows(rows, out_rows, c);
        });
        drop(v);
        let ls_saved = out.clone();
        Ok(Tensor::from_op(
            "log_softmax",
            out,
            self.shape().to_vec(),
            vec![self.clone()],
            Box::new(move |g, parents| {
                let p = &parents[0];
                if !p.requires_grad() {
                    return;
                }
                let mut gin = vec![0.0f32; g.len()];
                for_rows_sharded(g, &mut gin, c, |r0, gr, gin_rows| {
                    let ls = &ls_saved[r0 * c..r0 * c + gr.len()];
                    kern.log_softmax_bwd_rows(ls, gr, gin_rows, c);
                });
                p.accumulate_grad(&gin);
            }),
        ))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use crate::Tensor;

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::new(vec![1., 2., 3., 10., 10., 10.], &[2, 3]);
        let y = x.softmax().to_vec();
        let s0: f32 = y[..3].iter().sum();
        let s1: f32 = y[3..].iter().sum();
        assert!((s0 - 1.0).abs() < 1e-6 && (s1 - 1.0).abs() < 1e-6);
        assert!((y[3] - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::new(vec![1., 2., 3.], &[1, 3]).softmax().to_vec();
        let b = Tensor::new(vec![1001., 1002., 1003.], &[1, 3])
            .softmax()
            .to_vec();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn log_softmax_matches_ln_of_softmax() {
        let x = Tensor::new(vec![0.3, -1.2, 2.0], &[1, 3]);
        let ls = x.log_softmax().to_vec();
        let s = x.softmax().to_vec();
        for (l, p) in ls.iter().zip(&s) {
            assert!((l - p.ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_grad_sums_to_zero_per_row() {
        // Softmax Jacobian rows are orthogonal to constants; a general
        // upstream gradient must produce input grads that sum to ~0 per row.
        let x = Tensor::param(vec![0.5, -0.7, 1.3], &[1, 3]);
        let w = Tensor::new(vec![1.0, 2.0, -0.5], &[1, 3]);
        x.softmax().mul(&w).sum().backward();
        let g = x.grad_vec().unwrap();
        let s: f32 = g.iter().sum();
        assert!(s.abs() < 1e-6, "softmax grad row sum {s} != 0");
    }

    #[test]
    fn log_softmax_handles_extreme_logits() {
        let x = Tensor::new(vec![1000.0, -1000.0], &[1, 2]);
        let y = x.log_softmax().to_vec();
        assert!(y.iter().all(|v| v.is_finite()));
        assert!(y[0].abs() < 1e-5); // ~log(1)
    }

    #[test]
    fn softmax_and_log_softmax_gradcheck() {
        use crate::grad_check::check_gradients;
        let x = Tensor::param(vec![0.5, -0.7, 1.3, 0.2, 2.0, -1.5], &[2, 3]);
        let w = Tensor::new(vec![1.0, 2.0, -0.5, 0.3, -1.2, 0.8], &[2, 3]);
        let rep = check_gradients(
            std::slice::from_ref(&x),
            |ins| ins[0].softmax().mul(&w).sum(),
            1e-2,
        );
        assert!(rep.ok(5e-2), "softmax: {rep:?}");
        let rep = check_gradients(&[x], |ins| ins[0].log_softmax().mul(&w).sum(), 1e-2);
        assert!(rep.ok(5e-2), "log_softmax: {rep:?}");
    }

    #[test]
    fn degenerate_shapes_are_typed_errors_not_panics() {
        let empty = Tensor::new(vec![], &[2, 0]);
        assert!(empty.try_softmax().is_err());
        assert!(empty.try_log_softmax().is_err());
        let ok = Tensor::new(vec![0.0, 1.0], &[1, 2]);
        assert!(ok.try_softmax().is_ok());
    }

    #[test]
    fn softmax_is_bit_identical_across_thread_budgets() {
        // Large enough to cross the parallel threshold.
        let rows = 4096;
        let c = 8;
        let vals: Vec<f32> = (0..rows * c)
            .map(|i| ((i * 19) % 37) as f32 * 0.13 - 2.0)
            .collect();
        let w = Tensor::new(
            (0..rows * c).map(|i| (i % 5) as f32 - 2.0).collect(),
            &[rows, c],
        );
        let run = |threads: usize| {
            dar_par::with_threads(threads, || {
                let x = Tensor::param(vals.clone(), &[rows, c]);
                let y = x.softmax();
                y.mul(&w).sum().backward();
                (y.to_vec(), x.grad_vec().unwrap())
            })
        };
        assert_eq!(run(1), run(4), "softmax depends on thread budget");
    }
}
