//! Softmax and log-softmax over the last dimension.

use crate::Tensor;

fn last_dim(shape: &[usize]) -> usize {
    *shape.last().expect("softmax needs at least one dimension")
}

impl Tensor {
    /// Softmax over the last dimension, numerically stabilized by max
    /// subtraction.
    pub fn softmax(&self) -> Tensor {
        let c = last_dim(self.shape());
        assert!(c > 0, "softmax over empty dimension");
        let v = self.values();
        let rows = v.len() / c;
        let mut out = vec![0.0f32; v.len()];
        for r in 0..rows {
            let row = &v[r * c..(r + 1) * c];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0f32;
            for (o, &x) in out[r * c..(r + 1) * c].iter_mut().zip(row) {
                let e = (x - m).exp();
                *o = e;
                denom += e;
            }
            for o in &mut out[r * c..(r + 1) * c] {
                *o /= denom;
            }
        }
        drop(v);
        let y_saved = out.clone();
        Tensor::from_op(
            out,
            self.shape().to_vec(),
            vec![self.clone()],
            Box::new(move |g, parents| {
                let p = &parents[0];
                if !p.requires_grad() {
                    return;
                }
                let mut gin = vec![0.0f32; g.len()];
                let rows = g.len() / c;
                for r in 0..rows {
                    let y = &y_saved[r * c..(r + 1) * c];
                    let gr = &g[r * c..(r + 1) * c];
                    let dot: f32 = y.iter().zip(gr).map(|(&yi, &gi)| yi * gi).sum();
                    for i in 0..c {
                        gin[r * c + i] = y[i] * (gr[i] - dot);
                    }
                }
                p.accumulate_grad(&gin);
            }),
        )
    }

    /// Log-softmax over the last dimension (stable log-sum-exp).
    pub fn log_softmax(&self) -> Tensor {
        let c = last_dim(self.shape());
        assert!(c > 0, "log_softmax over empty dimension");
        let v = self.values();
        let rows = v.len() / c;
        let mut out = vec![0.0f32; v.len()];
        for r in 0..rows {
            let row = &v[r * c..(r + 1) * c];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let lse = m + row.iter().map(|&x| (x - m).exp()).sum::<f32>().ln();
            for (o, &x) in out[r * c..(r + 1) * c].iter_mut().zip(row) {
                *o = x - lse;
            }
        }
        drop(v);
        let ls_saved = out.clone();
        Tensor::from_op(
            out,
            self.shape().to_vec(),
            vec![self.clone()],
            Box::new(move |g, parents| {
                let p = &parents[0];
                if !p.requires_grad() {
                    return;
                }
                let mut gin = vec![0.0f32; g.len()];
                let rows = g.len() / c;
                for r in 0..rows {
                    let ls = &ls_saved[r * c..(r + 1) * c];
                    let gr = &g[r * c..(r + 1) * c];
                    let gsum: f32 = gr.iter().sum();
                    for i in 0..c {
                        gin[r * c + i] = gr[i] - ls[i].exp() * gsum;
                    }
                }
                p.accumulate_grad(&gin);
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::Tensor;

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::new(vec![1., 2., 3., 10., 10., 10.], &[2, 3]);
        let y = x.softmax().to_vec();
        let s0: f32 = y[..3].iter().sum();
        let s1: f32 = y[3..].iter().sum();
        assert!((s0 - 1.0).abs() < 1e-6 && (s1 - 1.0).abs() < 1e-6);
        assert!((y[3] - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::new(vec![1., 2., 3.], &[1, 3]).softmax().to_vec();
        let b = Tensor::new(vec![1001., 1002., 1003.], &[1, 3])
            .softmax()
            .to_vec();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn log_softmax_matches_ln_of_softmax() {
        let x = Tensor::new(vec![0.3, -1.2, 2.0], &[1, 3]);
        let ls = x.log_softmax().to_vec();
        let s = x.softmax().to_vec();
        for (l, p) in ls.iter().zip(&s) {
            assert!((l - p.ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_grad_sums_to_zero_per_row() {
        // Softmax Jacobian rows are orthogonal to constants; a general
        // upstream gradient must produce input grads that sum to ~0 per row.
        let x = Tensor::param(vec![0.5, -0.7, 1.3], &[1, 3]);
        let w = Tensor::new(vec![1.0, 2.0, -0.5], &[1, 3]);
        x.softmax().mul(&w).sum().backward();
        let g = x.grad_vec().unwrap();
        let s: f32 = g.iter().sum();
        assert!(s.abs() < 1e-6, "softmax grad row sum {s} != 0");
    }

    #[test]
    fn log_softmax_handles_extreme_logits() {
        let x = Tensor::new(vec![1000.0, -1000.0], &[1, 2]);
        let y = x.log_softmax().to_vec();
        assert!(y.iter().all(|v| v.is_finite()));
        assert!(y[0].abs() < 1e-5); // ~log(1)
    }
}
