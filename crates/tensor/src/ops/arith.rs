//! Elementwise binary arithmetic with NumPy-style broadcasting, plus scalar
//! ops.
//!
//! The two broadcast patterns the models hammer — a trailing row vector
//! (`[n, c] op [c]`, every bias add) and a trailing size-1 dim
//! (`[b, l, e] op [b, l, 1]`, every rationale masking) — take dedicated
//! loops; everything else falls back to generic stride arithmetic.

use crate::error::{DarError, DarResult};
use crate::shape::{
    broadcast_index, broadcast_shape, broadcast_strides, numel, reduce_grad_to_shape, strides,
};
use crate::Tensor;

/// How the two operands combine, and the local derivatives.
#[derive(Clone, Copy, PartialEq, Eq)]
enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
}

/// Provenance label for the taint layer.
fn op_name(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::Div => "div",
    }
}

#[inline(always)]
fn apply(op: BinOp, a: f32, b: f32) -> f32 {
    match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => a / b,
    }
}

/// Local derivative w.r.t. `a`, times upstream gradient `g`.
#[inline(always)]
fn da(op: BinOp, g: f32, _a: f32, b: f32) -> f32 {
    match op {
        BinOp::Add | BinOp::Sub => g,
        BinOp::Mul => g * b,
        BinOp::Div => g / b,
    }
}

/// Local derivative w.r.t. `b`, times upstream gradient `g`.
#[inline(always)]
fn db(op: BinOp, g: f32, a: f32, b: f32) -> f32 {
    match op {
        BinOp::Add => g,
        BinOp::Sub => -g,
        BinOp::Mul => g * a,
        BinOp::Div => -g * a / (b * b),
    }
}

/// Recognized broadcast layouts (operand `a` always has the output shape
/// in the fast cases; `swap` marks when the roles were exchanged).
enum Layout {
    /// Identical shapes.
    Same,
    /// `b` is a single scalar.
    ScalarB,
    /// `b` is a row vector equal to `a`'s trailing dimensions:
    /// out = a viewed as `[rows, c]`, b of length `c`.
    RowB { rows: usize, c: usize },
    /// `b` matches `a` except its last dimension is 1:
    /// out = a viewed as `[rows, c]`, b of length `rows`.
    LastOneB { rows: usize, c: usize },
    /// Anything else.
    General,
}

fn classify(a: &[usize], b: &[usize]) -> Layout {
    if a == b {
        return Layout::Same;
    }
    let an = numel(a);
    let bn = numel(b);
    if bn == 1 {
        return Layout::ScalarB;
    }
    if bn < an {
        // Row vector: b's shape equals a trailing suffix of a's shape
        // (with any leading 1s stripped).
        let bs: Vec<usize> = b.iter().copied().skip_while(|&d| d == 1).collect();
        if !bs.is_empty() && a.len() >= bs.len() && a[a.len() - bs.len()..] == bs[..] {
            let c = numel(&bs);
            return Layout::RowB { rows: an / c, c };
        }
        // Trailing one: b == a except last dim 1.
        if b.len() == a.len() && b[b.len() - 1] == 1 && a[..a.len() - 1] == b[..b.len() - 1] {
            let c = a[a.len() - 1];
            return Layout::LastOneB { rows: an / c, c };
        }
    }
    Layout::General
}

/// Compute the broadcast elementwise result of `a op b`.
fn forward(op: BinOp, a: &Tensor, b: &Tensor) -> DarResult<(Vec<f32>, Vec<usize>)> {
    let out_shape = broadcast_shape(a.shape(), b.shape()).ok_or_else(|| {
        DarError::InvalidData(format!(
            "cannot broadcast shapes {:?} and {:?}",
            a.shape(),
            b.shape()
        ))
    })?;
    let av = a.values();
    let bv = b.values();
    let n = numel(&out_shape);
    let mut out: Vec<f32> = Vec::with_capacity(n);
    match classify(a.shape(), b.shape()) {
        Layout::Same => {
            out.extend(av.iter().zip(bv.iter()).map(|(&x, &y)| apply(op, x, y)));
        }
        Layout::ScalarB => {
            let y = bv[0];
            out.extend(av.iter().map(|&x| apply(op, x, y)));
        }
        Layout::RowB { rows, c } => {
            for r in 0..rows {
                let row = &av[r * c..(r + 1) * c];
                out.extend(row.iter().zip(bv.iter()).map(|(&x, &y)| apply(op, x, y)));
            }
        }
        Layout::LastOneB { rows, c } => {
            for r in 0..rows {
                let y = bv[r];
                let row = &av[r * c..(r + 1) * c];
                out.extend(row.iter().map(|&x| apply(op, x, y)));
            }
        }
        Layout::General => {
            // Either a is the smaller operand, or the shapes interleave.
            if a.len() == 1 {
                let x = av[0];
                out.extend(bv.iter().map(|&y| apply(op, x, y)));
            } else {
                let os = strides(&out_shape);
                let asd = broadcast_strides(a.shape(), &out_shape);
                let bsd = broadcast_strides(b.shape(), &out_shape);
                for lin in 0..n {
                    let x = av[broadcast_index(lin, &os, &asd)];
                    let y = bv[broadcast_index(lin, &os, &bsd)];
                    out.push(apply(op, x, y));
                }
            }
        }
    }
    Ok((out, out_shape))
}

/// Gradient of the broadcast binary op w.r.t. each operand, reduced back to
/// the operand's own shape.
fn binary_backward(op: BinOp, g: &[f32], out_shape: &[usize], a: &Tensor, b: &Tensor) {
    let need_a = a.requires_grad();
    let need_b = b.requires_grad();
    if !need_a && !need_b {
        return;
    }
    let av = a.values();
    let bv = b.values();
    match (a.shape() == out_shape).then(|| classify(a.shape(), b.shape())) {
        Some(Layout::Same) => {
            if need_a {
                let ga: Vec<f32> = (0..g.len()).map(|i| da(op, g[i], av[i], bv[i])).collect();
                drop_and_acc(a, av, ga);
            }
            if need_b {
                let av = a.values();
                let gb: Vec<f32> = (0..g.len()).map(|i| db(op, g[i], av[i], bv[i])).collect();
                drop(av);
                drop(bv);
                b.accumulate_grad(&gb);
            }
        }
        Some(Layout::ScalarB) => {
            let y = bv[0];
            if need_a {
                let ga: Vec<f32> = (0..g.len()).map(|i| da(op, g[i], av[i], y)).collect();
                drop_and_acc(a, av, ga);
            }
            if need_b {
                let av = a.values();
                let mut acc = 0.0f32;
                for i in 0..g.len() {
                    acc += db(op, g[i], av[i], y);
                }
                drop(av);
                drop(bv);
                b.accumulate_grad(&[acc]);
            }
        }
        Some(Layout::RowB { rows, c }) => {
            if need_a {
                let mut ga = Vec::with_capacity(g.len());
                for r in 0..rows {
                    for j in 0..c {
                        let i = r * c + j;
                        ga.push(da(op, g[i], av[i], bv[j]));
                    }
                }
                drop_and_acc(a, av, ga);
            }
            if need_b {
                let av = a.values();
                let mut gb = vec![0.0f32; c];
                for r in 0..rows {
                    for j in 0..c {
                        let i = r * c + j;
                        gb[j] += db(op, g[i], av[i], bv[j]);
                    }
                }
                drop(av);
                drop(bv);
                b.accumulate_grad(&gb);
            }
        }
        Some(Layout::LastOneB { rows, c }) => {
            if need_a {
                let mut ga = Vec::with_capacity(g.len());
                for r in 0..rows {
                    let y = bv[r];
                    for j in 0..c {
                        let i = r * c + j;
                        ga.push(da(op, g[i], av[i], y));
                    }
                }
                drop_and_acc(a, av, ga);
            }
            if need_b {
                let av = a.values();
                let mut gb = vec![0.0f32; rows];
                for r in 0..rows {
                    let y = bv[r];
                    let mut acc = 0.0f32;
                    for j in 0..c {
                        let i = r * c + j;
                        acc += db(op, g[i], av[i], y);
                    }
                    gb[r] = acc;
                }
                drop(av);
                drop(bv);
                b.accumulate_grad(&gb);
            }
        }
        _ => {
            // General path: stride arithmetic + reduction to each shape.
            let n = g.len();
            let os = strides(out_shape);
            let asd = broadcast_strides(a.shape(), out_shape);
            let bsd = broadcast_strides(b.shape(), out_shape);
            let mut ga = if need_a { vec![0.0f32; n] } else { Vec::new() };
            let mut gb = if need_b { vec![0.0f32; n] } else { Vec::new() };
            for lin in 0..n {
                let ai = broadcast_index(lin, &os, &asd);
                let bi = broadcast_index(lin, &os, &bsd);
                if need_a {
                    ga[lin] = da(op, g[lin], av[ai], bv[bi]);
                }
                if need_b {
                    gb[lin] = db(op, g[lin], av[ai], bv[bi]);
                }
            }
            drop(av);
            drop(bv);
            if need_a {
                let r = reduce_grad_to_shape(&ga, out_shape, a.shape());
                a.accumulate_grad(&r);
            }
            if need_b {
                let r = reduce_grad_to_shape(&gb, out_shape, b.shape());
                b.accumulate_grad(&r);
            }
        }
    }
}

/// Helper releasing the value borrow before accumulating (borrow rules).
fn drop_and_acc(t: &Tensor, values: std::cell::Ref<'_, Vec<f32>>, g: Vec<f32>) {
    drop(values);
    t.accumulate_grad(&g);
}

fn try_binary(op: BinOp, a: &Tensor, b: &Tensor) -> DarResult<Tensor> {
    let (values, out_shape) = forward(op, a, b)?;
    let shape_for_bw = out_shape.clone();
    Ok(Tensor::from_op(
        op_name(op),
        values,
        out_shape,
        vec![a.clone(), b.clone()],
        Box::new(move |g, parents| {
            binary_backward(op, g, &shape_for_bw, &parents[0], &parents[1]);
        }),
    ))
}

fn binary(op: BinOp, a: &Tensor, b: &Tensor) -> Tensor {
    try_binary(op, a, b).unwrap_or_else(|e| panic!("{e}"))
}

impl Tensor {
    /// Elementwise (broadcasting) addition.
    pub fn add(&self, other: &Tensor) -> Tensor {
        binary(BinOp::Add, self, other)
    }

    /// Elementwise (broadcasting) subtraction.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        binary(BinOp::Sub, self, other)
    }

    /// Elementwise (broadcasting) multiplication.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        binary(BinOp::Mul, self, other)
    }

    /// Elementwise (broadcasting) division.
    pub fn div(&self, other: &Tensor) -> Tensor {
        binary(BinOp::Div, self, other)
    }

    /// Checked [`add`](Self::add): broadcast failure is a typed error.
    pub fn try_add(&self, other: &Tensor) -> DarResult<Tensor> {
        try_binary(BinOp::Add, self, other)
    }

    /// Checked [`sub`](Self::sub): broadcast failure is a typed error.
    pub fn try_sub(&self, other: &Tensor) -> DarResult<Tensor> {
        try_binary(BinOp::Sub, self, other)
    }

    /// Checked [`mul`](Self::mul): broadcast failure is a typed error.
    pub fn try_mul(&self, other: &Tensor) -> DarResult<Tensor> {
        try_binary(BinOp::Mul, self, other)
    }

    /// Checked [`div`](Self::div): broadcast failure is a typed error.
    pub fn try_div(&self, other: &Tensor) -> DarResult<Tensor> {
        try_binary(BinOp::Div, self, other)
    }

    /// Add a scalar constant.
    pub fn add_scalar(&self, c: f32) -> Tensor {
        let values: Vec<f32> = self.values().iter().map(|&x| x + c).collect();
        Tensor::from_op(
            "add_scalar",
            values,
            self.shape().to_vec(),
            vec![self.clone()],
            Box::new(move |g, parents| {
                if parents[0].requires_grad() {
                    parents[0].accumulate_grad(g);
                }
            }),
        )
    }

    /// Multiply by a scalar constant.
    pub fn scale(&self, c: f32) -> Tensor {
        let values: Vec<f32> = self.values().iter().map(|&x| x * c).collect();
        Tensor::from_op(
            "scale",
            values,
            self.shape().to_vec(),
            vec![self.clone()],
            Box::new(move |g, parents| {
                if parents[0].requires_grad() {
                    let gg: Vec<f32> = g.iter().map(|&x| x * c).collect();
                    parents[0].accumulate_grad(&gg);
                }
            }),
        )
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Tensor {
        self.scale(-1.0)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use crate::Tensor;

    #[test]
    fn add_same_shape_forward_backward() {
        let a = Tensor::param(vec![1.0, 2.0], &[2]);
        let b = Tensor::param(vec![10.0, 20.0], &[2]);
        let y = a.add(&b);
        assert_eq!(y.to_vec(), vec![11.0, 22.0]);
        y.backward();
        assert_eq!(a.grad_vec().unwrap(), vec![1.0, 1.0]);
        assert_eq!(b.grad_vec().unwrap(), vec![1.0, 1.0]);
    }

    #[test]
    fn mul_grad_routes_operand_values() {
        let a = Tensor::param(vec![3.0], &[1]);
        let b = Tensor::param(vec![4.0], &[1]);
        let y = a.mul(&b);
        y.backward();
        assert_eq!(a.grad_vec().unwrap(), vec![4.0]);
        assert_eq!(b.grad_vec().unwrap(), vec![3.0]);
    }

    #[test]
    fn div_forward_and_grad() {
        let a = Tensor::param(vec![6.0], &[1]);
        let b = Tensor::param(vec![2.0], &[1]);
        let y = a.div(&b);
        assert_eq!(y.item(), 3.0);
        y.backward();
        assert_eq!(a.grad_vec().unwrap(), vec![0.5]);
        assert_eq!(b.grad_vec().unwrap(), vec![-1.5]);
    }

    #[test]
    fn row_broadcast_add() {
        // [2,3] + [1,3] — the bias-add fast path.
        let a = Tensor::param(vec![1., 2., 3., 4., 5., 6.], &[2, 3]);
        let b = Tensor::param(vec![10., 20., 30.], &[1, 3]);
        let y = a.add(&b);
        assert_eq!(y.to_vec(), vec![11., 22., 33., 14., 25., 36.]);
        y.backward();
        assert_eq!(b.grad_vec().unwrap(), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn row_broadcast_bare_vector() {
        // [2,3] + [3] (no leading 1).
        let a = Tensor::param(vec![0.0; 6], &[2, 3]);
        let b = Tensor::param(vec![1., 2., 3.], &[3]);
        let y = a.add(&b);
        assert_eq!(y.to_vec(), vec![1., 2., 3., 1., 2., 3.]);
        y.backward();
        assert_eq!(b.grad_vec().unwrap(), vec![2., 2., 2.]);
    }

    #[test]
    fn trailing_one_broadcast_mul() {
        // [2,2,2] * [2,2,1] — the rationale-mask fast path.
        let a = Tensor::param(vec![1., 2., 3., 4., 5., 6., 7., 8.], &[2, 2, 2]);
        let m = Tensor::param(vec![1., 0., 0., 1.], &[2, 2, 1]);
        let y = a.mul(&m);
        assert_eq!(y.to_vec(), vec![1., 2., 0., 0., 0., 0., 7., 8.]);
        y.backward();
        // dY/dm sums over the embedding dim.
        assert_eq!(m.grad_vec().unwrap(), vec![3.0, 7.0, 11.0, 15.0]);
    }

    #[test]
    fn trailing_one_div() {
        // [2,2] / [2,1] — the mean-pool normalization pattern.
        let a = Tensor::param(vec![2., 4., 9., 12.], &[2, 2]);
        let b = Tensor::param(vec![2., 3.], &[2, 1]);
        let y = a.div(&b);
        assert_eq!(y.to_vec(), vec![1., 2., 3., 4.]);
        y.sum().backward();
        assert_eq!(a.grad_vec().unwrap(), vec![0.5, 0.5, 1.0 / 3.0, 1.0 / 3.0]);
        // db = -a/b^2 summed over the row.
        let gb = b.grad_vec().unwrap();
        assert!((gb[0] - (-6.0 / 4.0)).abs() < 1e-6);
        assert!((gb[1] - (-21.0 / 9.0)).abs() < 1e-6);
    }

    #[test]
    fn scalar_tensor_broadcast() {
        let a = Tensor::param(vec![1., 2., 3.], &[3]);
        let s = Tensor::param(vec![2.0], &[1]);
        let y = a.mul(&s);
        assert_eq!(y.to_vec(), vec![2., 4., 6.]);
        y.backward();
        assert_eq!(s.grad_vec().unwrap(), vec![6.0]);
    }

    #[test]
    fn general_broadcast_small_a() {
        // a is the broadcast side: [1,3] * [2,3] exercises the general
        // fallback with grad reduction on a.
        let a = Tensor::param(vec![1., 2., 3.], &[1, 3]);
        let b = Tensor::param(vec![4., 5., 6., 7., 8., 9.], &[2, 3]);
        let y = a.mul(&b);
        assert_eq!(y.to_vec(), vec![4., 10., 18., 7., 16., 27.]);
        y.backward();
        assert_eq!(a.grad_vec().unwrap(), vec![11., 13., 15.]);
        assert_eq!(b.grad_vec().unwrap(), vec![1., 2., 3., 1., 2., 3.]);
    }

    #[test]
    fn middle_one_broadcast_general() {
        // [2,2,2] * [2,1,2] is neither fast pattern: general path.
        let a = Tensor::param(vec![1.; 8], &[2, 2, 2]);
        let b = Tensor::param(vec![1., 2., 3., 4.], &[2, 1, 2]);
        let y = a.mul(&b);
        assert_eq!(y.to_vec(), vec![1., 2., 1., 2., 3., 4., 3., 4.]);
        y.backward();
        assert_eq!(b.grad_vec().unwrap(), vec![2.0; 4]);
    }

    #[test]
    fn scale_and_add_scalar() {
        let a = Tensor::param(vec![1.0, -2.0], &[2]);
        let y = a.scale(3.0).add_scalar(1.0);
        assert_eq!(y.to_vec(), vec![4.0, -5.0]);
        y.backward();
        assert_eq!(a.grad_vec().unwrap(), vec![3.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "cannot broadcast")]
    fn incompatible_shapes_panic() {
        let a = Tensor::new(vec![1.0, 2.0], &[2]);
        let b = Tensor::new(vec![1.0, 2.0, 3.0], &[3]);
        let _ = a.add(&b);
    }

    #[test]
    fn try_ops_return_typed_errors_instead_of_panicking() {
        let a = Tensor::new(vec![1.0, 2.0], &[2]);
        let b = Tensor::new(vec![1.0, 2.0, 3.0], &[3]);
        for r in [a.try_add(&b), a.try_sub(&b), a.try_mul(&b), a.try_div(&b)] {
            match r {
                Err(crate::DarError::InvalidData(msg)) => {
                    assert!(msg.contains("cannot broadcast"), "{msg}");
                }
                other => panic!("expected InvalidData, got {other:?}"),
            }
        }
        assert_eq!(a.try_add(&a).unwrap().to_vec(), vec![2.0, 4.0]);
    }
}
