//! The workspace-wide error taxonomy.
//!
//! Fallible crate boundaries (checkpoint I/O, batch assembly, the training
//! runtime) return [`DarError`] instead of panicking, so a long multi-aspect
//! sweep can catch, log, and recover from a fault instead of dying.

use std::fmt;
use std::io;

/// Workspace-standard `Result`.
pub type DarResult<T> = Result<T, DarError>;

/// Every recoverable failure the training runtime distinguishes.
#[derive(Debug)]
pub enum DarError {
    /// Underlying filesystem failure (open/read/write/rename).
    Io(io::Error),
    /// A checkpoint failed its integrity check: truncated payload, CRC
    /// mismatch, or bytes that cannot be a DART file at all.
    Corrupt(String),
    /// Structurally valid bytes with inadmissible content: unknown format
    /// version, absurd dims, inconsistent section lengths.
    InvalidData(String),
    /// A tensor arrived with the wrong shape for its destination.
    ShapeMismatch {
        expected: Vec<usize>,
        got: Vec<usize>,
    },
    /// A batch was assembled from zero reviews.
    EmptyBatch,
    /// A token id at `position` is outside the embedding table.
    TokenOutOfRange {
        position: usize,
        token: usize,
        vocab: usize,
    },
    /// A review or text with zero tokens reached an admission boundary
    /// that requires non-empty input.
    EmptyInput,
    /// Input length exceeds an admission cap (tokens or characters,
    /// depending on the boundary).
    InputTooLong { len: usize, cap: usize },
    /// Input text is mostly non-ASCII — outside what the tokenizer and
    /// vocabulary were built for, so it is rejected at admission instead
    /// of degenerating into an all-UNK sequence downstream.
    NonAsciiHeavy { non_ascii: usize, len: usize },
    /// A value became NaN/Inf. When taint mode is on
    /// ([`crate::taint`]), the fields name the op that produced the first
    /// non-finite value, the graph node, and where in it the value sits;
    /// otherwise `op` is the caller's context (e.g. `"loss"`) and the
    /// remaining fields are zero.
    NonFinite {
        op: &'static str,
        node_id: u64,
        shape: Vec<usize>,
        first_bad_index: usize,
    },
    /// The divergence guard rolled back and retried until its budget ran
    /// out; `last` describes the final trip.
    RetriesExhausted { retries: usize, last: String },
}

impl fmt::Display for DarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DarError::Io(e) => write!(f, "i/o error: {e}"),
            DarError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
            DarError::InvalidData(msg) => write!(f, "invalid data: {msg}"),
            DarError::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: expected {expected:?}, got {got:?}")
            }
            DarError::EmptyBatch => write!(f, "cannot build a batch from zero reviews"),
            DarError::TokenOutOfRange {
                position,
                token,
                vocab,
            } => write!(
                f,
                "token id {token} at position {position} is outside the vocabulary (size {vocab})"
            ),
            DarError::EmptyInput => write!(f, "empty input (zero tokens)"),
            DarError::InputTooLong { len, cap } => {
                write!(f, "input of length {len} exceeds the admission cap {cap}")
            }
            DarError::NonAsciiHeavy { non_ascii, len } => write!(
                f,
                "input is non-ASCII-heavy ({non_ascii} of {len} characters)"
            ),
            DarError::NonFinite {
                op,
                node_id,
                shape,
                first_bad_index,
            } => {
                if *node_id == 0 {
                    write!(f, "non-finite value in {op}")
                } else {
                    write!(
                        f,
                        "non-finite value produced by op `{op}` (node {node_id}, \
                         shape {shape:?}, first bad element at {first_bad_index})"
                    )
                }
            }
            DarError::RetriesExhausted { retries, last } => {
                write!(
                    f,
                    "divergence guard gave up after {retries} retries (last trip: {last})"
                )
            }
        }
    }
}

impl std::error::Error for DarError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DarError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DarError {
    fn from(e: io::Error) -> Self {
        DarError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DarError::TokenOutOfRange {
            position: 3,
            token: 99,
            vocab: 50,
        };
        let msg = e.to_string();
        assert!(
            msg.contains("99") && msg.contains("50") && msg.contains('3'),
            "{msg}"
        );
        assert!(DarError::EmptyBatch.to_string().contains("zero reviews"));
        assert!(DarError::Corrupt("crc".into()).to_string().contains("crc"));
    }

    #[test]
    fn non_finite_display_names_the_op() {
        let e = DarError::NonFinite {
            op: "div",
            node_id: 42,
            shape: vec![2, 3],
            first_bad_index: 5,
        };
        let msg = e.to_string();
        assert!(
            msg.contains("div") && msg.contains("42") && msg.contains('5'),
            "{msg}"
        );
        // Fallback form (no taint record) stays readable.
        let e = DarError::NonFinite {
            op: "loss",
            node_id: 0,
            shape: vec![],
            first_bad_index: 0,
        };
        assert_eq!(e.to_string(), "non-finite value in loss");
    }

    #[test]
    fn io_errors_convert_and_chain() {
        let e: DarError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(e, DarError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
