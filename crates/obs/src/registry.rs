//! The global metrics registry: named counters and gauges behind one
//! process-wide instance, plus the event journal.
//!
//! Lock discipline: every metric name resolves to an `Arc<Atomic*>`
//! handle through a short mutex-protected `BTreeMap` lookup; the handle
//! itself is updated lock-free. Hot sites therefore pay one map lookup
//! per update — and nothing at all when the layer is disabled. The
//! `BTreeMap` keying doubles as the ascending-order aggregation the
//! snapshot determinism contract requires.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use crate::journal::ObsEvent;
use crate::span::SpanStore;

/// Hard cap on retained journal events; later events are counted in
/// `events_dropped` instead of growing without bound.
pub(crate) const JOURNAL_CAP: usize = 1 << 16;

pub(crate) struct Journal {
    pub events: Vec<ObsEvent>,
    pub dropped: u64,
}

pub(crate) struct Registry {
    enabled: AtomicBool,
    counters: Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<&'static str, Arc<AtomicI64>>>,
    journal: Mutex<Journal>,
    pub(crate) spans: Mutex<SpanStore>,
}

/// `DAR_OBS=0` (or empty) disables the layer at startup; anything else —
/// including unset — leaves it on.
fn env_enabled_default() -> bool {
    match std::env::var("DAR_OBS") {
        Ok(v) => !v.is_empty() && v != "0",
        Err(_) => true,
    }
}

pub(crate) fn global() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        enabled: AtomicBool::new(env_enabled_default()),
        counters: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
        journal: Mutex::new(Journal {
            events: Vec::new(),
            dropped: 0,
        }),
        spans: Mutex::new(SpanStore::new()),
    })
}

/// Survive a panic while a registry lock was held (metrics must never
/// take the process down with them).
pub(crate) fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Whether the layer records anything. One relaxed atomic load.
pub fn enabled() -> bool {
    global().enabled.load(Ordering::Relaxed)
}

/// Turn the whole layer on or off at runtime (overrides `DAR_OBS`).
/// Process-global: affects every thread, including pool and serve workers.
pub fn set_enabled(on: bool) {
    global().enabled.store(on, Ordering::Relaxed);
}

fn counter_handle(name: &'static str) -> Arc<AtomicU64> {
    let mut map = relock(&global().counters);
    Arc::clone(map.entry(name).or_default())
}

fn gauge_handle(name: &'static str) -> Arc<AtomicI64> {
    let mut map = relock(&global().gauges);
    Arc::clone(map.entry(name).or_default())
}

/// Increment a counter by one.
pub fn inc(name: &'static str) {
    add(name, 1);
}

/// Add `delta` to a counter. Integer adds commute, so the final value is
/// exact for any thread interleaving — counters are safe to place in the
/// snapshot's deterministic section.
pub fn add(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    counter_handle(name).fetch_add(delta, Ordering::Relaxed);
}

/// Set a gauge to an absolute value. Last-writer-wins: only use gauges
/// for values written from deterministic control flow (e.g. a final
/// epoch index), never for concurrent sampling.
pub fn gauge_set(name: &'static str, value: i64) {
    if !enabled() {
        return;
    }
    gauge_handle(name).store(value, Ordering::Relaxed);
}

/// Append an event to the journal (dropped, and counted, past the cap).
pub fn event(e: ObsEvent) {
    if !enabled() {
        return;
    }
    let mut j = relock(&global().journal);
    if j.events.len() < JOURNAL_CAP {
        j.events.push(e);
    } else {
        j.dropped += 1;
    }
}

/// Clear every counter, gauge, span statistic, and journal entry. For
/// tests and benches that need a pristine registry; the enabled flag is
/// left as-is.
pub fn reset() {
    let r = global();
    relock(&r.counters).clear();
    relock(&r.gauges).clear();
    {
        let mut j = relock(&r.journal);
        j.events.clear();
        j.dropped = 0;
    }
    relock(&r.spans).clear();
}

pub(crate) fn counters_sorted() -> Vec<(String, u64)> {
    relock(&global().counters)
        .iter()
        .map(|(k, v)| (k.to_string(), v.load(Ordering::Relaxed)))
        .collect()
}

pub(crate) fn gauges_sorted() -> Vec<(String, i64)> {
    relock(&global().gauges)
        .iter()
        .map(|(k, v)| (k.to_string(), v.load(Ordering::Relaxed)))
        .collect()
}

pub(crate) fn journal_snapshot() -> (Vec<ObsEvent>, u64) {
    let j = relock(&global().journal);
    (j.events.clone(), j.dropped)
}

#[cfg(test)]
pub(crate) fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_sort() {
        let _g = test_lock();
        reset();
        set_enabled(true);
        inc("z.second");
        add("a.first", 41);
        inc("a.first");
        let got = counters_sorted();
        assert_eq!(
            got,
            vec![("a.first".to_string(), 42), ("z.second".to_string(), 1)]
        );
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = test_lock();
        reset();
        set_enabled(false);
        inc("ghost");
        gauge_set("ghost.gauge", 7);
        event(ObsEvent::WeightsSwapped { version: 1 });
        set_enabled(true);
        assert!(counters_sorted().is_empty());
        assert!(gauges_sorted().is_empty());
        assert!(journal_snapshot().0.is_empty());
    }

    #[test]
    fn journal_caps_and_counts_drops() {
        let _g = test_lock();
        reset();
        set_enabled(true);
        for v in 0..(JOURNAL_CAP as u64 + 5) {
            event(ObsEvent::WeightsSwapped { version: v });
        }
        let (events, dropped) = journal_snapshot();
        assert_eq!(events.len(), JOURNAL_CAP);
        assert_eq!(dropped, 5);
        reset();
        assert_eq!(journal_snapshot().0.len(), 0);
    }

    #[test]
    fn gauge_is_last_writer_wins() {
        let _g = test_lock();
        reset();
        set_enabled(true);
        gauge_set("best_epoch", 3);
        gauge_set("best_epoch", -1);
        assert_eq!(gauges_sorted(), vec![("best_epoch".to_string(), -1)]);
    }
}
