//! Point-in-time export of the whole registry as a schema-versioned JSON
//! document (`results/obs_<run>.json`).
//!
//! Layout (schema version 1):
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "run": "train",
//!   "deterministic": {
//!     "counters": {"train.epochs": 2, ...},   // sorted by name
//!     "gauges": {"train.best_epoch": 1, ...}, // sorted by name
//!     "events": [{"seq":0,"kind":"epoch_done",...}, ...],
//!     "events_dropped": 0
//!   },
//!   "timing": {
//!     "spans": [{"path":"train/epoch","count":2,"total_us":...,
//!                "p50_us":...,"p99_us":...,"max_us":...}, ...]
//!   }
//! }
//! ```
//!
//! The `deterministic` object is the byte-comparison surface of the
//! determinism contract (DESIGN.md §12); `timing` holds every
//! wall-clock-derived field and is never compared.

use std::io;
use std::path::{Path, PathBuf};

use crate::journal::ObsEvent;
use crate::json;
use crate::registry;
use crate::SCHEMA_VERSION;

/// Aggregated timing for one span path.
#[derive(Debug, Clone)]
pub struct SpanSummary {
    pub path: String,
    pub count: u64,
    pub total_us: u64,
    pub p50_us: u64,
    pub p99_us: u64,
    pub max_us: u64,
}

/// A point-in-time copy of the registry.
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub run: String,
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub events: Vec<ObsEvent>,
    pub events_dropped: u64,
    pub spans: Vec<SpanSummary>,
}

/// Capture the registry under a run name. Cheap enough to call at any
/// point; typically once at the end of a run, before [`write_snapshot`].
pub fn snapshot(run: &str) -> Snapshot {
    let (events, events_dropped) = registry::journal_snapshot();
    let spans = registry::relock(&registry::global().spans)
        .sorted()
        .into_iter()
        .map(|(path, s)| SpanSummary {
            path,
            count: s.count,
            total_us: s.total_us,
            p50_us: s.quantile_us(0.5),
            p99_us: s.quantile_us(0.99),
            max_us: s.max_us,
        })
        .collect();
    Snapshot {
        run: run.to_string(),
        counters: registry::counters_sorted(),
        gauges: registry::gauges_sorted(),
        events,
        events_dropped,
        spans,
    }
}

impl Snapshot {
    /// The `deterministic` object alone — the byte-comparison surface.
    pub fn deterministic_json(&self) -> String {
        let mut out = String::new();
        self.push_deterministic(&mut out);
        out
    }

    fn push_deterministic(&self, out: &mut String) {
        out.push_str("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_str(out, name);
            out.push_str(&format!(":{v}"));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_str(out, name);
            out.push_str(&format!(":{v}"));
        }
        out.push_str("},\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            e.push_json(out, i as u64);
        }
        out.push_str(&format!("],\"events_dropped\":{}}}", self.events_dropped));
    }

    /// The full document (deterministic + timing sections), pretty enough
    /// to diff: one line per top-level section.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\n\"schema_version\": {SCHEMA_VERSION},\n\"run\": "
        ));
        json::push_str(&mut out, &self.run);
        out.push_str(",\n\"deterministic\": ");
        self.push_deterministic(&mut out);
        out.push_str(",\n\"timing\": {\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n {\"path\":");
            json::push_str(&mut out, &s.path);
            out.push_str(&format!(
                ",\"count\":{},\"total_us\":{},\"p50_us\":{},\"p99_us\":{},\"max_us\":{}}}",
                s.count, s.total_us, s.p50_us, s.p99_us, s.max_us
            ));
        }
        out.push_str("\n]}\n}\n");
        out
    }

    /// Write `obs_<run>.json` into `dir`, returning the path.
    pub fn write(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("obs_{}.json", self.run));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// [`snapshot`] + [`Snapshot::write`] in one call.
pub fn write_snapshot(dir: &Path, run: &str) -> io::Result<PathBuf> {
    snapshot(run).write(dir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{event, inc, reset, set_enabled, test_lock};
    use crate::span::span;

    #[test]
    fn deterministic_section_is_stable_and_excludes_timing() {
        let _g = test_lock();
        reset();
        set_enabled(true);
        inc("b.counter");
        inc("a.counter");
        event(ObsEvent::WeightsSwapped { version: 2 });
        {
            let _s = span("wall_clock");
        }
        let det = snapshot("run").deterministic_json();
        assert_eq!(
            det,
            "{\"counters\":{\"a.counter\":1,\"b.counter\":1},\"gauges\":{},\
             \"events\":[{\"seq\":0,\"kind\":\"weights_swapped\",\"version\":2}],\
             \"events_dropped\":0}"
        );
        // Identical logical state → identical bytes, however often spans
        // fired in between.
        reset();
        inc("a.counter");
        inc("b.counter");
        event(ObsEvent::WeightsSwapped { version: 2 });
        for _ in 0..3 {
            let _s = span("other_wall_clock");
        }
        assert_eq!(snapshot("run").deterministic_json(), det);
    }

    #[test]
    fn full_document_carries_schema_and_sections() {
        let _g = test_lock();
        reset();
        set_enabled(true);
        inc("x");
        {
            let _s = span("stage");
        }
        let doc = snapshot("demo").to_json();
        assert!(doc.contains("\"schema_version\": 1"));
        assert!(doc.contains("\"run\": \"demo\""));
        assert!(doc.contains("\"deterministic\": "));
        assert!(doc.contains("\"timing\": "));
        assert!(doc.contains("\"path\":\"stage\""));
    }

    #[test]
    fn write_creates_named_file() {
        let _g = test_lock();
        reset();
        set_enabled(true);
        inc("written");
        let dir = std::env::temp_dir().join(format!("dar_obs_{}", std::process::id()));
        let path = write_snapshot(&dir, "unit").unwrap();
        assert!(path.ends_with("obs_unit.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"written\":1"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
