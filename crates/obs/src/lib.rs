//! `dar-obs`: the workspace's unified observability layer.
//!
//! Every runtime in this repo emits signals — the trainer's epoch logs,
//! the divergence guards' [`TrainEvent`]s, the serving breaker's
//! transitions, the numeric layer's taint attributions, the bench
//! binaries' JSON points. Before this crate they lived in four
//! incompatible formats. `dar-obs` gives them one substrate:
//!
//! * a **lock-cheap metrics registry** — named [counters](inc),
//!   [gauges](gauge_set), and fixed-bucket latency histograms behind one
//!   global registry (atomic increments after a one-time handle lookup);
//! * **hierarchical span timing** — [`span`] pushes onto a thread-local
//!   stack, so a `matmul` recorded inside `train/epoch` aggregates under
//!   the path `train/epoch/matmul`, separately from the same kernel
//!   timed under `serve/infer`;
//! * a **typed event journal** — [`ObsEvent`] unifies train events,
//!   guard trips, breaker transitions, taint origins, and weight swaps
//!   into one ordered, serializable stream;
//! * a **schema-versioned snapshot** — [`snapshot`] /
//!   [`write_snapshot`] export everything as `results/obs_<run>.json`.
//!
//! # Determinism contract (DESIGN.md §12)
//!
//! The snapshot has two sections. The `deterministic` section — counters,
//! gauges, and the event journal — contains only values that are exact
//! (integer adds are order-independent; events are emitted from
//! deterministic control flow) and is rendered with ascending-order
//! aggregation (maps sorted by name, events in emission order). For a
//! workload whose logical behavior does not depend on the thread budget
//! (every training loop in this repo, per DESIGN.md §9), the section is
//! **byte-identical** under `DAR_THREADS=1` and `=4`; the harness
//! `tests/obs_determinism.rs` holds it to that. All wall-clock material —
//! span durations, percentiles, call counts of timing-dependent stages —
//! is isolated in the `timing` section, which is never byte-compared.
//!
//! # Cost
//!
//! Instrumentation is on by default and can be disabled with `DAR_OBS=0`
//! (or [`set_enabled`]). Disabled sites cost one relaxed atomic load.
//! Enabled spans cost two `Instant` reads plus one short mutex hold at
//! drop; the `obsbench` binary proves end-to-end overhead < 3% against
//! the uninstrumented path and records it in `results/BENCH_obs.json`.
//!
//! [`TrainEvent`]: https://docs.rs/dar-core

mod journal;
pub mod json;
mod registry;
mod snapshot;
mod span;

pub use journal::ObsEvent;
pub use registry::{add, enabled, event, gauge_set, inc, reset, set_enabled};
pub use snapshot::{snapshot, write_snapshot, Snapshot, SpanSummary};
pub use span::{record_micros, span, Span};

/// Version stamped into every snapshot; bump on any layout change.
pub const SCHEMA_VERSION: u32 = 1;
