//! The typed event journal: one ordered stream unifying the signals that
//! previously lived in four incompatible formats (`TrainEvent`, breaker
//! `TransitionCause`, `TaintRecord`, ad-hoc bench prints).
//!
//! Events belong to the snapshot's *deterministic* section: they are
//! emitted from deterministic control flow (epoch boundaries, state-machine
//! transitions, the first-wins taint latch), carry no wall-clock fields,
//! and are serialized in emission order.

use crate::json;

/// One journal entry. Producers in other crates convert their native
/// event types into this; `dar-obs` stays dependency-free.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsEvent {
    /// A training epoch finished clean (plain or guarded trainer).
    EpochDone {
        epoch: u64,
        train_loss: f32,
        dev_score: f32,
    },
    /// A divergence guard tripped; `reason` is the guard's display form.
    GuardTripped { epoch: u64, reason: String },
    /// Guarded training rolled back to its last good checkpoint.
    RolledBack {
        to_epoch: u64,
        retry: u64,
        lr_scale: f32,
    },
    /// The guarded trainer's retry budget ran out.
    RetriesExhausted { epoch: u64 },
    /// An epoch-boundary checkpoint was written durably.
    CheckpointSaved { next_epoch: u64 },
    /// Training resumed from a checkpoint at this epoch.
    CheckpointResumed { next_epoch: u64 },
    /// The serving circuit breaker changed state.
    BreakerTransition {
        from: String,
        to: String,
        cause: String,
    },
    /// The numeric taint latch caught the first non-finite op result of a
    /// unit of work (train step / inference batch).
    TaintLatched {
        op: String,
        node_id: u64,
        first_bad_index: u64,
    },
    /// The serving weight store published a new generation.
    WeightsSwapped { version: u64 },
    /// A candidate checkpoint entered canary evaluation on a deterministic
    /// traffic slice (promotion state machine: Candidate → Canary).
    CanaryStarted { version: u64 },
    /// The canary verdict promoted the candidate to serve all traffic
    /// (Canary → Promoted). Always preceded by the `weights_swapped`
    /// event of the same version.
    CandidatePromoted { version: u64 },
    /// The canary verdict rolled the candidate back; the incumbent keeps
    /// serving all traffic untouched (Canary → RolledBack). `cause` is
    /// the snake_case rollback reason.
    CandidateRolledBack { version: u64, cause: String },
    /// An offered checkpoint was rejected before publication (CRC
    /// mismatch, shape mismatch, …). `cause` is a stable snake_case
    /// classifier; `detail` the underlying error text.
    OfferRejected { cause: String, detail: String },
    /// The supervisor delayed a worker respawn (bounded exponential
    /// backoff with seeded jitter) instead of retrying immediately.
    RespawnBackoff {
        slot: u64,
        attempt: u64,
        delay_ms: u64,
    },
    /// An idle replica stole a micro-batch of `n` requests from the
    /// longest sibling queue (work stealing; DESIGN.md §14). Emitted
    /// only when a steal actually happens, so sequential traffic leaves
    /// the deterministic section untouched.
    ReplicaSteal { thief: u64, victim: u64, n: u64 },
    /// The watchdog saw a replica holding work but silent past its
    /// missed-heartbeat budget: Healthy → Suspect (DESIGN.md §16).
    /// Emitted once per stall episode; like every health event, only
    /// when a stall actually occurs, so clean traffic keeps the
    /// deterministic section byte-identical.
    ReplicaStalled { slot: u64 },
    /// A Suspect replica exhausted its deadline-aware grace and was
    /// quarantined: routing detours around it, its queue and in-flight
    /// slots are force-drained, and its thread is abandoned.
    ReplicaQuarantined { slot: u64 },
    /// A respawned replica passed its probation probes and rejoined the
    /// healthy set; original routing is restored.
    ReplicaRejoined { slot: u64 },
    /// A request stranded on a quarantined replica was re-dispatched to
    /// a healthy sibling with deadline budget to spare.
    RequestHedged { from: u64, to: u64 },
    /// One record was committed to the durable write-ahead state
    /// journal; `record` is the stable record kind (`promoted`,
    /// `rolled_back`, `feed_cursor`, …) (DESIGN.md §15).
    WalAppend { record: &'static str },
    /// WAL replay found a torn tail and truncated `lost_bytes` of
    /// uncommitted garbage at the end of the log.
    WalTruncatedTail { lost_bytes: u64 },
    /// Crash recovery began: the durable state dir is being replayed.
    RecoveryStarted,
    /// Crash recovery finished: `records` journal entries replayed, the
    /// incumbent is generation `generation`.
    RecoveryComplete { records: u64, generation: u64 },
    /// Escape hatch for one-off signals; keep `kind` snake_case.
    Custom { kind: String, detail: String },
}

impl ObsEvent {
    /// Stable snake_case discriminator written into the snapshot.
    pub fn kind(&self) -> &'static str {
        match self {
            ObsEvent::EpochDone { .. } => "epoch_done",
            ObsEvent::GuardTripped { .. } => "guard_tripped",
            ObsEvent::RolledBack { .. } => "rolled_back",
            ObsEvent::RetriesExhausted { .. } => "retries_exhausted",
            ObsEvent::CheckpointSaved { .. } => "checkpoint_saved",
            ObsEvent::CheckpointResumed { .. } => "checkpoint_resumed",
            ObsEvent::BreakerTransition { .. } => "breaker_transition",
            ObsEvent::TaintLatched { .. } => "taint_latched",
            ObsEvent::WeightsSwapped { .. } => "weights_swapped",
            ObsEvent::CanaryStarted { .. } => "canary_started",
            ObsEvent::CandidatePromoted { .. } => "candidate_promoted",
            ObsEvent::CandidateRolledBack { .. } => "candidate_rolled_back",
            ObsEvent::OfferRejected { .. } => "offer_rejected",
            ObsEvent::RespawnBackoff { .. } => "respawn_backoff",
            ObsEvent::ReplicaSteal { .. } => "replica_steal",
            ObsEvent::ReplicaStalled { .. } => "replica_stalled",
            ObsEvent::ReplicaQuarantined { .. } => "replica_quarantined",
            ObsEvent::ReplicaRejoined { .. } => "replica_rejoined",
            ObsEvent::RequestHedged { .. } => "request_hedged",
            ObsEvent::WalAppend { .. } => "wal_append",
            ObsEvent::WalTruncatedTail { .. } => "wal_truncated_tail",
            ObsEvent::RecoveryStarted => "recovery_started",
            ObsEvent::RecoveryComplete { .. } => "recovery_complete",
            ObsEvent::Custom { .. } => "custom",
        }
    }

    /// Append this event as one JSON object: `{"seq":N,"kind":...,fields}`.
    pub(crate) fn push_json(&self, out: &mut String, seq: u64) {
        out.push_str(&format!("{{\"seq\":{seq},\"kind\":"));
        json::push_str(out, self.kind());
        match self {
            ObsEvent::EpochDone {
                epoch,
                train_loss,
                dev_score,
            } => {
                out.push_str(&format!(",\"epoch\":{epoch},\"train_loss\":"));
                json::push_f32(out, *train_loss);
                out.push_str(",\"dev_score\":");
                json::push_f32(out, *dev_score);
            }
            ObsEvent::GuardTripped { epoch, reason } => {
                out.push_str(&format!(",\"epoch\":{epoch},\"reason\":"));
                json::push_str(out, reason);
            }
            ObsEvent::RolledBack {
                to_epoch,
                retry,
                lr_scale,
            } => {
                out.push_str(&format!(
                    ",\"to_epoch\":{to_epoch},\"retry\":{retry},\"lr_scale\":"
                ));
                json::push_f32(out, *lr_scale);
            }
            ObsEvent::RetriesExhausted { epoch } => {
                out.push_str(&format!(",\"epoch\":{epoch}"));
            }
            ObsEvent::CheckpointSaved { next_epoch } => {
                out.push_str(&format!(",\"next_epoch\":{next_epoch}"));
            }
            ObsEvent::CheckpointResumed { next_epoch } => {
                out.push_str(&format!(",\"next_epoch\":{next_epoch}"));
            }
            ObsEvent::BreakerTransition { from, to, cause } => {
                out.push_str(",\"from\":");
                json::push_str(out, from);
                out.push_str(",\"to\":");
                json::push_str(out, to);
                out.push_str(",\"cause\":");
                json::push_str(out, cause);
            }
            ObsEvent::TaintLatched {
                op,
                node_id,
                first_bad_index,
            } => {
                out.push_str(",\"op\":");
                json::push_str(out, op);
                out.push_str(&format!(
                    ",\"node_id\":{node_id},\"first_bad_index\":{first_bad_index}"
                ));
            }
            ObsEvent::WeightsSwapped { version }
            | ObsEvent::CanaryStarted { version }
            | ObsEvent::CandidatePromoted { version } => {
                out.push_str(&format!(",\"version\":{version}"));
            }
            ObsEvent::CandidateRolledBack { version, cause } => {
                out.push_str(&format!(",\"version\":{version},\"cause\":"));
                json::push_str(out, cause);
            }
            ObsEvent::OfferRejected { cause, detail } => {
                out.push_str(",\"cause\":");
                json::push_str(out, cause);
                out.push_str(",\"detail\":");
                json::push_str(out, detail);
            }
            ObsEvent::RespawnBackoff {
                slot,
                attempt,
                delay_ms,
            } => {
                out.push_str(&format!(
                    ",\"slot\":{slot},\"attempt\":{attempt},\"delay_ms\":{delay_ms}"
                ));
            }
            ObsEvent::ReplicaSteal { thief, victim, n } => {
                out.push_str(&format!(",\"thief\":{thief},\"victim\":{victim},\"n\":{n}"));
            }
            ObsEvent::ReplicaStalled { slot }
            | ObsEvent::ReplicaQuarantined { slot }
            | ObsEvent::ReplicaRejoined { slot } => {
                out.push_str(&format!(",\"slot\":{slot}"));
            }
            ObsEvent::RequestHedged { from, to } => {
                out.push_str(&format!(",\"from\":{from},\"to\":{to}"));
            }
            ObsEvent::WalAppend { record } => {
                out.push_str(",\"record\":");
                json::push_str(out, record);
            }
            ObsEvent::WalTruncatedTail { lost_bytes } => {
                out.push_str(&format!(",\"lost_bytes\":{lost_bytes}"));
            }
            ObsEvent::RecoveryStarted => {}
            ObsEvent::RecoveryComplete {
                records,
                generation,
            } => {
                out.push_str(&format!(
                    ",\"records\":{records},\"generation\":{generation}"
                ));
            }
            ObsEvent::Custom { kind, detail } => {
                out.push_str(",\"custom_kind\":");
                json::push_str(out, kind);
                out.push_str(",\"detail\":");
                json::push_str(out, detail);
            }
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable() {
        assert_eq!(
            ObsEvent::EpochDone {
                epoch: 0,
                train_loss: 0.0,
                dev_score: 0.0
            }
            .kind(),
            "epoch_done"
        );
        assert_eq!(
            ObsEvent::WeightsSwapped { version: 2 }.kind(),
            "weights_swapped"
        );
        assert_eq!(
            ObsEvent::CanaryStarted { version: 3 }.kind(),
            "canary_started"
        );
        assert_eq!(
            ObsEvent::CandidatePromoted { version: 3 }.kind(),
            "candidate_promoted"
        );
        assert_eq!(
            ObsEvent::CandidateRolledBack {
                version: 3,
                cause: "accuracy_regressed".into()
            }
            .kind(),
            "candidate_rolled_back"
        );
        assert_eq!(
            ObsEvent::OfferRejected {
                cause: "crc_mismatch".into(),
                detail: String::new()
            }
            .kind(),
            "offer_rejected"
        );
        assert_eq!(
            ObsEvent::RespawnBackoff {
                slot: 0,
                attempt: 1,
                delay_ms: 10
            }
            .kind(),
            "respawn_backoff"
        );
        assert_eq!(
            ObsEvent::ReplicaSteal {
                thief: 2,
                victim: 0,
                n: 4
            }
            .kind(),
            "replica_steal"
        );
        assert_eq!(
            ObsEvent::WalAppend { record: "promoted" }.kind(),
            "wal_append"
        );
        assert_eq!(
            ObsEvent::WalTruncatedTail { lost_bytes: 6 }.kind(),
            "wal_truncated_tail"
        );
        assert_eq!(
            ObsEvent::ReplicaStalled { slot: 1 }.kind(),
            "replica_stalled"
        );
        assert_eq!(
            ObsEvent::ReplicaQuarantined { slot: 1 }.kind(),
            "replica_quarantined"
        );
        assert_eq!(
            ObsEvent::ReplicaRejoined { slot: 1 }.kind(),
            "replica_rejoined"
        );
        assert_eq!(
            ObsEvent::RequestHedged { from: 1, to: 0 }.kind(),
            "request_hedged"
        );
        assert_eq!(ObsEvent::RecoveryStarted.kind(), "recovery_started");
        assert_eq!(
            ObsEvent::RecoveryComplete {
                records: 4,
                generation: 2
            }
            .kind(),
            "recovery_complete"
        );
    }

    #[test]
    fn durability_events_serialize_stably() {
        let mut out = String::new();
        ObsEvent::RecoveryStarted.push_json(&mut out, 0);
        assert_eq!(out, r#"{"seq":0,"kind":"recovery_started"}"#);
        let mut out = String::new();
        ObsEvent::WalAppend { record: "promoted" }.push_json(&mut out, 1);
        assert_eq!(out, r#"{"seq":1,"kind":"wal_append","record":"promoted"}"#);
        let mut out = String::new();
        ObsEvent::WalTruncatedTail { lost_bytes: 13 }.push_json(&mut out, 2);
        assert_eq!(
            out,
            r#"{"seq":2,"kind":"wal_truncated_tail","lost_bytes":13}"#
        );
        let mut out = String::new();
        ObsEvent::RecoveryComplete {
            records: 9,
            generation: 3,
        }
        .push_json(&mut out, 3);
        assert_eq!(
            out,
            r#"{"seq":3,"kind":"recovery_complete","records":9,"generation":3}"#
        );
    }

    #[test]
    fn health_events_serialize_stably() {
        let mut out = String::new();
        ObsEvent::ReplicaStalled { slot: 2 }.push_json(&mut out, 7);
        assert_eq!(out, r#"{"seq":7,"kind":"replica_stalled","slot":2}"#);
        let mut out = String::new();
        ObsEvent::ReplicaQuarantined { slot: 2 }.push_json(&mut out, 8);
        assert_eq!(out, r#"{"seq":8,"kind":"replica_quarantined","slot":2}"#);
        let mut out = String::new();
        ObsEvent::ReplicaRejoined { slot: 2 }.push_json(&mut out, 9);
        assert_eq!(out, r#"{"seq":9,"kind":"replica_rejoined","slot":2}"#);
        let mut out = String::new();
        ObsEvent::RequestHedged { from: 2, to: 0 }.push_json(&mut out, 10);
        assert_eq!(out, r#"{"seq":10,"kind":"request_hedged","from":2,"to":0}"#);
    }

    #[test]
    fn replica_steal_serializes_stably() {
        let mut out = String::new();
        ObsEvent::ReplicaSteal {
            thief: 3,
            victim: 1,
            n: 8,
        }
        .push_json(&mut out, 5);
        assert_eq!(
            out,
            r#"{"seq":5,"kind":"replica_steal","thief":3,"victim":1,"n":8}"#
        );
    }

    #[test]
    fn promotion_events_serialize_stably() {
        let mut out = String::new();
        ObsEvent::CandidateRolledBack {
            version: 3,
            cause: "candidate_faults".into(),
        }
        .push_json(&mut out, 2);
        assert_eq!(
            out,
            r#"{"seq":2,"kind":"candidate_rolled_back","version":3,"cause":"candidate_faults"}"#
        );
        let mut out = String::new();
        ObsEvent::OfferRejected {
            cause: "shape_mismatch".into(),
            detail: "tensor 0 is [3, 2]".into(),
        }
        .push_json(&mut out, 0);
        assert_eq!(
            out,
            r#"{"seq":0,"kind":"offer_rejected","cause":"shape_mismatch","detail":"tensor 0 is [3, 2]"}"#
        );
    }

    #[test]
    fn serializes_with_seq_and_kind() {
        let mut out = String::new();
        ObsEvent::BreakerTransition {
            from: "Closed".into(),
            to: "Degraded".into(),
            cause: "generator failures".into(),
        }
        .push_json(&mut out, 7);
        assert_eq!(
            out,
            r#"{"seq":7,"kind":"breaker_transition","from":"Closed","to":"Degraded","cause":"generator failures"}"#
        );
    }
}
