//! Hierarchical span timing.
//!
//! [`span`] opens a timing scope tied to a thread-local stack: a span
//! opened while another is active aggregates under the concatenated path
//! (`train/epoch/matmul`), so the same kernel is accounted separately
//! per enclosing phase. Guards are strictly LIFO — hold them in a local
//! and let scope end close them.
//!
//! Aggregation is a fixed-bucket power-of-two histogram per path
//! (microsecond resolution), which yields stable p50/p99 estimates
//! without storing individual samples. Durations are wall-clock and thus
//! live in the snapshot's non-deterministic `timing` section; the
//! *paths* are interned globally so the export order (ascending by path)
//! is stable.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::time::Instant;

use crate::registry::{enabled, global, relock};

/// Bucket count: bucket `i ≥ 1` covers `[2^(i-1), 2^i)` µs; bucket 0 is
/// sub-microsecond. 28 buckets reach ~2.2 minutes; longer samples clamp
/// into the top bucket.
pub(crate) const N_BUCKETS: usize = 28;

#[derive(Clone)]
pub(crate) struct SpanStat {
    pub count: u64,
    pub total_us: u64,
    pub max_us: u64,
    pub buckets: [u64; N_BUCKETS],
}

impl SpanStat {
    fn new() -> Self {
        SpanStat {
            count: 0,
            total_us: 0,
            max_us: 0,
            buckets: [0; N_BUCKETS],
        }
    }

    fn record(&mut self, us: u64) {
        self.count += 1;
        self.total_us += us;
        self.max_us = self.max_us.max(us);
        self.buckets[bucket_index(us)] += 1;
    }

    /// Estimate the `p`-quantile (0..=1) as the upper bound of the bucket
    /// where the cumulative count crosses it.
    pub fn quantile_us(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * p).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_us(i).min(self.max_us);
            }
        }
        self.max_us
    }
}

pub(crate) fn bucket_index(us: u64) -> usize {
    if us == 0 {
        0
    } else {
        ((64 - us.leading_zeros()) as usize).min(N_BUCKETS - 1)
    }
}

fn bucket_upper_us(i: usize) -> u64 {
    if i == 0 {
        1
    } else {
        1u64 << i
    }
}

/// Interner + statistics for every span path seen by the process.
pub(crate) struct SpanStore {
    /// `paths[id]` is the full `/`-joined path; id 0 is the root sentinel.
    paths: Vec<String>,
    /// `(parent_id, leaf_name) → id`.
    children: BTreeMap<(u32, &'static str), u32>,
    stats: Vec<SpanStat>,
}

impl SpanStore {
    pub fn new() -> Self {
        SpanStore {
            paths: vec![String::new()],
            children: BTreeMap::new(),
            stats: vec![SpanStat::new()],
        }
    }

    pub fn clear(&mut self) {
        *self = SpanStore::new();
    }

    fn intern(&mut self, parent: u32, leaf: &'static str) -> u32 {
        if let Some(&id) = self.children.get(&(parent, leaf)) {
            return id;
        }
        let path = if parent == 0 {
            leaf.to_string()
        } else {
            format!("{}/{leaf}", self.paths[parent as usize])
        };
        let id = self.paths.len() as u32;
        self.paths.push(path);
        self.stats.push(SpanStat::new());
        self.children.insert((parent, leaf), id);
        id
    }

    /// Resolve a stack of leaf names to a path id, interning as needed.
    fn intern_chain(&mut self, chain: &[&'static str]) -> u32 {
        let mut id = 0u32;
        for leaf in chain {
            id = self.intern(id, leaf);
        }
        id
    }

    pub fn record_chain(&mut self, chain: &[&'static str], us: u64) {
        let id = self.intern_chain(chain);
        self.stats[id as usize].record(us);
    }

    /// `(path, stat)` for every recorded span, ascending by path.
    pub fn sorted(&self) -> Vec<(String, SpanStat)> {
        let mut out: Vec<(String, SpanStat)> = self
            .paths
            .iter()
            .zip(&self.stats)
            .skip(1) // root sentinel
            .filter(|(_, s)| s.count > 0)
            .map(|(p, s)| (p.clone(), s.clone()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

thread_local! {
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// An open timing scope; closes (and records) on drop.
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

/// Open a span named `leaf` under the thread's current span path. When
/// the layer is disabled this returns an inert guard (no clock read, no
/// stack push).
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { name, start: None };
    }
    STACK.with(|s| s.borrow_mut().push(name));
    Span {
        name,
        start: Some(Instant::now()),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        let us = start.elapsed().as_micros() as u64;
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // LIFO discipline: the top must be us. If a guard escaped its
            // scope out of order, drop down to it rather than corrupting
            // the stack for every later span on this thread.
            while let Some(top) = stack.pop() {
                if std::ptr::eq(top.as_ptr(), self.name.as_ptr()) || top == self.name {
                    break;
                }
            }
            relock(&global().spans).record_chain(
                &stack
                    .iter()
                    .copied()
                    .chain(std::iter::once(self.name))
                    .collect::<Vec<_>>(),
                us,
            );
        });
    }
}

/// Record an externally-measured duration under a root-level path — for
/// durations that cross threads (e.g. a request's queue wait, measured
/// from submission on one thread to claim on another) and cannot be a
/// scoped guard.
pub fn record_micros(name: &'static str, us: u64) {
    if !enabled() {
        return;
    }
    relock(&global().spans).record_chain(&[name], us);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{reset, set_enabled, test_lock};
    use crate::snapshot::snapshot;

    #[test]
    fn nesting_builds_paths() {
        let _g = test_lock();
        reset();
        set_enabled(true);
        {
            let _outer = span("train");
            {
                let _mid = span("epoch");
                let _inner = span("matmul");
            }
            let _sibling = span("eval");
        }
        let snap = snapshot("t");
        let paths: Vec<&str> = snap.spans.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(
            paths,
            vec!["train", "train/epoch", "train/epoch/matmul", "train/eval"]
        );
        assert!(snap.spans.iter().all(|s| s.count == 1));
    }

    #[test]
    fn same_leaf_under_different_parents_is_two_paths() {
        let _g = test_lock();
        reset();
        set_enabled(true);
        {
            let _a = span("train");
            let _k = span("matmul");
        }
        {
            let _b = span("serve");
            let _k = span("matmul");
        }
        let snap = snapshot("t");
        let paths: Vec<&str> = snap.spans.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(
            paths,
            vec!["serve", "serve/matmul", "train", "train/matmul"]
        );
    }

    #[test]
    fn record_micros_lands_at_root() {
        let _g = test_lock();
        reset();
        set_enabled(true);
        record_micros("queue_wait", 100);
        record_micros("queue_wait", 300);
        let snap = snapshot("t");
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].path, "queue_wait");
        assert_eq!(snap.spans[0].count, 2);
        assert_eq!(snap.spans[0].total_us, 400);
        assert_eq!(snap.spans[0].max_us, 300);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = test_lock();
        reset();
        set_enabled(false);
        {
            let _s = span("ghost");
        }
        record_micros("ghost", 5);
        set_enabled(true);
        assert!(snapshot("t").spans.is_empty());
    }

    #[test]
    fn bucket_geometry() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), N_BUCKETS - 1);
        let mut s = SpanStat::new();
        for us in [10, 20, 30, 40, 1000] {
            s.record(us);
        }
        assert_eq!(s.count, 5);
        assert_eq!(s.total_us, 1100);
        assert_eq!(s.max_us, 1000);
        // p50 falls in the bucket holding 20/30 µs → upper bound 32.
        assert_eq!(s.quantile_us(0.5), 32);
        // p99 clamps to the observed max.
        assert_eq!(s.quantile_us(0.99), 1000);
    }
}
