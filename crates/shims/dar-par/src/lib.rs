//! # dar-par — deterministic shard-parallel thread pool
//!
//! Offline (no crates.io) parallel runtime for the DAR workspace. Design
//! constraints, in priority order:
//!
//! 1. **Determinism.** Work is decomposed into a *fixed* list of shards
//!    whose count depends only on the problem size (never on the thread
//!    count), each shard runs serially, and shard results are handed back
//!    to the caller **ordered by shard index**. Any reduction the caller
//!    performs in that order is therefore bit-identical for 1, 4, or 64
//!    threads — the invariant DESIGN.md §9 relies on.
//! 2. **No idle deadlock.** The calling thread participates in executing
//!    its own shards (claimed through an atomic counter), so a pool of
//!    size 1 — or a fully busy pool — still makes progress, and nested
//!    fork-joins cannot starve each other.
//! 3. **Panic propagation.** A panic in any shard is captured and resumed
//!    on the calling thread once the fork-join completes; nothing hangs.
//!
//! The thread budget comes from `DAR_THREADS` (0 or unset falls back to
//! `available_parallelism`), overridable per-thread with [`with_threads`]
//! — which is how the serial-equivalence tests compare a 1-thread and a
//! 4-thread run inside one process.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Upper bound on worker threads, however large `DAR_THREADS` claims.
pub const HARD_CAP: usize = 64;

/// Upper bound on shards per fork-join. Shard *counts* must be a pure
/// function of problem size (determinism), so this also caps how much
/// parallelism a single op can expose.
pub const MAX_SHARDS: usize = 16;

// ---------------------------------------------------------------------------
// Thread-count policy
// ---------------------------------------------------------------------------

fn hw_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(HARD_CAP)
}

/// Resolve a raw `DAR_THREADS` value; `None`, empty, `0`, or garbage all
/// fall back to the hardware parallelism (public so the fallback policy is
/// unit-testable without mutating the process environment).
pub fn threads_from_env_str(raw: Option<&str>) -> usize {
    match raw.map(str::trim).filter(|s| !s.is_empty()) {
        Some(s) => match s.parse::<usize>() {
            Ok(0) | Err(_) => hw_threads(),
            Ok(n) => n.min(HARD_CAP),
        },
        None => hw_threads(),
    }
}

fn env_threads() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| threads_from_env_str(std::env::var("DAR_THREADS").ok().as_deref()))
}

thread_local! {
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Effective thread budget for fork-joins issued from this thread.
pub fn max_threads() -> usize {
    THREAD_OVERRIDE.with(Cell::get).unwrap_or_else(env_threads)
}

/// Run `f` with the calling thread's budget forced to `n` (clamped to
/// `1..=HARD_CAP`), restoring the previous budget afterwards — including on
/// unwind, so a failed assertion inside a test cannot leak the override.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(THREAD_OVERRIDE.with(|c| c.replace(Some(n.clamp(1, HARD_CAP)))));
    f()
}

// ---------------------------------------------------------------------------
// Shard geometry
// ---------------------------------------------------------------------------

/// Deterministic shard count for `items` units of work: at most one shard
/// per `min_per_shard` items, clamped to `1..=MAX_SHARDS`. Depends only on
/// the arguments — never on the thread budget.
pub fn shard_count(items: usize, min_per_shard: usize) -> usize {
    let per = min_per_shard.max(1);
    (items / per).clamp(1, MAX_SHARDS)
}

/// Half-open item range owned by shard `idx` of `n_shards` over `items`
/// units. Ranges are contiguous, ascending, cover every item exactly once,
/// and differ in length by at most one.
pub fn shard_range(items: usize, n_shards: usize, idx: usize) -> Range<usize> {
    debug_assert!(idx < n_shards);
    let base = items / n_shards;
    let extra = items % n_shards;
    // The first `extra` shards take `base + 1` items.
    let start = idx * base + idx.min(extra);
    let len = base + usize::from(idx < extra);
    start..(start + len).min(items)
}

// ---------------------------------------------------------------------------
// Pool
// ---------------------------------------------------------------------------

/// A unit of helpable work: callers and workers alike drain it by calling
/// [`Task::help`], which claims shards until none remain.
trait Task: Send + Sync {
    fn help(&self);
    /// True once every shard has been claimed (the queue prunes such
    /// entries; late poppers return immediately).
    fn exhausted(&self) -> bool;
}

struct QueueState {
    jobs: VecDeque<Arc<dyn Task>>,
    shutdown: bool,
}

struct PoolShared {
    queue: Mutex<QueueState>,
    available: Condvar,
}

impl PoolShared {
    fn worker_loop(&self) {
        loop {
            let task = {
                let mut q = self.queue.lock().unwrap();
                loop {
                    if let Some(t) = q.jobs.pop_front() {
                        break Some(t);
                    }
                    if q.shutdown {
                        break None;
                    }
                    q = self.available.wait(q).unwrap();
                }
            };
            match task {
                Some(t) => t.help(),
                None => return,
            }
        }
    }

    /// Enqueue `copies` handles to `task` so up to that many idle workers
    /// can help with it. Prunes already-exhausted entries first so stale
    /// handles never accumulate.
    fn submit(&self, task: &Arc<dyn Task>, copies: usize) {
        let mut q = self.queue.lock().unwrap();
        q.jobs.retain(|j| !j.exhausted());
        for _ in 0..copies {
            q.jobs.push_back(Arc::clone(task));
        }
        drop(q);
        for _ in 0..copies {
            self.available.notify_one();
        }
    }
}

/// A worker pool. Most callers use the process-global pool implicitly via
/// [`run_shards`]; owning a `Pool` directly is for tests and special
/// setups. Dropping an owned pool joins every worker.
pub struct Pool {
    shared: Arc<PoolShared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Pool {
    /// Pool with exactly `n` workers (clamped to `HARD_CAP`).
    pub fn new(n: usize) -> Pool {
        let pool = Pool {
            shared: Arc::new(PoolShared {
                queue: Mutex::new(QueueState {
                    jobs: VecDeque::new(),
                    shutdown: false,
                }),
                available: Condvar::new(),
            }),
            workers: Mutex::new(Vec::new()),
        };
        pool.ensure_workers(n.min(HARD_CAP));
        pool
    }

    /// The lazily-started process-global pool. Workers are spawned on
    /// demand (up to `HARD_CAP`) and live for the rest of the process.
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL.get_or_init(|| Pool::new(0))
    }

    /// Current worker count.
    pub fn worker_count(&self) -> usize {
        self.workers.lock().unwrap().len()
    }

    /// Grow the pool to at least `n` workers.
    fn ensure_workers(&self, n: usize) {
        let mut workers = self.workers.lock().unwrap();
        while workers.len() < n.min(HARD_CAP) {
            let shared = Arc::clone(&self.shared);
            let name = format!("dar-par-{}", workers.len());
            let handle = std::thread::Builder::new()
                .name(name)
                .spawn(move || shared.worker_loop())
                .expect("spawning dar-par worker");
            workers.push(handle);
        }
    }

    /// Run `n_shards` invocations of `f` across the pool using at most
    /// `threads` threads (including the caller), returning the results
    /// **ordered by shard index**. Panics in any shard are re-raised on
    /// the caller after all shards finish or bail.
    pub fn run_shards_with<T: Send>(
        &self,
        threads: usize,
        n_shards: usize,
        f: impl Fn(usize) -> T + Sync,
    ) -> Vec<T> {
        assert!(n_shards > 0, "run_shards needs at least one shard");
        let threads = threads.clamp(1, HARD_CAP).min(n_shards);
        if threads <= 1 || n_shards == 1 {
            // Serial path: same shards, same order, no pool involvement.
            return (0..n_shards).map(f).collect();
        }

        // One slot per shard; the claim counter hands each index to exactly
        // one executor, so writes are disjoint.
        struct Slots<T>(Vec<std::cell::UnsafeCell<Option<T>>>);
        unsafe impl<T: Send> Sync for Slots<T> {}
        impl<T> Slots<T> {
            fn slot(&self, i: usize) -> *mut Option<T> {
                self.0[i].get()
            }
        }
        let slots = Slots((0..n_shards).map(|_| None.into()).collect());
        let slots_ref = &slots;
        let run_one = |i: usize| {
            let v = f(i);
            // SAFETY: shard i is claimed exactly once (fetch_add), and the
            // caller blocks in `wait()` until all claimed shards finish, so
            // the slot outlives every write and no write aliases another.
            unsafe { *slots_ref.slot(i) = Some(v) };
        };

        let job = Arc::new(unsafe { ShardJob::new(&run_one, n_shards) });
        let task: Arc<dyn Task> = Arc::clone(&job) as Arc<dyn Task>;
        self.ensure_workers(threads - 1);
        self.shared.submit(&task, threads - 1);
        job.help(); // The caller claims shards too — progress needs no worker.
        job.wait();
        if let Some(payload) = job.take_panic() {
            resume_unwind(payload);
        }
        slots
            .0
            .into_iter()
            .map(|c| c.into_inner().expect("shard completed without result"))
            .collect()
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shutdown_workers();
    }
}

impl Pool {
    fn shutdown_workers(&self) -> usize {
        {
            let mut q = self.shared.queue.lock().unwrap();
            q.shutdown = true;
        }
        self.shared.available.notify_all();
        let handles: Vec<_> = std::mem::take(&mut *self.workers.lock().unwrap());
        let n = handles.len();
        for h in handles {
            let _ = h.join();
        }
        n
    }

    /// Stop accepting work and join every worker, returning how many were
    /// joined (also runs on drop; exposed for tests).
    pub fn shutdown(self) -> usize {
        self.shutdown_workers()
    }
}

// ---------------------------------------------------------------------------
// ShardJob — a single fork-join
// ---------------------------------------------------------------------------

/// A fork-join over `n` shards. Executors (workers and the caller) claim
/// shard indices from `next`; `done` counts finished shards; the first
/// panic payload is parked in `panic` for the caller to re-raise.
struct ShardJob {
    /// Type- and lifetime-erased pointer to the caller's shard closure.
    run_one: *const (dyn Fn(usize) + Sync + 'static),
    n: usize,
    next: AtomicUsize,
    done: Mutex<usize>,
    finished: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

// SAFETY: `run_one` points at a `Sync` closure on the caller's stack; the
// caller guarantees (by blocking in `wait`) that the closure outlives every
// dereference. All other fields are Send + Sync.
unsafe impl Send for ShardJob {}
unsafe impl Sync for ShardJob {}

impl ShardJob {
    /// # Safety
    /// The caller must not let `run_one` die before `wait()` has observed
    /// all `n` shards complete (i.e. call `wait` before returning).
    unsafe fn new(run_one: &(dyn Fn(usize) + Sync), n: usize) -> ShardJob {
        // Erase the borrow's lifetime; `wait()` upholds it dynamically.
        let eternal: &'static (dyn Fn(usize) + Sync + 'static) = std::mem::transmute(run_one);
        ShardJob {
            run_one: eternal as *const _,
            n,
            next: AtomicUsize::new(0),
            done: Mutex::new(0),
            finished: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn wait(&self) {
        let mut done = self.done.lock().unwrap();
        while *done < self.n {
            done = self.finished.wait(done).unwrap();
        }
    }

    fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.panic.lock().unwrap().take()
    }
}

impl Task for ShardJob {
    fn help(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n {
                return;
            }
            // SAFETY: per ShardJob::new's contract the closure is alive —
            // the caller is blocked in wait() until `done` reaches `n`.
            let f = unsafe { &*self.run_one };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(i))) {
                let mut slot = self.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            let mut done = self.done.lock().unwrap();
            *done += 1;
            if *done == self.n {
                self.finished.notify_all();
            }
        }
    }

    fn exhausted(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.n
    }
}

// ---------------------------------------------------------------------------
// Front-door helpers
// ---------------------------------------------------------------------------

/// Fork-join `n_shards` calls of `f` on the global pool under the current
/// thread budget ([`max_threads`]), returning results **ordered by shard
/// index**. With a budget of 1 this runs the identical shards inline, in
/// the identical order — the foundation of the serial-equivalence
/// guarantee.
pub fn run_shards<T: Send>(n_shards: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    Pool::global().run_shards_with(max_threads(), n_shards, f)
}

/// Shard a mutable buffer: split `data` into `n_shards` contiguous chunks
/// of `stride`-sized rows (chunk `i` covers `shard_range(rows, n_shards,
/// i)`) and run `f(shard_idx, chunk)` for each, in parallel. `data.len()`
/// must be `rows * stride`; each chunk is written by exactly one shard.
pub fn run_shards_mut<T: Send, F: Fn(usize, &mut [T]) + Sync>(
    data: &mut [T],
    n_shards: usize,
    stride: usize,
    f: F,
) {
    assert!(stride > 0, "run_shards_mut stride must be positive");
    assert_eq!(data.len() % stride, 0, "buffer not a whole number of rows");
    let rows = data.len() / stride;
    struct SendPtr<T>(*mut T);
    unsafe impl<T: Send> Sync for SendPtr<T> {}
    impl<T> SendPtr<T> {
        fn get(&self) -> *mut T {
            self.0
        }
    }
    let base = SendPtr(data.as_mut_ptr());
    run_shards(n_shards, |i| {
        let r = shard_range(rows, n_shards, i);
        // SAFETY: shard ranges are disjoint and in-bounds, each shard index
        // runs exactly once, and the fork-join completes before `data`'s
        // borrow ends — so these are non-overlapping live sub-borrows.
        let chunk = unsafe {
            std::slice::from_raw_parts_mut(base.get().add(r.start * stride), r.len() * stride)
        };
        f(i, chunk);
    });
}

// ---------------------------------------------------------------------------
// Scoped spawn
// ---------------------------------------------------------------------------

struct ScopeState {
    pending: Mutex<VecDeque<Box<dyn FnOnce() + Send>>>,
    /// Tasks spawned and not yet finished.
    open: Mutex<usize>,
    changed: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl ScopeState {
    fn run_pending(&self) {
        loop {
            let task = self.pending.lock().unwrap().pop_front();
            let Some(task) = task else { return };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
                let mut slot = self.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            let mut open = self.open.lock().unwrap();
            *open -= 1;
            self.changed.notify_all();
        }
    }
}

impl Task for ScopeState {
    fn help(&self) {
        self.run_pending();
    }

    fn exhausted(&self) -> bool {
        self.pending.lock().unwrap().is_empty()
    }
}

/// Handle for spawning tasks inside a [`scope`] call.
pub struct Scope<'env> {
    state: Arc<ScopeState>,
    _env: std::marker::PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'env> {
    /// Spawn `task` onto the pool. It may borrow from the enclosing scope
    /// (`'env`); [`scope`] does not return until it has run. Spawning from
    /// inside a spawned task (nesting) is allowed.
    pub fn spawn<F: FnOnce() + Send + 'env>(&self, task: F) {
        let boxed: Box<dyn FnOnce() + Send + 'env> = Box::new(task);
        // SAFETY: `scope` joins (open == 0) before returning, so the task
        // cannot outlive 'env even though the queue stores it as 'static.
        let boxed: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(boxed) };
        {
            let mut open = self.state.open.lock().unwrap();
            *open += 1;
        }
        self.state.pending.lock().unwrap().push_back(boxed);
        if max_threads() > 1 {
            let task: Arc<dyn Task> = Arc::<ScopeState>::clone(&self.state);
            let pool = Pool::global();
            pool.ensure_workers(max_threads() - 1);
            pool.shared.submit(&task, 1);
        }
        self.state.changed.notify_all();
    }
}

/// Structured-concurrency scope: tasks spawned through the handle may
/// borrow locals, all of them complete before `scope` returns, and any
/// panic (in `f` or in a task) is resumed on the caller — after every
/// already-spawned task has still been joined.
pub fn scope<'env, R>(f: impl FnOnce(&Scope<'env>) -> R) -> R {
    let scope_handle = Scope {
        state: Arc::new(ScopeState {
            pending: Mutex::new(VecDeque::new()),
            open: Mutex::new(0),
            changed: Condvar::new(),
            panic: Mutex::new(None),
        }),
        _env: std::marker::PhantomData,
    };
    let body = catch_unwind(AssertUnwindSafe(|| f(&scope_handle)));
    // Join: keep helping until every spawned task (including ones spawned
    // by other tasks mid-flight) has finished.
    let state = &scope_handle.state;
    loop {
        state.run_pending();
        let open = state.open.lock().unwrap();
        if *open == 0 {
            break;
        }
        // A worker is still running a task (which may spawn more); wait for
        // any state change, then loop to drain whatever appeared.
        drop(state.changed.wait(open).unwrap());
    }
    let task_panic = state.panic.lock().unwrap().take();
    match body {
        Err(payload) => resume_unwind(payload),
        Ok(r) => {
            if let Some(payload) = task_panic {
                resume_unwind(payload);
            }
            r
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn shard_ranges_partition_items() {
        for items in [0usize, 1, 5, 16, 17, 100] {
            for n in 1..=MAX_SHARDS {
                let mut covered = Vec::new();
                for i in 0..n {
                    covered.extend(shard_range(items, n, i));
                }
                assert_eq!(covered, (0..items).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn shard_count_is_clamped_and_monotone() {
        assert_eq!(shard_count(0, 4), 1);
        assert_eq!(shard_count(3, 4), 1);
        assert_eq!(shard_count(8, 4), 2);
        assert_eq!(shard_count(1 << 20, 4), MAX_SHARDS);
        // min_per_shard == 0 must not divide by zero.
        assert_eq!(shard_count(5, 0), 5);
    }

    #[test]
    fn run_shards_returns_results_in_shard_order() {
        let out = with_threads(4, || run_shards(9, |i| i * i));
        assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36, 49, 64]);
    }

    #[test]
    fn run_shards_serial_budget_matches_parallel() {
        let serial = with_threads(1, || run_shards(7, |i| (i as f32).sin()));
        let parallel = with_threads(4, || run_shards(7, |i| (i as f32).sin()));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn run_shards_uses_multiple_threads_when_asked() {
        // With enough shards and a generous budget, at least one shard
        // should land off the calling thread (workers exist and claim).
        let ids = with_threads(4, || {
            run_shards(64, |_| {
                std::thread::sleep(std::time::Duration::from_millis(1));
                std::thread::current().id()
            })
        });
        let distinct: HashSet<_> = ids.into_iter().collect();
        assert!(!distinct.is_empty());
        // On a single-core host the scheduler may still serialize onto one
        // thread; require only that the pool spun up workers.
        assert!(Pool::global().worker_count() >= 3);
    }

    #[test]
    fn run_shards_mut_writes_disjoint_chunks() {
        let mut buf = vec![0u32; 24];
        with_threads(4, || {
            run_shards_mut(&mut buf, 6, 4, |i, chunk| {
                assert_eq!(chunk.len(), 4);
                for c in chunk {
                    *c = i as u32 + 1;
                }
            });
        });
        let want: Vec<u32> = (0..6u32).flat_map(|i| [i + 1; 4]).collect();
        assert_eq!(buf, want);
    }

    #[test]
    fn panicking_shard_propagates_and_others_complete() {
        let completed = AtomicU32::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            with_threads(4, || {
                run_shards(8, |i| {
                    if i == 3 {
                        panic!("shard 3 exploded");
                    }
                    completed.fetch_add(1, Ordering::SeqCst);
                })
            })
        }));
        let payload = result.expect_err("panic must propagate to the caller");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "shard 3 exploded");
        assert_eq!(completed.load(Ordering::SeqCst), 7, "other shards ran");
    }

    #[test]
    fn panicking_scoped_task_propagates_without_hang() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            with_threads(4, || {
                scope(|s| {
                    s.spawn(|| panic!("task panic"));
                    s.spawn(|| {});
                })
            })
        }));
        assert!(result.is_err(), "scope swallowed a task panic");
    }

    #[test]
    fn nested_scoped_spawns_complete() {
        let counter = AtomicU32::new(0);
        with_threads(4, || {
            scope(|outer| {
                for _ in 0..4 {
                    let counter = &counter;
                    outer.spawn(move || {
                        scope(|inner| {
                            for _ in 0..4 {
                                inner.spawn(move || {
                                    counter.fetch_add(1, Ordering::SeqCst);
                                });
                            }
                        });
                    });
                }
            });
        });
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn nested_run_shards_inside_shards_completes() {
        let out = with_threads(4, || {
            run_shards(4, |i| {
                let inner = run_shards(4, move |j| i * 10 + j);
                inner.into_iter().sum::<usize>()
            })
        });
        assert_eq!(out, vec![6, 46, 86, 126]);
    }

    #[test]
    fn scoped_tasks_borrow_locals() {
        let mut results = vec![0usize; 8];
        with_threads(4, || {
            scope(|s| {
                for (i, slot) in results.iter_mut().enumerate() {
                    s.spawn(move || *slot = i + 1);
                }
            });
        });
        assert_eq!(results, (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn drop_joins_all_workers() {
        let pool = Pool::new(3);
        let out = pool.run_shards_with(4, 8, |i| i + 1);
        assert_eq!(out, (1..=8).collect::<Vec<_>>());
        assert_eq!(pool.shutdown(), 3, "shutdown joined every worker");
    }

    #[test]
    fn env_fallback_is_sane() {
        // 0, unset, empty, and garbage all fall back to hardware threads.
        let hw = hw_threads();
        assert!(hw >= 1);
        assert_eq!(threads_from_env_str(Some("0")), hw);
        assert_eq!(threads_from_env_str(None), hw);
        assert_eq!(threads_from_env_str(Some("")), hw);
        assert_eq!(threads_from_env_str(Some("not-a-number")), hw);
        assert_eq!(threads_from_env_str(Some("4")), 4);
        assert_eq!(threads_from_env_str(Some("10000")), HARD_CAP);
        assert!(max_threads() >= 1);
    }

    #[test]
    fn with_threads_restores_on_unwind() {
        let before = max_threads();
        let _ = catch_unwind(AssertUnwindSafe(|| {
            with_threads(7, || panic!("boom"));
        }));
        assert_eq!(max_threads(), before);
    }
}
