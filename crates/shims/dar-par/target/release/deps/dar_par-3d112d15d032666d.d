/root/repo/crates/shims/dar-par/target/release/deps/dar_par-3d112d15d032666d.d: src/lib.rs

/root/repo/crates/shims/dar-par/target/release/deps/dar_par-3d112d15d032666d: src/lib.rs

src/lib.rs:
