/root/repo/crates/shims/dar-par/target/release/deps/dar_par-c60c94695fb72b37.d: src/lib.rs

/root/repo/crates/shims/dar-par/target/release/deps/libdar_par-c60c94695fb72b37.rlib: src/lib.rs

/root/repo/crates/shims/dar-par/target/release/deps/libdar_par-c60c94695fb72b37.rmeta: src/lib.rs

src/lib.rs:
