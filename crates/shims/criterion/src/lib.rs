//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of criterion its benches use: `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`] / `bench_function`, and
//! [`Bencher::iter`]. Instead of criterion's statistical machinery, each
//! benchmark runs a warmup pass plus `sample_size` timed samples and
//! reports the median wall-clock time per iteration.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Opaque-to-the-optimizer wrapper, as `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn from_parameter(p: impl fmt::Display) -> Self {
        BenchmarkId(p.to_string())
    }

    pub fn new(function_name: impl fmt::Display, p: impl fmt::Display) -> Self {
        BenchmarkId(format!("{function_name}/{p}"))
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    samples: usize,
    median_ns: Option<f64>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup, and an estimate of per-iteration cost to size batches.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().as_nanos().max(1) as f64;
        let iters_per_sample = (1e7 / once).clamp(1.0, 1000.0) as usize;

        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            times.push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        times.sort_by(|a, b| a.partial_cmp(b).expect("benchmark time was NaN"));
        self.median_ns = Some(times[times.len() / 2]);
    }
}

fn human(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let mut b = Bencher {
            samples: self.sample_size,
            median_ns: None,
        };
        f(&mut b);
        match b.median_ns {
            Some(ns) => println!("{}/{label:<24} median {}", self.name, human(ns)),
            None => println!("{}/{label:<24} (no iterations timed)", self.name),
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, label: impl fmt::Display, f: F) {
        self.run(&label.to_string(), f);
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.run(&id.0, |b| f(b, input));
    }

    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            _parent: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, label: impl fmt::Display, f: F) {
        let mut g = self.benchmark_group("bench");
        g.bench_function(label, f);
        g.finish();
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_a_closure() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::from_parameter("x"), &41, |b, &i| {
            b.iter(|| black_box(i + 1));
        });
        g.finish();
    }
}
