//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of proptest its test suites use: the [`proptest!`] macro,
//! range and collection [`Strategy`]s with `prop_map`, [`any`], and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Semantics differ from upstream in two deliberate ways: case generation
//! is seeded from the test name (so failures reproduce without a
//! `proptest-regressions` directory), and failing cases are reported
//! without shrinking.

use std::fmt;

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Deterministic per-test RNG: seeded from an FNV-1a hash of the test
    /// name so every test draws an independent, reproducible stream.
    pub struct TestRng(StdRng);

    impl TestRng {
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the case out; try another.
    Reject,
    /// `prop_assert*` failed with this message.
    Fail(String),
}

/// Runner configuration (`cases` is the only knob honored by the shim).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required per test.
    pub cases: u32,
    /// Cap on `prop_assume!` rejections before the test errors out.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating random values (no shrinking in the shim).
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy producing one fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.gen::<bool>()
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> u8 {
            rng.gen_range(0..=u8::MAX)
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.gen()
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.gen()
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            rng.gen()
        }
    }

    impl Arbitrary for f32 {
        /// Bounded to a friendly range — the workspace's numeric code is
        /// exercised with representative magnitudes, not f32 extremes.
        fn arbitrary(rng: &mut TestRng) -> f32 {
            rng.gen_range(-100.0f32..100.0)
        }
    }

    /// The `any::<T>()` entry point.
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;

    /// Length specification for [`vec`]: a fixed size or a range of sizes.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty size range");
            SizeRange {
                lo,
                hi_exclusive: hi + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject => write!(f, "case rejected by prop_assume!"),
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
        }
    }
}

/// Glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{} ({:?} != {:?})",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// The test-declaration macro. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that generates `config.cases` passing inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                while passed < config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                            rejected += 1;
                            assert!(
                                rejected < config.max_global_rejects,
                                "prop_assume! rejected {rejected} cases; strategy too narrow"
                            );
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {} failed: {msg}", passed + 1);
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, f in -1.0f32..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_strategy_obeys_size(v in prop::collection::vec(0u64..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn prop_map_applies(v in (0u32..10).prop_map(|x| x * 2)) {
            prop_assert!(v % 2 == 0 && v < 20);
        }

        #[test]
        fn assume_filters(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn any_bool_generates(b in any::<bool>()) {
            prop_assert!(b || !b);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u8..=255) {
            prop_assert!(u32::from(x) < 256, "impossible: {}", x);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]
            #[allow(unused)]
            fn always_fails(x in 0u64..4) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
