//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the small slice of `rand` it actually uses: [`rngs::StdRng`] (here a
//! xoshiro256++ generator — deterministic, seedable, and with exportable
//! state for checkpoint/resume), the [`Rng`]/[`RngCore`]/[`SeedableRng`]
//! traits with `gen`/`gen_range`/`gen_bool`, and [`seq::SliceRandom`].
//!
//! Streams differ from upstream `rand` (a different PRNG), but every
//! consumer in this workspace only requires determinism for a fixed seed,
//! which this shim guarantees on all platforms.
//!
//! Beyond the upstream API, [`rngs::StdRng::state`] /
//! [`rngs::StdRng::from_state`] expose the raw generator state so training
//! checkpoints can capture and restore the RNG mid-run exactly.

/// Low-level uniform word generation.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type that can be drawn uniformly from an `Rng` via [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of mantissa entropy.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of mantissa entropy.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` by widening multiply (bias < 2^-64).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p outside [0, 1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the workspace-standard deterministic generator.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// Raw generator state, for exact checkpoint/resume.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from [`Self::state`] output.
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(s.iter().any(|&w| w != 0), "StdRng state must be nonzero");
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{RngCore, SampleRange};

    /// Slice shuffling and choice, as in `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_single(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_single(rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut a = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            a.gen::<f32>();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(0..=4u64);
            assert!(i <= 4);
        }
    }

    #[test]
    fn unit_floats_cover_upper_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut hi = 0.0f32;
        for _ in 0..10_000 {
            let v: f32 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            hi = hi.max(v);
        }
        assert!(hi > 0.99, "suspiciously low maximum {hi}");
    }

    #[test]
    fn shuffle_is_a_seeded_permutation() {
        let mut v: Vec<usize> = (0..20).collect();
        let mut w = v.clone();
        v.shuffle(&mut StdRng::seed_from_u64(5));
        w.shuffle(&mut StdRng::seed_from_u64(5));
        assert_eq!(v, w);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        let mut x = (0..20).collect::<Vec<usize>>();
        x.shuffle(&mut StdRng::seed_from_u64(6));
        assert_ne!(v, x, "different seeds gave identical shuffles");
    }
}
