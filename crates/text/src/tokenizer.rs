//! Whitespace + punctuation tokenizer matching the preprocessing style of
//! the rationalization literature (lowercased, punctuation split off as its
//! own tokens — the `-` of Fig. 2 must be a token of its own).

/// Tokenize text: lowercase, split on whitespace, and detach leading or
/// trailing ASCII punctuation as separate tokens.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    for raw in text.split_whitespace() {
        let lower = raw.to_lowercase();
        let mut rest = lower.as_str();
        let mut leading: Vec<String> = Vec::new();
        while let Some(c) = rest.chars().next() {
            if c.is_ascii_punctuation() && rest.chars().count() > 1 {
                leading.push(c.to_string());
                rest = &rest[c.len_utf8()..];
            } else {
                break;
            }
        }
        let mut trailing: Vec<String> = Vec::new();
        while let Some(c) = rest.chars().last() {
            if c.is_ascii_punctuation() && rest.chars().count() > 1 {
                trailing.push(c.to_string());
                rest = &rest[..rest.len() - c.len_utf8()];
            } else {
                break;
            }
        }
        out.extend(leading);
        if !rest.is_empty() {
            out.push(rest.to_owned());
        }
        out.extend(trailing.into_iter().rev());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::tokenize;

    #[test]
    fn lowercases_and_splits() {
        assert_eq!(tokenize("The Beer POURS"), vec!["the", "beer", "pours"]);
    }

    #[test]
    fn detaches_punctuation() {
        assert_eq!(tokenize("great!"), vec!["great", "!"]);
        assert_eq!(tokenize("(nice)"), vec!["(", "nice", ")"]);
    }

    #[test]
    fn lone_dash_is_a_token() {
        // The Fig. 2 degenerate rationale is the "-" token.
        assert_eq!(tokenize("s - stale"), vec!["s", "-", "stale"]);
    }

    #[test]
    fn keeps_inner_hyphens() {
        assert_eq!(tokenize("off-white head."), vec!["off-white", "head", "."]);
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("   ").is_empty());
    }
}
