//! Whitespace + punctuation tokenizer matching the preprocessing style of
//! the rationalization literature (lowercased, punctuation split off as its
//! own tokens — the `-` of Fig. 2 must be a token of its own).
//!
//! [`tokenize`] is infallible and suits trusted corpora; [`tokenize_checked`]
//! adds the admission checks a serving boundary needs — empty, over-length,
//! and non-ASCII-heavy inputs come back as typed [`DarError`]s instead of
//! flowing on as degenerate (all-UNK or enormous) token sequences.

use dar_tensor::{DarError, DarResult};

/// Admission limits for [`tokenize_checked`].
#[derive(Debug, Clone, Copy)]
pub struct TokenLimits {
    /// Maximum number of tokens the input may produce.
    pub max_tokens: usize,
    /// Maximum characters in any single token (a 10k-character "word" is
    /// garbage, not vocabulary).
    pub max_token_chars: usize,
    /// Maximum fraction of non-ASCII characters (whitespace excluded)
    /// before the input is rejected as outside the corpus's alphabet.
    pub max_non_ascii: f32,
}

impl Default for TokenLimits {
    fn default() -> Self {
        TokenLimits {
            max_tokens: 512,
            max_token_chars: 64,
            max_non_ascii: 0.5,
        }
    }
}

/// Tokenize text: lowercase, split on whitespace, and detach leading or
/// trailing ASCII punctuation as separate tokens.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    for raw in text.split_whitespace() {
        let lower = raw.to_lowercase();
        let mut rest = lower.as_str();
        let mut leading: Vec<String> = Vec::new();
        while let Some(c) = rest.chars().next() {
            if c.is_ascii_punctuation() && rest.chars().count() > 1 {
                leading.push(c.to_string());
                rest = &rest[c.len_utf8()..];
            } else {
                break;
            }
        }
        let mut trailing: Vec<String> = Vec::new();
        while let Some(c) = rest.chars().last() {
            if c.is_ascii_punctuation() && rest.chars().count() > 1 {
                trailing.push(c.to_string());
                rest = &rest[..rest.len() - c.len_utf8()];
            } else {
                break;
            }
        }
        out.extend(leading);
        if !rest.is_empty() {
            out.push(rest.to_owned());
        }
        out.extend(trailing.into_iter().rev());
    }
    out
}

/// [`tokenize`] behind admission checks: rejects whitespace-only input
/// ([`DarError::EmptyInput`]), inputs that are mostly non-ASCII
/// ([`DarError::NonAsciiHeavy`]), and inputs producing too many or too-long
/// tokens ([`DarError::InputTooLong`]). The checks run before and during
/// tokenization, so a hostile input is rejected cheaply instead of
/// materializing an unbounded token list.
pub fn tokenize_checked(text: &str, limits: &TokenLimits) -> DarResult<Vec<String>> {
    let mut chars = 0usize;
    let mut non_ascii = 0usize;
    for c in text.chars().filter(|c| !c.is_whitespace()) {
        chars += 1;
        non_ascii += usize::from(!c.is_ascii());
    }
    if chars == 0 {
        return Err(DarError::EmptyInput);
    }
    if non_ascii as f32 > limits.max_non_ascii * chars as f32 {
        return Err(DarError::NonAsciiHeavy {
            non_ascii,
            len: chars,
        });
    }
    // A token count bound is also a cheap pre-tokenization character bound:
    // every token has at least one character, so more characters than
    // `max_tokens * max_token_chars` cannot fit under both caps.
    let char_cap = limits.max_tokens.saturating_mul(limits.max_token_chars);
    if chars > char_cap {
        return Err(DarError::InputTooLong {
            len: chars,
            cap: char_cap,
        });
    }
    let tokens = tokenize(text);
    if tokens.len() > limits.max_tokens {
        return Err(DarError::InputTooLong {
            len: tokens.len(),
            cap: limits.max_tokens,
        });
    }
    if let Some(long) = tokens
        .iter()
        .find(|t| t.chars().count() > limits.max_token_chars)
    {
        return Err(DarError::InputTooLong {
            len: long.chars().count(),
            cap: limits.max_token_chars,
        });
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::{tokenize, tokenize_checked, TokenLimits};
    use dar_tensor::DarError;

    #[test]
    fn lowercases_and_splits() {
        assert_eq!(tokenize("The Beer POURS"), vec!["the", "beer", "pours"]);
    }

    #[test]
    fn detaches_punctuation() {
        assert_eq!(tokenize("great!"), vec!["great", "!"]);
        assert_eq!(tokenize("(nice)"), vec!["(", "nice", ")"]);
    }

    #[test]
    fn lone_dash_is_a_token() {
        // The Fig. 2 degenerate rationale is the "-" token.
        assert_eq!(tokenize("s - stale"), vec!["s", "-", "stale"]);
    }

    #[test]
    fn keeps_inner_hyphens() {
        assert_eq!(tokenize("off-white head."), vec!["off-white", "head", "."]);
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("   ").is_empty());
    }

    #[test]
    fn checked_accepts_ordinary_text() {
        let toks = tokenize_checked("The beer pours great!", &TokenLimits::default()).unwrap();
        assert_eq!(toks, vec!["the", "beer", "pours", "great", "!"]);
    }

    #[test]
    fn checked_rejects_empty_and_whitespace() {
        for s in ["", "   ", "\t\n  "] {
            assert!(matches!(
                tokenize_checked(s, &TokenLimits::default()),
                Err(DarError::EmptyInput)
            ));
        }
    }

    #[test]
    fn checked_rejects_too_many_tokens() {
        let limits = TokenLimits {
            max_tokens: 4,
            ..Default::default()
        };
        let text = "one two three four five";
        assert!(matches!(
            tokenize_checked(text, &limits),
            Err(DarError::InputTooLong { len: 5, cap: 4 })
        ));
        assert!(tokenize_checked("one two three four", &limits).is_ok());
    }

    #[test]
    fn checked_rejects_monster_tokens() {
        let limits = TokenLimits {
            max_token_chars: 8,
            ..Default::default()
        };
        let text = format!("ok {}", "x".repeat(40));
        assert!(matches!(
            tokenize_checked(&text, &limits),
            Err(DarError::InputTooLong { len: 40, cap: 8 })
        ));
    }

    #[test]
    fn checked_rejects_non_ascii_heavy_but_allows_a_sprinkle() {
        let limits = TokenLimits::default();
        // Mostly non-ASCII: rejected.
        assert!(matches!(
            tokenize_checked("ビール は 最高", &limits),
            Err(DarError::NonAsciiHeavy { .. })
        ));
        // A stray accent inside ASCII text: accepted.
        assert!(tokenize_checked("the café pours great beer today", &limits).is_ok());
    }

    #[test]
    fn checked_rejects_unbounded_character_floods_cheaply() {
        // More characters than max_tokens * max_token_chars can never fit.
        let limits = TokenLimits {
            max_tokens: 4,
            max_token_chars: 4,
            ..Default::default()
        };
        let flood = "a".repeat(1000);
        assert!(matches!(
            tokenize_checked(&flood, &limits),
            Err(DarError::InputTooLong { .. })
        ));
    }
}
