//! `dar-text`: text substrate for the DAR reproduction — vocabulary,
//! tokenization, corpus statistics, and a GloVe-style embedding pretrainer
//! that substitutes for the paper's downloaded GloVe-100d vectors (see
//! DESIGN.md §4).

pub mod corpus;
pub mod glove;
pub mod tokenizer;
pub mod vocab;

pub use corpus::Corpus;
pub use glove::{GloveConfig, GloveTrainer};
pub use tokenizer::{tokenize, tokenize_checked, TokenLimits};
pub use vocab::Vocab;
