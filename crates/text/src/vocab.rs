//! Token ↔ id vocabulary with the special tokens the pipeline relies on.

use std::collections::HashMap;

/// Id of the padding token in every vocabulary.
pub const PAD: usize = 0;
/// Id of the unknown token.
pub const UNK: usize = 1;
/// Id of the `[MASK]` token used by transformer pretraining.
pub const MASK: usize = 2;

/// A fixed vocabulary. Ids 0..3 are reserved for `<pad>`, `<unk>`,
/// `<mask>`.
#[derive(Debug, Clone)]
pub struct Vocab {
    token_to_id: HashMap<String, usize>,
    id_to_token: Vec<String>,
}

impl Vocab {
    /// Build from an iterator of tokens, keeping those with at least
    /// `min_count` occurrences. Order of first appearance is preserved so
    /// vocabularies are deterministic.
    pub fn build<'a>(tokens: impl IntoIterator<Item = &'a str>, min_count: usize) -> Self {
        let mut counts: Vec<(String, usize)> = Vec::new();
        let mut index: HashMap<String, usize> = HashMap::new();
        for tok in tokens {
            match index.get(tok) {
                Some(&i) => counts[i].1 += 1,
                None => {
                    index.insert(tok.to_owned(), counts.len());
                    counts.push((tok.to_owned(), 1));
                }
            }
        }
        let mut v = Vocab::empty();
        for (tok, c) in counts {
            if c >= min_count {
                v.insert(&tok);
            }
        }
        v
    }

    /// A vocabulary containing only the special tokens.
    pub fn empty() -> Self {
        let mut v = Vocab {
            token_to_id: HashMap::new(),
            id_to_token: Vec::new(),
        };
        for special in ["<pad>", "<unk>", "<mask>"] {
            v.insert(special);
        }
        v
    }

    /// Insert a token (idempotent), returning its id.
    pub fn insert(&mut self, token: &str) -> usize {
        if let Some(&id) = self.token_to_id.get(token) {
            return id;
        }
        let id = self.id_to_token.len();
        self.token_to_id.insert(token.to_owned(), id);
        self.id_to_token.push(token.to_owned());
        id
    }

    /// Id for a token, falling back to `<unk>`.
    pub fn id(&self, token: &str) -> usize {
        self.token_to_id.get(token).copied().unwrap_or(UNK)
    }

    /// Token string for an id.
    pub fn token(&self, id: usize) -> &str {
        &self.id_to_token[id]
    }

    /// Whether the token is known.
    pub fn contains(&self, token: &str) -> bool {
        self.token_to_id.contains_key(token)
    }

    /// Vocabulary size including specials.
    pub fn len(&self) -> usize {
        self.id_to_token.len()
    }

    pub fn is_empty(&self) -> bool {
        self.id_to_token.is_empty()
    }

    /// Encode a token sequence to ids (unknowns map to `<unk>`).
    pub fn encode(&self, tokens: &[&str]) -> Vec<usize> {
        tokens.iter().map(|t| self.id(t)).collect()
    }

    /// Decode ids back to tokens.
    pub fn decode(&self, ids: &[usize]) -> Vec<&str> {
        ids.iter().map(|&i| self.token(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specials_are_fixed() {
        let v = Vocab::empty();
        assert_eq!(v.id("<pad>"), PAD);
        assert_eq!(v.id("<unk>"), UNK);
        assert_eq!(v.id("<mask>"), MASK);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn build_respects_min_count() {
        let toks = ["a", "b", "a", "c", "a", "b"];
        let v = Vocab::build(toks, 2);
        assert!(v.contains("a") && v.contains("b"));
        assert!(!v.contains("c"));
    }

    #[test]
    fn unknown_maps_to_unk() {
        let v = Vocab::build(["x"], 1);
        assert_eq!(v.id("never-seen"), UNK);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let v = Vocab::build(["the", "beer", "pours", "amber"], 1);
        let ids = v.encode(&["beer", "pours"]);
        assert_eq!(v.decode(&ids), vec!["beer", "pours"]);
    }

    #[test]
    fn insert_is_idempotent() {
        let mut v = Vocab::empty();
        let a = v.insert("foo");
        let b = v.insert("foo");
        assert_eq!(a, b);
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn deterministic_id_order() {
        let a = Vocab::build(["z", "y", "x"], 1);
        let b = Vocab::build(["z", "y", "x"], 1);
        assert_eq!(a.id("y"), b.id("y"));
    }
}
