//! GloVe-style embedding pretraining (Pennington et al., 2014), the repo's
//! substitute for the paper's downloaded GloVe-100d vectors.
//!
//! Builds a windowed co-occurrence matrix over the (synthetic) corpus and
//! minimizes the weighted least-squares GloVe objective
//! `f(X_ij) (w_i·w̃_j + b_i + b̃_j − ln X_ij)²` with AdaGrad. The final
//! embedding for a token is `w + w̃`, as in the original paper.

use std::collections::HashMap;

use rand::Rng as _;

use dar_tensor::Rng;

use crate::corpus::Corpus;

/// Hyper-parameters of the pretrainer.
#[derive(Debug, Clone, Copy)]
pub struct GloveConfig {
    pub dim: usize,
    pub window: usize,
    pub epochs: usize,
    pub lr: f32,
    /// `x_max` of the weighting function.
    pub x_max: f32,
    /// `alpha` of the weighting function.
    pub alpha: f32,
}

impl Default for GloveConfig {
    fn default() -> Self {
        GloveConfig {
            dim: 100,
            window: 5,
            epochs: 15,
            lr: 0.05,
            x_max: 50.0,
            alpha: 0.75,
        }
    }
}

/// Trains token embeddings from co-occurrence statistics.
pub struct GloveTrainer {
    pub cfg: GloveConfig,
}

impl GloveTrainer {
    pub fn new(cfg: GloveConfig) -> Self {
        GloveTrainer { cfg }
    }

    /// Symmetric windowed co-occurrence counts, weighted by `1/distance`
    /// as in GloVe.
    pub fn cooccurrences(&self, corpus: &Corpus) -> HashMap<(usize, usize), f32> {
        let mut counts: HashMap<(usize, usize), f32> = HashMap::new();
        for doc in &corpus.docs {
            for (i, &wi) in doc.iter().enumerate() {
                let end = (i + 1 + self.cfg.window).min(doc.len());
                for (dist, &wj) in doc[i + 1..end].iter().enumerate() {
                    let w = 1.0 / (dist + 1) as f32;
                    *counts.entry((wi, wj)).or_insert(0.0) += w;
                    *counts.entry((wj, wi)).or_insert(0.0) += w;
                }
            }
        }
        counts
    }

    /// Train and return a `[vocab * dim]` embedding table (row-major),
    /// scaled to unit-ish norms for direct use as frozen embeddings.
    pub fn train(&self, corpus: &Corpus, vocab_len: usize, rng: &mut Rng) -> Vec<f32> {
        let dim = self.cfg.dim;
        let mut pairs: Vec<((usize, usize), f32)> =
            self.cooccurrences(corpus).into_iter().collect();
        // Deterministic order before shuffling with the seeded RNG.
        pairs.sort_by_key(|&((i, j), _)| (i, j));

        let n = vocab_len * dim;
        let scale = 0.5 / dim as f32;
        let mut w: Vec<f32> = (0..n).map(|_| rng.gen_range(-scale..scale)).collect();
        let mut wt: Vec<f32> = (0..n).map(|_| rng.gen_range(-scale..scale)).collect();
        let mut b = vec![0.0f32; vocab_len];
        let mut bt = vec![0.0f32; vocab_len];
        let mut gw = vec![1e-8f32; n];
        let mut gwt = vec![1e-8f32; n];
        let mut gb = vec![1e-8f32; vocab_len];
        let mut gbt = vec![1e-8f32; vocab_len];

        for _ in 0..self.cfg.epochs {
            // Fisher–Yates shuffle of pair order per epoch.
            for k in (1..pairs.len()).rev() {
                let j = rng.gen_range(0..=k);
                pairs.swap(k, j);
            }
            for &((i, j), x) in &pairs {
                let weight = (x / self.cfg.x_max).powf(self.cfg.alpha).min(1.0);
                let wi = &w[i * dim..(i + 1) * dim];
                let wj = &wt[j * dim..(j + 1) * dim];
                let dot: f32 = wi.iter().zip(wj).map(|(a, c)| a * c).sum();
                let diff = dot + b[i] + bt[j] - x.ln();
                let coeff = (weight * diff).clamp(-10.0, 10.0);
                for d in 0..dim {
                    let gi = coeff * wt[j * dim + d];
                    let gj = coeff * w[i * dim + d];
                    gw[i * dim + d] += gi * gi;
                    gwt[j * dim + d] += gj * gj;
                    w[i * dim + d] -= self.cfg.lr * gi / gw[i * dim + d].sqrt();
                    wt[j * dim + d] -= self.cfg.lr * gj / gwt[j * dim + d].sqrt();
                }
                gb[i] += coeff * coeff;
                gbt[j] += coeff * coeff;
                b[i] -= self.cfg.lr * coeff / gb[i].sqrt();
                bt[j] -= self.cfg.lr * coeff / gbt[j].sqrt();
            }
        }

        // Combine main and context vectors.
        let mut out = vec![0.0f32; n];
        for k in 0..n {
            out[k] = w[k] + wt[k];
        }
        out
    }
}

/// Cosine similarity of two embedding rows.
pub fn cosine(table: &[f32], dim: usize, a: usize, b: usize) -> f32 {
    let va = &table[a * dim..(a + 1) * dim];
    let vb = &table[b * dim..(b + 1) * dim];
    let dot: f32 = va.iter().zip(vb).map(|(x, y)| x * y).sum();
    let na: f32 = va.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = vb.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::Corpus;

    /// A corpus where ids 3,4 always co-occur and 5,6 always co-occur,
    /// with no cross-group mixing.
    fn clustered_corpus() -> Corpus {
        let mut docs = Vec::new();
        for i in 0..200 {
            if i % 2 == 0 {
                docs.push(vec![3, 4, 3, 4, 3]);
            } else {
                docs.push(vec![5, 6, 5, 6, 5]);
            }
        }
        Corpus { docs }
    }

    #[test]
    fn cooccurrence_symmetry() {
        let t = GloveTrainer::new(GloveConfig {
            window: 2,
            ..Default::default()
        });
        let counts = t.cooccurrences(&clustered_corpus());
        for (&(i, j), &c) in &counts {
            assert_eq!(counts.get(&(j, i)).copied().unwrap_or(0.0), c);
        }
        assert!(counts.get(&(3, 5)).is_none(), "cross-cluster co-occurrence");
    }

    #[test]
    fn embeddings_cluster_cooccurring_tokens() {
        let cfg = GloveConfig {
            dim: 16,
            window: 2,
            epochs: 20,
            ..Default::default()
        };
        let t = GloveTrainer::new(cfg);
        let mut rng = dar_tensor::rng(0);
        let table = t.train(&clustered_corpus(), 8, &mut rng);
        let within = cosine(&table, 16, 3, 4);
        let across = cosine(&table, 16, 3, 5);
        assert!(
            within > across + 0.15,
            "within-cluster sim {within} not above cross-cluster {across}"
        );
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let cfg = GloveConfig {
            dim: 8,
            epochs: 3,
            ..Default::default()
        };
        let c = clustered_corpus();
        let a = GloveTrainer::new(cfg).train(&c, 8, &mut dar_tensor::rng(9));
        let b = GloveTrainer::new(cfg).train(&c, 8, &mut dar_tensor::rng(9));
        assert_eq!(a, b);
    }

    #[test]
    fn output_is_finite() {
        let cfg = GloveConfig {
            dim: 8,
            epochs: 5,
            ..Default::default()
        };
        let table = GloveTrainer::new(cfg).train(&clustered_corpus(), 8, &mut dar_tensor::rng(1));
        assert!(table.iter().all(|x| x.is_finite()));
    }
}
