//! Corpus assembly: id sequences plus frequency statistics.

use crate::vocab::Vocab;

/// A tokenized, id-encoded corpus.
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    /// One id sequence per document.
    pub docs: Vec<Vec<usize>>,
}

impl Corpus {
    /// Encode pre-tokenized documents against a vocabulary.
    pub fn from_tokens(docs: &[Vec<String>], vocab: &Vocab) -> Self {
        Corpus {
            docs: docs
                .iter()
                .map(|d| d.iter().map(|t| vocab.id(t)).collect())
                .collect(),
        }
    }

    /// Total token count.
    pub fn num_tokens(&self) -> usize {
        self.docs.iter().map(|d| d.len()).sum()
    }

    /// Number of documents.
    pub fn num_docs(&self) -> usize {
        self.docs.len()
    }

    /// Per-id frequency table of size `vocab_len`.
    pub fn frequencies(&self, vocab_len: usize) -> Vec<usize> {
        let mut f = vec![0usize; vocab_len];
        for doc in &self.docs {
            for &id in doc {
                f[id] += 1;
            }
        }
        f
    }

    /// Mean document length in tokens.
    pub fn mean_len(&self) -> f32 {
        if self.docs.is_empty() {
            return 0.0;
        }
        self.num_tokens() as f32 / self.docs.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::Vocab;

    fn sample() -> (Corpus, Vocab) {
        let docs = vec![
            vec!["a".to_owned(), "b".to_owned(), "a".to_owned()],
            vec!["b".to_owned(), "c".to_owned()],
        ];
        let vocab = Vocab::build(docs.iter().flatten().map(|s| s.as_str()), 1);
        (Corpus::from_tokens(&docs, &vocab), vocab)
    }

    #[test]
    fn counts_and_lengths() {
        let (c, _) = sample();
        assert_eq!(c.num_docs(), 2);
        assert_eq!(c.num_tokens(), 5);
        assert!((c.mean_len() - 2.5).abs() < 1e-6);
    }

    #[test]
    fn frequencies_match() {
        let (c, v) = sample();
        let f = c.frequencies(v.len());
        assert_eq!(f[v.id("a")], 2);
        assert_eq!(f[v.id("b")], 2);
        assert_eq!(f[v.id("c")], 1);
    }
}
