//! # dar-serve — resilient inference serving for rationalization models
//!
//! A serving runtime layered on the workspace's building blocks: replica
//! pools batching requests into [`dar_data::Batch`] tensors, the
//! checkpoint format (CRC-validated hot swap), the training guards'
//! collapse band (breaker signal), and the `dar-par` thread policy
//! (compute budget). Requests are routed to per-replica queue shards by
//! tenant hash and rebalanced by work stealing. DESIGN.md §10 documents
//! the single-replica architecture and §14 the scale-out layer; the
//! chaos harnesses in `tests/serving_chaos.rs` and `tests/scale_out.rs`
//! (workspace root) hold the runtime to its invariants under injected
//! faults:
//!
//! * **Exactly one outcome per request** — admission rejection, typed
//!   failure, or an answer; never silence, never two verdicts.
//! * **No torn reads** — a batch runs start-to-finish on one weight
//!   generation; hot swaps apply only between batches.
//! * **Failure is a mode, not a retry** — the circuit breaker steps
//!   through full → predictor-only → shed, and recovers through probes.
//!
//! ```no_run
//! use std::sync::Arc;
//! use dar_serve::{ServeConfig, Server};
//! # fn factory_fn() -> Box<dyn dar_core::RationaleModel> { unimplemented!() }
//! # fn some_review() -> dar_data::Review { unimplemented!() }
//! let server = Server::start(ServeConfig::default(), Arc::new(factory_fn));
//! let ticket = server.submit(some_review());
//! let verdict = ticket.wait(); // exactly one outcome, whatever happened
//! ```

pub mod breaker;
pub mod canary;
pub mod config;
pub mod health;
pub mod online;
pub mod request;
pub mod router;
pub mod server;
pub mod weights;

pub use breaker::{
    BatchPlan, BreakerEvent, BreakerPolicy, BreakerState, CircuitBreaker, TransitionCause,
};
pub use canary::{
    decide, routes_to_canary, ArmStats, CanaryDecision, CanaryOutcome, CanaryPolicy,
    CanarySnapshot, PromotionPhase, RollbackCause,
};
pub use config::{HealthPolicy, RespawnBackoff, ServeConfig, StealPolicy};
pub use health::HealthState;
pub use online::{
    run_online_loop, run_online_loop_durable, LoopReport, OnlineLoopConfig, RoundReport,
};
pub use request::{ServeError, ServeOutput, ServeResult, Ticket};
pub use router::{route_tenant, route_tenant_healthy};
pub use server::{ModelFactory, ReplicaStats, Server, StatsSnapshot};
pub use weights::{WeightSet, WeightStore};
