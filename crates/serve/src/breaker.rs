//! Circuit breaker with explicit degraded modes.
//!
//! The serving runtime never hides a failing model behind retries: it
//! *degrades*. Repeated generator failures (worker panics or rationale
//! collapse, judged by the same [`GuardPolicy`] band the training guards
//! use) step the breaker down a ladder of modes:
//!
//! ```text
//!   Closed ──generator failures──▶ Degraded ──predictor failures──▶ Open
//!     ▲                               │                              │
//!     │◀──────full-path probe ok──────┘            sheds accumulate  │
//!     │                                                              ▼
//!     └──────────probe ok────────── HalfOpen ◀───probe budget────────┘
//! ```
//!
//! * **Closed** — full DAR output (rationale + prediction).
//! * **Degraded** — predictor-only: requests are answered from the
//!   model's full-text path ([`predict_full_text`]), skipping the broken
//!   generator. After a run of degraded successes the breaker risks one
//!   full-path probe batch; success closes it again.
//! * **Open** — nothing is computed; submissions are shed with a typed
//!   error (503-style). After a budget of sheds the breaker moves to
//!   HalfOpen to let one probe through.
//! * **HalfOpen** — a single request is admitted on the full path. Success
//!   closes the breaker; failure re-opens it.
//!
//! Every transition is recorded as a [`BreakerEvent`] so a chaos test can
//! assert the exact scripted sequence.
//!
//! [`predict_full_text`]: dar_core::RationaleModel::predict_full_text

use dar_core::GuardPolicy;

/// Thresholds for the mode ladder.
#[derive(Debug, Clone, Copy)]
pub struct BreakerPolicy {
    /// Consecutive full-path failures (panic or collapse) that trip
    /// Closed → Degraded.
    pub failure_threshold: usize,
    /// Consecutive predictor-path failures that trip Degraded → Open.
    pub degraded_threshold: usize,
    /// Successful degraded responses before risking one full-path probe
    /// from Degraded.
    pub probe_after_degraded: usize,
    /// Shed submissions before Open relaxes to HalfOpen.
    pub probe_after_sheds: usize,
    /// Collapse band shared with the training guards: a full-path batch
    /// whose selected fraction falls in the band counts as a generator
    /// failure.
    pub collapse: GuardPolicy,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy {
            failure_threshold: 3,
            degraded_threshold: 3,
            probe_after_degraded: 16,
            probe_after_sheds: 8,
            collapse: GuardPolicy::default(),
        }
    }
}

/// Breaker states. `Degraded` still serves (predictor-only); `Open` sheds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    Closed,
    Degraded,
    Open,
    HalfOpen,
}

/// Why a transition fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransitionCause {
    /// `failure_threshold` consecutive generator panics/collapses. With
    /// taint tracking on, `origin` names the op that first produced the
    /// non-finite value behind the most recent failure in the streak.
    GeneratorFailures { origin: Option<&'static str> },
    /// `degraded_threshold` consecutive predictor-path failures.
    DegradedFailures,
    /// A full-path probe (from Degraded or HalfOpen) failed.
    ProbeFailed,
    /// `probe_after_sheds` submissions were shed while Open.
    ShedBudget,
    /// A full-path probe succeeded.
    ProbeRecovered,
}

/// One recorded transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerEvent {
    pub from: BreakerState,
    pub to: BreakerState,
    pub cause: TransitionCause,
}

/// What a worker should do with its next batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchPlan {
    /// Full DAR path. `probe: true` means this batch is the breaker's
    /// recovery attempt (capped to one request) and its outcome decides a
    /// transition.
    Full { probe: bool },
    /// Predictor-only path.
    PredictorOnly,
    /// Don't compute — shed whatever is queued.
    Shed,
}

/// The state machine. Callers hold it behind a mutex; methods are cheap.
#[derive(Debug)]
pub struct CircuitBreaker {
    policy: BreakerPolicy,
    state: BreakerState,
    /// Consecutive full-path failures while Closed.
    failures: usize,
    /// Consecutive predictor failures while Degraded.
    degraded_failures: usize,
    /// Successful degraded responses since entering Degraded.
    degraded_served: usize,
    /// Sheds since entering Open.
    sheds: usize,
    /// Taint origin of the most recent full-path failure (if reported).
    last_origin: Option<&'static str>,
    events: Vec<BreakerEvent>,
}

impl CircuitBreaker {
    pub fn new(policy: BreakerPolicy) -> Self {
        CircuitBreaker {
            policy,
            state: BreakerState::Closed,
            failures: 0,
            degraded_failures: 0,
            degraded_served: 0,
            sheds: 0,
            last_origin: None,
            events: Vec::new(),
        }
    }

    pub fn state(&self) -> BreakerState {
        self.state
    }

    pub fn policy(&self) -> &BreakerPolicy {
        &self.policy
    }

    /// Transition log since construction.
    pub fn events(&self) -> &[BreakerEvent] {
        &self.events
    }

    fn transition(&mut self, to: BreakerState, cause: TransitionCause) {
        self.events.push(BreakerEvent {
            from: self.state,
            to,
            cause,
        });
        dar_obs::event(dar_obs::ObsEvent::BreakerTransition {
            from: format!("{:?}", self.state),
            to: format!("{to:?}"),
            cause: format!("{cause:?}"),
        });
        dar_obs::inc("serve.breaker_transitions");
        self.state = to;
        self.failures = 0;
        self.degraded_failures = 0;
        self.degraded_served = 0;
        self.sheds = 0;
    }

    /// Decide the path for the next batch.
    pub fn plan_batch(&self) -> BatchPlan {
        match self.state {
            BreakerState::Closed => BatchPlan::Full { probe: false },
            BreakerState::Degraded => {
                if self.degraded_served >= self.policy.probe_after_degraded {
                    BatchPlan::Full { probe: true }
                } else {
                    BatchPlan::PredictorOnly
                }
            }
            BreakerState::Open => BatchPlan::Shed,
            BreakerState::HalfOpen => BatchPlan::Full { probe: true },
        }
    }

    /// Whether submissions should be rejected outright (Open only —
    /// HalfOpen admits so the probe has something to run on).
    pub fn shedding(&self) -> bool {
        self.state == BreakerState::Open
    }

    /// A full-path batch succeeded. Probes close the breaker; ordinary
    /// successes just clear the failure streak.
    pub fn on_full_success(&mut self, probe: bool) {
        match self.state {
            BreakerState::Closed => {
                self.failures = 0;
                self.last_origin = None;
            }
            BreakerState::Degraded | BreakerState::HalfOpen if probe => {
                self.transition(BreakerState::Closed, TransitionCause::ProbeRecovered);
            }
            _ => {}
        }
    }

    /// A full-path batch failed: worker panic or rationale collapse.
    pub fn on_full_failure(&mut self, probe: bool) {
        self.on_full_failure_with(probe, None);
    }

    /// [`on_full_failure`](Self::on_full_failure) carrying a taint origin:
    /// the op name the numeric taint layer attributed the failure to, if
    /// the worker had one. The Closed → Degraded transition records the
    /// most recent origin of its failure streak.
    pub fn on_full_failure_with(&mut self, probe: bool, origin: Option<&'static str>) {
        if origin.is_some() {
            self.last_origin = origin;
        }
        match self.state {
            BreakerState::Closed => {
                self.failures += 1;
                if self.failures >= self.policy.failure_threshold {
                    let origin = self.last_origin.take();
                    self.transition(
                        BreakerState::Degraded,
                        TransitionCause::GeneratorFailures { origin },
                    );
                }
            }
            BreakerState::HalfOpen => {
                self.transition(BreakerState::Open, TransitionCause::ProbeFailed);
            }
            BreakerState::Degraded if probe => {
                // Failed recovery probe: stay Degraded, restart the
                // served counter so the next probe is earned again.
                self.degraded_served = 0;
            }
            _ => {}
        }
    }

    /// A predictor-only batch succeeded.
    pub fn on_degraded_success(&mut self) {
        if self.state == BreakerState::Degraded {
            self.degraded_failures = 0;
            self.degraded_served += 1;
        }
    }

    /// A predictor-only batch failed (panic, or the model has no
    /// full-text path at all).
    pub fn on_degraded_failure(&mut self) {
        if self.state == BreakerState::Degraded {
            self.degraded_failures += 1;
            if self.degraded_failures >= self.policy.degraded_threshold {
                self.transition(BreakerState::Open, TransitionCause::DegradedFailures);
            }
        }
    }

    /// A submission was shed while Open. Enough sheds earn a HalfOpen
    /// probe slot.
    pub fn on_shed(&mut self) {
        if self.state == BreakerState::Open {
            self.sheds += 1;
            if self.sheds >= self.policy.probe_after_sheds {
                self.transition(BreakerState::HalfOpen, TransitionCause::ShedBudget);
            }
        }
    }

    /// Batch-size cap for the current state (probes run one at a time).
    pub fn batch_cap(&self, configured: usize) -> usize {
        match self.plan_batch() {
            BatchPlan::Full { probe: true } => 1,
            _ => configured,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tight() -> BreakerPolicy {
        BreakerPolicy {
            failure_threshold: 2,
            degraded_threshold: 2,
            probe_after_degraded: 3,
            probe_after_sheds: 2,
            collapse: GuardPolicy::default(),
        }
    }

    #[test]
    fn walks_the_whole_ladder() {
        let mut b = CircuitBreaker::new(tight());
        assert_eq!(b.plan_batch(), BatchPlan::Full { probe: false });

        // Closed → Degraded after two generator failures.
        b.on_full_failure(false);
        assert_eq!(b.state(), BreakerState::Closed);
        b.on_full_failure(false);
        assert_eq!(b.state(), BreakerState::Degraded);
        assert_eq!(b.plan_batch(), BatchPlan::PredictorOnly);

        // Degraded → Open after two predictor failures.
        b.on_degraded_failure();
        b.on_degraded_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.shedding());

        // Open → HalfOpen after the shed budget.
        b.on_shed();
        b.on_shed();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.plan_batch(), BatchPlan::Full { probe: true });
        assert_eq!(b.batch_cap(64), 1);

        // HalfOpen probe success → Closed.
        b.on_full_success(true);
        assert_eq!(b.state(), BreakerState::Closed);

        let causes: Vec<_> = b.events().iter().map(|e| e.cause).collect();
        assert_eq!(
            causes,
            vec![
                TransitionCause::GeneratorFailures { origin: None },
                TransitionCause::DegradedFailures,
                TransitionCause::ShedBudget,
                TransitionCause::ProbeRecovered,
            ]
        );
    }

    #[test]
    fn generator_failure_transition_names_the_taint_origin() {
        let mut b = CircuitBreaker::new(tight());
        b.on_full_failure_with(false, Some("div"));
        b.on_full_failure_with(false, None); // panic with no taint report
        assert_eq!(b.state(), BreakerState::Degraded);
        assert_eq!(
            b.events()[0].cause,
            TransitionCause::GeneratorFailures {
                origin: Some("div")
            }
        );
        // A later clean streak must not resurrect the stale origin.
        b.on_full_success(true);
        assert_eq!(b.state(), BreakerState::Closed);
        b.on_full_failure(false);
        b.on_full_failure(false);
        assert_eq!(
            b.events().last().unwrap().cause,
            TransitionCause::GeneratorFailures { origin: None }
        );
    }

    #[test]
    fn failed_halfopen_probe_reopens() {
        let mut b = CircuitBreaker::new(tight());
        b.on_full_failure(false);
        b.on_full_failure(false);
        b.on_degraded_failure();
        b.on_degraded_failure();
        b.on_shed();
        b.on_shed();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.on_full_failure(true);
        assert_eq!(b.state(), BreakerState::Open);
        // The shed counter restarted: another budget earns another probe.
        b.on_shed();
        b.on_shed();
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn degraded_earns_and_spends_recovery_probes() {
        let mut b = CircuitBreaker::new(tight());
        b.on_full_failure(false);
        b.on_full_failure(false);
        assert_eq!(b.state(), BreakerState::Degraded);

        // Not yet earned a probe.
        for _ in 0..3 {
            assert_eq!(b.plan_batch(), BatchPlan::PredictorOnly);
            b.on_degraded_success();
        }
        assert_eq!(b.plan_batch(), BatchPlan::Full { probe: true });

        // A failed probe restarts the earning period, still Degraded.
        b.on_full_failure(true);
        assert_eq!(b.state(), BreakerState::Degraded);
        assert_eq!(b.plan_batch(), BatchPlan::PredictorOnly);

        // Earn again, succeed → Closed.
        for _ in 0..3 {
            b.on_degraded_success();
        }
        b.on_full_success(true);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn closed_success_clears_failure_streak() {
        let mut b = CircuitBreaker::new(tight());
        b.on_full_failure(false);
        b.on_full_success(false);
        b.on_full_failure(false);
        assert_eq!(b.state(), BreakerState::Closed, "streak was not reset");
        assert!(b.events().is_empty());
    }
}
