//! Atomic hot checkpoint swap.
//!
//! Workers never read weight files. A background loader validates a
//! checkpoint **off the hot path** — CRC-32 footer via
//! [`dar_tensor::serial::load_checkpoint_path`], then tensor count and
//! per-tensor shapes against the serving model — and only a fully
//! validated set is published, by swapping one `Arc` pointer under a
//! mutex. Workers pick the new version up **between batches**: a batch
//! that started on version `n` finishes on version `n`, so a request
//! never sees torn weights, and a corrupted or mismatched offer leaves
//! the runtime serving the old version untouched.

use std::sync::{Arc, Mutex};

use dar_tensor::{serial, DarError, DarResult, Tensor};

/// One immutable, validated generation of model weights.
#[derive(Debug)]
pub struct WeightSet {
    /// Monotonic generation number (starts at 1).
    pub version: u64,
    /// Flat values, in the model's `params()` order.
    pub values: Vec<Vec<f32>>,
    /// Shapes, parallel to `values`.
    pub shapes: Vec<Vec<usize>>,
}

impl WeightSet {
    /// Snapshot live parameters (the initial serving weights).
    pub fn from_params(params: &[Tensor], version: u64) -> Self {
        WeightSet {
            version,
            values: params.iter().map(|p| p.to_vec()).collect(),
            shapes: params.iter().map(|p| p.shape().to_vec()).collect(),
        }
    }

    /// Copy this generation into live parameters (a worker replica).
    pub fn apply(&self, params: &[Tensor]) -> DarResult<()> {
        if params.len() != self.values.len() {
            return Err(DarError::InvalidData(format!(
                "weight set v{} has {} tensors, model has {}",
                self.version,
                self.values.len(),
                params.len()
            )));
        }
        for (i, (p, (v, s))) in params
            .iter()
            .zip(self.values.iter().zip(&self.shapes))
            .enumerate()
        {
            if p.shape() != s.as_slice() {
                return Err(DarError::InvalidData(format!(
                    "weight set v{} tensor {i} is {s:?}, model wants {:?}",
                    self.version,
                    p.shape()
                )));
            }
            p.set_values(v.clone());
        }
        Ok(())
    }
}

/// The published weight generation plus swap bookkeeping.
pub struct WeightStore {
    current: Mutex<Arc<WeightSet>>,
}

impl WeightStore {
    /// Seed the store with the weights the factory model was built with.
    pub fn new(initial: WeightSet) -> Self {
        WeightStore {
            current: Mutex::new(Arc::new(initial)),
        }
    }

    /// The newest validated generation (cheap: one lock, one Arc clone).
    pub fn current(&self) -> Arc<WeightSet> {
        Arc::clone(&self.current.lock().unwrap())
    }

    pub fn version(&self) -> u64 {
        self.current.lock().unwrap().version
    }

    /// Offer a checkpoint file as the next generation. All validation
    /// happens here, on the offering thread: the CRC-verified load, the
    /// tensor count, and every shape (against the currently-published
    /// set). On any error the published set is left untouched. Returns
    /// the new version on success.
    pub fn offer_checkpoint(&self, path: impl AsRef<std::path::Path>) -> DarResult<u64> {
        let loaded = serial::load_checkpoint_path(path)?;
        let cur = self.current();
        if loaded.tensors.len() != cur.values.len() {
            return Err(DarError::InvalidData(format!(
                "offered checkpoint has {} tensors, serving model has {}",
                loaded.tensors.len(),
                cur.values.len()
            )));
        }
        for (i, (t, s)) in loaded.tensors.iter().zip(&cur.shapes).enumerate() {
            if t.shape() != s.as_slice() {
                return Err(DarError::InvalidData(format!(
                    "offered checkpoint tensor {i} is {:?}, serving model wants {s:?}",
                    t.shape()
                )));
            }
        }
        let next = WeightSet {
            version: cur.version + 1,
            values: loaded.tensors.iter().map(|t| t.to_vec()).collect(),
            shapes: cur.shapes.clone(),
        };
        let version = next.version;
        *self.current.lock().unwrap() = Arc::new(next);
        dar_obs::event(dar_obs::ObsEvent::WeightsSwapped { version });
        dar_obs::inc("serve.weight_swaps");
        Ok(version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dar_tensor::serial::Checkpoint;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dar_serve_w_{name}_{}", std::process::id()));
        p
    }

    fn params() -> Vec<Tensor> {
        vec![
            Tensor::param(vec![1.0; 6], &[2, 3]),
            Tensor::param(vec![2.0; 4], &[4]),
        ]
    }

    #[test]
    fn offer_swaps_only_validated_checkpoints() {
        let p = params();
        let store = WeightStore::new(WeightSet::from_params(&p, 1));
        assert_eq!(store.version(), 1);

        // A matching checkpoint flips the version.
        let path = tmpfile("good");
        let good = vec![
            Tensor::param(vec![9.0; 6], &[2, 3]),
            Tensor::param(vec![8.0; 4], &[4]),
        ];
        serial::save_checkpoint_path(&path, &Checkpoint::new(good, Vec::new())).unwrap();
        assert_eq!(store.offer_checkpoint(&path).unwrap(), 2);
        let cur = store.current();
        assert_eq!(cur.version, 2);
        assert_eq!(cur.values[0], vec![9.0; 6]);

        // Wrong shape: rejected, version unchanged.
        let bad = vec![
            Tensor::param(vec![9.0; 6], &[3, 2]),
            Tensor::param(vec![8.0; 4], &[4]),
        ];
        serial::save_checkpoint_path(&path, &Checkpoint::new(bad, Vec::new())).unwrap();
        assert!(store.offer_checkpoint(&path).is_err());
        assert_eq!(store.version(), 2);

        // Wrong tensor count: rejected.
        let short = vec![Tensor::param(vec![9.0; 6], &[2, 3])];
        serial::save_checkpoint_path(&path, &Checkpoint::new(short, Vec::new())).unwrap();
        assert!(store.offer_checkpoint(&path).is_err());
        assert_eq!(store.version(), 2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn apply_round_trips_and_checks_shapes() {
        let p = params();
        let set = WeightSet::from_params(&p, 1);
        let q = params();
        q[0].set_values(vec![0.0; 6]);
        set.apply(&q).unwrap();
        assert_eq!(q[0].to_vec(), vec![1.0; 6]);

        let wrong = vec![Tensor::param(vec![0.0; 6], &[6])];
        assert!(set.apply(&wrong).is_err());
    }
}
