//! Atomic hot checkpoint swap, with a canary slot for the online loop.
//!
//! Workers never read weight files. A background loader validates a
//! checkpoint **off the hot path** — CRC-32 footer via
//! [`dar_tensor::serial::load_checkpoint_path`], then tensor count and
//! per-tensor shapes against the serving model — and only a fully
//! validated set is published, by swapping one `Arc` pointer under a
//! mutex. Workers pick the new version up **between batches**: a batch
//! that started on version `n` finishes on version `n`, so a request
//! never sees torn weights, and a corrupted or mismatched offer leaves
//! the runtime serving the old version untouched.
//!
//! The store holds **two** slots. `current` is what every request is
//! served from by default. `canary` holds a candidate generation that is
//! only reachable through canary-routed batches (DESIGN.md §13); it
//! becomes `current` atomically on [`promote_canary`] or vanishes on
//! [`clear_canary`] — the incumbent pointer is untouched either way, so
//! a rollback is the *absence* of a swap, never a second swap.
//!
//! Every rejected offer is journaled as a typed
//! [`ObsEvent::OfferRejected`] with a stable snake_case cause
//! (`crc_mismatch`, `shape_mismatch`, `tensor_count_mismatch`, `io`), so
//! a silent `Err` return can no longer hide a corrupted producer.
//!
//! [`promote_canary`]: WeightStore::promote_canary
//! [`clear_canary`]: WeightStore::clear_canary
//! [`ObsEvent::OfferRejected`]: dar_obs::ObsEvent::OfferRejected

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use dar_tensor::{serial, DarError, DarResult, Tensor};

/// One immutable, validated generation of model weights.
#[derive(Debug)]
pub struct WeightSet {
    /// Monotonic generation number (starts at 1).
    pub version: u64,
    /// Flat values, in the model's `params()` order.
    pub values: Vec<Vec<f32>>,
    /// Shapes, parallel to `values`.
    pub shapes: Vec<Vec<usize>>,
}

impl WeightSet {
    /// Snapshot live parameters (the initial serving weights).
    pub fn from_params(params: &[Tensor], version: u64) -> Self {
        WeightSet {
            version,
            values: params.iter().map(|p| p.to_vec()).collect(),
            shapes: params.iter().map(|p| p.shape().to_vec()).collect(),
        }
    }

    /// Copy this generation into live parameters (a worker replica).
    pub fn apply(&self, params: &[Tensor]) -> DarResult<()> {
        if params.len() != self.values.len() {
            return Err(DarError::InvalidData(format!(
                "weight set v{} has {} tensors, model has {}",
                self.version,
                self.values.len(),
                params.len()
            )));
        }
        for (i, (p, (v, s))) in params
            .iter()
            .zip(self.values.iter().zip(&self.shapes))
            .enumerate()
        {
            if p.shape() != s.as_slice() {
                return Err(DarError::InvalidData(format!(
                    "weight set v{} tensor {i} is {s:?}, model wants {:?}",
                    self.version,
                    p.shape()
                )));
            }
            p.set_values(v.clone());
        }
        Ok(())
    }
}

struct StoreInner {
    current: Arc<WeightSet>,
    canary: Option<Arc<WeightSet>>,
    /// Version the *next* accepted offer gets — monotonic across both
    /// slots, so a rolled-back candidate's number is never reused.
    next_version: u64,
}

/// The published weight generations plus swap bookkeeping.
///
/// The store holds exactly **one** copy of each generation's values —
/// replicas share it through `Arc`, never clone the floats. A lock-free
/// `published` version hint lets every replica's between-batch sync be
/// one relaxed atomic load in the steady state (see
/// [`refresh`](Self::refresh)), so publication cost is O(1) in the
/// replica count: `offer_checkpoint` / `promote_canary` swap one `Arc`
/// pointer and bump one atomic, and all N replicas observe the new
/// generation on their next batch boundary.
pub struct WeightStore {
    inner: Mutex<StoreInner>,
    /// Version of `current`, readable without the lock. Written only
    /// while holding `inner`, so it can never run ahead of the slot.
    published: AtomicU64,
}

impl WeightStore {
    /// Seed the store with the weights the factory model was built with.
    pub fn new(initial: WeightSet) -> Self {
        let next_version = initial.version + 1;
        WeightStore {
            published: AtomicU64::new(initial.version),
            inner: Mutex::new(StoreInner {
                current: Arc::new(initial),
                canary: None,
                next_version,
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, StoreInner> {
        self.inner.lock().unwrap()
    }

    /// The newest validated incumbent generation (cheap: one lock, one
    /// Arc clone).
    pub fn current(&self) -> Arc<WeightSet> {
        Arc::clone(&self.lock().current)
    }

    /// The candidate generation under canary evaluation, if any.
    pub fn canary(&self) -> Option<Arc<WeightSet>> {
        self.lock().canary.as_ref().map(Arc::clone)
    }

    pub fn version(&self) -> u64 {
        self.lock().current.version
    }

    /// The published incumbent version, without taking the lock — the
    /// replica hot-path check.
    pub fn version_hint(&self) -> u64 {
        self.published.load(Ordering::Acquire)
    }

    /// Between-batch sync for a replica already holding version `have`:
    /// `None` when `have` is still the published incumbent (the steady
    /// state — one atomic load, no lock, no `Arc` clone), otherwise the
    /// incumbent set to apply. Equality, not ordering: a replica coming
    /// off a canary batch holds a *newer* version than the incumbent
    /// and must still be steered back.
    pub fn refresh(&self, have: u64) -> Option<Arc<WeightSet>> {
        if self.version_hint() == have {
            None
        } else {
            Some(self.current())
        }
    }

    /// Validate a checkpoint file against the currently-published set:
    /// CRC-verified load, tensor count, every shape. On failure the typed
    /// rejection is journaled and classified; no slot changes.
    fn validate(&self, path: impl AsRef<std::path::Path>) -> DarResult<WeightSet> {
        let verdict = self.validate_inner(path);
        if let Err(e) = &verdict {
            dar_obs::event(dar_obs::ObsEvent::OfferRejected {
                cause: rejection_cause(e).to_owned(),
                detail: e.to_string(),
            });
            dar_obs::inc("serve.offers_rejected");
        }
        verdict
    }

    fn validate_inner(&self, path: impl AsRef<std::path::Path>) -> DarResult<WeightSet> {
        let loaded = serial::load_checkpoint_path(path)?;
        let cur = self.current();
        if loaded.tensors.len() != cur.values.len() {
            return Err(DarError::InvalidData(format!(
                "offered checkpoint has {} tensors, serving model has {}",
                loaded.tensors.len(),
                cur.values.len()
            )));
        }
        for (i, (t, s)) in loaded.tensors.iter().zip(&cur.shapes).enumerate() {
            if t.shape() != s.as_slice() {
                return Err(DarError::InvalidData(format!(
                    "offered checkpoint tensor {i} is {:?}, serving model wants {s:?}",
                    t.shape()
                )));
            }
        }
        Ok(WeightSet {
            version: 0, // assigned under the lock by the caller
            values: loaded.tensors.iter().map(|t| t.to_vec()).collect(),
            shapes: cur.shapes.clone(),
        })
    }

    /// Offer a checkpoint file as the next incumbent generation. All
    /// validation happens here, on the offering thread. On any error the
    /// published set is left untouched (and the rejection is journaled).
    /// Returns the new version on success.
    pub fn offer_checkpoint(&self, path: impl AsRef<std::path::Path>) -> DarResult<u64> {
        let mut next = self.validate(path)?;
        let mut inner = self.lock();
        next.version = inner.next_version;
        inner.next_version += 1;
        let version = next.version;
        inner.current = Arc::new(next);
        self.published.store(version, Ordering::Release);
        drop(inner);
        dar_obs::event(dar_obs::ObsEvent::WeightsSwapped { version });
        dar_obs::inc("serve.weight_swaps");
        Ok(version)
    }

    /// Offer a checkpoint file as a **candidate**: validated exactly like
    /// [`offer_checkpoint`](Self::offer_checkpoint) but installed into
    /// the canary slot, leaving `current` serving. Returns the
    /// candidate's version.
    pub fn offer_canary(&self, path: impl AsRef<std::path::Path>) -> DarResult<u64> {
        let mut next = self.validate(path)?;
        let mut inner = self.lock();
        next.version = inner.next_version;
        inner.next_version += 1;
        let version = next.version;
        inner.canary = Some(Arc::new(next));
        Ok(version)
    }

    /// Atomically make the canary the incumbent. Returns its version, or
    /// `None` if no canary was installed.
    pub fn promote_canary(&self) -> Option<u64> {
        let mut inner = self.lock();
        let cand = inner.canary.take()?;
        let version = cand.version;
        inner.current = cand;
        self.published.store(version, Ordering::Release);
        drop(inner);
        dar_obs::event(dar_obs::ObsEvent::WeightsSwapped { version });
        dar_obs::inc("serve.weight_swaps");
        Some(version)
    }

    /// Drop the canary, leaving the incumbent untouched (the rollback
    /// path). Returns the discarded version, if any.
    pub fn clear_canary(&self) -> Option<u64> {
        self.lock().canary.take().map(|c| c.version)
    }
}

/// Stable snake_case classifier for a rejected offer, written into the
/// [`OfferRejected`](dar_obs::ObsEvent::OfferRejected) event.
fn rejection_cause(e: &DarError) -> &'static str {
    match e {
        DarError::Corrupt(_) => "crc_mismatch",
        DarError::Io(_) => "io",
        DarError::InvalidData(m) if m.contains("tensors") => "tensor_count_mismatch",
        DarError::InvalidData(_) => "shape_mismatch",
        _ => "invalid",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dar_tensor::serial::Checkpoint;

    fn tmpfile(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dar_serve_w_{name}_{}", std::process::id()));
        p
    }

    fn params() -> Vec<Tensor> {
        vec![
            Tensor::param(vec![1.0; 6], &[2, 3]),
            Tensor::param(vec![2.0; 4], &[4]),
        ]
    }

    #[test]
    fn offer_swaps_only_validated_checkpoints() {
        let p = params();
        let store = WeightStore::new(WeightSet::from_params(&p, 1));
        assert_eq!(store.version(), 1);

        // A matching checkpoint flips the version.
        let path = tmpfile("good");
        let good = vec![
            Tensor::param(vec![9.0; 6], &[2, 3]),
            Tensor::param(vec![8.0; 4], &[4]),
        ];
        serial::save_checkpoint_path(&path, &Checkpoint::new(good, Vec::new())).unwrap();
        assert_eq!(store.offer_checkpoint(&path).unwrap(), 2);
        let cur = store.current();
        assert_eq!(cur.version, 2);
        assert_eq!(cur.values[0], vec![9.0; 6]);

        // Wrong shape: rejected, version unchanged.
        let bad = vec![
            Tensor::param(vec![9.0; 6], &[3, 2]),
            Tensor::param(vec![8.0; 4], &[4]),
        ];
        serial::save_checkpoint_path(&path, &Checkpoint::new(bad, Vec::new())).unwrap();
        assert!(store.offer_checkpoint(&path).is_err());
        assert_eq!(store.version(), 2);

        // Wrong tensor count: rejected.
        let short = vec![Tensor::param(vec![9.0; 6], &[2, 3])];
        serial::save_checkpoint_path(&path, &Checkpoint::new(short, Vec::new())).unwrap();
        assert!(store.offer_checkpoint(&path).is_err());
        assert_eq!(store.version(), 2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn apply_round_trips_and_checks_shapes() {
        let p = params();
        let set = WeightSet::from_params(&p, 1);
        let q = params();
        q[0].set_values(vec![0.0; 6]);
        set.apply(&q).unwrap();
        assert_eq!(q[0].to_vec(), vec![1.0; 6]);

        let wrong = vec![Tensor::param(vec![0.0; 6], &[6])];
        assert!(set.apply(&wrong).is_err());
    }

    #[test]
    fn canary_slot_promotes_or_rolls_back_without_touching_incumbent() {
        let p = params();
        let store = WeightStore::new(WeightSet::from_params(&p, 1));
        let path = tmpfile("canary");
        let cand = vec![
            Tensor::param(vec![7.0; 6], &[2, 3]),
            Tensor::param(vec![6.0; 4], &[4]),
        ];
        serial::save_checkpoint_path(&path, &Checkpoint::new(cand, Vec::new())).unwrap();

        // Install: candidate visible only through the canary slot.
        assert_eq!(store.offer_canary(&path).unwrap(), 2);
        assert_eq!(store.version(), 1, "incumbent untouched by the offer");
        assert_eq!(store.canary().unwrap().version, 2);

        // Rollback is the absence of a swap.
        assert_eq!(store.clear_canary(), Some(2));
        assert!(store.canary().is_none());
        assert_eq!(store.version(), 1);
        assert_eq!(store.current().values[0], vec![1.0; 6]);

        // Versions are never reused: the next candidate is v3, and
        // promotion makes it the incumbent atomically.
        assert_eq!(store.offer_canary(&path).unwrap(), 3);
        assert_eq!(store.promote_canary(), Some(3));
        assert!(store.canary().is_none());
        assert_eq!(store.version(), 3);
        assert_eq!(store.current().values[0], vec![7.0; 6]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn version_hint_tracks_publication_without_the_lock() {
        let p = params();
        let store = WeightStore::new(WeightSet::from_params(&p, 1));
        assert_eq!(store.version_hint(), 1);
        assert!(
            store.refresh(1).is_none(),
            "steady state: hint matches, no set returned"
        );

        let path = tmpfile("hint");
        let next = vec![
            Tensor::param(vec![3.0; 6], &[2, 3]),
            Tensor::param(vec![4.0; 4], &[4]),
        ];
        serial::save_checkpoint_path(&path, &Checkpoint::new(next, Vec::new())).unwrap();
        assert_eq!(store.offer_checkpoint(&path).unwrap(), 2);
        assert_eq!(store.version_hint(), 2);
        assert_eq!(store.refresh(1).unwrap().version, 2, "stale replica syncs");

        // A canary offer does NOT move the hint (incumbent unchanged)…
        assert_eq!(store.offer_canary(&path).unwrap(), 3);
        assert_eq!(store.version_hint(), 2);
        // …a replica holding the canary version is steered back…
        assert_eq!(store.refresh(3).unwrap().version, 2);
        // …and promotion moves the hint atomically with the slot.
        assert_eq!(store.promote_canary(), Some(3));
        assert_eq!(store.version_hint(), 3);
        assert!(store.refresh(3).is_none());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejection_causes_are_classified() {
        assert_eq!(
            rejection_cause(&DarError::Corrupt("crc".into())),
            "crc_mismatch"
        );
        assert_eq!(
            rejection_cause(&DarError::InvalidData("has 3 tensors, model has 2".into())),
            "tensor_count_mismatch"
        );
        assert_eq!(
            rejection_cause(&DarError::InvalidData("tensor 0 is [3, 2]".into())),
            "shape_mismatch"
        );
    }
}
