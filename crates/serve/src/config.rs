//! Serving runtime knobs.

use std::time::Duration;

use crate::breaker::BreakerPolicy;

/// Configuration for [`Server::start`](crate::Server::start).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker replicas. `0` derives a budget from the `dar-par` thread
    /// policy (`DAR_THREADS`, clamped to 4) — each worker owns a full
    /// model replica, so this is a memory knob as much as a CPU one.
    pub workers: usize,
    /// Bounded queue depth; submissions beyond it get `QueueFull`.
    pub queue_cap: usize,
    /// Requests per micro-batch.
    pub max_batch: usize,
    /// How long a worker lingers for more requests after the first one,
    /// trading latency for batch occupancy. Never lingers past a queued
    /// request's deadline.
    pub linger: Duration,
    /// Deadline for [`submit`](crate::Server::submit).
    pub default_deadline: Duration,
    /// Vocabulary bound for admission checks.
    pub vocab_size: usize,
    /// Token-length cap for admission checks.
    pub max_len: usize,
    /// Breaker thresholds.
    pub breaker: BreakerPolicy,
    /// When a worker panic's payload contains this marker, the worker
    /// thread dies for real (exercising supervisor respawn) instead of
    /// recovering in place. Chaos-test hook; leave `None` in production.
    pub lethal_panic_marker: Option<String>,
    /// Supervisor respawn pacing: bounded exponential backoff with
    /// seeded jitter instead of immediate retry, so a crash-looping
    /// replica cannot monopolize a core.
    pub respawn: RespawnBackoff,
}

/// Backoff schedule for supervisor worker respawn. The delay for attempt
/// `n` (1-based, reset after a quiet period) is
/// `min(base · 2^(n-1), cap)` plus up to +25% deterministic jitter drawn
/// from `jitter_seed`, the slot, and the attempt — seeded so chaos
/// replays see identical schedules.
#[derive(Debug, Clone)]
pub struct RespawnBackoff {
    /// First-attempt delay.
    pub base: Duration,
    /// Delay ceiling (before jitter).
    pub cap: Duration,
    /// A worker surviving this long resets its slot's attempt counter.
    pub reset_after: Duration,
    /// Seed for the deterministic jitter hash.
    pub jitter_seed: u64,
}

impl Default for RespawnBackoff {
    fn default() -> Self {
        RespawnBackoff {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
            reset_after: Duration::from_secs(5),
            jitter_seed: 0xDA2_B0FF,
        }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            queue_cap: 256,
            max_batch: 16,
            linger: Duration::from_millis(2),
            default_deadline: Duration::from_secs(5),
            vocab_size: usize::MAX,
            max_len: 512,
            breaker: BreakerPolicy::default(),
            lethal_panic_marker: None,
            respawn: RespawnBackoff::default(),
        }
    }
}

impl ServeConfig {
    /// Effective worker count.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            dar_par::max_threads().clamp(1, 4)
        }
    }
}
