//! Serving runtime knobs.

use std::time::Duration;

use crate::breaker::BreakerPolicy;

/// Configuration for [`Server::start`](crate::Server::start).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Replica pools. Each replica owns a full model copy, one bounded
    /// queue shard, and one micro-batcher thread; tenants are hashed
    /// onto shards by [`route_tenant`](crate::router::route_tenant).
    /// `0` derives a budget from the `dar-par` thread policy
    /// (`DAR_THREADS`, clamped to 4) — this is a memory knob as much as
    /// a CPU one.
    pub replicas: usize,
    /// Bounded queue depth *per shard*; submissions beyond it get
    /// `QueueFull` on their home shard (sharded admission — a hot shard
    /// pushes back without starving siblings).
    pub queue_cap: usize,
    /// Requests per micro-batch.
    pub max_batch: usize,
    /// How long a replica lingers for more requests after the first one,
    /// trading latency for batch occupancy. Never lingers past a queued
    /// request's deadline, and never applies to stolen batches (steals
    /// exist to relieve backlog, not to wait for more of it).
    pub linger: Duration,
    /// Deadline for [`submit`](crate::Server::submit).
    pub default_deadline: Duration,
    /// Vocabulary bound for admission checks.
    pub vocab_size: usize,
    /// Token-length cap for admission checks.
    pub max_len: usize,
    /// Breaker thresholds.
    pub breaker: BreakerPolicy,
    /// When a worker panic's payload contains this marker, the worker
    /// thread dies for real (exercising supervisor respawn) instead of
    /// recovering in place. Chaos-test hook; leave `None` in production.
    pub lethal_panic_marker: Option<String>,
    /// Supervisor respawn pacing: bounded exponential backoff with
    /// seeded jitter instead of immediate retry, so a crash-looping
    /// replica cannot monopolize a core.
    pub respawn: RespawnBackoff,
    /// Work stealing between replica queues.
    pub steal: StealPolicy,
    /// Per-tenant fair-share admission, as a fraction of `queue_cap` a
    /// single tenant may occupy in its home shard. `None` disables the
    /// check (the default — single-tenant traffic is the common case).
    /// Submissions past the cap get `TenantThrottled`.
    pub tenant_fair_share: Option<f32>,
    /// Heartbeat watchdog: stall detection, quarantine, and hedged
    /// re-dispatch for wedged (non-panicking) replicas (DESIGN.md §16).
    pub health: HealthPolicy,
}

/// Watchdog policy for the self-healing layer (DESIGN.md §16). Workers
/// bump a per-replica progress counter at claim/batch/respond
/// boundaries; the supervisor's poll loop doubles as the watchdog tick
/// and walks each replica through `Healthy → Suspect → Quarantined →
/// Probation → Healthy`. The stall budget alone makes a replica
/// *Suspect*; quarantine additionally waits out the deadline-aware
/// grace, so a replica legitimately busy on a huge batch (whose
/// requests still have deadline budget) is never condemned for being
/// slow — only for being silent *past the point its work could still
/// matter*.
#[derive(Debug, Clone)]
pub struct HealthPolicy {
    /// Master switch. `false` restores the pre-§16 supervisor: death
    /// respawn only, no stall detection (the deadline sweep stays — it
    /// is a bug fix, not a health feature).
    pub enabled: bool,
    /// Missed-heartbeat budget: a replica holding work (queued or
    /// in-flight) whose progress counter is silent this long becomes
    /// `Suspect`.
    pub stall_budget: Duration,
    /// Deadline-aware grace: a Suspect replica is `Quarantined` only
    /// once its in-flight requests' latest deadline (plus this grace)
    /// has also passed — "busy on a huge batch" keeps its slot as long
    /// as the batch could still answer within deadline. A Suspect with
    /// *no* in-flight work (wedged between batches while its queue
    /// backs up) is quarantined after `stall_budget + deadline_grace`.
    pub deadline_grace: Duration,
    /// Successful batches a respawned replica must serve in `Probation`
    /// before it is declared `Healthy` again (`replica_rejoined`). `0`
    /// rejoins immediately at respawn.
    pub probation_probes: u64,
    /// Minimum remaining deadline budget for a drained request to be
    /// hedged to a healthy sibling instead of abandoned — re-dispatch
    /// below this is wasted compute.
    pub hedge_min_budget: Duration,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            enabled: true,
            stall_budget: Duration::from_secs(2),
            deadline_grace: Duration::from_millis(500),
            probation_probes: 2,
            hedge_min_budget: Duration::from_millis(1),
        }
    }
}

/// Work-stealing policy for idle replicas (DESIGN.md §14). An idle
/// replica scans sibling shards and claims one whole micro-batch from
/// the longest queue — preserving exactly-one-outcome (the stolen batch
/// moves into the thief's in-flight slot like any claim) and deadline
/// semantics (expired requests are swept before stealing).
#[derive(Debug, Clone)]
pub struct StealPolicy {
    /// Master switch; `false` pins every request to its home replica.
    pub enabled: bool,
    /// Only steal from a sibling holding at least this many requests.
    /// `None` derives `max_batch + 1`: a victim with at most one full
    /// batch queued is left alone, so strictly sequential traffic
    /// (submit → wait → submit) never experiences a steal and stays
    /// byte-deterministic in the obs journal.
    pub min_victim_backlog: Option<usize>,
}

impl Default for StealPolicy {
    fn default() -> Self {
        StealPolicy {
            enabled: true,
            min_victim_backlog: None,
        }
    }
}

/// Backoff schedule for supervisor worker respawn. The delay for attempt
/// `n` (1-based, reset after a quiet period) is
/// `min(base · 2^(n-1), cap)` plus up to +25% deterministic jitter drawn
/// from `jitter_seed`, the slot, and the attempt — seeded so chaos
/// replays see identical schedules.
#[derive(Debug, Clone)]
pub struct RespawnBackoff {
    /// First-attempt delay.
    pub base: Duration,
    /// Delay ceiling (before jitter).
    pub cap: Duration,
    /// A worker surviving this long resets its slot's attempt counter.
    pub reset_after: Duration,
    /// Seed for the deterministic jitter hash.
    pub jitter_seed: u64,
}

impl Default for RespawnBackoff {
    fn default() -> Self {
        RespawnBackoff {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
            reset_after: Duration::from_secs(5),
            jitter_seed: 0xDA2_B0FF,
        }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            replicas: 0,
            queue_cap: 256,
            max_batch: 16,
            linger: Duration::from_millis(2),
            default_deadline: Duration::from_secs(5),
            vocab_size: usize::MAX,
            max_len: 512,
            breaker: BreakerPolicy::default(),
            lethal_panic_marker: None,
            respawn: RespawnBackoff::default(),
            steal: StealPolicy::default(),
            tenant_fair_share: None,
            health: HealthPolicy::default(),
        }
    }
}

impl ServeConfig {
    /// Effective replica count.
    pub fn effective_replicas(&self) -> usize {
        if self.replicas > 0 {
            self.replicas
        } else {
            dar_par::max_threads().clamp(1, 4)
        }
    }

    /// Backlog a sibling must hold before it can be stolen from.
    pub fn steal_threshold(&self) -> usize {
        self.steal
            .min_victim_backlog
            .unwrap_or(self.max_batch.max(1) + 1)
    }

    /// Queued requests one tenant may hold in its home shard, when
    /// fair-share admission is configured.
    pub fn tenant_queue_cap(&self) -> Option<usize> {
        self.tenant_fair_share.map(|share| {
            let cap = (self.queue_cap as f32 * share.clamp(0.0, 1.0)).ceil() as usize;
            cap.max(1)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steal_threshold_defaults_to_one_past_a_full_batch() {
        let cfg = ServeConfig {
            max_batch: 8,
            ..ServeConfig::default()
        };
        assert_eq!(cfg.steal_threshold(), 9);
        let pinned = ServeConfig {
            steal: StealPolicy {
                enabled: true,
                min_victim_backlog: Some(3),
            },
            ..cfg
        };
        assert_eq!(pinned.steal_threshold(), 3);
    }

    #[test]
    fn tenant_queue_cap_is_a_clamped_ceil_share() {
        let cfg = ServeConfig {
            queue_cap: 16,
            tenant_fair_share: Some(0.25),
            ..ServeConfig::default()
        };
        assert_eq!(cfg.tenant_queue_cap(), Some(4));
        let tiny = ServeConfig {
            queue_cap: 16,
            tenant_fair_share: Some(0.0001),
            ..ServeConfig::default()
        };
        assert_eq!(tiny.tenant_queue_cap(), Some(1), "never caps below 1");
        let off = ServeConfig::default();
        assert_eq!(off.tenant_queue_cap(), None);
    }
}
