//! Canary evaluation: the promotion state machine's comparison contract.
//!
//! A candidate generation serves a deterministic slice of traffic
//! (requests whose submission sequence number satisfies
//! `seq % slice_modulus == 0`) while the incumbent serves the rest. Both
//! arms accumulate *commutative* counts — correct labels, rationale
//! confusion cells, degraded/fault/error tallies — against the planted
//! ground truth each [`Review`] carries, so the verdict is independent
//! of worker interleaving and thread budget. The pure [`decide`]
//! function turns one [`CanarySnapshot`] into promote-or-rollback;
//! the server applies it atomically (DESIGN.md §13).
//!
//! Wall-clock latency is the one non-deterministic signal, so the p99
//! gate is opt-in ([`CanaryPolicy::max_p99_inflation`], default `None`)
//! and the deterministic chaos suite leaves it off.

use dar_data::Review;

use crate::request::ServeOutput;

/// SplitMix64 — the deterministic hash behind canary routing and the
/// supervisor's respawn jitter.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic canary routing: request `seq` goes to the candidate iff
/// `splitmix64(seq) % slice_modulus == 0`. Hashing the sequence number
/// (instead of using it raw) decorrelates the slice from any periodicity
/// in the traffic — the synthetic datasets alternate labels for exact
/// balance, and a raw `seq % 2` would hand each arm a disjoint label
/// population.
pub fn routes_to_canary(seq: u64, slice_modulus: u64) -> bool {
    slice_modulus >= 2 && splitmix64(seq).is_multiple_of(slice_modulus)
}

/// Promotion state machine phases (journaled via `ObsEvent`s:
/// `canary_started`, `candidate_promoted`, `candidate_rolled_back`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromotionPhase {
    /// A checkpoint exists but has not been offered yet.
    Candidate,
    /// Serving the canary slice, accumulating arm stats.
    Canary,
    /// The candidate won and is now the incumbent.
    Promoted,
    /// The candidate lost; the incumbent was never displaced.
    RolledBack,
}

/// Why a candidate was rolled back. `as_str` values are stable — they
/// appear in the byte-compared deterministic journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RollbackCause {
    /// Candidate accuracy fell more than `max_acc_drop` below incumbent.
    AccuracyRegressed,
    /// Candidate rationale-F1 fell more than `max_f1_drop` below incumbent.
    RationaleRegressed,
    /// Candidate produced more degraded / non-finite / errored answers
    /// than the fault budget allows.
    CandidateFaults,
    /// Candidate p99 latency inflated past the opt-in multiplier.
    LatencyInflated,
    /// The canary was aborted before a verdict (operator or safety cap).
    Aborted,
    /// The verdict said promote, but the durable journal could not
    /// commit the promotion record — without a durable record the
    /// promotion must not take effect (DESIGN.md §15).
    DurabilityFailed,
    /// A replica was quarantined while the canary window was open
    /// (DESIGN.md §16). Arm stats collected across a quarantine mix
    /// healthy and wedged traffic, so the round is voided rather than
    /// judged on corrupted numbers.
    ReplicaQuarantined,
}

impl RollbackCause {
    pub fn as_str(&self) -> &'static str {
        match self {
            RollbackCause::AccuracyRegressed => "accuracy_regressed",
            RollbackCause::RationaleRegressed => "rationale_regressed",
            RollbackCause::CandidateFaults => "candidate_faults",
            RollbackCause::LatencyInflated => "latency_inflated",
            RollbackCause::Aborted => "aborted",
            RollbackCause::DurabilityFailed => "durability_failed",
            RollbackCause::ReplicaQuarantined => "replica_quarantined",
        }
    }
}

/// The settled outcome of one canary, handed to the durability
/// pre-commit hook *before* it takes effect in memory: the hook gets to
/// journal the decision (or veto a promotion by failing).
#[derive(Debug, Clone)]
pub struct CanaryDecision {
    /// WeightStore version of the candidate under evaluation.
    pub candidate_version: u64,
    /// True when the verdict is promotion.
    pub promote: bool,
    /// The rollback cause when `promote` is false.
    pub cause: Option<RollbackCause>,
}

impl std::fmt::Display for RollbackCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Verdict thresholds for one canary evaluation.
#[derive(Debug, Clone)]
pub struct CanaryPolicy {
    /// Requests with `seq % slice_modulus == 0` go to the candidate;
    /// clamped to ≥ 2 so the incumbent always keeps traffic.
    pub slice_modulus: u64,
    /// Minimum outcomes (answers + errors) *per arm* before a verdict.
    pub window: u64,
    /// Tolerated accuracy drop, candidate vs incumbent.
    pub max_acc_drop: f32,
    /// Tolerated rationale-F1 drop, candidate vs incumbent.
    pub max_f1_drop: f32,
    /// Degraded + non-finite + errored answers the candidate arm may
    /// produce before it is rolled back outright.
    pub max_candidate_faults: u64,
    /// Opt-in p99 gate: rollback if candidate p99 exceeds incumbent p99
    /// times this factor. `None` (default) keeps the verdict free of
    /// wall-clock input, which the determinism contract requires.
    pub max_p99_inflation: Option<f64>,
}

impl Default for CanaryPolicy {
    fn default() -> Self {
        CanaryPolicy {
            slice_modulus: 2,
            window: 48,
            max_acc_drop: 0.02,
            max_f1_drop: 0.05,
            max_candidate_faults: 0,
            max_p99_inflation: None,
        }
    }
}

/// Commutative per-arm counters: insensitive to response ordering.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ArmStats {
    /// Answered requests (full or degraded).
    pub served: u64,
    /// Answers whose label matched the review's planted label.
    pub correct: u64,
    /// Degraded answers (collapse fallback or non-finite logits).
    pub degraded: u64,
    /// Answers produced while the numeric taint latch held an origin.
    pub faults: u64,
    /// Requests that resolved to a typed failure instead of an answer.
    pub errors: u64,
    /// Rationale confusion cells vs the planted token-level rationale.
    pub tp: u64,
    pub fp: u64,
    pub fneg: u64,
    /// End-to-end latencies (µs), capped; only read by the opt-in gate.
    pub latencies_us: Vec<u64>,
}

impl ArmStats {
    /// Total verdicts this arm has produced — what the window counts.
    pub fn outcomes(&self) -> u64 {
        self.served + self.errors
    }

    pub fn accuracy(&self) -> f32 {
        if self.served == 0 {
            0.0
        } else {
            self.correct as f32 / self.served as f32
        }
    }

    pub fn rationale_f1(&self) -> f32 {
        let denom = 2 * self.tp + self.fp + self.fneg;
        if denom == 0 {
            0.0
        } else {
            2.0 * self.tp as f32 / denom as f32
        }
    }

    pub fn p99_us(&self) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let mut lat = self.latencies_us.clone();
        lat.sort_unstable();
        lat[((lat.len() as f64 - 1.0) * 0.99).round() as usize]
    }

    pub(crate) fn record_output(
        &mut self,
        review: &Review,
        out: &ServeOutput,
        tainted: bool,
        latency_us: u64,
    ) {
        self.served += 1;
        if out.label == review.label {
            self.correct += 1;
        }
        if out.degraded {
            self.degraded += 1;
        } else {
            for (&gold, &got) in review.rationale.iter().zip(&out.rationale) {
                match (gold, got) {
                    (true, true) => self.tp += 1,
                    (false, true) => self.fp += 1,
                    (true, false) => self.fneg += 1,
                    (false, false) => {}
                }
            }
        }
        if tainted {
            self.faults += 1;
        }
        if self.latencies_us.len() < 100_000 {
            self.latencies_us.push(latency_us);
        }
    }

    pub(crate) fn record_error(&mut self, n: u64, tainted: bool) {
        self.errors += n;
        if tainted {
            self.faults += n;
        }
    }
}

/// Both arms at one instant, plus the versions they identify.
#[derive(Debug, Clone)]
pub struct CanarySnapshot {
    pub candidate_version: u64,
    pub incumbent_version: u64,
    pub candidate: ArmStats,
    pub incumbent: ArmStats,
}

/// Terminal record of one canary evaluation.
#[derive(Debug, Clone)]
pub struct CanaryOutcome {
    /// The candidate's version.
    pub version: u64,
    /// `Promoted` or `RolledBack`.
    pub phase: PromotionPhase,
    /// Set iff `phase == RolledBack`.
    pub cause: Option<RollbackCause>,
    /// The arm stats the verdict was computed from.
    pub snapshot: CanarySnapshot,
}

/// The pure comparison contract: gates are checked in severity order
/// (faults, accuracy, rationale-F1, then the opt-in latency gate), so
/// the journaled cause is deterministic when several would fire.
pub fn decide(policy: &CanaryPolicy, snap: &CanarySnapshot) -> Result<(), RollbackCause> {
    let c = &snap.candidate;
    let i = &snap.incumbent;
    if c.degraded + c.faults + c.errors > policy.max_candidate_faults {
        return Err(RollbackCause::CandidateFaults);
    }
    if c.accuracy() + policy.max_acc_drop < i.accuracy() {
        return Err(RollbackCause::AccuracyRegressed);
    }
    if c.rationale_f1() + policy.max_f1_drop < i.rationale_f1() {
        return Err(RollbackCause::RationaleRegressed);
    }
    if let Some(mult) = policy.max_p99_inflation {
        if i.p99_us() > 0 && c.p99_us() as f64 > i.p99_us() as f64 * mult {
            return Err(RollbackCause::LatencyInflated);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arm(served: u64, correct: u64, tp: u64, fp: u64, fneg: u64) -> ArmStats {
        ArmStats {
            served,
            correct,
            tp,
            fp,
            fneg,
            ..ArmStats::default()
        }
    }

    fn snap(candidate: ArmStats, incumbent: ArmStats) -> CanarySnapshot {
        CanarySnapshot {
            candidate_version: 2,
            incumbent_version: 1,
            candidate,
            incumbent,
        }
    }

    #[test]
    fn equal_arms_promote() {
        let s = snap(arm(50, 40, 10, 2, 3), arm(50, 40, 10, 2, 3));
        assert_eq!(decide(&CanaryPolicy::default(), &s), Ok(()));
    }

    #[test]
    fn gates_fire_in_severity_order() {
        let pol = CanaryPolicy::default();

        // A single degraded answer outweighs a better accuracy.
        let mut c = arm(50, 50, 10, 0, 0);
        c.degraded = 1;
        let s = snap(c, arm(50, 30, 10, 2, 3));
        assert_eq!(decide(&pol, &s), Err(RollbackCause::CandidateFaults));

        // Accuracy before rationale-F1.
        let s = snap(arm(50, 30, 0, 50, 50), arm(50, 45, 10, 0, 0));
        assert_eq!(decide(&pol, &s), Err(RollbackCause::AccuracyRegressed));

        // Rationale-F1 alone.
        let s = snap(arm(50, 45, 0, 50, 50), arm(50, 45, 10, 0, 0));
        assert_eq!(decide(&pol, &s), Err(RollbackCause::RationaleRegressed));
    }

    #[test]
    fn accuracy_tolerance_is_respected() {
        let pol = CanaryPolicy::default(); // max_acc_drop 0.02
        let s = snap(arm(100, 79, 10, 1, 1), arm(100, 80, 10, 1, 1));
        assert_eq!(decide(&pol, &s), Ok(()), "1% drop is inside tolerance");
        let s = snap(arm(100, 70, 10, 1, 1), arm(100, 80, 10, 1, 1));
        assert_eq!(decide(&pol, &s), Err(RollbackCause::AccuracyRegressed));
    }

    #[test]
    fn latency_gate_is_opt_in() {
        let mut c = arm(50, 40, 10, 2, 3);
        c.latencies_us = vec![10_000; 50];
        let mut i = arm(50, 40, 10, 2, 3);
        i.latencies_us = vec![100; 50];
        let s = snap(c, i);
        assert_eq!(
            decide(&CanaryPolicy::default(), &s),
            Ok(()),
            "default policy never reads wall-clock"
        );
        let pol = CanaryPolicy {
            max_p99_inflation: Some(10.0),
            ..CanaryPolicy::default()
        };
        assert_eq!(decide(&pol, &s), Err(RollbackCause::LatencyInflated));
    }

    #[test]
    fn f1_counts_match_the_usual_definition() {
        let a = arm(1, 1, 6, 2, 2);
        assert!((a.rationale_f1() - 0.75).abs() < 1e-6);
        assert_eq!(ArmStats::default().rationale_f1(), 0.0);
        assert_eq!(ArmStats::default().accuracy(), 0.0);
    }
}
