//! Sharded request routing: tenant → home replica shard.
//!
//! Routing is a pure hash — `splitmix64(tenant ^ SALT) % replicas` — so
//! the assignment is stable across restarts and across processes (no
//! in-memory state to lose), uniform enough that 64 synthetic tenants
//! land within 2× of an even spread on 2/4/8 shards (enforced by
//! `tests/prop_invariants.rs`), and independent of the `dar-par` thread
//! budget (the hash never consults it). A sticky home shard is what
//! makes per-tenant admission meaningful: a tenant's fair-share count
//! lives entirely in one shard's queue, so the check needs no
//! cross-shard coordination.

use crate::canary::splitmix64;

/// Domain-separation salt: keeps the router's hash stream disjoint from
/// the canary slice hash (which also feeds seqs through `splitmix64`),
/// so tenant ids and sequence numbers can never alias into correlated
/// routing decisions.
const ROUTER_SALT: u64 = 0xDA2_517EA;

/// Home shard for `tenant` among `replicas` shards. Pure, stable,
/// thread-budget-independent. `replicas = 0` is treated as 1.
pub fn route_tenant(tenant: u64, replicas: usize) -> usize {
    let n = replicas.max(1) as u64;
    (splitmix64(tenant ^ ROUTER_SALT) % n) as usize
}

/// Second-level salt for the quarantine detour hash, domain-separated
/// from both `ROUTER_SALT` and the canary slice hash so the detour pick
/// can't correlate with the home-shard pick.
const REROUTE_SALT: u64 = 0xDA2_4EA17;

/// Health-aware shard for `tenant`: the home shard from [`route_tenant`]
/// unless that shard is quarantined (`quarantined` is a bitmask over
/// slots 0..64), in which case the tenant detours to a deterministic
/// pick among the healthy slots. Pure in its three arguments — the same
/// mask always yields the same detour, preserving per-tenant FIFO
/// stickiness among the healthy set — and `mask == 0` is exactly
/// `route_tenant`, so a rejoined replica restores original routing.
/// With no healthy slot at all the home shard is returned (the caller's
/// drain policy owns that request's fate, not the router).
pub fn route_tenant_healthy(tenant: u64, replicas: usize, quarantined: u64) -> usize {
    let n = replicas.max(1);
    let home = route_tenant(tenant, n);
    // Slots past 63 can't be expressed in the mask and are never
    // quarantined; mask off phantom bits at or above `n` likewise.
    if home >= 64 {
        return home;
    }
    let expressible = if n >= 64 { u64::MAX } else { (1u64 << n) - 1 };
    let quarantined = quarantined & expressible;
    if quarantined & (1u64 << home) == 0 {
        return home;
    }
    let healthy: Vec<usize> = (0..n.min(64))
        .filter(|s| quarantined & (1u64 << s) == 0)
        .collect();
    if healthy.is_empty() {
        return home;
    }
    healthy[(splitmix64(tenant ^ REROUTE_SALT) % healthy.len() as u64) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_stable_and_in_range() {
        for t in 0..256u64 {
            for r in 1..=8usize {
                let shard = route_tenant(t, r);
                assert!(shard < r);
                assert_eq!(shard, route_tenant(t, r), "routing must be pure");
            }
        }
        assert_eq!(route_tenant(7, 0), 0, "zero shards degrades to one");
    }

    #[test]
    fn healthy_routing_degrades_and_restores() {
        for t in 0..128u64 {
            for r in [1usize, 2, 4, 8] {
                let home = route_tenant(t, r);
                assert_eq!(
                    route_tenant_healthy(t, r, 0),
                    home,
                    "empty mask must be exactly route_tenant"
                );
                let mask = 1u64 << home;
                let detour = route_tenant_healthy(t, r, mask);
                if r == 1 {
                    assert_eq!(detour, home, "no healthy sibling: home is returned");
                } else {
                    assert_ne!(detour, home, "detour must leave the quarantined shard");
                    assert!(detour < r);
                }
                assert_eq!(
                    detour,
                    route_tenant_healthy(t, r, mask),
                    "detour must be deterministic"
                );
            }
        }
        // All shards quarantined: the router hands back home and lets the
        // drain policy decide.
        assert_eq!(route_tenant_healthy(9, 4, 0b1111), route_tenant(9, 4));
    }

    #[test]
    fn sixty_four_tenants_spread_within_two_x() {
        for r in [2usize, 4, 8] {
            let mut counts = vec![0usize; r];
            for t in 0..64u64 {
                counts[route_tenant(t, r)] += 1;
            }
            let even = 64 / r;
            let max = *counts.iter().max().unwrap();
            let min = *counts.iter().min().unwrap();
            assert!(
                max <= 2 * even,
                "{r} shards: max load {max} exceeds 2x even share {even} ({counts:?})"
            );
            assert!(min >= 1, "{r} shards: a shard got no tenants ({counts:?})");
        }
    }
}
