//! Sharded request routing: tenant → home replica shard.
//!
//! Routing is a pure hash — `splitmix64(tenant ^ SALT) % replicas` — so
//! the assignment is stable across restarts and across processes (no
//! in-memory state to lose), uniform enough that 64 synthetic tenants
//! land within 2× of an even spread on 2/4/8 shards (enforced by
//! `tests/prop_invariants.rs`), and independent of the `dar-par` thread
//! budget (the hash never consults it). A sticky home shard is what
//! makes per-tenant admission meaningful: a tenant's fair-share count
//! lives entirely in one shard's queue, so the check needs no
//! cross-shard coordination.

use crate::canary::splitmix64;

/// Domain-separation salt: keeps the router's hash stream disjoint from
/// the canary slice hash (which also feeds seqs through `splitmix64`),
/// so tenant ids and sequence numbers can never alias into correlated
/// routing decisions.
const ROUTER_SALT: u64 = 0xDA2_517EA;

/// Home shard for `tenant` among `replicas` shards. Pure, stable,
/// thread-budget-independent. `replicas = 0` is treated as 1.
pub fn route_tenant(tenant: u64, replicas: usize) -> usize {
    let n = replicas.max(1) as u64;
    (splitmix64(tenant ^ ROUTER_SALT) % n) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_stable_and_in_range() {
        for t in 0..256u64 {
            for r in 1..=8usize {
                let shard = route_tenant(t, r);
                assert!(shard < r);
                assert_eq!(shard, route_tenant(t, r), "routing must be pure");
            }
        }
        assert_eq!(route_tenant(7, 0), 0, "zero shards degrades to one");
    }

    #[test]
    fn sixty_four_tenants_spread_within_two_x() {
        for r in [2usize, 4, 8] {
            let mut counts = vec![0usize; r];
            for t in 0..64u64 {
                counts[route_tenant(t, r)] += 1;
            }
            let even = 64 / r;
            let max = *counts.iter().max().unwrap();
            let min = *counts.iter().min().unwrap();
            assert!(
                max <= 2 * even,
                "{r} shards: max load {max} exceeds 2x even share {even} ({counts:?})"
            );
            assert!(min >= 1, "{r} shards: a shard got no tenants ({counts:?})");
        }
    }
}
