//! Self-healing supervision: heartbeat ledger, stall classification, and
//! the quarantine state machine (DESIGN.md §16).
//!
//! The runtime already survives *death* — a panicking worker drops a
//! `DeathNotice` and the supervisor respawns it. This module covers the
//! failure class death-based supervision cannot see: a worker that
//! *wedges* without panicking (blocked on I/O, livelocked, stuck in a
//! pathological input) and silently strands every request routed to its
//! shard. Workers bump a per-replica progress counter at the
//! claim/batch/respond boundaries; the supervisor's existing poll loop
//! doubles as the watchdog tick and walks each replica through
//!
//! ```text
//! Healthy → Suspect → Quarantined → Probation → Healthy
//! ```
//!
//! The decision logic here is pure (`Instant`s in, verdicts out) so it
//! can be unit-tested without threads; the supervisor in `server.rs`
//! owns the side effects (drain, hedge, respawn, routing mask).

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::{Duration, Instant};

use crate::config::HealthPolicy;

/// Where a replica stands in the self-healing state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Serving normally.
    Healthy,
    /// Holding work but silent past the missed-heartbeat budget; the
    /// deadline-aware grace clock is running.
    Suspect,
    /// Abandoned: routing detours around it, its queue is force-drained,
    /// its thread is disowned, a replacement is pending under backoff.
    Quarantined,
    /// Respawned and serving again, but not yet trusted: it must answer
    /// `probation_probes` batches before rejoining the healthy set.
    Probation,
}

impl HealthState {
    /// Stable snake_case name (mirrors the ObsEvent kinds).
    pub fn as_str(&self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Suspect => "suspect",
            HealthState::Quarantined => "quarantined",
            HealthState::Probation => "probation",
        }
    }

    pub(crate) fn as_u8(self) -> u8 {
        match self {
            HealthState::Healthy => 0,
            HealthState::Suspect => 1,
            HealthState::Quarantined => 2,
            HealthState::Probation => 3,
        }
    }

    pub(crate) fn from_u8(v: u8) -> HealthState {
        match v {
            1 => HealthState::Suspect,
            2 => HealthState::Quarantined,
            3 => HealthState::Probation,
            _ => HealthState::Healthy,
        }
    }
}

impl std::fmt::Display for HealthState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Shared per-replica health ledger: written by the worker (heartbeats)
/// and the supervisor (state, episode counters), read by `stats()`.
#[derive(Debug, Default)]
pub(crate) struct HealthSlot {
    /// Monotonic progress counter — the heartbeat. Bumped at claim,
    /// batch-park, and respond boundaries; the watchdog compares
    /// successive reads, so the absolute value is meaningless.
    pub progress: AtomicU64,
    /// Batches answered successfully (every request got `Ok`). Probation
    /// counts these as probes.
    pub ok_batches: AtomicU64,
    /// Current [`HealthState`] as `u8`.
    pub state: AtomicU8,
    /// Times this replica has been quarantined.
    pub quarantines: AtomicU64,
    /// Requests hedged *away from* this replica at quarantine drain.
    pub hedged_away: AtomicU64,
}

impl HealthSlot {
    pub fn beat(&self) {
        self.progress.fetch_add(1, Ordering::Relaxed);
    }

    pub fn state(&self) -> HealthState {
        HealthState::from_u8(self.state.load(Ordering::SeqCst))
    }

    pub fn set_state(&self, s: HealthState) {
        self.state.store(s.as_u8(), Ordering::SeqCst);
    }
}

/// What the watchdog should do about one replica this tick. Pure verdict
/// from [`classify_stall`]; the supervisor applies it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StallVerdict {
    /// Progressing, or idle with nothing to do.
    Fine,
    /// Silent past the stall budget while holding work.
    Suspect,
    /// Silent past the budget *and* past the deadline-aware grace: no
    /// outcome it could still produce would matter. Condemn it.
    Quarantine,
}

/// Classify a replica's silence. `last_progress_at` is when the watchdog
/// last saw its progress counter move (or last saw it idle);
/// `latest_inflight_deadline` is the latest deadline among requests
/// parked in its in-flight slot, if any.
///
/// A replica busy on a huge batch is Suspect once silent past
/// `stall_budget`, but is only Quarantined once even its
/// longest-deadlined in-flight request (plus `deadline_grace`) could no
/// longer be answered in time — slow is not wedged. A silent replica
/// with work queued but *nothing* in flight (wedged between batches) has
/// no deadline to wait out, so it is condemned `stall_budget +
/// deadline_grace` after its last progress.
pub(crate) fn classify_stall(
    now: Instant,
    last_progress_at: Instant,
    latest_inflight_deadline: Option<Instant>,
    policy: &HealthPolicy,
) -> StallVerdict {
    let suspect_at = last_progress_at + policy.stall_budget;
    if now < suspect_at {
        return StallVerdict::Fine;
    }
    let condemn_at = match latest_inflight_deadline {
        Some(deadline) => suspect_at.max(deadline + policy.deadline_grace),
        None => suspect_at + policy.deadline_grace,
    };
    if now >= condemn_at {
        StallVerdict::Quarantine
    } else {
        StallVerdict::Suspect
    }
}

/// Fate of one request force-drained off a quarantined replica. Pure
/// verdict from [`drain_verdict`]; never `Lost` — every stranded request
/// resolves to exactly one typed outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DrainFate {
    /// Deadline already passed: `ServeError::DeadlineExceeded`.
    Expired,
    /// Re-dispatch to a healthy sibling — deadline budget remains, the
    /// request has not been hedged before, and a sibling exists.
    Hedge,
    /// Give up deliberately: `ServeError::Abandoned`.
    Abandon,
}

/// Decide what happens to a stranded request: `remaining` is its
/// deadline budget (`None` when already expired), `already_hedged` caps
/// re-dispatch at one hop, `has_healthy_target` says whether any healthy
/// sibling exists to hedge to.
pub(crate) fn drain_verdict(
    remaining: Option<Duration>,
    already_hedged: bool,
    has_healthy_target: bool,
    policy: &HealthPolicy,
) -> DrainFate {
    match remaining {
        None => DrainFate::Expired,
        Some(budget) => {
            if !already_hedged && has_healthy_target && budget >= policy.hedge_min_budget {
                DrainFate::Hedge
            } else {
                DrainFate::Abandon
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> HealthPolicy {
        HealthPolicy {
            enabled: true,
            stall_budget: Duration::from_millis(100),
            deadline_grace: Duration::from_millis(40),
            probation_probes: 2,
            hedge_min_budget: Duration::from_millis(5),
        }
    }

    #[test]
    fn state_round_trips_and_names_are_stable() {
        for s in [
            HealthState::Healthy,
            HealthState::Suspect,
            HealthState::Quarantined,
            HealthState::Probation,
        ] {
            assert_eq!(HealthState::from_u8(s.as_u8()), s);
        }
        assert_eq!(HealthState::Healthy.as_str(), "healthy");
        assert_eq!(HealthState::Suspect.as_str(), "suspect");
        assert_eq!(HealthState::Quarantined.as_str(), "quarantined");
        assert_eq!(HealthState::Probation.as_str(), "probation");
    }

    #[test]
    fn silence_inside_budget_is_fine() {
        let pol = policy();
        let t0 = Instant::now();
        let verdict = classify_stall(t0 + Duration::from_millis(99), t0, None, &pol);
        assert_eq!(verdict, StallVerdict::Fine);
    }

    #[test]
    fn busy_on_a_live_deadline_is_suspect_not_condemned() {
        let pol = policy();
        let t0 = Instant::now();
        // Silent past the budget, but its in-flight batch has a deadline
        // far in the future: the work could still matter.
        let deadline = t0 + Duration::from_millis(1000);
        let now = t0 + Duration::from_millis(200);
        assert_eq!(
            classify_stall(now, t0, Some(deadline), &pol),
            StallVerdict::Suspect
        );
        // Once the deadline plus grace has passed, nothing it could
        // produce matters: condemn.
        let later = deadline + pol.deadline_grace;
        assert_eq!(
            classify_stall(later, t0, Some(deadline), &pol),
            StallVerdict::Quarantine
        );
    }

    #[test]
    fn wedged_with_nothing_in_flight_gets_budget_plus_grace() {
        let pol = policy();
        let t0 = Instant::now();
        let suspect = t0 + Duration::from_millis(110);
        assert_eq!(
            classify_stall(suspect, t0, None, &pol),
            StallVerdict::Suspect
        );
        let condemn = t0 + pol.stall_budget + pol.deadline_grace;
        assert_eq!(
            classify_stall(condemn, t0, None, &pol),
            StallVerdict::Quarantine
        );
    }

    #[test]
    fn expired_inflight_deadline_never_extends_the_clock() {
        let pol = policy();
        let t0 = Instant::now();
        // In-flight deadline already behind the suspect threshold: the
        // max() keeps the condemn point at suspect_at, not earlier.
        let stale = t0 + Duration::from_millis(10);
        let now = t0 + pol.stall_budget;
        assert_eq!(
            classify_stall(now, t0, Some(stale), &pol),
            StallVerdict::Quarantine
        );
    }

    #[test]
    fn drain_fates_cover_expired_hedge_and_abandon() {
        let pol = policy();
        assert_eq!(drain_verdict(None, false, true, &pol), DrainFate::Expired);
        assert_eq!(
            drain_verdict(Some(Duration::from_millis(50)), false, true, &pol),
            DrainFate::Hedge
        );
        // Budget below the hedge floor: re-dispatch would be wasted.
        assert_eq!(
            drain_verdict(Some(Duration::from_millis(1)), false, true, &pol),
            DrainFate::Abandon
        );
        // One hedge per request.
        assert_eq!(
            drain_verdict(Some(Duration::from_millis(50)), true, true, &pol),
            DrainFate::Abandon
        );
        // Nowhere to go.
        assert_eq!(
            drain_verdict(Some(Duration::from_millis(50)), false, false, &pol),
            DrainFate::Abandon
        );
    }
}
