//! The serving runtime: sharded bounded queues → per-replica adaptive
//! micro-batchers with work stealing → worker replicas → circuit
//! breaker, with supervisor respawn and atomic weight swap.
//!
//! ## Why replicas
//!
//! `Tensor` is `Rc`-based and deliberately not `Send`, so model state can
//! never be shared across threads. Each replica therefore *builds its own
//! model copy* in-thread from a [`ModelFactory`] (which captures only
//! plain `Send` data) and keeps it aligned with the published
//! [`WeightStore`] generation by re-applying weights **between batches**.
//! Inside a batch the replica is untouched by swaps — that is the
//! no-torn-read guarantee. The weight *values* are shared: one
//! `Arc<WeightSet>` per generation, published once, with a lock-free
//! version hint so the steady-state sync is a single atomic load
//! (O(1) publication whatever the replica count). Tensor ops inside
//! each worker still fork-join onto the shared `dar-par` pool, so
//! `DAR_THREADS` bounds total compute.
//!
//! ## Sharded routing and work stealing (DESIGN.md §14)
//!
//! Each replica owns one bounded queue shard. A request's tenant id is
//! hashed onto its *home shard* by [`route_tenant`] — stable across
//! restarts and thread budgets — so per-tenant admission (fair-share
//! throttling) is a single-shard check. An idle replica whose own shard
//! is empty scans its siblings and steals one whole micro-batch from the
//! longest queue, but only past a backlog threshold
//! ([`StealPolicy`](crate::config::StealPolicy)): strictly sequential
//! traffic never experiences a steal, which keeps the deterministic obs
//! section byte-identical to a single-replica run.
//!
//! ## Exactly one outcome
//!
//! A request is owned by exactly one place at any time: its home shard's
//! queue, a replica's in-flight slot, or (transiently) the stack of the
//! code about to respond. Stealing preserves this: a steal moves
//! requests from the victim's queue straight into the thief's in-flight
//! slot under the victim's queue lock — there is no instant where a
//! request is owned by both or neither. Whoever owns it when a verdict
//! is known calls [`Pending::respond`], which consumes it. If a worker
//! thread dies mid-batch, the supervisor drains its in-flight slot and
//! answers those requests with `WorkerPanicked`; at shutdown every shard
//! is drained with `Shutdown`. The chaos harness asserts `Lost` is never
//! observed.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dar_core::models::RationaleModel;
use dar_data::{Batch, Review};
use dar_obs::ObsEvent;
use dar_tensor::no_grad;

use crate::breaker::{BatchPlan, BreakerEvent, BreakerState, CircuitBreaker};
use crate::canary::{
    decide, routes_to_canary, splitmix64, ArmStats, CanaryDecision, CanaryOutcome, CanaryPolicy,
    CanarySnapshot, PromotionPhase, RollbackCause,
};
use crate::config::{RespawnBackoff, ServeConfig};
use crate::health::{
    classify_stall, drain_verdict, DrainFate, HealthSlot, HealthState, StallVerdict,
};
use crate::request::{Pending, ServeError, ServeOutput, Ticket};
use crate::router::route_tenant_healthy;
use crate::weights::{WeightSet, WeightStore};

/// Builds one model replica. Called on each worker thread (replicas are
/// thread-local because tensors are not `Send`), so it must capture only
/// `Send + Sync` data and must be deterministic for any *frozen* modules
/// the weight swap does not cover (frozen parts are excluded from
/// `params()` and thus from checkpoints).
pub type ModelFactory = Arc<dyn Fn() -> Box<dyn RationaleModel> + Send + Sync>;

struct QueueState {
    items: VecDeque<Pending>,
    accepting: bool,
}

/// One replica's bounded queue plus its wakeup signal.
struct Shard {
    queue: Mutex<QueueState>,
    notify: Condvar,
}

impl Shard {
    fn new() -> Self {
        Shard {
            queue: Mutex::new(QueueState {
                items: VecDeque::new(),
                accepting: true,
            }),
            notify: Condvar::new(),
        }
    }
}

#[derive(Default)]
struct StatsInner {
    served_full: u64,
    served_degraded: u64,
    rejected: u64,
    queue_full: u64,
    shed: u64,
    deadline_exceeded: u64,
    throttled: u64,
    steals: u64,
    stolen_requests: u64,
    panics: u64,
    stalls: u64,
    quarantines: u64,
    rejoins: u64,
    hedged: u64,
    abandoned: u64,
    latencies_us: Vec<u64>,
}

/// Per-replica counters inside a [`StatsSnapshot`].
#[derive(Debug, Clone, Default)]
pub struct ReplicaStats {
    /// Requests this replica answered successfully (full or degraded).
    pub served: u64,
    /// Micro-batches this replica stole from siblings.
    pub steals: u64,
    /// Requests carried by those stolen batches.
    pub stolen_requests: u64,
    /// Heartbeat progress counter (claim/batch/respond boundary bumps).
    pub heartbeats: u64,
    /// Micro-batches this replica answered fully successfully.
    pub ok_batches: u64,
    /// Times this replica was quarantined by the watchdog.
    pub quarantines: u64,
    /// Requests hedged away from this replica at quarantine drains.
    pub hedged_away: u64,
    /// Current health state (`healthy`/`suspect`/`quarantined`/
    /// `probation`).
    pub health: String,
}

/// Point-in-time counters plus latency percentiles (microseconds, over
/// successful responses).
#[derive(Debug, Clone, Default)]
pub struct StatsSnapshot {
    pub served_full: u64,
    pub served_degraded: u64,
    pub rejected: u64,
    pub queue_full: u64,
    pub shed: u64,
    pub deadline_exceeded: u64,
    /// Submissions refused by per-tenant fair-share admission.
    pub throttled: u64,
    /// Total micro-batches stolen between replicas.
    pub steals: u64,
    /// Total requests carried by stolen batches.
    pub stolen_requests: u64,
    pub panics: u64,
    /// Stall episodes the watchdog flagged (Healthy → Suspect).
    pub stalls: u64,
    /// Replicas condemned by the watchdog (Suspect → Quarantined).
    pub quarantines: u64,
    /// Respawned replicas that passed probation (Probation → Healthy).
    pub rejoins: u64,
    /// Requests hedged to a healthy sibling off a quarantined replica.
    pub hedged: u64,
    /// Requests given up with `ServeError::Abandoned` at quarantine
    /// drains (no hedge budget or no healthy sibling).
    pub abandoned: u64,
    pub p50_us: u64,
    pub p99_us: u64,
    pub max_us: u64,
    pub weights_version: u64,
    /// One entry per replica slot.
    pub replicas: Vec<ReplicaStats>,
}

/// One in-progress canary evaluation (promotion phase `Canary`).
struct CanaryRun {
    policy: CanaryPolicy,
    candidate_version: u64,
    incumbent_version: u64,
    candidate: ArmStats,
    incumbent: ArmStats,
}

/// One replica's in-flight parking slot, keyed by worker generation so
/// an abandoned (quarantined) thread can never race the supervisor for
/// its victims: the supervisor drains items and zeroes `owner_gen`; a
/// stale worker coming back from inference sees the mismatch and
/// discards its outputs instead of responding twice.
#[derive(Default)]
struct InflightSlot {
    /// Generation of the worker that parked `items` (0 = none).
    owner_gen: u64,
    items: Vec<(Pending, Instant)>,
}

struct Shared {
    cfg: ServeConfig,
    /// One queue shard per replica; a tenant's home shard is
    /// `route_tenant(tenant, shards.len())`.
    shards: Vec<Shard>,
    breaker: Mutex<CircuitBreaker>,
    weights: WeightStore,
    /// One slot per replica: requests claimed from any shard live here
    /// while inference runs, so a dying worker cannot take them along.
    inflight: Mutex<Vec<InflightSlot>>,
    stats: Mutex<StatsInner>,
    replica_stats: Mutex<Vec<ReplicaStats>>,
    /// Per-replica heartbeat ledger + health state (DESIGN.md §16).
    health: Vec<HealthSlot>,
    /// Bitmask of quarantined slots, read by `submit_for_tenant` for
    /// health-aware routing. One atomic load on the hot path.
    quarantined_mask: AtomicU64,
    /// Authorized worker generation per slot (0 = none). A worker whose
    /// generation no longer matches is a zombie: it must not claim,
    /// park, drain, or respond — quarantine revokes ownership here, and
    /// this is what makes abandoning a wedged thread safe without any
    /// way to kill it.
    worker_gen: Vec<AtomicU64>,
    /// Generation allocator (starts at 1; 0 means "no worker").
    next_gen: AtomicU64,
    /// Submission sequence numbers — the deterministic canary routing key.
    next_seq: AtomicU64,
    /// Cheap hot-path check before touching the `canary` mutex.
    canary_active: AtomicBool,
    canary: Mutex<Option<CanaryRun>>,
    /// Latched by the watchdog when a quarantine lands while a canary
    /// window is open. The *controller* thread consumes it in
    /// `try_conclude_canary_with` and settles the round as a typed
    /// `replica_quarantined` rollback — the watchdog never emits canary
    /// verdict events itself, preserving the single-thread determinism
    /// of the promotion journal.
    canary_interrupted: AtomicBool,
    shutdown: AtomicBool,
}

impl Shared {
    fn record_success(&self, slot: usize, born: Instant, degraded: bool) {
        let us = born.elapsed().as_micros() as u64;
        if degraded {
            dar_obs::inc("serve.served_degraded");
        } else {
            dar_obs::inc("serve.served_full");
        }
        dar_obs::record_micros("serve/latency", us);
        let mut s = self.stats.lock().unwrap();
        if degraded {
            s.served_degraded += 1;
        } else {
            s.served_full += 1;
        }
        // Unbounded growth guard for long-lived servers.
        if s.latencies_us.len() < 1_000_000 {
            s.latencies_us.push(us);
        }
        drop(s);
        self.replica_stats.lock().unwrap()[slot].served += 1;
    }
}

/// Sends the worker's slot index and generation to the supervisor if the
/// thread dies unwinding — the only signal a hard death leaves behind.
/// The generation lets the supervisor ignore the eventual death of an
/// already-quarantined zombie (its slot has a new worker by then).
struct DeathNotice {
    slot: usize,
    gen: u64,
    tx: mpsc::Sender<(usize, u64)>,
}

impl Drop for DeathNotice {
    fn drop(&mut self) {
        if std::thread::panicking() {
            let _ = self.tx.send((self.slot, self.gen));
        }
    }
}

/// Static span names so per-replica timings stay `&'static str` (the
/// obs registry interns nothing).
const REPLICA_SPANS: [&str; 8] = [
    "serve_replica/0",
    "serve_replica/1",
    "serve_replica/2",
    "serve_replica/3",
    "serve_replica/4",
    "serve_replica/5",
    "serve_replica/6",
    "serve_replica/7",
];

fn replica_span(slot: usize) -> &'static str {
    REPLICA_SPANS
        .get(slot)
        .copied()
        .unwrap_or("serve_replica/overflow")
}

/// The serving runtime. Dropping without [`shutdown`](Server::shutdown)
/// shuts down implicitly.
pub struct Server {
    shared: Arc<Shared>,
    supervisor: Option<JoinHandle<()>>,
}

impl Server {
    /// Build the initial weight generation from one factory call, spawn
    /// one worker per replica shard and the supervisor, and start
    /// serving.
    pub fn start(cfg: ServeConfig, factory: ModelFactory) -> Self {
        let initial = {
            let model = factory();
            WeightSet::from_params(&model.params(), 1)
        };
        let replicas = cfg.effective_replicas();
        let shared = Arc::new(Shared {
            breaker: Mutex::new(CircuitBreaker::new(cfg.breaker)),
            cfg,
            shards: (0..replicas).map(|_| Shard::new()).collect(),
            weights: WeightStore::new(initial),
            inflight: Mutex::new((0..replicas).map(|_| InflightSlot::default()).collect()),
            stats: Mutex::new(StatsInner::default()),
            replica_stats: Mutex::new(vec![ReplicaStats::default(); replicas]),
            health: (0..replicas).map(|_| HealthSlot::default()).collect(),
            quarantined_mask: AtomicU64::new(0),
            worker_gen: (0..replicas).map(|_| AtomicU64::new(0)).collect(),
            next_gen: AtomicU64::new(1),
            next_seq: AtomicU64::new(0),
            canary_active: AtomicBool::new(false),
            canary: Mutex::new(None),
            canary_interrupted: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
        });

        let (death_tx, death_rx) = mpsc::channel::<(usize, u64)>();
        let handles: Vec<Option<JoinHandle<()>>> = (0..replicas)
            .map(|slot| {
                let gen = shared.next_gen.fetch_add(1, Ordering::SeqCst);
                shared.worker_gen[slot].store(gen, Ordering::SeqCst);
                Some(spawn_worker(
                    Arc::clone(&shared),
                    Arc::clone(&factory),
                    slot,
                    gen,
                    death_tx.clone(),
                ))
            })
            .collect();

        let sup_shared = Arc::clone(&shared);
        let sup_factory = Arc::clone(&factory);
        let supervisor = std::thread::Builder::new()
            .name("dar-serve-supervisor".into())
            .spawn(move || supervisor_loop(sup_shared, sup_factory, death_rx, death_tx, handles))
            .expect("spawning dar-serve supervisor");

        Server {
            shared,
            supervisor: Some(supervisor),
        }
    }

    /// Submit with the configured default deadline (tenant 0).
    pub fn submit(&self, review: Review) -> Ticket {
        self.submit_for_tenant(review, 0, self.shared.cfg.default_deadline)
    }

    /// Submit with an explicit deadline (tenant 0).
    pub fn submit_with_deadline(&self, review: Review, deadline: Duration) -> Ticket {
        self.submit_for_tenant(review, 0, deadline)
    }

    /// Submit one review for a tenant. The tenant id picks the home
    /// shard ([`route_tenant`]) and is the fair-share admission key. The
    /// returned ticket resolves to exactly one [`ServeResult`] —
    /// including for immediate rejections, which are decided here on the
    /// caller's thread.
    ///
    /// [`ServeResult`]: crate::request::ServeResult
    pub fn submit_for_tenant(&self, review: Review, tenant: u64, deadline: Duration) -> Ticket {
        let shared = &self.shared;
        let seq = shared.next_seq.fetch_add(1, Ordering::SeqCst);
        let (pending, ticket) = Pending::new(review, Instant::now() + deadline, seq, tenant);
        dar_obs::inc("serve.submitted");

        // Admission: cheap structural checks before anything is queued.
        if let Err(e) = pending
            .review
            .admissible(shared.cfg.vocab_size, shared.cfg.max_len)
        {
            shared.stats.lock().unwrap().rejected += 1;
            dar_obs::inc("serve.rejected");
            pending.respond(Err(ServeError::Rejected(e)));
            return ticket;
        }

        // Breaker: an Open breaker sheds at the door (and each shed
        // brings the HalfOpen probe closer).
        {
            let mut b = shared.breaker.lock().unwrap();
            if b.shedding() {
                b.on_shed();
                drop(b);
                shared.stats.lock().unwrap().shed += 1;
                dar_obs::inc("serve.shed");
                pending.respond(Err(ServeError::Shed));
                return ticket;
            }
        }

        // Home shard: bounded queue (full means backpressure, not
        // waiting) plus the per-tenant fair-share check — both are
        // single-shard decisions thanks to sticky routing. Routing is
        // health-aware: a quarantined home shard detours the tenant to a
        // deterministic healthy sibling until the replica rejoins
        // (mask 0 is exactly `route_tenant`, the steady-state path).
        let mask = shared.quarantined_mask.load(Ordering::SeqCst);
        let shard = &shared.shards[route_tenant_healthy(tenant, shared.shards.len(), mask)];
        {
            let mut q = shard.queue.lock().unwrap();
            if !q.accepting {
                drop(q);
                pending.respond(Err(ServeError::Shutdown));
                return ticket;
            }
            if q.items.len() >= shared.cfg.queue_cap {
                drop(q);
                shared.stats.lock().unwrap().queue_full += 1;
                dar_obs::inc("serve.queue_full");
                pending.respond(Err(ServeError::QueueFull));
                return ticket;
            }
            if let Some(cap) = shared.cfg.tenant_queue_cap() {
                // O(queue_cap) scan, only when fairness is configured:
                // cheaper and less invasive than per-tenant counters
                // threaded through every claim/steal/drain path.
                let held = q.items.iter().filter(|p| p.tenant == tenant).count();
                if held >= cap {
                    drop(q);
                    shared.stats.lock().unwrap().throttled += 1;
                    dar_obs::inc("serve.tenant_throttled");
                    pending.respond(Err(ServeError::TenantThrottled));
                    return ticket;
                }
            }
            q.items.push_back(pending);
        }
        shard.notify.notify_one();
        ticket
    }

    /// Offer a checkpoint file as the next weight generation; validation
    /// runs on this thread, never on workers. See
    /// [`WeightStore::offer_checkpoint`].
    pub fn offer_checkpoint(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> dar_tensor::DarResult<u64> {
        self.shared.weights.offer_checkpoint(path)
    }

    /// Published weight generation.
    pub fn weights_version(&self) -> u64 {
        self.shared.weights.version()
    }

    /// Begin a canary evaluation: validate `path` into the canary slot
    /// (same CRC/count/shape contract as [`offer_checkpoint`]) and start
    /// routing the deterministic traffic slice to it. Fails if a canary
    /// is already active or validation rejects the checkpoint (the
    /// rejection is journaled as a typed `offer_rejected` event either
    /// way). Returns the candidate's version.
    ///
    /// [`offer_checkpoint`]: Server::offer_checkpoint
    pub fn begin_canary(
        &self,
        path: impl AsRef<std::path::Path>,
        policy: CanaryPolicy,
    ) -> dar_tensor::DarResult<u64> {
        let mut guard = self.shared.canary.lock().unwrap();
        if guard.is_some() {
            return Err(dar_tensor::DarError::InvalidData(
                "a canary evaluation is already active".into(),
            ));
        }
        let version = self.shared.weights.offer_canary(path)?;
        let policy = CanaryPolicy {
            slice_modulus: policy.slice_modulus.max(2),
            ..policy
        };
        *guard = Some(CanaryRun {
            policy,
            candidate_version: version,
            incumbent_version: self.shared.weights.version(),
            candidate: ArmStats::default(),
            incumbent: ArmStats::default(),
        });
        self.shared
            .canary_interrupted
            .store(false, Ordering::SeqCst);
        self.shared.canary_active.store(true, Ordering::SeqCst);
        drop(guard);
        dar_obs::event(ObsEvent::CanaryStarted { version });
        dar_obs::inc("serve.canaries_started");
        Ok(version)
    }

    /// Both arms' stats so far, or `None` when no canary is active.
    pub fn canary_snapshot(&self) -> Option<CanarySnapshot> {
        let guard = self.shared.canary.lock().unwrap();
        guard.as_ref().map(|run| CanarySnapshot {
            candidate_version: run.candidate_version,
            incumbent_version: run.incumbent_version,
            candidate: run.candidate.clone(),
            incumbent: run.incumbent.clone(),
        })
    }

    /// Conclude the canary if both arms have filled the policy window:
    /// promote the candidate atomically or roll it back, journaling the
    /// verdict. `None` means not enough traffic yet (or no canary).
    ///
    /// The verdict and its journal entry are emitted from the calling
    /// thread, so a single controller thread observes a deterministic
    /// promotion event sequence whatever the worker interleaving.
    pub fn try_conclude_canary(&self) -> Option<CanaryOutcome> {
        self.try_conclude_canary_with(|_| Ok(()))
    }

    /// [`try_conclude_canary`] with a durability pre-commit hook: once
    /// the verdict is computed, `pre_commit` gets the [`CanaryDecision`]
    /// *before* it takes effect in memory. The hook's job is to make the
    /// decision durable (WAL append); if it fails on a promotion verdict
    /// the promotion is vetoed into a rollback with cause
    /// `durability_failed` — no swap without a durable record. A failed
    /// hook on a rollback verdict still rolls back (the conservative
    /// outcome needs no record to be safe).
    ///
    /// [`try_conclude_canary`]: Server::try_conclude_canary
    pub fn try_conclude_canary_with<F>(&self, pre_commit: F) -> Option<CanaryOutcome>
    where
        F: FnOnce(&CanaryDecision) -> dar_tensor::DarResult<()>,
    {
        let mut guard = self.shared.canary.lock().unwrap();
        let run = guard.as_ref()?;
        // A quarantine that landed inside the window voids the round:
        // its arm stats mix healthy and wedged traffic, so no verdict
        // may be computed from them. The watchdog only latches the flag;
        // the typed rollback is decided and journaled *here*, on the
        // controller thread, keeping the promotion event sequence
        // deterministic whatever the worker interleaving.
        let interrupted = self.shared.canary_interrupted.load(Ordering::SeqCst);
        if !interrupted
            && (run.candidate.outcomes() < run.policy.window
                || run.incumbent.outcomes() < run.policy.window)
        {
            return None;
        }
        // Stop routing *before* the weights settle: batches claimed from
        // here on go to the incumbent, and any canary batch already
        // claimed still resolves normally (it just stops being counted).
        let run = guard.take().expect("guarded above");
        self.shared.canary_active.store(false, Ordering::SeqCst);
        self.shared
            .canary_interrupted
            .store(false, Ordering::SeqCst);
        drop(guard);
        let forced = interrupted.then_some(RollbackCause::ReplicaQuarantined);
        Some(self.settle_canary(run, forced, pre_commit))
    }

    /// Abort an active canary without a verdict: clear the slot, keep
    /// the incumbent, journal a rollback with cause `aborted`.
    pub fn abort_canary(&self) -> Option<CanaryOutcome> {
        self.abort_canary_with(|_| Ok(()))
    }

    /// [`abort_canary`] with a durability pre-commit hook (see
    /// [`try_conclude_canary_with`]).
    ///
    /// [`abort_canary`]: Server::abort_canary
    /// [`try_conclude_canary_with`]: Server::try_conclude_canary_with
    pub fn abort_canary_with<F>(&self, pre_commit: F) -> Option<CanaryOutcome>
    where
        F: FnOnce(&CanaryDecision) -> dar_tensor::DarResult<()>,
    {
        let mut guard = self.shared.canary.lock().unwrap();
        let run = guard.take()?;
        self.shared.canary_active.store(false, Ordering::SeqCst);
        self.shared
            .canary_interrupted
            .store(false, Ordering::SeqCst);
        drop(guard);
        Some(self.settle_canary(run, Some(RollbackCause::Aborted), pre_commit))
    }

    /// Apply the verdict (or a forced cause) to a detached run, giving
    /// `pre_commit` the chance to journal — or veto — the decision.
    fn settle_canary<F>(
        &self,
        run: CanaryRun,
        forced: Option<RollbackCause>,
        pre_commit: F,
    ) -> CanaryOutcome
    where
        F: FnOnce(&CanaryDecision) -> dar_tensor::DarResult<()>,
    {
        let snapshot = CanarySnapshot {
            candidate_version: run.candidate_version,
            incumbent_version: run.incumbent_version,
            candidate: run.candidate,
            incumbent: run.incumbent,
        };
        let mut verdict = match forced {
            Some(cause) => Err(cause),
            None => decide(&run.policy, &snapshot),
        };
        let decision = CanaryDecision {
            candidate_version: run.candidate_version,
            promote: verdict.is_ok(),
            cause: verdict.as_ref().err().copied(),
        };
        if pre_commit(&decision).is_err() && verdict.is_ok() {
            // The promotion record could not be made durable: without it
            // a crash would forget the promotion, so it must not happen.
            verdict = Err(RollbackCause::DurabilityFailed);
        }
        match verdict {
            Ok(()) => {
                let version = self
                    .shared
                    .weights
                    .promote_canary()
                    .unwrap_or(run.candidate_version);
                dar_obs::event(ObsEvent::CandidatePromoted { version });
                dar_obs::inc("serve.promotions");
                CanaryOutcome {
                    version,
                    phase: PromotionPhase::Promoted,
                    cause: None,
                    snapshot,
                }
            }
            Err(cause) => {
                // Rollback is the *absence* of a swap: drop the slot and
                // the incumbent keeps serving, never displaced.
                self.shared.weights.clear_canary();
                dar_obs::event(ObsEvent::CandidateRolledBack {
                    version: run.candidate_version,
                    cause: cause.as_str().to_owned(),
                });
                dar_obs::inc("serve.canary_rollbacks");
                CanaryOutcome {
                    version: run.candidate_version,
                    phase: PromotionPhase::RolledBack,
                    cause: Some(cause),
                    snapshot,
                }
            }
        }
    }

    pub fn breaker_state(&self) -> BreakerState {
        self.shared.breaker.lock().unwrap().state()
    }

    /// Transition log since start.
    pub fn breaker_events(&self) -> Vec<BreakerEvent> {
        self.shared.breaker.lock().unwrap().events().to_vec()
    }

    pub fn stats(&self) -> StatsSnapshot {
        let s = self.shared.stats.lock().unwrap();
        let mut lat = s.latencies_us.clone();
        lat.sort_unstable();
        let pct = |p: f64| -> u64 {
            if lat.is_empty() {
                0
            } else {
                let idx = ((lat.len() as f64 - 1.0) * p).round() as usize;
                lat[idx]
            }
        };
        let mut replicas = self.shared.replica_stats.lock().unwrap().clone();
        for (slot, r) in replicas.iter_mut().enumerate() {
            let h = &self.shared.health[slot];
            r.heartbeats = h.progress.load(Ordering::Relaxed);
            r.ok_batches = h.ok_batches.load(Ordering::Relaxed);
            r.quarantines = h.quarantines.load(Ordering::Relaxed);
            r.hedged_away = h.hedged_away.load(Ordering::Relaxed);
            r.health = h.state().as_str().to_owned();
        }
        StatsSnapshot {
            served_full: s.served_full,
            served_degraded: s.served_degraded,
            rejected: s.rejected,
            queue_full: s.queue_full,
            shed: s.shed,
            deadline_exceeded: s.deadline_exceeded,
            throttled: s.throttled,
            steals: s.steals,
            stolen_requests: s.stolen_requests,
            panics: s.panics,
            stalls: s.stalls,
            quarantines: s.quarantines,
            rejoins: s.rejoins,
            hedged: s.hedged,
            abandoned: s.abandoned,
            p50_us: pct(0.5),
            p99_us: pct(0.99),
            max_us: lat.last().copied().unwrap_or(0),
            weights_version: self.shared.weights.version(),
            replicas,
        }
    }

    /// Current health state of every replica slot.
    pub fn health_states(&self) -> Vec<HealthState> {
        self.shared.health.iter().map(|h| h.state()).collect()
    }

    /// Bitmask of currently quarantined slots (bit `s` = slot `s`).
    /// Zero in steady state — and zero again after every rejoin, which
    /// is what restores original routing.
    pub fn quarantined_mask(&self) -> u64 {
        self.shared.quarantined_mask.load(Ordering::SeqCst)
    }

    /// Stop accepting, fail queued requests with `Shutdown`, join every
    /// worker and the supervisor. Idempotent via `Drop`.
    pub fn shutdown(mut self) -> StatsSnapshot {
        self.shutdown_inner();
        self.stats()
    }

    fn shutdown_inner(&mut self) {
        for shard in &self.shared.shards {
            shard.queue.lock().unwrap().accepting = false;
        }
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for shard in &self.shared.shards {
            shard.notify.notify_all();
        }
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn spawn_worker(
    shared: Arc<Shared>,
    factory: ModelFactory,
    slot: usize,
    gen: u64,
    death_tx: mpsc::Sender<(usize, u64)>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("dar-serve-worker-{slot}"))
        .spawn(move || worker_loop(shared, factory, slot, gen, death_tx))
        .expect("spawning dar-serve worker")
}

/// Is `gen` still the authorized worker for `slot`? A `false` means the
/// watchdog quarantined this thread: it is a zombie and must stop
/// touching shared request state immediately.
fn superseded(shared: &Shared, slot: usize, gen: u64) -> bool {
    shared.worker_gen[slot].load(Ordering::SeqCst) != gen
}

/// A zombie worker answering requests it claimed before learning it was
/// superseded (claimed from the queue, not yet parked — the one window
/// the supervisor's drain cannot reach). Expired ones get the deadline
/// verdict; the rest are abandoned: the zombie must not run inference
/// for them (its replica is condemned) and must not re-enqueue (it races
/// the drain). Never `Lost`.
fn orphan_respond(shared: &Shared, claimed: Vec<Pending>) {
    if claimed.is_empty() {
        return;
    }
    let now = Instant::now();
    let (expired, live): (Vec<_>, Vec<_>) = claimed.into_iter().partition(|p| p.expired(now));
    respond_expired(shared, expired);
    if !live.is_empty() {
        let mut s = shared.stats.lock().unwrap();
        s.abandoned += live.len() as u64;
        drop(s);
        dar_obs::add("serve.abandoned", live.len() as u64);
        for p in live {
            p.respond(Err(ServeError::Abandoned));
        }
    }
}

/// One claimed micro-batch, with its canary arm and (if stolen) the
/// shard it came from.
struct Claim {
    claimed: Vec<Pending>,
    to_canary: bool,
}

/// Pop every expired request out of `q`, preserving the order of the
/// rest. Respond outside the queue lock via [`respond_expired`].
fn take_expired(q: &mut QueueState) -> Vec<Pending> {
    let now = Instant::now();
    let mut expired = Vec::new();
    let items = std::mem::take(&mut q.items);
    for p in items {
        if p.expired(now) {
            expired.push(p);
        } else {
            q.items.push_back(p);
        }
    }
    expired
}

/// Expired requests get their verdict without costing inference.
fn respond_expired(shared: &Shared, expired: Vec<Pending>) {
    if expired.is_empty() {
        return;
    }
    let mut s = shared.stats.lock().unwrap();
    s.deadline_exceeded += expired.len() as u64;
    drop(s);
    dar_obs::add("serve.deadline_exceeded", expired.len() as u64);
    for p in expired {
        p.respond(Err(ServeError::DeadlineExceeded));
    }
}

/// The active canary's slice modulus (0 when no canary is routing).
fn canary_modulus(shared: &Shared) -> u64 {
    if shared.canary_active.load(Ordering::SeqCst) {
        shared
            .canary
            .lock()
            .unwrap()
            .as_ref()
            .map(|run| run.policy.slice_modulus)
            .unwrap_or(0)
    } else {
        0
    }
}

/// Claim up to `n` requests from the queue front. While a canary is
/// active a batch is *pure-route*: it takes the front request's arm and
/// claims only same-arm requests (preserving queue order of the rest),
/// so one batch never mixes weight generations — including batches
/// claimed by a thief from a sibling shard.
fn claim_arm_pure(q: &mut QueueState, n: usize, modulus: u64) -> (Vec<Pending>, bool) {
    if modulus < 2 {
        return (q.items.drain(..n).collect(), false);
    }
    let to_canary = routes_to_canary(q.items[0].seq, modulus);
    let mut claimed = Vec::with_capacity(n);
    let mut rest = VecDeque::with_capacity(q.items.len());
    for p in q.items.drain(..) {
        if claimed.len() < n && routes_to_canary(p.seq, modulus) == to_canary {
            claimed.push(p);
        } else {
            rest.push_back(p);
        }
    }
    q.items = rest;
    (claimed, to_canary)
}

/// Steal one whole micro-batch from the longest sibling shard whose
/// backlog clears the policy threshold. Locks one queue at a time (never
/// two), so stealing cannot deadlock with submits or other thieves.
/// While scanning, expired requests found in *any* sibling are answered
/// — a shard whose home replica is down (dead, mid-backoff) still
/// resolves its deadline storms through its idle siblings.
fn try_steal(shared: &Shared, thief: usize, cap: usize) -> Option<Claim> {
    if !shared.cfg.steal.enabled || shared.shards.len() < 2 {
        return None;
    }
    let threshold = shared.cfg.steal_threshold();
    let mut best: Option<(usize, usize)> = None;
    for victim in 0..shared.shards.len() {
        if victim == thief {
            continue;
        }
        let mut q = shared.shards[victim].queue.lock().unwrap();
        let expired = take_expired(&mut q);
        let len = q.items.len();
        drop(q);
        respond_expired(shared, expired);
        if len >= threshold && best.is_none_or(|(_, l)| len > l) {
            best = Some((victim, len));
        }
    }
    let (victim, _) = best?;
    let mut q = shared.shards[victim].queue.lock().unwrap();
    if q.items.len() < threshold {
        return None; // raced: the home replica (or another thief) got there first
    }
    let n = q.items.len().min(cap.max(1));
    let modulus = canary_modulus(shared);
    let (claimed, to_canary) = claim_arm_pure(&mut q, n, modulus);
    drop(q);
    if claimed.is_empty() {
        return None;
    }
    let n = claimed.len() as u64;
    {
        let mut s = shared.stats.lock().unwrap();
        s.steals += 1;
        s.stolen_requests += n;
    }
    {
        let mut rs = shared.replica_stats.lock().unwrap();
        rs[thief].steals += 1;
        rs[thief].stolen_requests += n;
    }
    dar_obs::inc("serve.steals");
    dar_obs::add("serve.stolen_requests", n);
    dar_obs::event(ObsEvent::ReplicaSteal {
        thief: thief as u64,
        victim: victim as u64,
        n,
    });
    Some(Claim { claimed, to_canary })
}

/// Claim the next micro-batch for replica `slot`: from its own shard
/// (after sweeping expired requests, lingering for occupancy), or stolen
/// from the longest sibling backlog when its own shard is empty. Stolen
/// batches skip the linger — they exist to relieve backlog, not to wait
/// for more of it. `None` means shutdown.
fn claim_batch(shared: &Shared, slot: usize, gen: u64, cap: usize) -> Option<Claim> {
    let cfg = &shared.cfg;
    let shard = &shared.shards[slot];
    let mut q = shard.queue.lock().unwrap();
    loop {
        // Zombie check first — before the shutdown drain, so a
        // quarantined worker can never drain a queue that now belongs to
        // its replacement. Pass the wakeup on in case the condvar woke
        // the zombie instead of the live worker.
        if superseded(shared, slot, gen) {
            drop(q);
            shard.notify.notify_one();
            return None;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            // Drain this replica's own shard with a terminal verdict;
            // the supervisor's final sweep covers shards whose replica
            // is already gone.
            let leftovers: Vec<Pending> = q.items.drain(..).collect();
            drop(q);
            for p in leftovers {
                p.respond(Err(ServeError::Shutdown));
            }
            return None;
        }

        let expired = take_expired(&mut q);
        if !expired.is_empty() {
            drop(q);
            respond_expired(shared, expired);
            q = shard.queue.lock().unwrap();
            continue;
        }

        if q.items.is_empty() {
            drop(q);
            if let Some(claim) = try_steal(shared, slot, cap) {
                return Some(claim);
            }
            q = shard.queue.lock().unwrap();
            if q.items.is_empty() && !shared.shutdown.load(Ordering::SeqCst) {
                let (qq, _) = shard
                    .notify
                    .wait_timeout(q, Duration::from_millis(20))
                    .unwrap();
                q = qq;
            }
            continue;
        }

        // Linger for a fuller batch, but never past any queued deadline.
        if q.items.len() < cap && !cfg.linger.is_zero() {
            let linger_until = Instant::now() + cfg.linger;
            let earliest = q.items.iter().map(|p| p.deadline).min().unwrap();
            let stop = linger_until.min(earliest);
            while q.items.len() < cap {
                let now = Instant::now();
                if now >= stop || shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let (qq, _) = shard.notify.wait_timeout(q, stop - now).unwrap();
                q = qq;
            }
        }

        // The linger wait releases the lock, so a thief may have drained
        // the shard; an empty claim just loops in the caller.
        let n = q.items.len().min(cap);
        if n == 0 {
            return Some(Claim {
                claimed: Vec::new(),
                to_canary: false,
            });
        }
        let modulus = canary_modulus(shared);
        let (claimed, to_canary) = claim_arm_pure(&mut q, n, modulus);
        return Some(Claim { claimed, to_canary });
    }
}

/// Record one answered canary-era request into its arm. A no-op when no
/// canary is active (the clean serve path stays byte-identical in the
/// deterministic obs section).
fn record_canary_output(
    shared: &Shared,
    to_canary: bool,
    review: &Review,
    out: &ServeOutput,
    tainted: bool,
    latency_us: u64,
) {
    if !shared.canary_active.load(Ordering::SeqCst) {
        return;
    }
    if let Some(run) = shared.canary.lock().unwrap().as_mut() {
        let arm = if to_canary {
            &mut run.candidate
        } else {
            &mut run.incumbent
        };
        arm.record_output(review, out, tainted, latency_us);
    }
}

/// Record a batch of typed failures / panic victims into an arm, so a
/// candidate that only ever errors still fills its verdict window.
fn record_canary_errors(shared: &Shared, to_canary: bool, n: u64, tainted: bool) {
    if n == 0 || !shared.canary_active.load(Ordering::SeqCst) {
        return;
    }
    if let Some(run) = shared.canary.lock().unwrap().as_mut() {
        let arm = if to_canary {
            &mut run.candidate
        } else {
            &mut run.incumbent
        };
        arm.record_error(n, tainted);
    }
}

/// Assemble claimed requests into a `Batch`. On failure every request is
/// answered `Rejected` (should not happen post-admission; belt and
/// braces) and `None` is returned.
fn assemble(shared: &Shared, claimed: Vec<Pending>) -> Option<(Vec<Pending>, Batch)> {
    let refs: Vec<&Review> = claimed.iter().map(|p| &p.review).collect();
    match Batch::from_reviews_bounded(&refs, shared.cfg.vocab_size, shared.cfg.max_len) {
        Ok(batch) => Some((claimed, batch)),
        Err(e) => {
            let mut s = shared.stats.lock().unwrap();
            s.rejected += claimed.len() as u64;
            drop(s);
            dar_obs::add("serve.rejected", claimed.len() as u64);
            let msg = e.to_string();
            for p in claimed {
                p.respond(Err(ServeError::Rejected(
                    dar_tensor::DarError::InvalidData(msg.clone()),
                )));
            }
            None
        }
    }
}

/// Outputs for a full-path batch: per-row label + rationale. Falls back
/// to the predictor path row-set-wide if the selector collapsed.
fn run_full(
    shared: &Shared,
    model: &dyn RationaleModel,
    batch: &Batch,
    version: u64,
) -> Result<(Vec<ServeOutput>, bool), ServeError> {
    let inf = no_grad(|| model.infer(batch));
    // Selected fraction over real tokens — the breaker's collapse signal.
    let mut selected = 0usize;
    let mut total = 0usize;
    for (i, &len) in batch.lengths.iter().enumerate() {
        selected += inf.masks[i][..len].iter().filter(|&&v| v > 0.5).count();
        total += len;
    }
    let frac = selected as f32 / total.max(1) as f32;
    let collapsed = shared
        .breaker
        .lock()
        .unwrap()
        .policy()
        .collapse
        .is_collapsed(frac);
    if collapsed {
        // The selector degenerated: answer this batch from the full-text
        // path rather than shipping an empty/total "rationale".
        let outs = run_predictor(model, batch, version)?;
        return Ok((outs, true));
    }
    let logits = inf
        .logits
        .or(inf.full_logits)
        .ok_or(ServeError::DegradedUnavailable)?;
    if logits.to_vec().iter().any(|v| !v.is_finite()) {
        // Numerically poisoned scores: answer from the predictor path and
        // let the caller report a generator failure (with taint origin).
        let outs = run_predictor(model, batch, version)?;
        return Ok((outs, true));
    }
    let labels = logits.argmax_rows();
    let outs = batch
        .lengths
        .iter()
        .enumerate()
        .map(|(i, &len)| ServeOutput {
            label: labels[i],
            rationale: inf.masks[i][..len].iter().map(|&v| v > 0.5).collect(),
            degraded: false,
            weights_version: version,
        })
        .collect();
    Ok((outs, false))
}

/// Outputs for a predictor-only batch: label from the full-text path, no
/// rationale.
fn run_predictor(
    model: &dyn RationaleModel,
    batch: &Batch,
    version: u64,
) -> Result<Vec<ServeOutput>, ServeError> {
    let logits =
        no_grad(|| model.predict_full_text(batch)).ok_or(ServeError::DegradedUnavailable)?;
    let labels = logits.argmax_rows();
    Ok(batch
        .lengths
        .iter()
        .enumerate()
        .map(|(i, _)| ServeOutput {
            label: labels[i],
            rationale: Vec::new(),
            degraded: true,
            weights_version: version,
        })
        .collect())
}

/// Take this worker's parked in-flight batch back — but only if it still
/// owns it. `None` means the supervisor drained the slot (quarantine):
/// the victims were already answered, and this thread must discard
/// whatever it computed and exit.
fn take_owned(shared: &Shared, slot: usize, gen: u64) -> Option<Vec<(Pending, Instant)>> {
    let mut g = shared.inflight.lock().unwrap();
    let s = &mut g[slot];
    if s.owner_gen != gen {
        return None;
    }
    s.owner_gen = 0;
    Some(std::mem::take(&mut s.items))
}

fn worker_loop(
    shared: Arc<Shared>,
    factory: ModelFactory,
    slot: usize,
    gen: u64,
    death_tx: mpsc::Sender<(usize, u64)>,
) {
    let _death = DeathNotice {
        slot,
        gen,
        tx: death_tx,
    };
    let mut model: Box<dyn RationaleModel> = factory();
    let mut version = 0u64;

    loop {
        let cap = shared
            .breaker
            .lock()
            .unwrap()
            .batch_cap(shared.cfg.max_batch);
        let Some(Claim { claimed, to_canary }) = claim_batch(&shared, slot, gen, cap) else {
            return; // shutdown, or this worker was quarantined away
        };
        if claimed.is_empty() {
            continue;
        }
        // Heartbeat: claim boundary.
        shared.health[slot].beat();
        // The plan is read *after* claiming: claim_batch may have blocked
        // through a breaker transition, and requests must be served by
        // the mode in force now, not the one when the worker went idle.
        // (The cap above may be stale in the same way; a probe batch
        // larger than 1 is acceptable, a stale path decision is not.)
        let plan = shared.breaker.lock().unwrap().plan_batch();

        if matches!(plan, BatchPlan::Shed) {
            // Breaker opened while these were queued.
            let mut b = shared.breaker.lock().unwrap();
            for _ in &claimed {
                b.on_shed();
            }
            drop(b);
            shared.stats.lock().unwrap().shed += claimed.len() as u64;
            for p in claimed {
                p.respond(Err(ServeError::Shed));
            }
            continue;
        }

        // Per-replica span around the whole batch (timing section only —
        // never part of the byte-compared deterministic section).
        let _rspan = dar_obs::span(replica_span(slot));

        // The queue wait spans two threads (submit → claim), so it is
        // recorded as an external duration rather than a scoped span.
        let claim_time = Instant::now();
        for p in &claimed {
            dar_obs::record_micros(
                "serve/queue_wait",
                claim_time
                    .saturating_duration_since(p.submitted)
                    .as_micros() as u64,
            );
        }

        let assembled = {
            let _span = dar_obs::span("serve_assemble");
            assemble(&shared, claimed)
        };
        let Some((claimed, batch)) = assembled else {
            continue;
        };

        // Between-batch weight sync: the only place a swap is observed.
        // The steady state is a single lock-free version-hint check
        // (`refresh`). A canary batch targets the canary slot (falling
        // back to the incumbent if the slot was cleared after the claim
        // — the request still resolves, just on the incumbent). An apply
        // failure leaves the replica on its old weights; the store never
        // publishes a shape-mismatched set for a healthy factory, so
        // that branch is unreachable in practice.
        let sync = if to_canary {
            Some(
                shared
                    .weights
                    .canary()
                    .unwrap_or_else(|| shared.weights.current()),
            )
        } else {
            shared.weights.refresh(version)
        };
        if let Some(w) = sync {
            if w.version != version && w.apply(&model.params()).is_ok() {
                version = w.version;
            }
        }

        // Park the requests where the supervisor can reach them if this
        // thread dies mid-inference. Generation-checked under the same
        // lock the supervisor drains with: a worker quarantined between
        // claim and park answers its claimed requests itself (they are
        // the one thing the drain cannot see) and exits.
        let born = Instant::now();
        {
            let mut g = shared.inflight.lock().unwrap();
            if superseded(&shared, slot, gen) {
                drop(g);
                orphan_respond(&shared, claimed);
                return;
            }
            g[slot] = InflightSlot {
                owner_gen: gen,
                items: claimed.into_iter().map(|p| (p, born)).collect(),
            };
        }
        // Heartbeat: batch-park boundary.
        shared.health[slot].beat();

        let probe = matches!(plan, BatchPlan::Full { probe: true });
        // Per-batch taint latch: anything recorded during this inference
        // was produced by this batch's ops (tensors are built on this
        // thread, so the thread-local latch sees every node).
        if dar_tensor::taint_enabled() {
            dar_tensor::clear_taint();
        }
        let outcome = {
            let _span = dar_obs::span("serve_infer");
            catch_unwind(AssertUnwindSafe(|| match plan {
                BatchPlan::Full { .. } => run_full(&shared, model.as_ref(), &batch, version),
                BatchPlan::PredictorOnly => {
                    run_predictor(model.as_ref(), &batch, version).map(|outs| (outs, true))
                }
                BatchPlan::Shed => unreachable!("shed handled before assembly"),
            }))
        };

        // Whatever the outcome, the latch now names the op that first went
        // non-finite during this batch (None if nothing did).
        let origin = dar_tensor::first_taint().map(|t| t.op);
        match outcome {
            Ok(Ok((outs, degraded))) => {
                let _span = dar_obs::span("serve_respond");
                let Some(inflight) = take_owned(&shared, slot, gen) else {
                    // Quarantined mid-inference: the supervisor already
                    // answered these victims. Discard the late outputs
                    // (responding would double-dispatch) and exit — this
                    // thread is disowned, its breaker opinion included.
                    return;
                };
                {
                    let mut b = shared.breaker.lock().unwrap();
                    match plan {
                        BatchPlan::Full { .. } if degraded => b.on_full_failure_with(probe, origin),
                        BatchPlan::Full { .. } => b.on_full_success(probe),
                        BatchPlan::PredictorOnly => b.on_degraded_success(),
                        BatchPlan::Shed => unreachable!(),
                    }
                }
                for ((p, born), out) in inflight.into_iter().zip(outs) {
                    shared.record_success(slot, born, out.degraded);
                    record_canary_output(
                        &shared,
                        to_canary,
                        &p.review,
                        &out,
                        origin.is_some(),
                        p.submitted.elapsed().as_micros() as u64,
                    );
                    p.respond(Ok(out));
                }
                // Heartbeat: respond boundary; a fully answered batch is
                // also a probation probe.
                shared.health[slot].beat();
                shared.health[slot]
                    .ok_batches
                    .fetch_add(1, Ordering::Relaxed);
            }
            Ok(Err(err)) => {
                // Typed failure (no full-text path): the whole batch gets
                // the same verdict and the breaker hears about it.
                let Some(inflight) = take_owned(&shared, slot, gen) else {
                    return;
                };
                record_canary_errors(&shared, to_canary, inflight.len() as u64, origin.is_some());
                {
                    let mut b = shared.breaker.lock().unwrap();
                    match plan {
                        BatchPlan::Full { .. } => b.on_full_failure_with(probe, origin),
                        BatchPlan::PredictorOnly => b.on_degraded_failure(),
                        BatchPlan::Shed => unreachable!(),
                    }
                }
                let msg = err.to_string();
                for (p, _) in inflight {
                    p.respond(Err(ServeError::Rejected(
                        dar_tensor::DarError::InvalidData(msg.clone()),
                    )));
                }
                // Heartbeat: a typed failure is still forward progress.
                shared.health[slot].beat();
            }
            Err(payload) => {
                shared.stats.lock().unwrap().panics += 1;
                dar_obs::inc("serve.panics");
                {
                    let mut b = shared.breaker.lock().unwrap();
                    match plan {
                        BatchPlan::Full { .. } => b.on_full_failure_with(probe, origin),
                        BatchPlan::PredictorOnly => b.on_degraded_failure(),
                        BatchPlan::Shed => unreachable!(),
                    }
                }
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_default();
                let lethal = shared
                    .cfg
                    .lethal_panic_marker
                    .as_deref()
                    .is_some_and(|m| msg.contains(m));
                if lethal {
                    // Die for real: the in-flight slot stays populated for
                    // the supervisor to drain, and DeathNotice fires.
                    resume_unwind(payload);
                }
                // Soft recovery: answer the victims, rebuild the replica
                // in place (the model may be mid-panic inconsistent).
                let Some(inflight) = take_owned(&shared, slot, gen) else {
                    return;
                };
                record_canary_errors(&shared, to_canary, inflight.len() as u64, origin.is_some());
                for (p, _) in inflight {
                    p.respond(Err(ServeError::WorkerPanicked));
                }
                // Heartbeat: the worker survived and is rebuilding —
                // wedged it is not.
                shared.health[slot].beat();
                model = factory();
                version = 0; // force a weight re-sync next batch
            }
        }
    }
}

/// Give every request force-drained off quarantined replica `from`
/// exactly one typed outcome: the deadline verdict when its budget is
/// gone, a hedged re-dispatch onto a healthy sibling when budget remains
/// (one hedge per request), `Abandoned` otherwise. Never `Lost`.
fn resolve_stranded(shared: &Shared, from: usize, stranded: Vec<Pending>) {
    let pol = &shared.cfg.health;
    let n_shards = shared.shards.len();
    for mut p in stranded {
        let now = Instant::now();
        let mask = shared.quarantined_mask.load(Ordering::SeqCst);
        let target = route_tenant_healthy(p.tenant, n_shards, mask);
        let target_quarantined = target < 64 && mask & (1u64 << target) != 0;
        let has_target = target != from && !target_quarantined;
        let remaining = p.deadline.checked_duration_since(now);
        match drain_verdict(remaining, p.hedged, has_target, pol) {
            DrainFate::Expired => respond_expired(shared, vec![p]),
            DrainFate::Hedge => {
                p.hedged = true;
                // Re-enqueue on the healthy sibling, past queue_cap and
                // fair-share: a displaced victim is not a new arrival,
                // and dropping it to enforce an admission limit would
                // punish it twice.
                let shard = &shared.shards[target];
                let mut q = shard.queue.lock().unwrap();
                if !q.accepting {
                    drop(q);
                    p.respond(Err(ServeError::Shutdown));
                    continue;
                }
                q.items.push_back(p);
                drop(q);
                shard.notify.notify_one();
                shared.stats.lock().unwrap().hedged += 1;
                shared.health[from]
                    .hedged_away
                    .fetch_add(1, Ordering::Relaxed);
                dar_obs::inc("serve.hedged_requests");
                dar_obs::event(ObsEvent::RequestHedged {
                    from: from as u64,
                    to: target as u64,
                });
            }
            DrainFate::Abandon => {
                shared.stats.lock().unwrap().abandoned += 1;
                dar_obs::inc("serve.abandoned");
                p.respond(Err(ServeError::Abandoned));
            }
        }
    }
}

/// Supervisor-local per-slot watchdog bookkeeping. The shared, worker-
/// visible side lives in [`HealthSlot`]; this is the supervisor's view
/// of each slot's heartbeat history and pending transitions.
struct SlotWatch {
    /// Last progress-counter value the watchdog observed.
    last_counter: u64,
    /// When the counter last moved (or the replica was last idle).
    last_progress_at: Instant,
    /// A stall episode is open (`replica_stalled` already emitted).
    suspect: bool,
    /// Probation probes still owed before rejoin (0 = not probing).
    probes_pending: u64,
    /// `ok_batches` reading when probation began.
    probation_base: u64,
    /// Scheduled respawn (death backoff or quarantine backoff).
    respawn_at: Option<Instant>,
    /// The pending respawn rejoins through probation (quarantine path)
    /// instead of directly (plain-death path, pre-§16 behavior).
    respawn_probation: bool,
}

fn supervisor_loop(
    shared: Arc<Shared>,
    factory: ModelFactory,
    death_rx: mpsc::Receiver<(usize, u64)>,
    death_tx: mpsc::Sender<(usize, u64)>,
    mut handles: Vec<Option<JoinHandle<()>>>,
) {
    let n = handles.len();
    let drain_slot = |slot: usize| {
        let victims = {
            let mut g = shared.inflight.lock().unwrap();
            let s = &mut g[slot];
            s.owner_gen = 0;
            std::mem::take(&mut s.items)
        };
        for (p, _) in victims {
            p.respond(Err(ServeError::WorkerPanicked));
        }
    };

    // Respawn pacing (per slot): attempts since the last quiet period
    // drive a bounded exponential backoff, so a crash-looping replica
    // cannot spin the supervisor while healthy slots keep serving. The
    // backoff is a *scheduled* respawn, not a sleep — the poll loop
    // stays live as the watchdog tick and deadline sweep for every
    // other slot.
    let mut attempts: Vec<u32> = vec![0; n];
    let mut last_death: Vec<Option<Instant>> = vec![None; n];
    let start = Instant::now();
    let mut watch: Vec<SlotWatch> = (0..n)
        .map(|_| SlotWatch {
            last_counter: 0,
            last_progress_at: start,
            suspect: false,
            probes_pending: 0,
            probation_base: 0,
            respawn_at: None,
            respawn_probation: false,
        })
        .collect();

    loop {
        match death_rx.recv_timeout(Duration::from_millis(20)) {
            Ok((slot, gen)) => {
                // A stale generation is a quarantined zombie finally
                // unwinding: its requests were drained at quarantine and
                // its slot belongs to a successor — nothing to do.
                if gen == shared.worker_gen[slot].load(Ordering::SeqCst) {
                    if let Some(h) = handles[slot].take() {
                        let _ = h.join(); // collect the corpse (ignore payload)
                    }
                    shared.worker_gen[slot].store(0, Ordering::SeqCst);
                    drain_slot(slot);
                    if !shared.shutdown.load(Ordering::SeqCst) {
                        let now = Instant::now();
                        let pol = &shared.cfg.respawn;
                        if last_death[slot]
                            .is_some_and(|prev| now.duration_since(prev) > pol.reset_after)
                        {
                            attempts[slot] = 0;
                        }
                        last_death[slot] = Some(now);
                        attempts[slot] += 1;
                        let delay = respawn_delay(pol, slot, attempts[slot]);
                        dar_obs::event(ObsEvent::RespawnBackoff {
                            slot: slot as u64,
                            attempt: attempts[slot] as u64,
                            delay_ms: delay.as_millis() as u64,
                        });
                        dar_obs::inc("serve.respawn_backoffs");
                        watch[slot].respawn_at = Some(now + delay);
                        watch[slot].respawn_probation = false;
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }

        let now = Instant::now();

        // Deadline sweep, every tick, every shard, regardless of the
        // health switch: a queue whose backlog sits at or below the
        // steal threshold is invisible to thieves, so if its home
        // replica is wedged (or mid-backoff) its expired requests used
        // to wait for an owner that never came. The supervisor owes
        // them their verdict independent of work stealing.
        for shard in &shared.shards {
            let expired = {
                let mut q = shard.queue.lock().unwrap();
                take_expired(&mut q)
            };
            respond_expired(&shared, expired);
        }

        // Quarantined shards keep force-draining every tick: requests
        // that raced the routing mask (submitted before the bit was
        // set) still get their typed outcome promptly, not at respawn.
        for slot in 0..n.min(64) {
            if shared.quarantined_mask.load(Ordering::SeqCst) & (1u64 << slot) != 0 {
                let stranded: Vec<Pending> = {
                    let mut q = shared.shards[slot].queue.lock().unwrap();
                    q.items.drain(..).collect()
                };
                resolve_stranded(&shared, slot, stranded);
            }
        }

        // Scheduled respawns that have served their backoff.
        for slot in 0..n {
            if watch[slot].respawn_at.is_none_or(|due| now < due) {
                continue;
            }
            let gen = shared.next_gen.fetch_add(1, Ordering::SeqCst);
            shared.worker_gen[slot].store(gen, Ordering::SeqCst);
            handles[slot] = Some(spawn_worker(
                Arc::clone(&shared),
                Arc::clone(&factory),
                slot,
                gen,
                death_tx.clone(),
            ));
            let h = &shared.health[slot];
            let w = &mut watch[slot];
            w.respawn_at = None;
            w.last_counter = h.progress.load(Ordering::Relaxed);
            w.last_progress_at = now;
            w.suspect = false;
            if w.respawn_probation {
                w.respawn_probation = false;
                w.probation_base = h.ok_batches.load(Ordering::Relaxed);
                w.probes_pending = shared.cfg.health.probation_probes;
                // Lift the routing detour now — probation probes *are*
                // real traffic, so the shard must be routable again.
                if slot < 64 {
                    shared
                        .quarantined_mask
                        .fetch_and(!(1u64 << slot), Ordering::SeqCst);
                }
                if w.probes_pending == 0 {
                    h.set_state(HealthState::Healthy);
                    shared.stats.lock().unwrap().rejoins += 1;
                    dar_obs::inc("serve.rejoins");
                    dar_obs::event(ObsEvent::ReplicaRejoined { slot: slot as u64 });
                } else {
                    h.set_state(HealthState::Probation);
                }
            } else {
                h.set_state(HealthState::Healthy);
            }
        }

        // The watchdog tick proper.
        if shared.cfg.health.enabled {
            let pol = shared.cfg.health.clone();
            for slot in 0..n.min(64) {
                if handles[slot].is_none() {
                    continue; // no worker: dead or quarantined, respawn pending
                }
                let h = &shared.health[slot];
                let w = &mut watch[slot];

                // Probation: enough successful batches since respawn
                // completes the rejoin.
                if w.probes_pending > 0 {
                    let probes = h
                        .ok_batches
                        .load(Ordering::Relaxed)
                        .saturating_sub(w.probation_base);
                    if probes >= w.probes_pending {
                        w.probes_pending = 0;
                        h.set_state(HealthState::Healthy);
                        shared.stats.lock().unwrap().rejoins += 1;
                        dar_obs::inc("serve.rejoins");
                        dar_obs::event(ObsEvent::ReplicaRejoined { slot: slot as u64 });
                    }
                }

                let cur = h.progress.load(Ordering::Relaxed);
                if cur != w.last_counter {
                    // Progress: reset the stall clock, close any episode.
                    w.last_counter = cur;
                    w.last_progress_at = now;
                    if w.suspect {
                        w.suspect = false;
                        h.set_state(if w.probes_pending > 0 {
                            HealthState::Probation
                        } else {
                            HealthState::Healthy
                        });
                    }
                    continue;
                }

                // Silent — but only silence *while holding work* counts:
                // an idle replica has nothing to heartbeat about.
                let queued = !shared.shards[slot].queue.lock().unwrap().items.is_empty();
                let latest_deadline = {
                    let g = shared.inflight.lock().unwrap();
                    g[slot].items.iter().map(|(p, _)| p.deadline).max()
                };
                if !queued && latest_deadline.is_none() {
                    w.last_progress_at = now;
                    if w.suspect {
                        w.suspect = false;
                        h.set_state(if w.probes_pending > 0 {
                            HealthState::Probation
                        } else {
                            HealthState::Healthy
                        });
                    }
                    continue;
                }

                let verdict = classify_stall(now, w.last_progress_at, latest_deadline, &pol);
                if verdict == StallVerdict::Fine {
                    continue;
                }
                if !w.suspect {
                    // Healthy → Suspect (also on the way to quarantine,
                    // so the journal always shows the full walk).
                    w.suspect = true;
                    h.set_state(HealthState::Suspect);
                    shared.stats.lock().unwrap().stalls += 1;
                    dar_obs::inc("serve.replica_stalls");
                    dar_obs::event(ObsEvent::ReplicaStalled { slot: slot as u64 });
                }
                if verdict != StallVerdict::Quarantine {
                    continue;
                }

                // Suspect → Quarantined: revoke the generation (the
                // wedged thread becomes a zombie), detour routing, drop
                // the handle (it may never unwind — abandon, not join),
                // and give every stranded request its typed outcome.
                w.suspect = false;
                h.set_state(HealthState::Quarantined);
                h.quarantines.fetch_add(1, Ordering::Relaxed);
                shared.stats.lock().unwrap().quarantines += 1;
                dar_obs::inc("serve.quarantines");
                dar_obs::event(ObsEvent::ReplicaQuarantined { slot: slot as u64 });
                shared
                    .quarantined_mask
                    .fetch_or(1u64 << slot, Ordering::SeqCst);
                shared.worker_gen[slot].store(0, Ordering::SeqCst);
                drop(handles[slot].take());

                let mut stranded: Vec<Pending> = {
                    let mut g = shared.inflight.lock().unwrap();
                    let s = &mut g[slot];
                    s.owner_gen = 0;
                    std::mem::take(&mut s.items)
                        .into_iter()
                        .map(|(p, _)| p)
                        .collect()
                };
                {
                    let mut q = shared.shards[slot].queue.lock().unwrap();
                    stranded.extend(q.items.drain(..));
                }
                resolve_stranded(&shared, slot, stranded);

                // A canary window spanning a quarantine is void: latch
                // for the controller thread, which owns the verdict.
                if shared.canary_active.load(Ordering::SeqCst) {
                    shared.canary_interrupted.store(true, Ordering::SeqCst);
                }

                // Replacement under the standard respawn backoff, then
                // probation before rejoin.
                let pol_r = &shared.cfg.respawn;
                if last_death[slot].is_some_and(|prev| now.duration_since(prev) > pol_r.reset_after)
                {
                    attempts[slot] = 0;
                }
                last_death[slot] = Some(now);
                attempts[slot] += 1;
                let delay = respawn_delay(pol_r, slot, attempts[slot]);
                dar_obs::event(ObsEvent::RespawnBackoff {
                    slot: slot as u64,
                    attempt: attempts[slot] as u64,
                    delay_ms: delay.as_millis() as u64,
                });
                dar_obs::inc("serve.respawn_backoffs");
                w.respawn_at = Some(now + delay);
                w.respawn_probation = true;
            }
        }
    }
    // Shutdown: join workers (each drains its own shard with `Shutdown`).
    for h in handles.iter_mut() {
        if let Some(h) = h.take() {
            let _ = h.join();
        }
    }
    // Late deaths and leftovers: one final sweep so nothing resolves as
    // `Lost` — including shards whose home replica died and was never
    // respawned. NB: the slot count is read *before* the loop — a `for`
    // over `0..lock().len()` would hold the guard across `drain_slot`'s
    // own lock and self-deadlock.
    while let Ok((slot, _gen)) = death_rx.try_recv() {
        drain_slot(slot);
    }
    let slots = shared.inflight.lock().unwrap().len();
    for slot in 0..slots {
        drain_slot(slot);
    }
    for shard in &shared.shards {
        let leftovers: Vec<Pending> = shard.queue.lock().unwrap().items.drain(..).collect();
        for p in leftovers {
            p.respond(Err(ServeError::Shutdown));
        }
    }
}

/// Backoff for respawn `attempt` (1-based) of `slot`:
/// `min(base · 2^(attempt-1), cap)` plus up to +25% jitter from a
/// splitmix64 of `(jitter_seed, slot, attempt)` — deterministic, so a
/// chaos replay sees the identical schedule.
fn respawn_delay(pol: &RespawnBackoff, slot: usize, attempt: u32) -> Duration {
    let exp = attempt.saturating_sub(1).min(16);
    let base = pol.base.saturating_mul(1u32 << exp).min(pol.cap);
    let x = splitmix64(
        pol.jitter_seed
            .wrapping_add((slot as u64) << 32)
            .wrapping_add(attempt as u64),
    );
    let span = base.as_micros() as u64 / 4;
    let jitter = if span == 0 { 0 } else { x % (span + 1) };
    base + Duration::from_micros(jitter)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respawn_backoff_is_bounded_exponential_and_deterministic() {
        let pol = RespawnBackoff::default();
        let d1 = respawn_delay(&pol, 0, 1);
        let d2 = respawn_delay(&pol, 0, 2);
        let d8 = respawn_delay(&pol, 0, 8);
        assert!(d1 >= pol.base && d1 <= pol.base + pol.base / 4);
        assert!(d2 > d1, "second attempt backs off further");
        assert!(
            d8 <= pol.cap + pol.cap / 4,
            "cap bounds the schedule: {d8:?}"
        );
        // Seeded jitter: same inputs, same delay; different slot differs.
        assert_eq!(respawn_delay(&pol, 0, 3), respawn_delay(&pol, 0, 3));
        assert_ne!(respawn_delay(&pol, 0, 3), respawn_delay(&pol, 1, 3));
        // Attempt counts far past the cap do not overflow.
        assert!(respawn_delay(&pol, 2, 1_000) <= pol.cap + pol.cap / 4);
    }

    #[test]
    fn replica_spans_are_static_and_bounded() {
        assert_eq!(replica_span(0), "serve_replica/0");
        assert_eq!(replica_span(7), "serve_replica/7");
        assert_eq!(replica_span(64), "serve_replica/overflow");
    }
}
