//! The closed-loop controller: wire a background trainer's candidate
//! stream into canary evaluation.
//!
//! [`run_online_loop`] is the single-threaded controller the `dar-loop`
//! binary and the chaos suite share. It drains
//! [`CandidateMsg`](dar_core::stream::CandidateMsg)s from the trainer,
//! begins a canary for each candidate checkpoint, drives traffic until
//! both arms fill the verdict window, and records the outcome. Because
//! one thread submits all traffic and emits all promotion events, the
//! promotion event sequence in the deterministic obs section is a pure
//! function of the inputs — byte-identical across thread budgets.
//!
//! Trainer failures are *messages*, not faults: a `Skipped` round or a
//! `TrainerDied` leaves serving untouched (the loop still drives a wave
//! of traffic to prove liveness).

use std::path::Path;
use std::sync::mpsc::Receiver;

use dar_core::stream::CandidateMsg;
use dar_data::Review;
use dar_store::DurableState;
use dar_tensor::DarResult;

use crate::canary::{CanaryDecision, CanaryOutcome, CanaryPolicy, PromotionPhase};
use crate::server::Server;

/// Knobs for [`run_online_loop`].
#[derive(Debug, Clone)]
pub struct OnlineLoopConfig {
    /// Verdict thresholds for every canary this loop runs.
    pub policy: CanaryPolicy,
    /// Requests submitted (sequentially) between verdict checks.
    pub wave: usize,
    /// Safety cap: waves per canary before a forced abort — guards
    /// against a window that cannot fill (e.g. all workers gone).
    pub max_waves: usize,
}

impl Default for OnlineLoopConfig {
    fn default() -> Self {
        OnlineLoopConfig {
            policy: CanaryPolicy::default(),
            wave: 16,
            max_waves: 256,
        }
    }
}

/// What happened to one trainer round.
#[derive(Debug)]
pub struct RoundReport {
    pub round: usize,
    /// The canary verdict, if a candidate reached evaluation.
    pub outcome: Option<CanaryOutcome>,
    /// Offer/trainer-side failure text (rejected checkpoint, skipped
    /// round, trainer death), if any.
    pub note: Option<String>,
    /// Requests answered / failed while this round was evaluated.
    pub served_ok: u64,
    pub failed: u64,
}

/// Aggregate of one [`run_online_loop`] call.
#[derive(Debug, Default)]
pub struct LoopReport {
    pub rounds: Vec<RoundReport>,
    pub promoted: u64,
    pub rolled_back: u64,
    pub offers_rejected: u64,
    pub trainer_died: bool,
    pub final_version: u64,
}

/// Submit `n` reviews from `traffic` (cycling, strictly sequentially —
/// submit, wait, next), so batch composition and canary routing are
/// reproducible. Returns (ok, failed).
fn drive(server: &Server, traffic: &[Review], cursor: &mut usize, n: usize) -> (u64, u64) {
    let mut ok = 0;
    let mut failed = 0;
    for _ in 0..n {
        let review = traffic[*cursor % traffic.len()].clone();
        *cursor += 1;
        match server.submit(review).wait() {
            Ok(_) => ok += 1,
            Err(_) => failed += 1,
        }
    }
    (ok, failed)
}

/// Journal a settled canary decision into the durable state: a
/// promotion lands the incumbent copy + WAL record + manifest swap
/// (the WAL append is the commit point — see `dar_store`); a rollback
/// appends its terminal record. Called from the server's pre-commit
/// hook, *before* the decision takes effect in memory.
fn journal_decision(
    state: &mut DurableState,
    round: usize,
    candidate: &Path,
    decision: &CanaryDecision,
) -> DarResult<()> {
    if decision.promote {
        state.log_promoted(round, candidate).map(|_| ())
    } else if let Some(cause) = decision.cause {
        state.log_rolled_back(round, cause.as_str())
    } else {
        Ok(())
    }
}

/// The controller shared by [`run_online_loop`] (ephemeral) and
/// [`run_online_loop_durable`] (journaled). With `state`, every round's
/// verdict is WAL-committed before it takes effect, already-terminal
/// rounds are skipped (exactly-once across restarts), and the feed
/// cursor advances only after a terminal record is durable.
fn run_loop_inner(
    server: &Server,
    candidates: &Receiver<CandidateMsg>,
    traffic: &[Review],
    cfg: &OnlineLoopConfig,
    mut state: Option<&mut DurableState>,
) -> LoopReport {
    assert!(!traffic.is_empty(), "online loop needs traffic to canary");
    let mut report = LoopReport::default();
    let mut cursor = 0usize;

    for msg in candidates.iter() {
        match msg {
            CandidateMsg::Candidate { round, path, .. } => {
                if let Some(st) = state.as_deref_mut() {
                    if st.is_terminal(round) {
                        // This round already has a durable verdict (we
                        // are replaying after a crash): never re-canary.
                        report.rounds.push(RoundReport {
                            round,
                            outcome: None,
                            note: Some("already settled in the durable journal".into()),
                            served_ok: 0,
                            failed: 0,
                        });
                        continue;
                    }
                    // Best-effort intent record; the terminal record is
                    // the one that must commit.
                    st.log_canary_started(round).ok();
                }
                let mut rr = RoundReport {
                    round,
                    outcome: None,
                    note: None,
                    served_ok: 0,
                    failed: 0,
                };
                match server.begin_canary(&path, cfg.policy.clone()) {
                    Ok(_) => {
                        let mut waves = 0usize;
                        // Without durable state there is nothing to
                        // journal, so the cursor logic below is moot.
                        let mut journaled = state.is_none();
                        let outcome = loop {
                            let (ok, failed) = drive(server, traffic, &mut cursor, cfg.wave.max(1));
                            rr.served_ok += ok;
                            rr.failed += failed;
                            let concluded = match state.as_deref_mut() {
                                Some(st) => server.try_conclude_canary_with(|d| {
                                    let r = journal_decision(st, round, &path, d);
                                    journaled = r.is_ok();
                                    r
                                }),
                                None => server.try_conclude_canary(),
                            };
                            if let Some(outcome) = concluded {
                                break Some(outcome);
                            }
                            waves += 1;
                            if waves >= cfg.max_waves {
                                break match state.as_deref_mut() {
                                    Some(st) => server.abort_canary_with(|d| {
                                        let r = journal_decision(st, round, &path, d);
                                        journaled = r.is_ok();
                                        r
                                    }),
                                    None => server.abort_canary(),
                                };
                            }
                        };
                        match &outcome {
                            Some(o) if o.phase == PromotionPhase::Promoted => report.promoted += 1,
                            Some(_) => report.rolled_back += 1,
                            None => {}
                        }
                        if outcome.is_some() && journaled {
                            if let Some(st) = state.as_deref_mut() {
                                st.log_feed_cursor(round + 1).ok();
                            }
                        }
                        rr.outcome = outcome;
                    }
                    Err(e) => {
                        // Rejected offer (journaled as `offer_rejected`):
                        // the incumbent serves on; prove it with a wave.
                        report.offers_rejected += 1;
                        rr.note = Some(format!("offer rejected: {e}"));
                        if let Some(st) = state.as_deref_mut() {
                            if st.log_round_skipped(round, "offer_rejected").is_ok() {
                                st.log_feed_cursor(round + 1).ok();
                            }
                        }
                        let (ok, failed) = drive(server, traffic, &mut cursor, cfg.wave.max(1));
                        rr.served_ok += ok;
                        rr.failed += failed;
                    }
                }
                report.rounds.push(rr);
            }
            CandidateMsg::Skipped { round, cause } => {
                if let Some(st) = state.as_deref_mut() {
                    if !st.is_terminal(round) && st.log_round_skipped(round, &cause).is_ok() {
                        st.log_feed_cursor(round + 1).ok();
                    }
                }
                let (ok, failed) = drive(server, traffic, &mut cursor, cfg.wave.max(1));
                report.rounds.push(RoundReport {
                    round,
                    outcome: None,
                    note: Some(format!("skipped: {cause}")),
                    served_ok: ok,
                    failed,
                });
            }
            CandidateMsg::TrainerDied { msg } => {
                report.trainer_died = true;
                let (ok, failed) = drive(server, traffic, &mut cursor, cfg.wave.max(1));
                report.rounds.push(RoundReport {
                    round: usize::MAX,
                    outcome: None,
                    note: Some(format!("trainer died: {msg}")),
                    served_ok: ok,
                    failed,
                });
            }
            CandidateMsg::Finished => break,
        }
    }
    report.final_version = server.weights_version();
    report
}

/// Run the promotion side of the closed loop until the trainer's channel
/// closes (or sends `Finished`). See the module docs.
pub fn run_online_loop(
    server: &Server,
    candidates: &Receiver<CandidateMsg>,
    traffic: &[Review],
    cfg: &OnlineLoopConfig,
) -> LoopReport {
    run_loop_inner(server, candidates, traffic, cfg, None)
}

/// [`run_online_loop`] threaded through a [`DurableState`]: every
/// promotion/rollback verdict is committed to the write-ahead journal
/// *before* it takes effect (a promotion whose record cannot commit is
/// vetoed into a `durability_failed` rollback), rounds that already have
/// a durable terminal verdict are skipped, and the feed cursor record
/// advances only once a round is settled — together, exactly-once
/// promotion across crash/restart (DESIGN.md §15).
pub fn run_online_loop_durable(
    server: &Server,
    candidates: &Receiver<CandidateMsg>,
    traffic: &[Review],
    cfg: &OnlineLoopConfig,
    state: &mut DurableState,
) -> LoopReport {
    run_loop_inner(server, candidates, traffic, cfg, Some(state))
}
