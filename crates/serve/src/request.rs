//! Request/response types and the exactly-one-outcome ticket.

use std::sync::mpsc;
use std::time::{Duration, Instant};

use dar_data::Review;
use dar_tensor::DarError;

/// Successful response for one request.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOutput {
    /// Predicted class.
    pub label: usize,
    /// Binary rationale mask over the review's tokens. Empty when the
    /// answer came from the predictor-only degraded path — a degraded
    /// answer never fabricates a rationale.
    pub rationale: Vec<bool>,
    /// True when the generator was bypassed (degraded mode or collapse
    /// fallback within a full-path batch).
    pub degraded: bool,
    /// Weight generation the answer was computed on.
    pub weights_version: u64,
}

/// Terminal failure for one request. Every variant is an *answer*: the
/// ticket resolves exactly once whatever happens.
#[derive(Debug)]
pub enum ServeError {
    /// Rejected at admission (empty, over-length, out-of-vocabulary…).
    Rejected(DarError),
    /// The bounded queue was full — backpressure, try later.
    QueueFull,
    /// The request's deadline passed before a worker reached it.
    DeadlineExceeded,
    /// The breaker is Open; nothing is being computed.
    Shed,
    /// The tenant already occupies its fair share of its home shard's
    /// queue (`ServeConfig::tenant_fair_share`) — per-tenant
    /// backpressure, so one hot tenant cannot starve its shard-mates.
    TenantThrottled,
    /// The worker processing this request panicked.
    WorkerPanicked,
    /// Degraded mode was needed but the model has no full-text path.
    DegradedUnavailable,
    /// The server shut down before the request ran.
    Shutdown,
    /// The request was stranded on a quarantined replica with too little
    /// deadline budget left to hedge (or no healthy sibling to hedge to),
    /// and was given up deliberately (DESIGN.md §16). Unlike
    /// `DeadlineExceeded`, the deadline itself had not passed.
    Abandoned,
    /// The response channel died without a verdict — a runtime bug; the
    /// chaos harness asserts this is never produced.
    Lost,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Rejected(e) => write!(f, "rejected at admission: {e}"),
            ServeError::QueueFull => write!(f, "queue full"),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServeError::Shed => write!(f, "shed: breaker open"),
            ServeError::TenantThrottled => write!(f, "tenant over its fair queue share"),
            ServeError::WorkerPanicked => write!(f, "worker panicked"),
            ServeError::DegradedUnavailable => write!(f, "no degraded path"),
            ServeError::Shutdown => write!(f, "server shut down"),
            ServeError::Abandoned => write!(f, "abandoned: replica quarantined, no hedge budget"),
            ServeError::Lost => write!(f, "response lost (runtime bug)"),
        }
    }
}

pub type ServeResult = Result<ServeOutput, ServeError>;

/// One queued request. Owned by the queue, then by exactly one worker's
/// in-flight slot, until `respond` consumes it.
pub(crate) struct Pending {
    pub review: Review,
    pub deadline: Instant,
    /// Submission sequence number — the deterministic canary routing key
    /// (`seq % slice_modulus` picks the arm; DESIGN.md §13).
    pub seq: u64,
    /// Tenant id — the sharded-routing key (`route_tenant` picks the
    /// home shard; DESIGN.md §14) and the fair-share admission key.
    pub tenant: u64,
    /// When the request entered the runtime — the start of its queue wait
    /// in the observability timings.
    pub submitted: Instant,
    /// Set when the watchdog re-dispatched this request off a quarantined
    /// replica (DESIGN.md §16). One hedge per request: a hedged request
    /// stranded a second time is abandoned, not bounced around forever.
    pub hedged: bool,
    tx: mpsc::Sender<ServeResult>,
}

impl Pending {
    pub fn new(review: Review, deadline: Instant, seq: u64, tenant: u64) -> (Self, Ticket) {
        let (tx, rx) = mpsc::channel();
        (
            Pending {
                review,
                deadline,
                seq,
                tenant,
                submitted: Instant::now(),
                hedged: false,
                tx,
            },
            Ticket { rx },
        )
    }

    pub fn expired(&self, now: Instant) -> bool {
        now >= self.deadline
    }

    /// Deliver the verdict. Consumes the request, so the type system
    /// enforces at-most-once; the runtime structure (queue → in-flight
    /// slot → respond) enforces at-least-once.
    pub fn respond(self, result: ServeResult) {
        // The client may have dropped its ticket; that's its business.
        let _ = self.tx.send(result);
    }
}

/// The caller's handle: resolves to exactly one [`ServeResult`].
pub struct Ticket {
    rx: mpsc::Receiver<ServeResult>,
}

impl Ticket {
    /// Block until the verdict arrives.
    pub fn wait(self) -> ServeResult {
        self.rx.recv().unwrap_or(Err(ServeError::Lost))
    }

    /// Block up to `timeout`; `None` means still in flight.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<ServeResult> {
        match self.rx.recv_timeout(timeout) {
            Ok(r) => Some(r),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => Some(Err(ServeError::Lost)),
        }
    }
}
